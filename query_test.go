package mpsm

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

// queryCatalog builds the three-relation catalog the query tests share: r is
// the dimension, s and t are fact tables over r's key domain.
func queryCatalog() MapCatalog {
	r := GenerateUniform("r", 1<<12, 601)
	return MapCatalog{
		"r": r,
		"s": GenerateForeignKey("s", r, 1<<13, 602),
		"t": GenerateForeignKey("t", r, 1<<13, 603),
	}
}

// TestQueryEndToEndAllAlgorithms: the acceptance query — a three-way join
// with a comparison and an aggregation, from text — is multiset-identical to
// the hand-built plan under every join algorithm.
func TestQueryEndToEndAllAlgorithms(t *testing.T) {
	ctx := context.Background()
	cat := queryCatalog()
	const src = "ans(K, Sum) :- r(K, X), s(K, Y), t(K, Z), X > 10, agg sum(Z)"

	for _, alg := range allAlgorithms {
		engine := New(WithWorkers(2), WithAlgorithm(alg))

		hand := NewPlan()
		hr := hand.Scan(cat["r"], func(tu Tuple) bool { return tu.Payload > 10 })
		hs := hand.Scan(cat["s"])
		ht := hand.Scan(cat["t"])
		j := hand.Join(hand.Join(hr, hs), ht)
		hand.GroupAggregate(hand.Project(j, func(r, s Tuple) Tuple {
			return Tuple{Key: r.Key, Payload: s.Payload}
		}), AggSum)
		want, err := engine.RunPlan(ctx, hand)
		if err != nil {
			t.Fatalf("%v: hand-built plan: %v", alg, err)
		}

		got, err := engine.Query(ctx, src, cat)
		if err != nil {
			t.Fatalf("%v: Query: %v", alg, err)
		}
		if !relation.SameMultiset(got.Output.Tuples, want.Output.Tuples) {
			t.Errorf("%v: compiled query diverges from the hand-built plan (%d vs %d tuples)",
				alg, got.Output.Len(), want.Output.Len())
		}
		if got.Output.Len() == 0 {
			t.Errorf("%v: degenerate test: the query produced no groups", alg)
		}
	}
}

// TestQueryEndToEndService: the same acceptance query through the serving
// layer, with auto-planning, exercising admission, fair share and the
// text-keyed plan cache.
func TestQueryEndToEndService(t *testing.T) {
	ctx := context.Background()
	cat := queryCatalog()
	const src = "ans(K, Sum) :- r(K, X), s(K, Y), t(K, Z), X > 10, agg sum(Z)"

	engine := New(WithWorkers(2), WithAutoPlan(true))
	svc := NewService(engine)
	defer svc.Close()

	want, err := engine.Query(ctx, src, cat)
	if err != nil {
		t.Fatalf("engine query: %v", err)
	}
	got, err := svc.Query(ctx, src, cat)
	if err != nil {
		t.Fatalf("service query: %v", err)
	}
	if !relation.SameMultiset(got.Output.Tuples, want.Output.Tuples) {
		t.Errorf("service query diverges from engine query (%d vs %d tuples)",
			got.Output.Len(), want.Output.Len())
	}

	// Explain renders the compiled plan, filters included.
	p, err := Compile(src, cat)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	ex, err := engine.Explain(p)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	rendered := ex.String()
	for _, want := range []string{"Scan r", "Scan s", "Scan t", "Join", "GroupAggregate", "pred"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("Explain output missing %q:\n%s", want, rendered)
		}
	}
}

// TestQueryBandEndToEnd: a band query matches the hand-built band-join plan.
func TestQueryBandEndToEnd(t *testing.T) {
	ctx := context.Background()
	cat := queryCatalog()
	engine := New(WithWorkers(2))

	hand := NewPlan()
	j := hand.Join(hand.Scan(cat["r"]), hand.Scan(cat["s"]), WithBandWidth(10))
	hand.Project(j, func(r, s Tuple) Tuple { return Tuple{Key: r.Key, Payload: s.Payload} })
	want, err := engine.RunPlan(ctx, hand)
	if err != nil {
		t.Fatalf("hand-built band plan: %v", err)
	}

	got, err := engine.Query(ctx, "ans(X, V) :- r(X, _), s(Y, V), |X - Y| <= 10", cat)
	if err != nil {
		t.Fatalf("band query: %v", err)
	}
	if !relation.SameMultiset(got.Output.Tuples, want.Output.Tuples) {
		t.Errorf("band query diverges from the hand-built plan (%d vs %d tuples)",
			got.Output.Len(), want.Output.Len())
	}
}

// TestQueryKeyRangeLowering: fully bounded key comparisons execute as
// branch-free key-range scans and produce exactly the predicate-filtered
// result.
func TestQueryKeyRangeLowering(t *testing.T) {
	ctx := context.Background()
	cat := queryCatalog()
	engine := New(WithWorkers(2))

	p, err := Compile("ans(K, V) :- r(K, V), K >= 100, K < 900, K != 500", cat)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := engine.Explain(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex.String(), "key∈[100,900)") {
		t.Errorf("Explain does not show the folded key range:\n%s", ex)
	}

	got, err := engine.RunPlan(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	var want []Tuple
	for _, tu := range cat["r"].Tuples {
		if tu.Key >= 100 && tu.Key < 900 && tu.Key != 500 {
			want = append(want, tu)
		}
	}
	if !relation.SameMultiset(got.Output.Tuples, want) {
		t.Errorf("range query returned %d tuples, want %d", got.Output.Len(), len(want))
	}
}

// TestServiceQueryCacheByText: equivalent spellings of one query share a
// single plan-cache entry keyed by the canonical text.
func TestServiceQueryCacheByText(t *testing.T) {
	ctx := context.Background()
	cat := queryCatalog()
	engine := New(WithWorkers(2), WithAutoPlan(true))
	svc := NewService(engine)
	defer svc.Close()

	spellings := []string{
		"ans(K, V) :- r(K, _), s(K, V), K >= 10",
		"ans(K,V):-r(K,_),s(K,V),10<=K.",
		"% same query, spelled differently\nans(K, V) :- r(K, _), s(K, V), K >= 10.",
	}
	for i, src := range spellings {
		if _, err := svc.Query(ctx, src, cat); err != nil {
			t.Fatalf("spelling %d: %v", i, err)
		}
	}
	stats := svc.Stats().PlanCache
	if stats.Misses != 1 || stats.Hits != 2 {
		t.Errorf("plan cache hits=%d misses=%d, want 2 hits / 1 miss (text-keyed reuse)",
			stats.Hits, stats.Misses)
	}
}

// TestQueryErrorsArePositioned: compilation failures surface as *QueryError
// with annotatable positions through the public API.
func TestQueryErrorsArePositioned(t *testing.T) {
	cat := queryCatalog()
	_, err := Compile("ans(K, V) :- r(K, V), nope(K, V)", cat)
	if err == nil {
		t.Fatal("expected an error")
	}
	qe, ok := err.(*QueryError)
	if !ok {
		t.Fatalf("error is %T, want *QueryError: %v", err, err)
	}
	if qe.Pos.Col != 23 {
		t.Errorf("error at column %d, want 23: %v", qe.Pos.Col, err)
	}
	if ann := qe.Annotate(); !strings.Contains(ann, "^") {
		t.Errorf("Annotate lacks a caret:\n%s", ann)
	}
}

// --- property test: random queries vs a brute-force reference evaluator ---

// genQuery builds a random well-formed query over catalog relations
// r, s, t, returning its text.
func genQuery(rng *rand.Rand) string {
	names := []string{"r", "s", "t"}
	n := 1 + rng.Intn(3)
	band := n == 2 && rng.Intn(4) == 0

	var body []string
	payloadVars := make([]string, n)
	for i := 0; i < n; i++ {
		key := "K"
		if band {
			key = fmt.Sprintf("K%d", i)
		}
		var payload string
		switch rng.Intn(4) {
		case 0:
			payload = "_"
		default:
			payload = fmt.Sprintf("V%d", i)
			payloadVars[i] = payload
		}
		body = append(body, fmt.Sprintf("%s(%s, %s)", names[i], key, payload))
	}
	if band {
		body = append(body, fmt.Sprintf("|K0 - K1| <= %d", rng.Intn(8)))
	}

	headKey := "K"
	if band {
		headKey = fmt.Sprintf("K%d", rng.Intn(2))
	}

	// Key-range comparisons (equi-joins only; band key bounds are legal too
	// but keep the generator simple).
	if !band && rng.Intn(2) == 0 {
		lo := rng.Intn(1000)
		body = append(body, fmt.Sprintf("K >= %d", lo))
		if rng.Intn(2) == 0 {
			body = append(body, fmt.Sprintf("K < %d", lo+rng.Intn(2000)))
		}
		if rng.Intn(3) == 0 {
			body = append(body, fmt.Sprintf("K != %d", lo+rng.Intn(100)))
		}
	}
	// A payload comparison on one bound payload variable.
	if rng.Intn(2) == 0 {
		if v := payloadVars[rng.Intn(n)]; v != "" {
			ops := []string{"<", "<=", ">", ">=", "!="}
			body = append(body, fmt.Sprintf("%s %s %d", v, ops[rng.Intn(len(ops))], rng.Intn(5000)))
		}
	}

	// Head value: a bound payload, the key, or an aggregate.
	var bound []string
	for _, v := range payloadVars {
		if v != "" {
			bound = append(bound, v)
		}
	}
	headVal := headKey
	if rng.Intn(3) != 0 && len(bound) > 0 {
		headVal = bound[rng.Intn(len(bound))]
	}
	if !band && rng.Intn(3) == 0 {
		fns := []string{"sum", "min", "max"}
		if len(bound) > 0 && rng.Intn(3) != 0 {
			fn := fns[rng.Intn(len(fns))]
			body = append(body, fmt.Sprintf("agg %s(%s)", fn, bound[rng.Intn(len(bound))]))
		} else {
			body = append(body, "agg count(*)")
		}
		headVal = "Agg"
	}
	return fmt.Sprintf("ans(%s, %s) :- %s", headKey, headVal, strings.Join(body, ", "))
}

// bruteForce evaluates a query by nested loops over the catalog — no
// sorting, partitioning, planning or vectorization — as an oracle
// independent of the compiler's lowering and the engine's execution. It
// interprets the parsed AST directly.
func bruteForce(t *testing.T, src string, cat MapCatalog) []Tuple {
	t.Helper()
	q, err := query.Parse(src)
	if err != nil {
		t.Fatalf("reference parse of %q: %v", src, err)
	}

	type refAtom struct {
		rel     *Relation
		keyVar  string
		payload query.Term
	}
	var atoms []refAtom
	var cmps []*query.Compare
	var band *query.Band
	var agg *query.Agg
	for _, cl := range q.Body {
		switch cl := cl.(type) {
		case *query.Atom:
			rel, ok := cat[cl.Name]
			if !ok {
				t.Fatalf("reference: unknown relation %q", cl.Name)
			}
			atoms = append(atoms, refAtom{rel: rel, keyVar: cl.Args[0].Name, payload: cl.Args[1]})
		case *query.Compare:
			cmps = append(cmps, cl)
		case *query.Band:
			band = cl
		case *query.Agg:
			agg = cl
		}
	}

	// evalCmp applies one comparison given a variable's value.
	evalCmp := func(c *query.Compare, name string, v uint64) (applies, ok bool) {
		l, r := c.Left, c.Right
		op := c.Op
		if l.Kind == query.TermNumber && r.Kind == query.TermVar {
			l, r = r, l
			op = flipOp(op)
		}
		if l.Kind != query.TermVar || l.Name != name {
			return false, true
		}
		return true, op.Eval(v, r.Num)
	}

	// Filter each atom's rows by every comparison and payload constant
	// touching its variables.
	filtered := make([][]Tuple, len(atoms))
	for i, a := range atoms {
		for _, tu := range a.rel.Tuples {
			keep := true
			if a.payload.Kind == query.TermNumber && tu.Payload != a.payload.Num {
				keep = false
			}
			for _, c := range cmps {
				if applies, ok := evalCmp(c, a.keyVar, tu.Key); applies && !ok {
					keep = false
				}
				if a.payload.Kind == query.TermVar {
					if applies, ok := evalCmp(c, a.payload.Name, tu.Payload); applies && !ok {
						keep = false
					}
				}
			}
			if keep {
				filtered[i] = append(filtered[i], tu)
			}
		}
	}

	// valueOf resolves a variable against one joined row (keys and payloads
	// per atom index).
	valueOf := func(name string, row []Tuple) uint64 {
		for i, a := range atoms {
			if a.keyVar == name {
				return row[i].Key
			}
			if a.payload.Kind == query.TermVar && a.payload.Name == name {
				return row[i].Payload
			}
		}
		t.Fatalf("reference: unresolvable variable %s in %q", name, src)
		return 0
	}

	// Join by nested loops into rows of one tuple per atom.
	var rows [][]Tuple
	var joinFrom func(i int, acc []Tuple)
	joinFrom = func(i int, acc []Tuple) {
		if i == len(atoms) {
			rows = append(rows, append([]Tuple(nil), acc...))
			return
		}
		for _, tu := range filtered[i] {
			if band == nil && i > 0 && tu.Key != acc[0].Key {
				continue
			}
			if band != nil && i == 1 {
				d := tu.Key - acc[0].Key
				if acc[0].Key > tu.Key {
					d = acc[0].Key - tu.Key
				}
				if d > band.Width.Num {
					continue
				}
			}
			joinFrom(i+1, append(acc, tu))
		}
	}
	joinFrom(0, nil)

	headKey, headVal := q.Head.Args[0], q.Head.Args[1]
	var out []Tuple
	if agg == nil {
		for _, row := range rows {
			out = append(out, Tuple{Key: valueOf(headKey.Name, row), Payload: valueOf(headVal.Name, row)})
		}
		return out
	}
	groups := map[uint64]uint64{}
	for _, row := range rows {
		k := valueOf(headKey.Name, row)
		var v uint64
		if agg.Func != query.AggCount {
			v = valueOf(agg.Arg.Name, row)
		}
		cur, seen := groups[k]
		switch agg.Func {
		case query.AggCount:
			groups[k] = cur + 1
		case query.AggSum:
			groups[k] = cur + v
		case query.AggMin:
			if !seen || v < cur {
				groups[k] = v
			}
		case query.AggMax:
			if !seen || v > cur {
				groups[k] = v
			}
		}
	}
	for k, v := range groups {
		out = append(out, Tuple{Key: k, Payload: v})
	}
	return out
}

// flipOp mirrors a comparison operator for operand swap.
func flipOp(op query.CmpOp) query.CmpOp {
	switch op {
	case query.OpLT:
		return query.OpGT
	case query.OpLE:
		return query.OpGE
	case query.OpGT:
		return query.OpLT
	case query.OpGE:
		return query.OpLE
	default:
		return op
	}
}

// TestQueryPropertyCompiledMatchesReference: for randomly generated queries,
// the compiled plan's result under every algorithm equals a brute-force
// evaluation, and the canonical pretty-printed text re-parses and compiles to
// the same result.
func TestQueryPropertyCompiledMatchesReference(t *testing.T) {
	if testing.Short() {
		t.Skip("property test under -short")
	}
	ctx := context.Background()
	// Small relations with a tight key domain so joins and bands hit often.
	r := GenerateSkewedWithDomain("r", 256, 512, SkewLow80, 701)
	cat := MapCatalog{
		"r": r,
		"s": GenerateForeignKey("s", r, 512, 702),
		"t": GenerateForeignKey("t", r, 384, 703),
	}
	rng := rand.New(rand.NewSource(704))
	engines := make(map[Algorithm]*Engine, len(allAlgorithms))
	for _, alg := range allAlgorithms {
		engines[alg] = New(WithWorkers(2), WithAlgorithm(alg))
	}

	const trials = 40
	for trial := 0; trial < trials; trial++ {
		src := genQuery(rng)
		p, err := Compile(src, cat)
		if err != nil {
			t.Fatalf("trial %d: generated query %q fails to compile: %v", trial, src, err)
		}
		want := bruteForce(t, src, cat)

		// The canonical text round-trips through the parser and compiler.
		canonical := p.QueryInfo().Text
		p2, err := Compile(canonical, cat)
		if err != nil {
			t.Fatalf("trial %d: canonical %q fails to compile: %v", trial, canonical, err)
		}
		if p2.QueryInfo().Text != canonical {
			t.Fatalf("trial %d: canonical text unstable: %q -> %q", trial, canonical, p2.QueryInfo().Text)
		}

		isBand := strings.Contains(src, "|")
		for alg, engine := range engines {
			if isBand && alg != PMPSM && alg != BMPSM {
				continue // band joins run on B-MPSM and P-MPSM only
			}
			got, err := engine.RunPlan(ctx, p)
			if err != nil {
				t.Fatalf("trial %d (%v): %q: %v", trial, alg, src, err)
			}
			if !relation.SameMultiset(got.Output.Tuples, want) {
				t.Fatalf("trial %d (%v): %q returned %d tuples, reference has %d",
					trial, alg, src, got.Output.Len(), len(want))
			}
		}
		// One algorithm suffices for the re-parsed plan (the others share it).
		got2, err := engines[PMPSM].RunPlan(ctx, p2)
		if err != nil {
			t.Fatalf("trial %d: canonical %q: %v", trial, canonical, err)
		}
		if !relation.SameMultiset(got2.Output.Tuples, want) {
			t.Fatalf("trial %d: canonical %q diverges from reference", trial, canonical)
		}
	}
}
