package mpsm

import (
	"repro/internal/faultinject"
	"repro/internal/sched"
)

// FaultSet is a deterministic, seed-driven fault-injection plan. A set is
// armed per injection point with a firing probability (and, for the stall
// points, a delay); every draw comes from the set's own splitmix64 stream, so
// the same seed against the same workload replays the same faults. A nil
// *FaultSet is valid everywhere and injects nothing — production code paths
// carry a nil set at the cost of one pointer check.
//
// Fault injection exists to exercise the failure domains for real: worker
// panics exercise sched's panic isolation and lease quarantine, allocation
// failures exercise the degradation ladder, stalls and cancellation storms
// widen race windows that are otherwise nearly impossible to hit in tests.
type FaultSet = faultinject.Set

// FaultPoint names one injection point in the engine.
type FaultPoint = faultinject.Point

// The injection points. Their spec names (for ParseFaultSpec and the
// MPSM_FAULTS environment variable) are panic, lease, stall, cancel, grant.
const (
	// FaultWorkerPanic panics inside a phase worker or a morsel task.
	FaultWorkerPanic FaultPoint = faultinject.WorkerPanic
	// FaultLeaseAlloc panics a scratch-lease allocation.
	FaultLeaseAlloc FaultPoint = faultinject.LeaseAlloc
	// FaultMorselStall delays a worker between morsel tasks.
	FaultMorselStall FaultPoint = faultinject.MorselStall
	// FaultCancelStorm cancels a service query's context shortly after
	// submission.
	FaultCancelStorm FaultPoint = faultinject.CancelStorm
	// FaultGrantRace stalls the admission controller between releasing a
	// finished query's reservation and granting queued waiters.
	FaultGrantRace FaultPoint = faultinject.GrantRace
)

// PanicError is the typed error a query fails with when a panic was recovered
// inside its failure domain: it carries the query label, the phase, the
// worker index (-1 for the coordinator goroutine) and the captured stack.
// Errors.As-match it to distinguish contained panics from ordinary failures;
// Unwrap exposes the panic value when that value was itself an error (as
// injected faults are).
type PanicError = sched.PanicError

// NewFaultSet creates an empty fault set with the given seed; arm points with
// Enable/EnableDelay/Limit/After. The zero seed is valid.
func NewFaultSet(seed uint64) *FaultSet { return faultinject.New(seed) }

// ParseFaultSpec parses a fault-injection spec of the form
//
//	seed:42,panic:0.1,stall:0.2@500us,lease:1@0s#3
//
// — a comma-separated list of seed:N and point:probability entries, where a
// probability may carry @duration (stall delay) and #N (fire at most N
// times). An empty spec returns (nil, nil): injection disabled. This is the
// format of the MPSM_FAULTS environment variable honoured by cmd/mpsmd.
func ParseFaultSpec(spec string) (*FaultSet, error) { return faultinject.Parse(spec) }

// WithFaultInjection arms deterministic fault injection for an engine or a
// single join call. Nil disables injection (the default).
func WithFaultInjection(f *FaultSet) Option {
	return func(s *settings) { s.faults = f }
}
