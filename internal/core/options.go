// Package core implements the massively parallel sort-merge join algorithms
// of the paper: the basic B-MPSM (Section 2.1), the range-partitioned P-MPSM
// with histogram/CDF-based skew handling (Sections 3.2 and 4), and the
// disk-enabled, memory-constrained D-MPSM (Section 3.1).
//
// All variants follow the three NUMA commandments by construction:
//
//	C1  sorting happens only on worker-local runs,
//	C2  remote runs are read strictly sequentially during the join phase,
//	C3  no fine-grained synchronization — workers only meet at phase barriers,
//	    and the partitioning phase writes to precomputed, disjoint ranges.
package core

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/faultinject"
	"repro/internal/memory"
	"repro/internal/mergejoin"
	"repro/internal/numa"
	"repro/internal/sched"
	"repro/internal/sink"
)

// SplitterStrategy selects how P-MPSM determines the range-partition bounds of
// the private input.
type SplitterStrategy int

const (
	// SplitterEquiCost balances the combined sort-plus-join cost per worker
	// using the global R histogram and the S CDF (Section 4.3). This is the
	// paper's skew-resilient default.
	SplitterEquiCost SplitterStrategy = iota
	// SplitterEquiHeight balances only the R tuple counts per worker,
	// ignoring S (the Figure 16(b) baseline).
	SplitterEquiHeight
	// SplitterUniform partitions the key domain into equally wide radix
	// ranges regardless of the data (the static bounds of Section 3.2.1).
	SplitterUniform
)

// String implements fmt.Stringer.
func (s SplitterStrategy) String() string {
	switch s {
	case SplitterEquiCost:
		return "equi-cost"
	case SplitterEquiHeight:
		return "equi-height"
	case SplitterUniform:
		return "uniform"
	default:
		return fmt.Sprintf("SplitterStrategy(%d)", int(s))
	}
}

// Options configures the MPSM join variants.
type Options struct {
	// Workers is the degree of parallelism T; 0 selects GOMAXPROCS.
	Workers int

	// Kind selects the join semantics (inner, left-outer, semi, anti). The
	// zero value is an inner join. Non-inner kinds are supported by B-MPSM
	// and P-MPSM; the paper names them as future work and they fit MPSM
	// naturally because each worker owns a disjoint part of the private
	// input and sees all of its potential partners.
	Kind mergejoin.Kind

	// Band turns the equi-join into a non-equi band join: tuples match when
	// |R.key − S.key| <= Band. It requires Kind == Inner and is supported by
	// B-MPSM and P-MPSM (another of the paper's future-work join variants;
	// the sorted runs make the matching window contiguous).
	Band uint64

	// HistogramBits is the number of leading key bits B used for the
	// fine-grained histogram on the private input (Section 4.2). It is
	// clamped to at least ceil(log2(Workers)) so that there is at least one
	// radix cluster per worker; 0 selects the default of 10 bits (1024
	// clusters), the granularity of the paper's Figure 16 experiment.
	HistogramBits int

	// Splitters selects the range-partition strategy of P-MPSM.
	Splitters SplitterStrategy

	// CDFBoundsPerRun is the number of equi-height bounds f·T each worker
	// contributes to the global S CDF (Section 4.1); 0 selects 4·Workers.
	CDFBoundsPerRun int

	// PresortedPublic declares that the public input is already globally
	// sorted by join key, letting the run-generation phase skip sorting
	// (the paper: "presorted relations can obviously be exploited to omit
	// one or both sorting phases"). Each chunk is still verified with a
	// cheap linear check and sorted if the declaration turns out false.
	PresortedPublic bool
	// PresortedPrivate is the same declaration for the private input. It
	// benefits B-MPSM's phase 2; P-MPSM re-partitions the private input and
	// must sort the resulting partitions regardless.
	PresortedPrivate bool

	// CollectPerWorker records per-worker phase breakdowns (Figure 16).
	CollectPerWorker bool

	// Scheduler selects how the match phase is mapped onto workers.
	// sched.Static (the default) is the paper-faithful barrier-only mode:
	// worker w joins exactly its own private run, and load balance rests on
	// the splitters. sched.Morsel splits the match phase into small
	// (private-segment, public-run) morsels that idle workers steal with a
	// NUMA-locality preference, closing the straggler gap that splitter
	// estimation errors or value skew leave open.
	Scheduler sched.Mode
	// MorselSize is the number of private-run tuples per morsel in the
	// morsel-driven in-memory match phases (B-MPSM, P-MPSM); 0 selects
	// 8192. Smaller morsels balance better but pay more dispatch overhead.
	// D-MPSM's disk-paged match phase always uses whole (private-run,
	// public-run) pairs as its morsels and ignores this setting.
	MorselSize int

	// BatchSize controls the columnar batch execution path of the inner
	// equi-join match phases (B-MPSM and P-MPSM, Static and Morsel): runs are
	// generated in structure-of-arrays form (sorted key column plus permuted
	// payload column) and the merge kernels scan contiguous key columns,
	// emitting matches in batches of this many pairs. 0 selects the default
	// batch size (batch.DefaultSize); a negative value disables the columnar
	// path and keeps the row-at-a-time kernels; a positive value is the batch
	// size in tuples. Band joins, non-inner kinds and D-MPSM always use the
	// row path regardless of this setting.
	BatchSize int

	// Sink receives the joined tuple stream. A nil Sink selects the built-in
	// max-sum aggregate of the paper's evaluation query, which preserves the
	// legacy fire-and-forget Join semantics.
	Sink sink.Sink

	// KeyCheck, when non-nil, verifies every candidate pair before it is
	// counted or handed to the sink — the tie-break path of normalized-key
	// execution, where equal uint64 keys are only 8-byte prefixes of the
	// full composite key. Nil (the default, and the raw-uint64 fast path)
	// delivers pairs unverified at zero overhead.
	KeyCheck sink.PairCheck

	// Scratch, when non-nil, is the engine-wide scratch pool the join draws
	// its run, partition, histogram and cursor buffers from instead of
	// allocating fresh ones; see internal/memory. Every join checks out its
	// own lease, so concurrent joins may share one pool.
	Scratch *memory.Pool
	// Owner attributes the join's scratch lease to a query's admission
	// reservation, so that memory.PoolStats reports the join's in-use bytes
	// under the query's label. Nil leaves the lease unattributed.
	Owner *memory.Reservation

	// Gate, when non-nil, subjects the join's worker goroutines to the
	// serving layer's weighted fair-share arbiter: each phase (Static) or
	// morsel (Morsel) acquires an execution slot before running, so
	// concurrent queries interleave instead of contending FIFO-style.
	Gate *sched.Ticket

	// Faults, when non-nil, arms deterministic fault injection inside the
	// join's workers and scratch lease; see internal/faultinject. Nil (the
	// default) injects nothing.
	Faults *faultinject.Set

	// TrackNUMA enables simulated NUMA access accounting.
	TrackNUMA bool
	// Topology is the simulated NUMA topology; the zero value selects the
	// paper's 4-node × 8-core machine.
	Topology numa.Topology
	// CostModel converts access statistics into a simulated duration; the
	// zero value selects the calibrated default model.
	CostModel numa.CostModel
}

// normalize fills in defaults and derived values.
func (o Options) normalize() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.HistogramBits <= 0 {
		o.HistogramBits = 10
	}
	if minBits := log2ceil(o.Workers); o.HistogramBits < minBits {
		o.HistogramBits = minBits
	}
	if o.HistogramBits > 20 {
		o.HistogramBits = 20
	}
	if o.CDFBoundsPerRun <= 0 {
		o.CDFBoundsPerRun = 4 * o.Workers
	}
	if o.MorselSize <= 0 {
		o.MorselSize = sched.DefaultMorselSize
	}
	if o.Topology.Nodes == 0 {
		o.Topology = numa.DefaultTopology()
	}
	if o.CostModel == (numa.CostModel{}) {
		o.CostModel = numa.DefaultCostModel()
	}
	return o
}

// canceled reports whether the context has been canceled without blocking.
// The MPSM variants call it at phase boundaries and once per chunk of work
// inside the sort and merge loops (per public run, per page), so a canceled
// join stops within one chunk of processing per worker.
func canceled(ctx context.Context) bool { return mergejoin.Canceled(ctx) }

// log2ceil returns ceil(log2(n)) for n >= 1 and 0 otherwise.
func log2ceil(n int) int {
	b := 0
	for (1 << b) < n {
		b++
	}
	return b
}
