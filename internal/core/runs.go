package core

import (
	"context"

	"repro/internal/memory"
	"repro/internal/numa"
	"repro/internal/relation"
	"repro/internal/sched"
	"repro/internal/sorting"
)

// runtimeFor creates the shared parallel runtime of one join execution from
// normalized options.
func runtimeFor(opts Options) *sched.Runtime {
	return sched.New(sched.Config{
		Workers:   opts.Workers,
		Topology:  opts.Topology,
		TrackNUMA: opts.TrackNUMA,
		Gate:      opts.Gate,
		Label:     opts.Owner.Label(),
		Faults:    opts.Faults,
	})
}

// leaseFor checks out the join's scratch lease with fault injection armed.
func leaseFor(opts Options) *memory.Lease {
	return opts.Scratch.AcquireFor(opts.Owner).InjectFaults(opts.Faults)
}

// checkpoint is the phase-boundary error check of every algorithm: a
// recovered worker panic poisons the runtime and wins over plain
// cancellation; either way the lease is poisoned on panic so its buffers are
// quarantined rather than reused.
func checkpoint(ctx context.Context, rt *sched.Runtime, lease *memory.Lease) error {
	if err := rt.Err(); err != nil {
		lease.Poison()
		return err
	}
	return ctx.Err()
}

// sortChunkIntoRun sorts one chunk of the input relation into a worker-local
// run whose buffer comes from the join's scratch lease (or a fresh allocation
// when pooling is off). The redistribution into NUMA-local memory the paper
// prescribes ("chunk the data, redistribute, and then sort/work on your data
// locally") is fused with the first radix digit: SortInto scatters the chunk
// into the run buffer as the widest partitioning pass, so the copy costs no
// separate pass.
//
// srcNode is the NUMA node the source chunk resides on (the input relation is
// assumed to be range-chunked over the nodes); the run itself is allocated on
// the worker's home node. If presorted is true and the chunk is verified to be
// in key order already, the sorting pass is skipped (exploiting pre-existing
// sort orders, as the paper suggests) and the chunk is merely copied.
func sortChunkIntoRun(chunk relation.Chunk, srcNode int, presorted bool, w *sched.Worker, lease *memory.Lease) *relation.Run {
	run := &relation.Run{
		Worker: w.ID(),
		Node:   w.Node(),
		Tuples: lease.Tuples(len(chunk.Tuples)),
	}
	skippedSort := presorted && relation.IsSortedByKey(chunk.Tuples)
	if skippedSort {
		copy(run.Tuples, chunk.Tuples)
	} else {
		sorting.SortInto(chunk.Tuples, run.Tuples)
	}

	if tracker := w.Tracker(); tracker != nil {
		n := uint64(len(chunk.Tuples))
		// Copying reads the source sequentially and writes the local run
		// sequentially; sorting then performs O(n) passes of local
		// random accesses (one radix scatter pass plus the in-cache
		// IntroSort work, charged as two read/write passes).
		tracker.SeqRead(srcNode, n)
		tracker.SeqWrite(run.Node, n)
		if !skippedSort {
			tracker.RandRead(run.Node, 2*n)
			tracker.RandWrite(run.Node, 2*n)
		}
	}
	return run
}

// chunkSourceNode maps an input chunk index to the NUMA node its memory is
// assumed to live on: the input relation is spread over the nodes in
// contiguous blocks, so chunk w of T chunks lives on node w·N/T.
func chunkSourceNode(chunkIndex, workers int, topo numa.Topology) int {
	if workers <= 0 {
		return 0
	}
	node := chunkIndex * topo.Nodes / workers
	if node >= topo.Nodes {
		node = topo.Nodes - 1
	}
	return node
}
