package core

import (
	"sync"
	"time"

	"repro/internal/numa"
	"repro/internal/relation"
	"repro/internal/result"
	"repro/internal/sorting"
)

// parallelFor runs fn(worker) for every worker index concurrently and waits
// for all of them. It is the only synchronization primitive the MPSM variants
// use: a barrier between phases (commandment C3 forbids anything finer).
func parallelFor(workers int, fn func(worker int)) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}

// workerState bundles the per-worker bookkeeping shared by the MPSM variants.
type workerState struct {
	tracker   *numa.Tracker
	phaseTime map[string]time.Duration
}

// newWorkerStates creates one state per worker, with NUMA trackers when
// enabled.
func newWorkerStates(opts Options) []*workerState {
	states := make([]*workerState, opts.Workers)
	for w := 0; w < opts.Workers; w++ {
		states[w] = &workerState{phaseTime: make(map[string]time.Duration)}
		if opts.TrackNUMA {
			states[w].tracker = numa.NewTracker(opts.Topology, w)
		}
	}
	return states
}

// record adds a phase duration to the worker's breakdown.
func (s *workerState) record(phase string, d time.Duration) {
	s.phaseTime[phase] += d
}

// perWorkerBreakdowns converts worker states into the result representation,
// preserving the given phase order.
func perWorkerBreakdowns(states []*workerState, phaseOrder []string) []result.WorkerBreakdown {
	out := make([]result.WorkerBreakdown, len(states))
	for w, s := range states {
		bd := result.WorkerBreakdown{Worker: w}
		for _, name := range phaseOrder {
			bd.Phases = append(bd.Phases, result.Phase{Name: name, Duration: s.phaseTime[name]})
		}
		out[w] = bd
	}
	return out
}

// mergeTrackers collects the NUMA statistics of all workers.
func mergeTrackers(states []*workerState) numa.AccessStats {
	trackers := make([]*numa.Tracker, len(states))
	for i, s := range states {
		trackers[i] = s.tracker
	}
	return numa.MergeStats(trackers)
}

// sortChunkIntoRun copies one chunk of the input relation into a fresh,
// worker-local run and sorts it with the three-phase Radix/IntroSort. The copy
// models the paper's redistribution into NUMA-local memory ("chunk the data,
// redistribute, and then sort/work on your data locally"); its cost is
// amortized by the first partitioning step of the sort.
//
// srcNode is the NUMA node the source chunk resides on (the input relation is
// assumed to be range-chunked over the nodes); the run itself is allocated on
// the worker's home node. If presorted is true and the chunk is verified to be
// in key order already, the sorting pass is skipped (exploiting pre-existing
// sort orders, as the paper suggests).
func sortChunkIntoRun(chunk relation.Chunk, worker int, srcNode int, presorted bool, state *workerState, topo numa.Topology) *relation.Run {
	run := &relation.Run{
		Worker: worker,
		Node:   topo.NodeOfWorker(worker),
		Tuples: make([]relation.Tuple, len(chunk.Tuples)),
	}
	copy(run.Tuples, chunk.Tuples)
	skippedSort := presorted && relation.IsSortedByKey(run.Tuples)
	if !skippedSort {
		sorting.Sort(run.Tuples)
	}

	if state != nil && state.tracker != nil {
		n := uint64(len(chunk.Tuples))
		// Copying reads the source sequentially and writes the local run
		// sequentially; sorting then performs O(n) passes of local
		// random accesses (one radix scatter pass plus the in-cache
		// IntroSort work, charged as two read/write passes).
		state.tracker.SeqRead(srcNode, n)
		state.tracker.SeqWrite(run.Node, n)
		if !skippedSort {
			state.tracker.RandRead(run.Node, 2*n)
			state.tracker.RandWrite(run.Node, 2*n)
		}
	}
	return run
}

// chunkSourceNode maps an input chunk index to the NUMA node its memory is
// assumed to live on: the input relation is spread over the nodes in
// contiguous blocks, so chunk w of T chunks lives on node w·N/T.
func chunkSourceNode(chunkIndex, workers int, topo numa.Topology) int {
	if workers <= 0 {
		return 0
	}
	node := chunkIndex * topo.Nodes / workers
	if node >= topo.Nodes {
		node = topo.Nodes - 1
	}
	return node
}
