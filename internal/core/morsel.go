package core

import (
	"context"

	"repro/internal/mergejoin"
	"repro/internal/relation"
	"repro/internal/sched"
	"repro/internal/sink"
)

// matchTasks builds the morsel task list of the match phase shared by B-MPSM
// (phase 3) and P-MPSM (phase 4): every private run is cut into segments of
// at most opts.MorselSize tuples, and each segment becomes one or more
// independent tasks that any worker may steal. A task prefers the NUMA node
// its private run lives on.
//
// The segmentation is correct for every supported join flavour because all of
// them have per-private-tuple semantics:
//
//   - inner equi-joins pair a segment with a single public run; the
//     interpolation-search skip bounds the scan to the segment's key range,
//   - band joins likewise pair a segment with a single public run (each
//     private tuple's partners form a window of that run),
//   - the non-inner kinds (left-outer, semi, anti) track per-tuple match
//     state across all public runs, so one task joins a segment against
//     every public run, keeping the matched bitmap task-local.
//
// Tasks stream into the stealing worker's sink writer and work counters, so
// no synchronization is needed beyond the queue itself.
func matchTasks(ctx context.Context, privateRuns, publicRuns []*relation.Run, scanned []int, out *sink.Bound, opts Options) []sched.Task {
	var tasks []sched.Task
	for _, priv := range privateRuns {
		node := priv.Node
		tuples := priv.Tuples
		sched.ForEachSegment(len(tuples), opts.MorselSize, func(lo, hi int) {
			seg := tuples[lo:hi]
			switch {
			case opts.Band > 0:
				for _, pub := range publicRuns {
					pub := pub
					tasks = append(tasks, sched.Task{Node: node, Run: func(w *sched.Worker) {
						n := mergejoin.JoinBandAgainstRunsCtx(ctx, seg, []*relation.Run{pub}, opts.Band, out.Writer(w.ID()))
						scanned[w.ID()] += n
						if tracker := w.Tracker(); tracker != nil {
							tracker.SeqRead(node, uint64(len(seg)))
							tracker.SeqRead(pub.Node, uint64(n))
						}
					}})
				}
			case opts.Kind == mergejoin.Inner:
				for _, pub := range publicRuns {
					pub := pub
					tasks = append(tasks, sched.Task{Node: node, Run: func(w *sched.Worker) {
						n := mergejoin.JoinWithSkip(seg, pub.Tuples, out.Writer(w.ID()))
						scanned[w.ID()] += n
						if tracker := w.Tracker(); tracker != nil {
							tracker.SeqRead(node, uint64(len(seg)))
							tracker.SeqRead(pub.Node, uint64(n))
						}
					}})
				}
			default:
				// publicRuns always holds one run per worker (possibly
				// empty), so the task list is never starved of the final
				// unmatched-emission pass the non-inner kinds need.
				tasks = append(tasks, sched.Task{Node: node, Run: func(w *sched.Worker) {
					n := mergejoin.JoinRunsKindCtx(ctx, opts.Kind, seg, publicRuns, out.Writer(w.ID()))
					scanned[w.ID()] += n
					if tracker := w.Tracker(); tracker != nil {
						// The segment is re-scanned once per public run; the
						// public scans are approximated as evenly spread.
						tracker.SeqRead(node, uint64(len(seg))*uint64(len(publicRuns)))
						for _, pub := range publicRuns {
							tracker.SeqRead(pub.Node, uint64(n/len(publicRuns)))
						}
					}
				}})
			}
		})
	}
	return tasks
}
