package core

import (
	"testing"

	"repro/internal/mergejoin"
	"repro/internal/relation"
	"repro/internal/result"
	"repro/internal/sorting"
	"repro/internal/workload"
)

// referenceKind computes the expected cardinality and max-sum for a join kind.
func referenceKind(kind mergejoin.Kind, r, s *relation.Relation) (count, maxSum uint64) {
	var agg mergejoin.MaxAggregate
	mergejoin.ReferenceJoinKind(kind, r.Tuples, s.Tuples, &agg)
	return agg.Count, agg.Max
}

// kindsDataset builds inputs in a narrow domain so that all four join kinds
// produce non-trivial results (some private tuples match, some do not).
func kindsDataset(rSize, mult int, seed uint64) (*relation.Relation, *relation.Relation) {
	domain := uint64(rSize) * 2
	r, s, err := workload.Generate(workload.Spec{
		RSize:        rSize,
		Multiplicity: mult,
		KeyDomain:    domain,
		Seed:         seed,
	})
	if err != nil {
		panic(err)
	}
	return r, s
}

func TestPMPSMJoinKinds(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		r, s := kindsDataset(2500, 4, uint64(workers)*7+1)
		for _, kind := range []mergejoin.Kind{mergejoin.Inner, mergejoin.LeftOuter, mergejoin.Semi, mergejoin.Anti} {
			wantCount, wantMax := referenceKind(kind, r, s)
			res := pmpsm(r, s, Options{Workers: workers, Kind: kind})
			if res.Matches != wantCount {
				t.Fatalf("P-MPSM %v T=%d: matches = %d, want %d", kind, workers, res.Matches, wantCount)
			}
			if wantCount > 0 && res.MaxSum != wantMax {
				t.Fatalf("P-MPSM %v T=%d: max = %d, want %d", kind, workers, res.MaxSum, wantMax)
			}
		}
	}
}

func TestBMPSMJoinKinds(t *testing.T) {
	r, s := kindsDataset(2000, 2, 11)
	for _, kind := range []mergejoin.Kind{mergejoin.Inner, mergejoin.LeftOuter, mergejoin.Semi, mergejoin.Anti} {
		wantCount, wantMax := referenceKind(kind, r, s)
		res := bmpsm(r, s, Options{Workers: 4, Kind: kind})
		if res.Matches != wantCount {
			t.Fatalf("B-MPSM %v: matches = %d, want %d", kind, res.Matches, wantCount)
		}
		if wantCount > 0 && res.MaxSum != wantMax {
			t.Fatalf("B-MPSM %v: max = %d, want %d", kind, res.MaxSum, wantMax)
		}
	}
}

func TestJoinKindsCardinalityIdentities(t *testing.T) {
	// |semi| + |anti| = |R| and |outer| = |inner| + |anti| must hold for the
	// parallel implementations just as for the kernel.
	r, s := kindsDataset(3000, 4, 23)
	counts := map[mergejoin.Kind]uint64{}
	for _, kind := range []mergejoin.Kind{mergejoin.Inner, mergejoin.LeftOuter, mergejoin.Semi, mergejoin.Anti} {
		counts[kind] = pmpsm(r, s, Options{Workers: 8, Kind: kind}).Matches
	}
	if counts[mergejoin.Semi]+counts[mergejoin.Anti] != uint64(r.Len()) {
		t.Fatalf("semi (%d) + anti (%d) != |R| (%d)", counts[mergejoin.Semi], counts[mergejoin.Anti], r.Len())
	}
	if counts[mergejoin.LeftOuter] != counts[mergejoin.Inner]+counts[mergejoin.Anti] {
		t.Fatalf("outer (%d) != inner (%d) + anti (%d)", counts[mergejoin.LeftOuter], counts[mergejoin.Inner], counts[mergejoin.Anti])
	}
}

func TestJoinKindsSkewedData(t *testing.T) {
	r, s, err := workload.Generate(workload.Spec{
		RSize:        2500,
		Multiplicity: 4,
		RSkew:        workload.SkewHigh80,
		SSkew:        workload.SkewLow80,
		KeyDomain:    5000,
		Seed:         31,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []mergejoin.Kind{mergejoin.LeftOuter, mergejoin.Semi, mergejoin.Anti} {
		wantCount, _ := referenceKind(kind, r, s)
		res := pmpsm(r, s, Options{Workers: 8, Kind: kind, Splitters: SplitterEquiCost})
		if res.Matches != wantCount {
			t.Fatalf("skewed %v: matches = %d, want %d", kind, res.Matches, wantCount)
		}
	}
}

func TestBandJoinMPSM(t *testing.T) {
	r, s := kindsDataset(1500, 2, 51)
	for _, band := range []uint64{1, 5, 50} {
		var want mergejoin.MaxAggregate
		mergejoin.ReferenceJoinBand(r.Tuples, s.Tuples, band, &want)
		for name, run := range map[string]func() *result.Result{
			"P-MPSM": func() *result.Result { return pmpsm(r, s, Options{Workers: 4, Band: band}) },
			"B-MPSM": func() *result.Result { return bmpsm(r, s, Options{Workers: 4, Band: band}) },
		} {
			res := run()
			if res.Matches != want.Count {
				t.Fatalf("%s band=%d: matches = %d, want %d", name, band, res.Matches, want.Count)
			}
			if want.Count > 0 && res.MaxSum != want.Max {
				t.Fatalf("%s band=%d: max = %d, want %d", name, band, res.MaxSum, want.Max)
			}
		}
	}
}

func TestBandJoinSupersetOfEquiJoin(t *testing.T) {
	// A band join's cardinality is monotone in the band width and always at
	// least the equi-join cardinality.
	r, s := kindsDataset(2000, 4, 53)
	equi := pmpsm(r, s, Options{Workers: 4}).Matches
	prev := equi
	for _, band := range []uint64{1, 10, 100} {
		got := pmpsm(r, s, Options{Workers: 4, Band: band}).Matches
		if got < prev {
			t.Fatalf("band join cardinality decreased: band=%d gives %d, previous %d", band, got, prev)
		}
		prev = got
	}
}

func TestPresortedInputsSkipSorting(t *testing.T) {
	// A globally presorted public input must still produce a correct join
	// and should reduce the sorting work (visible in the NUMA counters,
	// which omit the random sorting accesses when the sort is skipped).
	r, s := kindsDataset(3000, 4, 77)
	sSorted := s.Clone()
	sorting.Sort(sSorted.Tuples)

	wantCount, wantMax := referenceKind(mergejoin.Inner, r, s)
	plain := pmpsm(r, sSorted, Options{Workers: 4, TrackNUMA: true})
	pre := pmpsm(r, sSorted, Options{Workers: 4, TrackNUMA: true, PresortedPublic: true})
	for name, res := range map[string]*result.Result{"without declaration": plain, "with declaration": pre} {
		if res.Matches != wantCount || res.MaxSum != wantMax {
			t.Fatalf("%s: got (%d, %d), want (%d, %d)", name, res.Matches, res.MaxSum, wantCount, wantMax)
		}
	}
	if pre.NUMA.LocalRandRead >= plain.NUMA.LocalRandRead {
		t.Fatalf("presorted public input should skip sorting accesses: %d vs %d",
			pre.NUMA.LocalRandRead, plain.NUMA.LocalRandRead)
	}

	// A false declaration must not break correctness: the chunks are
	// verified and sorted anyway.
	lying := pmpsm(r, s, Options{Workers: 4, PresortedPublic: true, PresortedPrivate: true})
	if lying.Matches != wantCount {
		t.Fatalf("false presorted declaration broke the join: %d matches, want %d", lying.Matches, wantCount)
	}

	// B-MPSM can additionally skip the private sort.
	bPre := bmpsm(r.Clone(), sSorted, Options{Workers: 4, PresortedPublic: true})
	if bPre.Matches != wantCount {
		t.Fatalf("B-MPSM with presorted public input: %d matches, want %d", bPre.Matches, wantCount)
	}
}

func TestJoinKindsEmptyPublic(t *testing.T) {
	r, _ := kindsDataset(500, 1, 41)
	empty := relation.New("E", nil)
	if got := pmpsm(r, empty, Options{Workers: 4, Kind: mergejoin.Anti}).Matches; got != uint64(r.Len()) {
		t.Fatalf("anti join with empty public = %d, want |R| = %d", got, r.Len())
	}
	if got := pmpsm(r, empty, Options{Workers: 4, Kind: mergejoin.Semi}).Matches; got != 0 {
		t.Fatalf("semi join with empty public = %d, want 0", got)
	}
	if got := pmpsm(r, empty, Options{Workers: 4, Kind: mergejoin.LeftOuter}).Matches; got != uint64(r.Len()) {
		t.Fatalf("outer join with empty public = %d, want |R| = %d", got, r.Len())
	}
}
