package core

import (
	"context"

	"repro/internal/batch"
	"repro/internal/memory"
	"repro/internal/mergejoin"
	"repro/internal/relation"
	"repro/internal/sched"
	"repro/internal/sink"
	"repro/internal/sorting"
)

// The columnar batch execution path: when an inner equi-join runs with
// Options.BatchSize >= 0, B-MPSM and P-MPSM generate their runs in
// structure-of-arrays form (sorted key column plus permuted payload column)
// and the match phase scans contiguous key columns with the prefetched,
// batch-emitting kernels of internal/mergejoin. Band joins, non-inner kinds
// and D-MPSM keep the row-at-a-time path, which also stays around as the
// differential-testing oracle.

// columnarEligible reports whether the join should run on the columnar batch
// path: inner equi-join semantics and a non-negative BatchSize.
func columnarEligible(opts Options) bool {
	return opts.Kind == mergejoin.Inner && opts.Band == 0 && batch.Size(opts.BatchSize) > 0
}

// sortChunkIntoColumnRun is sortChunkIntoRun for the columnar path: one
// sequential read of the array-of-structs chunk feeds the fused
// deinterleave-plus-first-radix-digit scatter of SortTuplesIntoColumns, so the
// AoS→SoA representation change costs no separate pass. The permutation
// scratch comes from the lease and is returned immediately.
func sortChunkIntoColumnRun(chunk relation.Chunk, srcNode int, presorted bool, w *sched.Worker, lease *memory.Lease) *batch.Run {
	n := len(chunk.Tuples)
	run := batch.NewRun(w.ID(), w.Node(), n, lease)
	skippedSort := presorted && relation.IsSortedByKey(chunk.Tuples)
	if skippedSort {
		batch.Deinterleave(chunk.Tuples, run.Keys, run.Payloads)
	} else {
		perm := lease.Int32s(n)
		sorting.SortTuplesIntoColumns(chunk.Tuples, run.Keys, run.Payloads, perm)
		lease.PutInt32s(perm)
	}

	if tracker := w.Tracker(); tracker != nil {
		un := uint64(n)
		// Same accounting as the row path: the representation does not change
		// how many bytes move, only how densely the key accesses pack them.
		tracker.SeqRead(srcNode, un)
		tracker.SeqWrite(run.Node, un)
		if !skippedSort {
			tracker.RandRead(run.Node, 2*un)
			tracker.RandWrite(run.Node, 2*un)
		}
	}
	return run
}

// workerScratches leases one kernel scratch per worker for the match phase.
// Scratches are per-worker, not per-task: a worker executes one morsel at a
// time, so its scratch is never shared.
func workerScratches(workers, size int, lease *memory.Lease) []*batch.Scratch {
	scratches := make([]*batch.Scratch, workers)
	for w := range scratches {
		scratches[w] = batch.NewScratch(size, lease)
	}
	return scratches
}

// closeScratches hands every worker scratch back to the lease.
func closeScratches(scratches []*batch.Scratch) {
	for _, sc := range scratches {
		sc.Close()
	}
}

// columnMatchTasks is matchTasks for the columnar path (inner equi-joins
// only): every private column run is cut into segments of at most
// opts.MorselSize tuples, and each (segment, public-run) pair becomes one
// stealable task running the prefetched columnar kernel with the skip search.
func columnMatchTasks(ctx context.Context, privateRuns, publicRuns []*batch.Run, scanned []int, out *sink.Bound, opts Options, scratches []*batch.Scratch) []sched.Task {
	var tasks []sched.Task
	for _, priv := range privateRuns {
		priv := priv
		node := priv.Node
		sched.ForEachSegment(priv.Len(), opts.MorselSize, func(lo, hi int) {
			segKeys := priv.Keys[lo:hi]
			segPays := priv.Payloads[lo:hi]
			for _, pub := range publicRuns {
				pub := pub
				tasks = append(tasks, sched.Task{Node: node, Run: func(w *sched.Worker) {
					if canceled(ctx) {
						return
					}
					n := mergejoin.JoinColumnsWithSkip(segKeys, segPays, pub.Keys, pub.Payloads, out.Writer(w.ID()), scratches[w.ID()])
					scanned[w.ID()] += n
					if tracker := w.Tracker(); tracker != nil {
						tracker.SeqRead(node, uint64(len(segKeys)))
						tracker.SeqRead(pub.Node, uint64(n))
					}
				}})
			}
		})
	}
	return tasks
}
