package core

import (
	"context"
	"time"

	"repro/internal/batch"
	"repro/internal/mergejoin"
	"repro/internal/relation"
	"repro/internal/result"
	"repro/internal/sched"
	"repro/internal/sink"
)

// BMPSM executes the basic massively parallel sort-merge join (Section 2.1).
//
// The private input R and the public input S are each chunked into T equally
// sized chunks. Phase 1 sorts the public chunks into runs S1..ST, phase 2
// sorts the private chunks into runs R1..RT (both phases work purely on
// worker-local memory), and phase 3 merge joins every private run against
// every public run, streaming matches into the sink. No range partitioning
// takes place, so every worker scans the complete public input — which makes
// B-MPSM absolutely insensitive to skew at the price of O(|S|) join work per
// worker.
//
// With Options.Scheduler == sched.Morsel, phase 3 runs as stolen
// (private-segment, public-run) morsels instead of one static loop per
// worker; results are identical, but per-worker load follows demand rather
// than ownership (and the segment-level interpolation skip means
// PublicScanned reports tuples actually scanned rather than T·|S|).
//
// Inner equi-joins run on the columnar batch path unless Options.BatchSize is
// negative: runs are sorted key/payload column pairs and phase 3 scans
// contiguous key columns with prefetched, batch-emitting kernels. Results are
// pair-for-pair identical to the row path.
//
// Cancellation is checked at phase boundaries and per chunk inside the sort
// and merge loops; a canceled context aborts the join and returns ctx.Err().
func BMPSM(ctx context.Context, private, public *relation.Relation, opts Options) (*result.Result, error) {
	opts = opts.normalize()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	workers := opts.Workers
	res := &result.Result{Algorithm: "B-MPSM", Workers: workers}
	rt := runtimeFor(opts)
	lease := leaseFor(opts)
	defer lease.Release()
	start := time.Now()

	publicChunks := public.Split(workers)
	privateChunks := private.Split(workers)
	publicRuns := make([]*relation.Run, workers)
	privateRuns := make([]*relation.Run, workers)

	// The columnar batch path covers inner equi-joins: runs are generated as
	// sorted key/payload column pairs and the match phase scans contiguous key
	// columns. Other join flavours fall back to the row-at-a-time path.
	columnar := columnarEligible(opts)
	var colPublic, colPrivate []*batch.Run
	if columnar {
		colPublic = make([]*batch.Run, workers)
		colPrivate = make([]*batch.Run, workers)
	}

	// Phase 1: sort the public input chunks into runs, locally per worker.
	phase1 := rt.Phase(ctx, "phase 1", func(ctx context.Context, w *sched.Worker) {
		if columnar {
			colPublic[w.ID()] = sortChunkIntoColumnRun(publicChunks[w.ID()], chunkSourceNode(w.ID(), workers, opts.Topology), opts.PresortedPublic, w, lease)
		} else {
			publicRuns[w.ID()] = sortChunkIntoRun(publicChunks[w.ID()], chunkSourceNode(w.ID(), workers, opts.Topology), opts.PresortedPublic, w, lease)
		}
	})
	res.AddPhase("phase 1", phase1)
	if err := checkpoint(ctx, rt, lease); err != nil {
		return nil, err
	}

	// Phase 2: sort the private input chunks into runs, locally per worker.
	phase2 := rt.Phase(ctx, "phase 2", func(ctx context.Context, w *sched.Worker) {
		if columnar {
			colPrivate[w.ID()] = sortChunkIntoColumnRun(privateChunks[w.ID()], chunkSourceNode(w.ID(), workers, opts.Topology), opts.PresortedPrivate, w, lease)
		} else {
			privateRuns[w.ID()] = sortChunkIntoRun(privateChunks[w.ID()], chunkSourceNode(w.ID(), workers, opts.Topology), opts.PresortedPrivate, w, lease)
		}
	})
	res.AddPhase("phase 2", phase2)
	if err := checkpoint(ctx, rt, lease); err != nil {
		return nil, err
	}

	// Phase 3: every worker merge joins its private run against all public
	// runs. Remote runs are only read sequentially (commandment C2); the
	// single synchronization point required by the algorithm — all public
	// runs must be sorted before the join starts — is the phase barrier
	// above. In morsel mode the same pairings run as stolen tasks instead.
	out := sink.BindChecked(opts.Sink, workers, lease, opts.KeyCheck)
	scanned := make([]int, workers)
	var phase3 time.Duration
	switch {
	case columnar && opts.Scheduler == sched.Morsel:
		scratches := workerScratches(workers, opts.BatchSize, lease)
		phase3 = rt.RunTasks(ctx, "phase 3", columnMatchTasks(ctx, colPrivate, colPublic, scanned, out, opts, scratches))
		closeScratches(scratches)
	case columnar:
		phase3 = rt.Phase(ctx, "phase 3", func(ctx context.Context, w *sched.Worker) {
			priv := colPrivate[w.ID()]
			cons := out.Writer(w.ID())
			tracker := w.Tracker()
			sc := batch.NewScratch(opts.BatchSize, lease)
			defer sc.Close()
			// Like the row-path static mode, every public run is scanned in
			// full — B-MPSM's defining O(|S|) per-worker join work.
			for _, pub := range colPublic {
				if canceled(ctx) {
					return
				}
				mergejoin.JoinColumns(priv.Keys, priv.Payloads, pub.Keys, pub.Payloads, cons, sc)
				scanned[w.ID()] += pub.Len()
				if tracker != nil {
					tracker.SeqRead(priv.Node, uint64(priv.Len()))
					tracker.SeqRead(pub.Node, uint64(pub.Len()))
				}
			}
		})
	case opts.Scheduler == sched.Morsel:
		phase3 = rt.RunTasks(ctx, "phase 3", matchTasks(ctx, privateRuns, publicRuns, scanned, out, opts))
	default:
		phase3 = rt.Phase(ctx, "phase 3", func(ctx context.Context, w *sched.Worker) {
			priv := privateRuns[w.ID()]
			cons := out.Writer(w.ID())
			tracker := w.Tracker()
			if opts.Band > 0 {
				scanned[w.ID()] += mergejoin.JoinBandAgainstRunsCtx(ctx, priv.Tuples, publicRuns, opts.Band, cons)
				if tracker != nil {
					tracker.SeqRead(priv.Node, uint64(len(priv.Tuples))*uint64(len(publicRuns)))
					for _, pub := range publicRuns {
						tracker.SeqRead(pub.Node, uint64(len(pub.Tuples)))
					}
				}
			} else if opts.Kind == mergejoin.Inner {
				for _, pub := range publicRuns {
					if canceled(ctx) {
						return
					}
					mergejoin.Join(priv.Tuples, pub.Tuples, cons)
					scanned[w.ID()] += len(pub.Tuples)
					if tracker != nil {
						// The private run is re-scanned once per public run
						// (locally); the public run is scanned sequentially
						// on whichever node it lives.
						tracker.SeqRead(priv.Node, uint64(len(priv.Tuples)))
						tracker.SeqRead(pub.Node, uint64(len(pub.Tuples)))
					}
				}
			} else {
				scanned[w.ID()] += mergejoin.JoinRunsKindCtx(ctx, opts.Kind, priv.Tuples, publicRuns, cons)
				if tracker != nil {
					tracker.SeqRead(priv.Node, uint64(len(priv.Tuples))*uint64(len(publicRuns)))
					for _, pub := range publicRuns {
						tracker.SeqRead(pub.Node, uint64(len(pub.Tuples)))
					}
				}
			}
		})
	}
	res.AddPhase("phase 3", phase3)
	// Close runs even on cancellation (the sink lifecycle promises it); the
	// context error still wins as the join's outcome.
	closeErr := out.Close()
	if err := checkpoint(ctx, rt, lease); err != nil {
		return nil, err
	}
	if closeErr != nil {
		return nil, closeErr
	}

	for w := 0; w < workers; w++ {
		res.PublicScanned += scanned[w]
	}
	res.Matches = out.Matches()
	res.MaxSum = out.MaxSum()
	res.Batch.Batches, res.Batch.Tuples = out.Batches()
	res.Total = time.Since(start)
	if opts.CollectPerWorker {
		res.PerWorker = rt.Breakdowns([]string{"phase 1", "phase 2", "phase 3"})
		for w := range res.PerWorker {
			if columnar {
				res.PerWorker[w].PrivateTuples = colPrivate[w].Len()
			} else {
				res.PerWorker[w].PrivateTuples = privateRuns[w].Len()
			}
			res.PerWorker[w].PublicScanned = scanned[w]
			res.PerWorker[w].Matches = out.WorkerMatches(w)
		}
	}
	if opts.TrackNUMA {
		res.NUMA = rt.NUMAStats()
		res.SimulatedNUMACost = opts.CostModel.Estimate(res.NUMA)
	}
	res.Scratch = lease.Stats()
	return res, nil
}
