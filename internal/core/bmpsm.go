package core

import (
	"context"
	"time"

	"repro/internal/mergejoin"
	"repro/internal/relation"
	"repro/internal/result"
	"repro/internal/sink"
)

// BMPSM executes the basic massively parallel sort-merge join (Section 2.1).
//
// The private input R and the public input S are each chunked into T equally
// sized chunks. Phase 1 sorts the public chunks into runs S1..ST, phase 2
// sorts the private chunks into runs R1..RT (both phases work purely on
// worker-local memory), and phase 3 merge joins every private run against
// every public run, streaming matches into the sink. No range partitioning
// takes place, so every worker scans the complete public input — which makes
// B-MPSM absolutely insensitive to skew at the price of O(|S|) join work per
// worker.
//
// Cancellation is checked at phase boundaries and per chunk inside the sort
// and merge loops; a canceled context aborts the join and returns ctx.Err().
func BMPSM(ctx context.Context, private, public *relation.Relation, opts Options) (*result.Result, error) {
	opts = opts.normalize()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	workers := opts.Workers
	res := &result.Result{Algorithm: "B-MPSM", Workers: workers}
	states := newWorkerStates(opts)
	start := time.Now()

	publicChunks := public.Split(workers)
	privateChunks := private.Split(workers)
	publicRuns := make([]*relation.Run, workers)
	privateRuns := make([]*relation.Run, workers)

	// Phase 1: sort the public input chunks into runs, locally per worker.
	phase1 := result.StopwatchPhase(func() {
		parallelFor(workers, func(w int) {
			if canceled(ctx) {
				return
			}
			t0 := time.Now()
			publicRuns[w] = sortChunkIntoRun(publicChunks[w], w, chunkSourceNode(w, workers, opts.Topology), opts.PresortedPublic, states[w], opts.Topology)
			states[w].record("phase 1", time.Since(t0))
		})
	})
	res.AddPhase("phase 1", phase1)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 2: sort the private input chunks into runs, locally per worker.
	phase2 := result.StopwatchPhase(func() {
		parallelFor(workers, func(w int) {
			if canceled(ctx) {
				return
			}
			t0 := time.Now()
			privateRuns[w] = sortChunkIntoRun(privateChunks[w], w, chunkSourceNode(w, workers, opts.Topology), opts.PresortedPrivate, states[w], opts.Topology)
			states[w].record("phase 2", time.Since(t0))
		})
	})
	res.AddPhase("phase 2", phase2)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 3: every worker merge joins its private run against all public
	// runs. Remote runs are only read sequentially (commandment C2); the
	// single synchronization point required by the algorithm — all public
	// runs must be sorted before the join starts — is the phase barrier
	// above.
	out := sink.Bind(opts.Sink, workers)
	scanned := make([]int, workers)
	phase3 := result.StopwatchPhase(func() {
		parallelFor(workers, func(w int) {
			t0 := time.Now()
			priv := privateRuns[w]
			cons := out.Writer(w)
			if opts.Band > 0 {
				if canceled(ctx) {
					return
				}
				scanned[w] += mergejoin.JoinBandAgainstRunsCtx(ctx, priv.Tuples, publicRuns, opts.Band, cons)
				if states[w].tracker != nil {
					states[w].tracker.SeqRead(priv.Node, uint64(len(priv.Tuples))*uint64(len(publicRuns)))
					for _, pub := range publicRuns {
						states[w].tracker.SeqRead(pub.Node, uint64(len(pub.Tuples)))
					}
				}
			} else if opts.Kind == mergejoin.Inner {
				for _, pub := range publicRuns {
					if canceled(ctx) {
						return
					}
					mergejoin.Join(priv.Tuples, pub.Tuples, cons)
					scanned[w] += len(pub.Tuples)
					if states[w].tracker != nil {
						// The private run is re-scanned once per public run
						// (locally); the public run is scanned sequentially
						// on whichever node it lives.
						states[w].tracker.SeqRead(priv.Node, uint64(len(priv.Tuples)))
						states[w].tracker.SeqRead(pub.Node, uint64(len(pub.Tuples)))
					}
				}
			} else {
				if canceled(ctx) {
					return
				}
				scanned[w] += mergejoin.JoinRunsKindCtx(ctx, opts.Kind, priv.Tuples, publicRuns, cons)
				if states[w].tracker != nil {
					states[w].tracker.SeqRead(priv.Node, uint64(len(priv.Tuples))*uint64(len(publicRuns)))
					for _, pub := range publicRuns {
						states[w].tracker.SeqRead(pub.Node, uint64(len(pub.Tuples)))
					}
				}
			}
			states[w].record("phase 3", time.Since(t0))
		})
	})
	res.AddPhase("phase 3", phase3)
	// Close runs even on cancellation (the sink lifecycle promises it); the
	// context error still wins as the join's outcome.
	closeErr := out.Close()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if closeErr != nil {
		return nil, closeErr
	}

	for w := 0; w < workers; w++ {
		res.PublicScanned += scanned[w]
	}
	res.Matches = out.Matches()
	res.MaxSum = out.MaxSum()
	res.Total = time.Since(start)
	if opts.CollectPerWorker {
		res.PerWorker = perWorkerBreakdowns(states, []string{"phase 1", "phase 2", "phase 3"})
		for w := range res.PerWorker {
			res.PerWorker[w].PrivateTuples = privateRuns[w].Len()
			res.PerWorker[w].PublicScanned = scanned[w]
			res.PerWorker[w].Matches = out.WorkerMatches(w)
		}
	}
	if opts.TrackNUMA {
		res.NUMA = mergeTrackers(states)
		res.SimulatedNUMACost = opts.CostModel.Estimate(res.NUMA)
	}
	return res, nil
}
