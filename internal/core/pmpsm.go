package core

import (
	"context"
	"time"

	"repro/internal/batch"
	"repro/internal/memory"
	"repro/internal/mergejoin"
	"repro/internal/partition"
	"repro/internal/relation"
	"repro/internal/result"
	"repro/internal/sched"
	"repro/internal/sink"
	"repro/internal/sorting"
)

// PMPSM executes the range-partitioned massively parallel sort-merge join
// (Sections 3.2 and 4), the paper's main in-memory contribution.
//
// Phases (Figure 5):
//
//	phase 1  chunk the public input S and sort the chunks into local runs;
//	phase 2  range partition the private input R: build the global S CDF from
//	         per-run equi-height histograms (2.1), build fine-grained radix
//	         histograms on the R chunks (2.2), compute load-balancing
//	         splitters and scatter R into per-worker range partitions via
//	         precomputed prefix sums — no synchronization, sequential writes
//	         only (2.3);
//	phase 3  sort each private range partition into a run;
//	phase 4  every worker merge joins its private run with the relevant,
//	         interpolation-searched fraction of every public run, streaming
//	         every matching pair into the configured sink.
//
// The private input should be the smaller relation; see the role-reversal
// experiment (Section 5.4).
//
// With Options.Scheduler == sched.Morsel, phase 4 runs as stolen
// (private-segment, public-run) morsels: when the splitters misjudge the
// distribution (estimation error, value skew), the overloaded worker's run
// is processed by whoever is idle, with a preference for NUMA-local morsels.
// Results are identical to the static mode.
//
// Cancellation is checked at every phase boundary and once per chunk inside
// the sort and merge loops; a canceled context aborts the join and returns
// ctx.Err().
func PMPSM(ctx context.Context, private, public *relation.Relation, opts Options) (*result.Result, error) {
	opts = opts.normalize()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	workers := opts.Workers
	res := &result.Result{Algorithm: "P-MPSM", Workers: workers}
	rt := runtimeFor(opts)
	lease := leaseFor(opts)
	defer lease.Release()
	start := time.Now()

	publicChunks := public.Split(workers)
	privateChunks := private.Split(workers)
	publicRuns := make([]*relation.Run, workers)

	// The columnar batch path covers inner equi-joins; see columnar.go.
	columnar := columnarEligible(opts)
	var colPublic, colPrivate []*batch.Run
	if columnar {
		colPublic = make([]*batch.Run, workers)
		colPrivate = make([]*batch.Run, workers)
	}

	// Phase 1: sort the public input chunks into local runs.
	phase1 := rt.Phase(ctx, "phase 1", func(ctx context.Context, w *sched.Worker) {
		if columnar {
			colPublic[w.ID()] = sortChunkIntoColumnRun(publicChunks[w.ID()], chunkSourceNode(w.ID(), workers, opts.Topology), opts.PresortedPublic, w, lease)
		} else {
			publicRuns[w.ID()] = sortChunkIntoRun(publicChunks[w.ID()], chunkSourceNode(w.ID(), workers, opts.Topology), opts.PresortedPublic, w, lease)
		}
	})
	res.AddPhase("phase 1", phase1)
	if err := checkpoint(ctx, rt, lease); err != nil {
		return nil, err
	}

	// Phase 2: range partition the private input. The partitioning itself is
	// row-oriented either way (it scatters the input chunks); only the S CDF
	// bounds are read off whichever public-run representation phase 1 built.
	var privateRuns []*relation.Run
	var privateMaxKey uint64
	phase2 := result.StopwatchPhase(func() {
		privateRuns, privateMaxKey = rangePartitionPrivate(ctx, rt, privateChunks, publicRuns, colPublic, opts, lease)
	})
	res.AddPhase("phase 2", phase2)
	if err := checkpoint(ctx, rt, lease); err != nil {
		return nil, err
	}

	// Phase 3: sort each private range partition into a run. Phase 2 already
	// determined the global maximum private key for its radix histograms, so
	// the sort skips its own key-domain scan. On the columnar path the sort
	// doubles as the AoS→SoA conversion: the scattered partition sorts
	// directly into a column run and its row buffer goes back to the lease.
	phase3 := rt.Phase(ctx, "phase 3", func(ctx context.Context, w *sched.Worker) {
		run := privateRuns[w.ID()]
		if columnar {
			n := len(run.Tuples)
			col := batch.NewRun(run.Worker, run.Node, n, lease)
			perm := lease.Int32s(n)
			sorting.SortTuplesIntoColumns(run.Tuples, col.Keys, col.Payloads, perm)
			lease.PutInt32s(perm)
			lease.PutTuples(run.Tuples)
			colPrivate[w.ID()] = col
		} else {
			sorting.SortWithMax(run.Tuples, privateMaxKey)
		}
		if tracker := w.Tracker(); tracker != nil {
			n := uint64(len(run.Tuples))
			tracker.RandRead(run.Node, 2*n)
			tracker.RandWrite(run.Node, 2*n)
		}
	})
	res.AddPhase("phase 3", phase3)
	if err := checkpoint(ctx, rt, lease); err != nil {
		return nil, err
	}

	// Phase 4: merge join every private run with the relevant fraction of
	// every public run, located via interpolation search. Matching pairs
	// stream into the sink through per-worker writers (no synchronization).
	// In morsel mode the same work runs as stolen segment morsels instead.
	out := sink.BindChecked(opts.Sink, workers, lease, opts.KeyCheck)
	scanned := make([]int, workers)
	var phase4 time.Duration
	switch {
	case columnar && opts.Scheduler == sched.Morsel:
		scratches := workerScratches(workers, opts.BatchSize, lease)
		phase4 = rt.RunTasks(ctx, "phase 4", columnMatchTasks(ctx, colPrivate, colPublic, scanned, out, opts, scratches))
		closeScratches(scratches)
	case columnar:
		phase4 = rt.Phase(ctx, "phase 4", func(ctx context.Context, w *sched.Worker) {
			priv := colPrivate[w.ID()]
			cons := out.Writer(w.ID())
			tracker := w.Tracker()
			sc := batch.NewScratch(opts.BatchSize, lease)
			defer sc.Close()
			// Like the row-path static mode, the interpolation-search skip
			// bounds each public scan to the private run's key range.
			for _, pub := range colPublic {
				if canceled(ctx) {
					return
				}
				n := mergejoin.JoinColumnsWithSkip(priv.Keys, priv.Payloads, pub.Keys, pub.Payloads, cons, sc)
				scanned[w.ID()] += n
				if tracker != nil {
					tracker.SeqRead(priv.Node, uint64(priv.Len()))
					tracker.SeqRead(pub.Node, uint64(n))
				}
			}
		})
	case opts.Scheduler == sched.Morsel:
		phase4 = rt.RunTasks(ctx, "phase 4", matchTasks(ctx, privateRuns, publicRuns, scanned, out, opts))
	default:
		phase4 = rt.Phase(ctx, "phase 4", func(ctx context.Context, w *sched.Worker) {
			priv := privateRuns[w.ID()]
			cons := out.Writer(w.ID())
			tracker := w.Tracker()
			if opts.Band > 0 {
				// Non-equi band join: every private tuple matches a
				// contiguous window of each public run.
				n := mergejoin.JoinBandAgainstRunsCtx(ctx, priv.Tuples, publicRuns, opts.Band, cons)
				scanned[w.ID()] += n
				if tracker != nil {
					tracker.SeqRead(priv.Node, uint64(len(priv.Tuples))*uint64(len(publicRuns)))
					for _, pub := range publicRuns {
						tracker.SeqRead(pub.Node, uint64(n/len(publicRuns)))
					}
				}
			} else if opts.Kind == mergejoin.Inner {
				for _, pub := range publicRuns {
					if canceled(ctx) {
						return
					}
					n := mergejoin.JoinWithSkip(priv.Tuples, pub.Tuples, cons)
					scanned[w.ID()] += n
					if tracker != nil {
						tracker.SeqRead(priv.Node, uint64(len(priv.Tuples)))
						tracker.SeqRead(pub.Node, uint64(n))
					}
				}
			} else {
				// Non-inner kinds track per-tuple match state across all
				// public runs, so the kernel owns the whole loop. The NUMA
				// accounting approximates the public scans as evenly spread
				// over the runs.
				n := mergejoin.JoinRunsKindCtx(ctx, opts.Kind, priv.Tuples, publicRuns, cons)
				scanned[w.ID()] += n
				if tracker != nil {
					tracker.SeqRead(priv.Node, uint64(len(priv.Tuples))*uint64(len(publicRuns)))
					for _, pub := range publicRuns {
						tracker.SeqRead(pub.Node, uint64(n/len(publicRuns)))
					}
				}
			}
		})
	}
	res.AddPhase("phase 4", phase4)
	// Close runs even on cancellation: the sink was opened and its writers
	// consumed tuples, so it must learn the execution ended. The context
	// error still wins as the join's outcome.
	closeErr := out.Close()
	if err := checkpoint(ctx, rt, lease); err != nil {
		return nil, err
	}
	if closeErr != nil {
		return nil, closeErr
	}

	for w := 0; w < workers; w++ {
		res.PublicScanned += scanned[w]
	}
	res.Matches = out.Matches()
	res.MaxSum = out.MaxSum()
	res.Batch.Batches, res.Batch.Tuples = out.Batches()
	res.Total = time.Since(start)
	if opts.CollectPerWorker {
		res.PerWorker = rt.Breakdowns([]string{"phase 1", "phase 2", "phase 3", "phase 4"})
		for w := range res.PerWorker {
			res.PerWorker[w].PrivateTuples = privateRuns[w].Len()
			res.PerWorker[w].PublicScanned = scanned[w]
			res.PerWorker[w].Matches = out.WorkerMatches(w)
		}
	}
	if opts.TrackNUMA {
		res.NUMA = rt.NUMAStats()
		res.SimulatedNUMACost = opts.CostModel.Estimate(res.NUMA)
	}
	res.Scratch = lease.Stats()
	return res, nil
}

// rangePartitionPrivate implements phase 2 of P-MPSM: it returns one private
// run (still unsorted) per worker, holding exactly the tuples of that worker's
// key range, together with the maximum private key (determined for the radix
// histograms and reused by the phase 3 sort). On cancellation it returns
// early with whatever it has built; the caller checks ctx after the phase and
// discards the partial state. All parallel steps run as "phase 2" barriers on
// the shared runtime, so the per-worker breakdown accumulates them under one
// label. Histogram, cursor and run buffers come from the join's scratch
// lease.
func rangePartitionPrivate(ctx context.Context, rt *sched.Runtime, privateChunks []relation.Chunk, publicRuns []*relation.Run, colPublic []*batch.Run, opts Options, lease *memory.Lease) ([]*relation.Run, uint64) {
	workers := opts.Workers

	// Phase 2.1: per-run equi-height bounds merged into the global S CDF.
	// The bounds are read off the already-sorted public runs — row or
	// columnar, whichever representation phase 1 built — so this costs
	// almost nothing.
	boundsPerRun := make([][]uint64, workers)
	runLens := make([]int, workers)
	rt.Phase(ctx, "phase 2", func(ctx context.Context, w *sched.Worker) {
		if colPublic != nil {
			boundsPerRun[w.ID()] = partition.EquiHeightBoundsKeys(colPublic[w.ID()].Keys, opts.CDFBoundsPerRun)
			runLens[w.ID()] = colPublic[w.ID()].Len()
		} else {
			boundsPerRun[w.ID()] = partition.EquiHeightBounds(publicRuns[w.ID()].Tuples, opts.CDFBoundsPerRun)
			runLens[w.ID()] = publicRuns[w.ID()].Len()
		}
	})
	if canceled(ctx) || rt.Err() != nil {
		return nil, 0
	}
	cdf := partition.BuildCDF(boundsPerRun, runLens)

	// Phase 2.2: fine-grained radix histograms on the private chunks. Each
	// worker also determines the maximum key of its chunk so that the radix
	// configuration can be derived without a separate pass.
	chunkMax := make([]uint64, workers)
	rt.Phase(ctx, "phase 2", func(ctx context.Context, w *sched.Worker) {
		var localMax uint64
		for _, t := range privateChunks[w.ID()].Tuples {
			if t.Key > localMax {
				localMax = t.Key
			}
		}
		chunkMax[w.ID()] = localMax
		if tracker := w.Tracker(); tracker != nil {
			tracker.SeqRead(chunkSourceNode(w.ID(), workers, opts.Topology), uint64(len(privateChunks[w.ID()].Tuples)))
		}
	})
	if canceled(ctx) || rt.Err() != nil {
		return nil, 0
	}
	var maxKey uint64
	for _, m := range chunkMax {
		if m > maxKey {
			maxKey = m
		}
	}
	cfg := partition.NewRadixConfig(opts.HistogramBits, maxKey)

	histograms := make([]partition.Histogram, workers)
	rt.Phase(ctx, "phase 2", func(ctx context.Context, w *sched.Worker) {
		histograms[w.ID()] = partition.BuildHistogramInto(lease.Ints(cfg.Clusters()), privateChunks[w.ID()].Tuples, cfg)
		if tracker := w.Tracker(); tracker != nil {
			tracker.SeqRead(chunkSourceNode(w.ID(), workers, opts.Topology), uint64(len(privateChunks[w.ID()].Tuples)))
		}
	})
	if canceled(ctx) || rt.Err() != nil {
		return nil, 0
	}

	// Phase 2.3: splitter computation, prefix sums, and the
	// synchronization-free scatter into precomputed sub-partitions.
	globalR := partition.CombineHistograms(histograms)
	var sp partition.SplitterVector
	switch opts.Splitters {
	case SplitterUniform:
		sp = partition.UniformSplitters(cfg.Clusters(), workers)
	case SplitterEquiHeight:
		sp = partition.EquiHeightSplitters(globalR, workers)
	default:
		sp = partition.ComputeSplitters(globalR, cdf, cfg, partition.DefaultSplitterCost(workers))
	}
	ps := partition.ComputePrefixSums(histograms, sp, workers)

	privateRuns := make([]*relation.Run, workers)
	for p := 0; p < workers; p++ {
		privateRuns[p] = &relation.Run{
			Worker: p,
			Node:   opts.Topology.NodeOfWorker(p),
			Tuples: lease.Tuples(ps.Sizes[p]),
		}
	}
	targets := make([][]relation.Tuple, workers)
	for p := 0; p < workers; p++ {
		targets[p] = privateRuns[p].Tuples
	}

	rt.Phase(ctx, "phase 2", func(ctx context.Context, w *sched.Worker) {
		cursors := lease.Ints(workers)
		copy(cursors, ps.Offsets[w.ID()])
		before := lease.Ints(workers)
		copy(before, cursors)
		partition.Scatter(privateChunks[w.ID()].Tuples, cfg, sp, targets, cursors)
		if tracker := w.Tracker(); tracker != nil {
			// The chunk is read sequentially from its source node; every
			// target sub-partition is written sequentially on the target
			// worker's node (remote, but sequential — commandments C1/C2).
			tracker.SeqRead(chunkSourceNode(w.ID(), workers, opts.Topology), uint64(len(privateChunks[w.ID()].Tuples)))
			for p := 0; p < workers; p++ {
				tracker.SeqWrite(privateRuns[p].Node, uint64(cursors[p]-before[p]))
			}
		}
		lease.PutInts(cursors)
		lease.PutInts(before)
	})
	return privateRuns, maxKey
}
