package core

import (
	"sort"
	"testing"

	"repro/internal/mergejoin"
	"repro/internal/relation"
	"repro/internal/sched"
	"repro/internal/sink"
	"repro/internal/workload"
)

// sortedPairs returns the materialized result pairs in a canonical order so
// that two executions can be compared as multisets.
func sortedPairs(m *sink.Materialize) []sink.Pair {
	pairs := append([]sink.Pair(nil), m.Pairs()...)
	sort.Slice(pairs, func(i, j int) bool {
		a, b := pairs[i], pairs[j]
		if a.R.Key != b.R.Key {
			return a.R.Key < b.R.Key
		}
		if a.R.Payload != b.R.Payload {
			return a.R.Payload < b.R.Payload
		}
		if a.S.Key != b.S.Key {
			return a.S.Key < b.S.Key
		}
		return a.S.Payload < b.S.Payload
	})
	return pairs
}

// runMaterialized executes one MPSM join with a materializing sink and
// returns the canonicalized pairs plus the (matches, maxSum) counters.
func runMaterialized(t *testing.T, algorithm string, r, s *relation.Relation, opts Options) ([]sink.Pair, uint64, uint64) {
	t.Helper()
	m := sink.NewMaterialize()
	opts.Sink = m
	var matches, maxSum uint64
	switch algorithm {
	case "B":
		res := bmpsm(r, s, opts)
		matches, maxSum = res.Matches, res.MaxSum
	case "P":
		res := pmpsm(r, s, opts)
		matches, maxSum = res.Matches, res.MaxSum
	case "D":
		res, _ := dmpsm(r, s, opts, DiskOptions{PageSize: 256, PageBudget: 16})
		matches, maxSum = res.Matches, res.MaxSum
	default:
		t.Fatalf("unknown algorithm %q", algorithm)
	}
	return sortedPairs(m), matches, maxSum
}

// TestSchedulerModeParity locks in the tentpole guarantee: the static and
// morsel schedulers produce identical results — same match count, same
// max-sum, and the same materialized multiset of joined pairs — for every
// MPSM variant and join flavour. The morsel size is forced far below the
// run sizes so that the morsel path genuinely splits, steals and interleaves.
func TestSchedulerModeParity(t *testing.T) {
	r, s := uniformDataset(3000, 4, 71)

	cases := []struct {
		name string
		alg  string
		opts Options
	}{
		{"B-MPSM inner", "B", Options{}},
		{"P-MPSM inner", "P", Options{}},
		{"D-MPSM inner", "D", Options{}},
		{"B-MPSM left-outer", "B", Options{Kind: mergejoin.LeftOuter}},
		{"P-MPSM left-outer", "P", Options{Kind: mergejoin.LeftOuter}},
		{"B-MPSM semi", "B", Options{Kind: mergejoin.Semi}},
		{"P-MPSM semi", "P", Options{Kind: mergejoin.Semi}},
		{"B-MPSM anti", "B", Options{Kind: mergejoin.Anti}},
		{"P-MPSM anti", "P", Options{Kind: mergejoin.Anti}},
		{"B-MPSM band", "B", Options{Band: 64}},
		{"P-MPSM band", "P", Options{Band: 64}},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 4, 7} {
			opts := tc.opts
			opts.Workers = workers
			opts.MorselSize = 128

			opts.Scheduler = sched.Static
			wantPairs, wantMatches, wantMax := runMaterialized(t, tc.alg, r, s, opts)

			opts.Scheduler = sched.Morsel
			gotPairs, gotMatches, gotMax := runMaterialized(t, tc.alg, r, s, opts)

			if gotMatches != wantMatches || gotMax != wantMax {
				t.Fatalf("%s T=%d: morsel (matches=%d max=%d) != static (matches=%d max=%d)",
					tc.name, workers, gotMatches, gotMax, wantMatches, wantMax)
			}
			if len(gotPairs) != len(wantPairs) {
				t.Fatalf("%s T=%d: morsel materialized %d pairs, static %d", tc.name, workers, len(gotPairs), len(wantPairs))
			}
			for i := range gotPairs {
				if gotPairs[i] != wantPairs[i] {
					t.Fatalf("%s T=%d: pair %d differs: morsel %+v, static %+v", tc.name, workers, i, gotPairs[i], wantPairs[i])
				}
			}
		}
	}
}

// TestSchedulerModeParityUnderSkew repeats the parity check on the
// negatively correlated skew workload with deliberately bad (uniform)
// splitters, the scenario the morsel scheduler exists for.
func TestSchedulerModeParityUnderSkew(t *testing.T) {
	r, s, err := workload.Generate(workload.Spec{
		RSize:        4000,
		Multiplicity: 4,
		RSkew:        workload.SkewHigh80,
		SSkew:        workload.SkewLow80,
		KeyDomain:    1 << 14,
		Seed:         77,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Workers: 8, Splitters: SplitterUniform, MorselSize: 64}

	static := base
	static.Scheduler = sched.Static
	wantPairs, wantMatches, _ := runMaterialized(t, "P", r, s, static)
	if refCount, _ := reference(r, s); wantMatches != refCount {
		t.Fatalf("P-MPSM static skew: matches = %d, want %d", wantMatches, refCount)
	}

	morsel := base
	morsel.Scheduler = sched.Morsel
	gotPairs, gotMatches, _ := runMaterialized(t, "P", r, s, morsel)
	if gotMatches != wantMatches || len(gotPairs) != len(wantPairs) {
		t.Fatalf("skewed parity broken: morsel %d pairs / %d matches, static %d / %d",
			len(gotPairs), gotMatches, len(wantPairs), wantMatches)
	}
	for i := range gotPairs {
		if gotPairs[i] != wantPairs[i] {
			t.Fatalf("skewed pair %d differs: morsel %+v, static %+v", i, gotPairs[i], wantPairs[i])
		}
	}
}

// TestMorselSchedulingBalancesSkewedMatchPhase is the scheduler-fairness
// regression test: under heavy value skew with data-oblivious splitters,
// static scheduling leaves almost all phase-4 work (measured by matches
// produced, which is deterministic) on a few workers, while the morsel queue
// spreads it across whoever is idle.
func TestMorselSchedulingBalancesSkewedMatchPhase(t *testing.T) {
	r, s, err := workload.Generate(workload.Spec{
		RSize:        6000,
		Multiplicity: 4,
		RSkew:        workload.SkewHigh80,
		SSkew:        workload.SkewHigh80,
		KeyDomain:    1 << 14,
		Seed:         123,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Workers: 8, Splitters: SplitterUniform, CollectPerWorker: true, MorselSize: 64}

	share := func(mode sched.Mode) (float64, uint64) {
		opts := base
		opts.Scheduler = mode
		res := pmpsm(r, s, opts)
		var total, maxMatches uint64
		for _, wb := range res.PerWorker {
			total += wb.Matches
			if wb.Matches > maxMatches {
				maxMatches = wb.Matches
			}
		}
		if total == 0 {
			t.Fatalf("%v: skew workload produced no matches", mode)
		}
		return float64(maxMatches) / float64(total), total
	}

	staticShare, staticTotal := share(sched.Static)
	morselShare, morselTotal := share(sched.Morsel)
	if staticTotal != morselTotal {
		t.Fatalf("modes disagree on matches: static %d, morsel %d", staticTotal, morselTotal)
	}

	// Sanity: the workload must actually skew the static assignment (with
	// 8 workers a balanced run would put ~12.5% on the heaviest worker).
	if staticShare < 0.25 {
		t.Fatalf("static share %.2f too balanced — the skew scenario is broken", staticShare)
	}
	// The point of the morsel queue: the heaviest worker's share of the
	// match work must drop meaningfully versus static scheduling.
	if morselShare >= staticShare*0.75 {
		t.Fatalf("morsel scheduling did not rebalance: heaviest worker share %.2f (static %.2f)",
			morselShare, staticShare)
	}
}

// TestPresortedPrivateSkipsSort locks in the PresortedPrivate contract for
// B-MPSM: when the private input is declared and verified sorted, phase 2
// skips the sorting pass entirely — observable as exactly the 2·|R| random
// reads and 2·|R| random writes the sort would have charged to the NUMA
// tracker — while the join result is unchanged.
func TestPresortedPrivateSkipsSort(t *testing.T) {
	r, s := uniformDataset(4000, 2, 55)
	sortedR := r.Clone()
	sortTuples(sortedR.Tuples)

	run := func(private *relation.Relation, presorted bool) (*relationResult, uint64) {
		res := bmpsm(private, s, Options{Workers: 4, TrackNUMA: true, PresortedPrivate: presorted})
		return &relationResult{
			randReads:  res.NUMA.LocalRandRead + res.NUMA.RemoteRandRead,
			randWrites: res.NUMA.LocalRandWrite + res.NUMA.RemoteRandWrite,
			maxSum:     res.MaxSum,
		}, res.Matches
	}

	declared, declaredMatches := run(sortedR, true)
	undeclared, undeclaredMatches := run(sortedR, false)

	if declaredMatches != undeclaredMatches || declared.maxSum != undeclared.maxSum {
		t.Fatalf("PresortedPrivate changed the result: (%d, %d) vs (%d, %d)",
			declaredMatches, declared.maxSum, undeclaredMatches, undeclared.maxSum)
	}
	n := uint64(sortedR.Len())
	if undeclared.randReads-declared.randReads != 2*n {
		t.Fatalf("declared run saved %d random reads, want exactly %d (the skipped sort)",
			undeclared.randReads-declared.randReads, 2*n)
	}
	if undeclared.randWrites-declared.randWrites != 2*n {
		t.Fatalf("declared run saved %d random writes, want exactly %d (the skipped sort)",
			undeclared.randWrites-declared.randWrites, 2*n)
	}

	// A false declaration must fall back to sorting: same access counts as
	// the undeclared run, and a correct result despite the unsorted input.
	falseDeclared, falseMatches := run(r, true)
	if falseMatches != undeclaredMatches {
		t.Fatalf("false declaration broke the join: %d matches, want %d", falseMatches, undeclaredMatches)
	}
	if falseDeclared.randReads != undeclared.randReads || falseDeclared.randWrites != undeclared.randWrites {
		t.Fatalf("false declaration skipped the sort: %+v vs %+v", falseDeclared, undeclared)
	}
}

// relationResult bundles the counters TestPresortedPrivateSkipsSort compares.
type relationResult struct {
	randReads, randWrites uint64
	maxSum                uint64
}

// sortTuples key-sorts a tuple slice in place (test helper).
func sortTuples(tuples []relation.Tuple) {
	sort.Slice(tuples, func(i, j int) bool { return tuples[i].Key < tuples[j].Key })
}
