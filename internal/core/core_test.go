package core

import (
	"context"
	"testing"

	"repro/internal/mergejoin"
	"repro/internal/relation"
	"repro/internal/result"
	"repro/internal/workload"
)

// The correctness tests drive the algorithms on a background context, so the
// cancellation error path cannot trigger; these wrappers keep them concise.
// The cancellation behaviour itself is covered by cancel_test.go and the
// public-API tests.

func pmpsm(r, s *relation.Relation, opts Options) *result.Result {
	res, err := PMPSM(context.Background(), r, s, opts)
	if err != nil {
		panic(err)
	}
	return res
}

func bmpsm(r, s *relation.Relation, opts Options) *result.Result {
	res, err := BMPSM(context.Background(), r, s, opts)
	if err != nil {
		panic(err)
	}
	return res
}

func dmpsm(r, s *relation.Relation, opts Options, diskOpts DiskOptions) (*result.Result, DiskStats) {
	res, stats, err := DMPSM(context.Background(), r, s, opts, diskOpts)
	if err != nil {
		panic(err)
	}
	return res, stats
}

// reference computes the expected join cardinality and max-sum.
func reference(r, s *relation.Relation) (count, maxSum uint64) {
	var agg mergejoin.MaxAggregate
	mergejoin.ReferenceJoin(r.Tuples, s.Tuples, &agg)
	return agg.Count, agg.Max
}

func uniformDataset(rSize, mult int, seed uint64) (*relation.Relation, *relation.Relation) {
	r, s, err := workload.Generate(workload.Spec{
		RSize:        rSize,
		Multiplicity: mult,
		ForeignKey:   true,
		Seed:         seed,
	})
	if err != nil {
		panic(err)
	}
	return r, s
}

func checkJoinResult(t *testing.T, name string, r, s *relation.Relation, matches, maxSum uint64) {
	t.Helper()
	wantCount, wantMax := reference(r, s)
	if matches != wantCount {
		t.Fatalf("%s: matches = %d, want %d", name, matches, wantCount)
	}
	if wantCount > 0 && maxSum != wantMax {
		t.Fatalf("%s: max sum = %d, want %d", name, maxSum, wantMax)
	}
}

func TestBMPSMCorrectness(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 8} {
		for _, mult := range []int{1, 4} {
			r, s := uniformDataset(1500, mult, uint64(workers*31+mult))
			res := bmpsm(r, s, Options{Workers: workers})
			checkJoinResult(t, "B-MPSM", r, s, res.Matches, res.MaxSum)
			if res.Algorithm != "B-MPSM" || res.Workers != workers {
				t.Fatalf("result metadata: %+v", res)
			}
			if len(res.Phases) != 3 {
				t.Fatalf("B-MPSM should report 3 phases, got %d", len(res.Phases))
			}
			// B-MPSM scans the complete public input once per worker.
			if res.PublicScanned != workers*s.Len() {
				t.Fatalf("PublicScanned = %d, want %d", res.PublicScanned, workers*s.Len())
			}
		}
	}
}

func TestPMPSMCorrectness(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 8} {
		for _, mult := range []int{1, 4, 8} {
			r, s := uniformDataset(1500, mult, uint64(workers*17+mult))
			res := pmpsm(r, s, Options{Workers: workers})
			checkJoinResult(t, "P-MPSM", r, s, res.Matches, res.MaxSum)
			if len(res.Phases) != 4 {
				t.Fatalf("P-MPSM should report 4 phases, got %d", len(res.Phases))
			}
		}
	}
}

func TestPMPSMAllSplitterStrategies(t *testing.T) {
	r, s := uniformDataset(3000, 4, 99)
	for _, strategy := range []SplitterStrategy{SplitterEquiCost, SplitterEquiHeight, SplitterUniform} {
		res := pmpsm(r, s, Options{Workers: 4, Splitters: strategy})
		checkJoinResult(t, strategy.String(), r, s, res.Matches, res.MaxSum)
	}
}

func TestPMPSMScansLessPublicDataThanBMPSM(t *testing.T) {
	// The whole point of range partitioning: each worker only scans ~1/T of
	// every public run, so the total public data scanned must be well below
	// B-MPSM's T·|S|.
	workers := 8
	r, s := uniformDataset(4000, 4, 7)
	b := bmpsm(r, s, Options{Workers: workers})
	p := pmpsm(r, s, Options{Workers: workers})
	if p.PublicScanned >= b.PublicScanned/2 {
		t.Fatalf("P-MPSM scanned %d public tuples, B-MPSM %d; expected a large reduction",
			p.PublicScanned, b.PublicScanned)
	}
}

func TestPMPSMSkewedNegativeCorrelation(t *testing.T) {
	// Section 5.6 workload: R skewed high, S skewed low, at multiplicity 4.
	r, s, err := workload.Generate(workload.Spec{
		RSize:        4000,
		Multiplicity: 4,
		RSkew:        workload.SkewHigh80,
		SSkew:        workload.SkewLow80,
		KeyDomain:    1 << 22,
		Seed:         13,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, strategy := range []SplitterStrategy{SplitterEquiCost, SplitterEquiHeight} {
		res := pmpsm(r, s, Options{Workers: 8, Splitters: strategy, CollectPerWorker: true})
		checkJoinResult(t, "P-MPSM skewed "+strategy.String(), r, s, res.Matches, res.MaxSum)
		if len(res.PerWorker) != 8 {
			t.Fatalf("expected 8 per-worker breakdowns, got %d", len(res.PerWorker))
		}
		// Per-worker counters must be consistent with the totals.
		var privSum, scannedSum int
		var matchSum uint64
		for _, wb := range res.PerWorker {
			privSum += wb.PrivateTuples
			scannedSum += wb.PublicScanned
			matchSum += wb.Matches
		}
		if privSum != r.Len() {
			t.Fatalf("per-worker private tuples sum to %d, want %d", privSum, r.Len())
		}
		if scannedSum != res.PublicScanned {
			t.Fatalf("per-worker scanned sum %d != total %d", scannedSum, res.PublicScanned)
		}
		if matchSum != res.Matches {
			t.Fatalf("per-worker matches sum %d != total %d", matchSum, res.Matches)
		}
	}
}

func TestPMPSMSkewedAllKeysEqual(t *testing.T) {
	// Pathological skew: every key identical. All tuples land in one
	// partition; the join must still be correct.
	n := 2000
	tuples := make([]relation.Tuple, n)
	for i := range tuples {
		tuples[i] = relation.Tuple{Key: 12345, Payload: uint64(i)}
	}
	r := relation.New("R", tuples)
	s := r.Clone()
	res := pmpsm(r, s, Options{Workers: 4})
	if res.Matches != uint64(n*n) {
		t.Fatalf("matches = %d, want %d", res.Matches, n*n)
	}
}

func TestPMPSMLocationSkew(t *testing.T) {
	// Section 5.5: location skew in S must not change the result.
	workers := 8
	spec := workload.Spec{
		RSize:               3000,
		Multiplicity:        4,
		ForeignKey:          true,
		Seed:                17,
		SLocationSkew:       workload.LocationClustered,
		LocationSkewWorkers: workers,
	}
	r, s, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	res := pmpsm(r, s, Options{Workers: workers})
	checkJoinResult(t, "P-MPSM location skew", r, s, res.Matches, res.MaxSum)
}

func TestMPSMEmptyInputs(t *testing.T) {
	empty := relation.New("E", nil)
	r, _ := uniformDataset(500, 1, 3)
	for name, run := range map[string]func() uint64{
		"B empty private": func() uint64 { return bmpsm(empty, r, Options{Workers: 4}).Matches },
		"B empty public":  func() uint64 { return bmpsm(r, empty, Options{Workers: 4}).Matches },
		"P empty private": func() uint64 { return pmpsm(empty, r, Options{Workers: 4}).Matches },
		"P empty public":  func() uint64 { return pmpsm(r, empty, Options{Workers: 4}).Matches },
		"P both empty":    func() uint64 { return pmpsm(empty, empty, Options{Workers: 4}).Matches },
	} {
		if got := run(); got != 0 {
			t.Fatalf("%s: matches = %d, want 0", name, got)
		}
	}
}

func TestMPSMMoreWorkersThanTuples(t *testing.T) {
	r, s := uniformDataset(5, 1, 5)
	for _, workers := range []int{8, 16} {
		res := pmpsm(r, s, Options{Workers: workers})
		checkJoinResult(t, "tiny P-MPSM", r, s, res.Matches, res.MaxSum)
		res = bmpsm(r, s, Options{Workers: workers})
		checkJoinResult(t, "tiny B-MPSM", r, s, res.Matches, res.MaxSum)
	}
}

func TestMPSMRoleReversal(t *testing.T) {
	// Joining R⋈S must produce the same result regardless of which input
	// plays the private role.
	r, s := uniformDataset(1000, 4, 23)
	a := pmpsm(r, s, Options{Workers: 4})
	b := pmpsm(s, r, Options{Workers: 4})
	if a.Matches != b.Matches || a.MaxSum != b.MaxSum {
		t.Fatalf("role reversal changed the result: (%d, %d) vs (%d, %d)",
			a.Matches, a.MaxSum, b.Matches, b.MaxSum)
	}
}

func TestMPSMNUMAAccountingObeysCommandments(t *testing.T) {
	r, s := uniformDataset(5000, 4, 29)
	res := pmpsm(r, s, Options{Workers: 8, TrackNUMA: true})
	if res.NUMA.TotalAccesses() == 0 {
		t.Fatal("NUMA tracking enabled but nothing recorded")
	}
	// C3: MPSM performs no fine-grained synchronization.
	if res.NUMA.SyncOps != 0 {
		t.Fatalf("MPSM recorded %d sync ops, want 0", res.NUMA.SyncOps)
	}
	// C1/C2: random accesses happen only on local memory (sorting); remote
	// accesses are sequential only.
	if res.NUMA.RemoteRandRead != 0 || res.NUMA.RemoteRandWrite != 0 {
		t.Fatalf("MPSM recorded remote random accesses: %+v", res.NUMA)
	}
	if res.SimulatedNUMACost == 0 {
		t.Fatal("simulated NUMA cost missing")
	}

	// The same workload through the Wisconsin-style accounting should show
	// remote random traffic — covered in the hashjoin package tests.
	bres := bmpsm(r, s, Options{Workers: 8, TrackNUMA: true})
	if bres.NUMA.SyncOps != 0 || bres.NUMA.RemoteRandRead != 0 {
		t.Fatalf("B-MPSM violated commandments: %+v", bres.NUMA)
	}
}

func TestDMPSMCorrectness(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		for _, budget := range []int{0, 4, 16} {
			r, s := uniformDataset(2000, 4, uint64(workers*7+budget))
			res, stats := dmpsm(r, s, Options{Workers: workers}, DiskOptions{
				PageSize:   256,
				PageBudget: budget,
			})
			checkJoinResult(t, "D-MPSM", r, s, res.Matches, res.MaxSum)
			if stats.PageWrites == 0 || stats.PageReads == 0 {
				t.Fatalf("D-MPSM did not touch the disk: %+v", stats)
			}
			if budget > 0 && stats.Pool.MaxResident > budget {
				t.Fatalf("buffer pool exceeded budget: %+v", stats.Pool)
			}
		}
	}
}

func TestDMPSMSkewedData(t *testing.T) {
	r, s, err := workload.Generate(workload.Spec{
		RSize:        3000,
		Multiplicity: 2,
		RSkew:        workload.SkewHigh80,
		SSkew:        workload.SkewLow80,
		KeyDomain:    1 << 22,
		Seed:         31,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := dmpsm(r, s, Options{Workers: 4}, DiskOptions{PageSize: 128, PageBudget: 8})
	checkJoinResult(t, "D-MPSM skewed", r, s, res.Matches, res.MaxSum)
}

func TestDMPSMEmptyInputs(t *testing.T) {
	empty := relation.New("E", nil)
	r, _ := uniformDataset(200, 1, 41)
	if res, _ := dmpsm(empty, r, Options{Workers: 2}, DiskOptions{}); res.Matches != 0 {
		t.Fatalf("empty private side produced %d matches", res.Matches)
	}
	if res, _ := dmpsm(r, empty, Options{Workers: 2}, DiskOptions{}); res.Matches != 0 {
		t.Fatalf("empty public side produced %d matches", res.Matches)
	}
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{}.normalize()
	if o.Workers <= 0 {
		t.Fatal("Workers default missing")
	}
	if o.HistogramBits != 10 {
		t.Fatalf("HistogramBits default = %d, want 10", o.HistogramBits)
	}
	if o.CDFBoundsPerRun != 4*o.Workers {
		t.Fatalf("CDFBoundsPerRun default = %d", o.CDFBoundsPerRun)
	}
	if o.Topology.Nodes == 0 {
		t.Fatal("Topology default missing")
	}

	// Histogram bits must cover at least one cluster per worker.
	o = Options{Workers: 64, HistogramBits: 2}.normalize()
	if o.HistogramBits < 6 {
		t.Fatalf("HistogramBits = %d, want >= log2(64) = 6", o.HistogramBits)
	}
	// And it must be capped.
	o = Options{Workers: 2, HistogramBits: 40}.normalize()
	if o.HistogramBits > 20 {
		t.Fatalf("HistogramBits = %d, want capped at 20", o.HistogramBits)
	}
}

func TestSplitterStrategyString(t *testing.T) {
	if SplitterEquiCost.String() != "equi-cost" ||
		SplitterEquiHeight.String() != "equi-height" ||
		SplitterUniform.String() != "uniform" {
		t.Fatal("unexpected SplitterStrategy strings")
	}
	if SplitterStrategy(9).String() != "SplitterStrategy(9)" {
		t.Fatal("unknown strategy should render numerically")
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 32: 5, 33: 6, 64: 6}
	for n, want := range cases {
		if got := log2ceil(n); got != want {
			t.Errorf("log2ceil(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestChunkSourceNode(t *testing.T) {
	topo := Options{}.normalize().Topology
	if n := chunkSourceNode(0, 8, topo); n != 0 {
		t.Fatalf("chunk 0 node = %d", n)
	}
	if n := chunkSourceNode(7, 8, topo); n != 3 {
		t.Fatalf("chunk 7 node = %d, want 3", n)
	}
	if n := chunkSourceNode(0, 0, topo); n != 0 {
		t.Fatalf("degenerate worker count node = %d", n)
	}
}
