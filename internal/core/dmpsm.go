package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/mergejoin"
	"repro/internal/relation"
	"repro/internal/result"
	"repro/internal/sched"
	"repro/internal/search"
	"repro/internal/sink"
	"repro/internal/sorting"
	"repro/internal/storage"
)

// DiskOptions configures the disk-enabled D-MPSM variant.
type DiskOptions struct {
	// PageSize is the number of tuples per spilled page; 0 selects
	// storage.DefaultPageSize.
	PageSize int
	// PageBudget is the maximum number of public-input pages the buffer
	// pool keeps resident (0 = unlimited). The paper's point is that the
	// join needs only the currently processed and prefetched pages in RAM.
	PageBudget int
	// PrefetchDistance is how many index entries ahead of the slowest
	// worker the prefetcher loads; 0 selects a small default.
	PrefetchDistance int
	// ReadLatency and WriteLatency simulate per-page disk access latency.
	ReadLatency  time.Duration
	WriteLatency time.Duration
}

// normalize fills in defaults.
func (o DiskOptions) normalize() DiskOptions {
	if o.PageSize <= 0 {
		o.PageSize = storage.DefaultPageSize
	}
	if o.PrefetchDistance <= 0 {
		o.PrefetchDistance = 8
	}
	return o
}

// DiskStats reports the storage behaviour of a D-MPSM execution.
type DiskStats struct {
	// Pool is the buffer pool behaviour (loads, hits, evictions, high-water
	// mark of resident pages).
	Pool storage.BufferPoolStats
	// PageReads and PageWrites are the totals served by the simulated disk.
	PageReads  int
	PageWrites int
	// PublicPages is the number of pages the public input occupies on disk.
	PublicPages int
}

// DMPSM executes the disk-enabled, memory-constrained MPSM variant
// (Section 3.1): both inputs are sorted into runs that are spilled to a
// (simulated) disk, a global page index ordered by each page's minimal key
// lets every worker move through the key domain in order, a prefetcher loads
// upcoming public pages asynchronously, and already-processed pages are
// released from RAM.
//
// Simplification documented in DESIGN.md: each worker materializes its own
// private run (|R|/T tuples) in memory for the duration of the join, while the
// public input — the dominant data volume — is strictly paged through the
// buffer pool under the configured budget.
//
// With Options.Scheduler == sched.Morsel, phase 3 runs as stolen
// (private-run, public-run) morsels: each task walks one public run's pages
// in key order against one private run, so an oversized private run is
// processed by several workers concurrently. The global key-ordered
// prefetcher assumes lock-step progress through the page index and is
// therefore disabled in this mode; pages load on demand through the buffer
// pool, which still enforces the budget.
//
// Cancellation is checked at phase boundaries, per chunk during run
// generation, and per page during the join; a canceled context aborts the
// join and returns ctx.Err().
func DMPSM(ctx context.Context, private, public *relation.Relation, opts Options, diskOpts DiskOptions) (*result.Result, DiskStats, error) {
	opts = opts.normalize()
	diskOpts = diskOpts.normalize()
	if err := ctx.Err(); err != nil {
		return nil, DiskStats{}, err
	}
	workers := opts.Workers
	res := &result.Result{Algorithm: "D-MPSM", Workers: workers}
	rt := runtimeFor(opts)
	lease := leaseFor(opts)
	defer lease.Release()
	start := time.Now()

	disk := storage.NewDisk(diskOpts.ReadLatency, diskOpts.WriteLatency)
	publicChunks := public.Split(workers)
	privateChunks := private.Split(workers)
	publicRuns := make([]*storage.PagedRun, workers)
	privateRuns := make([]*storage.PagedRun, workers)

	// Phase 1: sort the public chunks locally and spill them as paged runs.
	// The sort buffer is leased and handed back immediately after the spill
	// (WriteRun copies tuples into pages), so phase 2 reuses it.
	phase1 := rt.Phase(ctx, "phase 1", func(ctx context.Context, w *sched.Worker) {
		tuples := lease.Tuples(len(publicChunks[w.ID()].Tuples))
		sorting.SortInto(publicChunks[w.ID()].Tuples, tuples)
		run, err := storage.WriteRun(disk, w.ID(), tuples, diskOpts.PageSize)
		if err != nil {
			panic(fmt.Sprintf("core: spilling public run %d: %v", w.ID(), err))
		}
		publicRuns[w.ID()] = run
		lease.PutTuples(tuples)
	})
	res.AddPhase("phase 1", phase1)
	if err := checkpoint(ctx, rt, lease); err != nil {
		return nil, DiskStats{}, err
	}

	// Phase 2: sort the private chunks locally and spill them as paged runs.
	phase2 := rt.Phase(ctx, "phase 2", func(ctx context.Context, w *sched.Worker) {
		tuples := lease.Tuples(len(privateChunks[w.ID()].Tuples))
		sorting.SortInto(privateChunks[w.ID()].Tuples, tuples)
		run, err := storage.WriteRun(disk, w.ID(), tuples, diskOpts.PageSize)
		if err != nil {
			panic(fmt.Sprintf("core: spilling private run %d: %v", w.ID(), err))
		}
		privateRuns[w.ID()] = run
		lease.PutTuples(tuples)
	})
	res.AddPhase("phase 2", phase2)
	if err := checkpoint(ctx, rt, lease); err != nil {
		return nil, DiskStats{}, err
	}

	// The page index over the public runs is built from the per-page
	// minimal keys recorded during run generation; it is read-only from
	// here on, so it needs no synchronization.
	index := storage.BuildPageIndex(publicRuns)
	pool := storage.NewBufferPool(disk, diskOpts.PageBudget)

	out := sink.BindChecked(opts.Sink, workers, lease, opts.KeyCheck)
	scanned := make([]int, workers)
	var phase3 time.Duration
	if opts.Scheduler == sched.Morsel {
		phase3 = dmpsmJoinMorsel(ctx, rt, disk, pool, index, privateRuns, scanned, out, opts)
	} else {
		phase3 = dmpsmJoinStatic(ctx, rt, disk, pool, index, privateRuns, scanned, out, diskOpts)
	}
	res.AddPhase("phase 3", phase3)
	stats := DiskStats{
		Pool:        pool.Stats(),
		PageReads:   disk.PageReads(),
		PageWrites:  disk.PageWrites(),
		PublicPages: len(index.Entries),
	}
	// Close runs even on cancellation (the sink lifecycle promises it); the
	// context error still wins as the join's outcome.
	closeErr := out.Close()
	if err := checkpoint(ctx, rt, lease); err != nil {
		return nil, stats, err
	}
	if closeErr != nil {
		return nil, stats, closeErr
	}

	for w := 0; w < workers; w++ {
		res.PublicScanned += scanned[w]
	}
	res.Matches = out.Matches()
	res.MaxSum = out.MaxSum()
	res.Total = time.Since(start)
	if opts.CollectPerWorker {
		res.PerWorker = rt.Breakdowns([]string{"phase 1", "phase 2", "phase 3"})
	}
	res.Scratch = lease.Stats()
	return res, stats, nil
}

// dmpsmJoinStatic is the paper's phase 3: every worker walks the global page
// index in key order, joining each public page against its private run. Per
// public run, a cursor into the private run only ever moves forward, so both
// inputs are consumed in ascending key order and processed pages can be
// released. Cancellation is checked before every page — the page is the
// chunk unit of the disk-enabled merge loop.
func dmpsmJoinStatic(ctx context.Context, rt *sched.Runtime, disk *storage.Disk, pool *storage.BufferPool,
	index *storage.PageIndex, privateRuns []*storage.PagedRun, scanned []int, out *sink.Bound, diskOpts DiskOptions) time.Duration {

	prefetcher := storage.NewPrefetcher(pool, index, diskOpts.PrefetchDistance)
	prefetcher.Start()
	defer prefetcher.Stop()

	return rt.Phase(ctx, "phase 3", func(ctx context.Context, w *sched.Worker) {
		priv, err := storage.ReadRunTuples(disk, privateRuns[w.ID()])
		if err != nil {
			panic(fmt.Sprintf("core: reading private run %d: %v", w.ID(), err))
		}
		cons := out.Writer(w.ID())
		cursors := make([]int, len(index.Runs))
		for pos, entry := range index.Entries {
			if canceled(ctx) {
				break
			}
			page, err := pool.Pin(entry.Page)
			if err != nil {
				panic(fmt.Sprintf("core: pinning page %+v: %v", entry.Page, err))
			}
			cursors[entry.RunOrdinal] = joinPagedRun(priv, cursors[entry.RunOrdinal], page, cons)
			scanned[w.ID()] += len(page)
			pool.Unpin(entry.Page)
			prefetcher.ReportProgress(pos + 1)
		}
	})
}

// dmpsmJoinMorsel is the morsel-driven phase 3: the private runs are read
// into memory once, and every (private run, public run) pair becomes a task
// that walks the public run's pages in key order with its own private
// cursor. Tasks prefer workers on the private run's owner node.
func dmpsmJoinMorsel(ctx context.Context, rt *sched.Runtime, disk *storage.Disk, pool *storage.BufferPool,
	index *storage.PageIndex, privateRuns []*storage.PagedRun, scanned []int, out *sink.Bound, opts Options) time.Duration {

	workers := rt.Workers()
	privTuples := make([][]relation.Tuple, workers)
	readDuration := rt.Phase(ctx, "phase 3", func(ctx context.Context, w *sched.Worker) {
		priv, err := storage.ReadRunTuples(disk, privateRuns[w.ID()])
		if err != nil {
			panic(fmt.Sprintf("core: reading private run %d: %v", w.ID(), err))
		}
		privTuples[w.ID()] = priv
	})
	if canceled(ctx) || rt.Err() != nil {
		return readDuration
	}

	var tasks []sched.Task
	for w := 0; w < workers; w++ {
		priv := privTuples[w]
		if len(priv) == 0 {
			continue
		}
		node := opts.Topology.NodeOfWorker(w)
		for _, run := range index.Runs {
			if run.Pages == 0 {
				continue
			}
			run := run
			tasks = append(tasks, sched.Task{Node: node, Run: func(exec *sched.Worker) {
				cons := out.Writer(exec.ID())
				cursor := 0
				// Pages of one run are in ascending key order, so the
				// private cursor only moves forward, exactly as in the
				// static index walk.
				for pageNo := 0; pageNo < run.Pages; pageNo++ {
					if canceled(ctx) {
						return
					}
					ref := storage.PageRef{RunID: run.RunID, PageNo: pageNo}
					page, err := pool.Pin(ref)
					if err != nil {
						panic(fmt.Sprintf("core: pinning page %+v: %v", ref, err))
					}
					cursor = joinPagedRun(priv, cursor, page, cons)
					scanned[exec.ID()] += len(page)
					pool.Unpin(ref)
				}
			}})
		}
	}
	return readDuration + rt.RunTasks(ctx, "phase 3", tasks)
}

// joinPagedRun merge joins one public page (sorted) against the private run,
// starting at the given private cursor, and returns the advanced cursor: the
// first private index whose key is >= the page's last key. Keys equal to the
// page's last key stay reachable because the following page of the same run
// may start with the same key.
func joinPagedRun(private []relation.Tuple, cursor int, page []relation.Tuple, out mergejoin.Consumer) int {
	if len(page) == 0 || cursor >= len(private) {
		return cursor
	}
	mergejoin.Join(private[cursor:], page, out)
	lastKey := page[len(page)-1].Key
	return cursor + search.LowerBound(private[cursor:], lastKey)
}
