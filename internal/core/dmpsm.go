package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/mergejoin"
	"repro/internal/relation"
	"repro/internal/result"
	"repro/internal/search"
	"repro/internal/sink"
	"repro/internal/sorting"
	"repro/internal/storage"
)

// DiskOptions configures the disk-enabled D-MPSM variant.
type DiskOptions struct {
	// PageSize is the number of tuples per spilled page; 0 selects
	// storage.DefaultPageSize.
	PageSize int
	// PageBudget is the maximum number of public-input pages the buffer
	// pool keeps resident (0 = unlimited). The paper's point is that the
	// join needs only the currently processed and prefetched pages in RAM.
	PageBudget int
	// PrefetchDistance is how many index entries ahead of the slowest
	// worker the prefetcher loads; 0 selects a small default.
	PrefetchDistance int
	// ReadLatency and WriteLatency simulate per-page disk access latency.
	ReadLatency  time.Duration
	WriteLatency time.Duration
}

// normalize fills in defaults.
func (o DiskOptions) normalize() DiskOptions {
	if o.PageSize <= 0 {
		o.PageSize = storage.DefaultPageSize
	}
	if o.PrefetchDistance <= 0 {
		o.PrefetchDistance = 8
	}
	return o
}

// DiskStats reports the storage behaviour of a D-MPSM execution.
type DiskStats struct {
	// Pool is the buffer pool behaviour (loads, hits, evictions, high-water
	// mark of resident pages).
	Pool storage.BufferPoolStats
	// PageReads and PageWrites are the totals served by the simulated disk.
	PageReads  int
	PageWrites int
	// PublicPages is the number of pages the public input occupies on disk.
	PublicPages int
}

// DMPSM executes the disk-enabled, memory-constrained MPSM variant
// (Section 3.1): both inputs are sorted into runs that are spilled to a
// (simulated) disk, a global page index ordered by each page's minimal key
// lets every worker move through the key domain in order, a prefetcher loads
// upcoming public pages asynchronously, and already-processed pages are
// released from RAM.
//
// Simplification documented in DESIGN.md: each worker materializes its own
// private run (|R|/T tuples) in memory for the duration of the join, while the
// public input — the dominant data volume — is strictly paged through the
// buffer pool under the configured budget.
//
// Cancellation is checked at phase boundaries, per chunk during run
// generation, and per page during the join; a canceled context aborts the
// join and returns ctx.Err().
func DMPSM(ctx context.Context, private, public *relation.Relation, opts Options, diskOpts DiskOptions) (*result.Result, DiskStats, error) {
	opts = opts.normalize()
	diskOpts = diskOpts.normalize()
	if err := ctx.Err(); err != nil {
		return nil, DiskStats{}, err
	}
	workers := opts.Workers
	res := &result.Result{Algorithm: "D-MPSM", Workers: workers}
	states := newWorkerStates(opts)
	start := time.Now()

	disk := storage.NewDisk(diskOpts.ReadLatency, diskOpts.WriteLatency)
	publicChunks := public.Split(workers)
	privateChunks := private.Split(workers)
	publicRuns := make([]*storage.PagedRun, workers)
	privateRuns := make([]*storage.PagedRun, workers)

	// Phase 1: sort the public chunks locally and spill them as paged runs.
	phase1 := result.StopwatchPhase(func() {
		parallelFor(workers, func(w int) {
			if canceled(ctx) {
				return
			}
			t0 := time.Now()
			tuples := make([]relation.Tuple, len(publicChunks[w].Tuples))
			copy(tuples, publicChunks[w].Tuples)
			sorting.Sort(tuples)
			run, err := storage.WriteRun(disk, w, tuples, diskOpts.PageSize)
			if err != nil {
				panic(fmt.Sprintf("core: spilling public run %d: %v", w, err))
			}
			publicRuns[w] = run
			states[w].record("phase 1", time.Since(t0))
		})
	})
	res.AddPhase("phase 1", phase1)
	if err := ctx.Err(); err != nil {
		return nil, DiskStats{}, err
	}

	// Phase 2: sort the private chunks locally and spill them as paged runs.
	phase2 := result.StopwatchPhase(func() {
		parallelFor(workers, func(w int) {
			if canceled(ctx) {
				return
			}
			t0 := time.Now()
			tuples := make([]relation.Tuple, len(privateChunks[w].Tuples))
			copy(tuples, privateChunks[w].Tuples)
			sorting.Sort(tuples)
			run, err := storage.WriteRun(disk, w, tuples, diskOpts.PageSize)
			if err != nil {
				panic(fmt.Sprintf("core: spilling private run %d: %v", w, err))
			}
			privateRuns[w] = run
			states[w].record("phase 2", time.Since(t0))
		})
	})
	res.AddPhase("phase 2", phase2)
	if err := ctx.Err(); err != nil {
		return nil, DiskStats{}, err
	}

	// The page index over the public runs is built from the per-page
	// minimal keys recorded during run generation; it is read-only from
	// here on, so it needs no synchronization.
	index := storage.BuildPageIndex(publicRuns)
	pool := storage.NewBufferPool(disk, diskOpts.PageBudget)
	prefetcher := storage.NewPrefetcher(pool, index, diskOpts.PrefetchDistance)
	prefetcher.Start()

	// Phase 3: every worker walks the page index in key order, joining each
	// public page against its private run. Per public run, a cursor into
	// the private run only ever moves forward, so both inputs are consumed
	// in ascending key order and processed pages can be released.
	// Cancellation is checked before every page — the page is the chunk unit
	// of the disk-enabled merge loop.
	out := sink.Bind(opts.Sink, workers)
	scanned := make([]int, workers)
	phase3 := result.StopwatchPhase(func() {
		parallelFor(workers, func(w int) {
			if canceled(ctx) {
				return
			}
			t0 := time.Now()
			priv, err := storage.ReadRunTuples(disk, privateRuns[w])
			if err != nil {
				panic(fmt.Sprintf("core: reading private run %d: %v", w, err))
			}
			cons := out.Writer(w)
			cursors := make([]int, len(index.Runs))
			for pos, entry := range index.Entries {
				if canceled(ctx) {
					break
				}
				page, err := pool.Pin(entry.Page)
				if err != nil {
					panic(fmt.Sprintf("core: pinning page %+v: %v", entry.Page, err))
				}
				cursors[entry.RunOrdinal] = joinPagedRun(priv, cursors[entry.RunOrdinal], page, cons)
				scanned[w] += len(page)
				pool.Unpin(entry.Page)
				prefetcher.ReportProgress(pos + 1)
			}
			states[w].record("phase 3", time.Since(t0))
		})
	})
	prefetcher.Stop()
	res.AddPhase("phase 3", phase3)
	stats := DiskStats{
		Pool:        pool.Stats(),
		PageReads:   disk.PageReads(),
		PageWrites:  disk.PageWrites(),
		PublicPages: len(index.Entries),
	}
	// Close runs even on cancellation (the sink lifecycle promises it); the
	// context error still wins as the join's outcome.
	closeErr := out.Close()
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	if closeErr != nil {
		return nil, stats, closeErr
	}

	for w := 0; w < workers; w++ {
		res.PublicScanned += scanned[w]
	}
	res.Matches = out.Matches()
	res.MaxSum = out.MaxSum()
	res.Total = time.Since(start)
	if opts.CollectPerWorker {
		res.PerWorker = perWorkerBreakdowns(states, []string{"phase 1", "phase 2", "phase 3"})
	}
	return res, stats, nil
}

// joinPagedRun merge joins one public page (sorted) against the private run,
// starting at the given private cursor, and returns the advanced cursor: the
// first private index whose key is >= the page's last key. Keys equal to the
// page's last key stay reachable because the following page of the same run
// may start with the same key.
func joinPagedRun(private []relation.Tuple, cursor int, page []relation.Tuple, out mergejoin.Consumer) int {
	if len(page) == 0 || cursor >= len(private) {
		return cursor
	}
	mergejoin.Join(private[cursor:], page, out)
	lastKey := page[len(page)-1].Key
	return cursor + search.LowerBound(private[cursor:], lastKey)
}
