// Package faultinject provides deterministic, seed-driven fault injection
// for the execution engine's chaos tests and for operational fire drills.
//
// A Set owns a seeded pseudo-random sequence and a per-point firing
// probability. Code on the hot path asks the set whether a named injection
// point should fire (Should), or uses the convenience triggers Panic and
// Stall that fire the corresponding failure mode directly. Every query (or
// service) carries at most one *Set; a nil *Set is valid everywhere and all
// of its methods are no-ops that cost a single nil check, so production paths
// pay effectively nothing when injection is disabled.
//
// Determinism is the point: the firing decisions are a pure function of the
// seed and the draw sequence, so a chaos run that found a leak can be
// replayed exactly by reusing its seed. The draw sequence is serialized under
// the set's mutex; with concurrent workers the interleaving of draws may vary
// between runs, which is the intended amount of nondeterminism for a chaos
// suite (the total number of fires for probability-1 points is still exact).
package faultinject

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Point names one injection point wired into the engine.
type Point int

const (
	// WorkerPanic panics inside a worker goroutine of a phase or a morsel,
	// exercising the scheduler's panic isolation and barrier poisoning.
	WorkerPanic Point = iota
	// LeaseAlloc panics inside a scratch-lease buffer request, exercising
	// poisoned-lease reclamation (it fires only on pooled executions: without
	// a scratch pool there is no lease to fault).
	LeaseAlloc
	// MorselStall delays a worker between claiming and running a morsel,
	// widening work-stealing and cancellation races.
	MorselStall
	// CancelStorm cancels a query's context shortly after submission,
	// exercising cancellation mid-phase and mid-queue.
	CancelStorm
	// GrantRace delays the admission controller's grant loop, widening the
	// race between granting a reservation and the waiter abandoning it.
	GrantRace

	pointCount
)

// String implements fmt.Stringer using the Parse spec keys.
func (p Point) String() string {
	switch p {
	case WorkerPanic:
		return "panic"
	case LeaseAlloc:
		return "lease"
	case MorselStall:
		return "stall"
	case CancelStorm:
		return "cancel"
	case GrantRace:
		return "grant"
	default:
		return fmt.Sprintf("Point(%d)", int(p))
	}
}

// defaultDelay is the stall duration of the delaying points when the spec
// does not override it.
func defaultDelay(p Point) time.Duration {
	switch p {
	case MorselStall:
		return 200 * time.Microsecond
	case CancelStorm:
		return 500 * time.Microsecond
	case GrantRace:
		return 100 * time.Microsecond
	default:
		return 0
	}
}

// Injected is the panic value of an injected fault, so recovery layers and
// tests can tell injected failures from genuine bugs (errors.As through
// sched.PanicError reaches it).
type Injected struct {
	// Point is the injection point that fired.
	Point Point
}

// Error implements error.
func (e *Injected) Error() string {
	return fmt.Sprintf("faultinject: injected %s fault", e.Point)
}

// Set is one configured fault-injection profile. Configure it fully (Enable,
// EnableDelay, Limit) before handing it to an engine or service; the
// configuration arrays are read without synchronization on the hot path.
// The zero Set injects nothing; so does a nil *Set.
type Set struct {
	seed  uint64
	prob  [pointCount]float64
	delay [pointCount]time.Duration
	limit [pointCount]uint64 // 0 = unlimited
	skip  [pointCount]uint64 // fire only after this many draws

	mu    sync.Mutex
	state uint64
	draws [pointCount]uint64
	fires [pointCount]uint64
}

// New creates an empty set whose decisions derive deterministically from
// seed. Enable points before use.
func New(seed uint64) *Set {
	return &Set{seed: seed, state: seed}
}

// Seed returns the set's seed, for replaying a chaos run.
func (s *Set) Seed() uint64 {
	if s == nil {
		return 0
	}
	return s.seed
}

// Enable arms an injection point with the given firing probability in [0, 1]
// and returns the set for chaining.
func (s *Set) Enable(p Point, prob float64) *Set {
	return s.EnableDelay(p, prob, defaultDelay(p))
}

// EnableDelay is Enable with an explicit stall duration for the delaying
// points (MorselStall, CancelStorm, GrantRace); the duration is ignored by
// the panicking points.
func (s *Set) EnableDelay(p Point, prob float64, d time.Duration) *Set {
	if s == nil || p < 0 || p >= pointCount {
		return s
	}
	if prob < 0 {
		prob = 0
	}
	if prob > 1 {
		prob = 1
	}
	s.prob[p] = prob
	s.delay[p] = d
	return s
}

// Limit caps how many times a point may fire (0 = unlimited); combined with
// probability 1 it yields "fire exactly n times", the deterministic shape
// chaos tests want.
func (s *Set) Limit(p Point, n uint64) *Set {
	if s == nil || p < 0 || p >= pointCount {
		return s
	}
	s.limit[p] = n
	return s
}

// After suppresses a point's first n draws, so a probability-1 point fires
// exactly at the n+1-th time execution reaches it ("panic at phase N").
func (s *Set) After(p Point, n uint64) *Set {
	if s == nil || p < 0 || p >= pointCount {
		return s
	}
	s.skip[p] = n
	return s
}

// next advances the splitmix64 sequence; the caller holds s.mu.
func (s *Set) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d49bb1331111eb
	return z ^ (z >> 31)
}

// Should reports whether the injection point fires on this draw. Nil-safe;
// disabled points return false without taking the lock.
func (s *Set) Should(p Point) bool {
	if s == nil || p < 0 || p >= pointCount || s.prob[p] <= 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.draws[p]++
	if s.draws[p] <= s.skip[p] {
		return false
	}
	if s.limit[p] > 0 && s.fires[p] >= s.limit[p] {
		return false
	}
	// 53 uniform bits map onto [0, 1); strictly-less keeps prob 0 dead and
	// prob 1 certain.
	if float64(s.next()>>11)/(1<<53) >= s.prob[p] {
		return false
	}
	s.fires[p]++
	return true
}

// Panic fires the point's panic if the draw says so. The panic value is an
// *Injected carrying the point.
func (s *Set) Panic(p Point) {
	if s.Should(p) {
		panic(&Injected{Point: p})
	}
}

// Stall sleeps for the point's configured delay if the draw says so.
func (s *Set) Stall(p Point) {
	if s.Should(p) {
		time.Sleep(s.delay[p])
	}
}

// Delay returns the point's configured stall duration, falling back to the
// point's default when the set never armed one.
func (s *Set) Delay(p Point) time.Duration {
	if s == nil || p < 0 || p >= pointCount {
		return 0
	}
	if s.delay[p] == 0 {
		return defaultDelay(p)
	}
	return s.delay[p]
}

// Fired returns how many times the point has fired so far.
func (s *Set) Fired(p Point) uint64 {
	if s == nil || p < 0 || p >= pointCount {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fires[p]
}

// TotalFired returns the number of fires across all points.
func (s *Set) TotalFired() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var n uint64
	for _, f := range s.fires {
		n += f
	}
	return n
}

// String renders the set in the Parse spec format.
func (s *Set) String() string {
	if s == nil {
		return ""
	}
	parts := []string{fmt.Sprintf("seed:%d", s.seed)}
	for p := Point(0); p < pointCount; p++ {
		if s.prob[p] > 0 {
			part := fmt.Sprintf("%s:%g", p, s.prob[p])
			if s.delay[p] != defaultDelay(p) {
				part += "@" + s.delay[p].String()
			}
			if s.limit[p] > 0 {
				part += fmt.Sprintf("#%d", s.limit[p])
			}
			parts = append(parts, part)
		}
	}
	return strings.Join(parts, ",")
}

// Parse builds a set from a compact spec of comma-separated key:value pairs,
// the format of the MPSM_FAULTS environment variable:
//
//	seed:42,panic:0.1,lease:0.05,stall:0.2@500us,cancel:0.01,grant:0.5#3
//
// Keys are the Point spec names plus "seed"; values are firing probabilities,
// optionally suffixed with @duration (a stall delay for the delaying points)
// and #N (fire at most N times). An empty spec yields a nil set (injection
// disabled).
func Parse(spec string) (*Set, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	s := New(0)
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), ":")
		if !ok {
			return nil, fmt.Errorf("faultinject: malformed field %q (want key:value)", field)
		}
		if key == "seed" {
			seed, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: seed %q: %v", val, err)
			}
			s.seed, s.state = seed, seed
			continue
		}
		p, err := parsePoint(key)
		if err != nil {
			return nil, err
		}
		val, limitStr, hasLimit := strings.Cut(val, "#")
		probStr, delayStr, hasDelay := strings.Cut(val, "@")
		prob, err := strconv.ParseFloat(probStr, 64)
		if err != nil || prob < 0 || prob > 1 {
			return nil, fmt.Errorf("faultinject: probability %q for %s: want a number in [0, 1]", probStr, key)
		}
		d := defaultDelay(p)
		if hasDelay {
			d, err = time.ParseDuration(delayStr)
			if err != nil {
				return nil, fmt.Errorf("faultinject: delay %q for %s: %v", delayStr, key, err)
			}
		}
		s.EnableDelay(p, prob, d)
		if hasLimit {
			n, err := strconv.ParseUint(limitStr, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: limit %q for %s: %v", limitStr, key, err)
			}
			s.Limit(p, n)
		}
	}
	return s, nil
}

// parsePoint maps a spec key onto its Point.
func parsePoint(key string) (Point, error) {
	switch strings.ToLower(key) {
	case "panic":
		return WorkerPanic, nil
	case "lease":
		return LeaseAlloc, nil
	case "stall":
		return MorselStall, nil
	case "cancel":
		return CancelStorm, nil
	case "grant":
		return GrantRace, nil
	default:
		return 0, fmt.Errorf("faultinject: unknown injection point %q", key)
	}
}
