package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestNilSetIsInert(t *testing.T) {
	var s *Set
	for p := Point(0); p < pointCount; p++ {
		if s.Should(p) {
			t.Fatalf("nil set fired point %v", p)
		}
		if s.Fired(p) != 0 {
			t.Fatalf("nil set reports fires for %v", p)
		}
		s.Panic(p) // must not panic
		s.Stall(p) // must not stall
	}
	if s.TotalFired() != 0 {
		t.Fatal("nil set reports total fires")
	}
}

func TestDeterministicReplay(t *testing.T) {
	draw := func() []bool {
		s := New(42).Enable(WorkerPanic, 0.3).Enable(LeaseAlloc, 0.7)
		var out []bool
		for i := 0; i < 200; i++ {
			out = append(out, s.Should(WorkerPanic), s.Should(LeaseAlloc))
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	// A different seed should give a different firing pattern.
	c := New(43).Enable(WorkerPanic, 0.3)
	diff := false
	s := New(42).Enable(WorkerPanic, 0.3)
	for i := 0; i < 200; i++ {
		if s.Should(WorkerPanic) != c.Should(WorkerPanic) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("seeds 42 and 43 produced identical 200-draw patterns")
	}
}

func TestProbabilityRoughlyHonored(t *testing.T) {
	s := New(7).Enable(WorkerPanic, 0.25)
	for i := 0; i < 10000; i++ {
		s.Should(WorkerPanic)
	}
	got := s.Fired(WorkerPanic)
	if got < 2200 || got > 2800 {
		t.Fatalf("p=0.25 over 10000 draws fired %d times", got)
	}
}

func TestLimitAndAfter(t *testing.T) {
	s := New(1).Enable(WorkerPanic, 1).Limit(WorkerPanic, 3)
	n := 0
	for i := 0; i < 10; i++ {
		if s.Should(WorkerPanic) {
			n++
		}
	}
	if n != 3 {
		t.Fatalf("limit 3 fired %d times", n)
	}

	s = New(1).Enable(LeaseAlloc, 1).After(LeaseAlloc, 5)
	for i := 0; i < 5; i++ {
		if s.Should(LeaseAlloc) {
			t.Fatalf("After(5) fired on draw %d", i)
		}
	}
	if !s.Should(LeaseAlloc) {
		t.Fatal("After(5) did not fire on draw 6")
	}
}

func TestPanicValueIsTypedError(t *testing.T) {
	s := New(9).Enable(WorkerPanic, 1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Panic did not panic")
		}
		err, ok := r.(error)
		if !ok {
			t.Fatalf("panic value %T is not an error", r)
		}
		var inj *Injected
		if !errors.As(err, &inj) || inj.Point != WorkerPanic {
			t.Fatalf("panic value %v is not Injected{WorkerPanic}", err)
		}
	}()
	s.Panic(WorkerPanic)
}

func TestDelay(t *testing.T) {
	s := New(3).EnableDelay(MorselStall, 1, 5*time.Millisecond)
	if d := s.Delay(MorselStall); d != 5*time.Millisecond {
		t.Fatalf("Delay = %v", d)
	}
	if d := s.Delay(CancelStorm); d != defaultDelay(CancelStorm) {
		t.Fatalf("unarmed point delay = %v, want default %v", d, defaultDelay(CancelStorm))
	}
	start := time.Now()
	s.Stall(MorselStall)
	if time.Since(start) < 4*time.Millisecond {
		t.Fatal("Stall returned before the armed delay elapsed")
	}
}

func TestParse(t *testing.T) {
	s, err := Parse("seed:42,panic:0.5,stall:1@2ms#3,lease:0.25")
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed() != 42 {
		t.Fatalf("seed = %d", s.Seed())
	}
	if d := s.Delay(MorselStall); d != 2*time.Millisecond {
		t.Fatalf("stall delay = %v", d)
	}
	// limit 3 on stall: fires exactly 3 times at p=1.
	n := 0
	for i := 0; i < 10; i++ {
		if s.Should(MorselStall) {
			n++
		}
	}
	if n != 3 {
		t.Fatalf("stall limit fired %d times", n)
	}

	if s, err := Parse(""); err != nil || s != nil {
		t.Fatalf("empty spec = %v, %v; want nil, nil", s, err)
	}
	for _, bad := range []string{"panic", "panic:x", "bogus:0.5", "seed:abc", "panic:0.5@zz"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) did not fail", bad)
		}
	}
}

func TestStringRoundTripsThroughParse(t *testing.T) {
	s := New(11).Enable(WorkerPanic, 0.5).EnableDelay(MorselStall, 1, time.Millisecond)
	spec := s.String()
	r, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse(String()=%q): %v", spec, err)
	}
	if r.Seed() != 11 {
		t.Fatalf("round-tripped seed = %d", r.Seed())
	}
	// Identical sets replay identically.
	for i := 0; i < 100; i++ {
		if s2, r2 := s.Should(WorkerPanic), r.Should(WorkerPanic); s2 != r2 {
			t.Fatalf("round-tripped set diverged at draw %d", i)
		}
	}
}
