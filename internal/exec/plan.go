package exec

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mergejoin"
	"repro/internal/relation"
	"repro/internal/sink"
)

// NodeID identifies one node of a Plan; it is the node's index in Plan.Nodes.
type NodeID int

// NodeKind is the operator type of a plan node.
type NodeKind int

const (
	// NodeScan reads a base relation, optionally applying a selection
	// predicate during the scan. Scans have no inputs; one scan may feed
	// several consumers (a self-join reads the same scan twice).
	NodeScan NodeKind = iota
	// NodeJoin joins a build (private) input against a probe (public) input
	// with any of the five algorithms. Its output is the stream of joined
	// pairs; consumers that expect tuples see the default projection
	// {Key: R.Key, Payload: R.Payload + S.Payload} unless a NodeProject
	// interposes.
	NodeJoin
	// NodeMap applies a tuple-to-tuple function to a tuple-producing input.
	NodeMap
	// NodeProject applies a pair-to-tuple projection directly above a join,
	// overriding the default projection.
	NodeProject
	// NodeGroupAggregate groups its input by key and aggregates the payload
	// (sum, min, max or count). Directly above an MPSM join it runs as a
	// streaming merge-based aggregation over the join's key-ordered output;
	// otherwise it falls back to hash aggregation.
	NodeGroupAggregate
	// NodeSink terminates the plan in a user sink that receives the raw
	// joined pairs of its input join. A sink node must be the plan root and
	// sit directly above a join.
	NodeSink
)

// String implements fmt.Stringer.
func (k NodeKind) String() string {
	switch k {
	case NodeScan:
		return "Scan"
	case NodeJoin:
		return "Join"
	case NodeMap:
		return "Map"
	case NodeProject:
		return "Project"
	case NodeGroupAggregate:
		return "GroupAggregate"
	case NodeSink:
		return "Sink"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// AggMode selects how a NodeGroupAggregate directly above a join executes.
// It is a pure performance choice — both strategies produce the identical
// sorted group relation — that the planner pins explicitly instead of
// relying on the Auto inference.
type AggMode int

const (
	// AggAuto follows the input join's output order: streaming merge
	// aggregation over key-ordered MPSM output, hash aggregation otherwise.
	AggAuto AggMode = iota
	// AggMerge forces the streaming merge-based aggregation. It is correct
	// over any input order (segments seal whenever the order restarts) but
	// only fast over key-ordered output.
	AggMerge
	// AggHash forces the hash aggregation.
	AggHash
)

// String implements fmt.Stringer.
func (m AggMode) String() string {
	switch m {
	case AggAuto:
		return "auto"
	case AggMerge:
		return "merge"
	case AggHash:
		return "hash"
	default:
		return fmt.Sprintf("AggMode(%d)", int(m))
	}
}

// Valid reports whether m is a known aggregation mode.
func (m AggMode) Valid() bool { return m == AggAuto || m == AggMerge || m == AggHash }

// PlanNode is one operator of a plan DAG. Only the fields of the node's Kind
// are meaningful; the Add* builder methods populate them consistently, and
// Validate checks hand-built nodes.
type PlanNode struct {
	// Kind selects the operator.
	Kind NodeKind
	// Inputs are the IDs of the child nodes (none for scans, two for joins
	// — build first, probe second — and one for everything else).
	Inputs []NodeID

	// Rel and Pred configure a NodeScan. Range is an optional structured
	// key-range selection that runs on the branch-free selection-vector path;
	// Range and Pred compose (a tuple must satisfy both).
	Rel   *relation.Relation
	Pred  Predicate
	Range *KeyRange

	// Algorithm, JoinOptions and DiskOptions configure a NodeJoin. The
	// JoinOptions' Sink and Scratch fields are owned by the executor and
	// ignored if set.
	Algorithm   Algorithm
	JoinOptions core.Options
	DiskOptions core.DiskOptions

	// MapFn configures a NodeMap.
	MapFn func(relation.Tuple) relation.Tuple

	// ProjectFn configures a NodeProject.
	ProjectFn sink.Projection

	// Agg configures a NodeGroupAggregate; AggMode selects its execution
	// strategy (the zero value follows the input algorithm's output order).
	Agg     sink.Agg
	AggMode AggMode

	// Sink configures a NodeSink; nil selects the built-in max-sum
	// aggregate, preserving the classic Run semantics.
	Sink sink.Sink
}

// Plan is a DAG of operators with exactly one root (the node no other node
// consumes). Build plans with the Add* methods — each returns the new node's
// ID for use as a later input — and execute them with RunPlan. The zero Plan
// is empty and ready for use.
type Plan struct {
	Nodes []PlanNode
}

// add appends a node and returns its ID.
func (p *Plan) add(n PlanNode) NodeID {
	p.Nodes = append(p.Nodes, n)
	return NodeID(len(p.Nodes) - 1)
}

// AddScan adds a scan of rel with an optional selection predicate (nil keeps
// every tuple).
func (p *Plan) AddScan(rel *relation.Relation, pred Predicate) NodeID {
	return p.add(PlanNode{Kind: NodeScan, Rel: rel, Pred: pred})
}

// AddScanRange adds a scan of rel with an optional structured key-range
// selection (run branch-free) and an optional additional predicate.
func (p *Plan) AddScanRange(rel *relation.Relation, rng *KeyRange, pred Predicate) NodeID {
	return p.add(PlanNode{Kind: NodeScan, Rel: rel, Pred: pred, Range: rng})
}

// AddJoin adds a join of the build (private) input against the probe (public)
// input. The opts' Sink and Scratch fields are cleared: the consuming
// operator provides the sink and the executor provides the scratch pool.
func (p *Plan) AddJoin(build, probe NodeID, alg Algorithm, opts core.Options, disk core.DiskOptions) NodeID {
	opts.Sink = nil
	opts.Scratch = nil
	return p.add(PlanNode{
		Kind:        NodeJoin,
		Inputs:      []NodeID{build, probe},
		Algorithm:   alg,
		JoinOptions: opts,
		DiskOptions: disk,
	})
}

// AddMap adds a tuple-to-tuple transformation of a tuple-producing input.
func (p *Plan) AddMap(in NodeID, fn func(relation.Tuple) relation.Tuple) NodeID {
	return p.add(PlanNode{Kind: NodeMap, Inputs: []NodeID{in}, MapFn: fn})
}

// AddProject adds an explicit pair-to-tuple projection directly above a join.
func (p *Plan) AddProject(in NodeID, fn sink.Projection) NodeID {
	return p.add(PlanNode{Kind: NodeProject, Inputs: []NodeID{in}, ProjectFn: fn})
}

// AddGroupAggregate adds a group-by-key aggregation of its input.
func (p *Plan) AddGroupAggregate(in NodeID, agg sink.Agg) NodeID {
	return p.add(PlanNode{Kind: NodeGroupAggregate, Inputs: []NodeID{in}, Agg: agg})
}

// AddSink terminates the plan in s, which receives the raw joined pairs of
// the input join; nil selects the built-in max-sum aggregate.
func (p *Plan) AddSink(in NodeID, s sink.Sink) NodeID {
	return p.add(PlanNode{Kind: NodeSink, Inputs: []NodeID{in}, Sink: s})
}

// producesTuples reports whether nodes of kind k output a tuple stream (as
// opposed to a join's pair stream or a sink's nothing).
func producesTuples(k NodeKind) bool {
	switch k {
	case NodeScan, NodeMap, NodeProject, NodeGroupAggregate:
		return true
	default:
		return false
	}
}

// Validate checks that the plan is a well-formed operator DAG: non-empty,
// acyclic, with in-range inputs, a single root, no dangling (unconsumed)
// nodes, kind-consistent arities and input types, and per-join
// algorithm/kind/band combinations that the join layer supports. Non-inner
// join kinds are rejected below another join — outer/semi/anti results with
// their zero-valued or absent public side have no meaningful default
// projection to feed a second join with.
func (p *Plan) Validate() error {
	if len(p.Nodes) == 0 {
		return fmt.Errorf("exec: empty plan")
	}
	consumers := make([][]NodeID, len(p.Nodes))
	for id, n := range p.Nodes {
		if err := p.validateNode(NodeID(id), n); err != nil {
			return err
		}
		for _, in := range n.Inputs {
			consumers[in] = append(consumers[in], NodeID(id))
		}
	}
	if err := p.checkAcyclic(); err != nil {
		return err
	}

	root := NodeID(-1)
	for id := range p.Nodes {
		if len(consumers[id]) > 0 {
			// Shared inputs are only allowed for scans (reading one base
			// relation twice, as in a self-join); every other operator
			// streams into exactly one consumer.
			if len(consumers[id]) > 1 && p.Nodes[id].Kind != NodeScan {
				return fmt.Errorf("exec: plan node %d (%v) feeds %d consumers; only scans may be shared",
					id, p.Nodes[id].Kind, len(consumers[id]))
			}
			continue
		}
		if root >= 0 {
			return fmt.Errorf("exec: plan has multiple roots (nodes %d and %d are not consumed by any operator)", root, id)
		}
		root = NodeID(id)
	}
	// checkAcyclic guarantees at least one node without consumers, so root
	// is set here.

	// Non-inner join kinds must not sit below another join.
	for id, n := range p.Nodes {
		if n.Kind != NodeJoin || n.JoinOptions.Kind == mergejoin.Inner {
			continue
		}
		if p.reachesJoin(NodeID(id), consumers) {
			return fmt.Errorf("exec: plan node %d: %v join below another join is not supported (only inner joins compose)",
				id, n.JoinOptions.Kind)
		}
	}
	return p.validateKeyMetadata()
}

// validateKeyMetadata enforces the composition rules of normalized-key
// (tie-break) inputs, whose uint64 keys are 8-byte prefixes of the full
// composite key: a join verifies prefix-equal pairs against the key
// metadata, but everything downstream of it sees bare prefix keys again.
// Operators that would silently compute on prefixes as if they were full
// keys — grouping by prefix merges distinct groups, a Map rewrites the
// row-index payloads the metadata is addressed by, a second join can no
// longer verify — are rejected here, at plan validation, rather than
// producing quietly wrong results. Exact schemas (whole key fits the
// prefix) carry no such hazard and pass everywhere.
func (p *Plan) validateKeyMetadata() error {
	// inexactAt reports whether a node's output keys are unverifiable
	// prefixes; memoized over the (already acyclicity-checked) DAG.
	memo := make([]int8, len(p.Nodes))
	var inexactAt func(id NodeID) bool
	inexactAt = func(id NodeID) bool {
		if memo[id] != 0 {
			return memo[id] > 0
		}
		n := p.Nodes[id]
		v := false
		switch n.Kind {
		case NodeScan:
			v = n.Rel.Meta != nil && !n.Rel.Meta.Exact()
		default:
			for _, in := range n.Inputs {
				v = v || inexactAt(in)
			}
		}
		if v {
			memo[id] = 1
		} else {
			memo[id] = -1
		}
		return v
	}
	// tieBreakSource names the tie-break relation whose prefix keys reach a
	// node, so rejections point at the offending input rather than a bare
	// node number.
	var tieBreakSource func(id NodeID) string
	tieBreakSource = func(id NodeID) string {
		n := p.Nodes[id]
		if n.Kind == NodeScan {
			if n.Rel.Meta != nil && !n.Rel.Meta.Exact() {
				return fmt.Sprintf("tie-break relation %q (%s)", n.Rel.Name, n.Rel.Meta.Describe())
			}
			return ""
		}
		for _, in := range n.Inputs {
			if s := tieBreakSource(in); s != "" {
				return s
			}
		}
		return ""
	}
	// The allowed regime, stated once per message: exact schemas compose
	// everywhere, tie-break prefixes only through a verifying join directly
	// over the scan.
	const allowed = "tie-break keys support only a single inner non-band join directly over the scan; exact-schema keys compose everywhere"
	for id, n := range p.Nodes {
		switch n.Kind {
		case NodeJoin:
			for _, in := range n.Inputs {
				if !inexactAt(in) {
					continue
				}
				src := tieBreakSource(in)
				if p.Nodes[in].Kind != NodeScan {
					return fmt.Errorf("exec: plan node %d: join input node %d (%v) carries unverifiable prefix keys from %s; a join can only verify prefixes against the scan itself (%s)",
						id, in, p.Nodes[in].Kind, src, allowed)
				}
				if n.JoinOptions.Kind != mergejoin.Inner {
					return fmt.Errorf("exec: plan node %d: %v join on %s is not supported — non-inner kinds emit unverified prefix-only matches (%s)",
						id, n.JoinOptions.Kind, src, allowed)
				}
				if n.JoinOptions.Band != 0 {
					return fmt.Errorf("exec: plan node %d: band join on %s is not supported — distance between normalized key prefixes is not distance between keys (%s)",
						id, src, allowed)
				}
			}
		case NodeGroupAggregate:
			if in := n.Inputs[0]; inexactAt(in) {
				return fmt.Errorf("exec: plan node %d: GroupAggregate over %s is not supported — grouping by the 8-byte key prefix would merge distinct groups (%s)",
					id, tieBreakSource(in), allowed)
			}
		case NodeMap:
			if in := n.Inputs[0]; inexactAt(in) {
				return fmt.Errorf("exec: plan node %d: Map over %s is not supported — rewriting tuples loses the row-index payloads the key metadata is addressed by (%s)",
					id, tieBreakSource(in), allowed)
			}
		}
	}
	return nil
}

// validateNode checks one node's arity, configuration and input types.
func (p *Plan) validateNode(id NodeID, n PlanNode) error {
	for _, in := range n.Inputs {
		if in < 0 || int(in) >= len(p.Nodes) {
			return fmt.Errorf("exec: plan node %d (%v) has dangling input %d", id, n.Kind, in)
		}
		if p.Nodes[in].Kind == NodeSink {
			return fmt.Errorf("exec: plan node %d (%v) consumes a sink node", id, n.Kind)
		}
	}
	arity := map[NodeKind]int{
		NodeScan: 0, NodeJoin: 2, NodeMap: 1, NodeProject: 1,
		NodeGroupAggregate: 1, NodeSink: 1,
	}
	want, known := arity[n.Kind]
	if !known {
		return fmt.Errorf("exec: plan node %d has unknown kind %v", id, n.Kind)
	}
	if len(n.Inputs) != want {
		return fmt.Errorf("exec: plan node %d (%v) has %d inputs, want %d", id, n.Kind, len(n.Inputs), want)
	}
	switch n.Kind {
	case NodeScan:
		if n.Rel == nil {
			return fmt.Errorf("exec: plan node %d (Scan) has no relation", id)
		}
	case NodeJoin:
		if err := validateJoin(n.Algorithm, n.JoinOptions); err != nil {
			return fmt.Errorf("exec: plan node %d: %w", id, err)
		}
	case NodeMap:
		if n.MapFn == nil {
			return fmt.Errorf("exec: plan node %d (Map) has no function", id)
		}
		if !producesTuples(p.Nodes[n.Inputs[0]].Kind) {
			return fmt.Errorf("exec: plan node %d (Map) requires a tuple-producing input, got %v (use Project above a join)",
				id, p.Nodes[n.Inputs[0]].Kind)
		}
	case NodeProject:
		if n.ProjectFn == nil {
			return fmt.Errorf("exec: plan node %d (Project) has no projection", id)
		}
		if p.Nodes[n.Inputs[0]].Kind != NodeJoin {
			return fmt.Errorf("exec: plan node %d (Project) must sit directly above a join, got %v",
				id, p.Nodes[n.Inputs[0]].Kind)
		}
	case NodeGroupAggregate:
		if !n.Agg.Valid() {
			return fmt.Errorf("exec: plan node %d has unknown aggregate %v", id, n.Agg)
		}
		if !n.AggMode.Valid() {
			return fmt.Errorf("exec: plan node %d has unknown aggregation mode %v", id, n.AggMode)
		}
	case NodeSink:
		if p.Nodes[n.Inputs[0]].Kind != NodeJoin {
			return fmt.Errorf("exec: plan node %d (Sink) must sit directly above a join, got %v",
				id, p.Nodes[n.Inputs[0]].Kind)
		}
	}
	return nil
}

// checkAcyclic rejects plans whose input edges contain a cycle.
func (p *Plan) checkAcyclic() error {
	const (
		white = 0 // unvisited
		grey  = 1 // on the current DFS path
		black = 2 // fully explored
	)
	color := make([]byte, len(p.Nodes))
	var visit func(id NodeID) error
	visit = func(id NodeID) error {
		switch color[id] {
		case grey:
			return fmt.Errorf("exec: plan contains a cycle through node %d", id)
		case black:
			return nil
		}
		color[id] = grey
		for _, in := range p.Nodes[id].Inputs {
			if err := visit(in); err != nil {
				return err
			}
		}
		color[id] = black
		return nil
	}
	for id := range p.Nodes {
		if err := visit(NodeID(id)); err != nil {
			return err
		}
	}
	return nil
}

// reachesJoin reports whether any consumer path from id leads to a join node.
func (p *Plan) reachesJoin(id NodeID, consumers [][]NodeID) bool {
	for _, c := range consumers[id] {
		if p.Nodes[c].Kind == NodeJoin || p.reachesJoin(c, consumers) {
			return true
		}
	}
	return false
}

// maxWorkers bounds caller-requested parallelism: beyond it, the per-worker
// state (goroutines, runs, histograms) stops being a configuration and
// becomes a resource-exhaustion attack on the process.
const maxWorkers = 1 << 16

// validateJoin rejects unsupported algorithm/kind/band/scheduler
// combinations and out-of-range knobs; it is shared between the classic
// Query pipeline and plan validation. Everything a caller can get wrong
// through the public API must be caught here with a returned error — the
// kernels below this boundary panic on invariant violations and rely on
// sched's recovery only as a backstop (see the panic-policy comment in
// internal/sched).
func validateJoin(alg Algorithm, opts core.Options) error {
	if !opts.Kind.Valid() {
		return fmt.Errorf("unknown join kind %d", int(opts.Kind))
	}
	if !opts.Scheduler.Valid() {
		return fmt.Errorf("unknown scheduler mode %d", int(opts.Scheduler))
	}
	if opts.Workers > maxWorkers {
		return fmt.Errorf("worker count %d exceeds the supported maximum %d", opts.Workers, maxWorkers)
	}
	if opts.Kind != mergejoin.Inner && alg != AlgorithmPMPSM && alg != AlgorithmBMPSM {
		return fmt.Errorf("join kind %v is only supported by the B-MPSM and P-MPSM algorithms, not %v",
			opts.Kind, alg)
	}
	if opts.Band > 0 {
		if opts.Kind != mergejoin.Inner {
			return fmt.Errorf("band joins require an inner join kind, got %v", opts.Kind)
		}
		if alg != AlgorithmPMPSM && alg != AlgorithmBMPSM {
			return fmt.Errorf("band joins are only supported by the B-MPSM and P-MPSM algorithms, not %v", alg)
		}
	}
	switch alg {
	case AlgorithmPMPSM, AlgorithmBMPSM, AlgorithmDMPSM, AlgorithmWisconsin, AlgorithmRadix:
		return nil
	default:
		return fmt.Errorf("unknown algorithm %v", alg)
	}
}
