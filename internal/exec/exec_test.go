package exec

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/mergejoin"
	"repro/internal/relation"
	"repro/internal/workload"
)

func dataset(rSize, mult int, seed uint64) (*relation.Relation, *relation.Relation) {
	r, s, err := workload.Generate(workload.Spec{
		RSize:        rSize,
		Multiplicity: mult,
		ForeignKey:   true,
		Seed:         seed,
	})
	if err != nil {
		panic(err)
	}
	return r, s
}

func TestRunAllAlgorithmsAgree(t *testing.T) {
	r, s := dataset(2000, 4, 1)
	var agg mergejoin.MaxAggregate
	mergejoin.ReferenceJoin(r.Tuples, s.Tuples, &agg)

	for _, alg := range []Algorithm{AlgorithmPMPSM, AlgorithmBMPSM, AlgorithmDMPSM, AlgorithmWisconsin, AlgorithmRadix} {
		res, err := Run(context.Background(), Query{
			R:           r,
			S:           s,
			Algorithm:   alg,
			JoinOptions: core.Options{Workers: 4},
			DiskOptions: core.DiskOptions{PageSize: 256, PageBudget: 8},
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.Matches != agg.Count || res.MaxSum != agg.Max {
			t.Fatalf("%v: got (%d, %d), want (%d, %d)", alg, res.Matches, res.MaxSum, agg.Count, agg.Max)
		}
		if res.RSelected != r.Len() || res.SSelected != s.Len() {
			t.Fatalf("%v: selection changed cardinalities without a filter", alg)
		}
		if alg == AlgorithmDMPSM && res.DiskStats == nil {
			t.Fatal("D-MPSM result missing disk statistics")
		}
	}
}

func TestRunWithSelection(t *testing.T) {
	r, s := dataset(3000, 2, 2)
	low, high := uint64(0), uint64(1)<<31 // roughly half the key domain

	// Reference: filter first, then join.
	filteredR, _ := applyFilter(context.Background(), r, KeyRangePredicate(low, high), 4, nil)
	filteredS, _ := applyFilter(context.Background(), s, KeyRangePredicate(low, high), 4, nil)
	var agg mergejoin.MaxAggregate
	mergejoin.ReferenceJoin(filteredR.Tuples, filteredS.Tuples, &agg)

	res, err := Run(context.Background(), Query{
		R:           r,
		S:           s,
		RFilter:     KeyRangePredicate(low, high),
		SFilter:     KeyRangePredicate(low, high),
		Algorithm:   AlgorithmPMPSM,
		JoinOptions: core.Options{Workers: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != agg.Count || (agg.Count > 0 && res.MaxSum != agg.Max) {
		t.Fatalf("filtered query: got (%d, %d), want (%d, %d)", res.Matches, res.MaxSum, agg.Count, agg.Max)
	}
	if res.RSelected >= r.Len() || res.SSelected >= s.Len() {
		t.Fatal("selection did not reduce input cardinalities")
	}
	if res.RSelected != filteredR.Len() || res.SSelected != filteredS.Len() {
		t.Fatal("selected cardinalities do not match the reference filter")
	}
}

func TestRunErrors(t *testing.T) {
	r, s := dataset(10, 1, 3)
	if _, err := Run(context.Background(), Query{R: nil, S: s}); err == nil {
		t.Fatal("nil R accepted")
	}
	if _, err := Run(context.Background(), Query{R: r, S: nil}); err == nil {
		t.Fatal("nil S accepted")
	}
	if _, err := Run(context.Background(), Query{R: r, S: s, Algorithm: Algorithm(42)}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRunJoinKinds(t *testing.T) {
	r, s := dataset(1500, 2, 9)
	for _, kind := range []mergejoin.Kind{mergejoin.LeftOuter, mergejoin.Semi, mergejoin.Anti} {
		var want mergejoin.MaxAggregate
		mergejoin.ReferenceJoinKind(kind, r.Tuples, s.Tuples, &want)
		res, err := Run(context.Background(), Query{
			R:           r,
			S:           s,
			Algorithm:   AlgorithmPMPSM,
			JoinOptions: core.Options{Workers: 4, Kind: kind},
		})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.Matches != want.Count {
			t.Fatalf("%v: matches = %d, want %d", kind, res.Matches, want.Count)
		}
	}
}

func TestRunRejectsKindsForHashJoins(t *testing.T) {
	r, s := dataset(100, 1, 10)
	for _, alg := range []Algorithm{AlgorithmWisconsin, AlgorithmRadix, AlgorithmDMPSM} {
		_, err := Run(context.Background(), Query{
			R:           r,
			S:           s,
			Algorithm:   alg,
			JoinOptions: core.Options{Workers: 2, Kind: mergejoin.Semi},
		})
		if err == nil {
			t.Fatalf("%v should reject non-inner join kinds", alg)
		}
	}
	if _, err := Run(context.Background(), Query{R: r, S: s, JoinOptions: core.Options{Kind: mergejoin.Kind(9)}}); err == nil {
		t.Fatal("invalid join kind accepted")
	}
}

func TestRunBandJoinValidation(t *testing.T) {
	r, s := dataset(200, 1, 12)
	// Valid: band join on P-MPSM.
	res, err := Run(context.Background(), Query{R: r, S: s, Algorithm: AlgorithmPMPSM, JoinOptions: core.Options{Workers: 2, Band: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches == 0 {
		t.Fatal("band join produced no matches on a foreign-key dataset")
	}
	// Invalid: band joins on hash joins or with non-inner kinds.
	if _, err := Run(context.Background(), Query{R: r, S: s, Algorithm: AlgorithmRadix, JoinOptions: core.Options{Band: 10}}); err == nil {
		t.Fatal("band join on the radix hash join should be rejected")
	}
	if _, err := Run(context.Background(), Query{R: r, S: s, Algorithm: AlgorithmPMPSM, JoinOptions: core.Options{Band: 10, Kind: mergejoin.Semi}}); err == nil {
		t.Fatal("band join with a semi-join kind should be rejected")
	}
}

func TestParseAlgorithm(t *testing.T) {
	cases := map[string]Algorithm{
		"pmpsm":      AlgorithmPMPSM,
		"p-mpsm":     AlgorithmPMPSM,
		"mpsm":       AlgorithmPMPSM,
		"bmpsm":      AlgorithmBMPSM,
		"dmpsm":      AlgorithmDMPSM,
		"wisconsin":  AlgorithmWisconsin,
		"radix":      AlgorithmRadix,
		"vectorwise": AlgorithmRadix,
	}
	for name, want := range cases {
		got, err := ParseAlgorithm(name)
		if err != nil || got != want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseAlgorithm("nested-loop"); err == nil {
		t.Fatal("unknown algorithm name accepted")
	}
}

func TestAlgorithmString(t *testing.T) {
	names := map[Algorithm]string{
		AlgorithmPMPSM:     "P-MPSM",
		AlgorithmBMPSM:     "B-MPSM",
		AlgorithmDMPSM:     "D-MPSM",
		AlgorithmWisconsin: "Wisconsin",
		AlgorithmRadix:     "Radix HJ",
		Algorithm(9):       "Algorithm(9)",
	}
	for alg, want := range names {
		if alg.String() != want {
			t.Errorf("%d.String() = %q, want %q", alg, alg.String(), want)
		}
	}
}

func TestKeyRangePredicate(t *testing.T) {
	p := KeyRangePredicate(10, 20)
	if p(relation.Tuple{Key: 9}) || !p(relation.Tuple{Key: 10}) || !p(relation.Tuple{Key: 19}) || p(relation.Tuple{Key: 20}) {
		t.Fatal("KeyRangePredicate bounds wrong")
	}
}

func TestApplyFilterNilKeepsInput(t *testing.T) {
	r, _ := dataset(100, 1, 4)
	out, leased := applyFilter(context.Background(), r, nil, 4, nil)
	if out != r || leased {
		t.Fatal("nil predicate should return the input relation unchanged")
	}
}
