package exec

import (
	"context"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sink"
	"repro/internal/workload"
)

// TestSchedulerParityAcrossAlgorithms drives every algorithm through the
// shared dispatch point once per scheduling mode and requires the identical
// materialized multiset. This is the API-level counterpart of the core
// parity tests and the only place all five implementations are compared
// under both schedulers at once.
func TestSchedulerParityAcrossAlgorithms(t *testing.T) {
	r, s, err := workload.Generate(workload.Spec{
		RSize:        2500,
		Multiplicity: 4,
		ForeignKey:   true,
		Seed:         404,
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, alg := range []Algorithm{AlgorithmPMPSM, AlgorithmBMPSM, AlgorithmDMPSM, AlgorithmWisconsin, AlgorithmRadix} {
		materialized := func(mode sched.Mode) ([]sink.Pair, uint64) {
			m := sink.NewMaterialize()
			opts := core.Options{Workers: 6, Scheduler: mode, MorselSize: 128, Sink: m}
			res, diskStats, err := Join(context.Background(), alg, r, s, opts, core.DiskOptions{PageSize: 256, PageBudget: 16})
			if err != nil {
				t.Fatalf("%v/%v: %v", alg, mode, err)
			}
			if alg == AlgorithmDMPSM && diskStats == nil {
				t.Fatalf("%v/%v: missing disk stats", alg, mode)
			}
			pairs := append([]sink.Pair(nil), m.Pairs()...)
			sort.Slice(pairs, func(i, j int) bool {
				a, b := pairs[i], pairs[j]
				if a.R.Key != b.R.Key {
					return a.R.Key < b.R.Key
				}
				if a.R.Payload != b.R.Payload {
					return a.R.Payload < b.R.Payload
				}
				return a.S.Payload < b.S.Payload
			})
			return pairs, res.Matches
		}

		wantPairs, wantMatches := materialized(sched.Static)
		gotPairs, gotMatches := materialized(sched.Morsel)
		if wantMatches == 0 {
			t.Fatalf("%v: workload produced no matches", alg)
		}
		if gotMatches != wantMatches || len(gotPairs) != len(wantPairs) {
			t.Fatalf("%v: morsel %d matches / %d pairs, static %d / %d",
				alg, gotMatches, len(gotPairs), wantMatches, len(wantPairs))
		}
		for i := range gotPairs {
			if gotPairs[i] != wantPairs[i] {
				t.Fatalf("%v: pair %d differs: morsel %+v, static %+v", alg, i, gotPairs[i], wantPairs[i])
			}
		}
	}
}
