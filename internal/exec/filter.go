package exec

import (
	"context"
	"math/bits"
	"runtime"

	"repro/internal/memory"
	"repro/internal/relation"
	"repro/internal/sched"
)

// derived builds a filter output relation over dst, carrying the input's
// key metadata forward: selection copies tuples whole, so prefix keys and
// row-index payloads stay valid against the original metadata. A KeyRange
// on a schema-keyed relation therefore selects on the normalized prefix —
// exact key order for exact schemas, prefix order (a superset at the range
// edges) for tie-break schemas.
func derived(rel *relation.Relation, dst []relation.Tuple) *relation.Relation {
	out := relation.New(rel.Name, dst)
	out.Meta = rel.Meta
	return out
}

// filterParallelCutoff is the input size below which scan+filter runs
// single-threaded: a serial pass over 16K tuples (256 KiB) is faster than
// spinning up a worker pool for it.
const filterParallelCutoff = 1 << 14

// applyScanFilter is the scan's selection entry point: a structured key range
// runs on the branch-free selection path, an opaque predicate on the
// per-tuple path, and both together compose the predicate into the range scan
// (the per-tuple call dominates then anyway).
func applyScanFilter(ctx context.Context, rel *relation.Relation, rng *KeyRange, pred Predicate, workers int, lease *memory.Lease) (out *relation.Relation, leased bool) {
	if rng == nil {
		return applyFilter(ctx, rel, pred, workers, lease)
	}
	if pred != nil {
		r := *rng
		combined := func(t relation.Tuple) bool { return r.Match(t.Key) && pred(t) }
		return applyFilter(ctx, rel, combined, workers, lease)
	}
	return filterKeyRange(ctx, rel, *rng, workers, lease)
}

// filterKeyRange is the branch-free key-range selection: both passes test
// membership via the borrow bit of an unsigned subtraction (k-lo < hi-lo) and
// the copy pass builds a per-chunk selection vector with unconditional writes
// before gathering survivors, so no pass branches on the data. Output order,
// sizing and lease behaviour match applyFilter exactly.
func filterKeyRange(ctx context.Context, rel *relation.Relation, rng KeyRange, workers int, lease *memory.Lease) (out *relation.Relation, leased bool) {
	if rng.High <= rng.Low {
		return derived(rel, lease.Tuples(0)), lease != nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := rel.Len()
	lo, width := rng.Low, rng.High-rng.Low
	if n < filterParallelCutoff || workers == 1 {
		total := countRangeTuples(rel.Tuples, lo, width)
		dst := lease.Tuples(total)
		sel := lease.Int32s(n)
		selectRangeChunk(rel.Tuples, lo, width, sel, dst)
		lease.PutInt32s(sel)
		return derived(rel, dst), lease != nil
	}

	// Pass 1: count the surviving tuples per chunk, branch-free.
	type chunk struct{ lo, hi int }
	var chunks []chunk
	sched.ForEachSegment(n, 0, func(clo, chi int) {
		chunks = append(chunks, chunk{clo, chi})
	})
	counts := make([]int, len(chunks))
	rt := sched.New(sched.Config{Workers: workers})
	tasks := make([]sched.Task, len(chunks))
	for i, c := range chunks {
		tasks[i] = sched.Task{Node: -1, Run: func(*sched.Worker) {
			counts[i] = countRangeTuples(rel.Tuples[c.lo:c.hi], lo, width)
		}}
	}
	rt.RunTasks(ctx, "scan", tasks)

	total := 0
	offsets := make([]int, len(chunks))
	for i, c := range counts {
		offsets[i] = total
		total += c
	}

	// Pass 2: per chunk, build the selection vector and gather the survivors
	// into the chunk's disjoint output range.
	dst := lease.Tuples(total) // nil lease allocates fresh
	for i, c := range chunks {
		tasks[i] = sched.Task{Node: -1, Run: func(*sched.Worker) {
			sel := lease.Int32s(c.hi - c.lo)
			selectRangeChunk(rel.Tuples[c.lo:c.hi], lo, width, sel, dst[offsets[i]:offsets[i]+counts[i]])
			lease.PutInt32s(sel)
		}}
	}
	rt.RunTasks(ctx, "filter", tasks)
	return derived(rel, dst), lease != nil
}

// countRangeTuples counts tuples with key-lo < width (i.e. key in [lo,
// lo+width)) by accumulating the borrow bit — no data-dependent branch.
func countRangeTuples(tuples []relation.Tuple, lo, width uint64) int {
	n := 0
	for _, t := range tuples {
		_, borrow := bits.Sub64(t.Key-lo, width, 0)
		n += int(borrow)
	}
	return n
}

// selectRangeChunk writes the in-range indices of tuples into sel with
// unconditional writes (the cursor advances by the borrow bit), then gathers
// the selected tuples into dst. sel must have len(tuples) elements; dst must
// have exactly the chunk's survivor count (as precomputed by
// countRangeTuples).
func selectRangeChunk(tuples []relation.Tuple, lo, width uint64, sel []int32, dst []relation.Tuple) {
	sel = sel[:len(tuples)]
	n := 0
	for i, t := range tuples {
		sel[n] = int32(i)
		_, borrow := bits.Sub64(t.Key-lo, width, 0)
		n += int(borrow)
	}
	for j := range dst {
		dst[j] = tuples[sel[j]]
	}
}

// applyFilter returns the input unchanged for a nil predicate, and an
// exactly-sized filtered copy otherwise, preserving input order. The copy is
// built in two passes — count, then scatter at precomputed offsets — so a 1%
// selection allocates 1% of the input, not its full capacity, and the output
// buffer can come from the scratch lease (leased reports whether it did;
// such relations are owned by the plan execution and recycled after use).
// Large inputs run both passes as chunked parallel tasks on the shared
// runtime; a canceled context may leave the copy incomplete, so callers must
// check ctx before using the result.
func applyFilter(ctx context.Context, rel *relation.Relation, pred Predicate, workers int, lease *memory.Lease) (out *relation.Relation, leased bool) {
	if pred == nil {
		return rel, false
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := rel.Len()
	if n < filterParallelCutoff || workers == 1 {
		return filterSerial(rel, pred, lease)
	}

	// Pass 1: count the surviving tuples per chunk.
	type chunk struct{ lo, hi int }
	var chunks []chunk
	sched.ForEachSegment(n, 0, func(lo, hi int) {
		chunks = append(chunks, chunk{lo, hi})
	})
	counts := make([]int, len(chunks))
	rt := sched.New(sched.Config{Workers: workers})
	tasks := make([]sched.Task, len(chunks))
	for i, c := range chunks {
		tasks[i] = sched.Task{Node: -1, Run: func(*sched.Worker) {
			matched := 0
			for _, t := range rel.Tuples[c.lo:c.hi] {
				if pred(t) {
					matched++
				}
			}
			counts[i] = matched
		}}
	}
	rt.RunTasks(ctx, "scan", tasks)

	// Prefix-sum the counts into per-chunk output offsets.
	total := 0
	offsets := make([]int, len(chunks))
	for i, c := range counts {
		offsets[i] = total
		total += c
	}

	// Pass 2: copy each chunk's survivors to its disjoint output range. The
	// copy is clamped to the counted budget, so even a predicate that
	// violates the purity contract cannot write past its chunk's range.
	dst := lease.Tuples(total) // nil lease allocates fresh
	for i, c := range chunks {
		tasks[i] = sched.Task{Node: -1, Run: func(*sched.Worker) {
			pos, end := offsets[i], offsets[i]+counts[i]
			for _, t := range rel.Tuples[c.lo:c.hi] {
				if pos == end {
					break
				}
				if pred(t) {
					dst[pos] = t
					pos++
				}
			}
		}}
	}
	rt.RunTasks(ctx, "filter", tasks)
	return derived(rel, dst), lease != nil
}

// filterSerial is the small-input path: one counting pass, one exactly-sized
// copy pass.
func filterSerial(rel *relation.Relation, pred Predicate, lease *memory.Lease) (*relation.Relation, bool) {
	total := 0
	for _, t := range rel.Tuples {
		if pred(t) {
			total++
		}
	}
	dst := lease.Tuples(total)
	pos := 0
	for _, t := range rel.Tuples {
		if pos == total {
			break
		}
		if pred(t) {
			dst[pos] = t
			pos++
		}
	}
	return derived(rel, dst), lease != nil
}

// mapChunks applies fn element-wise from src to dst (equal lengths), in
// parallel chunks for large inputs.
func mapChunks(ctx context.Context, src, dst []relation.Tuple, fn func(relation.Tuple) relation.Tuple, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if len(src) < filterParallelCutoff || workers == 1 {
		for i, t := range src {
			dst[i] = fn(t)
		}
		return
	}
	var tasks []sched.Task
	sched.ForEachSegment(len(src), 0, func(lo, hi int) {
		tasks = append(tasks, sched.Task{Node: -1, Run: func(*sched.Worker) {
			for i := lo; i < hi; i++ {
				dst[i] = fn(src[i])
			}
		}})
	})
	rt := sched.New(sched.Config{Workers: workers})
	rt.RunTasks(ctx, "map", tasks)
}
