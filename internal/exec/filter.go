package exec

import (
	"context"
	"runtime"

	"repro/internal/memory"
	"repro/internal/relation"
	"repro/internal/sched"
)

// filterParallelCutoff is the input size below which scan+filter runs
// single-threaded: a serial pass over 16K tuples (256 KiB) is faster than
// spinning up a worker pool for it.
const filterParallelCutoff = 1 << 14

// applyFilter returns the input unchanged for a nil predicate, and an
// exactly-sized filtered copy otherwise, preserving input order. The copy is
// built in two passes — count, then scatter at precomputed offsets — so a 1%
// selection allocates 1% of the input, not its full capacity, and the output
// buffer can come from the scratch lease (leased reports whether it did;
// such relations are owned by the plan execution and recycled after use).
// Large inputs run both passes as chunked parallel tasks on the shared
// runtime; a canceled context may leave the copy incomplete, so callers must
// check ctx before using the result.
func applyFilter(ctx context.Context, rel *relation.Relation, pred Predicate, workers int, lease *memory.Lease) (out *relation.Relation, leased bool) {
	if pred == nil {
		return rel, false
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := rel.Len()
	if n < filterParallelCutoff || workers == 1 {
		return filterSerial(rel, pred, lease)
	}

	// Pass 1: count the surviving tuples per chunk.
	type chunk struct{ lo, hi int }
	var chunks []chunk
	sched.ForEachSegment(n, 0, func(lo, hi int) {
		chunks = append(chunks, chunk{lo, hi})
	})
	counts := make([]int, len(chunks))
	rt := sched.New(sched.Config{Workers: workers})
	tasks := make([]sched.Task, len(chunks))
	for i, c := range chunks {
		tasks[i] = sched.Task{Node: -1, Run: func(*sched.Worker) {
			matched := 0
			for _, t := range rel.Tuples[c.lo:c.hi] {
				if pred(t) {
					matched++
				}
			}
			counts[i] = matched
		}}
	}
	rt.RunTasks(ctx, "scan", tasks)

	// Prefix-sum the counts into per-chunk output offsets.
	total := 0
	offsets := make([]int, len(chunks))
	for i, c := range counts {
		offsets[i] = total
		total += c
	}

	// Pass 2: copy each chunk's survivors to its disjoint output range. The
	// copy is clamped to the counted budget, so even a predicate that
	// violates the purity contract cannot write past its chunk's range.
	dst := lease.Tuples(total) // nil lease allocates fresh
	for i, c := range chunks {
		tasks[i] = sched.Task{Node: -1, Run: func(*sched.Worker) {
			pos, end := offsets[i], offsets[i]+counts[i]
			for _, t := range rel.Tuples[c.lo:c.hi] {
				if pos == end {
					break
				}
				if pred(t) {
					dst[pos] = t
					pos++
				}
			}
		}}
	}
	rt.RunTasks(ctx, "filter", tasks)
	return relation.New(rel.Name, dst), lease != nil
}

// filterSerial is the small-input path: one counting pass, one exactly-sized
// copy pass.
func filterSerial(rel *relation.Relation, pred Predicate, lease *memory.Lease) (*relation.Relation, bool) {
	total := 0
	for _, t := range rel.Tuples {
		if pred(t) {
			total++
		}
	}
	dst := lease.Tuples(total)
	pos := 0
	for _, t := range rel.Tuples {
		if pos == total {
			break
		}
		if pred(t) {
			dst[pos] = t
			pos++
		}
	}
	return relation.New(rel.Name, dst), lease != nil
}

// mapChunks applies fn element-wise from src to dst (equal lengths), in
// parallel chunks for large inputs.
func mapChunks(ctx context.Context, src, dst []relation.Tuple, fn func(relation.Tuple) relation.Tuple, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if len(src) < filterParallelCutoff || workers == 1 {
		for i, t := range src {
			dst[i] = fn(t)
		}
		return
	}
	var tasks []sched.Task
	sched.ForEachSegment(len(src), 0, func(lo, hi int) {
		tasks = append(tasks, sched.Task{Node: -1, Run: func(*sched.Worker) {
			for i := lo; i < hi; i++ {
				dst[i] = fn(src[i])
			}
		}})
	})
	rt := sched.New(sched.Config{Workers: workers})
	rt.RunTasks(ctx, "map", tasks)
}
