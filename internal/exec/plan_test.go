package exec

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/memory"
	"repro/internal/mergejoin"
	"repro/internal/relation"
	"repro/internal/sched"
	"repro/internal/sink"
)

// collectConsumer materializes default-projected pairs for reference joins.
type collectConsumer struct{ rows []relation.Tuple }

func (c *collectConsumer) Consume(r, s relation.Tuple) {
	c.rows = append(c.rows, sink.DefaultProjection(r, s))
}

// referenceThreeWayGroups computes the oracle for (R ⋈ S) ⋈ T followed by a
// group-by aggregation: pairwise reference joins (which share no code with
// the plan executor's join path) plus the reference hash aggregation.
func referenceThreeWayGroups(r, s, tr *relation.Relation, agg sink.Agg) []relation.Tuple {
	var j1 collectConsumer
	mergejoin.ReferenceJoin(r.Tuples, s.Tuples, &j1)
	var j2 collectConsumer
	mergejoin.ReferenceJoin(j1.rows, tr.Tuples, &j2)
	return sink.AggregateTuples(j2.rows, agg)
}

// threeWayPlan builds Scan(R), Scan(S), Scan(T) → (R ⋈ S) ⋈ T →
// GroupAggregate(agg) with the given algorithm for the first join and P-MPSM
// for the second.
func threeWayPlan(r, s, tr *relation.Relation, alg Algorithm, mode sched.Mode, agg sink.Agg) *Plan {
	opts := core.Options{Workers: 4, Scheduler: mode}
	p := &Plan{}
	rID := p.AddScan(r, nil)
	sID := p.AddScan(s, nil)
	tID := p.AddScan(tr, nil)
	j1 := p.AddJoin(rID, sID, alg, opts, core.DiskOptions{PageSize: 256, PageBudget: 8})
	j2 := p.AddJoin(j1, tID, AlgorithmPMPSM, opts, core.DiskOptions{})
	p.AddGroupAggregate(j2, agg)
	return p
}

func TestThreeWayPlanParityAllAlgorithmsAndSchedulers(t *testing.T) {
	r, s := dataset(1200, 2, 21)
	tRel, _ := dataset(1200, 2, 21) // same seed: T shares R's key population
	tRel.Name = "T"

	want := referenceThreeWayGroups(r, s, tRel, sink.AggSum)
	if len(want) == 0 {
		t.Fatal("reference produced no groups; dataset broken")
	}

	algorithms := []Algorithm{AlgorithmPMPSM, AlgorithmBMPSM, AlgorithmDMPSM, AlgorithmWisconsin, AlgorithmRadix}
	for _, alg := range algorithms {
		for _, mode := range []sched.Mode{sched.Static, sched.Morsel} {
			pr, err := RunPlan(context.Background(), threeWayPlan(r, s, tRel, alg, mode, sink.AggSum), nil)
			if err != nil {
				t.Fatalf("%v/%v: %v", alg, mode, err)
			}
			if !reflect.DeepEqual(pr.Output.Tuples, want) {
				t.Fatalf("%v/%v: aggregated groups diverge from the pairwise reference (%d vs %d groups)",
					alg, mode, pr.Output.Len(), len(want))
			}
			if len(pr.Joins) != 2 {
				t.Fatalf("%v/%v: recorded %d join executions, want 2", alg, mode, len(pr.Joins))
			}
			if alg == AlgorithmDMPSM && pr.Joins[0].Disk == nil && pr.Joins[1].Disk == nil {
				t.Fatalf("%v/%v: no disk stats recorded for the D-MPSM join", alg, mode)
			}
		}
	}
}

func TestThreeWayPlanParityWithPoolAndFilters(t *testing.T) {
	r, s := dataset(1500, 2, 33)
	tRel, _ := dataset(1500, 2, 33)
	tRel.Name = "T"
	pred := KeyRangePredicate(0, 1<<31)

	fr, _ := applyFilter(context.Background(), r, pred, 1, nil)
	fs, _ := applyFilter(context.Background(), s, pred, 1, nil)
	want := referenceThreeWayGroups(fr, fs, tRel, sink.AggSum)

	pool := memory.NewPool(0)
	p := &Plan{}
	rID := p.AddScan(r, pred)
	sID := p.AddScan(s, pred)
	tID := p.AddScan(tRel, nil)
	j1 := p.AddJoin(rID, sID, AlgorithmPMPSM, core.Options{Workers: 4}, core.DiskOptions{})
	j2 := p.AddJoin(j1, tID, AlgorithmPMPSM, core.Options{Workers: 4}, core.DiskOptions{})
	p.AddGroupAggregate(j2, sink.AggSum)

	// Run twice: the second execution reuses the first one's pooled buffers.
	for run := 0; run < 2; run++ {
		pr, err := RunPlan(context.Background(), p, pool)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if !reflect.DeepEqual(pr.Output.Tuples, want) {
			t.Fatalf("run %d: pooled plan diverges from reference", run)
		}
		if pr.Rows[rID] != fr.Len() || pr.Rows[sID] != fs.Len() {
			t.Fatalf("run %d: scan rows (%d, %d), want (%d, %d)", run, pr.Rows[rID], pr.Rows[sID], fr.Len(), fs.Len())
		}
	}
	if st := pool.Stats(); st.Hits == 0 {
		t.Fatal("second pooled execution never reused a buffer")
	}
}

func TestPlanAggregateFunctions(t *testing.T) {
	r, s := dataset(800, 3, 44)
	for _, agg := range []sink.Agg{sink.AggSum, sink.AggMin, sink.AggMax, sink.AggCount} {
		var pairs collectConsumer
		mergejoin.ReferenceJoin(r.Tuples, s.Tuples, &pairs)
		want := sink.AggregateTuples(pairs.rows, agg)

		p := &Plan{}
		j := p.AddJoin(p.AddScan(r, nil), p.AddScan(s, nil), AlgorithmPMPSM, core.Options{Workers: 4}, core.DiskOptions{})
		p.AddGroupAggregate(j, agg)
		pr, err := RunPlan(context.Background(), p, nil)
		if err != nil {
			t.Fatalf("%v: %v", agg, err)
		}
		if !reflect.DeepEqual(pr.Output.Tuples, want) {
			t.Fatalf("%v: streaming aggregate diverges from reference", agg)
		}
	}
}

func TestPlanStreamingAndHashAggregatesAgree(t *testing.T) {
	r, s := dataset(1000, 4, 55)

	build := func(alg Algorithm, project bool) *Plan {
		p := &Plan{}
		j := p.AddJoin(p.AddScan(r, nil), p.AddScan(s, nil), alg, core.Options{Workers: 4}, core.DiskOptions{})
		in := j
		if project {
			// An explicit projection materializes the join output first, so
			// the aggregate takes the hash path over tuples.
			in = p.AddProject(j, sink.DefaultProjection)
		}
		p.AddGroupAggregate(in, sink.AggSum)
		return p
	}

	base, err := RunPlan(context.Background(), build(AlgorithmPMPSM, false), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, variant := range []*Plan{
		build(AlgorithmWisconsin, false), // hash-aggregating group sink
		build(AlgorithmRadix, false),
		build(AlgorithmPMPSM, true), // materialize-then-hash-aggregate
	} {
		pr, err := RunPlan(context.Background(), variant, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pr.Output.Tuples, base.Output.Tuples) {
			t.Fatal("hash aggregation path diverges from the streaming merge path")
		}
	}
}

func TestPlanMapAndProject(t *testing.T) {
	r, s := dataset(600, 2, 66)
	double := func(t relation.Tuple) relation.Tuple {
		return relation.Tuple{Key: t.Key, Payload: 2 * t.Payload}
	}
	keyOnly := func(rt, st relation.Tuple) relation.Tuple {
		return relation.Tuple{Key: rt.Key, Payload: rt.Key}
	}

	p := &Plan{}
	j := p.AddJoin(p.AddScan(r, nil), p.AddScan(s, nil), AlgorithmBMPSM, core.Options{Workers: 2}, core.DiskOptions{})
	proj := p.AddProject(j, keyOnly)
	p.AddMap(proj, double)
	pr, err := RunPlan(context.Background(), p, nil)
	if err != nil {
		t.Fatal(err)
	}

	var pairs collectConsumer
	mergejoin.ReferenceJoin(r.Tuples, s.Tuples, &pairs)
	want := make([]relation.Tuple, len(pairs.rows))
	for i, row := range pairs.rows {
		want[i] = relation.Tuple{Key: row.Key, Payload: 2 * row.Key}
	}
	if !relation.SameMultiset(pr.Output.Tuples, want) {
		t.Fatal("Project+Map output diverges from reference")
	}
}

func TestPlanValidationErrors(t *testing.T) {
	r, s := dataset(50, 1, 77)
	opts := core.Options{Workers: 2}

	scanJoin := func() (*Plan, NodeID) {
		p := &Plan{}
		j := p.AddJoin(p.AddScan(r, nil), p.AddScan(s, nil), AlgorithmPMPSM, opts, core.DiskOptions{})
		return p, j
	}

	cases := []struct {
		name string
		plan func() *Plan
		want string
	}{
		{"empty plan", func() *Plan { return &Plan{} }, "empty plan"},
		{"self cycle", func() *Plan {
			return &Plan{Nodes: []PlanNode{
				{Kind: NodeMap, Inputs: []NodeID{0}, MapFn: func(t relation.Tuple) relation.Tuple { return t }},
			}}
		}, "cycle"},
		{"two-node cycle", func() *Plan {
			id := func(t relation.Tuple) relation.Tuple { return t }
			return &Plan{Nodes: []PlanNode{
				{Kind: NodeMap, Inputs: []NodeID{1}, MapFn: id},
				{Kind: NodeMap, Inputs: []NodeID{0}, MapFn: id},
			}}
		}, "cycle"},
		{"dangling input", func() *Plan {
			return &Plan{Nodes: []PlanNode{
				{Kind: NodeScan, Rel: r},
				{Kind: NodeGroupAggregate, Inputs: []NodeID{7}, Agg: sink.AggSum},
			}}
		}, "dangling input"},
		{"multiple roots", func() *Plan {
			p := &Plan{}
			p.AddScan(r, nil)
			p.AddScan(s, nil)
			return p
		}, "multiple roots"},
		{"shared non-scan output", func() *Plan {
			p, j := scanJoin()
			a := p.AddGroupAggregate(j, sink.AggSum)
			m1 := p.AddMap(a, func(t relation.Tuple) relation.Tuple { return t })
			m2 := p.AddMap(a, func(t relation.Tuple) relation.Tuple { return t })
			p.AddJoin(m1, m2, AlgorithmPMPSM, opts, core.DiskOptions{})
			return p
		}, "only scans may be shared"},
		{"sink above non-join", func() *Plan {
			p := &Plan{}
			p.AddSink(p.AddScan(r, nil), nil)
			return p
		}, "must sit directly above a join"},
		{"sink consumed", func() *Plan {
			p, j := scanJoin()
			snk := p.AddSink(j, nil)
			p.AddMap(snk, func(t relation.Tuple) relation.Tuple { return t })
			return p
		}, "consumes a sink"},
		{"project above non-join", func() *Plan {
			p := &Plan{}
			p.AddProject(p.AddScan(r, nil), sink.DefaultProjection)
			return p
		}, "must sit directly above a join"},
		{"map above join", func() *Plan {
			p, j := scanJoin()
			p.AddMap(j, func(t relation.Tuple) relation.Tuple { return t })
			return p
		}, "tuple-producing input"},
		{"scan without relation", func() *Plan {
			p := &Plan{}
			p.AddScan(nil, nil)
			return p
		}, "no relation"},
		{"join arity", func() *Plan {
			return &Plan{Nodes: []PlanNode{
				{Kind: NodeScan, Rel: r},
				{Kind: NodeJoin, Inputs: []NodeID{0}, Algorithm: AlgorithmPMPSM},
			}}
		}, "inputs, want 2"},
		{"unknown aggregate", func() *Plan {
			p, j := scanJoin()
			p.AddGroupAggregate(j, sink.Agg(9))
			return p
		}, "unknown aggregate"},
		{"unknown algorithm", func() *Plan {
			p := &Plan{}
			p.AddJoin(p.AddScan(r, nil), p.AddScan(s, nil), Algorithm(42), opts, core.DiskOptions{})
			return p
		}, "unknown algorithm"},
		{"non-inner kind on hash join", func() *Plan {
			p := &Plan{}
			p.AddJoin(p.AddScan(r, nil), p.AddScan(s, nil), AlgorithmRadix,
				core.Options{Kind: mergejoin.Semi}, core.DiskOptions{})
			return p
		}, "only supported by the B-MPSM and P-MPSM"},
		{"non-inner kind below a second join", func() *Plan {
			p := &Plan{}
			j1 := p.AddJoin(p.AddScan(r, nil), p.AddScan(s, nil), AlgorithmPMPSM,
				core.Options{Kind: mergejoin.LeftOuter}, core.DiskOptions{})
			p.AddJoin(j1, p.AddScan(s, nil), AlgorithmPMPSM, opts, core.DiskOptions{})
			return p
		}, "below another join"},
		{"band with non-inner kind", func() *Plan {
			p := &Plan{}
			p.AddJoin(p.AddScan(r, nil), p.AddScan(s, nil), AlgorithmPMPSM,
				core.Options{Band: 5, Kind: mergejoin.Anti}, core.DiskOptions{})
			return p
		}, "band joins require an inner join kind"},
	}
	for _, tc := range cases {
		_, err := RunPlan(context.Background(), tc.plan(), nil)
		if err == nil {
			t.Errorf("%s: invalid plan accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestPlanNonInnerKindAboveAggregateAllowed(t *testing.T) {
	r, s := dataset(400, 1, 88)
	p := &Plan{}
	j := p.AddJoin(p.AddScan(r, nil), p.AddScan(s, nil), AlgorithmPMPSM,
		core.Options{Workers: 2, Kind: mergejoin.LeftOuter}, core.DiskOptions{})
	p.AddGroupAggregate(j, sink.AggCount)
	pr, err := RunPlan(context.Background(), p, nil)
	if err != nil {
		t.Fatalf("left-outer join above an aggregate (not another join) should be valid: %v", err)
	}
	// Every R key must appear: unmatched tuples surface with a zero public
	// side, so the group count equals the number of distinct R keys.
	distinct := len(relation.KeyHistogram(r.Tuples))
	if pr.Output.Len() != distinct {
		t.Fatalf("left-outer count groups = %d, want %d distinct R keys", pr.Output.Len(), distinct)
	}
}

func TestPlanCancellationBeforeStart(t *testing.T) {
	r, s := dataset(100, 1, 99)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := &Plan{}
	p.AddSink(p.AddJoin(p.AddScan(r, nil), p.AddScan(s, nil), AlgorithmPMPSM, core.Options{Workers: 2}, core.DiskOptions{}), nil)
	if _, err := RunPlan(ctx, p, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled plan returned %v, want context.Canceled", err)
	}
}

func TestPlanCancellationAtOperatorBoundary(t *testing.T) {
	r, s := dataset(1000, 2, 111)
	tRel, _ := dataset(1000, 2, 111)
	tRel.Name = "T"

	// The predicate on T's scan cancels the context: the first join has
	// already completed by then (its inputs carry no predicate), so the
	// cancellation must surface at the operator boundary between T's scan
	// and the second join.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tripwire := func(t relation.Tuple) bool {
		cancel()
		return true
	}

	p := &Plan{}
	rID := p.AddScan(r, nil)
	sID := p.AddScan(s, nil)
	tID := p.AddScan(tRel, tripwire)
	j1 := p.AddJoin(rID, sID, AlgorithmPMPSM, core.Options{Workers: 2}, core.DiskOptions{})
	j2 := p.AddJoin(j1, tID, AlgorithmPMPSM, core.Options{Workers: 2}, core.DiskOptions{})
	p.AddGroupAggregate(j2, sink.AggSum)

	if _, err := RunPlan(ctx, p, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-plan cancellation returned %v, want context.Canceled", err)
	}
}

func TestApplyFilterParallelParity(t *testing.T) {
	r, _ := dataset(100000, 1, 122)
	pred := func(t relation.Tuple) bool { return t.Key%3 == 0 }

	serial, _ := applyFilter(context.Background(), r, pred, 1, nil)
	parallel, leased := applyFilter(context.Background(), r, pred, 4, nil)
	if leased {
		t.Fatal("filter without a lease reported leased output")
	}
	if !reflect.DeepEqual(serial.Tuples, parallel.Tuples) {
		t.Fatalf("parallel filter diverges from serial (lens %d vs %d) or reorders tuples",
			serial.Len(), parallel.Len())
	}
}

func TestApplyFilterSelectivePreallocation(t *testing.T) {
	r, _ := dataset(100000, 1, 133)
	pred := func(t relation.Tuple) bool { return t.Key%128 == 0 } // ~0.8% selectivity

	out, _ := applyFilter(context.Background(), r, pred, 4, nil)
	if out.Len() == 0 || out.Len() > r.Len()/32 {
		t.Fatalf("unexpected selectivity: %d of %d", out.Len(), r.Len())
	}
	if cap(out.Tuples) > r.Len()/8 {
		t.Fatalf("filtered copy reserves cap %d for %d selected tuples (input %d): pre-allocation ignores selectivity",
			cap(out.Tuples), out.Len(), r.Len())
	}

	// The leased path draws an exactly-classed buffer from the pool.
	pool := memory.NewPool(0)
	lease := pool.Acquire()
	defer lease.Release()
	leasedOut, leased := applyFilter(context.Background(), r, pred, 4, lease)
	if !leased {
		t.Fatal("filter with a lease did not report leased output")
	}
	if !reflect.DeepEqual(leasedOut.Tuples, out.Tuples) {
		t.Fatal("leased filter output diverges from unleased")
	}
}
