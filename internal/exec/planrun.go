package exec

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/memory"
	"repro/internal/relation"
	"repro/internal/result"
	"repro/internal/sched"
	"repro/internal/sink"
)

// JoinExecution is the outcome of one join node of an executed plan.
type JoinExecution struct {
	// Node is the join's node ID within the plan.
	Node NodeID
	// Result is the join's full result (phase breakdown, NUMA stats, ...).
	Result *result.Result
	// Disk is non-nil for AlgorithmDMPSM.
	Disk *core.DiskStats
}

// PlanResult is the outcome of one plan execution.
type PlanResult struct {
	// Output is the materialized output of the plan root: the projected
	// join result, the aggregated groups, or the transformed tuple stream.
	// It is freshly allocated (never backed by pooled memory) and nil when
	// the plan terminates in a NodeSink — the sink received the stream.
	Output *relation.Relation
	// Matches and MaxSum report the root join's cardinality and (with the
	// default sink) the max-sum aggregate when the plan root is a NodeSink;
	// both are zero otherwise.
	Matches uint64
	MaxSum  uint64
	// Joins holds the per-join results in plan node (NodeID) order.
	Joins []JoinExecution
	// Rows is the number of tuples each node produced, indexed by NodeID
	// (-1 for nodes whose output was never materialized as tuples, i.e.
	// fused joins and sinks).
	Rows []int
	// ScanTime is the total time spent scanning and filtering base
	// relations.
	ScanTime time.Duration
	// Total is the end-to-end elapsed time of the plan execution.
	Total time.Duration
}

// RunPlan validates and executes a plan. Intermediate results — filtered
// scans, materialized join outputs feeding a second join, aggregate buffers —
// are drawn from pool when it is non-nil and returned when the plan
// finishes; the returned Output is always freshly allocated. The context is
// checked at every operator boundary (and, inside each join, at phase
// boundaries and per chunk), so a canceled context aborts the plan and
// returns ctx.Err().
func RunPlan(ctx context.Context, p *Plan, pool *memory.Pool) (*PlanResult, error) {
	return RunPlanFor(ctx, p, pool, nil)
}

// RunPlanFor is RunPlan with the plan-level scratch lease (scan filters,
// intermediate relations, aggregate buffers) attributed to a query's
// admission reservation; the per-join leases carry their attribution in each
// join node's options. A nil owner leaves the lease unattributed.
func RunPlanFor(ctx context.Context, p *Plan, pool *memory.Pool, owner *memory.Reservation) (*PlanResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	e := &planExec{
		ctx:   ctx,
		plan:  p,
		pool:  pool,
		lease: pool.AcquireFor(owner),
		cache: make([]*relation.Relation, len(p.Nodes)),
		owned: make([]bool, len(p.Nodes)),
		uses:  make([]int, len(p.Nodes)),
		res:   &PlanResult{Rows: make([]int, len(p.Nodes))},
	}
	defer e.lease.Release()
	for id := range e.res.Rows {
		e.res.Rows[id] = -1
	}
	for _, n := range p.Nodes {
		for _, in := range n.Inputs {
			e.uses[in]++
		}
	}
	root := p.rootNode()

	var runErr error
	e.res.Total = result.StopwatchPhase(func() {
		// Coordinator-side backstop: operator code running on this goroutine
		// (scan filters, aggregation, intermediate materialization) may
		// panic; contain it to this plan and quarantine the plan lease,
		// whose buffers may be mid-write.
		defer func() {
			if r := recover(); r != nil {
				e.lease.Poison()
				runErr = sched.Recovered(owner.Label(), "plan", -1, r)
			}
		}()
		runErr = e.runRoot(root)
	})
	if runErr != nil {
		return nil, runErr
	}
	// Joins are appended in execution order, which for hand-built plans with
	// forward-referencing inputs can differ from node order; normalize.
	sort.Slice(e.res.Joins, func(i, j int) bool { return e.res.Joins[i].Node < e.res.Joins[j].Node })
	return e.res, nil
}

// rootNode returns the single unconsumed node; Validate guarantees it exists.
func (p *Plan) rootNode() NodeID {
	consumed := make([]bool, len(p.Nodes))
	for _, n := range p.Nodes {
		for _, in := range n.Inputs {
			consumed[in] = true
		}
	}
	for id := range p.Nodes {
		if !consumed[id] {
			return NodeID(id)
		}
	}
	return 0 // unreachable on validated plans
}

// planExec is the state of one plan execution.
type planExec struct {
	ctx   context.Context
	plan  *Plan
	pool  *memory.Pool
	lease *memory.Lease // plan-level lease for intermediate relations
	// cache memoizes materialized node outputs (shared scans); owned marks
	// outputs whose backing came from the plan lease and may be recycled
	// once their last consumer has run.
	cache []*relation.Relation
	owned []bool
	uses  []int
	res   *PlanResult
}

// boundary reports a canceled context at an operator boundary.
func (e *planExec) boundary() error { return e.ctx.Err() }

// runRoot executes the plan from its root node and fills in the result.
func (e *planExec) runRoot(root NodeID) error {
	n := e.plan.Nodes[root]
	if n.Kind == NodeSink {
		// Terminal sink: the root join streams its raw pairs directly into
		// the user sink; nothing is materialized.
		join := n.Inputs[0]
		res, err := e.runJoin(join, n.Sink)
		if err != nil {
			return err
		}
		e.res.Matches = res.Matches
		e.res.MaxSum = res.MaxSum
		return nil
	}
	out, err := e.materialize(root)
	if err != nil {
		return err
	}
	if e.owned[root] {
		// The caller keeps the output; move it out of pooled memory before
		// the plan lease is released.
		fresh := make([]relation.Tuple, len(out.Tuples))
		copy(fresh, out.Tuples)
		out = relation.New(out.Name, fresh)
	}
	e.res.Output = out
	return nil
}

// materialize produces the tuple output of a tuple-producing node (or of a
// join via the default projection), memoizing shared scans.
func (e *planExec) materialize(id NodeID) (*relation.Relation, error) {
	if rel := e.cache[id]; rel != nil {
		return rel, nil
	}
	if err := e.boundary(); err != nil {
		return nil, err
	}
	n := e.plan.Nodes[id]
	var (
		rel   *relation.Relation
		owned bool
		err   error
	)
	switch n.Kind {
	case NodeScan:
		var leased bool
		e.res.ScanTime += result.StopwatchPhase(func() {
			rel, leased = applyScanFilter(e.ctx, n.Rel, n.Range, n.Pred, e.workers(), e.lease)
		})
		owned = leased
		if err := e.boundary(); err != nil {
			return nil, err
		}
	case NodeJoin:
		rel, err = e.collectJoin(id, sink.DefaultProjection)
		owned = true
	case NodeProject:
		rel, err = e.collectJoin(n.Inputs[0], n.ProjectFn)
		owned = true
	case NodeMap:
		rel, owned, err = e.runMap(n)
	case NodeGroupAggregate:
		rel, owned, err = e.runAggregate(n)
	default:
		return nil, fmt.Errorf("exec: cannot materialize plan node %d (%v)", id, n.Kind)
	}
	if err != nil {
		return nil, err
	}
	// Without a pool the lease is nil and every buffer above was freshly
	// allocated anyway: nothing is recycled and the root needs no defensive
	// copy out of pooled memory.
	e.cache[id] = rel
	e.owned[id] = owned && e.lease != nil
	e.res.Rows[id] = rel.Len()
	return rel, nil
}

// collectJoin executes the join node with a projecting bridge sink and wraps
// the collected tuples as the intermediate relation.
func (e *planExec) collectJoin(join NodeID, project sink.Projection) (*relation.Relation, error) {
	snk := sink.NewCollect(project, e.lease)
	if _, err := e.runJoin(join, snk); err != nil {
		return nil, err
	}
	return relation.New(fmt.Sprintf("join%d", join), snk.Rows()), nil
}

// runMap applies the node's function to its materialized input.
func (e *planExec) runMap(n PlanNode) (*relation.Relation, bool, error) {
	in, err := e.materialize(n.Inputs[0])
	if err != nil {
		return nil, false, err
	}
	if err := e.boundary(); err != nil {
		return nil, false, err
	}
	out := e.lease.Tuples(in.Len())
	mapChunks(e.ctx, in.Tuples, out, n.MapFn, e.workers())
	if err := e.boundary(); err != nil {
		return nil, false, err
	}
	return relation.New(in.Name, out), true, nil
}

// runAggregate groups its input by key. Directly above a join the aggregation
// fuses into the join's sink — streaming and merge-based over the key-ordered
// output of the MPSM variants, hash-based over the unordered output of the
// hash joins. Above an already-materialized tuple input it hash-aggregates
// the relation.
func (e *planExec) runAggregate(n PlanNode) (*relation.Relation, bool, error) {
	in := n.Inputs[0]
	if e.plan.Nodes[in].Kind == NodeJoin {
		merge := KeyOrderedOutput(e.plan.Nodes[in].Algorithm)
		switch n.AggMode {
		case AggMerge:
			merge = true
		case AggHash:
			merge = false
		}
		var snk sink.GroupSink
		if merge {
			snk = sink.NewMergeGroups(n.Agg, e.lease)
		} else {
			snk = sink.NewHashGroups(n.Agg)
		}
		if _, err := e.runJoin(in, snk); err != nil {
			return nil, false, err
		}
		_, merged := snk.(*sink.MergeGroups)
		return relation.New("groups", snk.Groups()), merged, nil
	}
	rel, err := e.materialize(in)
	if err != nil {
		return nil, false, err
	}
	if err := e.boundary(); err != nil {
		return nil, false, err
	}
	return relation.New("groups", sink.AggregateTuples(rel.Tuples, n.Agg)), false, nil
}

// KeyOrderedOutput reports whether the algorithm's per-worker output stream
// consists of key-sorted segments — the property of the sort-merge join
// phase (every worker merges its sorted private run against sorted public
// runs) that the streaming merge aggregation exploits. The planner uses it
// to pin aggregation strategies.
func KeyOrderedOutput(alg Algorithm) bool {
	switch alg {
	case AlgorithmPMPSM, AlgorithmBMPSM, AlgorithmDMPSM:
		return true
	default:
		return false
	}
}

// runJoin materializes the join's inputs, executes the join streaming into
// snk, records the execution, and recycles single-consumer intermediate
// inputs back into the plan lease.
func (e *planExec) runJoin(id NodeID, snk sink.Sink) (*result.Result, error) {
	n := e.plan.Nodes[id]
	build, err := e.materialize(n.Inputs[0])
	if err != nil {
		return nil, err
	}
	probe, err := e.materialize(n.Inputs[1])
	if err != nil {
		return nil, err
	}
	if err := e.boundary(); err != nil {
		return nil, err
	}
	opts := n.JoinOptions
	opts.Sink = snk
	opts.Scratch = e.pool
	res, disk, err := Join(e.ctx, n.Algorithm, build, probe, opts, n.DiskOptions)
	if err != nil {
		return nil, err
	}
	e.res.Joins = append(e.res.Joins, JoinExecution{Node: id, Result: res, Disk: disk})
	e.recycle(n.Inputs[0])
	e.recycle(n.Inputs[1])
	return res, nil
}

// recycle returns a leased intermediate input to the plan lease once its
// last consumer has run, so a deep plan's intermediates reuse one another's
// memory.
func (e *planExec) recycle(id NodeID) {
	e.uses[id]--
	if e.uses[id] > 0 || !e.owned[id] || e.cache[id] == nil {
		return
	}
	e.lease.PutTuples(e.cache[id].Tuples)
	e.cache[id] = nil
	e.owned[id] = false
}

// workers is the degree of parallelism for scans and maps: the widest worker
// count any join of the plan requests (normalized joins default to
// GOMAXPROCS via core, so 0 means "no explicit request").
func (e *planExec) workers() int {
	w := 0
	for _, n := range e.plan.Nodes {
		if n.Kind == NodeJoin && n.JoinOptions.Workers > w {
			w = n.JoinOptions.Workers
		}
	}
	return w
}
