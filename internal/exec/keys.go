package exec

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/mergejoin"
	"repro/internal/relation"
	"repro/internal/sink"
)

// keyCheckFor derives the tie-break verifier a join needs from its inputs'
// key metadata (see internal/keys and relation.KeyMeta). The regimes:
//
//   - Neither input carries metadata, or both carry exact metadata: the
//     uint64 keys are complete, so no verifier is needed — the raw fast
//     path, selected here at plan time at zero per-tuple cost.
//   - Both inputs carry inexact metadata with equal signatures: the keys
//     are 8-byte normalized prefixes and payloads are row indices; the
//     returned verifier compares the full normalized keys of every
//     prefix-equal candidate pair and rewrites surviving payloads to the
//     callers' original payloads.
//   - Anything else (inexact against raw, mismatched signatures) is a
//     schema error: prefix equality against a foreign key space is
//     meaningless, so the join is rejected rather than silently wrong.
func keyCheckFor(r, s *relation.Relation, opts core.Options) (sink.PairCheck, error) {
	rm, sm := r.Meta, s.Meta
	if rm == nil && sm == nil {
		return nil, nil
	}
	if rm == nil || sm == nil {
		with, without := r, s
		if rm == nil {
			with, without = s, r
		}
		if with.Meta.Exact() {
			// An exact prefix is the whole normalized key, so joining it
			// against a raw-uint64 relation is well-defined; the caller
			// vouches that the raw keys live in the normalized domain.
			return nil, nil
		}
		return nil, fmt.Errorf("exec: cannot join schema-keyed relation %q (%s) with raw-keyed relation %q",
			with.Name, with.Meta.Signature(), without.Name)
	}
	if rm.Signature() != sm.Signature() {
		return nil, fmt.Errorf("exec: key schema mismatch: %q has [%s], %q has [%s]",
			r.Name, rm.Signature(), s.Name, sm.Signature())
	}
	if rm.Exact() {
		return nil, nil
	}
	// Tie-break verification happens per emitted pair at the sink boundary,
	// after the kernels have already classified tuples as matched — only
	// inner equi-joins stay correct under that late filtering.
	if opts.Kind != mergejoin.Inner {
		return nil, fmt.Errorf("exec: %v join on tie-break keys [%s] is not supported (inner only)",
			opts.Kind, rm.Signature())
	}
	if opts.Band != 0 {
		return nil, fmt.Errorf("exec: band join on tie-break keys [%s] is not supported (prefix distance is not key distance)",
			rm.Signature())
	}
	return func(rp, sp uint64) (uint64, uint64, bool) {
		if !bytes.Equal(rm.FullKey(int(rp)), sm.FullKey(int(sp))) {
			return 0, 0, false
		}
		return rm.UserPayload(int(rp)), sm.UserPayload(int(sp)), true
	}, nil
}
