package exec

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/keys"
	"repro/internal/mergejoin"
	"repro/internal/relation"
)

// tieRel builds a tie-break (inexact-key) relation: a Bytes column whose
// values exceed the 8-byte prefix, forcing full-key verification.
func tieRel(t *testing.T, name string) *relation.Relation {
	t.Helper()
	schema := keys.MustNew(keys.Column{Name: "name", Type: keys.Bytes})
	return schema.MustEncode(name, [][]keys.Value{
		{keys.StringValue("abcdefghijkl")},
		{keys.StringValue("abcdefghijzz")},
	}, []uint64{1, 2})
}

// TestKeyMetadataErrorsNameRelation: every validateKeyMetadata rejection
// names the offending tie-break relation, its key regime, and the allowed
// regimes — not just a node number.
func TestKeyMetadataErrorsNameRelation(t *testing.T) {
	tie := tieRel(t, "orders")
	tie2 := tieRel(t, "lineitem")
	raw := relation.New("raw", []relation.Tuple{{Key: 1, Payload: 1}})

	join := func(p *Plan, b, pr NodeID, opts core.Options) NodeID {
		return p.AddJoin(b, pr, AlgorithmPMPSM, opts, core.DiskOptions{})
	}

	cases := []struct {
		name  string
		build func() *Plan
		wants []string
	}{
		{
			"join over join",
			func() *Plan {
				p := &Plan{}
				a := p.AddScan(tie, nil)
				b := p.AddScan(tie2, nil)
				ab := join(p, a, b, core.Options{})
				c := p.AddScan(raw, nil)
				join(p, ab, c, core.Options{})
				return p
			},
			[]string{`tie-break relation "orders"`, "8-byte prefix + tie-break verify", "directly over the scan"},
		},
		{
			"non-inner kind",
			func() *Plan {
				p := &Plan{}
				a := p.AddScan(tie, nil)
				b := p.AddScan(tie2, nil)
				join(p, a, b, core.Options{Kind: mergejoin.Semi})
				return p
			},
			[]string{`tie-break relation "orders"`, "semi", "inner"},
		},
		{
			"band join",
			func() *Plan {
				p := &Plan{}
				a := p.AddScan(tie, nil)
				b := p.AddScan(tie2, nil)
				join(p, a, b, core.Options{Band: 5})
				return p
			},
			[]string{`tie-break relation "orders"`, "band join", "not distance between keys"},
		},
		{
			"group aggregate",
			func() *Plan {
				p := &Plan{}
				a := p.AddScan(tie, nil)
				b := p.AddScan(tie2, nil)
				ab := join(p, a, b, core.Options{})
				p.AddGroupAggregate(ab, 0)
				return p
			},
			[]string{"GroupAggregate", `tie-break relation "orders"`, "merge distinct groups"},
		},
		{
			"map",
			func() *Plan {
				p := &Plan{}
				a := p.AddScan(tie, nil)
				p.AddMap(a, func(t relation.Tuple) relation.Tuple { return t })
				return p
			},
			[]string{"Map", `tie-break relation "orders"`, "row-index payloads"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.build().Validate()
			if err == nil {
				t.Fatal("expected a key-metadata validation error")
			}
			for _, want := range tc.wants {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q\n  missing %q", err, want)
				}
			}
		})
	}
}

// TestKeyMetadataExactComposes: exact-schema relations pass everywhere the
// tie-break ones are rejected.
func TestKeyMetadataExactComposes(t *testing.T) {
	schema := keys.MustNew(keys.Column{Name: "id", Type: keys.Int64})
	a := schema.MustEncode("a", [][]keys.Value{{keys.Int64Value(1)}}, []uint64{1})
	b := schema.MustEncode("b", [][]keys.Value{{keys.Int64Value(1)}}, []uint64{2})
	p := &Plan{}
	sa := p.AddScan(a, nil)
	sb := p.AddScan(b, nil)
	ab := p.AddJoin(sa, sb, AlgorithmPMPSM, core.Options{}, core.DiskOptions{})
	p.AddGroupAggregate(ab, 0)
	if err := p.Validate(); err != nil {
		t.Fatalf("exact schemas should compose: %v", err)
	}
}
