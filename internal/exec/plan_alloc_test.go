//go:build !race

package exec

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/memory"
	"repro/internal/relation"
	"repro/internal/sink"
)

// measurePlanAllocBytes runs the plan once on a warmed pool and reports the
// heap bytes allocated by the execution.
func measurePlanAllocBytes(t *testing.T, p *Plan, pool *memory.Pool) uint64 {
	t.Helper()
	for i := 0; i < 2; i++ { // warm the pool's free lists
		if _, err := RunPlan(context.Background(), p, pool); err != nil {
			t.Fatal(err)
		}
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if _, err := RunPlan(context.Background(), p, pool); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

// TestStreamingAggregateAllocatesNoHashTable verifies the headline property
// of the merge-based GroupAggregate above a P-MPSM join: with the scratch
// pool warm, aggregating tens of thousands of groups allocates no more than
// the caller-owned output copy plus a small fixed overhead — in particular,
// nothing proportional to the group count beyond the output itself, which is
// what any hash-table aggregation would add (per-worker maps plus bucket
// arrays). The materialize-then-hash plan over the same data serves as the
// in-situ comparison.
func TestStreamingAggregateAllocatesNoHashTable(t *testing.T) {
	r, s := dataset(20000, 4, 311) // ~20k distinct keys, 80k pairs
	groups := len(relation.KeyHistogram(r.Tuples))
	opts := core.Options{Workers: 4}

	streaming := &Plan{}
	j := streaming.AddJoin(streaming.AddScan(r, nil), streaming.AddScan(s, nil), AlgorithmPMPSM, opts, core.DiskOptions{})
	streaming.AddGroupAggregate(j, sink.AggSum)

	hashed := &Plan{}
	jh := hashed.AddJoin(hashed.AddScan(r, nil), hashed.AddScan(s, nil), AlgorithmPMPSM, opts, core.DiskOptions{})
	hashed.AddGroupAggregate(hashed.AddProject(jh, sink.DefaultProjection), sink.AggSum)

	streamBytes := measurePlanAllocBytes(t, streaming, memory.NewPool(0))
	hashBytes := measurePlanAllocBytes(t, hashed, memory.NewPool(0))

	// The caller keeps the output, so one fresh copy of the groups is
	// unavoidable; everything else must come from the pool. 256 KiB covers
	// the fixed per-join overhead (runtime, phases, result structs) with
	// ample slack — a hash table for 20k groups alone would exceed it.
	outputBytes := uint64(groups) * 16
	budget := 2*outputBytes + 256<<10
	if streamBytes > budget {
		t.Errorf("streaming aggregation allocated %d bytes for %d groups, budget %d: something builds per-group state outside the pool",
			streamBytes, groups, budget)
	}
	if streamBytes*2 > hashBytes {
		t.Errorf("streaming aggregation (%d bytes) is not clearly leaner than materialize+hash (%d bytes)",
			streamBytes, hashBytes)
	}
}

// TestMergeGroupsAllocationIndependentOfGroupCount drives the merge-group
// sink directly: the number of allocations must not grow with the number of
// distinct keys (a hash table's would), because every per-group entry lives
// in leased buffers.
func TestMergeGroupsAllocationIndependentOfGroupCount(t *testing.T) {
	pool := memory.NewPool(0)
	run := func(keys int) float64 {
		return testing.AllocsPerRun(5, func() {
			lease := pool.Acquire()
			snk := sink.NewMergeGroups(sink.AggSum, nil)
			snk.SetScratch(lease)
			snk.Open(2)
			for w := 0; w < 2; w++ {
				wr := snk.Writer(w)
				for pass := 0; pass < 2; pass++ { // two sorted segments per worker
					for k := 0; k < keys; k++ {
						wr.Consume(relation.Tuple{Key: uint64(k), Payload: 1}, relation.Tuple{Payload: 2})
					}
				}
			}
			if err := snk.Close(); err != nil {
				t.Fatal(err)
			}
			if len(snk.Groups()) != keys {
				t.Fatalf("got %d groups, want %d", len(snk.Groups()), keys)
			}
			lease.Release()
		})
	}
	run(1000) // warm the pool at the larger class sizes first
	small, large := run(100), run(50000)
	// The fixed overhead (writers, segment bookkeeping, the final output
	// slice) is a couple dozen allocations; 500× more groups must not add
	// more than a handful (output-slice size classes differ).
	if large > small+16 {
		t.Fatalf("allocations grew with the group count: %0.f for 100 keys vs %0.f for 50000 keys", small, large)
	}
}
