package exec

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/workload"
)

// TestFilterKeyRangeMatchesPredicateFilter runs the branch-free structured
// range scan against the predicate-closure filter on identical inputs, across
// sizes on both sides of the parallel cutoff and across selectivities from
// empty to full.
func TestFilterKeyRangeMatchesPredicateFilter(t *testing.T) {
	ctx := context.Background()
	sizes := []int{0, 1, 100, filterParallelCutoff - 1, filterParallelCutoff + 1, 3 * filterParallelCutoff}
	ranges := []KeyRange{
		{Low: 0, High: 0},                   // empty
		{Low: 500, High: 400},               // inverted: empty
		{Low: 0, High: 1 << 32},             // everything (keys live in [0, 2^32))
		{Low: 1 << 30, High: 3 << 30},       // ~50%
		{Low: 1 << 31, High: 1<<31 + 1<<20}, // narrow band
	}
	for _, n := range sizes {
		rel := workload.UniformRelation("R", n, 1<<32, uint64(n)+7)
		for _, rng := range ranges {
			for _, workers := range []int{1, 4} {
				want, _ := applyFilter(ctx, rel, KeyRangePredicate(rng.Low, rng.High), workers, nil)
				got, _ := filterKeyRange(ctx, rel, rng, workers, nil)
				if got.Len() != want.Len() {
					t.Fatalf("n=%d range=%+v workers=%d: %d tuples, predicate filter kept %d",
						n, rng, workers, got.Len(), want.Len())
				}
				for i := range got.Tuples {
					if got.Tuples[i] != want.Tuples[i] {
						t.Fatalf("n=%d range=%+v workers=%d: tuple %d = %+v, predicate filter %+v",
							n, rng, workers, i, got.Tuples[i], want.Tuples[i])
					}
				}
			}
		}
	}
}

// TestApplyScanFilterComposition pins the dispatch of applyScanFilter: nil
// range falls through to the predicate filter, a pure range takes the
// branch-free path, and range+predicate compose as AND.
func TestApplyScanFilterComposition(t *testing.T) {
	ctx := context.Background()
	rel := workload.UniformRelation("R", 5000, 1<<32, 11)
	rng := &KeyRange{Low: 1 << 30, High: 3 << 31}
	oddPayload := func(t relation.Tuple) bool { return t.Payload&1 == 1 }

	// Scalar oracle.
	var want []relation.Tuple
	for _, tup := range rel.Tuples {
		if rng.Match(tup.Key) && oddPayload(tup) {
			want = append(want, tup)
		}
	}

	got, _ := applyScanFilter(ctx, rel, rng, oddPayload, 4, nil)
	if got.Len() != len(want) {
		t.Fatalf("composed filter kept %d tuples, oracle %d", got.Len(), len(want))
	}
	for i := range want {
		if got.Tuples[i] != want[i] {
			t.Fatalf("composed filter tuple %d = %+v, oracle %+v", i, got.Tuples[i], want[i])
		}
	}

	// nil range, nil predicate: input passes through untouched.
	passthrough, leased := applyScanFilter(ctx, rel, nil, nil, 4, nil)
	if leased || passthrough != rel {
		t.Fatal("nil range and predicate must return the input relation")
	}
}

// TestRunWithKeyRange drives the structured range through the public Query
// surface and checks it against the closure-predicate equivalent.
func TestRunWithKeyRange(t *testing.T) {
	r, s := dataset(3000, 2, 9)
	low, high := uint64(1)<<30, uint64(3)<<30

	base, err := Run(context.Background(), Query{
		R: r, S: s,
		RFilter:     KeyRangePredicate(low, high),
		SFilter:     KeyRangePredicate(low, high),
		JoinOptions: core.Options{Workers: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), Query{
		R: r, S: s,
		RRange:      &KeyRange{Low: low, High: high},
		SRange:      &KeyRange{Low: low, High: high},
		JoinOptions: core.Options{Workers: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != base.Matches || res.MaxSum != base.MaxSum ||
		res.RSelected != base.RSelected || res.SSelected != base.SSelected {
		t.Fatalf("KeyRange query got (%d, %d, %d, %d), predicate query (%d, %d, %d, %d)",
			res.Matches, res.MaxSum, res.RSelected, res.SSelected,
			base.Matches, base.MaxSum, base.RSelected, base.SSelected)
	}
	if res.Matches == 0 {
		t.Fatal("range selected nothing; test range is broken")
	}
}

// TestKeyRangeMatchAndPredicate covers the KeyRange helpers.
func TestKeyRangeMatchAndPredicate(t *testing.T) {
	r := KeyRange{Low: 10, High: 20}
	for k, want := range map[uint64]bool{9: false, 10: true, 15: true, 19: true, 20: false} {
		if r.Match(k) != want {
			t.Fatalf("Match(%d) = %v, want %v", k, r.Match(k), want)
		}
		if r.Predicate()(relation.Tuple{Key: k}) != want {
			t.Fatalf("Predicate()(%d) = %v, want %v", k, !want, want)
		}
	}
}
