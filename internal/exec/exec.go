// Package exec provides a minimal query-execution pipeline around the join
// algorithms, mirroring the evaluation setup of the paper (Section 5.1): both
// relations are scanned, a selection is applied, the surviving tuples are
// joined, and a max aggregate over R.payload + S.payload is computed so that
// all payload data flows through the join while only a single output tuple is
// produced.
package exec

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/hashjoin"
	"repro/internal/mergejoin"
	"repro/internal/relation"
	"repro/internal/result"
)

// Algorithm selects the join implementation used by a query.
type Algorithm int

const (
	// AlgorithmPMPSM is the range-partitioned MPSM join (the default).
	AlgorithmPMPSM Algorithm = iota
	// AlgorithmBMPSM is the basic MPSM join without range partitioning.
	AlgorithmBMPSM
	// AlgorithmDMPSM is the disk-enabled, memory-constrained MPSM join.
	AlgorithmDMPSM
	// AlgorithmWisconsin is the no-partitioning shared hash join baseline.
	AlgorithmWisconsin
	// AlgorithmRadix is the radix-partitioned hash join baseline
	// (the "Vectorwise-style" contender).
	AlgorithmRadix
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case AlgorithmPMPSM:
		return "P-MPSM"
	case AlgorithmBMPSM:
		return "B-MPSM"
	case AlgorithmDMPSM:
		return "D-MPSM"
	case AlgorithmWisconsin:
		return "Wisconsin"
	case AlgorithmRadix:
		return "Radix HJ"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm converts a command-line name into an Algorithm.
func ParseAlgorithm(name string) (Algorithm, error) {
	switch name {
	case "pmpsm", "p-mpsm", "mpsm":
		return AlgorithmPMPSM, nil
	case "bmpsm", "b-mpsm":
		return AlgorithmBMPSM, nil
	case "dmpsm", "d-mpsm":
		return AlgorithmDMPSM, nil
	case "wisconsin", "nophj":
		return AlgorithmWisconsin, nil
	case "radix", "vectorwise", "radixhj":
		return AlgorithmRadix, nil
	default:
		return 0, fmt.Errorf("exec: unknown join algorithm %q", name)
	}
}

// Predicate is a tuple-level selection predicate. A nil Predicate keeps every
// tuple.
type Predicate func(relation.Tuple) bool

// Query describes one execution of the paper's evaluation query
//
//	SELECT max(R.payload + S.payload)
//	FROM R, S
//	WHERE <RFilter(R)> AND <SFilter(S)> AND R.joinkey = S.joinkey
type Query struct {
	// R is the private (build) input, S the public (probe) input.
	R, S *relation.Relation
	// RFilter and SFilter are optional selections applied during the scan.
	RFilter, SFilter Predicate
	// Algorithm selects the join implementation.
	Algorithm Algorithm
	// JoinOptions configures the MPSM variants and, where applicable, the
	// hash-join baselines (worker count, NUMA tracking, splitters). Its Kind
	// field selects inner/left-outer/semi/anti semantics; non-inner kinds
	// are only supported by the B-MPSM and P-MPSM algorithms.
	JoinOptions core.Options
	// DiskOptions configures AlgorithmDMPSM.
	DiskOptions core.DiskOptions
}

// QueryResult is the outcome of a query execution: the join result plus the
// scan timing and the answer of the aggregate.
type QueryResult struct {
	// Join is the underlying join result (phase breakdown, NUMA stats, ...).
	Join *result.Result
	// ScanTime is the time spent scanning and filtering both inputs.
	ScanTime time.Duration
	// RSelected and SSelected are the input cardinalities after selection.
	RSelected, SSelected int
	// MaxSum is the query answer max(R.payload + S.payload); only
	// meaningful if Matches > 0.
	MaxSum uint64
	// Matches is the join cardinality.
	Matches uint64
	// DiskStats is populated for AlgorithmDMPSM.
	DiskStats *core.DiskStats
}

// Run executes the query.
func Run(q Query) (*QueryResult, error) {
	if q.R == nil || q.S == nil {
		return nil, fmt.Errorf("exec: query requires both inputs, got R=%v S=%v", q.R, q.S)
	}
	if !q.JoinOptions.Kind.Valid() {
		return nil, fmt.Errorf("exec: unknown join kind %d", int(q.JoinOptions.Kind))
	}
	if q.JoinOptions.Kind != mergejoin.Inner &&
		q.Algorithm != AlgorithmPMPSM && q.Algorithm != AlgorithmBMPSM {
		return nil, fmt.Errorf("exec: join kind %v is only supported by the B-MPSM and P-MPSM algorithms, not %v",
			q.JoinOptions.Kind, q.Algorithm)
	}
	if q.JoinOptions.Band > 0 {
		if q.JoinOptions.Kind != mergejoin.Inner {
			return nil, fmt.Errorf("exec: band joins require an inner join kind, got %v", q.JoinOptions.Kind)
		}
		if q.Algorithm != AlgorithmPMPSM && q.Algorithm != AlgorithmBMPSM {
			return nil, fmt.Errorf("exec: band joins are only supported by the B-MPSM and P-MPSM algorithms, not %v", q.Algorithm)
		}
	}
	qr := &QueryResult{}

	// Scan + filter. The paper applies a selection so that neither indexes
	// nor foreign keys can be exploited; an always-true filter degenerates
	// to a plain scan without copying.
	var rIn, sIn *relation.Relation
	qr.ScanTime = result.StopwatchPhase(func() {
		rIn = applyFilter(q.R, q.RFilter)
		sIn = applyFilter(q.S, q.SFilter)
	})
	qr.RSelected = rIn.Len()
	qr.SSelected = sIn.Len()

	switch q.Algorithm {
	case AlgorithmPMPSM:
		qr.Join = core.PMPSM(rIn, sIn, q.JoinOptions)
	case AlgorithmBMPSM:
		qr.Join = core.BMPSM(rIn, sIn, q.JoinOptions)
	case AlgorithmDMPSM:
		res, stats := core.DMPSM(rIn, sIn, q.JoinOptions, q.DiskOptions)
		qr.Join = res
		qr.DiskStats = &stats
	case AlgorithmWisconsin:
		qr.Join = hashjoin.Wisconsin(rIn, sIn, hashjoin.Options{
			Workers:   q.JoinOptions.Workers,
			Topology:  q.JoinOptions.Topology,
			TrackNUMA: q.JoinOptions.TrackNUMA,
			CostModel: q.JoinOptions.CostModel,
		})
	case AlgorithmRadix:
		qr.Join = hashjoin.Radix(rIn, sIn, hashjoin.RadixOptions{
			Options: hashjoin.Options{
				Workers:   q.JoinOptions.Workers,
				Topology:  q.JoinOptions.Topology,
				TrackNUMA: q.JoinOptions.TrackNUMA,
				CostModel: q.JoinOptions.CostModel,
			},
		})
	default:
		return nil, fmt.Errorf("exec: unknown algorithm %v", q.Algorithm)
	}

	qr.Matches = qr.Join.Matches
	qr.MaxSum = qr.Join.MaxSum
	return qr, nil
}

// applyFilter returns the input unchanged for a nil predicate, and a filtered
// copy otherwise.
func applyFilter(rel *relation.Relation, pred Predicate) *relation.Relation {
	if pred == nil {
		return rel
	}
	out := relation.NewWithCapacity(rel.Name, rel.Len())
	for _, t := range rel.Tuples {
		if pred(t) {
			out.Append(t)
		}
	}
	return out
}

// KeyRangePredicate returns a predicate selecting tuples whose key lies in
// [low, high). It is the selection used by the example queries.
func KeyRangePredicate(low, high uint64) Predicate {
	return func(t relation.Tuple) bool { return t.Key >= low && t.Key < high }
}
