// Package exec provides the query-execution layer around the join
// algorithms: a push-based plan of composable operators — Scan (relation +
// predicate), Join (any of the five algorithms), Project/Map,
// GroupAggregate, and a terminal Sink — validated and executed as a DAG.
//
// The structural property that makes sort-merge plans compose is the one the
// MPSM paper's join phase rests on: every worker merges its sorted private
// run against sorted public runs, so a join's output stream arrives as
// key-ordered segments. Operators exploit this where it matters — a
// GroupAggregate directly above an MPSM join runs as a streaming, merge-based
// aggregation (fold consecutive equal keys, seal a sorted segment whenever
// the order restarts, k-way merge the segments at the end) and never builds a
// hash table. A join feeding another join materializes its projected output
// as an intermediate relation through the scratch pool, so deep plans stay
// allocation-free in steady state.
//
// The classic pipeline
//
//	scan(R), scan(S) → filter → join → sink
//
// of the paper's evaluation setup (Section 5.1) is just the one-join plan;
// Run builds exactly that plan. exec is also the dispatch layer of the public
// Engine API: Join maps an Algorithm onto the core and hashjoin
// implementations, threading the caller's context and sink through every one
// of them.
package exec

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/hashjoin"
	"repro/internal/relation"
	"repro/internal/result"
	"repro/internal/sched"
)

// Algorithm selects the join implementation used by a query.
type Algorithm int

const (
	// AlgorithmPMPSM is the range-partitioned MPSM join (the default).
	AlgorithmPMPSM Algorithm = iota
	// AlgorithmBMPSM is the basic MPSM join without range partitioning.
	AlgorithmBMPSM
	// AlgorithmDMPSM is the disk-enabled, memory-constrained MPSM join.
	AlgorithmDMPSM
	// AlgorithmWisconsin is the no-partitioning shared hash join baseline.
	AlgorithmWisconsin
	// AlgorithmRadix is the radix-partitioned hash join baseline
	// (the "Vectorwise-style" contender).
	AlgorithmRadix
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case AlgorithmPMPSM:
		return "P-MPSM"
	case AlgorithmBMPSM:
		return "B-MPSM"
	case AlgorithmDMPSM:
		return "D-MPSM"
	case AlgorithmWisconsin:
		return "Wisconsin"
	case AlgorithmRadix:
		return "Radix HJ"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm converts an algorithm name into an Algorithm. Matching is
// case-insensitive and ignores spaces and hyphens, so both the command-line
// short forms ("pmpsm", "radix") and the String() forms ("P-MPSM",
// "Radix HJ") round-trip.
func ParseAlgorithm(name string) (Algorithm, error) {
	n := strings.ToLower(name)
	n = strings.ReplaceAll(n, " ", "")
	n = strings.ReplaceAll(n, "-", "")
	switch n {
	case "pmpsm", "mpsm":
		return AlgorithmPMPSM, nil
	case "bmpsm":
		return AlgorithmBMPSM, nil
	case "dmpsm":
		return AlgorithmDMPSM, nil
	case "wisconsin", "nophj":
		return AlgorithmWisconsin, nil
	case "radix", "vectorwise", "radixhj":
		return AlgorithmRadix, nil
	default:
		return 0, fmt.Errorf("exec: unknown join algorithm %q", name)
	}
}

// Predicate is a tuple-level selection predicate. A nil Predicate keeps every
// tuple.
//
// Predicates must be pure functions of the tuple: the scan evaluates them
// concurrently from several workers and may evaluate them more than once per
// tuple (the filter counts survivors before copying them, so that the output
// is exactly sized). A stateful predicate yields an unspecified selection —
// never memory corruption, but not a meaningful result either.
type Predicate func(relation.Tuple) bool

// KeyRange is the structured form of a key-range selection: it keeps tuples
// whose key lies in [Low, High). Unlike an opaque Predicate closure, the scan
// can recognize it and run the selection branch-free — a borrow-bit membership
// test and a selection-vector gather instead of a per-tuple function call —
// so range scans filter at a selectivity-independent rate. High <= Low selects
// nothing.
type KeyRange struct {
	Low, High uint64
}

// Match reports whether a key lies in the range.
func (r KeyRange) Match(k uint64) bool {
	return r.Low <= k && k < r.High
}

// Predicate converts the range into an equivalent opaque predicate, for
// composing with code that wants a Predicate.
func (r KeyRange) Predicate() Predicate {
	return func(t relation.Tuple) bool { return r.Match(t.Key) }
}

// Query describes one execution of the pipeline
//
//	scan(R), scan(S) → filter → join → sink
//
// With the default sink it computes the paper's evaluation query
//
//	SELECT max(R.payload + S.payload)
//	FROM R, S
//	WHERE <RFilter(R)> AND <SFilter(S)> AND R.joinkey = S.joinkey
type Query struct {
	// R is the private (build) input, S the public (probe) input.
	R, S *relation.Relation
	// RFilter and SFilter are optional selections applied during the scan.
	RFilter, SFilter Predicate
	// RRange and SRange are optional structured key-range selections. They
	// run on the branch-free selection path; a filter and a range on the same
	// input compose (a tuple must satisfy both).
	RRange, SRange *KeyRange
	// Algorithm selects the join implementation.
	Algorithm Algorithm
	// JoinOptions configures the MPSM variants and, where applicable, the
	// hash-join baselines (worker count, NUMA tracking, splitters). Its Kind
	// field selects inner/left-outer/semi/anti semantics; non-inner kinds
	// are only supported by the B-MPSM and P-MPSM algorithms. Its Sink field
	// receives the joined tuple stream (nil selects the built-in max-sum
	// aggregate).
	JoinOptions core.Options
	// DiskOptions configures AlgorithmDMPSM.
	DiskOptions core.DiskOptions
}

// QueryResult is the outcome of a query execution: the join result plus the
// scan timing and the answer of the aggregate.
type QueryResult struct {
	// Join is the underlying join result (phase breakdown, NUMA stats, ...).
	Join *result.Result
	// ScanTime is the time spent scanning and filtering both inputs.
	ScanTime time.Duration
	// RSelected and SSelected are the input cardinalities after selection.
	RSelected, SSelected int
	// MaxSum is the query answer max(R.payload + S.payload); only meaningful
	// if Matches > 0 and the query ran with the default max-sum sink.
	MaxSum uint64
	// Matches is the join cardinality.
	Matches uint64
	// DiskStats is populated for AlgorithmDMPSM.
	DiskStats *core.DiskStats
}

// validate rejects queries with missing inputs or unsupported
// algorithm/kind/band combinations.
func (q Query) validate() error {
	if q.R == nil || q.S == nil {
		return fmt.Errorf("exec: query requires both inputs, got R=%v S=%v", q.R, q.S)
	}
	if err := validateJoin(q.Algorithm, q.JoinOptions); err != nil {
		return fmt.Errorf("exec: %w", err)
	}
	return nil
}

// Run executes the classic query pipeline — scan+filter both inputs, run the
// selected join with the caller's context and sink, collect the result — as
// the one-join plan
//
//	Scan(R) ─┐
//	         Join ─ Sink
//	Scan(S) ─┘
//
// A canceled context aborts the execution and returns ctx.Err().
func Run(ctx context.Context, q Query) (*QueryResult, error) {
	if err := q.validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p := &Plan{}
	rID := p.AddScanRange(q.R, q.RRange, q.RFilter)
	sID := p.AddScanRange(q.S, q.SRange, q.SFilter)
	jID := p.AddJoin(rID, sID, q.Algorithm, q.JoinOptions, q.DiskOptions)
	p.AddSink(jID, q.JoinOptions.Sink)

	pr, err := RunPlan(ctx, p, q.JoinOptions.Scratch)
	if err != nil {
		return nil, err
	}
	join := pr.Joins[0]
	return &QueryResult{
		Join:      join.Result,
		DiskStats: join.Disk,
		ScanTime:  pr.ScanTime,
		RSelected: pr.Rows[rID],
		SSelected: pr.Rows[sID],
		Matches:   pr.Matches,
		MaxSum:    pr.MaxSum,
	}, nil
}

// Join dispatches one join execution to the selected algorithm, threading the
// context and the sink carried in opts.Sink. It is the single entry point the
// public Engine and the Query pipeline share. DiskStats is non-nil only for
// AlgorithmDMPSM.
func Join(ctx context.Context, alg Algorithm, r, s *relation.Relation, opts core.Options, diskOpts core.DiskOptions) (res *result.Result, disk *core.DiskStats, err error) {
	// Worker panics are already recovered inside sched and arrive here as
	// *sched.PanicError return values; this recover is the coordinator-side
	// backstop for panics on the calling goroutine itself (splitter
	// computation, prefix sums, lease draws between phases). Either way the
	// failure domain is this query, not the process.
	defer func() {
		if r := recover(); r != nil {
			res, disk = nil, nil
			err = sched.Recovered(opts.Owner.Label(), "join", -1, r)
		}
	}()
	// Normalized-key inputs select their verification regime here, at plan
	// time: raw or exact-schema inputs keep KeyCheck nil (the zero-overhead
	// fast path), inexact inputs get the tie-break verifier. Callers that
	// pre-set KeyCheck keep their own.
	if opts.KeyCheck == nil {
		check, cerr := keyCheckFor(r, s, opts)
		if cerr != nil {
			return nil, nil, cerr
		}
		opts.KeyCheck = check
	}
	switch alg {
	case AlgorithmPMPSM:
		res, err := core.PMPSM(ctx, r, s, opts)
		return res, nil, err
	case AlgorithmBMPSM:
		res, err := core.BMPSM(ctx, r, s, opts)
		return res, nil, err
	case AlgorithmDMPSM:
		res, stats, err := core.DMPSM(ctx, r, s, opts, diskOpts)
		if err != nil {
			return nil, nil, err
		}
		return res, &stats, nil
	case AlgorithmWisconsin:
		res, err := hashjoin.Wisconsin(ctx, r, s, hashJoinOptions(opts))
		return res, nil, err
	case AlgorithmRadix:
		res, err := hashjoin.Radix(ctx, r, s, hashjoin.RadixOptions{Options: hashJoinOptions(opts)})
		return res, nil, err
	default:
		return nil, nil, fmt.Errorf("exec: unknown algorithm %v", alg)
	}
}

// hashJoinOptions projects the shared join options onto the hash-join
// baselines (which have no splitters, histograms or disk, but share the
// worker pool, NUMA accounting, sink and scheduling configuration).
func hashJoinOptions(opts core.Options) hashjoin.Options {
	return hashjoin.Options{
		Workers:    opts.Workers,
		Topology:   opts.Topology,
		TrackNUMA:  opts.TrackNUMA,
		CostModel:  opts.CostModel,
		Sink:       opts.Sink,
		KeyCheck:   opts.KeyCheck,
		Scheduler:  opts.Scheduler,
		MorselSize: opts.MorselSize,
		Scratch:    opts.Scratch,
		Owner:      opts.Owner,
		Gate:       opts.Gate,
		Faults:     opts.Faults,
	}
}

// KeyRangePredicate returns a predicate selecting tuples whose key lies in
// [low, high). It is the selection used by the example queries.
func KeyRangePredicate(low, high uint64) Predicate {
	return func(t relation.Tuple) bool { return t.Key >= low && t.Key < high }
}
