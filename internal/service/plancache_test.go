package service

import (
	"context"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/relation"
)

func testRel(name string, n int) *relation.Relation {
	tuples := make([]relation.Tuple, n)
	for i := range tuples {
		tuples[i] = relation.Tuple{Key: uint64(i*2654435761) % uint64(n), Payload: uint64(i)}
	}
	return relation.New(name, tuples)
}

// lowerPlan builds the lowered single-join plan the engine would produce for
// Join(r, s) with the given worker count.
func lowerPlan(r, s *relation.Relation, workers int) *exec.Plan {
	p := &exec.Plan{}
	rs := p.AddScan(r, nil)
	ss := p.AddScan(s, nil)
	p.AddJoin(rs, ss, exec.AlgorithmPMPSM, core.Options{Workers: workers}, core.DiskOptions{})
	return p
}

func TestPlanCacheHitOnRepeatedShape(t *testing.T) {
	r, s := testRel("R", 2000), testRel("S", 4000)
	c := NewPlanCache(nil, 0)

	first, err := c.Optimize(lowerPlan(r, s, 2), true)
	if err != nil {
		t.Fatalf("first Optimize: %v", err)
	}
	second, err := c.Optimize(lowerPlan(r, s, 2), true)
	if err != nil {
		t.Fatalf("second Optimize: %v", err)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 miss / 1 hit / 1 entry", st)
	}
	// The cached plan must carry the identical physical decisions.
	for i := range first.Nodes {
		f, g := first.Nodes[i], second.Nodes[i]
		if f.Algorithm != g.Algorithm ||
			f.JoinOptions.Scheduler != g.JoinOptions.Scheduler ||
			f.JoinOptions.PresortedPrivate != g.JoinOptions.PresortedPrivate ||
			len(f.Inputs) != len(g.Inputs) {
			t.Fatalf("node %d diverged: fresh %+v vs cached %+v", i, f, g)
		}
		for j := range f.Inputs {
			if f.Inputs[j] != g.Inputs[j] {
				t.Fatalf("node %d inputs diverged: %v vs %v", i, f.Inputs, g.Inputs)
			}
		}
	}
}

func TestPlanCacheMissOnDifferentConfig(t *testing.T) {
	r, s := testRel("R", 1000), testRel("S", 1000)
	c := NewPlanCache(nil, 0)
	if _, err := c.Optimize(lowerPlan(r, s, 2), true); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Optimize(lowerPlan(r, s, 4), true); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 2 misses (different worker counts)", st)
	}
}

func TestPlanCacheMissOnDifferentRelations(t *testing.T) {
	r, s := testRel("R", 1000), testRel("S", 1000)
	r2 := testRel("R2", 1000)
	c := NewPlanCache(nil, 0)
	c.Optimize(lowerPlan(r, s, 2), true)  //nolint:errcheck
	c.Optimize(lowerPlan(r2, s, 2), true) //nolint:errcheck
	if st := c.Stats(); st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 2 misses (different relations)", st)
	}
}

func TestPlanCacheRewriteModesDoNotMix(t *testing.T) {
	r, s := testRel("R", 1000), testRel("S", 1000)
	c := NewPlanCache(nil, 0)
	c.Optimize(lowerPlan(r, s, 2), true)  //nolint:errcheck
	c.Optimize(lowerPlan(r, s, 2), false) //nolint:errcheck
	if st := c.Stats(); st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 2 misses (rewrite on vs off)", st)
	}
}

func TestPlanCacheInvalidationOnMutation(t *testing.T) {
	r, s := testRel("R", 1000), testRel("S", 1000)
	c := NewPlanCache(nil, 0)
	if _, err := c.Optimize(lowerPlan(r, s, 2), true); err != nil {
		t.Fatal(err)
	}
	r.Tuples[0].Key += 1 << 40 // in-place mutation: stats are stale now
	if _, err := c.Optimize(lowerPlan(r, s, 2), true); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Invalidations != 1 || st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 1 invalidation and a re-plan", st)
	}
	// The re-planned entry is valid again.
	if _, err := c.Optimize(lowerPlan(r, s, 2), true); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("stats after re-plan = %+v, want a hit", st)
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	rels := make([]*relation.Relation, 4)
	for i := range rels {
		rels[i] = testRel("R", 500+i)
	}
	s := testRel("S", 500)
	c := NewPlanCache(nil, 2)
	for _, r := range rels[:3] {
		if _, err := c.Optimize(lowerPlan(r, s, 2), true); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries after 1 eviction", st)
	}
	// The evicted shape (the oldest) misses again.
	if _, err := c.Optimize(lowerPlan(rels[0], s, 2), true); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 4 {
		t.Fatalf("stats = %+v, want the evicted shape to miss", st)
	}
}

// TestPlanCacheExecutionParity runs the same plan fresh and from the cache
// and checks the outputs are multiset-identical.
func TestPlanCacheExecutionParity(t *testing.T) {
	r, s := testRel("R", 3000), testRel("S", 6000)
	c := NewPlanCache(nil, 0)

	fresh, err := c.Optimize(lowerPlan(r, s, 2), true)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := c.Optimize(lowerPlan(r, s, 2), true)
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats().Hits != 1 {
		t.Fatalf("stats = %+v, want the second plan served from cache", c.Stats())
	}

	freshRes, err := exec.RunPlan(context.Background(), fresh, nil)
	if err != nil {
		t.Fatal(err)
	}
	cachedRes, err := exec.RunPlan(context.Background(), cached, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, b := sortedTuples(freshRes.Output.Tuples), sortedTuples(cachedRes.Output.Tuples)
	if len(a) != len(b) {
		t.Fatalf("cardinality diverged: fresh %d vs cached %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tuple %d diverged: fresh %+v vs cached %+v", i, a[i], b[i])
		}
	}
}

func sortedTuples(in []relation.Tuple) []relation.Tuple {
	out := append([]relation.Tuple(nil), in...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Payload < out[j].Payload
	})
	return out
}

// TestPlanCacheKeyed: OptimizeKeyed shares one entry per caller key,
// invalidates on relation mutation, and never collides with structural keys.
func TestPlanCacheKeyed(t *testing.T) {
	r, s := testRel("R", 2000), testRel("S", 4000)
	c := NewPlanCache(nil, 0)

	const key = "ans(K, V) :- r(K, _), s(K, V)."
	if _, err := c.OptimizeKeyed(key, lowerPlan(r, s, 2), true); err != nil {
		t.Fatalf("first OptimizeKeyed: %v", err)
	}
	if _, err := c.OptimizeKeyed(key, lowerPlan(r, s, 2), true); err != nil {
		t.Fatalf("second OptimizeKeyed: %v", err)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 miss / 1 hit / 1 entry", st)
	}

	// The same plan through the structural path is a separate entry: caller
	// keys live in their own namespace.
	if _, err := c.Optimize(lowerPlan(r, s, 2), true); err != nil {
		t.Fatalf("structural Optimize: %v", err)
	}
	if st = c.Stats(); st.Misses != 2 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want a second miss and entry for the structural key", st)
	}

	// Mutating a scanned relation invalidates the keyed entry.
	r.Tuples[0].Payload += 12345
	if _, err := c.OptimizeKeyed(key, lowerPlan(r, s, 2), true); err != nil {
		t.Fatalf("post-mutation OptimizeKeyed: %v", err)
	}
	if st = c.Stats(); st.Invalidations != 1 {
		t.Fatalf("stats = %+v, want 1 invalidation after relation mutation", st)
	}
}

// TestPlanCacheKeyedShapeMismatch: reusing one caller key across differently
// shaped plans degrades to a re-plan instead of corrupting the new plan.
func TestPlanCacheKeyedShapeMismatch(t *testing.T) {
	r, s := testRel("R", 2000), testRel("S", 4000)
	c := NewPlanCache(nil, 0)

	if _, err := c.OptimizeKeyed("k", lowerPlan(r, s, 2), true); err != nil {
		t.Fatalf("OptimizeKeyed: %v", err)
	}
	// Same key, different shape: a bare scan.
	short := &exec.Plan{}
	short.AddScan(r, nil)
	got, err := c.OptimizeKeyed("k", short, true)
	if err != nil {
		t.Fatalf("OptimizeKeyed with new shape: %v", err)
	}
	if len(got.Nodes) != 1 || got.Nodes[0].Kind != exec.NodeScan {
		t.Fatalf("mismatched-shape lookup corrupted the plan: %+v", got.Nodes)
	}
}
