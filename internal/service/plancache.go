package service

import (
	"fmt"
	"hash/fnv"
	"reflect"
	"strings"
	"sync"

	"repro/internal/exec"
	"repro/internal/planner"
	"repro/internal/relation"
	"repro/internal/sched"
	"repro/internal/stats"
)

// DefaultPlanCacheSize bounds the number of cached physical plans; beyond it
// the least-recently-used entry is evicted.
const DefaultPlanCacheSize = 256

// PlanCacheStats are cumulative counters of a plan cache.
type PlanCacheStats struct {
	// Hits counts lookups answered from the cache.
	Hits uint64
	// Misses counts lookups that had to run the optimizer (including the
	// first sighting of every shape).
	Misses uint64
	// Invalidations counts entries dropped because a relation's content
	// fingerprint no longer matched the one the plan was optimized for.
	Invalidations uint64
	// Evictions counts entries dropped by the LRU size bound.
	Evictions uint64
	// Entries is the current cache size.
	Entries int
}

// nodeChoice is the cached physical decision for one plan node: everything
// the optimizer may change, and nothing it may not. Node IDs are stable
// across optimization (node i of the optimized plan computes node i of the
// input plan), so applying these onto a freshly lowered plan of the same
// shape reproduces the optimized plan exactly — without aliasing the cached
// execution's relations, sinks or closures.
type nodeChoice struct {
	inputs                            []exec.NodeID
	algorithm                         exec.Algorithm
	scheduler                         sched.Mode
	morselSize                        int
	presortedPrivate, presortedPublic bool
	aggMode                           exec.AggMode
}

// cacheEntry is one cached physical plan.
type cacheEntry struct {
	choices []nodeChoice
	// prints fingerprint the content of every scan relation at optimization
	// time (indexed by node ID; zero for non-scan nodes). A mismatch at
	// lookup means the relation mutated since the statistics were sampled:
	// the cached plan may be stale and is invalidated.
	prints []uint64
	// use is the LRU clock value of the last hit.
	use uint64
}

// PlanCache memoizes the cost-based planner's physical decisions for whole
// plans, keyed by normalized plan shape (operator DAG, relation and function
// identities, per-join configuration) plus a per-relation statistics
// fingerprint. Optimizing a plan costs profile sampling and a cost-model
// search per join; a serving workload repeats a handful of plan shapes
// thousands of times, so the cache turns that into a map lookup.
type PlanCache struct {
	// Profile returns the (possibly cached) statistics of a base relation;
	// typically the engine's memoized profiles. Nil falls back to uncached
	// collection.
	Profile func(*relation.Relation) *stats.Profile
	// Cost is the planner cost model; the zero value selects the default.
	Cost planner.CostModel
	// Size bounds the entry count; 0 selects DefaultPlanCacheSize.
	Size int

	mu      sync.Mutex
	entries map[string]*cacheEntry
	clock   uint64
	stats   PlanCacheStats
}

// NewPlanCache creates a plan cache that fills misses by running the planner
// with the given stats provider.
func NewPlanCache(profile func(*relation.Relation) *stats.Profile, size int) *PlanCache {
	return &PlanCache{Profile: profile, Size: size}
}

// Optimize returns the physical plan for p: on a hit the cached node choices
// are applied to p in place (p must be freshly lowered and owned by the
// caller), on a miss the optimizer runs and its decisions are cached.
// rewrite selects whether the planner may mutate the plan (auto-planning) or
// only validates and annotates the configured one; it is part of the cache
// key, so the two modes never cross-contaminate. The returned plan is always
// safe to execute concurrently with other queries — cached entries hold only
// physical decisions, never relations or sinks.
func (c *PlanCache) Optimize(p *exec.Plan, rewrite bool) (*exec.Plan, error) {
	return c.optimize(cacheKey(p, rewrite), p, rewrite)
}

// OptimizeKeyed is Optimize under a caller-provided cache key — typically the
// canonical text of a compiled query, so equivalent spellings share one
// entry without normalizing the lowered plan's shape. Content staleness is
// still caught per lookup: the per-relation fingerprints are validated on
// every hit, so rebinding a name to new data invalidates rather than reuses
// the entry. Caller keys live in their own namespace and never collide with
// structural keys.
func (c *PlanCache) OptimizeKeyed(key string, p *exec.Plan, rewrite bool) (*exec.Plan, error) {
	return c.optimize(fmt.Sprintf("key%q;rw%t", key, rewrite), p, rewrite)
}

// optimize is the shared lookup-or-plan core of Optimize and OptimizeKeyed.
func (c *PlanCache) optimize(key string, p *exec.Plan, rewrite bool) (*exec.Plan, error) {
	prints := fingerprints(p)

	c.mu.Lock()
	if ent, ok := c.entries[key]; ok {
		// The choice vector must line up with the plan (a caller key used
		// across differently shaped plans is a caller bug; degrade to a
		// re-plan rather than applying choices onto the wrong nodes).
		if len(ent.choices) == len(p.Nodes) && printsMatch(ent.prints, prints) {
			c.clock++
			ent.use = c.clock
			c.stats.Hits++
			c.mu.Unlock()
			applyChoices(p, ent.choices)
			return p, nil
		}
		delete(c.entries, key)
		c.stats.Invalidations++
	}
	c.stats.Misses++
	c.mu.Unlock()

	opt := &planner.Optimizer{Cost: c.Cost, Profile: c.Profile, Rewrite: rewrite}
	optimized, _, err := opt.Optimize(p)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries == nil {
		c.entries = make(map[string]*cacheEntry)
	}
	size := c.Size
	if size <= 0 {
		size = DefaultPlanCacheSize
	}
	if _, exists := c.entries[key]; !exists && len(c.entries) >= size {
		c.evictLRU()
	}
	c.clock++
	c.entries[key] = &cacheEntry{choices: captureChoices(optimized), prints: prints, use: c.clock}
	return optimized, nil
}

// evictLRU drops the least-recently-used entry; the caller holds c.mu.
func (c *PlanCache) evictLRU() {
	var victim string
	var oldest uint64
	first := true
	for k, e := range c.entries {
		if first || e.use < oldest {
			victim, oldest, first = k, e.use, false
		}
	}
	delete(c.entries, victim)
	c.stats.Evictions++
}

// Stats returns a snapshot of the cache counters.
func (c *PlanCache) Stats() PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	return s
}

// captureChoices extracts the cacheable physical decisions of an optimized
// plan.
func captureChoices(p *exec.Plan) []nodeChoice {
	choices := make([]nodeChoice, len(p.Nodes))
	for i, n := range p.Nodes {
		choices[i] = nodeChoice{
			inputs:           append([]exec.NodeID(nil), n.Inputs...),
			algorithm:        n.Algorithm,
			scheduler:        n.JoinOptions.Scheduler,
			morselSize:       n.JoinOptions.MorselSize,
			presortedPrivate: n.JoinOptions.PresortedPrivate,
			presortedPublic:  n.JoinOptions.PresortedPublic,
			aggMode:          n.AggMode,
		}
	}
	return choices
}

// applyChoices overwrites the physical decision fields of a freshly lowered
// plan with the cached ones. The plan's relations, predicates, functions and
// sinks are untouched — they belong to the current query.
func applyChoices(p *exec.Plan, choices []nodeChoice) {
	for i := range p.Nodes {
		n := &p.Nodes[i]
		ch := choices[i]
		n.Inputs = append([]exec.NodeID(nil), ch.inputs...)
		if n.Kind == exec.NodeJoin {
			n.Algorithm = ch.algorithm
			n.JoinOptions.Scheduler = ch.scheduler
			n.JoinOptions.MorselSize = ch.morselSize
			n.JoinOptions.PresortedPrivate = ch.presortedPrivate
			n.JoinOptions.PresortedPublic = ch.presortedPublic
		}
		if n.Kind == exec.NodeGroupAggregate {
			n.AggMode = ch.aggMode
		}
	}
}

// cacheKey normalizes a lowered plan into its cache identity: the operator
// DAG with relation identities, function identities, and every configuration
// facet the planner's decision depends on. Relation content is deliberately
// not part of the key — it is validated separately via fingerprints, so a
// mutated relation invalidates rather than silently forks the entry.
func cacheKey(p *exec.Plan, rewrite bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "rw%t;", rewrite)
	for id, n := range p.Nodes {
		fmt.Fprintf(&b, "%d:%v%v", id, n.Kind, n.Inputs)
		switch n.Kind {
		case exec.NodeScan:
			fmt.Fprintf(&b, "r%p/%d f%x", n.Rel, n.Rel.Len(), fnPtr(n.Pred))
			if n.Range != nil {
				fmt.Fprintf(&b, " rg[%d,%d)", n.Range.Low, n.Range.High)
			}
		case exec.NodeJoin:
			o := n.JoinOptions
			fmt.Fprintf(&b, "a%v w%d k%v b%d h%d s%v c%d pp%t pv%t sch%v m%d d%+v",
				n.Algorithm, o.Workers, o.Kind, o.Band, o.HistogramBits, o.Splitters,
				o.CDFBoundsPerRun, o.PresortedPublic, o.PresortedPrivate,
				o.Scheduler, o.MorselSize, n.DiskOptions)
		case exec.NodeMap:
			fmt.Fprintf(&b, "f%x", fnPtr(n.MapFn))
		case exec.NodeProject:
			fmt.Fprintf(&b, "f%x", fnPtr(n.ProjectFn))
		case exec.NodeGroupAggregate:
			fmt.Fprintf(&b, "g%v m%v", n.Agg, n.AggMode)
		case exec.NodeSink:
			// Only nilness matters: a user sink observes the pair order and
			// pins the build/probe roles, the built-in max-sum sink is
			// symmetric. The sink's identity does not change the plan.
			fmt.Fprintf(&b, "nil%t", n.Sink == nil)
		}
		b.WriteByte(';')
	}
	return b.String()
}

// fnPtr returns the code-pointer identity of a function value (0 for nil).
// Two plans using the same predicate/projection function are the same shape;
// distinct closures of the same function body also share a code pointer,
// which is correct here because the planner's decisions depend only on
// relation statistics, never on what a predicate computes.
func fnPtr(fn any) uintptr {
	v := reflect.ValueOf(fn)
	if !v.IsValid() || v.IsNil() {
		return 0
	}
	return v.Pointer()
}

// fingerprints hashes the content of every scan relation (indexed by node
// ID). The fingerprint is a cheap strided sample — length plus up to 64
// evenly spaced tuples — which catches in-place mutation without rescanning
// multi-million tuple relations on every lookup.
func fingerprints(p *exec.Plan) []uint64 {
	prints := make([]uint64, len(p.Nodes))
	for id, n := range p.Nodes {
		if n.Kind == exec.NodeScan {
			prints[id] = fingerprint(n.Rel)
		}
	}
	return prints
}

// fingerprint hashes one relation's length and a strided tuple sample.
func fingerprint(rel *relation.Relation) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	write := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	n := rel.Len()
	write(uint64(n))
	const samples = 64
	stride := n / samples
	if stride == 0 {
		stride = 1
	}
	for i := 0; i < n; i += stride {
		t := rel.Tuples[i]
		write(t.Key)
		write(t.Payload)
	}
	return h.Sum64()
}

// printsMatch compares two fingerprint vectors.
func printsMatch(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
