// Package service is the multi-tenant serving layer in front of the join
// engine: admission control that carves per-query memory budgets out of the
// engine's scratch pool (queueing or rejecting work that would exceed the
// engine-wide limit instead of OOM-ing), and a normalized plan cache that
// reuses the cost-based planner's physical decisions across queries with the
// same plan shape, statistics and configuration. Fair-share scheduling — the
// third leg of the serving layer — lives in internal/sched (FairShare), since
// it gates the worker goroutines themselves; the public mpsm.Service wires
// all three together.
package service

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/memory"
)

// Admission errors. ErrBudgetTooLarge and ErrQueueFull are permanent for the
// request that received them; ErrQueueTimeout means the queue did not drain
// within the configured deadline.
var (
	// ErrBudgetTooLarge rejects a query whose memory budget exceeds the
	// admission limit outright: it could never be admitted, even alone.
	ErrBudgetTooLarge = errors.New("service: query memory budget exceeds the admission limit")
	// ErrQueueFull rejects a query when the admission queue is at capacity.
	ErrQueueFull = errors.New("service: admission queue is full")
	// ErrQueueTimeout rejects a queued query whose deadline expired before
	// enough reservations were released.
	ErrQueueTimeout = errors.New("service: timed out waiting for admission")
)

// AdmissionStats are cumulative counters of an admission controller.
type AdmissionStats struct {
	// Admitted counts queries granted a reservation (immediately or after
	// queueing).
	Admitted uint64
	// Queued counts queries that had to wait before admission.
	Queued uint64
	// Rejected counts queries refused outright (budget too large, queue
	// full).
	Rejected uint64
	// TimedOut counts queued queries whose deadline expired while waiting.
	TimedOut uint64
	// Canceled counts queued queries whose context was canceled while
	// waiting.
	Canceled uint64
	// Waiting is the current queue depth.
	Waiting int
}

// Admission is the admission controller: it grants per-query memory
// reservations against the pool's reserve limit, strictly FIFO — a query that
// does not fit waits in the queue (bounded by MaxQueue and Timeout) and later
// arrivals queue behind it, so a stream of small queries cannot starve a
// large one.
type Admission struct {
	pool *memory.Pool
	// MaxQueue bounds the number of queries waiting for admission; further
	// arrivals are rejected with ErrQueueFull. Zero or negative means an
	// unbounded queue.
	MaxQueue int
	// Timeout bounds how long one query may wait in the queue; zero means
	// no deadline beyond the caller's context.
	Timeout time.Duration
	// Faults, when non-nil, arms the GrantRace injection point: Done stalls
	// between releasing the finished query's reservation and granting queued
	// waiters, widening the window in which an abandoning waiter races its
	// own grant. Set before the controller serves queries.
	Faults *faultinject.Set

	mu    sync.Mutex
	queue []*admWaiter
	stats AdmissionStats
}

// admWaiter is one query blocked in Admit.
type admWaiter struct {
	label string
	bytes int64
	ready chan *memory.Reservation // 1-buffered: grant never blocks
}

// NewAdmission creates an admission controller issuing reservations from the
// given pool (whose reserve limit is the engine-wide memory limit).
func NewAdmission(pool *memory.Pool) *Admission {
	return &Admission{pool: pool}
}

// Admit blocks until the query identified by label is granted a reservation
// of the given bytes, the context is canceled, or the queue deadline expires.
// The caller must pass the returned reservation to Done when the query
// completes — releasing it directly would leave queued queries waiting.
func (a *Admission) Admit(ctx context.Context, label string, bytes int64) (*memory.Reservation, error) {
	if bytes < 0 {
		bytes = 0
	}
	if bytes > a.pool.ReserveLimit() {
		a.mu.Lock()
		a.stats.Rejected++
		a.mu.Unlock()
		return nil, ErrBudgetTooLarge
	}

	a.mu.Lock()
	// Strict FIFO: only try the fast path when nobody is queued ahead.
	if len(a.queue) == 0 {
		if res, err := a.pool.Reserve(label, bytes); err == nil {
			a.stats.Admitted++
			a.mu.Unlock()
			return res, nil
		}
	}
	if a.MaxQueue > 0 && len(a.queue) >= a.MaxQueue {
		a.stats.Rejected++
		a.mu.Unlock()
		return nil, ErrQueueFull
	}
	w := &admWaiter{label: label, bytes: bytes, ready: make(chan *memory.Reservation, 1)}
	a.queue = append(a.queue, w)
	a.stats.Queued++
	a.mu.Unlock()

	var deadline <-chan time.Time
	if a.Timeout > 0 {
		t := time.NewTimer(a.Timeout)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case res := <-w.ready:
		return res, nil
	case <-ctx.Done():
		a.abandon(w, &a.stats.Canceled)
		return nil, ctx.Err()
	case <-deadline:
		a.abandon(w, &a.stats.TimedOut)
		return nil, ErrQueueTimeout
	}
}

// abandon removes a waiter that stopped waiting (cancellation or timeout). If
// the grant already happened, the reservation is taken back and handed on so
// no admitted bytes leak.
func (a *Admission) abandon(w *admWaiter, counter *uint64) {
	a.mu.Lock()
	for i, x := range a.queue {
		if x == w {
			a.queue = append(a.queue[:i], a.queue[i+1:]...)
			*counter++
			a.mu.Unlock()
			return
		}
	}
	*counter++
	a.mu.Unlock()
	// Lost the race against a concurrent grant: the reservation is (or is
	// about to be) in the ready channel. Reclaim and recycle it.
	res := <-w.ready
	a.Done(res)
}

// Done releases a query's reservation and admits as many queued queries as
// now fit, in FIFO order. Safe with a nil reservation.
func (a *Admission) Done(res *memory.Reservation) {
	res.Release()
	a.Faults.Stall(faultinject.GrantRace)
	a.mu.Lock()
	for len(a.queue) > 0 {
		w := a.queue[0]
		granted, err := a.pool.Reserve(w.label, w.bytes)
		if err != nil {
			break
		}
		a.queue = a.queue[1:]
		a.stats.Admitted++
		w.ready <- granted
	}
	a.mu.Unlock()
}

// Stats returns a snapshot of the admission counters.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := a.stats
	s.Waiting = len(a.queue)
	return s
}
