package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/memory"
)

// newTestAdmission returns a controller over a pool with the given admission
// limit.
func newTestAdmission(limit int64) (*Admission, *memory.Pool) {
	pool := memory.NewPool(1 << 20)
	pool.SetReserveLimit(limit)
	return NewAdmission(pool), pool
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmitFastPath(t *testing.T) {
	a, pool := newTestAdmission(1000)
	res, err := a.Admit(context.Background(), "q1", 600)
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if got := pool.Stats().ReservedBytes; got != 600 {
		t.Fatalf("reserved = %d, want 600", got)
	}
	a.Done(res)
	if got := pool.Stats().ReservedBytes; got != 0 {
		t.Fatalf("reserved after Done = %d, want 0", got)
	}
	s := a.Stats()
	if s.Admitted != 1 || s.Queued != 0 || s.Rejected != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestAdmitQueuesUntilRelease(t *testing.T) {
	a, _ := newTestAdmission(1000)
	first, err := a.Admit(context.Background(), "big", 800)
	if err != nil {
		t.Fatalf("first Admit: %v", err)
	}

	got := make(chan *memory.Reservation, 1)
	go func() {
		res, err := a.Admit(context.Background(), "second", 800)
		if err != nil {
			t.Errorf("second Admit: %v", err)
		}
		got <- res
	}()
	waitUntil(t, func() bool { return a.Stats().Waiting == 1 })
	select {
	case <-got:
		t.Fatal("second query admitted while the first still holds the budget")
	case <-time.After(20 * time.Millisecond):
	}

	a.Done(first)
	res := <-got
	if res == nil {
		t.Fatal("second query got a nil reservation")
	}
	a.Done(res)
	s := a.Stats()
	if s.Admitted != 2 || s.Queued != 1 || s.Waiting != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestAdmitStrictFIFO(t *testing.T) {
	// A large queued query must not be starved by small ones that would fit:
	// while "large" heads the queue, a later "small" stays queued behind it
	// even though its own budget fits the holder's remaining headroom.
	a, _ := newTestAdmission(1000)
	first, _ := a.Admit(context.Background(), "holder", 900)

	admitted := make(chan string, 2)
	var wg sync.WaitGroup
	admit := func(label string, budget int64) {
		defer wg.Done()
		res, err := a.Admit(context.Background(), label, budget)
		if err != nil {
			t.Errorf("%s Admit: %v", label, err)
			return
		}
		admitted <- label
		a.Done(res)
	}
	wg.Add(1)
	go admit("large", 800)
	waitUntil(t, func() bool { return a.Stats().Waiting == 1 })
	wg.Add(1)
	go admit("small", 50)
	waitUntil(t, func() bool { return a.Stats().Waiting == 2 })

	// "small" fits next to the holder (900+50 <= 1000) but must not jump
	// the blocked FIFO head.
	select {
	case got := <-admitted:
		t.Fatalf("%q admitted past the FIFO head", got)
	case <-time.After(20 * time.Millisecond):
	}

	// Releasing the holder unblocks the queue; both queued budgets fit at
	// once (800+50 <= 1000), so only completion is asserted, not wakeup
	// order.
	a.Done(first)
	wg.Wait()
	if s := a.Stats(); s.Admitted != 3 || s.Waiting != 0 {
		t.Fatalf("stats after drain = %+v, want 3 admitted", s)
	}
}

func TestAdmitRejects(t *testing.T) {
	a, _ := newTestAdmission(1000)
	if _, err := a.Admit(context.Background(), "huge", 2000); !errors.Is(err, ErrBudgetTooLarge) {
		t.Fatalf("oversized budget error = %v, want ErrBudgetTooLarge", err)
	}

	a.MaxQueue = 1
	first, _ := a.Admit(context.Background(), "holder", 1000)
	defer a.Done(first)
	go a.Admit(context.Background(), "waiter", 100) //nolint:errcheck
	waitUntil(t, func() bool { return a.Stats().Waiting == 1 })
	if _, err := a.Admit(context.Background(), "overflow", 100); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("full-queue error = %v, want ErrQueueFull", err)
	}
}

func TestAdmitQueueTimeout(t *testing.T) {
	a, _ := newTestAdmission(1000)
	a.Timeout = 20 * time.Millisecond
	first, _ := a.Admit(context.Background(), "holder", 1000)
	defer a.Done(first)

	if _, err := a.Admit(context.Background(), "waiter", 100); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("timed-out Admit = %v, want ErrQueueTimeout", err)
	}
	s := a.Stats()
	if s.TimedOut != 1 || s.Waiting != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestAdmitCancelWhileQueued is the regression test for context cancellation
// in the admission queue: the query leaves the queue immediately, its
// (never-granted) reservation is not leaked, and the error is ctx.Err().
func TestAdmitCancelWhileQueued(t *testing.T) {
	a, pool := newTestAdmission(1000)
	first, _ := a.Admit(context.Background(), "holder", 1000)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := a.Admit(ctx, "canceled", 100)
		errc <- err
	}()
	waitUntil(t, func() bool { return a.Stats().Waiting == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Admit = %v, want context.Canceled", err)
	}
	s := a.Stats()
	if s.Canceled != 1 || s.Waiting != 0 {
		t.Fatalf("stats = %+v", s)
	}

	// The budget must be fully recoverable afterwards.
	a.Done(first)
	if got := pool.Stats().ReservedBytes; got != 0 {
		t.Fatalf("reserved after release = %d, want 0 (canceled waiter leaked)", got)
	}
	res, err := a.Admit(context.Background(), "next", 1000)
	if err != nil {
		t.Fatalf("Admit after cancel: %v", err)
	}
	a.Done(res)
}

func TestAdmitConcurrentHammer(t *testing.T) {
	a, pool := newTestAdmission(4096)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx := context.Background()
				if i%7 == 0 {
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, time.Microsecond)
					defer cancel()
				}
				res, err := a.Admit(ctx, "q", 1024)
				if err != nil {
					continue
				}
				a.Done(res)
			}
		}(g)
	}
	wg.Wait()
	if got := pool.Stats().ReservedBytes; got != 0 {
		t.Fatalf("reserved after hammer = %d, want 0", got)
	}
	if w := a.Stats().Waiting; w != 0 {
		t.Fatalf("waiting after hammer = %d, want 0", w)
	}
}
