// Package storage provides the paged-run substrate of the disk-enabled
// D-MPSM variant (Section 3.1, Figure 4 of the paper): sorted runs are written
// to a (simulated) disk page by page, a global page index ordered by the
// minimal key of each page lets workers and the prefetcher move through the
// key domain synchronously, and a buffer pool with a RAM budget holds only the
// pages that are currently being processed or prefetched.
//
// The paper's evaluation machine spools to a disk array; this repository
// substitutes an in-memory block store with configurable read latency and
// bandwidth so the identical paging, prefetching and release logic can be
// exercised without physical disks (see DESIGN.md, substitutions).
package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/relation"
)

// DefaultPageSize is the default number of tuples per page. 1024 tuples of
// 16 bytes give 16 KiB pages.
const DefaultPageSize = 1024

// Disk is a simulated block store holding the pages of spilled runs. Reads
// can be slowed down by a configurable per-page latency to emulate I/O-bound
// processing; writes are charged the same latency.
type Disk struct {
	mu sync.Mutex
	// pages[runID][pageNo] holds the page contents.
	pages [][][]relation.Tuple
	// readLatency is applied once per page read.
	readLatency time.Duration
	// writeLatency is applied once per page write.
	writeLatency time.Duration

	pageReads  int
	pageWrites int
}

// NewDisk creates a simulated disk with the given per-page latencies.
func NewDisk(readLatency, writeLatency time.Duration) *Disk {
	return &Disk{readLatency: readLatency, writeLatency: writeLatency}
}

// PageReads returns the number of page reads served so far.
func (d *Disk) PageReads() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.pageReads
}

// PageWrites returns the number of page writes accepted so far.
func (d *Disk) PageWrites() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.pageWrites
}

// writeRun stores the pages of a new run and returns its run identifier.
func (d *Disk) writeRun(pages [][]relation.Tuple) int {
	if d.writeLatency > 0 {
		time.Sleep(time.Duration(len(pages)) * d.writeLatency)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pages = append(d.pages, pages)
	d.pageWrites += len(pages)
	return len(d.pages) - 1
}

// readPage returns the contents of one page. The returned slice aliases the
// stored page and must be treated as read-only.
func (d *Disk) readPage(runID, pageNo int) ([]relation.Tuple, error) {
	if d.readLatency > 0 {
		time.Sleep(d.readLatency)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if runID < 0 || runID >= len(d.pages) {
		return nil, fmt.Errorf("storage: unknown run %d", runID)
	}
	if pageNo < 0 || pageNo >= len(d.pages[runID]) {
		return nil, fmt.Errorf("storage: run %d has no page %d", runID, pageNo)
	}
	d.pageReads++
	return d.pages[runID][pageNo], nil
}

// PagedRun describes a sorted run that has been spilled to disk.
type PagedRun struct {
	// RunID identifies the run on its disk.
	RunID int
	// Worker is the worker that produced the run.
	Worker int
	// Pages is the number of pages of the run.
	Pages int
	// Len is the total number of tuples.
	Len int
	// MinKeys[p] is the smallest key on page p (the v_ij of the paper's
	// page index).
	MinKeys []uint64
}

// WriteRun splits a sorted tuple slice into pages of pageSize tuples, writes
// them to the disk, and returns the run descriptor. It returns an error if the
// tuples are not sorted by key, because the page index and the join logic
// depend on intra-run order.
func WriteRun(d *Disk, worker int, tuples []relation.Tuple, pageSize int) (*PagedRun, error) {
	if pageSize <= 0 {
		return nil, fmt.Errorf("storage: invalid page size %d", pageSize)
	}
	if !relation.IsSortedByKey(tuples) {
		return nil, errors.New("storage: WriteRun requires key-sorted tuples")
	}
	var pages [][]relation.Tuple
	var minKeys []uint64
	for start := 0; start < len(tuples); start += pageSize {
		end := start + pageSize
		if end > len(tuples) {
			end = len(tuples)
		}
		page := make([]relation.Tuple, end-start)
		copy(page, tuples[start:end])
		pages = append(pages, page)
		minKeys = append(minKeys, page[0].Key)
	}
	runID := d.writeRun(pages)
	return &PagedRun{
		RunID:   runID,
		Worker:  worker,
		Pages:   len(pages),
		Len:     len(tuples),
		MinKeys: minKeys,
	}, nil
}

// ReadRunTuples reads a complete paged run back from disk, page by page, and
// returns its tuples in order. It bypasses any buffer pool; callers use it for
// small runs (such as a worker's private run) whose memory is accounted for
// separately from the public-input page budget.
func ReadRunTuples(d *Disk, run *PagedRun) ([]relation.Tuple, error) {
	tuples := make([]relation.Tuple, 0, run.Len)
	for p := 0; p < run.Pages; p++ {
		page, err := d.readPage(run.RunID, p)
		if err != nil {
			return nil, err
		}
		tuples = append(tuples, page...)
	}
	return tuples, nil
}

// PageRef identifies one page of one run.
type PageRef struct {
	RunID  int
	PageNo int
}

// IndexEntry is one entry of the global page index: the minimal key of a page
// together with the page's location. Entries are sorted by MinKey, so
// processing them in order moves all workers synchronously through the key
// domain.
type IndexEntry struct {
	MinKey uint64
	Page   PageRef
	// RunOrdinal is the position of the run in the index's run list; the
	// join uses it to address per-run cursors without a map lookup.
	RunOrdinal int
}

// PageIndex is the global, read-only page index over a set of runs
// (Section 3.1). It requires no synchronization because it is built once
// during run generation and only read afterwards.
type PageIndex struct {
	Runs    []*PagedRun
	Entries []IndexEntry
}

// BuildPageIndex constructs the index over the given runs, ordered by the
// minimal key of each page (ties broken by run and page number for
// determinism).
func BuildPageIndex(runs []*PagedRun) *PageIndex {
	idx := &PageIndex{Runs: runs}
	for ord, run := range runs {
		for p := 0; p < run.Pages; p++ {
			idx.Entries = append(idx.Entries, IndexEntry{
				MinKey:     run.MinKeys[p],
				Page:       PageRef{RunID: run.RunID, PageNo: p},
				RunOrdinal: ord,
			})
		}
	}
	sort.Slice(idx.Entries, func(i, j int) bool {
		a, b := idx.Entries[i], idx.Entries[j]
		if a.MinKey != b.MinKey {
			return a.MinKey < b.MinKey
		}
		if a.Page.RunID != b.Page.RunID {
			return a.Page.RunID < b.Page.RunID
		}
		return a.Page.PageNo < b.Page.PageNo
	})
	return idx
}

// IsSorted reports whether the index entries are in non-decreasing MinKey
// order (an invariant checked by tests).
func (idx *PageIndex) IsSorted() bool {
	for i := 1; i < len(idx.Entries); i++ {
		if idx.Entries[i].MinKey < idx.Entries[i-1].MinKey {
			return false
		}
	}
	return true
}

// BufferPoolStats reports buffer pool behaviour for the experiments.
type BufferPoolStats struct {
	// Loads is the number of page loads from disk (misses).
	Loads int
	// Hits is the number of requests served from memory.
	Hits int
	// Evictions is the number of pages dropped to respect the budget.
	Evictions int
	// MaxResident is the high-water mark of simultaneously resident pages.
	MaxResident int
}

// BufferPool caches disk pages under a page budget. Workers pin pages while
// reading them; the pool evicts unpinned pages in least-recently-released
// order when the budget is exceeded. All methods are safe for concurrent use.
type BufferPool struct {
	disk   *Disk
	budget int

	mu       sync.Mutex
	resident map[PageRef]*poolPage
	// releaseOrder holds unpinned pages in the order they became evictable.
	releaseOrder []PageRef
	stats        BufferPoolStats
}

type poolPage struct {
	data []relation.Tuple
	pins int
}

// NewBufferPool creates a pool over the given disk that aims to keep at most
// budget pages resident. A budget of 0 or less means "unlimited".
func NewBufferPool(disk *Disk, budget int) *BufferPool {
	return &BufferPool{
		disk:     disk,
		budget:   budget,
		resident: make(map[PageRef]*poolPage),
	}
}

// Budget returns the configured page budget (0 = unlimited).
func (bp *BufferPool) Budget() int { return bp.budget }

// Stats returns a snapshot of the pool statistics.
func (bp *BufferPool) Stats() BufferPoolStats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.stats
}

// Pin returns the contents of the requested page, loading it from disk if
// necessary, and marks it pinned. Callers must Unpin the page when done. The
// returned slice must be treated as read-only.
func (bp *BufferPool) Pin(ref PageRef) ([]relation.Tuple, error) {
	bp.mu.Lock()
	if page, ok := bp.resident[ref]; ok {
		page.pins++
		bp.stats.Hits++
		bp.removeFromReleaseOrder(ref)
		data := page.data
		bp.mu.Unlock()
		return data, nil
	}
	bp.mu.Unlock()

	// Load outside the lock: disk latency must not serialize all workers.
	data, err := bp.disk.readPage(ref.RunID, ref.PageNo)
	if err != nil {
		return nil, err
	}

	bp.mu.Lock()
	defer bp.mu.Unlock()
	if page, ok := bp.resident[ref]; ok {
		// Another worker loaded it concurrently.
		page.pins++
		bp.stats.Hits++
		bp.removeFromReleaseOrder(ref)
		return page.data, nil
	}
	bp.stats.Loads++
	bp.resident[ref] = &poolPage{data: data, pins: 1}
	bp.enforceBudgetLocked()
	if len(bp.resident) > bp.stats.MaxResident {
		bp.stats.MaxResident = len(bp.resident)
	}
	return data, nil
}

// Unpin releases one pin on the page. Fully unpinned pages become eligible for
// eviction. Unpinning a page that is not resident is a programming error and
// panics.
func (bp *BufferPool) Unpin(ref PageRef) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	page, ok := bp.resident[ref]
	if !ok || page.pins <= 0 {
		panic(fmt.Sprintf("storage: Unpin of page %+v that is not pinned", ref))
	}
	page.pins--
	if page.pins == 0 {
		bp.releaseOrder = append(bp.releaseOrder, ref)
		bp.enforceBudgetLocked()
	}
}

// Prefetch loads a page into the pool without pinning it, so that a later Pin
// becomes a hit. It is a no-op if the page is already resident or if the pool
// has no free budget.
func (bp *BufferPool) Prefetch(ref PageRef) error {
	bp.mu.Lock()
	if _, ok := bp.resident[ref]; ok {
		bp.mu.Unlock()
		return nil
	}
	if bp.budget > 0 && len(bp.resident) >= bp.budget {
		bp.mu.Unlock()
		return nil
	}
	bp.mu.Unlock()

	data, err := bp.disk.readPage(ref.RunID, ref.PageNo)
	if err != nil {
		return err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if _, ok := bp.resident[ref]; ok {
		return nil
	}
	bp.stats.Loads++
	bp.resident[ref] = &poolPage{data: data, pins: 0}
	bp.releaseOrder = append(bp.releaseOrder, ref)
	bp.enforceBudgetLocked()
	if len(bp.resident) > bp.stats.MaxResident {
		bp.stats.MaxResident = len(bp.resident)
	}
	return nil
}

// Resident returns the number of currently resident pages.
func (bp *BufferPool) Resident() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return len(bp.resident)
}

// enforceBudgetLocked evicts unpinned pages (oldest released first) until the
// pool is within budget. Pinned pages are never evicted, so the pool may
// temporarily exceed the budget if all pages are pinned.
func (bp *BufferPool) enforceBudgetLocked() {
	if bp.budget <= 0 {
		return
	}
	for len(bp.resident) > bp.budget && len(bp.releaseOrder) > 0 {
		ref := bp.releaseOrder[0]
		bp.releaseOrder = bp.releaseOrder[1:]
		page, ok := bp.resident[ref]
		if !ok || page.pins > 0 {
			continue
		}
		delete(bp.resident, ref)
		bp.stats.Evictions++
	}
}

// removeFromReleaseOrder drops a re-pinned page from the eviction queue.
func (bp *BufferPool) removeFromReleaseOrder(ref PageRef) {
	for i, r := range bp.releaseOrder {
		if r == ref {
			bp.releaseOrder = append(bp.releaseOrder[:i], bp.releaseOrder[i+1:]...)
			return
		}
	}
}

// Prefetcher walks the page index ahead of the workers and loads upcoming
// pages into the buffer pool asynchronously, emulating the asynchronous disk
// prefetching of Figure 4. Distance controls how many index entries ahead of
// the slowest worker it tries to keep resident.
type Prefetcher struct {
	pool     *BufferPool
	index    *PageIndex
	distance int

	mu       sync.Mutex
	progress int // minimum index position across workers

	stop chan struct{}
	done chan struct{}
}

// NewPrefetcher creates a prefetcher over the index with the given lookahead
// distance (in pages).
func NewPrefetcher(pool *BufferPool, index *PageIndex, distance int) *Prefetcher {
	if distance <= 0 {
		distance = 4
	}
	return &Prefetcher{
		pool:     pool,
		index:    index,
		distance: distance,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// ReportProgress tells the prefetcher the smallest index position any worker
// is currently processing; pages before it will not be prefetched again.
func (p *Prefetcher) ReportProgress(pos int) {
	p.mu.Lock()
	if pos > p.progress {
		p.progress = pos
	}
	p.mu.Unlock()
}

// Start launches the background prefetching goroutine.
func (p *Prefetcher) Start() {
	go func() {
		defer close(p.done)
		for {
			select {
			case <-p.stop:
				return
			default:
			}
			p.mu.Lock()
			from := p.progress
			p.mu.Unlock()
			to := from + p.distance
			if to > len(p.index.Entries) {
				to = len(p.index.Entries)
			}
			for i := from; i < to; i++ {
				select {
				case <-p.stop:
					return
				default:
				}
				// Errors are ignored: prefetching is best-effort and the
				// worker's own Pin will surface real failures.
				_ = p.pool.Prefetch(p.index.Entries[i].Page)
			}
			if from >= len(p.index.Entries) {
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
}

// Stop terminates the prefetcher and waits for it to finish.
func (p *Prefetcher) Stop() {
	close(p.stop)
	<-p.done
}
