package storage

import (
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/relation"
)

func sortedTuples(n int, step uint64) []relation.Tuple {
	tuples := make([]relation.Tuple, n)
	for i := range tuples {
		tuples[i] = relation.Tuple{Key: uint64(i) * step, Payload: uint64(i)}
	}
	return tuples
}

func TestWriteRunAndReadBack(t *testing.T) {
	disk := NewDisk(0, 0)
	tuples := sortedTuples(2500, 3)
	run, err := WriteRun(disk, 1, tuples, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if run.Pages != 3 || run.Len != 2500 || run.Worker != 1 {
		t.Fatalf("run = %+v", run)
	}
	if len(run.MinKeys) != 3 || run.MinKeys[0] != 0 || run.MinKeys[1] != 3000 || run.MinKeys[2] != 6000 {
		t.Fatalf("MinKeys = %v", run.MinKeys)
	}
	back, err := ReadRunTuples(disk, run)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(tuples) {
		t.Fatalf("read back %d tuples, want %d", len(back), len(tuples))
	}
	for i := range back {
		if back[i] != tuples[i] {
			t.Fatalf("tuple %d differs: %+v vs %+v", i, back[i], tuples[i])
		}
	}
	if disk.PageWrites() != 3 {
		t.Fatalf("PageWrites = %d, want 3", disk.PageWrites())
	}
}

func TestWriteRunRejectsUnsortedAndBadPageSize(t *testing.T) {
	disk := NewDisk(0, 0)
	unsorted := []relation.Tuple{{Key: 5}, {Key: 1}}
	if _, err := WriteRun(disk, 0, unsorted, 10); err == nil {
		t.Fatal("unsorted run accepted")
	}
	if _, err := WriteRun(disk, 0, sortedTuples(10, 1), 0); err == nil {
		t.Fatal("zero page size accepted")
	}
}

func TestWriteRunEmpty(t *testing.T) {
	disk := NewDisk(0, 0)
	run, err := WriteRun(disk, 0, nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if run.Pages != 0 || run.Len != 0 {
		t.Fatalf("empty run = %+v", run)
	}
	back, err := ReadRunTuples(disk, run)
	if err != nil || len(back) != 0 {
		t.Fatalf("ReadRunTuples on empty run = %v, %v", back, err)
	}
}

func TestDiskReadErrors(t *testing.T) {
	disk := NewDisk(0, 0)
	run, err := WriteRun(disk, 0, sortedTuples(10, 1), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := disk.readPage(run.RunID, 99); err == nil {
		t.Fatal("out-of-range page read should fail")
	}
	if _, err := disk.readPage(42, 0); err == nil {
		t.Fatal("unknown run read should fail")
	}
}

func TestBuildPageIndexSortedByMinKey(t *testing.T) {
	disk := NewDisk(0, 0)
	// Runs with interleaved key ranges.
	runA, _ := WriteRun(disk, 0, sortedTuples(1000, 2), 250) // keys 0..1998 even
	runB, _ := WriteRun(disk, 1, sortedTuples(1000, 3), 250) // keys 0..2997 multiples of 3
	idx := BuildPageIndex([]*PagedRun{runA, runB})
	if len(idx.Entries) != runA.Pages+runB.Pages {
		t.Fatalf("index has %d entries, want %d", len(idx.Entries), runA.Pages+runB.Pages)
	}
	if !idx.IsSorted() {
		t.Fatal("page index not sorted by min key")
	}
	// Every page of every run appears exactly once.
	seen := make(map[PageRef]bool)
	for _, e := range idx.Entries {
		if seen[e.Page] {
			t.Fatalf("page %+v appears twice", e.Page)
		}
		seen[e.Page] = true
		if e.RunOrdinal < 0 || e.RunOrdinal >= 2 {
			t.Fatalf("bad run ordinal %d", e.RunOrdinal)
		}
	}
}

func TestBufferPoolPinUnpinAndStats(t *testing.T) {
	disk := NewDisk(0, 0)
	run, _ := WriteRun(disk, 0, sortedTuples(1000, 1), 100) // 10 pages
	pool := NewBufferPool(disk, 3)
	if pool.Budget() != 3 {
		t.Fatalf("Budget = %d", pool.Budget())
	}

	// Pin and unpin all pages in order; the pool must never keep more than
	// the budget resident once pages are unpinned.
	for p := 0; p < run.Pages; p++ {
		ref := PageRef{RunID: run.RunID, PageNo: p}
		data, err := pool.Pin(ref)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != 100 {
			t.Fatalf("page %d has %d tuples", p, len(data))
		}
		pool.Unpin(ref)
		if pool.Resident() > 3 {
			t.Fatalf("resident pages %d exceed budget 3", pool.Resident())
		}
	}
	stats := pool.Stats()
	if stats.Loads != 10 {
		t.Fatalf("Loads = %d, want 10", stats.Loads)
	}
	if stats.MaxResident > 3 {
		t.Fatalf("MaxResident = %d, want <= 3", stats.MaxResident)
	}
	if stats.Evictions == 0 {
		t.Fatal("expected evictions under a tight budget")
	}

	// Re-pinning an evicted page is a miss; re-pinning a resident one a hit.
	ref := PageRef{RunID: run.RunID, PageNo: run.Pages - 1}
	if _, err := pool.Pin(ref); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Pin(ref); err != nil {
		t.Fatal(err)
	}
	if pool.Stats().Hits == 0 {
		t.Fatal("expected at least one hit")
	}
	pool.Unpin(ref)
	pool.Unpin(ref)
}

func TestBufferPoolUnpinPanicsWhenNotPinned(t *testing.T) {
	disk := NewDisk(0, 0)
	run, _ := WriteRun(disk, 0, sortedTuples(10, 1), 5)
	pool := NewBufferPool(disk, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Unpin of a non-resident page should panic")
		}
	}()
	pool.Unpin(PageRef{RunID: run.RunID, PageNo: 0})
}

func TestBufferPoolPinnedPagesSurviveBudget(t *testing.T) {
	disk := NewDisk(0, 0)
	run, _ := WriteRun(disk, 0, sortedTuples(1000, 1), 100)
	pool := NewBufferPool(disk, 2)
	// Pin 5 pages simultaneously: the pool must keep them all despite the
	// budget (pinned pages are never evicted).
	refs := make([]PageRef, 5)
	for p := 0; p < 5; p++ {
		refs[p] = PageRef{RunID: run.RunID, PageNo: p}
		if _, err := pool.Pin(refs[p]); err != nil {
			t.Fatal(err)
		}
	}
	if pool.Resident() != 5 {
		t.Fatalf("resident = %d, want 5 while pinned", pool.Resident())
	}
	for _, ref := range refs {
		pool.Unpin(ref)
	}
	if pool.Resident() > 2 {
		t.Fatalf("resident = %d after unpinning, want <= budget 2", pool.Resident())
	}
}

func TestBufferPoolPrefetch(t *testing.T) {
	disk := NewDisk(0, 0)
	run, _ := WriteRun(disk, 0, sortedTuples(400, 1), 100)
	pool := NewBufferPool(disk, 4)
	ref := PageRef{RunID: run.RunID, PageNo: 2}
	if err := pool.Prefetch(ref); err != nil {
		t.Fatal(err)
	}
	if pool.Resident() != 1 {
		t.Fatalf("resident = %d after prefetch", pool.Resident())
	}
	// The subsequent Pin must be a hit.
	if _, err := pool.Pin(ref); err != nil {
		t.Fatal(err)
	}
	if pool.Stats().Hits != 1 {
		t.Fatalf("Hits = %d, want 1", pool.Stats().Hits)
	}
	pool.Unpin(ref)

	// Prefetch is a no-op when the budget is full of unpinned pages... it
	// still must not grow the pool past the budget.
	for p := 0; p < 4; p++ {
		if err := pool.Prefetch(PageRef{RunID: run.RunID, PageNo: p}); err != nil {
			t.Fatal(err)
		}
	}
	if pool.Resident() > 4 {
		t.Fatalf("resident = %d exceeds budget", pool.Resident())
	}
}

func TestBufferPoolConcurrentAccess(t *testing.T) {
	disk := NewDisk(0, 0)
	run, _ := WriteRun(disk, 0, sortedTuples(10000, 1), 100) // 100 pages
	pool := NewBufferPool(disk, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for p := 0; p < run.Pages; p++ {
				ref := PageRef{RunID: run.RunID, PageNo: p}
				data, err := pool.Pin(ref)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if data[0].Key != uint64(p*100) {
					t.Errorf("worker %d: wrong page contents", w)
				}
				pool.Unpin(ref)
			}
		}(w)
	}
	wg.Wait()
}

func TestPrefetcherWarmsPool(t *testing.T) {
	disk := NewDisk(50*time.Microsecond, 0)
	runA, _ := WriteRun(disk, 0, sortedTuples(2000, 2), 200)
	runB, _ := WriteRun(disk, 1, sortedTuples(2000, 3), 200)
	idx := BuildPageIndex([]*PagedRun{runA, runB})
	pool := NewBufferPool(disk, 6)
	pf := NewPrefetcher(pool, idx, 4)
	pf.Start()

	// Walk the index like a worker would, reporting progress; thanks to
	// prefetching at least some pins should be hits.
	for pos, e := range idx.Entries {
		if _, err := pool.Pin(e.Page); err != nil {
			t.Fatal(err)
		}
		pool.Unpin(e.Page)
		pf.ReportProgress(pos + 1)
		time.Sleep(200 * time.Microsecond)
	}
	pf.Stop()
	if pool.Stats().Hits == 0 {
		t.Fatal("prefetcher produced no buffer pool hits")
	}
}

func TestPrefetcherStopIsIdempotentlySafe(t *testing.T) {
	disk := NewDisk(0, 0)
	run, _ := WriteRun(disk, 0, sortedTuples(100, 1), 50)
	idx := BuildPageIndex([]*PagedRun{run})
	pool := NewBufferPool(disk, 2)
	pf := NewPrefetcher(pool, idx, 2)
	pf.Start()
	pf.ReportProgress(len(idx.Entries))
	pf.Stop() // must not hang even after the prefetcher finished naturally
}

func TestPageIndexGlobalOrderMatchesKeyOrder(t *testing.T) {
	// Concatenating page min-keys in index order must itself be sorted,
	// which is what lets the workers move through the key domain
	// synchronously.
	disk := NewDisk(0, 0)
	var runs []*PagedRun
	for w := 0; w < 4; w++ {
		tuples := sortedTuples(1000, uint64(w+2))
		run, err := WriteRun(disk, w, tuples, 128)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, run)
	}
	idx := BuildPageIndex(runs)
	keys := make([]uint64, len(idx.Entries))
	for i, e := range idx.Entries {
		keys[i] = e.MinKey
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("index min-keys not globally sorted")
	}
}
