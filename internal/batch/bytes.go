package batch

// Bytes is a byte-sliced variable-length column: all values live
// back-to-back in one arena with an offsets vector marking the slice
// boundaries, the standard columnar representation for strings and other
// variable-width data. Value i occupies Data[Offsets[i]:Offsets[i+1]], so
// Offsets always holds Len()+1 entries and random access is two loads with
// no per-value allocation.
//
// The normalized-key tie-break path stores each tuple's full normalized
// key here, addressed by the row index the tuple carries as its payload.
type Bytes struct {
	Offsets []uint32
	Data    []byte
}

// NewBytes returns a column with capacity hints for n values totalling
// dataCap bytes.
func NewBytes(n, dataCap int) *Bytes {
	return &Bytes{
		Offsets: append(make([]uint32, 0, n+1), 0),
		Data:    make([]byte, 0, dataCap),
	}
}

// Len returns the number of values.
func (b *Bytes) Len() int {
	if len(b.Offsets) == 0 {
		return 0
	}
	return len(b.Offsets) - 1
}

// Append adds one value and returns its index, growing the arena; it
// panics if the arena would exceed the 4 GiB the uint32 offsets address.
func (b *Bytes) Append(v []byte) int {
	if len(b.Offsets) == 0 {
		b.Offsets = append(b.Offsets, 0)
	}
	end := uint64(len(b.Data)) + uint64(len(v))
	if end > 1<<32-1 {
		panic("batch: Bytes column exceeds 4 GiB arena limit")
	}
	b.Data = append(b.Data, v...)
	b.Offsets = append(b.Offsets, uint32(end))
	return len(b.Offsets) - 2
}

// At returns value i as a sub-slice of the arena; callers must not modify
// or retain it across Appends.
func (b *Bytes) At(i int) []byte {
	return b.Data[b.Offsets[i]:b.Offsets[i+1]]
}
