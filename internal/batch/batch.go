// Package batch defines the columnar batch representation of the engine's
// vectorized execution path: tuples decomposed into separate key and payload
// column slices (structure-of-arrays), processed a fixed-size batch at a
// time.
//
// The layout is the cache-hierarchy argument of the MPSM paper taken one step
// further. The paper's hot loops — run sorting, merge-join scanning,
// histogram building — touch only the 8-byte join key of every 16-byte tuple,
// so an array-of-structs walk wastes half of every cache line and half of the
// effective memory bandwidth. Splitting the columns lets the sort move 8-byte
// keys (plus a 4-byte permutation index) instead of 16-byte tuples, lets the
// merge kernel scan a contiguous key column with software prefetch, and lets
// selections run branch-free over raw uint64 lanes, emitting selection
// vectors instead of calling a predicate per tuple.
//
// Column buffers are leased from the engine's scratch pool (internal/memory)
// like every other hot-path buffer, so the columnar path stays allocation-free
// in steady state. Match emission is batched: kernels collect (private,
// public) index pairs into a Pairs buffer and gather keys and payloads into a
// Columns triple only when the batch fills, which is when the sink boundary
// is crossed once per batch instead of once per match.
package batch

import (
	"repro/internal/memory"
	"repro/internal/relation"
)

// DefaultSize is the default number of tuples per batch: 1024 tuples keep a
// batch's three uint64 columns (24 KiB) plus its index pairs (8 KiB) inside a
// typical 32–48 KiB L1 data cache while amortizing the per-batch sink call.
const DefaultSize = 1024

// Size normalizes a configured batch size: 0 selects DefaultSize, negative
// values disable the columnar path entirely (callers treat <= 0 after
// normalization as "row-at-a-time"), and positive values are used as given.
func Size(configured int) int {
	if configured == 0 {
		return DefaultSize
	}
	return configured
}

// Run is a sorted worker-local run in columnar form: the key column in
// ascending order and the payload column permuted alongside it, so
// Keys[i] and Payloads[i] together form the i-th tuple of the run. It is the
// structure-of-arrays sibling of relation.Run.
type Run struct {
	// Worker is the worker that produced the run; Node is the NUMA node the
	// run's column buffers live on.
	Worker, Node int
	// Keys is the sorted key column; Payloads is the payload column in the
	// same order. Both have identical length.
	Keys, Payloads []uint64
}

// Len returns the number of tuples in the run.
func (r *Run) Len() int { return len(r.Keys) }

// NewRun leases key and payload columns of length n from the lease (plain
// allocation when the lease is nil). The contents are unspecified.
func NewRun(worker, node, n int, lease *memory.Lease) *Run {
	return &Run{
		Worker:   worker,
		Node:     node,
		Keys:     lease.Uint64s(n),
		Payloads: lease.Uint64s(n),
	}
}

// Tuples interleaves the run back into an array-of-structs slice, appending
// to dst. It is a test and fallback helper, not a hot-path operation.
func (r *Run) Tuples(dst []relation.Tuple) []relation.Tuple {
	for i := range r.Keys {
		dst = append(dst, relation.Tuple{Key: r.Keys[i], Payload: r.Payloads[i]})
	}
	return dst
}

// Columns is one batch of matched join output in columnar form: the join key
// and the two payload columns of up to Size matches. All three slices share
// one length.
type Columns struct {
	Keys      []uint64
	RPayloads []uint64
	SPayloads []uint64
}

// Pairs is a fixed-capacity buffer of match index pairs: R[i] indexes the
// private run and S[i] the public run of the i-th match found by a merge
// kernel. Kernels fill Pairs while scanning key columns only and defer every
// payload access to the gather that flushes the batch.
type Pairs struct {
	R, S []int32
	N    int
}

// Scratch bundles the per-worker columnar scratch of one merge kernel: the
// index-pair buffer and the gather columns it flushes into. All buffers come
// from the join's lease and are handed back by Close for intra-join reuse.
type Scratch struct {
	lease *memory.Lease
	size  int
	Pairs Pairs
	Out   Columns
}

// NewScratch leases kernel scratch for batches of size tuples (size <= 0
// selects DefaultSize).
func NewScratch(size int, lease *memory.Lease) *Scratch {
	if size <= 0 {
		size = DefaultSize
	}
	return &Scratch{
		lease: lease,
		size:  size,
		Pairs: Pairs{R: lease.Int32s(size), S: lease.Int32s(size)},
		Out: Columns{
			Keys:      lease.Uint64s(size),
			RPayloads: lease.Uint64s(size),
			SPayloads: lease.Uint64s(size),
		},
	}
}

// Cap returns the batch capacity in tuples.
func (s *Scratch) Cap() int { return s.size }

// Close hands the scratch buffers back to the lease for reuse by the next
// kernel of the same join.
func (s *Scratch) Close() {
	if s == nil {
		return
	}
	s.lease.PutInt32s(s.Pairs.R)
	s.lease.PutInt32s(s.Pairs.S)
	s.lease.PutUint64s(s.Out.Keys)
	s.lease.PutUint64s(s.Out.RPayloads)
	s.lease.PutUint64s(s.Out.SPayloads)
	*s = Scratch{}
}

// Deinterleave splits an array-of-structs tuple slice into key and payload
// columns. keys and pays must have the source's length.
func Deinterleave(src []relation.Tuple, keys, pays []uint64) {
	_ = keys[:len(src)]
	_ = pays[:len(src)]
	for i, t := range src {
		keys[i] = t.Key
		pays[i] = t.Payload
	}
}

// Interleave is the inverse of Deinterleave: it merges key and payload
// columns into an array-of-structs slice of the columns' length.
func Interleave(keys, pays []uint64, dst []relation.Tuple) {
	_ = dst[:len(keys)]
	for i := range keys {
		dst[i] = relation.Tuple{Key: keys[i], Payload: pays[i]}
	}
}
