package batch

import "math/bits"

// Branch-free range selection over a key column. The membership test
// k ∈ [lo, hi) is evaluated as the single unsigned comparison
// k-lo < hi-lo, whose result is read off the borrow bit of a 64-bit
// subtraction — no compare-and-branch per element, so the loop runs at a
// fixed, selectivity-independent rate instead of paying a misprediction
// per selectivity-boundary crossing. The output is a selection vector of
// qualifying indices: the index is written unconditionally and the cursor
// advances by the borrow, the standard branch-free selection idiom.

// CountRange returns how many keys lie in [lo, hi). hi <= lo selects nothing.
func CountRange(keys []uint64, lo, hi uint64) int {
	if hi <= lo {
		return 0
	}
	width := hi - lo
	n := 0
	for _, k := range keys {
		_, borrow := bits.Sub64(k-lo, width, 0)
		n += int(borrow)
	}
	return n
}

// SelectRange writes the indices of the keys in [lo, hi) into sel, in input
// order, and returns their count. sel must have at least len(keys) elements;
// every slot up to that capacity may be scribbled on (the unconditional-write
// idiom), only the first returned count are meaningful. hi <= lo selects
// nothing.
func SelectRange(keys []uint64, lo, hi uint64, sel []int32) int {
	if hi <= lo {
		return 0
	}
	_ = sel[:len(keys)]
	width := hi - lo
	n := 0
	for i, k := range keys {
		sel[n] = int32(i)
		_, borrow := bits.Sub64(k-lo, width, 0)
		n += int(borrow)
	}
	return n
}
