package batch

import (
	"math/rand"
	"testing"

	"repro/internal/memory"
	"repro/internal/relation"
)

func TestSize(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, DefaultSize},
		{-1, -1},
		{1, 1},
		{4096, 4096},
	}
	for _, tc := range cases {
		if got := Size(tc.in); got != tc.want {
			t.Fatalf("Size(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestInterleaveRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 1000} {
		src := make([]relation.Tuple, n)
		for i := range src {
			src[i] = relation.Tuple{Key: rng.Uint64(), Payload: rng.Uint64()}
		}
		keys := make([]uint64, n)
		pays := make([]uint64, n)
		Deinterleave(src, keys, pays)
		back := make([]relation.Tuple, n)
		Interleave(keys, pays, back)
		for i := range src {
			if back[i] != src[i] {
				t.Fatalf("n=%d: roundtrip diverged at %d: %+v != %+v", n, i, back[i], src[i])
			}
		}
	}
}

func TestRunTuples(t *testing.T) {
	r := &Run{Keys: []uint64{1, 2, 3}, Payloads: []uint64{10, 20, 30}}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	got := r.Tuples([]relation.Tuple{{Key: 0, Payload: 0}})
	want := []relation.Tuple{{Key: 0, Payload: 0}, {Key: 1, Payload: 10}, {Key: 2, Payload: 20}, {Key: 3, Payload: 30}}
	if len(got) != len(want) {
		t.Fatalf("Tuples appended %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("tuple %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestScratchLifecycle(t *testing.T) {
	// Nil lease: plain allocations, Close is a no-op beyond zeroing.
	sc := NewScratch(0, nil)
	if sc.Cap() != DefaultSize {
		t.Fatalf("Cap = %d, want DefaultSize", sc.Cap())
	}
	if len(sc.Pairs.R) != DefaultSize || len(sc.Out.Keys) != DefaultSize {
		t.Fatalf("scratch buffers sized %d/%d, want %d", len(sc.Pairs.R), len(sc.Out.Keys), DefaultSize)
	}
	sc.Close()
	sc.Close() // double Close and nil receiver are safe
	(*Scratch)(nil).Close()

	// Pooled lease: buffers flow back and are reused by the next scratch.
	lease := memory.NewPool(0).Acquire()
	sc = NewScratch(512, lease)
	first := &sc.Out.Keys[0]
	sc.Close()
	sc2 := NewScratch(512, lease)
	defer sc2.Close()
	reused := false
	for _, col := range [][]uint64{sc2.Out.Keys, sc2.Out.RPayloads, sc2.Out.SPayloads} {
		if &col[0] == first {
			reused = true
		}
	}
	if !reused {
		t.Fatal("closed scratch column was not reused by the next lease")
	}
}

// TestSelectRangeDifferential checks the branch-free kernels against a
// scalar reference across selectivities and range edge cases.
func TestSelectRangeDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 4096
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64() % 1000
	}
	cases := []struct{ lo, hi uint64 }{
		{0, 0},       // empty range
		{500, 500},   // empty range, nonzero bounds
		{600, 400},   // inverted: selects nothing
		{0, 1 << 63}, // everything
		{0, 1},       // single key value
		{250, 750},   // ~50% selectivity
		{990, 1010},  // upper edge, partially out of domain
	}
	sel := make([]int32, n)
	for _, tc := range cases {
		var wantIdx []int32
		for i, k := range keys {
			if tc.lo <= k && k < tc.hi && tc.hi > tc.lo {
				wantIdx = append(wantIdx, int32(i))
			}
		}
		if got := CountRange(keys, tc.lo, tc.hi); got != len(wantIdx) {
			t.Fatalf("CountRange[%d,%d) = %d, want %d", tc.lo, tc.hi, got, len(wantIdx))
		}
		got := SelectRange(keys, tc.lo, tc.hi, sel)
		if got != len(wantIdx) {
			t.Fatalf("SelectRange[%d,%d) = %d, want %d", tc.lo, tc.hi, got, len(wantIdx))
		}
		for i := range wantIdx {
			if sel[i] != wantIdx[i] {
				t.Fatalf("SelectRange[%d,%d): sel[%d] = %d, want %d", tc.lo, tc.hi, i, sel[i], wantIdx[i])
			}
		}
	}

	// Boundary wrap: ranges touching the uint64 extremes must not wrap.
	extremes := []uint64{0, 1, 1<<64 - 2, 1<<64 - 1}
	if got := CountRange(extremes, 1<<64-2, 1<<64-1); got != 1 {
		t.Fatalf("CountRange at uint64 max = %d, want 1", got)
	}
	if got := CountRange(extremes, 0, 1<<64-1); got != 3 {
		t.Fatalf("CountRange over near-full domain = %d, want 3", got)
	}
}
