package search

// Columnar variants of the interpolation search for the batch execution
// path: identical algorithm, operating on a raw sorted key column instead of
// an array-of-structs run. Keeping them separate (rather than converting at
// call sites) preserves the contiguous 8-byte stride that makes the columnar
// merge kernels cache-efficient in the first place.

// LowerBoundKeys returns the index of the first key in the sorted column that
// is >= probe (len(keys) if every key is smaller). keys must be in ascending
// order.
func LowerBoundKeys(keys []uint64, probe uint64) int {
	lo, hi := 0, len(keys) // invariant: the answer lies in [lo, hi]

	steps := 0
	for hi-lo > linearCutoff {
		loKey := keys[lo]
		hiKey := keys[hi-1]
		if probe <= loKey {
			return lo
		}
		if probe > hiKey {
			return hi
		}
		steps++
		if steps > maxInterpolationSteps || hiKey == loKey || hiKey-loKey >= maxExactSpan {
			return binaryLowerBoundKeys(keys, lo, hi, probe)
		}
		// Rule of proportion, as in LowerBound.
		span := float64(hi - 1 - lo)
		frac := float64(probe-loKey) / float64(hiKey-loKey)
		mid := lo + int(span*frac)
		if mid <= lo {
			mid = lo + 1
		}
		if mid > hi-1 {
			mid = hi - 1
		}
		if keys[mid] < probe {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for i := lo; i < hi; i++ {
		if keys[i] >= probe {
			return i
		}
	}
	return hi
}

// binaryLowerBoundKeys is the classic binary-search lower bound over [lo, hi).
func binaryLowerBoundKeys(keys []uint64, lo, hi int, probe uint64) int {
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < probe {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// UpperBoundKeys returns the index of the first key strictly greater than
// probe.
func UpperBoundKeys(keys []uint64, probe uint64) int {
	if probe == ^uint64(0) {
		return len(keys)
	}
	return LowerBoundKeys(keys, probe+1)
}
