package search

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

func sortedRun(keys []uint64) []relation.Tuple {
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	run := make([]relation.Tuple, len(keys))
	for i, k := range keys {
		run[i] = relation.Tuple{Key: k, Payload: uint64(i)}
	}
	return run
}

// referenceLowerBound is the trusted oracle implementation.
func referenceLowerBound(run []relation.Tuple, probe uint64) int {
	return sort.Search(len(run), func(i int) bool { return run[i].Key >= probe })
}

func TestLowerBoundSmallCases(t *testing.T) {
	run := sortedRun([]uint64{10, 20, 20, 30, 40})
	cases := map[uint64]int{
		0:   0,
		10:  0,
		11:  1,
		20:  1,
		21:  3,
		30:  3,
		40:  4,
		41:  5,
		100: 5,
	}
	for probe, want := range cases {
		if got := LowerBound(run, probe); got != want {
			t.Errorf("LowerBound(%d) = %d, want %d", probe, got, want)
		}
	}
}

func TestLowerBoundEmptyAndSingle(t *testing.T) {
	if got := LowerBound(nil, 5); got != 0 {
		t.Fatalf("LowerBound(nil, 5) = %d, want 0", got)
	}
	run := sortedRun([]uint64{7})
	if got := LowerBound(run, 7); got != 0 {
		t.Fatalf("LowerBound([7], 7) = %d, want 0", got)
	}
	if got := LowerBound(run, 8); got != 1 {
		t.Fatalf("LowerBound([7], 8) = %d, want 1", got)
	}
}

func TestLowerBoundAllEqualKeys(t *testing.T) {
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = 42
	}
	run := sortedRun(keys)
	if got := LowerBound(run, 42); got != 0 {
		t.Fatalf("LowerBound(=42) = %d, want 0", got)
	}
	if got := LowerBound(run, 43); got != 1000 {
		t.Fatalf("LowerBound(43) = %d, want 1000", got)
	}
	if got := LowerBound(run, 1); got != 0 {
		t.Fatalf("LowerBound(1) = %d, want 0", got)
	}
}

func TestLowerBoundUniformMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 50000)
	for i := range keys {
		keys[i] = rng.Uint64() % (1 << 32)
	}
	run := sortedRun(keys)
	for trial := 0; trial < 5000; trial++ {
		probe := rng.Uint64() % (1 << 33)
		want := referenceLowerBound(run, probe)
		if got := LowerBound(run, probe); got != want {
			t.Fatalf("LowerBound(%d) = %d, want %d", probe, got, want)
		}
	}
}

func TestLowerBoundSkewedMatchesReference(t *testing.T) {
	// Heavily skewed keys defeat pure interpolation; the binary fallback
	// must keep the result exact.
	rng := rand.New(rand.NewSource(2))
	keys := make([]uint64, 20000)
	for i := range keys {
		if i%100 == 0 {
			keys[i] = 1 << 60 // a few huge outliers
		} else {
			keys[i] = rng.Uint64() % 1000
		}
	}
	run := sortedRun(keys)
	probes := []uint64{0, 1, 500, 999, 1000, 1 << 59, 1 << 60, 1<<60 + 1}
	for trial := 0; trial < 2000; trial++ {
		probes = append(probes, rng.Uint64()%(1<<61))
	}
	for _, probe := range probes {
		want := referenceLowerBound(run, probe)
		if got := LowerBound(run, probe); got != want {
			t.Fatalf("LowerBound(%d) = %d, want %d", probe, got, want)
		}
	}
}

func TestLowerBoundProperty(t *testing.T) {
	f := func(rawKeys []uint64, probe uint64) bool {
		run := sortedRun(rawKeys)
		got := LowerBound(run, probe)
		want := referenceLowerBound(run, probe)
		if got != want {
			return false
		}
		// Semantic checks independent of the oracle.
		if got > 0 && run[got-1].Key >= probe {
			return false
		}
		if got < len(run) && run[got].Key < probe {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUpperBound(t *testing.T) {
	run := sortedRun([]uint64{10, 20, 20, 30})
	cases := map[uint64]int{
		5:  0,
		10: 1,
		20: 3,
		25: 3,
		30: 4,
		31: 4,
	}
	for probe, want := range cases {
		if got := UpperBound(run, probe); got != want {
			t.Errorf("UpperBound(%d) = %d, want %d", probe, got, want)
		}
	}
	// Max probe must not overflow.
	if got := UpperBound(run, ^uint64(0)); got != len(run) {
		t.Fatalf("UpperBound(max) = %d, want %d", got, len(run))
	}
}

func TestBinaryLowerBoundDirect(t *testing.T) {
	run := sortedRun([]uint64{1, 3, 5, 7, 9, 11})
	for probe := uint64(0); probe <= 12; probe++ {
		want := referenceLowerBound(run, probe)
		if got := binaryLowerBound(run, 0, len(run), probe); got != want {
			t.Errorf("binaryLowerBound(%d) = %d, want %d", probe, got, want)
		}
	}
}

func TestLowerBoundGiantKeySpans(t *testing.T) {
	// Regression for the 2^53 float64 precision guard: key spans wider than
	// float64's integer-exact range used to degrade interpolation — the
	// uint64→float64 conversions round, the computed mid can land outside
	// [lo+1, hi-1) (only the clamps kept it legal), and convergence could
	// stall to one element per iteration. Keys hug both ends of the uint64
	// domain so every interval the search visits has a giant span.
	rng := rand.New(rand.NewSource(99))
	keys := make([]uint64, 0, 4096)
	const maxU64 = ^uint64(0)
	for i := 0; i < 2000; i++ {
		keys = append(keys, rng.Uint64()%(1<<20))              // near 0
		keys = append(keys, maxU64-rng.Uint64()%(1<<20))       // near 2^64
		keys = append(keys, maxU64/2+rng.Uint64()%(1<<20)-512) // straddling 2^63
	}
	keys = append(keys, 0, 1, maxU64, maxU64-1, maxU64-2, uint64(1)<<53, uint64(1)<<53+1)
	run := sortedRun(keys)

	probes := []uint64{0, 1, 2, maxU64, maxU64 - 1, maxU64 / 2, uint64(1) << 53, uint64(1)<<53 - 1, uint64(1)<<53 + 1}
	for i := 0; i < 2000; i++ {
		probes = append(probes, rng.Uint64())
		probes = append(probes, maxU64-rng.Uint64()%(1<<21))
		probes = append(probes, rng.Uint64()%(1<<21))
	}
	for _, probe := range probes {
		if got, want := LowerBound(run, probe), referenceLowerBound(run, probe); got != want {
			t.Fatalf("LowerBound(probe=%d) = %d, want %d", probe, got, want)
		}
	}
	for _, probe := range probes {
		if probe == maxU64 {
			continue
		}
		if got, want := UpperBound(run, probe), referenceLowerBound(run, probe+1); got != want {
			t.Fatalf("UpperBound(probe=%d) = %d, want %d", probe, got, want)
		}
	}
}

func TestLowerBoundSpanGuardConverges(t *testing.T) {
	// Two far-apart keys with everything in between empty: the first
	// interval spans nearly the whole uint64 domain, which must route to
	// binary search rather than interpolate on rounded floats.
	keys := make([]uint64, 64)
	for i := range keys {
		if i < 32 {
			keys[i] = uint64(i)
		} else {
			keys[i] = ^uint64(0) - uint64(63-i)
		}
	}
	run := sortedRun(keys)
	for probe := uint64(0); probe < 64; probe++ {
		if got, want := LowerBound(run, probe), referenceLowerBound(run, probe); got != want {
			t.Fatalf("LowerBound(%d) = %d, want %d", probe, got, want)
		}
	}
	if got, want := LowerBound(run, uint64(1)<<40), 32; got != want {
		t.Fatalf("LowerBound(2^40) = %d, want %d", got, want)
	}
}
