// Package search provides the interpolation search the MPSM join phase uses
// to find the first public-input tuple of a sorted run that can join with a
// worker's private run (Section 3.2.2, Figure 7 of the paper).
//
// Sequentially scanning for the merge-join start point would incur many
// comparisons; interpolation search narrows the search space by repeatedly
// applying the rule of proportion between the minimum and maximum keys of the
// current search interval. A binary-search fallback bounds the worst case on
// adversarially distributed keys.
package search

import "repro/internal/relation"

// maxInterpolationSteps bounds the number of interpolation iterations before
// the search falls back to plain binary search. Interpolation converges in
// O(log log n) steps on uniform data; heavily skewed data could otherwise
// degenerate toward O(n).
const maxInterpolationSteps = 64

// linearCutoff is the interval size below which a linear scan finishes the
// search; tiny intervals are faster to scan than to keep interpolating.
const linearCutoff = 8

// maxExactSpan is the largest key span float64 interpolation can handle
// without precision loss: above 2^53 the uint64→float64 conversions round,
// the rule of proportion degrades to noise (in the worst case computing a mid
// outside [lo+1, hi-1) that only the clamps rescue), and each iteration may
// shrink the interval by as little as one element. Spans that wide fall back
// to binary search immediately.
const maxExactSpan = uint64(1) << 53

// LowerBound returns the index of the first tuple in the sorted run whose key
// is >= probe. If every key is smaller than probe it returns len(run). The run
// must be sorted by ascending key.
func LowerBound(run []relation.Tuple, probe uint64) int {
	lo, hi := 0, len(run) // invariant: the answer lies in [lo, hi]

	steps := 0
	for hi-lo > linearCutoff {
		loKey := run[lo].Key
		hiKey := run[hi-1].Key
		if probe <= loKey {
			return lo
		}
		if probe > hiKey {
			return hi
		}
		steps++
		if steps > maxInterpolationSteps || hiKey == loKey || hiKey-loKey >= maxExactSpan {
			return binaryLowerBound(run, lo, hi, probe)
		}
		// Rule of proportion: the most probable position of probe within
		// [lo, hi) assuming a locally uniform key distribution.
		span := float64(hi - 1 - lo)
		frac := float64(probe-loKey) / float64(hiKey-loKey)
		mid := lo + int(span*frac)
		if mid <= lo {
			mid = lo + 1
		}
		if mid > hi-1 {
			mid = hi - 1
		}
		if run[mid].Key < probe {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for i := lo; i < hi; i++ {
		if run[i].Key >= probe {
			return i
		}
	}
	return hi
}

// binaryLowerBound is the classic binary-search lower bound over [lo, hi).
func binaryLowerBound(run []relation.Tuple, lo, hi int, probe uint64) int {
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if run[mid].Key < probe {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// UpperBound returns the index of the first tuple in the sorted run whose key
// is strictly greater than probe. It is used to find the exclusive end of the
// relevant S range of a private partition.
func UpperBound(run []relation.Tuple, probe uint64) int {
	if probe == ^uint64(0) {
		return len(run)
	}
	return LowerBound(run, probe+1)
}
