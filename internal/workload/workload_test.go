package workload

import (
	"testing"

	"repro/internal/relation"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must produce the same sequence")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should produce different sequences")
	}
}

func TestRNGUint64nRange(t *testing.T) {
	rng := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if v := rng.Uint64n(10); v >= 10 {
			t.Fatalf("Uint64n(10) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) should panic")
		}
	}()
	rng.Uint64n(0)
}

func TestRNGFloat64Range(t *testing.T) {
	rng := NewRNG(9)
	for i := 0; i < 1000; i++ {
		f := rng.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %f out of [0,1)", f)
		}
	}
}

func TestUniformRelation(t *testing.T) {
	r := UniformRelation("R", 10000, 1000, 1)
	if r.Len() != 10000 {
		t.Fatalf("Len = %d", r.Len())
	}
	minKey, maxKey, err := r.MinMaxKey()
	if err != nil {
		t.Fatal(err)
	}
	if maxKey >= 1000 {
		t.Fatalf("max key %d outside domain", maxKey)
	}
	// A uniform draw of 10000 keys from [0,1000) should cover a wide range.
	if minKey > 10 || maxKey < 990 {
		t.Fatalf("keys do not look uniform: min %d max %d", minKey, maxKey)
	}
}

func TestUniformRelationDeterministic(t *testing.T) {
	a := UniformRelation("R", 100, DefaultKeyDomain, 5)
	b := UniformRelation("R", 100, DefaultKeyDomain, 5)
	for i := range a.Tuples {
		if a.Tuples[i] != b.Tuples[i] {
			t.Fatal("same seed must produce identical relations")
		}
	}
}

func TestSkewedRelationDistribution(t *testing.T) {
	domain := uint64(1000)
	n := 50000
	cut := domain / 5

	low := SkewedRelation("low", n, domain, SkewLow80, 3)
	lowCount := 0
	for _, tup := range low.Tuples {
		if tup.Key < cut {
			lowCount++
		}
	}
	frac := float64(lowCount) / float64(n)
	if frac < 0.75 || frac > 0.85 {
		t.Fatalf("SkewLow80: %.2f of keys in low 20%%, want ~0.80", frac)
	}

	high := SkewedRelation("high", n, domain, SkewHigh80, 4)
	highCount := 0
	for _, tup := range high.Tuples {
		if tup.Key >= domain-cut {
			highCount++
		}
	}
	frac = float64(highCount) / float64(n)
	if frac < 0.75 || frac > 0.85 {
		t.Fatalf("SkewHigh80: %.2f of keys in high 20%%, want ~0.80", frac)
	}
}

func TestSkewStringer(t *testing.T) {
	if SkewNone.String() != "uniform" || SkewLow80.String() != "low-80:20" || SkewHigh80.String() != "high-80:20" {
		t.Fatal("unexpected Skew string forms")
	}
	if Skew(99).String() != "Skew(99)" {
		t.Fatal("unknown skew should render numerically")
	}
	if LocationNone.String() != "none" || LocationClustered.String() != "clustered" {
		t.Fatal("unexpected LocationSkew string forms")
	}
	if LocationSkew(42).String() != "LocationSkew(42)" {
		t.Fatal("unknown location skew should render numerically")
	}
}

func TestForeignKeyRelation(t *testing.T) {
	parent := UniformRelation("R", 1000, DefaultKeyDomain, 11)
	parentKeys := make(map[uint64]bool, parent.Len())
	for _, tup := range parent.Tuples {
		parentKeys[tup.Key] = true
	}
	child := ForeignKeyRelation("S", parent, 4000, 12)
	if child.Len() != 4000 {
		t.Fatalf("child len = %d", child.Len())
	}
	for _, tup := range child.Tuples {
		if !parentKeys[tup.Key] {
			t.Fatalf("child key %d not present in parent", tup.Key)
		}
	}
}

func TestForeignKeyRelationEmptyParent(t *testing.T) {
	child := ForeignKeyRelation("S", relation.New("R", nil), 10, 1)
	if child.Len() != 0 {
		t.Fatalf("child of empty parent should be empty, got %d", child.Len())
	}
}

func TestApplyLocationSkewClustered(t *testing.T) {
	domain := uint64(1 << 20)
	rel := UniformRelation("S", 20000, domain, 13)
	original := append([]relation.Tuple(nil), rel.Tuples...)
	workers := 8
	ApplyLocationSkew(rel, workers, LocationClustered, domain)

	if !relation.SameMultiset(original, rel.Tuples) {
		t.Fatal("location skew must not lose tuples")
	}
	// Chunk i must only contain keys from the i-th key range.
	per := domain / uint64(workers)
	chunks := rel.Split(workers)
	// Chunk boundaries do not exactly align with bucket boundaries when
	// bucket sizes differ, so check a weaker, global property: keys must
	// be grouped so that the sequence of bucket indices is non-decreasing.
	prevBucket := -1
	for _, tup := range rel.Tuples {
		b := int(tup.Key / per)
		if b >= workers {
			b = workers - 1
		}
		if b < prevBucket {
			t.Fatalf("bucket order violated: %d after %d", b, prevBucket)
		}
		prevBucket = b
	}
	_ = chunks
}

func TestApplyLocationSkewNoOpCases(t *testing.T) {
	rel := UniformRelation("S", 100, 1000, 17)
	original := append([]relation.Tuple(nil), rel.Tuples...)
	ApplyLocationSkew(rel, 1, LocationClustered, 1000)
	ApplyLocationSkew(rel, 8, LocationNone, 1000)
	for i := range original {
		if rel.Tuples[i] != original[i] {
			t.Fatal("no-op location skew must not reorder tuples")
		}
	}
	empty := relation.New("E", nil)
	ApplyLocationSkew(empty, 8, LocationClustered, 1000) // must not panic
}

func TestSpecValidate(t *testing.T) {
	valid := Spec{RSize: 10, Multiplicity: 4}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if err := (Spec{RSize: -1, Multiplicity: 1}).Validate(); err == nil {
		t.Fatal("negative RSize accepted")
	}
	if err := (Spec{RSize: 10, Multiplicity: 0}).Validate(); err == nil {
		t.Fatal("zero multiplicity accepted")
	}
	if err := (Spec{RSize: 0, Multiplicity: 4, ForeignKey: true}).Validate(); err == nil {
		t.Fatal("foreign-key spec with empty R accepted")
	}
}

func TestGenerate(t *testing.T) {
	r, s, err := Generate(Spec{
		Name:         "uniform-m4",
		RSize:        1000,
		Multiplicity: 4,
		ForeignKey:   true,
		Seed:         21,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1000 || s.Len() != 4000 {
		t.Fatalf("sizes = %d, %d", r.Len(), s.Len())
	}
}

func TestGenerateInvalidSpec(t *testing.T) {
	if _, _, err := Generate(Spec{RSize: 10, Multiplicity: -1}); err == nil {
		t.Fatal("invalid spec should error")
	}
}

func TestGenerateNegativelyCorrelated(t *testing.T) {
	r, s, err := Generate(Spec{
		RSize:        20000,
		Multiplicity: 2,
		RSkew:        SkewHigh80,
		SSkew:        SkewLow80,
		KeyDomain:    1 << 20,
		Seed:         23,
	})
	if err != nil {
		t.Fatal(err)
	}
	domain := uint64(1 << 20)
	cut := domain / 5
	rHigh, sLow := 0, 0
	for _, tup := range r.Tuples {
		if tup.Key >= domain-cut {
			rHigh++
		}
	}
	for _, tup := range s.Tuples {
		if tup.Key < cut {
			sLow++
		}
	}
	if float64(rHigh)/float64(r.Len()) < 0.7 {
		t.Fatal("R is not skewed toward the high end")
	}
	if float64(sLow)/float64(s.Len()) < 0.7 {
		t.Fatal("S is not skewed toward the low end")
	}
}
