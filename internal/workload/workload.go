// Package workload generates the synthetic datasets of the MPSM paper's
// experimental evaluation (Section 5): relations of 64-bit join keys drawn
// from [0, 2^32) with 64-bit payloads, multiplicities |S| = m·|R| for
// m ∈ {1, 4, 8, 16}, uniform and 80:20-skewed key distributions, negatively
// correlated skew between R and S, and location skew within S.
//
// All generators are deterministic given a seed so that experiments are
// reproducible and results can be validated against reference joins.
package workload

import (
	"fmt"

	"repro/internal/relation"
)

// DefaultKeyDomain is the key domain of the paper's datasets: [0, 2^32).
const DefaultKeyDomain = uint64(1) << 32

// RNG is a small, fast, deterministic pseudo-random number generator
// (splitmix64). It is deliberately independent of math/rand so that generated
// datasets are stable across Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with the given value.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Next returns the next pseudo-random 64-bit value.
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64n returns a pseudo-random value in [0, n). It panics if n is zero.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("workload: Uint64n(0)")
	}
	return r.Next() % n
}

// Float64 returns a pseudo-random value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / float64(1<<53)
}

// Skew describes the key-value distribution of a generated relation.
type Skew int

const (
	// SkewNone draws keys uniformly from the whole domain.
	SkewNone Skew = iota
	// SkewLow80 draws 80% of the keys from the lowest 20% of the domain
	// (the S-side distribution of the Section 5.6 experiment).
	SkewLow80
	// SkewHigh80 draws 80% of the keys from the highest 20% of the domain
	// (the R-side distribution of the Section 5.6 experiment).
	SkewHigh80
)

// String implements fmt.Stringer.
func (s Skew) String() string {
	switch s {
	case SkewNone:
		return "uniform"
	case SkewLow80:
		return "low-80:20"
	case SkewHigh80:
		return "high-80:20"
	default:
		return fmt.Sprintf("Skew(%d)", int(s))
	}
}

// drawKey draws one key from the domain according to the skew.
func drawKey(rng *RNG, domain uint64, skew Skew) uint64 {
	switch skew {
	case SkewLow80:
		cut := domain / 5
		if rng.Float64() < 0.8 {
			return rng.Uint64n(cut)
		}
		return cut + rng.Uint64n(domain-cut)
	case SkewHigh80:
		cut := domain / 5
		if rng.Float64() < 0.8 {
			return domain - cut + rng.Uint64n(cut)
		}
		return rng.Uint64n(domain - cut)
	default:
		return rng.Uint64n(domain)
	}
}

// UniformRelation generates n tuples with keys drawn uniformly from
// [0, domain) and pseudo-random payloads.
func UniformRelation(name string, n int, domain uint64, seed uint64) *relation.Relation {
	return SkewedRelation(name, n, domain, SkewNone, seed)
}

// SkewedRelation generates n tuples with keys drawn from [0, domain) according
// to the given skew and pseudo-random payloads.
func SkewedRelation(name string, n int, domain uint64, skew Skew, seed uint64) *relation.Relation {
	rng := NewRNG(seed)
	tuples := make([]relation.Tuple, n)
	for i := range tuples {
		tuples[i] = relation.Tuple{
			Key:     drawKey(rng, domain, skew),
			Payload: rng.Next(),
		}
	}
	return relation.New(name, tuples)
}

// ForeignKeyRelation generates a relation of n tuples whose keys are sampled
// (with repetition) from the keys of the given parent relation, mimicking a
// fact table referencing a dimension table. Every generated tuple therefore
// has at least one join partner in the parent, which keeps join cardinalities
// meaningful at laptop scale where uniform 2^32 domains would rarely collide.
func ForeignKeyRelation(name string, parent *relation.Relation, n int, seed uint64) *relation.Relation {
	if parent.Len() == 0 {
		return relation.New(name, nil)
	}
	rng := NewRNG(seed)
	tuples := make([]relation.Tuple, n)
	parentTuples := parent.Tuples
	for i := range tuples {
		src := parentTuples[rng.Uint64n(uint64(len(parentTuples)))]
		tuples[i] = relation.Tuple{Key: src.Key, Payload: rng.Next()}
	}
	return relation.New(name, tuples)
}

// LocationSkew describes how tuples are physically arranged across worker
// chunks, independent of the key-value distribution (Section 5.5).
type LocationSkew int

const (
	// LocationNone shuffles tuples randomly across the relation.
	LocationNone LocationSkew = iota
	// LocationClustered arranges tuples so that small keys appear (mostly)
	// before large keys: chunk i holds the i-th key range of the relation,
	// but tuples within a chunk stay unsorted. In the extreme this means
	// all join partners of a private partition Ri are found in a single
	// public run.
	LocationClustered
)

// String implements fmt.Stringer.
func (l LocationSkew) String() string {
	switch l {
	case LocationNone:
		return "none"
	case LocationClustered:
		return "clustered"
	default:
		return fmt.Sprintf("LocationSkew(%d)", int(l))
	}
}

// ApplyLocationSkew rearranges the relation in place according to the
// requested location skew for the given number of worker chunks. With
// LocationClustered the tuples are bucketed by key range into chunk-sized
// groups in ascending order (small to large join key order), but the order
// within each group remains the original insertion order, so per-chunk sorting
// is still necessary — exactly the paper's "no total order" arrangement.
func ApplyLocationSkew(rel *relation.Relation, workers int, skew LocationSkew, domain uint64) {
	if skew != LocationClustered || workers <= 1 || rel.Len() == 0 {
		return
	}
	buckets := make([][]relation.Tuple, workers)
	per := domain / uint64(workers)
	if per == 0 {
		per = 1
	}
	for _, t := range rel.Tuples {
		b := int(t.Key / per)
		if b >= workers {
			b = workers - 1
		}
		buckets[b] = append(buckets[b], t)
	}
	out := rel.Tuples[:0]
	for _, b := range buckets {
		out = append(out, b...)
	}
	rel.Tuples = out
}

// Spec describes a full benchmark dataset: the private input R, the public
// input S = multiplicity × |R|, their distributions, and the physical
// arrangement of S.
type Spec struct {
	// Name labels the dataset in reports.
	Name string
	// RSize is the number of tuples in R.
	RSize int
	// Multiplicity scales |S| = Multiplicity × RSize.
	Multiplicity int
	// KeyDomain is the exclusive upper bound of the key domain; 0 selects
	// DefaultKeyDomain.
	KeyDomain uint64
	// RSkew and SSkew select the key-value distributions. Setting
	// RSkew = SkewHigh80 and SSkew = SkewLow80 reproduces the negatively
	// correlated workload of Section 5.6.
	RSkew, SSkew Skew
	// ForeignKey, if true, draws S keys from R's keys instead of from the
	// domain, guaranteeing join partners (recommended at small scale).
	ForeignKey bool
	// SLocationSkew controls the physical arrangement of S (Section 5.5).
	SLocationSkew LocationSkew
	// LocationSkewWorkers is the number of chunks used when arranging S
	// with location skew; it should equal the worker count of the join.
	LocationSkewWorkers int
	// Seed makes the dataset deterministic.
	Seed uint64
}

// Validate checks the spec for obviously invalid parameters.
func (s Spec) Validate() error {
	if s.RSize < 0 {
		return fmt.Errorf("workload: negative RSize %d", s.RSize)
	}
	if s.Multiplicity <= 0 {
		return fmt.Errorf("workload: multiplicity must be positive, got %d", s.Multiplicity)
	}
	if s.ForeignKey && s.RSize == 0 && s.Multiplicity > 0 {
		return fmt.Errorf("workload: foreign-key S requires a non-empty R")
	}
	return nil
}

// Generate materializes the dataset described by the spec.
func Generate(spec Spec) (r, s *relation.Relation, err error) {
	if err := spec.Validate(); err != nil {
		return nil, nil, err
	}
	domain := spec.KeyDomain
	if domain == 0 {
		domain = DefaultKeyDomain
	}
	r = SkewedRelation("R", spec.RSize, domain, spec.RSkew, spec.Seed+1)
	sSize := spec.RSize * spec.Multiplicity
	if spec.ForeignKey {
		s = ForeignKeyRelation("S", r, sSize, spec.Seed+2)
	} else {
		s = SkewedRelation("S", sSize, domain, spec.SSkew, spec.Seed+2)
	}
	ApplyLocationSkew(s, spec.LocationSkewWorkers, spec.SLocationSkew, domain)
	return r, s, nil
}
