package sink

import (
	"fmt"
	"sort"

	"repro/internal/memory"
	"repro/internal/mergejoin"
	"repro/internal/relation"
)

// Agg selects the aggregate function of a group-by-key aggregation. The
// aggregation input of a joined pair is the paper's payload sum
// R.payload + S.payload (the default join projection); Count ignores the
// value and counts pairs per key.
type Agg int

const (
	// AggSum sums the values per key.
	AggSum Agg = iota
	// AggMin keeps the smallest value per key.
	AggMin
	// AggMax keeps the largest value per key.
	AggMax
	// AggCount counts the tuples per key.
	AggCount
)

// String implements fmt.Stringer.
func (a Agg) String() string {
	switch a {
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggCount:
		return "count"
	default:
		return fmt.Sprintf("Agg(%d)", int(a))
	}
}

// Valid reports whether a is a known aggregate function.
func (a Agg) Valid() bool { return a >= AggSum && a <= AggCount }

// initial is the accumulator value of a group's first tuple.
func (a Agg) initial(val uint64) uint64 {
	if a == AggCount {
		return 1
	}
	return val
}

// fold merges one more tuple value into a group accumulator.
func (a Agg) fold(acc, val uint64) uint64 {
	switch a {
	case AggMin:
		if val < acc {
			return val
		}
		return acc
	case AggMax:
		if val > acc {
			return val
		}
		return acc
	case AggCount:
		return acc + 1
	default:
		return acc + val
	}
}

// merge combines two partial accumulators of the same group (for example,
// from two workers or two sorted segments).
func (a Agg) merge(x, y uint64) uint64 {
	switch a {
	case AggMin:
		if y < x {
			return y
		}
		return x
	case AggMax:
		if y > x {
			return y
		}
		return x
	default: // sum and count partials both add
		return x + y
	}
}

// GroupSink is a sink that reduces the joined pair stream to one tuple per
// distinct key: {Key: group key, Payload: aggregate value}. Both built-in
// implementations (MergeGroups, HashGroups) group by R.Key and aggregate the
// payload sum R.Payload + S.Payload, the join's default projection.
type GroupSink interface {
	Sink
	// Groups returns the aggregated tuples in ascending key order. Call
	// after Close; the slice is valid until the next Open (it may be backed
	// by the output lease passed at construction).
	Groups() []relation.Tuple
}

// MergeGroups is the streaming merge-based group-by aggregate that exploits
// the key-ordered output of the MPSM join phase: each worker's pair stream is
// a sequence of key-sorted segments (one per public run it merges against),
// so the writer folds consecutive equal keys into one accumulator and seals a
// finished segment of aggregated (key, value) entries whenever the key order
// restarts. Close then k-way merges all sealed segments — combining partial
// accumulators of the same key — into the final sorted group list.
//
// No hash table is ever built: memory use is one entry per (segment, distinct
// key) pair, drawn from the join's scratch lease when pooling is enabled
// (MergeGroups implements Scratcher). The aggregation is correct for any
// emission order — out-of-order input merely produces more, shorter segments
// — but it is only economical above producers with key-ordered output
// (B-MPSM, P-MPSM, D-MPSM); above hash joins use HashGroups instead.
type MergeGroups struct {
	agg     Agg
	out     *memory.Lease // final merged buffer; nil allocates fresh
	lease   *memory.Lease // per-worker entry buffers (join lease via Scratcher)
	writers []*mergeGroupWriter
	groups  []relation.Tuple
}

// NewMergeGroups returns a streaming merge-based group-by sink. The final
// merged group buffer is drawn from out when non-nil — pass a lease that
// outlives the join (for example, the plan execution's lease) — and freshly
// allocated otherwise.
func NewMergeGroups(agg Agg, out *memory.Lease) *MergeGroups {
	return &MergeGroups{agg: agg, out: out}
}

// SetScratch implements Scratcher.
func (m *MergeGroups) SetScratch(lease *memory.Lease) { m.lease = lease }

// Open implements Sink.
func (m *MergeGroups) Open(workers int) {
	m.writers = make([]*mergeGroupWriter, workers)
	for w := range m.writers {
		m.writers[w] = &mergeGroupWriter{agg: m.agg, lease: m.lease}
	}
	m.groups = nil
}

// Writer implements Sink.
func (m *MergeGroups) Writer(w int) mergejoin.Consumer { return m.writers[w] }

// Close implements Sink: it merges all workers' sorted segments into the
// final group list.
func (m *MergeGroups) Close() error {
	var segs []groupSegment
	total := 0
	for _, w := range m.writers {
		w.finish()
		prev := 0
		for _, end := range w.segs {
			if end > prev {
				segs = append(segs, groupSegment{buf: w.entries, pos: prev, end: end})
				total += end - prev
			}
			prev = end
		}
	}
	out := m.out.Tuples(total) // nil lease allocates fresh
	m.groups = mergeSegments(m.agg, segs, out[:0])
	return nil
}

// Groups implements GroupSink.
func (m *MergeGroups) Groups() []relation.Tuple { return m.groups }

// mergeGroupWriter is one worker's consumer: a running accumulator over the
// current key plus the sealed, sorted segments of finished groups.
type mergeGroupWriter struct {
	agg     Agg
	lease   *memory.Lease
	entries []relation.Tuple // aggregated (key, value) entries, leased
	n       int
	segs    []int // end offsets of sealed sorted segments within entries

	curKey uint64
	curVal uint64
	active bool
}

// initialGroupEntries sizes the first leased entry buffer (2048 entries =
// 32 KiB, one cache-friendly leaf).
const initialGroupEntries = 2048

// Consume implements mergejoin.Consumer.
func (w *mergeGroupWriter) Consume(r, s relation.Tuple) {
	key, val := r.Key, r.Payload+s.Payload
	if w.active {
		if key == w.curKey {
			w.curVal = w.agg.fold(w.curVal, val)
			return
		}
		w.emit()
		if key < w.curKey {
			// The key order restarted: the producer moved on to the next
			// public run (or stole a new morsel). Seal the finished segment.
			w.segs = append(w.segs, w.n)
		}
	}
	w.curKey, w.curVal, w.active = key, w.agg.initial(val), true
}

// emit appends the finished accumulator as an entry, growing the leased
// buffer by doubling.
func (w *mergeGroupWriter) emit() {
	if w.n == len(w.entries) {
		grown := w.lease.Tuples(max(initialGroupEntries, 2*len(w.entries)))
		copy(grown, w.entries[:w.n])
		w.lease.PutTuples(w.entries)
		w.entries = grown
	}
	w.entries[w.n] = relation.Tuple{Key: w.curKey, Payload: w.curVal}
	w.n++
}

// finish flushes the running accumulator and seals the last segment.
func (w *mergeGroupWriter) finish() {
	if w.active {
		w.emit()
		w.active = false
	}
	if w.n > 0 && (len(w.segs) == 0 || w.segs[len(w.segs)-1] < w.n) {
		w.segs = append(w.segs, w.n)
	}
}

// groupSegment is a cursor over one sorted run of aggregated entries.
type groupSegment struct {
	buf      []relation.Tuple
	pos, end int
}

func (g groupSegment) key() uint64 { return g.buf[g.pos].Key }

// mergeSegments k-way merges sorted segments into dst, combining the partial
// accumulators of equal keys. Within one segment keys are strictly
// increasing, so equal keys only meet across segments. The merge uses a
// hand-rolled min-heap over the segment cursors — no hash table, no
// per-group allocation.
func mergeSegments(agg Agg, segs []groupSegment, dst []relation.Tuple) []relation.Tuple {
	h := make([]groupSegment, 0, len(segs))
	for _, s := range segs {
		if s.pos < s.end {
			h = append(h, s)
			siftUp(h, len(h)-1)
		}
	}
	for len(h) > 0 {
		key := h[0].key()
		acc := h[0].buf[h[0].pos].Payload
		advanceTop(&h)
		for len(h) > 0 && h[0].key() == key {
			acc = agg.merge(acc, h[0].buf[h[0].pos].Payload)
			advanceTop(&h)
		}
		dst = append(dst, relation.Tuple{Key: key, Payload: acc})
	}
	return dst
}

// advanceTop moves the heap root's cursor forward, dropping it when drained.
func advanceTop(h *[]groupSegment) {
	s := *h
	s[0].pos++
	if s[0].pos == s[0].end {
		s[0] = s[len(s)-1]
		s = s[:len(s)-1]
		*h = s
	}
	if len(s) > 0 {
		siftDown(s, 0)
	}
}

func siftUp(h []groupSegment, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h[i].key() >= h[parent].key() {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func siftDown(h []groupSegment, i int) {
	for {
		left, right := 2*i+1, 2*i+2
		least := i
		if left < len(h) && h[left].key() < h[least].key() {
			least = left
		}
		if right < len(h) && h[right].key() < h[least].key() {
			least = right
		}
		if least == i {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// HashGroups is the hash-based group-by aggregate for producers without
// key-ordered output (the hash-join baselines, or arbitrary tuple streams):
// every worker aggregates into its own map, Close merges the maps and sorts
// the result by key so that both GroupSink implementations produce identical
// output.
type HashGroups struct {
	agg     Agg
	writers []*hashGroupWriter
	groups  []relation.Tuple
}

// NewHashGroups returns a hash-based group-by sink.
func NewHashGroups(agg Agg) *HashGroups { return &HashGroups{agg: agg} }

// Open implements Sink.
func (h *HashGroups) Open(workers int) {
	h.writers = make([]*hashGroupWriter, workers)
	for w := range h.writers {
		h.writers[w] = &hashGroupWriter{agg: h.agg, groups: make(map[uint64]uint64)}
	}
	h.groups = nil
}

// Writer implements Sink.
func (h *HashGroups) Writer(w int) mergejoin.Consumer { return h.writers[w] }

// Close implements Sink.
func (h *HashGroups) Close() error {
	merged := h.writers[0].groups
	for _, w := range h.writers[1:] {
		for k, v := range w.groups {
			if acc, ok := merged[k]; ok {
				merged[k] = h.agg.merge(acc, v)
			} else {
				merged[k] = v
			}
		}
	}
	h.groups = make([]relation.Tuple, 0, len(merged))
	for k, v := range merged {
		h.groups = append(h.groups, relation.Tuple{Key: k, Payload: v})
	}
	sort.Slice(h.groups, func(i, j int) bool { return h.groups[i].Key < h.groups[j].Key })
	return nil
}

// Groups implements GroupSink.
func (h *HashGroups) Groups() []relation.Tuple { return h.groups }

// hashGroupWriter aggregates one worker's pairs into a private map.
type hashGroupWriter struct {
	agg    Agg
	groups map[uint64]uint64
}

// Consume implements mergejoin.Consumer.
func (w *hashGroupWriter) Consume(r, s relation.Tuple) {
	key, val := r.Key, r.Payload+s.Payload
	if acc, ok := w.groups[key]; ok {
		w.groups[key] = w.agg.fold(acc, val)
	} else {
		w.groups[key] = w.agg.initial(val)
	}
}

// AggregateTuples is the reference group-by for plain tuple streams (group by
// Tuple.Key, aggregate Tuple.Payload): a hash aggregation returning the
// groups in ascending key order. The plan executor uses it for aggregates
// above already-materialized inputs, and tests use it as the oracle for the
// streaming implementation.
func AggregateTuples(tuples []relation.Tuple, agg Agg) []relation.Tuple {
	groups := make(map[uint64]uint64, len(tuples)/4+1)
	for _, t := range tuples {
		if acc, ok := groups[t.Key]; ok {
			groups[t.Key] = agg.fold(acc, t.Payload)
		} else {
			groups[t.Key] = agg.initial(t.Payload)
		}
	}
	out := make([]relation.Tuple, 0, len(groups))
	for k, v := range groups {
		out = append(out, relation.Tuple{Key: k, Payload: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
