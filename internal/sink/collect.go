package sink

import (
	"repro/internal/memory"
	"repro/internal/mergejoin"
	"repro/internal/relation"
)

// Projection converts one joined pair into the output tuple of an operator
// above the join. The join's default projection {Key: R.Key, Payload:
// R.Payload + S.Payload} carries the join key and the paper's aggregation
// input.
type Projection func(r, s relation.Tuple) relation.Tuple

// DefaultProjection is the projection a join applies when feeding another
// operator without an explicit Project node.
func DefaultProjection(r, s relation.Tuple) relation.Tuple {
	return relation.Tuple{Key: r.Key, Payload: r.Payload + s.Payload}
}

// Collect is the operator bridge between a join and a consumer of tuples: it
// applies a projection to every joined pair and materializes the projected
// tuples, worker-locally and lock-free, into one flat tuple slice. The plan
// executor uses it to feed a join's output into the next operator (for
// example, as the intermediate relation of a second join).
//
// Collect implements Scratcher, so the per-worker buffers come from the
// join's scratch lease. The final concatenated buffer is drawn from the out
// lease passed at construction — which must outlive the join (the plan
// execution's lease) — or freshly allocated when out is nil.
type Collect struct {
	project Projection
	out     *memory.Lease
	lease   *memory.Lease
	parts   []*tupleBuffer
	rows    []relation.Tuple
}

// NewCollect returns a collecting bridge sink; a nil projection selects
// DefaultProjection.
func NewCollect(project Projection, out *memory.Lease) *Collect {
	if project == nil {
		project = DefaultProjection
	}
	return &Collect{project: project, out: out}
}

// SetScratch implements Scratcher.
func (c *Collect) SetScratch(lease *memory.Lease) { c.lease = lease }

// Open implements Sink.
func (c *Collect) Open(workers int) {
	c.parts = make([]*tupleBuffer, workers)
	for w := range c.parts {
		c.parts[w] = &tupleBuffer{project: c.project, lease: c.lease}
	}
	c.rows = nil
}

// Writer implements Sink.
func (c *Collect) Writer(w int) mergejoin.Consumer { return c.parts[w] }

// Close implements Sink: it concatenates the per-worker buffers in worker
// order and returns them to the join's lease.
func (c *Collect) Close() error {
	total := 0
	for _, p := range c.parts {
		total += p.n
	}
	out := c.out.Tuples(total) // nil lease allocates fresh
	pos := 0
	for _, p := range c.parts {
		copy(out[pos:], p.buf[:p.n])
		pos += p.n
		p.release()
	}
	c.rows = out[:total]
	return nil
}

// Rows returns the projected tuples of all joined pairs. Call after Close;
// the slice is valid until the next Open (it may be backed by the out lease).
func (c *Collect) Rows() []relation.Tuple { return c.rows }

// tupleBuffer is one worker's projection buffer, growing by doubling in
// leased space and handing outgrown buffers straight back for intra-join
// reuse.
type tupleBuffer struct {
	project Projection
	lease   *memory.Lease
	buf     []relation.Tuple
	n       int
}

// initialTupleBufferLen sizes the first leased buffer (2048 tuples = 32 KiB).
const initialTupleBufferLen = 2048

// Consume implements mergejoin.Consumer.
func (b *tupleBuffer) Consume(r, s relation.Tuple) {
	if b.n == len(b.buf) {
		grown := b.lease.Tuples(max(initialTupleBufferLen, 2*len(b.buf)))
		copy(grown, b.buf[:b.n])
		b.lease.PutTuples(b.buf)
		b.buf = grown
	}
	b.buf[b.n] = b.project(r, s)
	b.n++
}

// release hands the leased buffer back for reuse.
func (b *tupleBuffer) release() {
	if b.buf != nil {
		b.lease.PutTuples(b.buf)
		b.buf, b.n = nil, 0
	}
}
