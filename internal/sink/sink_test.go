package sink

import (
	"sort"
	"testing"

	"repro/internal/relation"
)

// emit distributes n pairs round-robin over the sink's workers, mimicking a
// parallel join's per-worker emission.
func emit(t *testing.T, s Sink, workers int, pairs []Pair) *Bound {
	t.Helper()
	b := Bind(s, workers, nil)
	for i, p := range pairs {
		b.Writer(i%workers).Consume(p.R, p.S)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return b
}

func testPairs(n int) []Pair {
	pairs := make([]Pair, n)
	for i := range pairs {
		pairs[i] = Pair{
			R: relation.Tuple{Key: uint64(i), Payload: uint64(i * 3)},
			S: relation.Tuple{Key: uint64(i), Payload: uint64(i * 5)},
		}
	}
	return pairs
}

func TestBindDefaultsToMaxSum(t *testing.T) {
	b := emit(t, nil, 4, testPairs(100))
	if b.Matches() != 100 {
		t.Fatalf("Matches = %d, want 100", b.Matches())
	}
	if want := uint64(99 * 8); b.MaxSum() != want {
		t.Fatalf("MaxSum = %d, want %d", b.MaxSum(), want)
	}
}

func TestBoundWorkerMatches(t *testing.T) {
	b := emit(t, NewCount(), 4, testPairs(10))
	var sum uint64
	for w := 0; w < 4; w++ {
		sum += b.WorkerMatches(w)
	}
	if sum != 10 || b.Matches() != 10 {
		t.Fatalf("per-worker sum %d, total %d, want 10", sum, b.Matches())
	}
	// A sink without a Max method reports 0.
	if b.MaxSum() != 0 {
		t.Fatalf("MaxSum on a Count sink = %d, want 0", b.MaxSum())
	}
}

func TestMaxSumMatchesSequentialAggregate(t *testing.T) {
	pairs := testPairs(1000)
	ms := NewMaxSum()
	emit(t, ms, 7, pairs)
	if ms.Matches() != 1000 {
		t.Fatalf("Matches = %d, want 1000", ms.Matches())
	}
	if want := uint64(999 * 8); ms.Max() != want {
		t.Fatalf("Max = %d, want %d", ms.Max(), want)
	}
}

func TestCountTotal(t *testing.T) {
	c := NewCount()
	emit(t, c, 3, testPairs(17))
	if c.Total() != 17 {
		t.Fatalf("Total = %d, want 17", c.Total())
	}
}

func TestMaterializeCollectsEveryPair(t *testing.T) {
	pairs := testPairs(256)
	m := NewMaterialize()
	emit(t, m, 5, pairs)
	got := m.Pairs()
	if len(got) != len(pairs) {
		t.Fatalf("got %d pairs, want %d", len(got), len(pairs))
	}
	sort.Slice(got, func(i, j int) bool { return got[i].R.Key < got[j].R.Key })
	for i := range got {
		if got[i] != pairs[i] {
			t.Fatalf("pair %d = %+v, want %+v", i, got[i], pairs[i])
		}
	}
	rel := m.Relation("out")
	if rel.Len() != len(pairs) {
		t.Fatalf("Relation has %d tuples, want %d", rel.Len(), len(pairs))
	}
}

func TestTopKKeepsTheBestPairs(t *testing.T) {
	pairs := testPairs(500)
	k := 10
	tk := NewTopK(k)
	emit(t, tk, 6, pairs)
	top := tk.Top()
	if len(top) != k {
		t.Fatalf("got %d pairs, want %d", len(top), k)
	}
	// The best 10 sums are those of the last 10 generated pairs, descending.
	for i, p := range top {
		if want := uint64((499 - i) * 8); p.Sum() != want {
			t.Fatalf("top[%d].Sum = %d, want %d", i, p.Sum(), want)
		}
	}
	// Fewer pairs than k: everything is retained.
	small := NewTopK(10)
	emit(t, small, 2, testPairs(3))
	if len(small.Top()) != 3 {
		t.Fatalf("small Top() = %d pairs, want 3", len(small.Top()))
	}
	// k <= 0 keeps nothing.
	none := NewTopK(0)
	emit(t, none, 2, testPairs(3))
	if len(none.Top()) != 0 {
		t.Fatalf("k=0 Top() = %d pairs, want 0", len(none.Top()))
	}
}

func TestFuncSerializesCallbacks(t *testing.T) {
	var seen []Pair
	f := NewFunc(func(r, s relation.Tuple) { seen = append(seen, Pair{R: r, S: s}) })
	emit(t, f, 4, testPairs(64))
	if len(seen) != 64 {
		t.Fatalf("callback saw %d pairs, want 64", len(seen))
	}
}

func TestSinkReuseAcrossSequentialJoins(t *testing.T) {
	// Open must reset state so one sink can serve several sequential joins.
	ms := NewMaxSum()
	emit(t, ms, 4, testPairs(50))
	first := ms.Matches()
	emit(t, ms, 2, testPairs(20))
	if first != 50 || ms.Matches() != 20 {
		t.Fatalf("reuse broken: first %d (want 50), second %d (want 20)", first, ms.Matches())
	}
}
