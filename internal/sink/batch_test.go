package sink

import (
	"testing"

	"repro/internal/relation"
)

// TestBoundBatchCounters checks that the sink boundary counts batches and
// batched pairs separately from the row stream, and that the batch fast path
// feeds the same aggregate as per-pair emission.
func TestBoundBatchCounters(t *testing.T) {
	m := NewMaxSum()
	b := Bind(m, 2, nil)

	// Worker 0: two batches. Worker 1: row-at-a-time pairs.
	w0 := b.Writer(0).(*countingWriter)
	w0.ConsumeColumns([]uint64{1, 2, 3}, []uint64{10, 20, 30}, []uint64{1, 2, 3})
	w0.ConsumeColumns([]uint64{4}, []uint64{40}, []uint64{4})
	b.Writer(1).Consume(relation.Tuple{Key: 9, Payload: 100}, relation.Tuple{Key: 9, Payload: 11})

	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if b.Matches() != 5 {
		t.Fatalf("Matches = %d, want 5", b.Matches())
	}
	batches, pairs := b.Batches()
	if batches != 2 || pairs != 4 {
		t.Fatalf("Batches() = (%d, %d), want (2, 4)", batches, pairs)
	}
	if b.MaxSum() != 111 {
		t.Fatalf("MaxSum = %d, want 111", b.MaxSum())
	}
	if got := b.WorkerMatches(0); got != 4 {
		t.Fatalf("WorkerMatches(0) = %d, want 4", got)
	}
}
