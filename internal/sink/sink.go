// Package sink defines the streaming result interface of the join engine and
// the built-in result consumers.
//
// A Sink receives the output stream of a parallel join. Mirroring the MPSM
// execution model — workers meet only at phase barriers, never per tuple —
// a sink hands out one mergejoin.Consumer per worker before the join phase
// and merges the per-worker state once, after all workers have finished.
// The hot path therefore needs no locking unless the sink itself chooses to
// serialize (see Func).
//
// The paper's evaluation query max(R.payload + S.payload) is just one sink
// (MaxSum); Count, Materialize and TopK cover the other common result shapes,
// and Func adapts any callback.
package sink

import (
	"sort"
	"sync"

	"repro/internal/memory"
	"repro/internal/mergejoin"
	"repro/internal/relation"
)

// Sink consumes the output stream of a parallel join execution.
//
// The engine drives the life cycle as Open → Writer (once per worker) →
// Close. Writers are used from exactly one goroutine each; Open and Close are
// called from the coordinating goroutine outside the join phase. Open resets
// any state left by a previous execution, so a sink may be reused across
// sequential joins — but never across concurrent ones.
type Sink interface {
	// Open prepares the sink for one join execution with the given degree of
	// parallelism.
	Open(workers int)
	// Writer returns the consumer for worker w, 0 <= w < workers.
	Writer(w int) mergejoin.Consumer
	// Close merges the per-worker state after all workers have finished.
	Close() error
}

// BatchWriter is the batch fast path of a sink writer: writers that
// implement it receive whole columnar match batches (join key plus both
// payload columns) instead of one Consume call per pair. It is an optional
// extension — the join's columnar kernels probe for it and fall back to
// per-pair delivery, so existing sinks keep working unchanged. The built-in
// MaxSum, Count and Materialize writers implement it.
type BatchWriter = mergejoin.BatchConsumer

// Pair is one joined (r, s) tuple pair.
type Pair struct {
	R, S relation.Tuple
}

// Sum returns R.Payload + S.Payload, the paper's aggregation input.
func (p Pair) Sum() uint64 { return p.R.Payload + p.S.Payload }

// Bound wraps a sink for one join execution, interposing a per-worker match
// counter so that every algorithm reports its join cardinality regardless of
// what the sink does with the tuples. Bind with a nil sink selects the
// built-in MaxSum aggregate, which preserves the legacy Join semantics.
type Bound struct {
	sink    Sink
	writers []*countingWriter
	check   PairCheck
}

// Scratcher is implemented by sinks that can draw their per-worker buffers
// from the join's scratch lease (see internal/memory). Bind calls SetScratch
// before Open on every execution — with the join's lease when the engine runs
// with a scratch pool, and with nil otherwise — so a reused sink never holds
// on to a stale lease.
type Scratcher interface {
	SetScratch(lease *memory.Lease)
}

// PairCheck verifies one candidate match before it reaches the sink. It is
// the tie-break hook of normalized-key execution: candidate pairs are equal
// on the uint64 key prefix, and the check compares the full normalized keys
// addressed by the two payloads (row indices under inexact key metadata).
// On a genuine match it returns the payloads the sink should observe —
// typically the caller's original payloads recovered from the key metadata
// — and ok=true; on a prefix collision it returns ok=false and the pair is
// dropped before it is counted.
type PairCheck func(rPayload, sPayload uint64) (rOut, sOut uint64, ok bool)

// Bind opens the sink for a join with the given worker count. A nil sink
// selects a fresh MaxSum aggregate. A non-nil lease is offered to sinks
// implementing Scratcher; pass nil when the join runs without a scratch pool.
func Bind(s Sink, workers int, lease *memory.Lease) *Bound {
	return BindChecked(s, workers, lease, nil)
}

// BindChecked is Bind with an optional tie-break verifier: when check is
// non-nil every worker's writer first filters candidate pairs through it,
// so both the match count and the sink observe verified pairs only. A nil
// check is the zero-overhead fast path and is exactly Bind.
func BindChecked(s Sink, workers int, lease *memory.Lease, check PairCheck) *Bound {
	if s == nil {
		s = NewMaxSum()
	}
	if sc, ok := s.(Scratcher); ok {
		sc.SetScratch(lease)
	}
	s.Open(workers)
	b := &Bound{sink: s, writers: make([]*countingWriter, workers), check: check}
	for w := range b.writers {
		b.writers[w] = &countingWriter{inner: s.Writer(w)}
	}
	return b
}

// Writer returns worker w's consumer: the counting writer, wrapped in the
// tie-break verifier when one is bound.
func (b *Bound) Writer(w int) mergejoin.Consumer {
	if b.check != nil {
		return &checkingWriter{check: b.check, inner: b.writers[w]}
	}
	return b.writers[w]
}

// Close closes the underlying sink.
func (b *Bound) Close() error { return b.sink.Close() }

// Matches is the total number of pairs emitted across all workers. Call only
// after the join phase barrier.
func (b *Bound) Matches() uint64 {
	var n uint64
	for _, w := range b.writers {
		n += w.count
	}
	return n
}

// WorkerMatches is the number of pairs worker w emitted.
func (b *Bound) WorkerMatches(w int) uint64 { return b.writers[w].count }

// MaxSum reports the max(R.payload + S.payload) aggregate if the underlying
// sink computes it (the MaxSum sink does), and 0 otherwise. Call after Close.
func (b *Bound) MaxSum() uint64 {
	if m, ok := b.sink.(interface{ Max() uint64 }); ok {
		return m.Max()
	}
	return 0
}

// Batches is the number of columnar match batches flushed through the sink
// boundary, and BatchedMatches the pairs they carried; both are zero when the
// join ran row-at-a-time. Call after the join phase barrier.
func (b *Bound) Batches() (batches, pairs uint64) {
	for _, w := range b.writers {
		batches += w.batches
		pairs += w.batchedPairs
	}
	return batches, pairs
}

// countingWriter counts pairs before forwarding them to the sink's writer.
type countingWriter struct {
	inner        mergejoin.Consumer
	count        uint64
	batches      uint64
	batchedPairs uint64
}

// Consume implements mergejoin.Consumer.
func (c *countingWriter) Consume(r, s relation.Tuple) {
	c.count++
	c.inner.Consume(r, s)
}

// ConsumeColumns implements BatchWriter: one count update per batch, then the
// batch is forwarded — directly when the inner writer is batch-capable,
// pair by pair otherwise.
func (c *countingWriter) ConsumeColumns(keys, rPayloads, sPayloads []uint64) {
	n := uint64(len(keys))
	c.count += n
	c.batches++
	c.batchedPairs += n
	mergejoin.EmitColumns(c.inner, keys, rPayloads, sPayloads)
}

// checkingWriter interposes the tie-break verifier in front of a worker's
// counting writer: candidate pairs that fail the check vanish before they
// are counted, and surviving pairs carry the payloads the check returned
// (the user payloads recovered from the key metadata). It sits outside the
// countingWriter so Matches() reports verified pairs only.
type checkingWriter struct {
	check PairCheck
	inner *countingWriter
}

// Consume implements mergejoin.Consumer.
func (c *checkingWriter) Consume(r, s relation.Tuple) {
	rp, sp, ok := c.check(r.Payload, s.Payload)
	if !ok {
		return
	}
	r.Payload, s.Payload = rp, sp
	c.inner.Consume(r, s)
}

// ConsumeColumns implements BatchWriter: the batch is verified and
// compacted in place — surviving pairs slide forward over rejected ones —
// then the shortened batch flows on, keeping the columnar boundary intact
// under tie-break verification.
func (c *checkingWriter) ConsumeColumns(keys, rPayloads, sPayloads []uint64) {
	n := 0
	for i := range keys {
		if rp, sp, ok := c.check(rPayloads[i], sPayloads[i]); ok {
			keys[n], rPayloads[n], sPayloads[n] = keys[i], rp, sp
			n++
		}
	}
	if n > 0 {
		c.inner.ConsumeColumns(keys[:n], rPayloads[:n], sPayloads[:n])
	}
}

// MaxSum implements the paper's evaluation query
//
//	SELECT max(R.payload + S.payload) FROM R, S WHERE R.joinkey = S.joinkey
//
// as a Sink: every worker aggregates locally, Close merges.
type MaxSum struct {
	aggs []mergejoin.MaxAggregate
	agg  mergejoin.MaxAggregate
}

// NewMaxSum returns an empty max-sum aggregate sink.
func NewMaxSum() *MaxSum { return &MaxSum{} }

// Open implements Sink.
func (m *MaxSum) Open(workers int) {
	m.aggs = make([]mergejoin.MaxAggregate, workers)
	m.agg = mergejoin.MaxAggregate{}
}

// Writer implements Sink.
func (m *MaxSum) Writer(w int) mergejoin.Consumer { return &m.aggs[w] }

// Close implements Sink.
func (m *MaxSum) Close() error {
	for _, a := range m.aggs {
		m.agg.Merge(a)
	}
	return nil
}

// Matches is the number of joined pairs. Call after Close.
func (m *MaxSum) Matches() uint64 { return m.agg.Count }

// Max is the largest payload sum seen; only meaningful if Matches() > 0.
func (m *MaxSum) Max() uint64 { return m.agg.Max }

// Count counts joined pairs without retaining them.
type Count struct {
	counters []mergejoin.Counter
	total    uint64
}

// NewCount returns a counting sink.
func NewCount() *Count { return &Count{} }

// Open implements Sink.
func (c *Count) Open(workers int) {
	c.counters = make([]mergejoin.Counter, workers)
	c.total = 0
}

// Writer implements Sink.
func (c *Count) Writer(w int) mergejoin.Consumer { return &c.counters[w] }

// Close implements Sink.
func (c *Count) Close() error {
	for _, ctr := range c.counters {
		c.total += ctr.Count
	}
	return nil
}

// Total is the number of joined pairs. Call after Close.
func (c *Count) Total() uint64 { return c.total }

// Materialize collects every joined pair. Workers buffer locally; Close
// concatenates the buffers in worker order, so the result is deterministic
// for a fixed input and worker count under Static scheduling. Under the
// Morsel scheduler the pair-to-worker assignment depends on steal timing:
// the multiset of pairs is still deterministic, their order is not — callers
// comparing results across runs should sort first.
//
// Materialize implements Scratcher: when the join runs with a scratch pool,
// the per-worker buffers are leased tuple arrays (two tuples per pair) that
// return to the pool when the join finishes; only the final Pairs slice —
// which the caller keeps — is freshly allocated.
type Materialize struct {
	lease *memory.Lease
	parts []*pairBuffer
	pairs []Pair
}

// NewMaterialize returns a materializing sink.
func NewMaterialize() *Materialize { return &Materialize{} }

// SetScratch implements Scratcher.
func (m *Materialize) SetScratch(lease *memory.Lease) { m.lease = lease }

// Open implements Sink.
func (m *Materialize) Open(workers int) {
	m.parts = make([]*pairBuffer, workers)
	for w := range m.parts {
		m.parts[w] = &pairBuffer{lease: m.lease}
	}
	m.pairs = nil
}

// Writer implements Sink.
func (m *Materialize) Writer(w int) mergejoin.Consumer { return m.parts[w] }

// Close implements Sink.
func (m *Materialize) Close() error {
	total := 0
	for _, p := range m.parts {
		total += p.len()
	}
	m.pairs = make([]Pair, 0, total)
	for _, p := range m.parts {
		m.pairs = p.appendTo(m.pairs)
		p.release()
	}
	return nil
}

// Pairs returns all joined pairs. Call after Close. The slice is owned by the
// sink and valid until the next Open.
func (m *Materialize) Pairs() []Pair { return m.pairs }

// Relation materializes the result as a relation with one tuple per pair:
// the join key and the payload sum R.payload + S.payload. Call after Close.
func (m *Materialize) Relation(name string) *relation.Relation {
	tuples := make([]relation.Tuple, len(m.pairs))
	for i, p := range m.pairs {
		tuples[i] = relation.Tuple{Key: p.R.Key, Payload: p.Sum()}
	}
	return relation.New(name, tuples)
}

// pairBuffer is one worker's materialization buffer. Without a lease it is a
// plain growing pair slice; with a lease it stores pairs as two consecutive
// tuples in leased buffers, growing by doubling and handing outgrown buffers
// straight back for intra-join reuse.
type pairBuffer struct {
	lease *memory.Lease
	pairs []Pair           // plain mode
	buf   []relation.Tuple // leased mode: r at 2i, s at 2i+1
	n     int              // leased mode: tuples used in buf
}

// initialPairBufferTuples sizes the first leased buffer (2048 tuples =
// 32 KiB); joins emitting fewer than 1024 pairs per worker never regrow.
const initialPairBufferTuples = 2048

// Consume implements mergejoin.Consumer.
func (b *pairBuffer) Consume(r, s relation.Tuple) {
	if b.lease == nil {
		b.pairs = append(b.pairs, Pair{R: r, S: s})
		return
	}
	if b.n+2 > len(b.buf) {
		grown := b.lease.Tuples(max(initialPairBufferTuples, 2*len(b.buf)))
		copy(grown, b.buf[:b.n])
		b.lease.PutTuples(b.buf)
		b.buf = grown
	}
	b.buf[b.n] = r
	b.buf[b.n+1] = s
	b.n += 2
}

// ConsumeColumns implements BatchWriter: capacity is ensured once per batch,
// then the columns are interleaved into the buffer in one pass.
func (b *pairBuffer) ConsumeColumns(keys, rPayloads, sPayloads []uint64) {
	if b.lease == nil {
		for i := range keys {
			b.pairs = append(b.pairs, Pair{
				R: relation.Tuple{Key: keys[i], Payload: rPayloads[i]},
				S: relation.Tuple{Key: keys[i], Payload: sPayloads[i]},
			})
		}
		return
	}
	need := 2 * len(keys)
	for b.n+need > len(b.buf) {
		grown := b.lease.Tuples(max(initialPairBufferTuples, 2*len(b.buf)))
		copy(grown, b.buf[:b.n])
		b.lease.PutTuples(b.buf)
		b.buf = grown
	}
	for i := range keys {
		b.buf[b.n] = relation.Tuple{Key: keys[i], Payload: rPayloads[i]}
		b.buf[b.n+1] = relation.Tuple{Key: keys[i], Payload: sPayloads[i]}
		b.n += 2
	}
}

// len returns the number of buffered pairs.
func (b *pairBuffer) len() int {
	if b.lease == nil {
		return len(b.pairs)
	}
	return b.n / 2
}

// appendTo appends the buffered pairs to dst in emission order.
func (b *pairBuffer) appendTo(dst []Pair) []Pair {
	if b.lease == nil {
		return append(dst, b.pairs...)
	}
	for i := 0; i < b.n; i += 2 {
		dst = append(dst, Pair{R: b.buf[i], S: b.buf[i+1]})
	}
	return dst
}

// release hands the leased buffer back for reuse.
func (b *pairBuffer) release() {
	if b.lease != nil && b.buf != nil {
		b.lease.PutTuples(b.buf)
		b.buf, b.n = nil, 0
	}
}

// TopK keeps the k joined pairs with the largest payload sum, generalizing
// the MaxSum evaluation query (which is TopK with k = 1) while staying
// bounded in memory: every worker maintains a k-element min-heap, Close
// merges them.
type TopK struct {
	k     int
	heaps []*pairHeap
	top   []Pair
}

// NewTopK returns a top-k sink; k <= 0 keeps nothing.
func NewTopK(k int) *TopK { return &TopK{k: k} }

// Open implements Sink.
func (t *TopK) Open(workers int) {
	t.heaps = make([]*pairHeap, workers)
	for w := range t.heaps {
		t.heaps[w] = &pairHeap{k: t.k}
	}
	t.top = nil
}

// Writer implements Sink.
func (t *TopK) Writer(w int) mergejoin.Consumer { return t.heaps[w] }

// Close implements Sink.
func (t *TopK) Close() error {
	merged := &pairHeap{k: t.k}
	for _, h := range t.heaps {
		for _, p := range h.pairs {
			merged.push(p)
		}
	}
	t.top = merged.pairs
	sort.Slice(t.top, func(i, j int) bool { return t.top[i].Sum() > t.top[j].Sum() })
	return nil
}

// Top returns the k best pairs in descending payload-sum order. Call after
// Close.
func (t *TopK) Top() []Pair { return t.top }

// pairHeap is a bounded min-heap of pairs ordered by payload sum: the root is
// the worst retained pair, so a new pair only displaces it when strictly
// better.
type pairHeap struct {
	k     int
	pairs []Pair
}

// Consume implements mergejoin.Consumer.
func (h *pairHeap) Consume(r, s relation.Tuple) { h.push(Pair{R: r, S: s}) }

func (h *pairHeap) push(p Pair) {
	if h.k <= 0 {
		return
	}
	if len(h.pairs) < h.k {
		h.pairs = append(h.pairs, p)
		h.up(len(h.pairs) - 1)
		return
	}
	if p.Sum() <= h.pairs[0].Sum() {
		return
	}
	h.pairs[0] = p
	h.down(0)
}

func (h *pairHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.pairs[i].Sum() >= h.pairs[parent].Sum() {
			return
		}
		h.pairs[i], h.pairs[parent] = h.pairs[parent], h.pairs[i]
		i = parent
	}
}

func (h *pairHeap) down(i int) {
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < len(h.pairs) && h.pairs[left].Sum() < h.pairs[smallest].Sum() {
			smallest = left
		}
		if right < len(h.pairs) && h.pairs[right].Sum() < h.pairs[smallest].Sum() {
			smallest = right
		}
		if smallest == i {
			return
		}
		h.pairs[i], h.pairs[smallest] = h.pairs[smallest], h.pairs[i]
		i = smallest
	}
}

// Func adapts a callback into a Sink. Because the same callback observes the
// pairs of every worker, all writers share one mutex — this serializes the
// emission hot path and is therefore meant for streaming consumers (the
// engine's JoinStream) and tests, not for throughput-critical aggregation.
type Func struct {
	fn func(r, s relation.Tuple)
	mu sync.Mutex
}

// NewFunc returns a sink that invokes fn for every joined pair, serialized
// across workers.
func NewFunc(fn func(r, s relation.Tuple)) *Func { return &Func{fn: fn} }

// Open implements Sink.
func (f *Func) Open(workers int) {}

// Writer implements Sink.
func (f *Func) Writer(w int) mergejoin.Consumer { return (*funcWriter)(f) }

// Close implements Sink.
func (f *Func) Close() error { return nil }

// funcWriter locks the shared mutex around every callback invocation.
type funcWriter Func

// Consume implements mergejoin.Consumer.
func (f *funcWriter) Consume(r, s relation.Tuple) {
	f.mu.Lock()
	f.fn(r, s)
	f.mu.Unlock()
}
