package keys

import (
	"fmt"

	"repro/internal/batch"
	"repro/internal/relation"
)

// Encoded is the relation.KeyMeta a schema encoding produces. For an exact
// schema it is a pure marker (the prefix is the whole key and tuples carry
// user payloads); for an inexact schema it owns the full-key arena and the
// payload column the tie-break path consults.
type Encoded struct {
	schema *Schema
	// full holds each row's complete normalized key, addressed by the row
	// index the tuple carries as its payload. Nil for exact schemas.
	full *batch.Bytes
	// payloads holds the caller's payload per row. Nil for exact schemas,
	// where tuples carry the user payload directly.
	payloads []uint64
}

var _ relation.KeyMeta = (*Encoded)(nil)

// Schema returns the schema the relation was encoded under.
func (e *Encoded) Schema() *Schema { return e.schema }

// Exact implements relation.KeyMeta.
func (e *Encoded) Exact() bool { return e.schema.Exact() }

// Signature implements relation.KeyMeta.
func (e *Encoded) Signature() string { return e.schema.Signature() }

// FullKey implements relation.KeyMeta.
func (e *Encoded) FullKey(i int) []byte { return e.full.At(i) }

// UserPayload implements relation.KeyMeta.
func (e *Encoded) UserPayload(i int) uint64 { return e.payloads[i] }

// Describe implements relation.KeyMeta.
func (e *Encoded) Describe() string {
	if e.Exact() {
		return fmt.Sprintf("normalized keys [%s]: exact 8-byte prefix (fast path)", e.schema.Signature())
	}
	return fmt.Sprintf("normalized keys [%s]: 8-byte prefix + tie-break verify", e.schema.Signature())
}

// Encode normalizes one row per entry of rows and builds the relation the
// engine executes on. Under an exact schema each tuple is
// {prefix, payloads[i]} and no side state exists; otherwise each tuple is
// {prefix, i} with the full normalized keys and user payloads retained in
// the returned metadata for tie-break verification and payload recovery.
// rows and payloads must have equal length.
func (s *Schema) Encode(name string, rows [][]Value, payloads []uint64) (*relation.Relation, error) {
	if len(rows) != len(payloads) {
		return nil, fmt.Errorf("keys: %d rows but %d payloads", len(rows), len(payloads))
	}
	rel := relation.NewWithCapacity(name, len(rows))
	if s.exact {
		var scratch []byte
		for i, row := range rows {
			norm, err := s.AppendNormalized(scratch[:0], row)
			if err != nil {
				return nil, fmt.Errorf("keys: row %d: %w", i, err)
			}
			scratch = norm
			rel.Append(relation.Tuple{Key: Prefix(norm), Payload: payloads[i]})
		}
		rel.Meta = &Encoded{schema: s}
		return rel, nil
	}
	// Inexact: keep the full keys. Sizing the arena by the fixed parts plus
	// a modest per-string guess avoids most growth copies without a
	// pre-pass over the data.
	meta := &Encoded{
		schema:   s,
		full:     batch.NewBytes(len(rows), len(rows)*(len(s.cols)*8+8)),
		payloads: append([]uint64(nil), payloads...),
	}
	var scratch []byte
	for i, row := range rows {
		norm, err := s.AppendNormalized(scratch[:0], row)
		if err != nil {
			return nil, fmt.Errorf("keys: row %d: %w", i, err)
		}
		scratch = norm
		meta.full.Append(norm)
		rel.Append(relation.Tuple{Key: Prefix(norm), Payload: uint64(i)})
	}
	rel.Meta = meta
	return rel, nil
}

// MustEncode is Encode for known-good inputs; it panics on error.
func (s *Schema) MustEncode(name string, rows [][]Value, payloads []uint64) *relation.Relation {
	rel, err := s.Encode(name, rows, payloads)
	if err != nil {
		panic(err)
	}
	return rel
}
