package keys

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// mustNorm encodes one row or fails the test.
func mustNorm(t *testing.T, s *Schema, row []Value) []byte {
	t.Helper()
	norm, err := s.AppendNormalized(nil, row)
	if err != nil {
		t.Fatalf("AppendNormalized(%v): %v", row, err)
	}
	return norm
}

// checkOrder asserts that the encodings of rows (given in strictly
// ascending semantic order) are in strictly ascending memcmp order, that
// CompareRows agrees, and that the uint64 prefixes are monotone.
func checkOrder(t *testing.T, s *Schema, rows [][]Value) {
	t.Helper()
	for i := 0; i < len(rows); i++ {
		for j := 0; j < len(rows); j++ {
			want := 0
			switch {
			case i < j:
				want = -1
			case i > j:
				want = 1
			}
			if got := s.CompareRows(rows[i], rows[j]); got != want {
				t.Errorf("CompareRows(rows[%d], rows[%d]) = %d, want %d", i, j, got, want)
			}
			a, b := mustNorm(t, s, rows[i]), mustNorm(t, s, rows[j])
			if got := bytes.Compare(a, b); got != want {
				t.Errorf("bytes.Compare(norm[%d]=%x, norm[%d]=%x) = %d, want %d", i, a, j, b, got, want)
			}
			pa, pb := Prefix(a), Prefix(b)
			if want < 0 && pa > pb {
				t.Errorf("Prefix not monotone: rows[%d] < rows[%d] but prefix %x > %x", i, j, pa, pb)
			}
		}
	}
}

func TestInt64Order(t *testing.T) {
	s := MustNew(Column{Type: Int64})
	checkOrder(t, s, [][]Value{
		{Int64Value(math.MinInt64)},
		{Int64Value(-1 << 40)},
		{Int64Value(-2)},
		{Int64Value(-1)},
		{Int64Value(0)},
		{Int64Value(1)},
		{Int64Value(1 << 40)},
		{Int64Value(math.MaxInt64)},
	})
	if !s.Exact() {
		t.Error("single non-nullable int64 column should be exact")
	}
}

func TestUint64PrefixIsIdentity(t *testing.T) {
	s := MustNew(Column{Type: Uint64})
	for _, v := range []uint64{0, 1, 1 << 32, math.MaxUint64} {
		norm := mustNorm(t, s, []Value{Uint64Value(v)})
		if got := Prefix(norm); got != v {
			t.Errorf("Prefix(norm(%d)) = %d, want the identity", v, got)
		}
	}
	if !s.Exact() {
		t.Error("single non-nullable uint64 column should be exact")
	}
}

func TestFloat64Order(t *testing.T) {
	s := MustNew(Column{Type: Float64})
	checkOrder(t, s, [][]Value{
		{Float64Value(math.Inf(-1))},
		{Float64Value(-math.MaxFloat64)},
		{Float64Value(-1.5)},
		{Float64Value(-math.SmallestNonzeroFloat64)},
		{Float64Value(0)},
		{Float64Value(math.SmallestNonzeroFloat64)},
		{Float64Value(1.5)},
		{Float64Value(math.MaxFloat64)},
		{Float64Value(math.Inf(1))},
		{Float64Value(math.NaN())},
	})
}

func TestFloatZeroAndNaNCanonical(t *testing.T) {
	s := MustNew(Column{Type: Float64})
	negZero := mustNorm(t, s, []Value{Float64Value(math.Copysign(0, -1))})
	posZero := mustNorm(t, s, []Value{Float64Value(0)})
	if !bytes.Equal(negZero, posZero) {
		t.Errorf("-0.0 (%x) and +0.0 (%x) must encode identically", negZero, posZero)
	}
	// Distinct NaN payloads must collapse to one encoding.
	nan1 := mustNorm(t, s, []Value{Float64Value(math.NaN())})
	nan2 := mustNorm(t, s, []Value{Float64Value(math.Float64frombits(0x7FF0000000000001))})
	nan3 := mustNorm(t, s, []Value{Float64Value(math.Float64frombits(0xFFF8000000000005))})
	if !bytes.Equal(nan1, nan2) || !bytes.Equal(nan1, nan3) {
		t.Errorf("NaN encodings differ: %x, %x, %x", nan1, nan2, nan3)
	}
}

func TestBytesOrderSharedPrefixes(t *testing.T) {
	s := MustNew(Column{Type: Bytes})
	checkOrder(t, s, [][]Value{
		{BytesValue(nil)},
		{StringValue("a")},
		{BytesValue([]byte("a\x00"))},
		{BytesValue([]byte("a\x00\x00"))},
		{BytesValue([]byte("a\x00\x01"))},
		{BytesValue([]byte("a\x01"))},
		{StringValue("aa")},
		{StringValue("ab")},
		{StringValue("abcdefghij")}, // longer than the 8-byte prefix
		{StringValue("abcdefghik")}, // differs past the prefix
		{StringValue("b")},
	})
	if s.Exact() {
		t.Error("bytes column must not be exact")
	}
}

func TestDescColumn(t *testing.T) {
	s := MustNew(Column{Type: Int64, Desc: true})
	checkOrder(t, s, [][]Value{
		{Int64Value(math.MaxInt64)},
		{Int64Value(5)},
		{Int64Value(0)},
		{Int64Value(-5)},
		{Int64Value(math.MinInt64)},
	})
	sb := MustNew(Column{Type: Bytes, Desc: true})
	checkOrder(t, sb, [][]Value{
		{StringValue("zz")},
		{StringValue("b")},
		{StringValue("ab")},
		{StringValue("aa")},
		{StringValue("a\x00")},
		{StringValue("a")},
		{StringValue("")},
	})
}

func TestNullOrdering(t *testing.T) {
	first := MustNew(Column{Type: Int64, Nullable: true})
	checkOrder(t, first, [][]Value{
		{NullValue()},
		{Int64Value(math.MinInt64)},
		{Int64Value(7)},
	})
	last := MustNew(Column{Type: Int64, Nullable: true, NullsLast: true})
	checkOrder(t, last, [][]Value{
		{Int64Value(math.MinInt64)},
		{Int64Value(math.MaxInt64)},
		{NullValue()},
	})
	// DESC flips the null placement along with the value order.
	descFirst := MustNew(Column{Type: Int64, Desc: true, Nullable: true})
	checkOrder(t, descFirst, [][]Value{
		{Int64Value(7)},
		{Int64Value(-7)},
		{NullValue()},
	})
}

func TestCompositeOrder(t *testing.T) {
	s := MustNew(
		Column{Name: "name", Type: Bytes},
		Column{Name: "score", Type: Float64, Desc: true},
		Column{Name: "id", Type: Int64},
	)
	checkOrder(t, s, [][]Value{
		{StringValue("alice"), Float64Value(9.5), Int64Value(1)},
		{StringValue("alice"), Float64Value(9.5), Int64Value(2)},
		{StringValue("alice"), Float64Value(1.0), Int64Value(-3)},
		{StringValue("bob"), Float64Value(100), Int64Value(0)},
	})
	if s.Exact() {
		t.Error("composite schema must not be exact")
	}
}

func TestExactness(t *testing.T) {
	cases := []struct {
		cols  []Column
		exact bool
	}{
		{[]Column{{Type: Int64}}, true},
		{[]Column{{Type: Uint64}}, true},
		{[]Column{{Type: Float64, Desc: true}}, true},
		{[]Column{{Type: Int64, Nullable: true}}, false}, // marker byte makes it 9 bytes
		{[]Column{{Type: Int64}, {Type: Int64}}, false},
		{[]Column{{Type: Bytes}}, false},
	}
	for _, c := range cases {
		if got := MustNew(c.cols...).Exact(); got != c.exact {
			t.Errorf("Exact(%+v) = %v, want %v", c.cols, got, c.exact)
		}
	}
}

func TestSignature(t *testing.T) {
	s := MustNew(
		Column{Type: Bytes},
		Column{Type: Int64, Desc: true, Nullable: true, NullsLast: true},
	)
	want := "bytes,int64:desc:nullslast"
	if s.Signature() != want {
		t.Errorf("Signature() = %q, want %q", s.Signature(), want)
	}
	// Names must not affect the signature: joins match on key semantics.
	named := MustNew(
		Column{Name: "x", Type: Bytes},
		Column{Name: "y", Type: Int64, Desc: true, Nullable: true, NullsLast: true},
	)
	if named.Signature() != want {
		t.Errorf("named Signature() = %q, want %q", named.Signature(), want)
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("New() with no columns should fail")
	}
	if _, err := New(Column{Type: Type(42)}); err == nil {
		t.Error("unknown type should fail")
	}
	if _, err := New(Column{Type: Int64, NullsLast: true}); err == nil {
		t.Error("NullsLast without Nullable should fail")
	}
	s := MustNew(Column{Type: Int64})
	if _, err := s.AppendNormalized(nil, []Value{StringValue("x")}); err == nil {
		t.Error("type mismatch should fail")
	}
	if _, err := s.AppendNormalized(nil, []Value{NullValue()}); err == nil {
		t.Error("null for non-nullable column should fail")
	}
	if _, err := s.AppendNormalized(nil, nil); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestEncodeExact(t *testing.T) {
	s := MustNew(Column{Type: Int64})
	rel, err := s.Encode("r", [][]Value{
		{Int64Value(-5)}, {Int64Value(3)},
	}, []uint64{100, 200})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Meta == nil || !rel.Meta.Exact() {
		t.Fatal("exact schema must produce exact metadata")
	}
	// Payloads pass through untouched on the exact path.
	if rel.Tuples[0].Payload != 100 || rel.Tuples[1].Payload != 200 {
		t.Errorf("exact encode must carry user payloads, got %v", rel.Tuples)
	}
	if rel.Tuples[0].Key >= rel.Tuples[1].Key {
		t.Errorf("keys must order -5 < 3, got %x >= %x", rel.Tuples[0].Key, rel.Tuples[1].Key)
	}
}

func TestEncodeTieBreak(t *testing.T) {
	s := MustNew(Column{Type: Bytes})
	rows := [][]Value{
		{StringValue("prefix-collision-a")},
		{StringValue("prefix-collision-b")},
	}
	rel, err := s.Encode("r", rows, []uint64{11, 22})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Meta.Exact() {
		t.Fatal("bytes schema must produce tie-break metadata")
	}
	// Equal 8-byte prefixes, distinct full keys, row-index payloads.
	if rel.Tuples[0].Key != rel.Tuples[1].Key {
		t.Errorf("shared 18-byte prefix must collide in the 8-byte key: %x vs %x",
			rel.Tuples[0].Key, rel.Tuples[1].Key)
	}
	if rel.Tuples[0].Payload != 0 || rel.Tuples[1].Payload != 1 {
		t.Errorf("tie-break encode must carry row indices, got %v", rel.Tuples)
	}
	if bytes.Equal(rel.Meta.FullKey(0), rel.Meta.FullKey(1)) {
		t.Error("full keys must distinguish the rows")
	}
	if rel.Meta.UserPayload(0) != 11 || rel.Meta.UserPayload(1) != 22 {
		t.Error("user payloads must be recoverable from the metadata")
	}
}

// randomSchema draws a random 1–3 column schema.
func randomSchema(rng *rand.Rand) *Schema {
	n := 1 + rng.Intn(3)
	cols := make([]Column, n)
	for i := range cols {
		cols[i] = Column{
			Type:     Type(rng.Intn(4)),
			Desc:     rng.Intn(2) == 0,
			Nullable: rng.Intn(2) == 0,
		}
		if cols[i].Nullable {
			cols[i].NullsLast = rng.Intn(2) == 0
		}
	}
	return MustNew(cols...)
}

// randomRow draws one row for s, biased toward adversarial values: shared
// string prefixes, boundary integers, signed zeros, NaN and infinities.
func randomRow(rng *rand.Rand, s *Schema) []Value {
	row := make([]Value, len(s.cols))
	for i, col := range s.cols {
		if col.Nullable && rng.Intn(4) == 0 {
			row[i] = NullValue()
			continue
		}
		switch col.Type {
		case Int64:
			picks := []int64{math.MinInt64, -1, 0, 1, math.MaxInt64, rng.Int63(), -rng.Int63()}
			row[i] = Int64Value(picks[rng.Intn(len(picks))])
		case Uint64:
			picks := []uint64{0, 1, math.MaxUint64, rng.Uint64()}
			row[i] = Uint64Value(picks[rng.Intn(len(picks))])
		case Float64:
			picks := []float64{0, math.Copysign(0, -1), math.NaN(), math.Inf(1),
				math.Inf(-1), -1.5, rng.NormFloat64()}
			row[i] = Float64Value(picks[rng.Intn(len(picks))])
		case Bytes:
			prefixes := []string{"", "a", "aa", "shared-prefix-", "shared-prefix-longer-than-eight"}
			b := []byte(prefixes[rng.Intn(len(prefixes))])
			for k := rng.Intn(4); k > 0; k-- {
				b = append(b, byte(rng.Intn(3))) // dense in 0x00..0x02 to stress escaping
			}
			row[i] = BytesValue(b)
		}
	}
	return row
}

// TestDifferentialRandomized is the deterministic differential sweep: for
// random schemas and adversarial values, the normalized encoding's memcmp
// order must equal the reference comparator and the prefix must be
// monotone. It runs on every `go test`; FuzzNormalizedOrder extends it
// under the fuzzer.
func TestDifferentialRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 300; trial++ {
		s := randomSchema(rng)
		a, b := randomRow(rng, s), randomRow(rng, s)
		na, nb := mustNorm(t, s, a), mustNorm(t, s, b)
		want := s.CompareRows(a, b)
		if got := bytes.Compare(na, nb); got != want {
			t.Fatalf("schema %s: bytes.Compare = %d, CompareRows = %d\na=%v (%x)\nb=%v (%x)",
				s.Signature(), got, want, a, na, b, nb)
		}
		pa, pb := Prefix(na), Prefix(nb)
		if pa < pb && want >= 0 || pa > pb && want <= 0 {
			t.Fatalf("schema %s: prefix order (%x vs %x) contradicts key order %d",
				s.Signature(), pa, pb, want)
		}
	}
}

// FuzzNormalizedOrder differentially fuzzes the encoder against the
// reference comparator on a composite (bytes, int64 DESC, nullable
// float64) schema, the shape that exercises escaping, inversion and
// marker bytes at once.
func FuzzNormalizedOrder(f *testing.F) {
	f.Add([]byte("alpha"), int64(-1), 1.5, false, []byte("alpha\x00"), int64(-1), -1.5, true)
	f.Add([]byte(""), int64(0), 0.0, true, []byte("\x00"), int64(math.MinInt64), math.Inf(-1), false)
	f.Add([]byte("same"), int64(7), math.NaN(), false, []byte("same"), int64(7), math.NaN(), false)
	s := MustNew(
		Column{Type: Bytes},
		Column{Type: Int64, Desc: true},
		Column{Type: Float64, Nullable: true},
	)
	f.Fuzz(func(t *testing.T, b1 []byte, i1 int64, f1 float64, n1 bool,
		b2 []byte, i2 int64, f2 float64, n2 bool) {
		mk := func(b []byte, i int64, fl float64, null bool) []Value {
			v := Float64Value(fl)
			if null {
				v = NullValue()
			}
			return []Value{BytesValue(b), Int64Value(i), v}
		}
		a, c := mk(b1, i1, f1, n1), mk(b2, i2, f2, n2)
		na, err := s.AppendNormalized(nil, a)
		if err != nil {
			t.Fatal(err)
		}
		nc, err := s.AppendNormalized(nil, c)
		if err != nil {
			t.Fatal(err)
		}
		want := s.CompareRows(a, c)
		if got := bytes.Compare(na, nc); got != want {
			t.Fatalf("bytes.Compare = %d, CompareRows = %d\na=%v (%x)\nc=%v (%x)", got, want, a, na, c, nc)
		}
		pa, pc := Prefix(na), Prefix(nc)
		if pa < pc && want >= 0 || pa > pc && want <= 0 {
			t.Fatalf("prefix order (%x vs %x) contradicts key order %d", pa, pc, want)
		}
	})
}
