// Package keys implements the normalized-key encoding that opens the
// engine's uint64 fast path to real-world keys: multi-column composites,
// signed integers, floating-point values and variable-length byte strings.
//
// The idea is the classic normalized key of System R-era sort engines,
// rebuilt for the columnar MPSM hot path: every composite key is encoded
// into a byte string whose memcmp order equals the schema's semantic order
// (sign-flipped two's-complement integers, monotone IEEE-754 float
// transform, 0x00-escaped length-terminated byte strings, per-column
// byte inversion for DESC, a marker byte for nullable columns). The first
// eight bytes of that string, read big-endian, become the tuple's uint64
// key — so the packed radix sort, the branch-free SelectRange selection
// vectors and the cache-blocked merge kernels all run unmodified on the
// prefix.
//
// Two regimes fall out of the schema shape:
//
//   - Exact: the whole normalized key fits the 8-byte prefix (a single
//     non-nullable numeric column). Prefix order and equality ARE key
//     order and equality; tuples carry the caller's payload directly and
//     the join runs at raw-uint64 speed with zero overhead.
//   - Tie-break: the normalized key can exceed 8 bytes (strings,
//     composites, nullable columns). Tuples carry their row index as the
//     payload, the full normalized keys live in a byte-sliced overflow
//     column (batch.Bytes), and the join verifies every prefix-equal
//     candidate pair against the full keys before it reaches the sink —
//     only genuinely colliding prefixes pay for the comparison.
//
// The encoding is order-exact: for any two rows a, b of the same schema,
// bytes.Compare(Normalize(a), Normalize(b)) == CompareRows(a, b), and the
// uint64 prefix is monotone in that order (prefix(a) < prefix(b) implies
// a < b). The differential fuzz tests in this package hold the encoder to
// exactly that contract against the reference comparator.
package keys

import (
	"fmt"
	"math"
	"strings"
)

// Type is the value type of one key column.
type Type uint8

const (
	// Int64 is a signed 64-bit integer column.
	Int64 Type = iota
	// Uint64 is an unsigned 64-bit integer column.
	Uint64
	// Float64 is an IEEE-754 double column. NaNs compare equal to each
	// other and greater than every number; -0.0 compares equal to +0.0.
	Float64
	// Bytes is a variable-length byte-string column ([]byte or string).
	Bytes
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case Int64:
		return "int64"
	case Uint64:
		return "uint64"
	case Float64:
		return "float64"
	case Bytes:
		return "bytes"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Column describes one column of a key schema.
type Column struct {
	// Name is an optional diagnostic label.
	Name string
	// Type is the column's value type.
	Type Type
	// Desc sorts the column descending (implemented as byte inversion of
	// the column's normalized encoding, so it composes with every type).
	Desc bool
	// Nullable admits null values; it adds one marker byte per value.
	Nullable bool
	// NullsLast orders nulls after non-null values instead of before them
	// (only meaningful with Nullable; DESC flips the placement too, like
	// it flips everything else about the column).
	NullsLast bool
}

// Schema is an ordered list of key columns. Build one with New; the zero
// value is invalid.
type Schema struct {
	cols  []Column
	exact bool
	sig   string
}

// New validates the columns and returns their schema.
func New(cols ...Column) (*Schema, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("keys: a schema needs at least one column")
	}
	for i, c := range cols {
		switch c.Type {
		case Int64, Uint64, Float64, Bytes:
		default:
			return nil, fmt.Errorf("keys: column %d has unknown type %v", i, c.Type)
		}
		if c.NullsLast && !c.Nullable {
			return nil, fmt.Errorf("keys: column %d sets NullsLast without Nullable", i)
		}
	}
	s := &Schema{cols: append([]Column(nil), cols...)}
	s.exact = s.fixedWidth() >= 0 && s.fixedWidth() <= prefixBytes
	s.sig = s.signature()
	return s, nil
}

// MustNew is New for statically known schemas; it panics on error.
func MustNew(cols ...Column) *Schema {
	s, err := New(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Columns returns a copy of the schema's columns.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// prefixBytes is the width of the uint64 key prefix.
const prefixBytes = 8

// fixedWidth returns the exact normalized width of the schema in bytes, or
// -1 when any column is variable-length.
func (s *Schema) fixedWidth() int {
	w := 0
	for _, c := range s.cols {
		if c.Type == Bytes {
			return -1
		}
		w += 8
		if c.Nullable {
			w++
		}
	}
	return w
}

// Exact reports whether the full normalized key always fits the 8-byte
// uint64 prefix, making prefix order and equality exact — the zero-overhead
// fast path. Variable-length (Bytes) and multi-column or nullable schemas
// are inexact and use the tie-break path.
func (s *Schema) Exact() bool { return s.exact }

// Signature is the canonical description of the schema's key semantics.
// Two relations may only be tie-break-joined when their signatures match,
// since the join compares their normalized encodings byte for byte.
func (s *Schema) Signature() string { return s.sig }

// signature renders the canonical schema description.
func (s *Schema) signature() string {
	var b strings.Builder
	for i, c := range s.cols {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(c.Type.String())
		if c.Desc {
			b.WriteString(":desc")
		}
		if c.Nullable {
			if c.NullsLast {
				b.WriteString(":nullslast")
			} else {
				b.WriteString(":nullsfirst")
			}
		}
	}
	return b.String()
}

// String implements fmt.Stringer.
func (s *Schema) String() string { return "Schema{" + s.sig + "}" }

// Value is one key column value. The zero Value is a typed zero only in
// the context of the column it is encoded under; construct values with the
// typed constructors.
type Value struct {
	null bool
	t    Type
	i    int64
	u    uint64
	f    float64
	b    []byte
}

// Int64Value returns a signed integer value.
func Int64Value(v int64) Value { return Value{t: Int64, i: v} }

// Uint64Value returns an unsigned integer value.
func Uint64Value(v uint64) Value { return Value{t: Uint64, u: v} }

// Float64Value returns a float value.
func Float64Value(v float64) Value { return Value{t: Float64, f: v} }

// BytesValue returns a byte-string value; the bytes are not copied.
func BytesValue(v []byte) Value { return Value{t: Bytes, b: v} }

// StringValue returns a byte-string value backed by the string.
func StringValue(v string) Value { return Value{t: Bytes, b: []byte(v)} }

// NullValue returns the null value; it is valid for any nullable column.
func NullValue() Value { return Value{null: true} }

// Null reports whether the value is null.
func (v Value) Null() bool { return v.null }

// checkType verifies a value against its column.
func checkType(col Column, v Value) error {
	if v.null {
		if !col.Nullable {
			return fmt.Errorf("keys: null value for non-nullable %v column %q", col.Type, col.Name)
		}
		return nil
	}
	if v.t != col.Type {
		return fmt.Errorf("keys: %v value for %v column %q", v.t, col.Type, col.Name)
	}
	return nil
}

// Null ordering markers: the marker byte of a nullable column. An absent
// value must order on the marker alone, so the markers of null and present
// values differ; DESC inverts the whole column including the marker, which
// flips the null placement along with everything else.
const (
	markerNullFirst = 0x00 // null, NullsFirst
	markerPresent   = 0x01
	markerNullLast  = 0x02 // null, NullsLast
)

// AppendNormalized appends the order-preserving normalized encoding of one
// row to dst and returns the extended slice. The row must have exactly one
// value per schema column, each matching its column's type (or null for a
// nullable column).
func (s *Schema) AppendNormalized(dst []byte, row []Value) ([]byte, error) {
	if len(row) != len(s.cols) {
		return dst, fmt.Errorf("keys: row has %d values, schema has %d columns", len(row), len(s.cols))
	}
	for ci, col := range s.cols {
		v := row[ci]
		if err := checkType(col, v); err != nil {
			return dst, err
		}
		start := len(dst)
		if col.Nullable {
			switch {
			case !v.null:
				dst = append(dst, markerPresent)
			case col.NullsLast:
				dst = append(dst, markerNullLast)
			default:
				dst = append(dst, markerNullFirst)
			}
		}
		if !v.null {
			switch col.Type {
			case Int64:
				dst = appendU64(dst, uint64(v.i)^(1<<63))
			case Uint64:
				dst = appendU64(dst, v.u)
			case Float64:
				dst = appendU64(dst, floatBits(v.f))
			case Bytes:
				dst = appendEscaped(dst, v.b)
			}
		}
		if col.Desc {
			for i := start; i < len(dst); i++ {
				dst[i] ^= 0xFF
			}
		}
	}
	return dst, nil
}

// appendU64 appends v big-endian, so byte order equals numeric order.
func appendU64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// floatBits is the monotone IEEE-754 transform: canonicalize -0.0 to +0.0
// and every NaN to one quiet NaN (so equal-comparing values encode
// identically), then map negatives by full inversion and non-negatives by
// sign-bit flip. The resulting uint64 order equals the semantic float
// order with NaN greatest.
func floatBits(f float64) uint64 {
	if f == 0 {
		f = 0 // collapse -0.0
	}
	bits := math.Float64bits(f)
	if math.IsNaN(f) {
		bits = 0x7FF8000000000000
	}
	if bits>>63 != 0 {
		return ^bits
	}
	return bits | 1<<63
}

// Byte-string escaping: 0x00 content bytes become 0x00 0xFF and the string
// ends with the terminator 0x00 0x01, so no encoded string is a strict
// prefix of another and memcmp order equals (content-wise) lexicographic
// order with shorter-is-smaller semantics.
const (
	escByte       = 0x00
	escByteFill   = 0xFF
	terminatorEnd = 0x01
)

// appendEscaped appends the escaped, terminated encoding of b.
func appendEscaped(dst, b []byte) []byte {
	for _, c := range b {
		if c == escByte {
			dst = append(dst, escByte, escByteFill)
		} else {
			dst = append(dst, c)
		}
	}
	return append(dst, escByte, terminatorEnd)
}

// Prefix reads the first 8 bytes of a normalized key big-endian,
// zero-padding short keys, so uint64 prefix order is monotone in
// normalized-key order (equal prefixes merely mean "undecided in the first
// 8 bytes").
func Prefix(norm []byte) uint64 {
	var p uint64
	n := min(len(norm), prefixBytes)
	for i := 0; i < n; i++ {
		p |= uint64(norm[i]) << (56 - 8*i)
	}
	return p
}

// CompareRows is the reference semantic comparator: the order the
// normalized encoding must reproduce. It compares column by column with
// the schema's DESC and null placement, treating NaN as equal to NaN and
// greater than every number and -0.0 as equal to +0.0. It reports -1, 0
// or +1 and is the oracle of the differential encoder tests.
func (s *Schema) CompareRows(a, b []Value) int {
	for ci, col := range s.cols {
		c := compareValue(col, a[ci], b[ci])
		if c != 0 {
			if col.Desc {
				return -c
			}
			return c
		}
	}
	return 0
}

// compareValue compares one column value pair ascending, nulls placed per
// the column.
func compareValue(col Column, a, b Value) int {
	if a.null || b.null {
		switch {
		case a.null && b.null:
			return 0
		case a.null:
			if col.NullsLast {
				return 1
			}
			return -1
		default:
			if col.NullsLast {
				return -1
			}
			return 1
		}
	}
	switch col.Type {
	case Int64:
		return cmpOrdered(a.i, b.i)
	case Uint64:
		return cmpOrdered(a.u, b.u)
	case Float64:
		af, bf := a.f, b.f
		an, bn := math.IsNaN(af), math.IsNaN(bf)
		switch {
		case an && bn:
			return 0
		case an:
			return 1
		case bn:
			return -1
		}
		return cmpOrdered(af, bf) // ±0.0 compare equal under ==
	case Bytes:
		return cmpBytes(a.b, b.b)
	}
	return 0
}

// cmpOrdered is three-way comparison for ordered scalars.
func cmpOrdered[T int64 | uint64 | float64](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// cmpBytes is lexicographic byte comparison (bytes.Compare without the
// import, so the package's comparison semantics sit in one file).
func cmpBytes(a, b []byte) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return cmpOrdered(int64(len(a)), int64(len(b)))
}
