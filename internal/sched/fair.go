package sched

import (
	"context"
	"runtime"
	"sync"
	"time"
)

// FairShare arbitrates worker-goroutine execution slots between concurrent
// queries by weighted fair queueing (stride scheduling): every query holds a
// Ticket whose virtual time advances by busy-time divided by weight, and a
// freed slot is always granted to the waiting ticket with the smallest
// virtual time. A query that has consumed little CPU relative to its weight
// therefore preempts one that has consumed much — at morsel granularity under
// the Morsel scheduler and at worker-phase granularity under Static — so no
// client is starved no matter how large its neighbours' joins are.
//
// The zero FairShare is not usable; create one with NewFairShare and share it
// across every Runtime that should be arbitrated together (the serving layer
// owns exactly one per engine). A nil *FairShare or nil *Ticket disables
// gating, so single-query paths pay nothing.
type FairShare struct {
	mu      sync.Mutex
	slots   int // maximum concurrently running execution units
	busy    int // slots currently granted
	waiters []*fairWaiter
	// vfloor is the virtual time of the most recently granted ticket; new
	// tickets start here so a freshly admitted query cannot replay the past
	// and lock out established ones.
	vfloor time.Duration
}

// fairWaiter is one goroutine blocked in Acquire.
type fairWaiter struct {
	t     *Ticket
	ready chan struct{}
}

// Ticket is one query's claim on a FairShare: all worker goroutines of the
// query acquire slots through the same ticket, so the query's total busy time
// — across however many workers it runs — is what its weight is charged
// against.
type Ticket struct {
	fs     *FairShare
	weight int64
	vtime  time.Duration // guarded by fs.mu
}

// NewFairShare creates an arbiter with the given number of concurrent
// execution slots; slots <= 0 selects GOMAXPROCS, matching one slot per
// hardware context.
func NewFairShare(slots int) *FairShare {
	if slots <= 0 {
		slots = runtime.GOMAXPROCS(0)
	}
	return &FairShare{slots: slots}
}

// Slots returns the arbiter's concurrency width.
func (fs *FairShare) Slots() int {
	if fs == nil {
		return 0
	}
	return fs.slots
}

// Ticket issues a ticket with the given weight (<= 0 selects 1). Twice the
// weight earns twice the share of busy slots under contention. Tickets are
// not reusable across arbiters and need no explicit close: a dropped ticket
// simply stops competing.
func (fs *FairShare) Ticket(weight int) *Ticket {
	if fs == nil {
		return nil
	}
	if weight <= 0 {
		weight = 1
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return &Ticket{fs: fs, weight: int64(weight), vtime: fs.vfloor}
}

// Acquire blocks until the ticket is granted an execution slot or the context
// is canceled (returning ctx.Err() without holding a slot). Each successful
// Acquire must be paired with exactly one Release. A nil ticket grants
// immediately.
func (t *Ticket) Acquire(ctx context.Context) error {
	if t == nil {
		return nil
	}
	fs := t.fs
	fs.mu.Lock()
	if fs.busy < fs.slots && len(fs.waiters) == 0 {
		fs.busy++
		fs.mu.Unlock()
		return nil
	}
	w := &fairWaiter{t: t, ready: make(chan struct{})}
	fs.waiters = append(fs.waiters, w)
	fs.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		fs.mu.Lock()
		for i, x := range fs.waiters {
			if x == w {
				fs.waiters = append(fs.waiters[:i], fs.waiters[i+1:]...)
				fs.mu.Unlock()
				return ctx.Err()
			}
		}
		// Lost the race: the grant already happened. Consume it and hand the
		// slot straight on so no slot leaks.
		fs.mu.Unlock()
		<-w.ready
		t.Release(0)
		return ctx.Err()
	}
}

// Release returns the slot and charges the ticket's virtual time with the
// busy duration scaled by 1/weight; the freed slot goes to the waiting ticket
// with the smallest virtual time. No-op on a nil ticket.
func (t *Ticket) Release(busy time.Duration) {
	if t == nil {
		return
	}
	fs := t.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if busy > 0 {
		t.vtime += busy / time.Duration(t.weight)
	}
	fs.busy--
	fs.grant()
}

// grant hands free slots to minimum-virtual-time waiters; the caller holds
// fs.mu.
func (fs *FairShare) grant() {
	for fs.busy < fs.slots && len(fs.waiters) > 0 {
		min := 0
		for i, w := range fs.waiters[1:] {
			if w.t.vtime < fs.waiters[min].t.vtime {
				min = i + 1
			}
		}
		w := fs.waiters[min]
		fs.waiters = append(fs.waiters[:min], fs.waiters[min+1:]...)
		if w.t.vtime > fs.vfloor {
			fs.vfloor = w.t.vtime
		}
		fs.busy++
		close(w.ready)
	}
}
