package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waiting returns the current queue depth, for test synchronization.
func (fs *FairShare) waiting() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.waiters)
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFairShareGrantsLowestVirtualTimeFirst(t *testing.T) {
	fs := NewFairShare(1)
	holder := fs.Ticket(1)
	if err := holder.Acquire(context.Background()); err != nil {
		t.Fatalf("holder acquire: %v", err)
	}

	heavy := fs.Ticket(1)
	light := fs.Ticket(1)
	heavy.vtime = 50 * time.Millisecond // has consumed CPU
	light.vtime = 10 * time.Millisecond // has not

	order := make(chan string, 2)
	var wg sync.WaitGroup
	for _, c := range []struct {
		name string
		tk   *Ticket
	}{{"heavy", heavy}, {"light", light}} {
		wg.Add(1)
		go func(name string, tk *Ticket) {
			defer wg.Done()
			if err := tk.Acquire(context.Background()); err != nil {
				t.Errorf("%s acquire: %v", name, err)
				return
			}
			order <- name
			tk.Release(time.Millisecond)
		}(c.name, c.tk)
	}
	waitFor(t, func() bool { return fs.waiting() == 2 })
	holder.Release(0)
	wg.Wait()
	if first := <-order; first != "light" {
		t.Fatalf("first grant went to %q, want the lowest-virtual-time waiter", first)
	}
}

func TestFairShareWeightScalesCharge(t *testing.T) {
	fs := NewFairShare(2)
	a := fs.Ticket(1)
	b := fs.Ticket(4)
	for _, tk := range []*Ticket{a, b} {
		if err := tk.Acquire(context.Background()); err != nil {
			t.Fatalf("acquire: %v", err)
		}
		tk.Release(100 * time.Millisecond)
	}
	if a.vtime != 100*time.Millisecond {
		t.Fatalf("weight-1 vtime = %v, want 100ms", a.vtime)
	}
	if b.vtime != 25*time.Millisecond {
		t.Fatalf("weight-4 vtime = %v, want 25ms (100ms / weight 4)", b.vtime)
	}
}

func TestFairShareWeightedShareUnderContention(t *testing.T) {
	// One slot, two tickets with weights 1 and 3, two worker goroutines per
	// ticket issuing synthetic equal-cost units: the weight-3 ticket must
	// execute roughly three times as many units. Two goroutines per ticket
	// keep both tickets represented in the wait queue at every grant (the
	// serving shape — each query runs several workers), which is what lets
	// the minimum-virtual-time rule realize the weighted ratio.
	fs := NewFairShare(1)
	gate := fs.Ticket(1)
	if err := gate.Acquire(context.Background()); err != nil {
		t.Fatalf("gate acquire: %v", err)
	}

	const unit = time.Millisecond // synthetic busy time, no real sleeping
	var counts [2]atomic.Int64
	tickets := []*Ticket{fs.Ticket(1), fs.Ticket(3)}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i, tk := range tickets {
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(i int, tk *Ticket) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if err := tk.Acquire(context.Background()); err != nil {
						return
					}
					counts[i].Add(1)
					tk.Release(unit)
				}
			}(i, tk)
		}
	}
	waitFor(t, func() bool { return fs.waiting() == 4 })
	gate.Release(0)
	waitFor(t, func() bool { return counts[0].Load()+counts[1].Load() >= 400 })
	close(stop)
	wg.Wait()

	c0, c1 := counts[0].Load(), counts[1].Load()
	ratio := float64(c1) / float64(c0+1)
	if ratio < 2.0 || ratio > 4.5 {
		t.Fatalf("weight-3 : weight-1 unit ratio = %d:%d (%.2f), want ≈3", c1, c0, ratio)
	}
}

func TestFairShareAcquireCancel(t *testing.T) {
	fs := NewFairShare(1)
	holder := fs.Ticket(1)
	if err := holder.Acquire(context.Background()); err != nil {
		t.Fatalf("holder acquire: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	waiter := fs.Ticket(1)
	go func() { errc <- waiter.Acquire(ctx) }()
	waitFor(t, func() bool { return fs.waiting() == 1 })
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("canceled Acquire = %v, want context.Canceled", err)
	}
	if fs.waiting() != 0 {
		t.Fatal("canceled waiter left in the queue")
	}
	// The slot must still cycle: release and re-acquire.
	holder.Release(0)
	if err := waiter.Acquire(context.Background()); err != nil {
		t.Fatalf("re-acquire after cancel: %v", err)
	}
	waiter.Release(0)
}

func TestFairShareNilDisablesGating(t *testing.T) {
	var fs *FairShare
	tk := fs.Ticket(5)
	if tk != nil {
		t.Fatalf("nil FairShare ticket = %v, want nil", tk)
	}
	if err := tk.Acquire(context.Background()); err != nil {
		t.Fatalf("nil ticket Acquire = %v", err)
	}
	tk.Release(time.Second)
	if fs.Slots() != 0 {
		t.Fatalf("nil Slots = %d", fs.Slots())
	}
}

func TestGatedRuntimesInterleave(t *testing.T) {
	// Two runtimes sharing one arbiter run morsel queues concurrently; both
	// must complete with every task executed exactly once.
	fs := NewFairShare(2)
	var wg sync.WaitGroup
	totals := make([]int64, 2)
	var mu sync.Mutex
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			rt := New(Config{Workers: 2, Gate: fs.Ticket(1 + q)})
			tasks := make([]Task, 40)
			for i := range tasks {
				tasks[i] = Task{Node: -1, Run: func(w *Worker) {
					mu.Lock()
					totals[q]++
					mu.Unlock()
				}}
			}
			rt.RunTasks(context.Background(), "match", tasks)
		}(q)
	}
	wg.Wait()
	if totals[0] != 40 || totals[1] != 40 {
		t.Fatalf("task totals = %v, want 40 each", totals)
	}
}

func TestGatedPhaseRespectsCancel(t *testing.T) {
	fs := NewFairShare(1)
	holder := fs.Ticket(1)
	if err := holder.Acquire(context.Background()); err != nil {
		t.Fatalf("holder acquire: %v", err)
	}
	defer holder.Release(0)

	ctx, cancel := context.WithCancel(context.Background())
	rt := New(Config{Workers: 2, Gate: fs.Ticket(1)})
	done := make(chan struct{})
	var ran atomic.Int64
	go func() {
		rt.Phase(ctx, "blocked", func(ctx context.Context, w *Worker) {
			ran.Add(1)
		})
		close(done)
	}()
	waitFor(t, func() bool { return fs.waiting() > 0 })
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("gated Phase did not return after cancel")
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("phase fn ran %d times despite never being granted a slot", n)
	}
}
