// Package sched is the shared parallel runtime of the join algorithms: one
// place that owns worker goroutines, phase barriers, per-worker timing and
// NUMA bookkeeping, and cancellation checks, so that the individual
// algorithms contain only their data movement and kernels.
//
// The runtime offers two execution primitives:
//
//   - Phase runs one function per worker and waits for all of them — the
//     barrier-only synchronization the paper's commandment C3 prescribes.
//     Work is assigned statically (worker w processes chunk/run w), which is
//     the paper-faithful Static scheduling mode.
//   - RunTasks drains a queue of morsels: small, independent units of join
//     work that idle workers steal dynamically. Workers prefer morsels whose
//     data lives on their own NUMA node and steal remote ones only when
//     their node's queue is empty. This is the Morsel scheduling mode; it
//     trades a single shared queue (a deliberate, small C3 violation) for
//     resilience against estimation errors and value skew that static
//     splitters cannot fully balance.
//
// Both primitives record per-worker phase durations and feed the per-worker
// breakdowns and NUMA statistics of the Result.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/numa"
	"repro/internal/result"
)

// Panic policy. A panic that reaches a worker goroutine would kill the whole
// process, so the runtime draws the failure domain at the query: Phase and
// RunTasks recover panics, capture the stack, poison the barrier (canceling
// the phase-scoped context so sibling workers unwind at their existing
// cancellation checks), and surface the first panic as a *PanicError from
// Runtime.Err, which the algorithms turn into a returned error at the next
// phase boundary. Conditions a caller can trigger through the public API —
// unknown algorithms or schedulers, invalid join kinds, out-of-range worker
// counts — must be rejected with returned errors by exec's plan validation
// before execution starts; `panic` below that boundary is reserved for
// genuine programmer-error invariants (histogram length mismatches, split
// counts the normalization layer guarantees, unreachable switch arms), and
// this recovery layer is the backstop that keeps even those contained to the
// query that hit them.

// Mode selects how join-phase work is mapped onto workers.
type Mode int

const (
	// Static assigns work up front — worker w owns run/chunk w — and
	// synchronizes only at phase barriers, exactly as the paper prescribes
	// (commandment C3). Load balance rests entirely on the histogram/CDF
	// splitters. This is the default.
	Static Mode = iota
	// Morsel splits the match phase into small (private-segment,
	// public-run) morsels that idle workers steal from a locality-aware
	// queue. Estimation errors and value skew no longer leave workers
	// idle, at the price of one shared queue (a small, deliberate C3
	// violation confined to task dispatch).
	Morsel
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Static:
		return "static"
	case Morsel:
		return "morsel"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Valid reports whether m is a known scheduling mode.
func (m Mode) Valid() bool { return m == Static || m == Morsel }

// ParseMode converts a scheduling-mode name into a Mode. Matching is
// case-insensitive, so the String() forms round-trip.
func ParseMode(name string) (Mode, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "static":
		return Static, nil
	case "morsel", "morsels", "dynamic":
		return Morsel, nil
	default:
		return 0, fmt.Errorf("sched: unknown scheduling mode %q", name)
	}
}

// DefaultMorselSize is the default number of tuples per morsel. 8192 tuples
// (128 KiB of 16-byte tuples) amortize the dispatch cost while still
// producing enough morsels to balance skewed runs.
const DefaultMorselSize = 8192

// Config configures a Runtime.
type Config struct {
	// Workers is the degree of parallelism; 0 selects GOMAXPROCS.
	Workers int
	// Topology is the simulated NUMA topology workers are spread over; the
	// zero value selects the default 4-node × 8-core machine.
	Topology numa.Topology
	// TrackNUMA equips every worker with a NUMA access tracker.
	TrackNUMA bool
	// Gate, when non-nil, makes every execution unit — a whole worker phase
	// under Static, each morsel under Morsel — acquire a fair-share slot from
	// the ticket's arbiter before running, so concurrent queries sharing one
	// FairShare interleave by weighted fair queueing instead of FIFO.
	Gate *Ticket
	// Label identifies the query in PanicError reports (typically the
	// service's per-query label); empty is fine for standalone joins.
	Label string
	// Faults, when non-nil, arms deterministic fault injection inside the
	// runtime's workers (WorkerPanic, MorselStall).
	Faults *faultinject.Set
}

// PanicError reports a panic recovered during a query's execution: which
// query, which phase, which worker (or -1 for the coordinating goroutine),
// the recovered value and the stack captured at the panic site. It is the
// error the engine returns for the panicking query; sibling queries and the
// process are unaffected.
type PanicError struct {
	Query  string
	Phase  string
	Worker int
	Value  any
	Stack  []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	who := fmt.Sprintf("worker %d", e.Worker)
	if e.Worker < 0 {
		who = "coordinator"
	}
	query := e.Query
	if query == "" {
		query = "query"
	}
	return fmt.Sprintf("sched: recovered panic on %s in phase %q of %s: %v", who, e.Phase, query, e.Value)
}

// Unwrap exposes the panic value when it is itself an error (injected faults
// are), so errors.Is/As reach through.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Recovered wraps a value recovered outside the runtime's workers — the
// coordinator-side recover in exec uses it with worker -1. It captures the
// stack, so it must be called directly from the deferred recover.
func Recovered(query, phase string, worker int, v any) *PanicError {
	return &PanicError{Query: query, Phase: phase, Worker: worker, Value: v, Stack: debug.Stack()}
}

// Worker is the per-worker state the runtime hands to phase functions and
// tasks: identity, NUMA home node, the access tracker (when enabled), and
// the per-phase time breakdown.
type Worker struct {
	id        int
	node      int
	tracker   *numa.Tracker
	phaseTime map[string]time.Duration
}

// ID returns the worker index in [0, Workers).
func (w *Worker) ID() int { return w.id }

// Node returns the worker's home NUMA node.
func (w *Worker) Node() int { return w.node }

// Tracker returns the worker's NUMA access tracker, or nil when tracking is
// disabled.
func (w *Worker) Tracker() *numa.Tracker { return w.tracker }

// Record adds a duration to the worker's breakdown for the named phase. The
// runtime calls it automatically for Phase and RunTasks; algorithms may call
// it for work they time themselves. It must only be called from the worker's
// own goroutine (or after the phase barrier).
func (w *Worker) Record(phase string, d time.Duration) {
	w.phaseTime[phase] += d
}

// PhaseTime returns the accumulated duration of the named phase.
func (w *Worker) PhaseTime(phase string) time.Duration { return w.phaseTime[phase] }

// Runtime owns the worker pool of one join execution. It is created per join
// (workers are plain goroutines, so creation is cheap) and collects the
// per-worker timing and NUMA state that the join's Result reports.
type Runtime struct {
	workers int
	topo    numa.Topology
	states  []*Worker
	gate    *Ticket
	label   string
	faults  *faultinject.Set

	failMu  sync.Mutex
	failure *PanicError
}

// New creates a runtime with one worker state per worker.
func New(cfg Config) *Runtime {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	topo := cfg.Topology
	if topo.Nodes == 0 {
		topo = numa.DefaultTopology()
	}
	rt := &Runtime{
		workers: workers,
		topo:    topo,
		states:  make([]*Worker, workers),
		gate:    cfg.Gate,
		label:   cfg.Label,
		faults:  cfg.Faults,
	}
	for w := 0; w < workers; w++ {
		rt.states[w] = &Worker{
			id:        w,
			node:      topo.NodeOfWorker(w),
			phaseTime: make(map[string]time.Duration),
		}
		if cfg.TrackNUMA {
			rt.states[w].tracker = numa.NewTracker(topo, w)
		}
	}
	return rt
}

// Workers returns the degree of parallelism.
func (rt *Runtime) Workers() int { return rt.workers }

// Worker returns the state of worker w.
func (rt *Runtime) Worker(w int) *Worker { return rt.states[w] }

// Err returns the first panic recovered from any worker of this runtime as a
// *PanicError, or nil. Once non-nil the runtime is poisoned: subsequent
// Phase and RunTasks calls return without running anything, so the algorithm
// falls through to its next phase-boundary error check.
func (rt *Runtime) Err() error {
	rt.failMu.Lock()
	defer rt.failMu.Unlock()
	if rt.failure == nil {
		return nil
	}
	return rt.failure
}

// poison records the first recovered panic and cancels the phase so sibling
// workers unwind. It must be called from the panicking goroutine's deferred
// recover so the stack identifies the panic site.
func (rt *Runtime) poison(phase string, worker int, v any, cancel context.CancelFunc) {
	stack := debug.Stack()
	rt.failMu.Lock()
	if rt.failure == nil {
		rt.failure = &PanicError{Query: rt.label, Phase: phase, Worker: worker, Value: v, Stack: stack}
	}
	rt.failMu.Unlock()
	cancel()
}

// Canceled reports whether the context has been canceled, without blocking.
func Canceled(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

// Phase runs fn once per worker concurrently and waits for all of them: a
// phase barrier. Each worker's elapsed time is recorded under the phase name
// (calling Phase repeatedly with the same name accumulates). Workers whose
// fn has not started when the context is canceled skip it; fn is expected to
// poll Canceled at its own chunk granularity. The returned duration is the
// wall-clock time of the whole phase.
func (rt *Runtime) Phase(ctx context.Context, name string, fn func(ctx context.Context, w *Worker)) time.Duration {
	return result.StopwatchPhase(func() {
		if rt.Err() != nil {
			return // poisoned by an earlier phase; nothing more may run
		}
		// Each phase gets a derived context so that poisoning cancels only
		// this query's siblings, not the caller's context.
		pctx, cancel := context.WithCancel(ctx)
		defer cancel()
		var wg sync.WaitGroup
		for _, w := range rt.states {
			wg.Add(1)
			go func(w *Worker) {
				defer wg.Done()
				if Canceled(pctx) {
					return
				}
				if err := rt.gate.Acquire(pctx); err != nil {
					return
				}
				t0 := time.Now()
				// The gate slot is released in the same deferred function
				// that recovers: a panicking worker must not strand a
				// fair-share slot, or sibling queries' workers block forever.
				defer func() {
					d := time.Since(t0)
					rt.gate.Release(d)
					if r := recover(); r != nil {
						rt.poison(name, w.id, r, cancel)
						return
					}
					w.Record(name, d)
				}()
				rt.faults.Panic(faultinject.WorkerPanic)
				fn(pctx, w)
			}(w)
		}
		wg.Wait()
	})
}

// Task is one morsel of join work: an independent unit any worker may
// execute on behalf of the data's owner.
type Task struct {
	// Node is the NUMA node the task's data (typically its private-run
	// segment) lives on; workers prefer tasks local to their own node and
	// steal remote ones only when idle. A negative node means no
	// preference.
	Node int
	// Run executes the task. It runs on the stealing worker's goroutine
	// and must confine all mutable state to that worker (sink writers,
	// counters and trackers are per-worker, so indexing them by w.ID() is
	// safe).
	Run func(w *Worker)
}

// RunTasks drains the task queue with all workers and waits until every task
// has run (or the context is canceled): the morsel-driven counterpart of
// Phase. Each worker's busy time — the sum of its executed task durations —
// is recorded under the phase name, which is what exposes how evenly the
// queue balanced the phase. The returned duration is the wall-clock time of
// the whole phase.
func (rt *Runtime) RunTasks(ctx context.Context, name string, tasks []Task) time.Duration {
	q := newTaskQueue(rt.topo.Nodes, tasks)
	return result.StopwatchPhase(func() {
		if rt.Err() != nil {
			return // poisoned by an earlier phase; nothing more may run
		}
		pctx, cancel := context.WithCancel(ctx)
		defer cancel()
		var wg sync.WaitGroup
		for _, w := range rt.states {
			wg.Add(1)
			go func(w *Worker) {
				defer wg.Done()
				var busy time.Duration
				defer func() {
					w.Record(name, busy)
					if r := recover(); r != nil {
						rt.poison(name, w.id, r, cancel)
					}
				}()
				for {
					if Canceled(pctx) {
						break
					}
					if err := rt.gate.Acquire(pctx); err != nil {
						break
					}
					task, ok := q.pop(w.node)
					if !ok {
						rt.gate.Release(0)
						break
					}
					rt.faults.Stall(faultinject.MorselStall)
					t0 := time.Now()
					// The inner closure releases the gate slot even when the
					// task panics; the panic then unwinds into the recover
					// above, which poisons the phase.
					func() {
						defer func() {
							d := time.Since(t0)
							busy += d
							rt.gate.Release(d)
						}()
						rt.faults.Panic(faultinject.WorkerPanic)
						task.Run(w)
					}()
					// Yield between morsels so that co-scheduled workers
					// get to steal even when the machine has fewer cores
					// than workers; without this, one goroutine could
					// drain the whole queue between preemption points.
					runtime.Gosched()
				}
			}(w)
		}
		wg.Wait()
	})
}

// ForEachSegment invokes fn(lo, hi) for every contiguous segment of at most
// size elements of an n-element sequence, in order. It is the shared
// morsel-slicing arithmetic of the task builders; a non-positive size
// selects DefaultMorselSize.
func ForEachSegment(n, size int, fn func(lo, hi int)) {
	if size <= 0 {
		size = DefaultMorselSize
	}
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	}
}

// Breakdowns converts the per-worker phase times into the result
// representation, preserving the given phase order. Callers fill in the
// per-worker work counters themselves.
func (rt *Runtime) Breakdowns(phaseOrder []string) []result.WorkerBreakdown {
	out := make([]result.WorkerBreakdown, rt.workers)
	for i, w := range rt.states {
		bd := result.WorkerBreakdown{Worker: w.id}
		for _, name := range phaseOrder {
			bd.Phases = append(bd.Phases, result.Phase{Name: name, Duration: w.phaseTime[name]})
		}
		out[i] = bd
	}
	return out
}

// NUMAStats merges the access statistics of all workers; it returns the zero
// value when tracking is disabled.
func (rt *Runtime) NUMAStats() numa.AccessStats {
	trackers := make([]*numa.Tracker, rt.workers)
	for i, w := range rt.states {
		trackers[i] = w.tracker
	}
	return numa.MergeStats(trackers)
}

// taskQueue is the locality-aware morsel queue: one FIFO list per NUMA node
// plus one for tasks without placement. A single mutex guards all lists —
// morsels are thousands of tuples of work, so the queue is not a hot spot,
// and the simplicity keeps the dispatch logic obviously correct.
type taskQueue struct {
	mu sync.Mutex
	// byNode[n] holds the pending tasks preferring node n; the final slot
	// holds tasks with no preference.
	byNode    [][]Task
	remaining int
}

// newTaskQueue buckets the tasks by preferred node.
func newTaskQueue(nodes int, tasks []Task) *taskQueue {
	if nodes < 1 {
		nodes = 1
	}
	q := &taskQueue{byNode: make([][]Task, nodes+1), remaining: len(tasks)}
	for _, t := range tasks {
		slot := nodes
		if t.Node >= 0 && t.Node < nodes {
			slot = t.Node
		}
		q.byNode[slot] = append(q.byNode[slot], t)
	}
	return q
}

// pop removes the next task for a worker homed on the given node: local
// tasks first, then unplaced tasks, then stealing from the other nodes in
// round-robin order. It returns false when the queue is empty.
func (q *taskQueue) pop(node int) (Task, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.remaining == 0 {
		return Task{}, false
	}
	nodes := len(q.byNode) - 1
	if node < 0 || node >= nodes {
		node = 0
	}
	if t, ok := q.popFrom(node); ok {
		return t, true
	}
	if t, ok := q.popFrom(nodes); ok { // unplaced tasks
		return t, true
	}
	for i := 1; i < nodes; i++ {
		if t, ok := q.popFrom((node + i) % nodes); ok {
			return t, true
		}
	}
	return Task{}, false
}

// popFrom removes the head of one bucket; the caller holds the lock.
func (q *taskQueue) popFrom(slot int) (Task, bool) {
	list := q.byNode[slot]
	if len(list) == 0 {
		return Task{}, false
	}
	t := list[0]
	q.byNode[slot] = list[1:]
	q.remaining--
	return t, true
}
