package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/numa"
)

func TestModeString(t *testing.T) {
	if Static.String() != "static" || Morsel.String() != "morsel" {
		t.Fatalf("unexpected mode strings: %v %v", Static, Morsel)
	}
	if Mode(7).String() != "Mode(7)" {
		t.Fatalf("unknown mode should render numerically, got %v", Mode(7))
	}
	if !Static.Valid() || !Morsel.Valid() || Mode(7).Valid() {
		t.Fatal("Valid misclassifies modes")
	}
}

func TestParseMode(t *testing.T) {
	for name, want := range map[string]Mode{
		"static": Static, "Static": Static, " STATIC ": Static,
		"morsel": Morsel, "morsels": Morsel, "dynamic": Morsel,
	} {
		got, err := ParseMode(name)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseMode("nope"); err == nil {
		t.Fatal("ParseMode should reject unknown names")
	}
	// String() forms round-trip.
	for _, m := range []Mode{Static, Morsel} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Fatalf("round-trip of %v failed: %v, %v", m, got, err)
		}
	}
}

func TestNewDefaults(t *testing.T) {
	rt := New(Config{})
	if rt.Workers() <= 0 {
		t.Fatal("worker default missing")
	}
	rt = New(Config{Workers: 3})
	if rt.Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", rt.Workers())
	}
	if rt.Worker(0).Tracker() != nil {
		t.Fatal("tracker must be nil when tracking is disabled")
	}
	rt = New(Config{Workers: 2, TrackNUMA: true})
	if rt.Worker(1).Tracker() == nil {
		t.Fatal("tracker missing when tracking is enabled")
	}
}

func TestPhaseRunsEveryWorkerAndRecords(t *testing.T) {
	rt := New(Config{Workers: 4})
	var ran [4]int32
	d := rt.Phase(context.Background(), "p", func(_ context.Context, w *Worker) {
		atomic.AddInt32(&ran[w.ID()], 1)
		time.Sleep(time.Millisecond)
	})
	for w := 0; w < 4; w++ {
		if ran[w] != 1 {
			t.Fatalf("worker %d ran %d times", w, ran[w])
		}
		if rt.Worker(w).PhaseTime("p") <= 0 {
			t.Fatalf("worker %d recorded no time", w)
		}
	}
	if d <= 0 {
		t.Fatal("phase duration missing")
	}
	// Repeated phases accumulate under the same name.
	before := rt.Worker(0).PhaseTime("p")
	rt.Phase(context.Background(), "p", func(_ context.Context, w *Worker) {
		time.Sleep(time.Millisecond)
	})
	if rt.Worker(0).PhaseTime("p") <= before {
		t.Fatal("phase time did not accumulate")
	}
}

func TestPhaseIsABarrier(t *testing.T) {
	rt := New(Config{Workers: 8})
	var inFlight, maxSeen int32
	rt.Phase(context.Background(), "p", func(_ context.Context, w *Worker) {
		n := atomic.AddInt32(&inFlight, 1)
		for {
			m := atomic.LoadInt32(&maxSeen)
			if n <= m || atomic.CompareAndSwapInt32(&maxSeen, m, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt32(&inFlight, -1)
	})
	if got := atomic.LoadInt32(&inFlight); got != 0 {
		t.Fatalf("%d workers still in flight after the barrier", got)
	}
	if maxSeen < 2 {
		t.Skipf("no concurrency observed (GOMAXPROCS too low)")
	}
}

func TestPhaseSkipsWorkOnCanceledContext(t *testing.T) {
	rt := New(Config{Workers: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int32
	rt.Phase(ctx, "p", func(_ context.Context, w *Worker) {
		atomic.AddInt32(&ran, 1)
	})
	if ran != 0 {
		t.Fatalf("%d workers ran despite canceled context", ran)
	}
}

func TestRunTasksExecutesEveryTaskExactlyOnce(t *testing.T) {
	rt := New(Config{Workers: 4, Topology: numa.Topology{Nodes: 2, CoresPerNode: 2}})
	const n = 100
	counts := make([]int32, n)
	tasks := make([]Task, n)
	for i := range tasks {
		i := i
		tasks[i] = Task{Node: i % 3, Run: func(w *Worker) { atomic.AddInt32(&counts[i], 1) }}
	}
	rt.RunTasks(context.Background(), "join", tasks)
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("task %d executed %d times", i, c)
		}
	}
}

func TestRunTasksRecordsBusyTimePerWorker(t *testing.T) {
	rt := New(Config{Workers: 2})
	tasks := make([]Task, 8)
	for i := range tasks {
		tasks[i] = Task{Node: -1, Run: func(w *Worker) { time.Sleep(time.Millisecond) }}
	}
	rt.RunTasks(context.Background(), "join", tasks)
	var total time.Duration
	for w := 0; w < 2; w++ {
		total += rt.Worker(w).PhaseTime("join")
	}
	if total < 8*time.Millisecond {
		t.Fatalf("recorded busy time %v, want >= 8ms", total)
	}
}

func TestRunTasksLocalityPreference(t *testing.T) {
	// One worker per node; every task is pinned to a node. With as many
	// tasks per node and no contention for the queue at start, the first
	// task every worker executes must be a local one.
	topo := numa.Topology{Nodes: 2, CoresPerNode: 1}
	rt := New(Config{Workers: 2, Topology: topo})
	var mu sync.Mutex
	firstNode := map[int]int{}
	var tasks []Task
	for i := 0; i < 16; i++ {
		node := i % 2
		tasks = append(tasks, Task{Node: node, Run: func(w *Worker) {
			mu.Lock()
			if _, seen := firstNode[w.ID()]; !seen {
				firstNode[w.ID()] = node
			}
			mu.Unlock()
		}})
	}
	rt.RunTasks(context.Background(), "join", tasks)
	mu.Lock()
	defer mu.Unlock()
	for w, node := range firstNode {
		if want := topo.NodeOfWorker(w); node != want {
			t.Fatalf("worker %d started with a task of node %d, want local node %d", w, node, want)
		}
	}
}

func TestRunTasksStealsRemoteTasks(t *testing.T) {
	// All tasks pinned to node 0, but workers live on 2 nodes: the node-1
	// workers must steal, and every task must still run exactly once.
	rt := New(Config{Workers: 4, Topology: numa.Topology{Nodes: 2, CoresPerNode: 2}})
	var executed int32
	tasks := make([]Task, 64)
	for i := range tasks {
		tasks[i] = Task{Node: 0, Run: func(w *Worker) {
			atomic.AddInt32(&executed, 1)
			time.Sleep(100 * time.Microsecond)
		}}
	}
	rt.RunTasks(context.Background(), "join", tasks)
	if executed != 64 {
		t.Fatalf("executed %d tasks, want 64", executed)
	}
}

func TestRunTasksStopsOnCancellation(t *testing.T) {
	rt := New(Config{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var executed int32
	tasks := make([]Task, 1000)
	for i := range tasks {
		tasks[i] = Task{Node: -1, Run: func(w *Worker) {
			if atomic.AddInt32(&executed, 1) == 4 {
				cancel()
			}
		}}
	}
	rt.RunTasks(ctx, "join", tasks)
	if got := atomic.LoadInt32(&executed); got >= 1000 {
		t.Fatalf("cancellation did not stop the queue (executed %d)", got)
	}
}

func TestForEachSegment(t *testing.T) {
	collect := func(n, size int) [][2]int {
		var got [][2]int
		ForEachSegment(n, size, func(lo, hi int) { got = append(got, [2]int{lo, hi}) })
		return got
	}
	if got := collect(0, 4); len(got) != 0 {
		t.Fatalf("empty sequence produced segments: %v", got)
	}
	if got := collect(10, 4); len(got) != 3 || got[0] != [2]int{0, 4} || got[2] != [2]int{8, 10} {
		t.Fatalf("segments of (10, 4) = %v", got)
	}
	if got := collect(4, 100); len(got) != 1 || got[0] != [2]int{0, 4} {
		t.Fatalf("oversized segment size mishandled: %v", got)
	}
	// A non-positive size falls back to the default rather than looping
	// forever or panicking.
	if got := collect(10, 0); len(got) != 1 || got[0] != [2]int{0, 10} {
		t.Fatalf("zero segment size mishandled: %v", got)
	}
}

func TestBreakdownsPreservePhaseOrder(t *testing.T) {
	rt := New(Config{Workers: 2})
	rt.Phase(context.Background(), "b", func(_ context.Context, w *Worker) {})
	rt.Phase(context.Background(), "a", func(_ context.Context, w *Worker) {})
	bds := rt.Breakdowns([]string{"a", "b"})
	if len(bds) != 2 {
		t.Fatalf("got %d breakdowns, want 2", len(bds))
	}
	for _, bd := range bds {
		if len(bd.Phases) != 2 || bd.Phases[0].Name != "a" || bd.Phases[1].Name != "b" {
			t.Fatalf("phase order not preserved: %+v", bd.Phases)
		}
	}
}

func TestNUMAStatsMergesTrackers(t *testing.T) {
	rt := New(Config{Workers: 2, TrackNUMA: true})
	rt.Phase(context.Background(), "p", func(_ context.Context, w *Worker) {
		w.Tracker().SeqRead(w.Node(), 10)
	})
	stats := rt.NUMAStats()
	if stats.TotalAccesses() != 20 {
		t.Fatalf("merged accesses = %d, want 20", stats.TotalAccesses())
	}
	// Without tracking, stats must be zero rather than panicking.
	rt = New(Config{Workers: 2})
	if got := rt.NUMAStats(); got.TotalAccesses() != 0 {
		t.Fatalf("untracked runtime reported accesses: %+v", got)
	}
}
