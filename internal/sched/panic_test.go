package sched

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
)

func TestPhaseRecoversPanic(t *testing.T) {
	rt := New(Config{Workers: 4, Label: "q1"})
	var ran atomic.Int32
	rt.Phase(context.Background(), "build", func(ctx context.Context, w *Worker) {
		ran.Add(1)
		if w.ID() == 2 {
			panic("boom")
		}
	})
	err := rt.Err()
	if err == nil {
		t.Fatal("panic was not surfaced through Err")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Err() = %T, want *PanicError", err)
	}
	if pe.Query != "q1" || pe.Phase != "build" || pe.Worker != 2 || pe.Value != "boom" {
		t.Fatalf("unexpected PanicError: %+v", pe)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "panic_test") {
		t.Fatal("PanicError did not capture the panicking stack")
	}
	// Siblings that had not yet entered fn when the poison cancellation
	// landed short-circuit by design, so anywhere from 1 to 4 workers ran.
	if n := ran.Load(); n < 1 || n > 4 {
		t.Fatalf("%d workers ran", n)
	}
}

func TestPoisonedRuntimeShortCircuits(t *testing.T) {
	rt := New(Config{Workers: 2})
	rt.Phase(context.Background(), "p1", func(ctx context.Context, w *Worker) {
		panic("first")
	})
	var later atomic.Int32
	rt.Phase(context.Background(), "p2", func(ctx context.Context, w *Worker) {
		later.Add(1)
	})
	rt.RunTasks(context.Background(), "p3", []Task{{Node: -1, Run: func(w *Worker) { later.Add(1) }}})
	if later.Load() != 0 {
		t.Fatalf("poisoned runtime ran %d later units of work", later.Load())
	}
	// The first failure is kept, not overwritten.
	var pe *PanicError
	if !errors.As(rt.Err(), &pe) || pe.Phase != "p1" {
		t.Fatalf("poisoned runtime reports %v, want phase p1 failure", rt.Err())
	}
}

func TestPhasePanicCancelsSiblings(t *testing.T) {
	rt := New(Config{Workers: 4})
	var sawCancel atomic.Int32
	var entered sync.WaitGroup
	entered.Add(4)
	rt.Phase(context.Background(), "p", func(ctx context.Context, w *Worker) {
		// Hold every worker inside the phase until all four have entered,
		// so none short-circuits on the poison check before running fn.
		entered.Done()
		entered.Wait()
		if w.ID() == 0 {
			panic("die")
		}
		// Siblings unwind via the poisoned phase context at their next
		// cancellation check, exactly like a user cancellation.
		select {
		case <-ctx.Done():
			sawCancel.Add(1)
		case <-time.After(5 * time.Second):
			t.Error("sibling was not canceled after a panic")
		}
	})
	if sawCancel.Load() != 3 {
		t.Fatalf("%d of 3 siblings observed the poison cancellation", sawCancel.Load())
	}
}

func TestPhasePoisonDoesNotCancelCaller(t *testing.T) {
	rt := New(Config{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rt.Phase(ctx, "p", func(ctx context.Context, w *Worker) { panic("contained") })
	if ctx.Err() != nil {
		t.Fatal("poisoning a phase canceled the caller's context")
	}
}

func TestRunTasksRecoversPanicAndStopsQueue(t *testing.T) {
	rt := New(Config{Workers: 2, Label: "q7"})
	var done atomic.Int32
	tasks := make([]Task, 64)
	for i := range tasks {
		i := i
		tasks[i] = Task{Node: -1, Run: func(w *Worker) {
			if i == 5 {
				panic(errors.New("task exploded"))
			}
			done.Add(1)
			time.Sleep(100 * time.Microsecond)
		}}
	}
	rt.RunTasks(context.Background(), "probe", tasks)
	var pe *PanicError
	if !errors.As(rt.Err(), &pe) {
		t.Fatalf("Err() = %v, want *PanicError", rt.Err())
	}
	if pe.Query != "q7" || pe.Phase != "probe" {
		t.Fatalf("unexpected PanicError: %+v", pe)
	}
	// Unwrap reaches the error the task panicked with.
	if !errors.Is(rt.Err(), pe.Value.(error)) {
		t.Fatal("PanicError does not unwrap to the panic value")
	}
	if int(done.Load()) >= len(tasks) {
		t.Fatal("queue ran every task despite the poison cancellation")
	}
}

func TestPanicReleasesGateSlots(t *testing.T) {
	fs := NewFairShare(2)
	rt := New(Config{Workers: 4, Gate: fs.Ticket(1)})
	rt.Phase(context.Background(), "p", func(ctx context.Context, w *Worker) {
		panic("slot test")
	})
	// If the panicking workers leaked their slots, this second runtime's
	// workers would block in Acquire forever.
	rt2 := New(Config{Workers: 4, Gate: fs.Ticket(1)})
	donech := make(chan struct{})
	go func() {
		rt2.RunTasks(context.Background(), "after", []Task{
			{Node: -1, Run: func(w *Worker) {}},
			{Node: -1, Run: func(w *Worker) {}},
		})
		close(donech)
	}()
	select {
	case <-donech:
	case <-time.After(5 * time.Second):
		t.Fatal("gate slots leaked across a panicking phase")
	}
}

func TestInjectedWorkerPanicIsTyped(t *testing.T) {
	f := faultinject.New(1).Enable(faultinject.WorkerPanic, 1).Limit(faultinject.WorkerPanic, 1)
	rt := New(Config{Workers: 2, Label: "q9", Faults: f})
	rt.Phase(context.Background(), "p", func(ctx context.Context, w *Worker) {})
	var inj *faultinject.Injected
	if !errors.As(rt.Err(), &inj) || inj.Point != faultinject.WorkerPanic {
		t.Fatalf("Err() = %v, want wrapped Injected{WorkerPanic}", rt.Err())
	}
	if f.Fired(faultinject.WorkerPanic) != 1 {
		t.Fatalf("fired %d times, want 1", f.Fired(faultinject.WorkerPanic))
	}
}
