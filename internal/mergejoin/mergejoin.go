// Package mergejoin implements the merge-join kernel used by all MPSM
// variants: joining one sorted private run against one or more sorted public
// runs, emitting every matching (r, s) tuple pair to a consumer.
//
// The kernel handles duplicate keys on both sides (n:m match groups), uses
// interpolation search to skip directly to the relevant start of each public
// run (Section 3.2.2 of the paper), and never materializes intermediate
// results unless the consumer chooses to.
package mergejoin

import (
	"context"

	"repro/internal/relation"
	"repro/internal/search"
)

// Canceled reports whether the context has been canceled, without blocking.
// It is the cancellation poll the join loops of this repository share: the
// MPSM merge loops, the hash-join build/probe loops and the phase
// orchestration all call it at chunk boundaries.
func Canceled(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

// Consumer receives every joined tuple pair. Implementations decide whether
// to aggregate, count, or materialize. Consumers are not required to be safe
// for concurrent use; MPSM gives every worker its own consumer and merges
// results afterwards.
type Consumer interface {
	// Consume is called once per matching (r, s) pair.
	Consume(r, s relation.Tuple)
}

// MaxAggregate implements the paper's evaluation query
//
//	SELECT max(R.payload + S.payload) FROM R, S WHERE R.joinkey = S.joinkey
//
// It also counts the number of joined pairs, which tests use to validate join
// cardinality across algorithms.
type MaxAggregate struct {
	// Count is the number of result tuples consumed.
	Count uint64
	// Max is the largest R.payload + S.payload seen; only valid if Count > 0.
	Max uint64
}

// Consume implements Consumer.
func (m *MaxAggregate) Consume(r, s relation.Tuple) {
	sum := r.Payload + s.Payload
	if m.Count == 0 || sum > m.Max {
		m.Max = sum
	}
	m.Count++
}

// Merge folds another partial aggregate into m. Workers aggregate locally and
// the coordinator merges, so no synchronization is needed during the join.
func (m *MaxAggregate) Merge(other MaxAggregate) {
	if other.Count == 0 {
		return
	}
	if m.Count == 0 || other.Max > m.Max {
		m.Max = other.Max
	}
	m.Count += other.Count
}

// JoinedTuple is one materialized join result.
type JoinedTuple struct {
	Key      uint64
	RPayload uint64
	SPayload uint64
}

// Materializer collects all joined pairs. It is intended for tests and small
// examples; production queries should aggregate instead.
type Materializer struct {
	Out []JoinedTuple
}

// Consume implements Consumer.
func (m *Materializer) Consume(r, s relation.Tuple) {
	m.Out = append(m.Out, JoinedTuple{Key: r.Key, RPayload: r.Payload, SPayload: s.Payload})
}

// Counter counts joined pairs without retaining them.
type Counter struct {
	Count uint64
}

// Consume implements Consumer.
func (c *Counter) Consume(r, s relation.Tuple) { c.Count++ }

// Join merge joins two key-sorted tuple slices and feeds every matching pair
// to the consumer. Both inputs must be sorted by ascending key; duplicate keys
// on either side produce the full cross product of their match groups.
func Join(private, public []relation.Tuple, out Consumer) {
	i, j := 0, 0
	for i < len(private) && j < len(public) {
		rk, sk := private[i].Key, public[j].Key
		switch {
		case rk < sk:
			i++
		case rk > sk:
			j++
		default:
			iEnd := i + 1
			for iEnd < len(private) && private[iEnd].Key == rk {
				iEnd++
			}
			jEnd := j + 1
			for jEnd < len(public) && public[jEnd].Key == rk {
				jEnd++
			}
			for a := i; a < iEnd; a++ {
				for b := j; b < jEnd; b++ {
					out.Consume(private[a], public[b])
				}
			}
			i, j = iEnd, jEnd
		}
	}
}

// JoinWithSkip is Join preceded by interpolation searches that narrow the
// public run to the key range actually covered by the private run. This is
// the paper's phase-4 optimization: after range partitioning, a private run
// covers only a fraction of the key domain, so most of every public run can
// be skipped without comparisons.
//
// It returns the number of public tuples that were actually scanned, which the
// benchmark harness uses to demonstrate the |S|/T vs |S| complexity difference
// between P-MPSM and B-MPSM.
func JoinWithSkip(private, public []relation.Tuple, out Consumer) (publicScanned int) {
	if len(private) == 0 || len(public) == 0 {
		return 0
	}
	loKey := private[0].Key
	hiKey := private[len(private)-1].Key
	start := search.LowerBound(public, loKey)
	end := search.UpperBound(public, hiKey)
	if start >= end {
		return 0
	}
	Join(private, public[start:end], out)
	return end - start
}

// JoinAgainstRuns merge joins the private run against every public run in
// turn, using JoinWithSkip for each. It returns the total number of public
// tuples scanned across all runs.
func JoinAgainstRuns(private []relation.Tuple, publicRuns []*relation.Run, out Consumer) (publicScanned int) {
	return joinAgainstRunsCtx(context.Background(), private, publicRuns, out)
}

// joinAgainstRunsCtx is JoinAgainstRuns with a cancellation check between
// public runs.
func joinAgainstRunsCtx(ctx context.Context, private []relation.Tuple, publicRuns []*relation.Run, out Consumer) (publicScanned int) {
	for _, s := range publicRuns {
		if Canceled(ctx) {
			return publicScanned
		}
		publicScanned += JoinWithSkip(private, s.Tuples, out)
	}
	return publicScanned
}

// ReferenceJoin is a deliberately simple hash-based equi-join used as the
// correctness oracle in tests: it requires no sort order and no partitioning,
// and therefore cannot share bugs with the algorithms under test.
func ReferenceJoin(r, s []relation.Tuple, out Consumer) {
	byKey := make(map[uint64][]relation.Tuple, len(r))
	for _, t := range r {
		byKey[t.Key] = append(byKey[t.Key], t)
	}
	for _, st := range s {
		for _, rt := range byKey[st.Key] {
			out.Consume(rt, st)
		}
	}
}
