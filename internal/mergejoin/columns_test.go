package mergejoin

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/batch"
	"repro/internal/relation"
)

// sortedColumns builds a key-sorted tuple slice from (key, payload) pairs and
// returns it along with its deinterleaved columns.
func sortedColumns(tuples []relation.Tuple) ([]relation.Tuple, []uint64, []uint64) {
	sort.Slice(tuples, func(i, j int) bool { return tuples[i].Key < tuples[j].Key })
	keys := make([]uint64, len(tuples))
	pays := make([]uint64, len(tuples))
	batch.Deinterleave(tuples, keys, pays)
	return tuples, keys, pays
}

// randomSorted generates a sorted run with heavy duplicate groups: keys are
// drawn from a small domain so most keys collide, exercising the cross-product
// emission.
func randomSorted(n int, domain uint64, seed int64) ([]relation.Tuple, []uint64, []uint64) {
	rng := rand.New(rand.NewSource(seed))
	tuples := make([]relation.Tuple, n)
	for i := range tuples {
		tuples[i] = relation.Tuple{Key: rng.Uint64() % domain, Payload: rng.Uint64()}
	}
	return sortedColumns(tuples)
}

// TestJoinColumnsMatchesRowJoin requires the columnar kernel's output to be
// pair-for-pair identical (same pairs, same order) to the row kernel's, over
// duplicate-heavy inputs and several scratch sizes that force mid-group batch
// flushes.
func TestJoinColumnsMatchesRowJoin(t *testing.T) {
	cases := []struct {
		name             string
		nR, nS           int
		domainR, domainS uint64
	}{
		{"dense-duplicates", 300, 300, 20, 25},
		{"sparse", 500, 500, 1 << 40, 1 << 40},
		{"all-equal", 40, 40, 1, 1},
		{"empty-private", 0, 100, 100, 50},
		{"empty-public", 100, 0, 100, 50},
		{"skewed", 1000, 1000, 7, 900},
	}
	for _, tc := range cases {
		rTuples, rKeys, rPays := randomSorted(tc.nR, max64(tc.domainR, 1), 1)
		sTuples, sKeys, sPays := randomSorted(tc.nS, max64(tc.domainS, 1), 2)

		var want Materializer
		Join(rTuples, sTuples, &want)

		for _, scratchSize := range []int{0, 1, 3, 7} {
			var got Materializer
			sc := batch.NewScratch(scratchSize, nil)
			JoinColumns(rKeys, rPays, sKeys, sPays, &got, sc)
			requireSamePairs(t, tc.name, scratchSize, want.Out, got.Out)

			// Prefetch disabled must not change the output.
			var noPf Materializer
			JoinColumnsPrefetch(rKeys, rPays, sKeys, sPays, &noPf, batch.NewScratch(scratchSize, nil), 0)
			requireSamePairs(t, tc.name+"/no-prefetch", scratchSize, want.Out, noPf.Out)
		}
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func requireSamePairs(t *testing.T, name string, scratchSize int, want, got []JoinedTuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s (scratch %d): %d pairs, want %d", name, scratchSize, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s (scratch %d): pair %d is %+v, want %+v", name, scratchSize, i, got[i], want[i])
		}
	}
}

// TestJoinColumnsWithSkipMatchesRow requires the skip variant to report the
// same scanned count and matches as the row JoinWithSkip.
func TestJoinColumnsWithSkipMatchesRow(t *testing.T) {
	// Private run covering a narrow key band in the middle of the public run.
	rTuples := make([]relation.Tuple, 0, 64)
	for k := uint64(5000); k < 5064; k++ {
		rTuples = append(rTuples, relation.Tuple{Key: k, Payload: k * 3})
	}
	rTuples, rKeys, rPays := sortedColumns(rTuples)
	sTuples, sKeys, sPays := randomSorted(20000, 10000, 3)

	var want Materializer
	wantScanned := JoinWithSkip(rTuples, sTuples, &want)

	var got Materializer
	gotScanned := JoinColumnsWithSkip(rKeys, rPays, sKeys, sPays, &got, nil)
	if gotScanned != wantScanned {
		t.Fatalf("scanned %d, want %d", gotScanned, wantScanned)
	}
	requireSamePairs(t, "with-skip", 0, want.Out, got.Out)
}

// TestJoinColumnRunsCtx checks the multi-run driver against per-run row joins
// and that cancellation stops between runs.
func TestJoinColumnRunsCtx(t *testing.T) {
	rTuples, rKeys, rPays := randomSorted(400, 50, 4)
	var runs []*batch.Run
	var want Materializer
	var wantScanned int
	for i := 0; i < 4; i++ {
		sTuples, sKeys, sPays := randomSorted(300, 60, int64(5+i))
		runs = append(runs, &batch.Run{Worker: i, Node: 0, Keys: sKeys, Payloads: sPays})
		wantScanned += JoinWithSkip(rTuples, sTuples, &want)
	}

	var got Materializer
	gotScanned := JoinColumnRunsCtx(context.Background(), rKeys, rPays, runs, &got, nil)
	if gotScanned != wantScanned {
		t.Fatalf("scanned %d, want %d", gotScanned, wantScanned)
	}
	requireSamePairs(t, "column-runs", 0, want.Out, got.Out)

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	var none Materializer
	if n := JoinColumnRunsCtx(canceled, rKeys, rPays, runs, &none, nil); n != 0 || len(none.Out) != 0 {
		t.Fatalf("canceled context still scanned %d and emitted %d pairs", n, len(none.Out))
	}
}

// TestConsumeColumnsAggregates checks the vectorized BatchConsumer
// implementations against their per-pair siblings.
func TestConsumeColumnsAggregates(t *testing.T) {
	keys := []uint64{1, 2, 3, 4, 5}
	rp := []uint64{10, 0, 30, 5, 50}
	sp := []uint64{1, 100, 3, 4, 5}

	var perPair, batched MaxAggregate
	for i := range keys {
		perPair.Consume(relation.Tuple{Key: keys[i], Payload: rp[i]}, relation.Tuple{Key: keys[i], Payload: sp[i]})
	}
	// Deliver in two batches to exercise the running-max fold across batches.
	batched.ConsumeColumns(keys[:2], rp[:2], sp[:2])
	batched.ConsumeColumns(keys[2:], rp[2:], sp[2:])
	batched.ConsumeColumns(nil, nil, nil) // empty batch is a no-op
	if perPair != batched {
		t.Fatalf("MaxAggregate diverged: per-pair %+v, batched %+v", perPair, batched)
	}

	var c Counter
	c.ConsumeColumns(keys, rp, sp)
	if c.Count != uint64(len(keys)) {
		t.Fatalf("Counter.ConsumeColumns counted %d, want %d", c.Count, len(keys))
	}
}

// plainConsumer records pairs without implementing BatchConsumer, forcing
// EmitColumns onto the per-pair fallback.
type plainConsumer struct{ pairs []JoinedTuple }

func (p *plainConsumer) Consume(r, s relation.Tuple) {
	p.pairs = append(p.pairs, JoinedTuple{Key: r.Key, RPayload: r.Payload, SPayload: s.Payload})
}

// TestEmitColumnsFallback checks that consumers without a batch fast path
// receive the identical per-pair stream.
func TestEmitColumnsFallback(t *testing.T) {
	rTuples, rKeys, rPays := randomSorted(200, 15, 6)
	sTuples, sKeys, sPays := randomSorted(200, 15, 7)

	var want Materializer
	Join(rTuples, sTuples, &want)

	var plain plainConsumer
	JoinColumns(rKeys, rPays, sKeys, sPays, &plain, nil)
	requireSamePairs(t, "fallback", 0, want.Out, plain.pairs)
}
