package mergejoin

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

// splitIntoRuns distributes sorted tuples round-robin into n sorted runs.
func splitIntoRuns(tuples []relation.Tuple, n int) []*relation.Run {
	runs := make([]*relation.Run, n)
	for i := range runs {
		runs[i] = &relation.Run{Worker: i}
	}
	for i, t := range tuples {
		runs[i%n].Tuples = append(runs[i%n].Tuples, t)
	}
	return runs
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Inner: "inner", LeftOuter: "left-outer", Semi: "semi", Anti: "anti", Kind(7): "Kind(7)"}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if !Inner.Valid() || !Anti.Valid() || Kind(9).Valid() || Kind(-1).Valid() {
		t.Fatal("Valid() misclassifies kinds")
	}
}

func TestJoinRunsKindSmall(t *testing.T) {
	private := []relation.Tuple{{Key: 1, Payload: 10}, {Key: 2, Payload: 20}, {Key: 3, Payload: 30}, {Key: 3, Payload: 31}}
	public := []relation.Tuple{{Key: 2, Payload: 200}, {Key: 3, Payload: 300}, {Key: 5, Payload: 500}}
	runs := splitIntoRuns(public, 2)

	t.Run("inner", func(t *testing.T) {
		var m Materializer
		JoinRunsKind(Inner, private, runs, &m)
		if len(m.Out) != 3 { // key 2 once, key 3 twice (two private duplicates)
			t.Fatalf("inner results = %d, want 3", len(m.Out))
		}
	})
	t.Run("left outer", func(t *testing.T) {
		var m Materializer
		JoinRunsKind(LeftOuter, private, runs, &m)
		// 3 inner matches + 1 unmatched private tuple (key 1).
		if len(m.Out) != 4 {
			t.Fatalf("outer results = %d, want 4", len(m.Out))
		}
		foundNull := false
		for _, o := range m.Out {
			if o.Key == 1 && o.SPayload == 0 {
				foundNull = true
			}
		}
		if !foundNull {
			t.Fatal("outer join missing the NULL-padded tuple for key 1")
		}
	})
	t.Run("semi", func(t *testing.T) {
		var m Materializer
		JoinRunsKind(Semi, private, runs, &m)
		// Keys 2, 3, 3 have partners; each private tuple emitted once.
		if len(m.Out) != 3 {
			t.Fatalf("semi results = %d, want 3", len(m.Out))
		}
	})
	t.Run("anti", func(t *testing.T) {
		var m Materializer
		JoinRunsKind(Anti, private, runs, &m)
		if len(m.Out) != 1 || m.Out[0].Key != 1 {
			t.Fatalf("anti results = %+v, want only key 1", m.Out)
		}
	})
}

func TestJoinRunsKindEmptyInputs(t *testing.T) {
	public := splitIntoRuns([]relation.Tuple{{Key: 1}}, 2)
	for _, kind := range []Kind{Inner, LeftOuter, Semi, Anti} {
		var c Counter
		if n := JoinRunsKind(kind, nil, public, &c); n != 0 || c.Count != 0 {
			t.Fatalf("%v with empty private: scanned %d, results %d", kind, n, c.Count)
		}
	}
	// Empty public input: outer and anti emit every private tuple, semi and
	// inner emit nothing.
	private := []relation.Tuple{{Key: 1}, {Key: 2}}
	counts := map[Kind]uint64{Inner: 0, LeftOuter: 2, Semi: 0, Anti: 2}
	for kind, want := range counts {
		var c Counter
		JoinRunsKind(kind, private, nil, &c)
		if c.Count != want {
			t.Fatalf("%v with empty public: results %d, want %d", kind, c.Count, want)
		}
	}
}

func TestJoinRunsKindPanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind should panic")
		}
	}()
	JoinRunsKind(Kind(42), []relation.Tuple{{Key: 1}}, nil, &Counter{})
}

func TestJoinRunsKindMatchOnlyInLastRun(t *testing.T) {
	// A private tuple whose only partner lives in the last public run must
	// be classified as matched (semi yes, anti no, outer no NULL row).
	private := []relation.Tuple{{Key: 7, Payload: 70}}
	runs := []*relation.Run{
		{Worker: 0, Tuples: []relation.Tuple{{Key: 1}}},
		{Worker: 1, Tuples: []relation.Tuple{{Key: 2}}},
		{Worker: 2, Tuples: []relation.Tuple{{Key: 7, Payload: 700}}},
	}
	var semi, anti, outer Counter
	JoinRunsKind(Semi, private, runs, &semi)
	JoinRunsKind(Anti, private, runs, &anti)
	JoinRunsKind(LeftOuter, private, runs, &outer)
	if semi.Count != 1 || anti.Count != 0 || outer.Count != 1 {
		t.Fatalf("semi=%d anti=%d outer=%d, want 1/0/1", semi.Count, anti.Count, outer.Count)
	}
}

func TestJoinRunsKindMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		rKeys := make([]uint64, 800)
		sKeys := make([]uint64, 2500)
		for i := range rKeys {
			rKeys[i] = rng.Uint64() % 500
		}
		for i := range sKeys {
			sKeys[i] = rng.Uint64() % 500
		}
		private := sortedTuples(rKeys, 100)
		public := sortedTuples(sKeys, 900)
		runs := splitIntoRuns(public, 4)

		for _, kind := range []Kind{Inner, LeftOuter, Semi, Anti} {
			var got, want MaxAggregate
			JoinRunsKind(kind, private, runs, &got)
			ReferenceJoinKind(kind, private, public, &want)
			if got.Count != want.Count || (got.Count > 0 && got.Max != want.Max) {
				t.Fatalf("trial %d, %v: got (%d, %d), want (%d, %d)",
					trial, kind, got.Count, got.Max, want.Count, want.Max)
			}
		}
	}
}

func TestJoinRunsKindCardinalityRelations(t *testing.T) {
	// Property: |semi| + |anti| = |R|; |outer| = |inner| + |anti|, for any
	// inputs.
	f := func(rRaw, sRaw []uint16) bool {
		rKeys := make([]uint64, len(rRaw))
		for i, k := range rRaw {
			rKeys[i] = uint64(k % 128)
		}
		sKeys := make([]uint64, len(sRaw))
		for i, k := range sRaw {
			sKeys[i] = uint64(k % 128)
		}
		private := sortedTuples(rKeys, 0)
		public := sortedTuples(sKeys, 0)
		runs := splitIntoRuns(public, 3)

		counts := map[Kind]uint64{}
		for _, kind := range []Kind{Inner, LeftOuter, Semi, Anti} {
			var c Counter
			JoinRunsKind(kind, private, runs, &c)
			counts[kind] = c.Count
		}
		if counts[Semi]+counts[Anti] != uint64(len(private)) {
			return false
		}
		return counts[LeftOuter] == counts[Inner]+counts[Anti]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReferenceJoinKindInnerDelegates(t *testing.T) {
	r := sortedTuples([]uint64{1, 2, 3}, 10)
	s := sortedTuples([]uint64{2, 3, 3}, 20)
	var a, b MaxAggregate
	ReferenceJoinKind(Inner, r, s, &a)
	ReferenceJoin(r, s, &b)
	if a.Count != b.Count || a.Max != b.Max {
		t.Fatal("ReferenceJoinKind(Inner) should match ReferenceJoin")
	}
}

// sortKeys is a tiny helper keeping the reference implementations honest about
// their input expectations (sorted private/public runs).
func TestHelpersProduceSortedRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	keys := make([]uint64, 100)
	for i := range keys {
		keys[i] = rng.Uint64() % 50
	}
	tuples := sortedTuples(keys, 0)
	if !sort.SliceIsSorted(tuples, func(i, j int) bool { return tuples[i].Key < tuples[j].Key }) {
		t.Fatal("sortedTuples helper did not sort")
	}
	for _, run := range splitIntoRuns(tuples, 3) {
		if !run.IsSorted() {
			t.Fatal("splitIntoRuns broke the sort order")
		}
	}
}
