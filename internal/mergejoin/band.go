package mergejoin

import (
	"context"

	"repro/internal/relation"
)

// JoinBand performs a non-equi band join between two key-sorted inputs: it
// emits every pair (r, s) with |r.Key − s.Key| <= band. With band = 0 it
// degenerates to the equi-join.
//
// The paper lists non-equi joins among the future join variants of MPSM; a
// band join is the non-equi variant that benefits most directly from MPSM's
// sorted runs, because each private tuple's match partners form a contiguous
// window of the public run. The kernel keeps a sliding window over the public
// input and therefore runs in O(|private| + |public| + |output|).
//
// Both inputs must be sorted by ascending key.
func JoinBand(private, public []relation.Tuple, band uint64, out Consumer) {
	if len(private) == 0 || len(public) == 0 {
		return
	}
	start := 0
	for _, r := range private {
		low := uint64(0)
		if r.Key > band {
			low = r.Key - band
		}
		high := r.Key + band
		if high < r.Key { // overflow: clamp to the maximum key
			high = ^uint64(0)
		}
		// Advance the window start: keys below low can never match this or
		// any later private tuple (keys are non-decreasing).
		for start < len(public) && public[start].Key < low {
			start++
		}
		for j := start; j < len(public) && public[j].Key <= high; j++ {
			out.Consume(r, public[j])
		}
	}
}

// JoinBandAgainstRuns band joins one sorted private run against every sorted
// public run in turn. It returns the number of public tuples that fell inside
// the private run's extended key range and were therefore scanned.
func JoinBandAgainstRuns(private []relation.Tuple, publicRuns []*relation.Run, band uint64, out Consumer) (publicScanned int) {
	return JoinBandAgainstRunsCtx(context.Background(), private, publicRuns, band, out)
}

// JoinBandAgainstRunsCtx is JoinBandAgainstRuns with a cancellation check
// between public runs — the chunk unit of the band-join merge loop. It
// returns early (with a partial scan count) when ctx is canceled; the caller
// is expected to discard the partial result.
func JoinBandAgainstRunsCtx(ctx context.Context, private []relation.Tuple, publicRuns []*relation.Run, band uint64, out Consumer) (publicScanned int) {
	if len(private) == 0 {
		return 0
	}
	for _, pub := range publicRuns {
		if Canceled(ctx) {
			return publicScanned
		}
		if pub.Len() == 0 {
			continue
		}
		JoinBand(private, pub.Tuples, band, out)
		// Scanned portion: the window between (minKey − band) and
		// (maxKey + band) of the private run.
		low := uint64(0)
		if private[0].Key > band {
			low = private[0].Key - band
		}
		high := private[len(private)-1].Key + band
		if high < private[len(private)-1].Key {
			high = ^uint64(0)
		}
		publicScanned += boundedWindow(pub.Tuples, low, high)
	}
	return publicScanned
}

// boundedWindow returns the number of tuples of a sorted run whose key lies in
// [low, high].
func boundedWindow(run []relation.Tuple, low, high uint64) int {
	start := 0
	for start < len(run) && run[start].Key < low {
		start++
	}
	end := start
	for end < len(run) && run[end].Key <= high {
		end++
	}
	return end - start
}

// ReferenceJoinBand is the quadratic oracle for band-join tests.
func ReferenceJoinBand(r, s []relation.Tuple, band uint64, out Consumer) {
	for _, rt := range r {
		for _, st := range s {
			var diff uint64
			if rt.Key > st.Key {
				diff = rt.Key - st.Key
			} else {
				diff = st.Key - rt.Key
			}
			if diff <= band {
				out.Consume(rt, st)
			}
		}
	}
}
