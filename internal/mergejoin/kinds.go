package mergejoin

import (
	"context"
	"fmt"

	"repro/internal/relation"
	"repro/internal/search"
)

// Kind selects the join semantics of the MPSM variants. The paper's future
// work section names outer, semi and anti joins as the natural extensions of
// the algorithm; they all fit the MPSM structure because every private tuple
// is owned by exactly one worker, which sees all of that tuple's potential
// match partners across the public runs.
type Kind int

const (
	// Inner emits one result per matching (r, s) pair.
	Inner Kind = iota
	// LeftOuter emits every matching pair plus, for every private tuple
	// without a match, one result with the zero public tuple (the NULL
	// convention of this library).
	LeftOuter
	// Semi emits every private tuple that has at least one match, exactly
	// once, paired with the zero public tuple.
	Semi
	// Anti emits every private tuple that has no match, paired with the
	// zero public tuple.
	Anti
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Inner:
		return "inner"
	case LeftOuter:
		return "left-outer"
	case Semi:
		return "semi"
	case Anti:
		return "anti"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Valid reports whether k is a known join kind.
func (k Kind) Valid() bool { return k >= Inner && k <= Anti }

// JoinRunsKind merge joins one sorted private run against all sorted public
// runs with the requested join semantics and returns the number of public
// tuples scanned.
//
// For Inner it behaves exactly like JoinAgainstRuns. For the other kinds the
// kernel tracks, per private tuple, whether any public run produced a match;
// the unmatched/matched results are emitted after the last public run so that
// a tuple matching only in the final run is classified correctly. Non-inner
// results carry the zero relation.Tuple on the public side.
func JoinRunsKind(kind Kind, private []relation.Tuple, publicRuns []*relation.Run, out Consumer) (publicScanned int) {
	return JoinRunsKindCtx(context.Background(), kind, private, publicRuns, out)
}

// JoinRunsKindCtx is JoinRunsKind with a cancellation check between public
// runs — the chunk unit of the merge loop. On cancellation it returns early
// with a partial scan count and emits nothing further (the per-tuple match
// state would be incomplete); the caller is expected to discard the partial
// result.
func JoinRunsKindCtx(ctx context.Context, kind Kind, private []relation.Tuple, publicRuns []*relation.Run, out Consumer) (publicScanned int) {
	switch kind {
	case Inner:
		return joinAgainstRunsCtx(ctx, private, publicRuns, out)
	case LeftOuter, Semi, Anti:
		// Handled below.
	default:
		panic(fmt.Sprintf("mergejoin: unknown join kind %d", int(kind)))
	}
	if len(private) == 0 {
		return 0
	}

	matched := make([]bool, len(private))
	for _, pub := range publicRuns {
		if Canceled(ctx) {
			return publicScanned
		}
		publicScanned += markAndEmit(kind, private, matched, pub.Tuples, out)
	}
	if Canceled(ctx) {
		return publicScanned
	}
	for i, t := range private {
		switch kind {
		case LeftOuter, Anti:
			if !matched[i] {
				out.Consume(t, relation.Tuple{})
			}
		case Semi:
			if matched[i] {
				out.Consume(t, relation.Tuple{})
			}
		}
	}
	return publicScanned
}

// markAndEmit performs one merge pass of the private run against one public
// run: it records which private tuples found a partner and, for LeftOuter,
// emits the matching pairs immediately (outer join output contains all inner
// matches). Semi and Anti joins emit nothing during the pass. It returns the
// number of public tuples scanned after the interpolation-search skip.
func markAndEmit(kind Kind, private []relation.Tuple, matched []bool, public []relation.Tuple, out Consumer) int {
	if len(public) == 0 {
		return 0
	}
	loKey := private[0].Key
	hiKey := private[len(private)-1].Key
	start := search.LowerBound(public, loKey)
	end := search.UpperBound(public, hiKey)
	if start >= end {
		return 0
	}
	window := public[start:end]

	i, j := 0, 0
	for i < len(private) && j < len(window) {
		rk, sk := private[i].Key, window[j].Key
		switch {
		case rk < sk:
			i++
		case rk > sk:
			j++
		default:
			iEnd := i + 1
			for iEnd < len(private) && private[iEnd].Key == rk {
				iEnd++
			}
			jEnd := j + 1
			for jEnd < len(window) && window[jEnd].Key == rk {
				jEnd++
			}
			for a := i; a < iEnd; a++ {
				matched[a] = true
				if kind == LeftOuter {
					for b := j; b < jEnd; b++ {
						out.Consume(private[a], window[b])
					}
				}
			}
			i, j = iEnd, jEnd
		}
	}
	return end - start
}

// ReferenceJoinKind is the oracle counterpart of JoinRunsKind used by tests:
// a straightforward hash-based implementation of every join kind.
func ReferenceJoinKind(kind Kind, r, s []relation.Tuple, out Consumer) {
	switch kind {
	case Inner:
		ReferenceJoin(r, s, out)
		return
	}
	sKeys := make(map[uint64][]relation.Tuple, len(s))
	for _, t := range s {
		sKeys[t.Key] = append(sKeys[t.Key], t)
	}
	for _, rt := range r {
		partners := sKeys[rt.Key]
		switch kind {
		case LeftOuter:
			if len(partners) == 0 {
				out.Consume(rt, relation.Tuple{})
				continue
			}
			for _, st := range partners {
				out.Consume(rt, st)
			}
		case Semi:
			if len(partners) > 0 {
				out.Consume(rt, relation.Tuple{})
			}
		case Anti:
			if len(partners) == 0 {
				out.Consume(rt, relation.Tuple{})
			}
		}
	}
}
