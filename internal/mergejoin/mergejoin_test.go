package mergejoin

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

func sortedTuples(keys []uint64, payloadBase uint64) []relation.Tuple {
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]relation.Tuple, len(keys))
	for i, k := range keys {
		out[i] = relation.Tuple{Key: k, Payload: payloadBase + uint64(i)}
	}
	return out
}

func TestJoinSimple(t *testing.T) {
	r := []relation.Tuple{{Key: 1, Payload: 10}, {Key: 3, Payload: 30}, {Key: 5, Payload: 50}}
	s := []relation.Tuple{{Key: 3, Payload: 300}, {Key: 4, Payload: 400}, {Key: 5, Payload: 500}}
	var m Materializer
	Join(r, s, &m)
	if len(m.Out) != 2 {
		t.Fatalf("got %d results, want 2", len(m.Out))
	}
	if m.Out[0].Key != 3 || m.Out[0].RPayload != 30 || m.Out[0].SPayload != 300 {
		t.Fatalf("first result = %+v", m.Out[0])
	}
	if m.Out[1].Key != 5 {
		t.Fatalf("second result = %+v", m.Out[1])
	}
}

func TestJoinDuplicatesCrossProduct(t *testing.T) {
	r := []relation.Tuple{{Key: 2, Payload: 1}, {Key: 2, Payload: 2}, {Key: 2, Payload: 3}}
	s := []relation.Tuple{{Key: 2, Payload: 10}, {Key: 2, Payload: 20}}
	var c Counter
	Join(r, s, &c)
	if c.Count != 6 {
		t.Fatalf("duplicate join count = %d, want 6 (3x2)", c.Count)
	}
}

func TestJoinEmptyInputs(t *testing.T) {
	var c Counter
	Join(nil, []relation.Tuple{{Key: 1}}, &c)
	Join([]relation.Tuple{{Key: 1}}, nil, &c)
	Join(nil, nil, &c)
	if c.Count != 0 {
		t.Fatalf("joins with empty inputs produced %d results", c.Count)
	}
}

func TestJoinNoOverlap(t *testing.T) {
	r := sortedTuples([]uint64{1, 2, 3}, 0)
	s := sortedTuples([]uint64{10, 20, 30}, 0)
	var c Counter
	Join(r, s, &c)
	if c.Count != 0 {
		t.Fatalf("disjoint join count = %d, want 0", c.Count)
	}
}

func TestJoinMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		rKeys := make([]uint64, 500)
		sKeys := make([]uint64, 2000)
		for i := range rKeys {
			rKeys[i] = rng.Uint64() % 300 // force many duplicates and matches
		}
		for i := range sKeys {
			sKeys[i] = rng.Uint64() % 300
		}
		r := sortedTuples(rKeys, 1000)
		s := sortedTuples(sKeys, 5000)

		var got, want MaxAggregate
		Join(r, s, &got)
		ReferenceJoin(r, s, &want)
		if got.Count != want.Count || (got.Count > 0 && got.Max != want.Max) {
			t.Fatalf("trial %d: merge join (count=%d max=%d) != reference (count=%d max=%d)",
				trial, got.Count, got.Max, want.Count, want.Max)
		}
	}
}

func TestJoinWithSkipMatchesJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sKeys := make([]uint64, 10000)
	for i := range sKeys {
		sKeys[i] = rng.Uint64() % (1 << 20)
	}
	s := sortedTuples(sKeys, 0)
	// Private run covering only a narrow key band.
	rKeys := make([]uint64, 300)
	for i := range rKeys {
		rKeys[i] = 1<<18 + rng.Uint64()%(1<<16)
	}
	r := sortedTuples(rKeys, 0)

	var full, skip MaxAggregate
	Join(r, s, &full)
	scanned := JoinWithSkip(r, s, &skip)
	if full.Count != skip.Count || full.Max != skip.Max {
		t.Fatalf("JoinWithSkip result differs: (%d, %d) vs (%d, %d)", skip.Count, skip.Max, full.Count, full.Max)
	}
	if scanned >= len(s) {
		t.Fatalf("JoinWithSkip scanned %d of %d public tuples; expected a narrow band", scanned, len(s))
	}
	if scanned == 0 && full.Count > 0 {
		t.Fatal("JoinWithSkip reported zero scanned tuples despite matches")
	}
}

func TestJoinWithSkipEmpty(t *testing.T) {
	var c Counter
	if n := JoinWithSkip(nil, sortedTuples([]uint64{1, 2}, 0), &c); n != 0 {
		t.Fatalf("scanned = %d, want 0", n)
	}
	if n := JoinWithSkip(sortedTuples([]uint64{1, 2}, 0), nil, &c); n != 0 {
		t.Fatalf("scanned = %d, want 0", n)
	}
	// Private range entirely outside the public range.
	r := sortedTuples([]uint64{100, 200}, 0)
	s := sortedTuples([]uint64{1, 2, 3}, 0)
	if n := JoinWithSkip(r, s, &c); n != 0 {
		t.Fatalf("scanned = %d, want 0 for disjoint high range", n)
	}
	if c.Count != 0 {
		t.Fatalf("count = %d, want 0", c.Count)
	}
}

func TestJoinAgainstRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var runs []*relation.Run
	var allS []relation.Tuple
	for w := 0; w < 4; w++ {
		keys := make([]uint64, 1000)
		for i := range keys {
			keys[i] = rng.Uint64() % 5000
		}
		tuples := sortedTuples(keys, uint64(w)*10000)
		runs = append(runs, &relation.Run{Worker: w, Tuples: tuples})
		allS = append(allS, tuples...)
	}
	rKeys := make([]uint64, 800)
	for i := range rKeys {
		rKeys[i] = rng.Uint64() % 5000
	}
	r := sortedTuples(rKeys, 77)

	var got, want MaxAggregate
	JoinAgainstRuns(r, runs, &got)
	ReferenceJoin(r, allS, &want)
	if got.Count != want.Count || got.Max != want.Max {
		t.Fatalf("JoinAgainstRuns (count=%d max=%d) != reference (count=%d max=%d)",
			got.Count, got.Max, want.Count, want.Max)
	}
}

func TestMaxAggregateMerge(t *testing.T) {
	var a, b MaxAggregate
	a.Consume(relation.Tuple{Payload: 5}, relation.Tuple{Payload: 6})  // 11
	b.Consume(relation.Tuple{Payload: 50}, relation.Tuple{Payload: 1}) // 51
	b.Consume(relation.Tuple{Payload: 2}, relation.Tuple{Payload: 2})  // 4
	a.Merge(b)
	if a.Count != 3 || a.Max != 51 {
		t.Fatalf("merged aggregate = %+v", a)
	}
	var empty MaxAggregate
	a.Merge(empty)
	if a.Count != 3 || a.Max != 51 {
		t.Fatalf("merging empty changed aggregate: %+v", a)
	}
	empty.Merge(a)
	if empty.Count != 3 || empty.Max != 51 {
		t.Fatalf("merge into empty = %+v", empty)
	}
}

func TestMaxAggregateZeroPayloads(t *testing.T) {
	var m MaxAggregate
	m.Consume(relation.Tuple{Payload: 0}, relation.Tuple{Payload: 0})
	if m.Count != 1 || m.Max != 0 {
		t.Fatalf("aggregate = %+v, want count 1 max 0", m)
	}
}

func TestJoinProperty(t *testing.T) {
	// Property: merge join of sorted inputs matches the hash reference for
	// arbitrary key multisets.
	f := func(rRaw, sRaw []uint16) bool {
		rKeys := make([]uint64, len(rRaw))
		for i, k := range rRaw {
			rKeys[i] = uint64(k % 64)
		}
		sKeys := make([]uint64, len(sRaw))
		for i, k := range sRaw {
			sKeys[i] = uint64(k % 64)
		}
		r := sortedTuples(rKeys, 100)
		s := sortedTuples(sKeys, 200)
		var got, want MaxAggregate
		Join(r, s, &got)
		ReferenceJoin(r, s, &want)
		return got.Count == want.Count && (got.Count == 0 || got.Max == want.Max)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
