package mergejoin

import (
	"context"
	"sync/atomic"

	"repro/internal/batch"
	"repro/internal/relation"
	"repro/internal/search"
)

// Columnar merge-join kernels for the batch execution path. They are the
// structure-of-arrays siblings of Join/JoinWithSkip with three hot-loop
// differences:
//
//   - the cursors scan contiguous uint64 key columns, so every cache line
//     fetched carries 8 candidate keys instead of 4 interleaved key/payload
//     pairs;
//   - the public-run cursor runs a software prefetch PrefetchDistance keys
//     ahead (one explicit touch per cache line), hiding the miss latency of
//     the remote public run — the one array the paper's phase 4 reads from
//     other NUMA partitions;
//   - matches are emitted as (private, public) index pairs into a fixed-size
//     batch; payloads are only touched by the gather pass that flushes a full
//     batch to the consumer, so the match loop itself stays in the key
//     columns.
//
// Both sides may contain duplicate keys; like Join, the kernels emit the full
// cross product of every match group, in the same order, so the columnar and
// row paths are pair-for-pair identical.

// BatchConsumer is the batch fast path of a Consumer: sinks that implement it
// receive whole match batches as columns — the join key and both payload
// columns, equal length — instead of one Consume call per pair. EmitColumns
// falls back to per-pair delivery for consumers that do not implement it.
type BatchConsumer interface {
	ConsumeColumns(keys, rPayloads, sPayloads []uint64)
}

// PrefetchDistance is how many keys ahead of the public cursor the merge
// kernel touches: 16 keys = 2 cache lines, far enough to cover DRAM latency
// at the scan's consumption rate, near enough not to thrash the L1.
const PrefetchDistance = 16

// prefetchSink absorbs the prefetch touches so the compiler cannot eliminate
// the ahead-of-cursor loads as dead code; it carries no meaning.
var prefetchSink atomic.Uint64

// ConsumeColumns implements BatchConsumer with a branch-free reduction: the
// running maximum folds through the max builtin (a conditional move, not a
// branch), and the pair count advances once per batch.
func (m *MaxAggregate) ConsumeColumns(keys, rPayloads, sPayloads []uint64) {
	if len(keys) == 0 {
		return
	}
	best := rPayloads[0] + sPayloads[0]
	if m.Count > 0 {
		best = max(best, m.Max)
	}
	for i := 1; i < len(rPayloads); i++ {
		best = max(best, rPayloads[i]+sPayloads[i])
	}
	m.Max = best
	m.Count += uint64(len(keys))
}

// ConsumeColumns implements BatchConsumer: one counter update per batch.
func (c *Counter) ConsumeColumns(keys, rPayloads, sPayloads []uint64) {
	c.Count += uint64(len(keys))
}

// ConsumeColumns implements BatchConsumer.
func (m *Materializer) ConsumeColumns(keys, rPayloads, sPayloads []uint64) {
	for i := range keys {
		m.Out = append(m.Out, JoinedTuple{Key: keys[i], RPayload: rPayloads[i], SPayload: sPayloads[i]})
	}
}

// EmitColumns delivers one match batch to a consumer: directly when the
// consumer implements BatchConsumer, tuple by tuple otherwise. The
// reconstruction uses the shared join key for both sides, exactly as the row
// kernels see it.
func EmitColumns(out Consumer, keys, rPayloads, sPayloads []uint64) {
	if bc, ok := out.(BatchConsumer); ok {
		bc.ConsumeColumns(keys, rPayloads, sPayloads)
		return
	}
	for i := range keys {
		out.Consume(
			relation.Tuple{Key: keys[i], Payload: rPayloads[i]},
			relation.Tuple{Key: keys[i], Payload: sPayloads[i]},
		)
	}
}

// JoinColumns merge joins two key-sorted column pairs and feeds every
// matching pair to the consumer, batched through sc (nil sc allocates a
// throwaway scratch). Columns must be shorter than 2^31 elements — indices
// batch as int32, and runs are per-worker chunks well below that.
func JoinColumns(rKeys, rPays, sKeys, sPays []uint64, out Consumer, sc *batch.Scratch) {
	JoinColumnsPrefetch(rKeys, rPays, sKeys, sPays, out, sc, PrefetchDistance)
}

// JoinColumnsPrefetch is JoinColumns with an explicit prefetch distance on
// the public cursor; prefetch <= 0 disables the ahead-of-cursor touches. The
// benchmark harness uses it to quantify what the prefetch buys.
func JoinColumnsPrefetch(rKeys, rPays, sKeys, sPays []uint64, out Consumer, sc *batch.Scratch, prefetch int) {
	nR, nS := len(rKeys), len(sKeys)
	if nR == 0 || nS == 0 {
		return
	}
	if sc == nil {
		sc = batch.NewScratch(0, nil)
	}
	pr, ps := sc.Pairs.R, sc.Pairs.S
	capN := len(pr)
	n := 0
	var touch uint64

	i, j := 0, 0
	for i < nR && j < nS {
		rk := rKeys[i]
		// Advance the public cursor to the private key, touching one key per
		// cache line PrefetchDistance ahead so the scan never waits for the
		// line it is about to enter.
		if prefetch > 0 {
			for j < nS && sKeys[j] < rk {
				if j&7 == 0 {
					touch += sKeys[min(j+prefetch, nS-1)]
				}
				j++
			}
		} else {
			for j < nS && sKeys[j] < rk {
				j++
			}
		}
		if j >= nS {
			break
		}
		sk := sKeys[j]
		if rk < sk {
			// Advance the private cursor; it is worker-local and sequential,
			// the hardware prefetcher covers it.
			for i < nR && rKeys[i] < sk {
				i++
			}
			continue
		}
		// rk == sk: emit the cross product of the two equal-key groups as
		// index pairs; payloads wait for the batch flush.
		iEnd := i + 1
		for iEnd < nR && rKeys[iEnd] == rk {
			iEnd++
		}
		jEnd := j + 1
		for jEnd < nS && sKeys[jEnd] == rk {
			jEnd++
		}
		for a := i; a < iEnd; a++ {
			for b := j; b < jEnd; b++ {
				pr[n] = int32(a)
				ps[n] = int32(b)
				n++
				if n == capN {
					flushPairs(out, rKeys, rPays, sPays, pr, ps, n, sc)
					n = 0
				}
			}
		}
		i, j = iEnd, jEnd
	}
	if n > 0 {
		flushPairs(out, rKeys, rPays, sPays, pr, ps, n, sc)
	}
	if touch != 0 {
		prefetchSink.Add(touch)
	}
}

// flushPairs gathers the batched index pairs into the scratch's output
// columns — the single pass that touches payload memory — and hands the batch
// to the consumer.
func flushPairs(out Consumer, rKeys, rPays, sPays []uint64, pr, ps []int32, n int, sc *batch.Scratch) {
	keys := sc.Out.Keys[:n]
	rp := sc.Out.RPayloads[:n]
	sp := sc.Out.SPayloads[:n]
	for x := 0; x < n; x++ {
		a, b := pr[x], ps[x]
		keys[x] = rKeys[a]
		rp[x] = rPays[a]
		sp[x] = sPays[b]
	}
	EmitColumns(out, keys, rp, sp)
}

// JoinColumnsWithSkip is JoinColumns preceded by interpolation searches on
// the public key column, the columnar JoinWithSkip. It returns the number of
// public tuples actually scanned.
func JoinColumnsWithSkip(rKeys, rPays, sKeys, sPays []uint64, out Consumer, sc *batch.Scratch) (publicScanned int) {
	if len(rKeys) == 0 || len(sKeys) == 0 {
		return 0
	}
	loKey := rKeys[0]
	hiKey := rKeys[len(rKeys)-1]
	start := search.LowerBoundKeys(sKeys, loKey)
	end := search.UpperBoundKeys(sKeys, hiKey)
	if start >= end {
		return 0
	}
	JoinColumns(rKeys, rPays, sKeys[start:end], sPays[start:end], out, sc)
	return end - start
}

// JoinColumnRunsCtx merge joins one private column run against every public
// column run in turn with JoinColumnsWithSkip, checking cancellation between
// runs (the same chunk boundary as the row path). It returns the total number
// of public tuples scanned.
func JoinColumnRunsCtx(ctx context.Context, rKeys, rPays []uint64, publicRuns []*batch.Run, out Consumer, sc *batch.Scratch) (publicScanned int) {
	for _, s := range publicRuns {
		if Canceled(ctx) {
			return publicScanned
		}
		publicScanned += JoinColumnsWithSkip(rKeys, rPays, s.Keys, s.Payloads, out, sc)
	}
	return publicScanned
}
