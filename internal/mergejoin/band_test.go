package mergejoin

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

func TestJoinBandSmall(t *testing.T) {
	r := sortedTuples([]uint64{5, 10, 20}, 0)
	s := sortedTuples([]uint64{4, 8, 11, 19, 30}, 100)

	cases := []struct {
		band uint64
		want uint64
	}{
		{0, 0},  // no exact matches
		{1, 3},  // 5~4, 10~11, 20~19
		{2, 4},  // + 10~8
		{10, 9}, // 5:{4,8,11}... counted via the oracle below
	}
	for _, tc := range cases {
		var got, want Counter
		JoinBand(r, s, tc.band, &got)
		ReferenceJoinBand(r, s, tc.band, &want)
		if got.Count != want.Count {
			t.Fatalf("band=%d: got %d pairs, reference %d", tc.band, got.Count, want.Count)
		}
		if tc.band <= 2 && got.Count != tc.want {
			t.Fatalf("band=%d: got %d pairs, want %d", tc.band, got.Count, tc.want)
		}
	}
}

func TestJoinBandZeroEqualsEquiJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rKeys := make([]uint64, 500)
	sKeys := make([]uint64, 1500)
	for i := range rKeys {
		rKeys[i] = rng.Uint64() % 400
	}
	for i := range sKeys {
		sKeys[i] = rng.Uint64() % 400
	}
	r := sortedTuples(rKeys, 0)
	s := sortedTuples(sKeys, 0)
	var band, equi Counter
	JoinBand(r, s, 0, &band)
	Join(r, s, &equi)
	if band.Count != equi.Count {
		t.Fatalf("band-0 join found %d pairs, equi join %d", band.Count, equi.Count)
	}
}

func TestJoinBandEmptyInputs(t *testing.T) {
	var c Counter
	JoinBand(nil, sortedTuples([]uint64{1}, 0), 5, &c)
	JoinBand(sortedTuples([]uint64{1}, 0), nil, 5, &c)
	if c.Count != 0 {
		t.Fatalf("band join with empty inputs produced %d pairs", c.Count)
	}
}

func TestJoinBandKeyOverflowAndUnderflow(t *testing.T) {
	// Keys near the ends of the uint64 domain must not wrap around.
	maxKey := ^uint64(0)
	r := []relation.Tuple{{Key: 0}, {Key: maxKey}}
	s := []relation.Tuple{{Key: 1}, {Key: maxKey - 1}}
	var got, want Counter
	JoinBand(r, s, 5, &got)
	ReferenceJoinBand(r, s, 5, &want)
	if got.Count != want.Count || got.Count != 2 {
		t.Fatalf("overflow handling: got %d pairs, want %d (= 2)", got.Count, want.Count)
	}
}

func TestJoinBandMatchesReferenceProperty(t *testing.T) {
	f := func(rRaw, sRaw []uint16, bandRaw uint8) bool {
		rKeys := make([]uint64, len(rRaw))
		for i, k := range rRaw {
			rKeys[i] = uint64(k % 256)
		}
		sKeys := make([]uint64, len(sRaw))
		for i, k := range sRaw {
			sKeys[i] = uint64(k % 256)
		}
		r := sortedTuples(rKeys, 10)
		s := sortedTuples(sKeys, 20)
		band := uint64(bandRaw % 16)
		var got, want MaxAggregate
		JoinBand(r, s, band, &got)
		ReferenceJoinBand(r, s, band, &want)
		return got.Count == want.Count && (got.Count == 0 || got.Max == want.Max)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestJoinBandAgainstRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var runs []*relation.Run
	var allS []relation.Tuple
	for w := 0; w < 3; w++ {
		keys := make([]uint64, 800)
		for i := range keys {
			keys[i] = rng.Uint64() % 4000
		}
		tuples := sortedTuples(keys, uint64(w)*1000)
		runs = append(runs, &relation.Run{Worker: w, Tuples: tuples})
		allS = append(allS, tuples...)
	}
	runs = append(runs, &relation.Run{Worker: 3}) // empty run must be handled

	rKeys := make([]uint64, 400)
	for i := range rKeys {
		rKeys[i] = 1000 + rng.Uint64()%500 // a narrow private key band
	}
	r := sortedTuples(rKeys, 7)

	var got, want Counter
	scanned := JoinBandAgainstRuns(r, runs, 3, &got)
	ReferenceJoinBand(r, allS, 3, &want)
	if got.Count != want.Count {
		t.Fatalf("band join against runs: got %d pairs, want %d", got.Count, want.Count)
	}
	if scanned <= 0 || scanned >= len(allS) {
		t.Fatalf("scanned = %d, expected a proper subset of |S| = %d", scanned, len(allS))
	}
	if n := JoinBandAgainstRuns(nil, runs, 3, &got); n != 0 {
		t.Fatalf("empty private run scanned %d public tuples", n)
	}
}

func TestBoundedWindow(t *testing.T) {
	run := sortedTuples([]uint64{1, 3, 5, 7, 9}, 0)
	cases := []struct {
		low, high uint64
		want      int
	}{
		{0, 10, 5},
		{3, 7, 3},
		{4, 4, 0},
		{10, 20, 0},
		{0, 0, 0},
	}
	for _, tc := range cases {
		if got := boundedWindow(run, tc.low, tc.high); got != tc.want {
			t.Errorf("boundedWindow(%d, %d) = %d, want %d", tc.low, tc.high, got, tc.want)
		}
	}
}
