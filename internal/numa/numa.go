// Package numa provides a simulated NUMA (non-uniform memory access)
// substrate. The MPSM paper's central argument is that join algorithms must be
// NUMA-affine: sort locally (commandment C1), read remote memory only
// sequentially (C2), and avoid fine-grained synchronization (C3). Go offers no
// portable NUMA placement or thread pinning, so this package substitutes a
// model:
//
//   - Topology describes a machine as a set of NUMA nodes with a number of
//     cores each (the paper's HyPer1 box has 4 nodes × 8 cores) and assigns
//     every worker a home node.
//   - AccessStats counts memory accesses classified by locality (local vs
//     remote node), pattern (sequential vs random) and direction (read vs
//     write), plus synchronization operations.
//   - CostModel converts the counters into an estimated duration using
//     per-access latencies calibrated so that the relative penalties match the
//     micro-benchmarks of Figure 1 (remote random ≫ remote sequential ≈ local).
//
// The join algorithms report their accesses in bulk (for example, "worker 3
// sequentially read 50000 tuples from node 2"), so accounting adds negligible
// overhead to the real wall-clock measurements while still letting the
// benchmark harness reproduce the paper's NUMA-effect figures.
package numa

import (
	"fmt"
	"time"
)

// Topology models the NUMA layout of a server.
type Topology struct {
	// Nodes is the number of NUMA nodes (sockets).
	Nodes int
	// CoresPerNode is the number of physical cores attached to each node.
	CoresPerNode int
}

// DefaultTopology mirrors the paper's evaluation machine (HyPer1): four
// sockets with eight physical cores each.
func DefaultTopology() Topology { return Topology{Nodes: 4, CoresPerNode: 8} }

// NewTopology builds a topology and validates its parameters.
func NewTopology(nodes, coresPerNode int) (Topology, error) {
	if nodes <= 0 || coresPerNode <= 0 {
		return Topology{}, fmt.Errorf("numa: invalid topology %d nodes × %d cores", nodes, coresPerNode)
	}
	return Topology{Nodes: nodes, CoresPerNode: coresPerNode}, nil
}

// TotalCores returns the number of physical cores in the topology.
func (t Topology) TotalCores() int { return t.Nodes * t.CoresPerNode }

// NodeOfWorker returns the home NUMA node of a worker. Workers are distributed
// round-robin in blocks of CoresPerNode, mirroring how threads pinned to
// consecutive cores fill one socket before the next. Worker identifiers beyond
// the number of physical cores (hyperthreads) wrap around.
func (t Topology) NodeOfWorker(worker int) int {
	if worker < 0 {
		worker = -worker
	}
	core := worker % t.TotalCores()
	return core / t.CoresPerNode
}

// IsLocal reports whether a worker's accesses to memory on the given node are
// node-local.
func (t Topology) IsLocal(worker, node int) bool { return t.NodeOfWorker(worker) == node }

// AccessStats counts classified memory accesses. The unit is one tuple-sized
// access (16 bytes); absolute byte counts do not matter because the cost model
// only needs relative weights.
type AccessStats struct {
	LocalSeqRead   uint64
	RemoteSeqRead  uint64
	LocalRandRead  uint64
	RemoteRandRead uint64

	LocalSeqWrite   uint64
	RemoteSeqWrite  uint64
	LocalRandWrite  uint64
	RemoteRandWrite uint64

	// SyncOps counts fine-grained synchronization operations such as
	// test-and-set increments of a shared write cursor or latch
	// acquisitions on a shared hash table.
	SyncOps uint64
}

// Add accumulates other into s.
func (s *AccessStats) Add(other AccessStats) {
	s.LocalSeqRead += other.LocalSeqRead
	s.RemoteSeqRead += other.RemoteSeqRead
	s.LocalRandRead += other.LocalRandRead
	s.RemoteRandRead += other.RemoteRandRead
	s.LocalSeqWrite += other.LocalSeqWrite
	s.RemoteSeqWrite += other.RemoteSeqWrite
	s.LocalRandWrite += other.LocalRandWrite
	s.RemoteRandWrite += other.RemoteRandWrite
	s.SyncOps += other.SyncOps
}

// TotalAccesses returns the total number of recorded memory accesses,
// excluding synchronization operations.
func (s AccessStats) TotalAccesses() uint64 {
	return s.LocalSeqRead + s.RemoteSeqRead + s.LocalRandRead + s.RemoteRandRead +
		s.LocalSeqWrite + s.RemoteSeqWrite + s.LocalRandWrite + s.RemoteRandWrite
}

// RemoteFraction returns the fraction of accesses that were remote, or 0 if no
// accesses were recorded.
func (s AccessStats) RemoteFraction() float64 {
	total := s.TotalAccesses()
	if total == 0 {
		return 0
	}
	remote := s.RemoteSeqRead + s.RemoteRandRead + s.RemoteSeqWrite + s.RemoteRandWrite
	return float64(remote) / float64(total)
}

// Tracker records the accesses of a single worker against a topology. Each
// worker owns its own tracker (no sharing, in keeping with commandment C3);
// the coordinator merges them after the join.
type Tracker struct {
	topology Topology
	worker   int
	stats    AccessStats
}

// NewTracker creates a tracker for the given worker.
func NewTracker(topology Topology, worker int) *Tracker {
	return &Tracker{topology: topology, worker: worker}
}

// Worker returns the worker index the tracker belongs to.
func (t *Tracker) Worker() int { return t.worker }

// Node returns the worker's home node.
func (t *Tracker) Node() int { return t.topology.NodeOfWorker(t.worker) }

// SeqRead records count sequential reads from memory on the given node.
func (t *Tracker) SeqRead(node int, count uint64) {
	if t == nil {
		return
	}
	if t.topology.IsLocal(t.worker, node) {
		t.stats.LocalSeqRead += count
	} else {
		t.stats.RemoteSeqRead += count
	}
}

// RandRead records count random reads from memory on the given node.
func (t *Tracker) RandRead(node int, count uint64) {
	if t == nil {
		return
	}
	if t.topology.IsLocal(t.worker, node) {
		t.stats.LocalRandRead += count
	} else {
		t.stats.RemoteRandRead += count
	}
}

// SeqWrite records count sequential writes to memory on the given node.
func (t *Tracker) SeqWrite(node int, count uint64) {
	if t == nil {
		return
	}
	if t.topology.IsLocal(t.worker, node) {
		t.stats.LocalSeqWrite += count
	} else {
		t.stats.RemoteSeqWrite += count
	}
}

// RandWrite records count random writes to memory on the given node.
func (t *Tracker) RandWrite(node int, count uint64) {
	if t == nil {
		return
	}
	if t.topology.IsLocal(t.worker, node) {
		t.stats.LocalRandWrite += count
	} else {
		t.stats.RemoteRandWrite += count
	}
}

// Sync records count fine-grained synchronization operations.
func (t *Tracker) Sync(count uint64) {
	if t == nil {
		return
	}
	t.stats.SyncOps += count
}

// Stats returns a copy of the tracker's counters.
func (t *Tracker) Stats() AccessStats {
	if t == nil {
		return AccessStats{}
	}
	return t.stats
}

// MergeStats combines the per-worker statistics of all trackers.
func MergeStats(trackers []*Tracker) AccessStats {
	var total AccessStats
	for _, t := range trackers {
		if t != nil {
			total.Add(t.stats)
		}
	}
	return total
}

// CostModel assigns a simulated latency to each access class. The defaults are
// calibrated against the ratios of Figure 1 in the paper:
//
//   - sorting in a remote/global array is ~3× slower than sorting locally,
//     which a ~3–4× penalty on random remote accesses reproduces;
//   - synchronized scatter (test-and-set per tuple) is ~3.2× slower than
//     scatter into precomputed partitions;
//   - sequential scans of remote memory are only ~1.2× slower than local
//     scans because the hardware prefetcher hides most of the latency.
type CostModel struct {
	LocalSeqRead   float64 // nanoseconds per access
	RemoteSeqRead  float64
	LocalRandRead  float64
	RemoteRandRead float64

	LocalSeqWrite   float64
	RemoteSeqWrite  float64
	LocalRandWrite  float64
	RemoteRandWrite float64

	SyncOp float64
}

// DefaultCostModel returns latencies (in nanoseconds per 16-byte access)
// calibrated to reproduce the relative penalties of Figure 1.
func DefaultCostModel() CostModel {
	return CostModel{
		LocalSeqRead:   1.0,
		RemoteSeqRead:  1.2,
		LocalRandRead:  4.0,
		RemoteRandRead: 14.0,

		LocalSeqWrite:   1.0,
		RemoteSeqWrite:  1.5,
		LocalRandWrite:  5.0,
		RemoteRandWrite: 16.0,

		SyncOp: 20.0,
	}
}

// Estimate converts access statistics into a simulated duration.
func (c CostModel) Estimate(s AccessStats) time.Duration {
	ns := float64(s.LocalSeqRead)*c.LocalSeqRead +
		float64(s.RemoteSeqRead)*c.RemoteSeqRead +
		float64(s.LocalRandRead)*c.LocalRandRead +
		float64(s.RemoteRandRead)*c.RemoteRandRead +
		float64(s.LocalSeqWrite)*c.LocalSeqWrite +
		float64(s.RemoteSeqWrite)*c.RemoteSeqWrite +
		float64(s.LocalRandWrite)*c.LocalRandWrite +
		float64(s.RemoteRandWrite)*c.RemoteRandWrite +
		float64(s.SyncOps)*c.SyncOp
	return time.Duration(ns) * time.Nanosecond
}
