package numa

import (
	"testing"
	"testing/quick"
)

func TestNewTopologyValidation(t *testing.T) {
	if _, err := NewTopology(0, 8); err == nil {
		t.Fatal("zero nodes should be rejected")
	}
	if _, err := NewTopology(4, 0); err == nil {
		t.Fatal("zero cores should be rejected")
	}
	topo, err := NewTopology(4, 8)
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if topo.TotalCores() != 32 {
		t.Fatalf("TotalCores = %d, want 32", topo.TotalCores())
	}
}

func TestDefaultTopologyMatchesPaperMachine(t *testing.T) {
	topo := DefaultTopology()
	if topo.Nodes != 4 || topo.CoresPerNode != 8 || topo.TotalCores() != 32 {
		t.Fatalf("DefaultTopology = %+v, want 4 nodes × 8 cores", topo)
	}
}

func TestNodeOfWorker(t *testing.T) {
	topo := DefaultTopology()
	cases := map[int]int{
		0: 0, 7: 0, 8: 1, 15: 1, 16: 2, 24: 3, 31: 3,
		32: 0, // hyperthread wraps to node 0
		63: 3,
	}
	for worker, want := range cases {
		if got := topo.NodeOfWorker(worker); got != want {
			t.Errorf("NodeOfWorker(%d) = %d, want %d", worker, got, want)
		}
	}
	if !topo.IsLocal(0, 0) || topo.IsLocal(0, 1) {
		t.Fatal("IsLocal misclassifies worker 0")
	}
}

func TestNodeOfWorkerAlwaysInRange(t *testing.T) {
	f := func(nodes, cores uint8, worker int16) bool {
		n := int(nodes%8) + 1
		c := int(cores%8) + 1
		topo, err := NewTopology(n, c)
		if err != nil {
			return false
		}
		node := topo.NodeOfWorker(int(worker))
		return node >= 0 && node < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrackerClassification(t *testing.T) {
	topo := DefaultTopology()
	tr := NewTracker(topo, 0) // home node 0
	tr.SeqRead(0, 10)
	tr.SeqRead(1, 20)
	tr.RandRead(0, 3)
	tr.RandRead(2, 4)
	tr.SeqWrite(0, 5)
	tr.SeqWrite(3, 6)
	tr.RandWrite(0, 7)
	tr.RandWrite(1, 8)
	tr.Sync(9)

	s := tr.Stats()
	if s.LocalSeqRead != 10 || s.RemoteSeqRead != 20 {
		t.Fatalf("seq reads = %d/%d", s.LocalSeqRead, s.RemoteSeqRead)
	}
	if s.LocalRandRead != 3 || s.RemoteRandRead != 4 {
		t.Fatalf("rand reads = %d/%d", s.LocalRandRead, s.RemoteRandRead)
	}
	if s.LocalSeqWrite != 5 || s.RemoteSeqWrite != 6 {
		t.Fatalf("seq writes = %d/%d", s.LocalSeqWrite, s.RemoteSeqWrite)
	}
	if s.LocalRandWrite != 7 || s.RemoteRandWrite != 8 {
		t.Fatalf("rand writes = %d/%d", s.LocalRandWrite, s.RemoteRandWrite)
	}
	if s.SyncOps != 9 {
		t.Fatalf("sync ops = %d", s.SyncOps)
	}
	if s.TotalAccesses() != 10+20+3+4+5+6+7+8 {
		t.Fatalf("TotalAccesses = %d", s.TotalAccesses())
	}
	if tr.Worker() != 0 || tr.Node() != 0 {
		t.Fatalf("Worker/Node = %d/%d", tr.Worker(), tr.Node())
	}
}

func TestNilTrackerIsNoOp(t *testing.T) {
	var tr *Tracker
	tr.SeqRead(0, 1)
	tr.RandRead(0, 1)
	tr.SeqWrite(0, 1)
	tr.RandWrite(0, 1)
	tr.Sync(1)
	if tr.Stats().TotalAccesses() != 0 {
		t.Fatal("nil tracker should record nothing")
	}
}

func TestMergeStats(t *testing.T) {
	topo := DefaultTopology()
	a := NewTracker(topo, 0)
	b := NewTracker(topo, 8)
	a.SeqRead(0, 5) // local for worker 0
	b.SeqRead(0, 5) // remote for worker 8 (node 1)
	total := MergeStats([]*Tracker{a, b, nil})
	if total.LocalSeqRead != 5 || total.RemoteSeqRead != 5 {
		t.Fatalf("merged = %+v", total)
	}
}

func TestRemoteFraction(t *testing.T) {
	var s AccessStats
	if s.RemoteFraction() != 0 {
		t.Fatal("empty stats should have remote fraction 0")
	}
	s.LocalSeqRead = 75
	s.RemoteSeqRead = 25
	if got := s.RemoteFraction(); got != 0.25 {
		t.Fatalf("RemoteFraction = %f, want 0.25", got)
	}
}

func TestCostModelRelativePenalties(t *testing.T) {
	// The default cost model must reproduce the qualitative ordering of
	// Figure 1: random remote ≫ random local > sequential remote ≳
	// sequential local, and synchronization is expensive per operation.
	c := DefaultCostModel()
	if !(c.RemoteRandRead > 2*c.LocalRandRead) {
		t.Fatalf("remote random read (%f) should be much more expensive than local (%f)", c.RemoteRandRead, c.LocalRandRead)
	}
	if !(c.RemoteSeqRead < 1.5*c.LocalSeqRead) {
		t.Fatalf("remote sequential read (%f) should be close to local (%f)", c.RemoteSeqRead, c.LocalSeqRead)
	}
	if !(c.SyncOp > c.LocalSeqWrite) {
		t.Fatal("sync op should cost more than a plain local write")
	}
}

func TestCostModelEstimate(t *testing.T) {
	c := CostModel{LocalSeqRead: 2, RemoteSeqRead: 3, SyncOp: 10}
	s := AccessStats{LocalSeqRead: 100, RemoteSeqRead: 10, SyncOps: 1}
	if got := c.Estimate(s); got.Nanoseconds() != 2*100+3*10+10 {
		t.Fatalf("Estimate = %v", got)
	}
}

func TestFigure1ShapeFromCostModel(t *testing.T) {
	// Reconstruct the three Figure 1 comparisons from the access counters
	// an algorithm would report, and check the expected ordering of the
	// simulated durations.
	c := DefaultCostModel()
	n := uint64(1 << 20)

	// (1) sort local vs sort in a remote/global array: sorting performs a
	// mix of random reads and writes over the run.
	sortLocal := AccessStats{LocalRandRead: 4 * n, LocalRandWrite: 4 * n}
	sortRemote := AccessStats{RemoteRandRead: 4 * n, RemoteRandWrite: 4 * n}
	if !(c.Estimate(sortRemote) > 2*c.Estimate(sortLocal)) {
		t.Fatal("remote sort should be at least 2x more expensive than local sort")
	}

	// (2) synchronized scatter vs precomputed partitions.
	scatterSync := AccessStats{RemoteRandWrite: n, SyncOps: n}
	scatterPre := AccessStats{RemoteSeqWrite: n}
	if !(c.Estimate(scatterSync) > 2*c.Estimate(scatterPre)) {
		t.Fatal("synchronized scatter should be much more expensive")
	}

	// (3) merge join with remote vs local second run: sequential scans.
	joinRemote := AccessStats{LocalSeqRead: n, RemoteSeqRead: n}
	joinLocal := AccessStats{LocalSeqRead: 2 * n}
	ratio := float64(c.Estimate(joinRemote)) / float64(c.Estimate(joinLocal))
	if ratio < 1.0 || ratio > 1.5 {
		t.Fatalf("remote sequential join penalty ratio = %f, want within [1.0, 1.5]", ratio)
	}
}
