package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

func makeTuples(n int, seed int64, keyRange uint64) []relation.Tuple {
	rng := rand.New(rand.NewSource(seed))
	tuples := make([]relation.Tuple, n)
	for i := range tuples {
		tuples[i] = relation.Tuple{Key: rng.Uint64() % keyRange, Payload: uint64(i)}
	}
	return tuples
}

func TestNewRadixConfig(t *testing.T) {
	cases := []struct {
		bits      int
		maxKey    uint64
		wantShift uint
	}{
		{1, 31, 4},          // 5-bit domain, 1 bit -> shift 4 (paper's Figure 6)
		{2, 31, 3},          // 5-bit domain, 2 bits -> shift 3 (Figure 10)
		{8, 1<<32 - 1, 24},  // 32-bit domain, 8 bits
		{10, 1<<32 - 1, 22}, // Figure 16 uses B=10
		{5, 31, 0},          // domain exactly covered
		{8, 200, 0},         // domain smaller than bucket count
		{4, 0, 0},           // all-zero keys
	}
	for _, tc := range cases {
		cfg := NewRadixConfig(tc.bits, tc.maxKey)
		if cfg.Shift != tc.wantShift {
			t.Errorf("NewRadixConfig(%d, %d).Shift = %d, want %d", tc.bits, tc.maxKey, cfg.Shift, tc.wantShift)
		}
		if cfg.Clusters() != 1<<tc.bits {
			t.Errorf("Clusters() = %d, want %d", cfg.Clusters(), 1<<tc.bits)
		}
	}
}

func TestNewRadixConfigPanics(t *testing.T) {
	for _, bits := range []int{0, -1, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRadixConfig(%d, _) should panic", bits)
				}
			}()
			NewRadixConfig(bits, 100)
		}()
	}
}

func TestClusterMatchesPaperExample(t *testing.T) {
	// Figure 6 of the paper: 5-bit join keys in [0, 32), B = 1.
	// Keys < 16 go to cluster 0, keys >= 16 to cluster 1.
	cfg := NewRadixConfig(1, 31)
	for key := uint64(0); key < 32; key++ {
		want := 0
		if key >= 16 {
			want = 1
		}
		if got := cfg.Cluster(key); got != want {
			t.Errorf("Cluster(%d) = %d, want %d", key, got, want)
		}
	}
}

func TestClusterFigure10Example(t *testing.T) {
	// Figure 10: B = 2, domain [0, 32): partitions <8, [8,16), [16,24), >=24.
	cfg := NewRadixConfig(2, 31)
	cases := map[uint64]int{0: 0, 7: 0, 8: 1, 15: 1, 16: 2, 23: 2, 24: 3, 31: 3}
	for key, want := range cases {
		if got := cfg.Cluster(key); got != want {
			t.Errorf("Cluster(%d) = %d, want %d", key, got, want)
		}
	}
}

func TestClusterClamping(t *testing.T) {
	cfg := NewRadixConfig(2, 31)
	if got := cfg.Cluster(1000); got != 3 {
		t.Errorf("Cluster(1000) = %d, want clamped 3", got)
	}
}

func TestClusterKeyBounds(t *testing.T) {
	cfg := NewRadixConfig(2, 31)
	for cl := 0; cl < 4; cl++ {
		low := cfg.ClusterLowKey(cl)
		high := cfg.ClusterHighKey(cl)
		if low != uint64(cl*8) {
			t.Errorf("ClusterLowKey(%d) = %d, want %d", cl, low, cl*8)
		}
		if high != uint64((cl+1)*8) {
			t.Errorf("ClusterHighKey(%d) = %d, want %d", cl, high, (cl+1)*8)
		}
		if cfg.Cluster(low) != cl {
			t.Errorf("low key %d not in cluster %d", low, cl)
		}
		if cfg.Cluster(high-1) != cl {
			t.Errorf("high-1 key %d not in cluster %d", high-1, cl)
		}
	}
}

func TestClusterHighKeyOverflow(t *testing.T) {
	// 8 bits over the full 64-bit domain: the last cluster's high bound
	// must not overflow to zero.
	cfg := RadixConfig{Bits: 8, Shift: 56}
	if got := cfg.ClusterHighKey(255); got != ^uint64(0) {
		t.Errorf("ClusterHighKey(255) = %d, want max uint64", got)
	}
}

func TestBuildHistogram(t *testing.T) {
	cfg := NewRadixConfig(2, 31)
	// Keys from the paper's Figure 10 chunk C1: 19, 5, 9, 7, 3, 21, 1, 17, 4.
	keys := []uint64{19, 5, 9, 7, 3, 21, 1, 17, 4}
	tuples := make([]relation.Tuple, len(keys))
	for i, k := range keys {
		tuples[i].Key = k
	}
	h := BuildHistogram(tuples, cfg)
	// <8: {5,7,3,1,4} = 5... wait paper says chunk C1 has 7 values <8 across
	// figure 10's histogram of both partitions; here we just verify counts.
	want := Histogram{5, 1, 3, 0} // <8: 5,7,3,1,4 | [8,16): 9 | [16,24): 19,21,17 | >=24: none
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("histogram = %v, want %v", h, want)
		}
	}
	if h.Total() != len(keys) {
		t.Fatalf("Total = %d, want %d", h.Total(), len(keys))
	}
}

func TestHistogramAddAndCombine(t *testing.T) {
	a := Histogram{1, 2, 3}
	b := Histogram{4, 5, 6}
	combined := CombineHistograms([]Histogram{a, b})
	want := Histogram{5, 7, 9}
	for i := range want {
		if combined[i] != want[i] {
			t.Fatalf("combined = %v, want %v", combined, want)
		}
	}
	if CombineHistograms(nil) != nil {
		t.Fatal("CombineHistograms(nil) should be nil")
	}
}

func TestHistogramAddPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched lengths should panic")
		}
	}()
	(Histogram{1}).Add(Histogram{1, 2})
}

func TestUniformSplitters(t *testing.T) {
	cases := []struct {
		clusters, partitions int
	}{
		{4, 2}, {4, 4}, {256, 32}, {8, 3}, {2, 4},
	}
	for _, tc := range cases {
		sp := UniformSplitters(tc.clusters, tc.partitions)
		if err := sp.Validate(tc.partitions); err != nil {
			t.Fatalf("UniformSplitters(%d, %d) invalid: %v", tc.clusters, tc.partitions, err)
		}
		if len(sp) != tc.clusters {
			t.Fatalf("len(sp) = %d, want %d", len(sp), tc.clusters)
		}
		// First cluster must map to partition 0.
		if sp[0] != 0 {
			t.Fatalf("sp[0] = %d, want 0", sp[0])
		}
		// When clusters >= partitions, the last cluster maps to the last partition.
		if tc.clusters >= tc.partitions && sp[tc.clusters-1] != tc.partitions-1 {
			t.Fatalf("sp[last] = %d, want %d", sp[tc.clusters-1], tc.partitions-1)
		}
	}
}

func TestSplitterVectorValidate(t *testing.T) {
	if err := (SplitterVector{0, 0, 1, 1}).Validate(2); err != nil {
		t.Fatalf("valid vector rejected: %v", err)
	}
	if err := (SplitterVector{0, 1, 0}).Validate(2); err == nil {
		t.Fatal("non-monotone vector accepted")
	}
	if err := (SplitterVector{0, 2}).Validate(2); err == nil {
		t.Fatal("out-of-range vector accepted")
	}
}

func TestPartitionSizesAndBounds(t *testing.T) {
	cfg := NewRadixConfig(2, 31)
	global := Histogram{7, 3, 3, 1} // Figure 10's combined histogram
	sp := SplitterVector{0, 1, 1, 1}
	sizes := PartitionSizes(global, sp, 2)
	if sizes[0] != 7 || sizes[1] != 7 {
		t.Fatalf("sizes = %v, want [7 7]", sizes)
	}
	low, high := PartitionBounds(cfg, sp, 2)
	if low[0] != 0 || high[0] != 8 {
		t.Fatalf("partition 0 bounds = [%d, %d), want [0, 8)", low[0], high[0])
	}
	if low[1] != 8 || high[1] != 32 {
		t.Fatalf("partition 1 bounds = [%d, %d), want [8, 32)", low[1], high[1])
	}
}

func TestComputePrefixSumsPaperExample(t *testing.T) {
	// Figure 6: two workers, B = 1. h1 = {4, 3}, h2 = {3, 4}.
	h1 := Histogram{4, 3}
	h2 := Histogram{3, 4}
	sp := SplitterVector{0, 1}
	ps := ComputePrefixSums([]Histogram{h1, h2}, sp, 2)
	// ps1 = {0, 0}; ps2 = {4, 3}; sizes = {7, 7}.
	if ps.Offsets[0][0] != 0 || ps.Offsets[0][1] != 0 {
		t.Fatalf("ps1 = %v, want [0 0]", ps.Offsets[0])
	}
	if ps.Offsets[1][0] != 4 || ps.Offsets[1][1] != 3 {
		t.Fatalf("ps2 = %v, want [4 3]", ps.Offsets[1])
	}
	if ps.Sizes[0] != 7 || ps.Sizes[1] != 7 {
		t.Fatalf("sizes = %v, want [7 7]", ps.Sizes)
	}
}

func TestScatterPreservesTuplesAndRanges(t *testing.T) {
	workers := 4
	cfg := NewRadixConfig(2, 1<<20-1)
	sp := UniformSplitters(cfg.Clusters(), workers)
	all := makeTuples(10000, 42, 1<<20)
	rel := relation.New("r", all)
	chunks := rel.Split(workers)

	histograms := make([]Histogram, workers)
	for w, c := range chunks {
		histograms[w] = BuildHistogram(c.Tuples, cfg)
	}
	ps := ComputePrefixSums(histograms, sp, workers)
	targets := make([][]relation.Tuple, workers)
	for p := 0; p < workers; p++ {
		targets[p] = make([]relation.Tuple, ps.Sizes[p])
	}
	for w, c := range chunks {
		cursors := append([]int(nil), ps.Offsets[w]...)
		Scatter(c.Tuples, cfg, sp, targets, cursors)
	}

	// All tuples preserved.
	var scattered []relation.Tuple
	for _, tgt := range targets {
		scattered = append(scattered, tgt...)
	}
	if !relation.SameMultiset(all, scattered) {
		t.Fatal("scatter lost or duplicated tuples")
	}
	// Every tuple is in the partition covering its key.
	low, high := PartitionBounds(cfg, sp, workers)
	for p, tgt := range targets {
		for _, tup := range tgt {
			if tup.Key < low[p] || tup.Key >= high[p] {
				t.Fatalf("tuple key %d in partition %d with range [%d, %d)", tup.Key, p, low[p], high[p])
			}
		}
	}
}

func TestScatterProperty(t *testing.T) {
	f := func(rawKeys []uint64, workerCount uint8) bool {
		workers := int(workerCount%7) + 1
		cfg := NewRadixConfig(4, 1<<32-1)
		sp := UniformSplitters(cfg.Clusters(), workers)
		tuples := make([]relation.Tuple, len(rawKeys))
		for i, k := range rawKeys {
			tuples[i] = relation.Tuple{Key: k % (1 << 32), Payload: uint64(i)}
		}
		rel := relation.New("r", tuples)
		chunks := rel.Split(workers)
		histograms := make([]Histogram, workers)
		for w, c := range chunks {
			histograms[w] = BuildHistogram(c.Tuples, cfg)
		}
		ps := ComputePrefixSums(histograms, sp, workers)
		targets := make([][]relation.Tuple, workers)
		total := 0
		for p := 0; p < workers; p++ {
			targets[p] = make([]relation.Tuple, ps.Sizes[p])
			total += ps.Sizes[p]
		}
		if total != len(tuples) {
			return false
		}
		for w, c := range chunks {
			cursors := append([]int(nil), ps.Offsets[w]...)
			Scatter(c.Tuples, cfg, sp, targets, cursors)
		}
		var scattered []relation.Tuple
		for _, tgt := range targets {
			scattered = append(scattered, tgt...)
		}
		return relation.SameMultiset(tuples, scattered)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestExplicitBoundsScatterMatchesRadix(t *testing.T) {
	// Partitioning with explicit bounds equal to the radix cluster bounds
	// must produce identical partition contents.
	workers := 4
	cfg := NewRadixConfig(2, 1<<16-1)
	sp := UniformSplitters(cfg.Clusters(), workers)
	all := makeTuples(5000, 9, 1<<16)

	bounds := make([]uint64, workers)
	_, high := PartitionBounds(cfg, sp, workers)
	copy(bounds, high)

	hRadix := BuildHistogram(all, cfg)
	hExplicit := BuildHistogramExplicitBounds(all, bounds)
	// Aggregate radix histogram by partition to compare.
	byPartition := make([]int, workers)
	for cl, c := range hRadix {
		byPartition[sp[cl]] += c
	}
	for p := 0; p < workers; p++ {
		if byPartition[p] != hExplicit[p] {
			t.Fatalf("partition %d: radix count %d != explicit count %d", p, byPartition[p], hExplicit[p])
		}
	}
}

func TestSearchBound(t *testing.T) {
	bounds := []uint64{10, 20, 30, 1 << 63}
	cases := map[uint64]int{0: 0, 9: 0, 10: 1, 19: 1, 20: 2, 29: 2, 30: 3, 1 << 40: 3}
	for key, want := range cases {
		if got := searchBound(bounds, key); got != want {
			t.Errorf("searchBound(%d) = %d, want %d", key, got, want)
		}
	}
}
