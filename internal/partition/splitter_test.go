package partition

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/relation"
)

// skewedKeys produces n keys with an 80:20 skew: 80% of the keys fall into the
// high (or low) 20% of the domain, as in Section 5.6 of the paper.
func skewedKeys(n int, domain uint64, highEnd bool, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, n)
	cut := domain / 5 // 20% of the domain
	for i := range keys {
		if rng.Float64() < 0.8 {
			if highEnd {
				keys[i] = domain - cut + rng.Uint64()%cut
			} else {
				keys[i] = rng.Uint64() % cut
			}
		} else {
			if highEnd {
				keys[i] = rng.Uint64() % (domain - cut)
			} else {
				keys[i] = cut + rng.Uint64()%(domain-cut)
			}
		}
	}
	return keys
}

func buildTestCDF(keys []uint64, boundsPerRun, runs int) *CDF {
	tuples := make([]relation.Tuple, len(keys))
	for i, k := range keys {
		tuples[i].Key = k
	}
	sort.Slice(tuples, func(i, j int) bool { return tuples[i].Key < tuples[j].Key })
	// Split the sorted data round-robin into runs to mimic independent
	// per-worker runs, then re-sort each (round robin keeps them sorted).
	perRun := make([][]relation.Tuple, runs)
	for i, t := range tuples {
		perRun[i%runs] = append(perRun[i%runs], t)
	}
	var boundSets [][]uint64
	var lens []int
	for _, r := range perRun {
		boundSets = append(boundSets, EquiHeightBounds(r, boundsPerRun))
		lens = append(lens, len(r))
	}
	return BuildCDF(boundSets, lens)
}

func TestDefaultSplitterCost(t *testing.T) {
	c := DefaultSplitterCost(8)
	if c.Workers != 8 || c.SortWeight != 1 || c.ScanRWeight != 1 || c.ScanSWeight != 1 {
		t.Fatalf("unexpected default cost: %+v", c)
	}
	if got := c.PartitionCost(0, 0); got != 0 {
		t.Fatalf("PartitionCost(0,0) = %f, want 0", got)
	}
	// 8 tuples: 8*log2(8) + 8*8 + 100 = 24 + 64 + 100 = 188.
	if got := c.PartitionCost(8, 100); got != 188 {
		t.Fatalf("PartitionCost(8,100) = %f, want 188", got)
	}
}

func TestComputeSplittersUniformData(t *testing.T) {
	// With uniform R and S, the equi-cost splitters should give every
	// worker roughly 1/T of the R tuples.
	workers := 8
	n := 100000
	rng := rand.New(rand.NewSource(1))
	domain := uint64(1 << 32)
	rKeys := make([]uint64, n)
	for i := range rKeys {
		rKeys[i] = rng.Uint64() % domain
	}
	rTuples := make([]relation.Tuple, n)
	for i, k := range rKeys {
		rTuples[i].Key = k
	}
	cfg := NewRadixConfig(10, domain-1)
	globalR := BuildHistogram(rTuples, cfg)
	cdf := buildTestCDF(rKeys, 16, workers)

	sp := ComputeSplitters(globalR, cdf, cfg, DefaultSplitterCost(workers))
	if err := sp.Validate(workers); err != nil {
		t.Fatalf("invalid splitters: %v", err)
	}
	sizes := PartitionSizes(globalR, sp, workers)
	for p, s := range sizes {
		share := float64(s) / float64(n)
		if share < 0.5/float64(workers) || share > 2.0/float64(workers) {
			t.Fatalf("partition %d holds %.1f%% of R, expected near %.1f%%", p, share*100, 100.0/float64(workers))
		}
	}
}

func TestComputeSplittersNegativelyCorrelatedSkew(t *testing.T) {
	// The Section 5.6 scenario: R skewed toward the high end, S toward the
	// low end. Equi-cost splitters must yield a lower maximum cost than
	// equi-height splitters.
	workers := 8
	n := 100000
	domain := uint64(1 << 32)
	rKeys := skewedKeys(n, domain, true, 2)
	sKeys := skewedKeys(4*n, domain, false, 3)

	rTuples := make([]relation.Tuple, n)
	for i, k := range rKeys {
		rTuples[i].Key = k
	}
	cfg := NewRadixConfig(10, domain-1)
	globalR := BuildHistogram(rTuples, cfg)
	cdf := buildTestCDF(sKeys, 16, workers)
	cost := DefaultSplitterCost(workers)

	equiCost := ComputeSplitters(globalR, cdf, cfg, cost)
	if err := equiCost.Validate(workers); err != nil {
		t.Fatalf("invalid equi-cost splitters: %v", err)
	}
	equiHeight := EquiHeightSplitters(globalR, workers)
	if err := equiHeight.Validate(workers); err != nil {
		t.Fatalf("invalid equi-height splitters: %v", err)
	}

	maxEquiCost := MaxPartitionCost(globalR, cdf, cfg, cost, equiCost)
	maxEquiHeight := MaxPartitionCost(globalR, cdf, cfg, cost, equiHeight)
	if maxEquiCost > maxEquiHeight {
		t.Fatalf("equi-cost splitters (max %.0f) should not be worse than equi-height (max %.0f)", maxEquiCost, maxEquiHeight)
	}
	// The improvement should be substantial for this adversarial workload.
	if maxEquiCost > 0.9*maxEquiHeight {
		t.Fatalf("expected a clear balancing win: equi-cost %.0f vs equi-height %.0f", maxEquiCost, maxEquiHeight)
	}
}

func TestComputeSplittersSingleWorker(t *testing.T) {
	cfg := NewRadixConfig(4, 1000)
	globalR := make(Histogram, cfg.Clusters())
	globalR[3] = 10
	cdf := BuildCDF(nil, nil)
	sp := ComputeSplitters(globalR, cdf, cfg, DefaultSplitterCost(1))
	for _, p := range sp {
		if p != 0 {
			t.Fatal("single-worker splitters must all map to partition 0")
		}
	}
}

func TestComputeSplittersPanicsOnZeroWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero workers")
		}
	}()
	cfg := NewRadixConfig(2, 100)
	ComputeSplitters(make(Histogram, 4), BuildCDF(nil, nil), cfg, SplitterCost{Workers: 0})
}

func TestComputeSplittersMoreWorkersThanClusters(t *testing.T) {
	// Degenerate but legal: more workers than radix clusters. The splitter
	// vector must stay valid; some partitions simply stay empty.
	cfg := NewRadixConfig(1, 100)
	globalR := Histogram{5, 5}
	cdf := BuildCDF(nil, nil)
	sp := ComputeSplitters(globalR, cdf, cfg, DefaultSplitterCost(8))
	if err := sp.Validate(8); err != nil {
		t.Fatalf("invalid splitters: %v", err)
	}
}

func TestEquiHeightSplittersBalanceRCounts(t *testing.T) {
	workers := 4
	cfg := NewRadixConfig(8, 1<<20-1)
	tuples := makeTuples(40000, 21, 1<<20)
	globalR := BuildHistogram(tuples, cfg)
	sp := EquiHeightSplitters(globalR, workers)
	if err := sp.Validate(workers); err != nil {
		t.Fatalf("invalid splitters: %v", err)
	}
	sizes := PartitionSizes(globalR, sp, workers)
	for p, s := range sizes {
		share := float64(s) / 40000.0
		if share < 0.1 || share > 0.5 {
			t.Fatalf("partition %d holds %.1f%% of R, expected near 25%%", p, share*100)
		}
	}
}

func TestEquiHeightSplittersSingleWorker(t *testing.T) {
	sp := EquiHeightSplitters(Histogram{1, 2, 3}, 1)
	for _, p := range sp {
		if p != 0 {
			t.Fatal("single-worker equi-height splitters must map to partition 0")
		}
	}
}
