package partition

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

func sortedTuples(n int, seed int64, keyRange uint64) []relation.Tuple {
	rng := rand.New(rand.NewSource(seed))
	tuples := make([]relation.Tuple, n)
	for i := range tuples {
		tuples[i] = relation.Tuple{Key: rng.Uint64() % keyRange, Payload: uint64(i)}
	}
	sort.Slice(tuples, func(i, j int) bool { return tuples[i].Key < tuples[j].Key })
	return tuples
}

func TestEquiHeightBounds(t *testing.T) {
	run := []relation.Tuple{{Key: 1}, {Key: 7}, {Key: 10}, {Key: 15}, {Key: 22}, {Key: 31}, {Key: 66}, {Key: 81}}
	// Figure 8, run S1 with 4 bounds: b11=7, b12=15, b13=31, b14=81.
	bounds := EquiHeightBounds(run, 4)
	want := []uint64{7, 15, 31, 81}
	if len(bounds) != len(want) {
		t.Fatalf("bounds = %v, want %v", bounds, want)
	}
	for i := range want {
		if bounds[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", bounds, want)
		}
	}
}

func TestEquiHeightBoundsEdgeCases(t *testing.T) {
	if EquiHeightBounds(nil, 4) != nil {
		t.Fatal("empty run should yield nil bounds")
	}
	if EquiHeightBounds([]relation.Tuple{{Key: 3}}, 0) != nil {
		t.Fatal("zero bounds should yield nil")
	}
	// More bounds than tuples: last bound is still the max key.
	bounds := EquiHeightBounds([]relation.Tuple{{Key: 3}, {Key: 9}}, 5)
	if len(bounds) != 5 {
		t.Fatalf("len(bounds) = %d, want 5", len(bounds))
	}
	if bounds[4] != 9 {
		t.Fatalf("last bound = %d, want max key 9", bounds[4])
	}
}

func TestEquiHeightBoundsLastIsMax(t *testing.T) {
	run := sortedTuples(1000, 5, 1<<30)
	bounds := EquiHeightBounds(run, 16)
	if bounds[len(bounds)-1] != run[len(run)-1].Key {
		t.Fatal("last bound must equal the run's maximum key")
	}
	// Bounds must be non-decreasing.
	for i := 1; i < len(bounds); i++ {
		if bounds[i] < bounds[i-1] {
			t.Fatal("bounds not monotone")
		}
	}
}

func TestBuildCDFFigure8(t *testing.T) {
	// Figure 8: four runs of 8 tuples each, skewed toward small keys.
	runs := [][]relation.Tuple{
		{{Key: 1}, {Key: 7}, {Key: 10}, {Key: 15}, {Key: 22}, {Key: 31}, {Key: 66}, {Key: 81}},
		{{Key: 2}, {Key: 12}, {Key: 17}, {Key: 25}, {Key: 33}, {Key: 42}, {Key: 78}, {Key: 90}},
		{{Key: 4}, {Key: 9}, {Key: 13}, {Key: 30}, {Key: 37}, {Key: 48}, {Key: 54}, {Key: 75}},
		{{Key: 5}, {Key: 13}, {Key: 28}, {Key: 44}, {Key: 49}, {Key: 56}, {Key: 77}, {Key: 100}},
	}
	var boundsPerRun [][]uint64
	var lens []int
	for _, r := range runs {
		boundsPerRun = append(boundsPerRun, EquiHeightBounds(r, 4))
		lens = append(lens, len(r))
	}
	cdf := BuildCDF(boundsPerRun, lens)
	if cdf.Total() != 32 {
		t.Fatalf("Total = %f, want 32", cdf.Total())
	}
	// At the global maximum key the CDF must report the full mass.
	if got := cdf.Estimate(100); got != 32 {
		t.Fatalf("Estimate(100) = %f, want 32", got)
	}
	// The CDF must be monotone.
	prev := 0.0
	for key := uint64(0); key <= 110; key++ {
		est := cdf.Estimate(key)
		if est < prev-1e-9 {
			t.Fatalf("CDF not monotone at key %d: %f < %f", key, est, prev)
		}
		prev = est
	}
	// Skew check: most keys are small, so the median of the mass should be
	// reached well before the middle of the key domain (50).
	half := cdf.Estimate(50)
	if half < 20 {
		t.Fatalf("Estimate(50) = %f, expected the skew toward small keys to put most mass below 50", half)
	}
}

func TestCDFEstimateAccuracy(t *testing.T) {
	// With many bounds, the CDF estimate should be close to the true rank.
	n := 20000
	run := sortedTuples(n, 11, 1<<24)
	bounds := EquiHeightBounds(run, 128)
	cdf := BuildCDF([][]uint64{bounds}, []int{n})
	for _, probe := range []uint64{1 << 10, 1 << 20, 1 << 22, 1 << 23} {
		trueRank := sort.Search(n, func(i int) bool { return run[i].Key > probe })
		est := cdf.Estimate(probe)
		if math.Abs(est-float64(trueRank)) > float64(n)/64 {
			t.Fatalf("Estimate(%d) = %f, true rank %d (error too large)", probe, est, trueRank)
		}
	}
}

func TestCDFEstimateRange(t *testing.T) {
	n := 10000
	run := sortedTuples(n, 13, 1<<20)
	bounds := EquiHeightBounds(run, 64)
	cdf := BuildCDF([][]uint64{bounds}, []int{n})

	full := cdf.EstimateRange(0, ^uint64(0))
	if math.Abs(full-float64(n)) > 1 {
		t.Fatalf("EstimateRange(full) = %f, want ~%d", full, n)
	}
	if got := cdf.EstimateRange(100, 100); got != 0 {
		t.Fatalf("empty range estimate = %f, want 0", got)
	}
	if got := cdf.EstimateRange(200, 100); got != 0 {
		t.Fatalf("inverted range estimate = %f, want 0", got)
	}
	// Two adjacent ranges must sum to the enclosing range.
	a := cdf.EstimateRange(0, 1<<19)
	b := cdf.EstimateRange(1<<19, 1<<20)
	ab := cdf.EstimateRange(0, 1<<20)
	if math.Abs(a+b-ab) > 1e-6 {
		t.Fatalf("range additivity violated: %f + %f != %f", a, b, ab)
	}
}

func TestCDFEmptyAndMismatch(t *testing.T) {
	cdf := BuildCDF(nil, nil)
	if cdf.Estimate(123) != 0 || cdf.Total() != 0 {
		t.Fatal("empty CDF should estimate 0 everywhere")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths should panic")
		}
	}()
	BuildCDF([][]uint64{{1}}, []int{1, 2})
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(rawKeys []uint64, probes []uint64) bool {
		if len(rawKeys) == 0 {
			return true
		}
		tuples := make([]relation.Tuple, len(rawKeys))
		for i, k := range rawKeys {
			tuples[i].Key = k % (1 << 32)
		}
		sort.Slice(tuples, func(i, j int) bool { return tuples[i].Key < tuples[j].Key })
		bounds := EquiHeightBounds(tuples, 8)
		cdf := BuildCDF([][]uint64{bounds}, []int{len(tuples)})
		for i := range probes {
			probes[i] %= 1 << 33
		}
		sort.Slice(probes, func(i, j int) bool { return probes[i] < probes[j] })
		prev := -1.0
		for _, p := range probes {
			est := cdf.Estimate(p)
			if est < prev-1e-9 || est > cdf.Total()+1e-9 {
				return false
			}
			prev = est
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
