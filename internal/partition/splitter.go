package partition

import (
	"math"
)

// SplitterCost models the per-worker cost the splitter computation balances
// (Section 4.3 of the paper):
//
//	split-relevant-cost_i = |Ri|·log2(|Ri|)        (sort chunk Ri)
//	                      + T·|Ri|                  (process run Ri for all S runs)
//	                      + CDF(Ri.high) − CDF(Ri.low)  (process relevant S data)
//
// The weights allow experiments (and ablation benches) to change the relative
// cost of sorting R versus scanning S without touching the algorithm.
type SplitterCost struct {
	// Workers is T, the number of parallel workers.
	Workers int
	// SortWeight scales the |Ri|·log2(|Ri|) term. 1 by default.
	SortWeight float64
	// ScanRWeight scales the T·|Ri| term. 1 by default.
	ScanRWeight float64
	// ScanSWeight scales the CDF range term. 1 by default.
	ScanSWeight float64
}

// DefaultSplitterCost returns the cost model with the paper's unit weights.
func DefaultSplitterCost(workers int) SplitterCost {
	return SplitterCost{Workers: workers, SortWeight: 1, ScanRWeight: 1, ScanSWeight: 1}
}

// PartitionCost evaluates the split-relevant cost of a candidate partition
// holding rCount private tuples and covering sMass public tuples.
func (c SplitterCost) PartitionCost(rCount int, sMass float64) float64 {
	sortCost := 0.0
	if rCount > 1 {
		sortCost = float64(rCount) * math.Log2(float64(rCount))
	}
	return c.SortWeight*sortCost +
		c.ScanRWeight*float64(c.Workers)*float64(rCount) +
		c.ScanSWeight*sMass
}

// ComputeSplitters determines the load-balancing splitter vector for P-MPSM's
// skew-resilient partitioning. It takes the global fine-grained radix
// histogram of R (Section 4.2), the global CDF of S (Section 4.1), the radix
// configuration that produced the histogram, and the cost model, and returns
// a splitter vector assigning each radix cluster to one of cost.Workers
// contiguous partitions such that the maximum per-partition cost is
// (approximately) minimized.
//
// The optimization is the classic "minimize the largest block sum" contiguous
// partitioning problem (the paper refers to Ross & Cieslewicz for exact
// two-table splitters); we solve it by binary searching the optimal maximum
// cost and greedily packing clusters, which is optimal for monotone cost
// functions of contiguous cluster ranges and runs in
// O(clusters · log(total cost / precision)).
func ComputeSplitters(globalR Histogram, cdf *CDF, cfg RadixConfig, cost SplitterCost) SplitterVector {
	clusters := len(globalR)
	workers := cost.Workers
	if workers <= 0 {
		panic("partition: ComputeSplitters with non-positive worker count")
	}
	sp := make(SplitterVector, clusters)
	if workers == 1 {
		return sp
	}

	// Precompute, per cluster, the R count and the estimated S mass of its
	// key range so that range costs can be accumulated cheaply during the
	// greedy feasibility check.
	sMass := make([]float64, clusters)
	for cl := 0; cl < clusters; cl++ {
		low := cfg.ClusterLowKey(cl)
		high := cfg.ClusterHighKey(cl)
		sMass[cl] = cdf.EstimateRange(low, high)
	}

	// An upper bound on the optimal maximum cost: everything in one
	// partition. A lower bound: the cost of the most expensive single
	// cluster (no partition can be cheaper than its priciest cluster).
	totalR := globalR.Total()
	upper := cost.PartitionCost(totalR, cdf.Total())
	lower := 0.0
	for cl := 0; cl < clusters; cl++ {
		c := cost.PartitionCost(globalR[cl], sMass[cl])
		if c > lower {
			lower = c
		}
	}

	// feasible reports whether the clusters can be packed into at most
	// `workers` contiguous partitions, each of cost <= limit, and fills sp
	// with the assignment when they can.
	feasible := func(limit float64, record bool) bool {
		part := 0
		rAcc := 0
		sAcc := 0.0
		for cl := 0; cl < clusters; cl++ {
			rNext := rAcc + globalR[cl]
			sNext := sAcc + sMass[cl]
			if cost.PartitionCost(rNext, sNext) > limit && (rAcc > 0 || sAcc > 0) {
				// Close the current partition and start a new one
				// with this cluster.
				part++
				if part >= workers {
					return false
				}
				rNext = globalR[cl]
				sNext = sMass[cl]
			}
			rAcc, sAcc = rNext, sNext
			if record {
				sp[cl] = part
			}
		}
		return true
	}

	// Binary search the smallest feasible limit. 40 iterations reduce the
	// uncertainty below any practically relevant resolution.
	for i := 0; i < 40 && upper-lower > 1e-6*math.Max(1, upper); i++ {
		mid := (lower + upper) / 2
		if feasible(mid, false) {
			upper = mid
		} else {
			lower = mid
		}
	}
	if !feasible(upper, true) {
		// Should not happen (the all-in-one bound is always feasible),
		// but fall back to uniform splitters rather than returning an
		// invalid vector.
		return UniformSplitters(clusters, workers)
	}
	return sp
}

// EquiHeightSplitters builds the non-skew-aware alternative used as the
// baseline in Figure 16(b): clusters are packed so that every partition holds
// (approximately) the same number of R tuples, ignoring the S distribution.
func EquiHeightSplitters(globalR Histogram, workers int) SplitterVector {
	clusters := len(globalR)
	sp := make(SplitterVector, clusters)
	if workers <= 1 {
		return sp
	}
	total := globalR.Total()
	target := float64(total) / float64(workers)
	part := 0
	acc := 0
	for cl := 0; cl < clusters; cl++ {
		sp[cl] = part
		acc += globalR[cl]
		// Move to the next partition once the current one has reached its
		// share, leaving enough partitions for the remaining clusters.
		if float64(acc) >= target*float64(part+1) && part < workers-1 {
			part++
		}
	}
	return sp
}

// MaxPartitionCost evaluates the maximum per-partition split-relevant cost of
// a given splitter vector. It is used by tests and by the Figure 16 harness to
// compare equi-height with equi-cost splitters.
func MaxPartitionCost(globalR Histogram, cdf *CDF, cfg RadixConfig, cost SplitterCost, sp SplitterVector) float64 {
	workers := cost.Workers
	rCounts := make([]int, workers)
	low := make([]uint64, workers)
	high := make([]uint64, workers)
	for p := 0; p < workers; p++ {
		low[p] = ^uint64(0)
	}
	for cl, p := range sp {
		rCounts[p] += globalR[cl]
		cl0 := cfg.ClusterLowKey(cl)
		cl1 := cfg.ClusterHighKey(cl)
		if cl0 < low[p] {
			low[p] = cl0
		}
		if cl1 > high[p] {
			high[p] = cl1
		}
	}
	maxCost := 0.0
	for p := 0; p < workers; p++ {
		var sMass float64
		if low[p] <= high[p] {
			sMass = cdf.EstimateRange(low[p], high[p])
		}
		if c := cost.PartitionCost(rCounts[p], sMass); c > maxCost {
			maxCost = c
		}
	}
	return maxCost
}
