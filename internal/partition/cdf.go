package partition

import (
	"fmt"
	"sort"

	"repro/internal/relation"
)

// EquiHeightBounds extracts numBounds equi-height histogram bounds from a run
// that is already sorted by key: bound j (1-based) is the key value at rank
// j·len/numBounds. Because the run is sorted this costs only numBounds array
// accesses — the paper's "en passant, i.e. in almost no time" observation.
//
// The last bound is always the run's maximum key so that the derived CDF
// covers the full key range of the run.
func EquiHeightBounds(run []relation.Tuple, numBounds int) []uint64 {
	if numBounds <= 0 || len(run) == 0 {
		return nil
	}
	bounds := make([]uint64, numBounds)
	for j := 1; j <= numBounds; j++ {
		idx := j*len(run)/numBounds - 1
		if idx < 0 {
			idx = 0
		}
		bounds[j-1] = run[idx].Key
	}
	return bounds
}

// EquiHeightBoundsKeys is EquiHeightBounds over a raw sorted key column, the
// structure-of-arrays variant used by the columnar batch path.
func EquiHeightBoundsKeys(keys []uint64, numBounds int) []uint64 {
	if numBounds <= 0 || len(keys) == 0 {
		return nil
	}
	bounds := make([]uint64, numBounds)
	for j := 1; j <= numBounds; j++ {
		idx := j*len(keys)/numBounds - 1
		if idx < 0 {
			idx = 0
		}
		bounds[j-1] = keys[idx]
	}
	return bounds
}

// CDF is a global cumulative distribution function of the public input S,
// assembled from the per-run equi-height histogram bounds of all workers
// (Section 4.1 of the paper). Probing the CDF with a key returns an estimate
// of how many S tuples have a key less than or equal to the probe.
type CDF struct {
	// keys are the merged histogram bounds in ascending order.
	keys []uint64
	// mass[i] is the estimated number of tuples with key <= keys[i].
	mass []float64
	// total is the total number of tuples represented (|S|).
	total float64
}

// BuildCDF merges the per-run equi-height bounds into a global CDF. Each
// bound of a run with runLen tuples and numBounds bounds accounts for
// runLen/numBounds tuples (the equal-height assumption). The bounds of all
// runs are merged in ascending key order while accumulating mass.
//
// boundsPerRun[i] must be the EquiHeightBounds of run i; runLens[i] its
// length. Runs with no bounds (empty runs) contribute nothing.
func BuildCDF(boundsPerRun [][]uint64, runLens []int) *CDF {
	if len(boundsPerRun) != len(runLens) {
		panic(fmt.Sprintf("partition: BuildCDF got %d bound sets but %d run lengths", len(boundsPerRun), len(runLens)))
	}
	type step struct {
		key  uint64
		mass float64
	}
	var steps []step
	var total float64
	for i, bounds := range boundsPerRun {
		if len(bounds) == 0 {
			continue
		}
		per := float64(runLens[i]) / float64(len(bounds))
		total += float64(runLens[i])
		for _, b := range bounds {
			steps = append(steps, step{key: b, mass: per})
		}
	}
	sort.Slice(steps, func(a, b int) bool { return steps[a].key < steps[b].key })

	cdf := &CDF{total: total}
	var acc float64
	for _, s := range steps {
		acc += s.mass
		// Coalesce equal keys into a single step.
		if n := len(cdf.keys); n > 0 && cdf.keys[n-1] == s.key {
			cdf.mass[n-1] = acc
			continue
		}
		cdf.keys = append(cdf.keys, s.key)
		cdf.mass = append(cdf.mass, acc)
	}
	return cdf
}

// Total returns the total tuple mass |S| represented by the CDF.
func (c *CDF) Total() float64 { return c.total }

// Estimate returns the estimated number of tuples with key <= probe, using
// linear interpolation between the recorded steps (the diagonal connections
// between steps in Figure 8 of the paper). Probes below the first bound and
// above the last bound clamp to 0 and Total respectively.
func (c *CDF) Estimate(probe uint64) float64 {
	n := len(c.keys)
	if n == 0 {
		return 0
	}
	if probe >= c.keys[n-1] {
		return c.total
	}
	if probe < c.keys[0] {
		// Interpolate from mass 0 at key 0 up to the first step.
		if c.keys[0] == 0 {
			return c.mass[0]
		}
		return c.mass[0] * float64(probe) / float64(c.keys[0])
	}
	// Binary search for the first key strictly greater than probe.
	idx := sort.Search(n, func(i int) bool { return c.keys[i] > probe })
	// probe lies in [keys[idx-1], keys[idx]).
	k0, k1 := c.keys[idx-1], c.keys[idx]
	m0, m1 := c.mass[idx-1], c.mass[idx]
	if k1 == k0 {
		return m1
	}
	frac := float64(probe-k0) / float64(k1-k0)
	return m0 + frac*(m1-m0)
}

// EstimateRange returns the estimated number of tuples whose key lies in the
// half-open interval [low, high).
func (c *CDF) EstimateRange(low, high uint64) float64 {
	if high <= low {
		return 0
	}
	var lowMass float64
	if low > 0 {
		lowMass = c.Estimate(low - 1)
	}
	return c.Estimate(high-1) - lowMass
}

// Steps returns the number of distinct steps recorded in the CDF.
func (c *CDF) Steps() int { return len(c.keys) }
