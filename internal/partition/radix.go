// Package partition implements the histogram-based, synchronization-free
// partitioning machinery of the range-partitioned MPSM join (P-MPSM):
//
//   - radix clustering of join keys on their B most significant bits
//     (branch-free and comparison-free, Section 3.2.1 of the paper),
//   - per-worker histograms combined into prefix sums so that every worker
//     scatters its chunk sequentially into precomputed sub-partitions of the
//     target runs without any latching (adapting He et al.'s technique),
//   - equi-height histograms over the sorted public input and their merge
//     into a global cumulative distribution function (CDF, Section 4.1),
//   - fine-grained radix histograms on the private input (Section 4.2), and
//   - splitter computation that balances per-worker sort + join cost
//     (Section 4.3, in the spirit of Ross & Cieslewicz).
package partition

import (
	"fmt"
	"math/bits"

	"repro/internal/relation"
)

// RadixConfig describes how join keys map to radix clusters: the cluster of a
// key is (key >> Shift), clamped to [0, 1<<Bits). Shift is chosen so that the
// B most significant bits of the observed key domain select the cluster, which
// is the preprocessing the paper prescribes for key domains smaller than 2^64.
type RadixConfig struct {
	// Bits is the number of leading key bits used for clustering; the
	// histogram and splitter vector have 1<<Bits entries.
	Bits int
	// Shift is the right-shift applied to keys before clustering.
	Shift uint
}

// NewRadixConfig derives a radix configuration for the given number of bits
// and the maximum key value expected in the data. It panics if bits is not in
// [1, 32]; 32 bits (4 billion clusters) is far beyond any sensible histogram
// granularity and would indicate a unit error at the call site.
func NewRadixConfig(bitsWanted int, maxKey uint64) RadixConfig {
	if bitsWanted < 1 || bitsWanted > 32 {
		panic(fmt.Sprintf("partition: radix bits %d out of range [1, 32]", bitsWanted))
	}
	width := bits.Len64(maxKey)
	shift := 0
	if width > bitsWanted {
		shift = width - bitsWanted
	}
	return RadixConfig{Bits: bitsWanted, Shift: uint(shift)}
}

// Clusters returns the number of radix clusters (2^Bits).
func (c RadixConfig) Clusters() int { return 1 << c.Bits }

// Cluster maps a key to its radix cluster. Keys larger than the configured
// domain clamp into the last cluster so that histogram indices stay in range;
// the clamp is a min, which compiles to a conditional move, so the mapping is
// branch-free as the paper's Section 3.2.1 prescribes.
func (c RadixConfig) Cluster(key uint64) int {
	return int(min(key>>c.Shift, uint64(1)<<c.Bits-1))
}

// ClusterLowKey returns the smallest key value that maps to the given cluster.
func (c RadixConfig) ClusterLowKey(cluster int) uint64 {
	return uint64(cluster) << c.Shift
}

// ClusterHighKey returns the exclusive upper key bound of the given cluster,
// i.e. the smallest key belonging to the next cluster. For the last cluster it
// returns the maximum representable bound without overflowing.
func (c RadixConfig) ClusterHighKey(cluster int) uint64 {
	if cluster >= c.Clusters()-1 {
		high := uint64(c.Clusters()) << c.Shift
		if high == 0 { // overflowed 2^64
			return ^uint64(0)
		}
		return high
	}
	return uint64(cluster+1) << c.Shift
}

// Histogram counts tuples per radix cluster.
type Histogram []int

// BuildHistogram scans tuples once and counts how many fall into each radix
// cluster of cfg. The scan is branch-free in the sense of the paper: the
// cluster index is computed with a shift, not with key comparisons.
func BuildHistogram(tuples []relation.Tuple, cfg RadixConfig) Histogram {
	return BuildHistogramInto(make(Histogram, cfg.Clusters()), tuples, cfg)
}

// BuildHistogramInto is BuildHistogram counting into a caller-provided
// (typically pool-leased) histogram, which must be zeroed and of length
// cfg.Clusters().
func BuildHistogramInto(h Histogram, tuples []relation.Tuple, cfg RadixConfig) Histogram {
	if len(h) != cfg.Clusters() {
		panic(fmt.Sprintf("partition: histogram length %d does not match %d clusters", len(h), cfg.Clusters()))
	}
	// Shift and clamp limit are hoisted out of the loop, and the clamp is a
	// min (conditional move): the per-tuple work is shift, min, increment —
	// no comparisons, no calls, no branches beyond the loop's own.
	shift, limit := cfg.Shift, uint64(1)<<cfg.Bits-1
	for _, t := range tuples {
		h[min(t.Key>>shift, limit)]++
	}
	return h
}

// BuildKeyHistogramInto is BuildHistogramInto over a raw key column, the
// structure-of-arrays variant used by the columnar batch path: the scan
// streams 8-byte keys instead of 16-byte tuples, doubling the keys inspected
// per cache line.
func BuildKeyHistogramInto(h Histogram, keys []uint64, cfg RadixConfig) Histogram {
	if len(h) != cfg.Clusters() {
		panic(fmt.Sprintf("partition: histogram length %d does not match %d clusters", len(h), cfg.Clusters()))
	}
	shift, limit := cfg.Shift, uint64(1)<<cfg.Bits-1
	for _, k := range keys {
		h[min(k>>shift, limit)]++
	}
	return h
}

// Total returns the number of tuples counted by the histogram.
func (h Histogram) Total() int {
	total := 0
	for _, c := range h {
		total += c
	}
	return total
}

// Add accumulates other into h. Both histograms must have the same length.
func (h Histogram) Add(other Histogram) {
	if len(h) != len(other) {
		panic(fmt.Sprintf("partition: histogram length mismatch %d vs %d", len(h), len(other)))
	}
	for i, c := range other {
		h[i] += c
	}
}

// CombineHistograms sums per-worker histograms into a single global histogram.
func CombineHistograms(histograms []Histogram) Histogram {
	if len(histograms) == 0 {
		return nil
	}
	global := make(Histogram, len(histograms[0]))
	for _, h := range histograms {
		global.Add(h)
	}
	return global
}

// SplitterVector maps every radix cluster to the index of the target range
// partition it belongs to. Entries must be non-decreasing (clusters are
// ordered by key, so partitions cover contiguous key ranges).
type SplitterVector []int

// Validate checks that the splitter vector is monotone and that all entries
// lie in [0, numPartitions).
func (sp SplitterVector) Validate(numPartitions int) error {
	prev := 0
	for i, p := range sp {
		if p < 0 || p >= numPartitions {
			return fmt.Errorf("partition: splitter[%d] = %d out of range [0, %d)", i, p, numPartitions)
		}
		if p < prev {
			return fmt.Errorf("partition: splitter vector not monotone at cluster %d (%d after %d)", i, p, prev)
		}
		prev = p
	}
	return nil
}

// UniformSplitters builds the static splitter vector used by P-MPSM without
// skew handling: the 2^bits clusters are divided into numPartitions contiguous
// groups of (as close as possible) equal cluster count. With bits = log2(T)
// this is exactly the paper's "one cluster per worker" radix clustering.
func UniformSplitters(clusters, numPartitions int) SplitterVector {
	sp := make(SplitterVector, clusters)
	for i := range sp {
		p := i * numPartitions / clusters
		if p >= numPartitions {
			p = numPartitions - 1
		}
		sp[i] = p
	}
	return sp
}

// PartitionSizes returns the number of tuples that each target partition will
// receive, according to the global histogram and the splitter vector.
func PartitionSizes(global Histogram, sp SplitterVector, numPartitions int) []int {
	sizes := make([]int, numPartitions)
	for cluster, count := range global {
		sizes[sp[cluster]] += count
	}
	return sizes
}

// PartitionBounds returns, for every target partition, the inclusive low key
// and exclusive high key of the key range it covers under cfg and sp.
func PartitionBounds(cfg RadixConfig, sp SplitterVector, numPartitions int) (low, high []uint64) {
	low = make([]uint64, numPartitions)
	high = make([]uint64, numPartitions)
	for p := 0; p < numPartitions; p++ {
		low[p] = ^uint64(0)
		high[p] = 0
	}
	for cluster, p := range sp {
		cl := cfg.ClusterLowKey(cluster)
		ch := cfg.ClusterHighKey(cluster)
		if cl < low[p] {
			low[p] = cl
		}
		if ch > high[p] {
			high[p] = ch
		}
	}
	// Partitions that received no cluster (possible when T > clusters)
	// collapse to an empty range.
	for p := 0; p < numPartitions; p++ {
		if low[p] > high[p] {
			low[p], high[p] = 0, 0
		}
	}
	return low, high
}

// PrefixSums holds, for every (worker, partition) pair, the index within the
// target partition's array at which the worker starts writing its tuples. The
// offsets are exactly the paper's ps_i[j]: worker i writes its tuples for
// partition j to positions [Offsets[i][j], Offsets[i][j] + h_i maps to j).
//
// Because every worker owns a dedicated, precomputed index range in every
// target array, the subsequent scatter needs no synchronization at all.
type PrefixSums struct {
	// Offsets[worker][partition] is the start index of the worker's
	// sub-partition within the target partition array.
	Offsets [][]int
	// Sizes[partition] is the total size of each target partition.
	Sizes []int
}

// ComputePrefixSums combines per-worker histograms into the per-worker,
// per-partition write offsets. histograms[i] must be the radix histogram of
// worker i's chunk; sp maps clusters to partitions.
func ComputePrefixSums(histograms []Histogram, sp SplitterVector, numPartitions int) PrefixSums {
	workers := len(histograms)
	// Per-worker tuple counts per partition.
	perWorker := make([][]int, workers)
	for w, h := range histograms {
		counts := make([]int, numPartitions)
		for cluster, c := range h {
			counts[sp[cluster]] += c
		}
		perWorker[w] = counts
	}
	offsets := make([][]int, workers)
	sizes := make([]int, numPartitions)
	for p := 0; p < numPartitions; p++ {
		running := 0
		for w := 0; w < workers; w++ {
			if offsets[w] == nil {
				offsets[w] = make([]int, numPartitions)
			}
			offsets[w][p] = running
			running += perWorker[w][p]
		}
		sizes[p] = running
	}
	return PrefixSums{Offsets: offsets, Sizes: sizes}
}

// Scatter writes the tuples of one worker's chunk into the target partition
// arrays. targets[p] must have length PrefixSums.Sizes[p]; cursors is the
// worker's private copy of its offset row and is advanced in place. The writes
// are strictly sequential per (worker, partition) sub-range, which is the
// property that makes the phase latch-free and cache-coherency friendly.
func Scatter(chunk []relation.Tuple, cfg RadixConfig, sp SplitterVector, targets [][]relation.Tuple, cursors []int) {
	for _, t := range chunk {
		p := sp[cfg.Cluster(t.Key)]
		targets[p][cursors[p]] = t
		cursors[p]++
	}
}

// ScatterExplicitBounds is the comparison-based alternative to Scatter used as
// the right-hand baseline of Figure 9: instead of a radix shift, the partition
// of each tuple is found by binary searching a vector of explicit partition
// bound keys. bounds[p] is the exclusive upper key bound of partition p; the
// last partition absorbs everything above bounds[len(bounds)-2].
func ScatterExplicitBounds(chunk []relation.Tuple, bounds []uint64, targets [][]relation.Tuple, cursors []int) {
	for _, t := range chunk {
		p := searchBound(bounds, t.Key)
		targets[p][cursors[p]] = t
		cursors[p]++
	}
}

// BuildHistogramExplicitBounds counts tuples per partition using explicit
// bounds instead of a radix shift (comparison-based, Figure 9 baseline).
func BuildHistogramExplicitBounds(tuples []relation.Tuple, bounds []uint64) Histogram {
	h := make(Histogram, len(bounds))
	for _, t := range tuples {
		h[searchBound(bounds, t.Key)]++
	}
	return h
}

// searchBound returns the index of the first bound that is strictly greater
// than key; keys beyond all bounds fall into the last partition.
func searchBound(bounds []uint64, key uint64) int {
	lo, hi := 0, len(bounds)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if key < bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
