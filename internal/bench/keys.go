package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	mpsm "repro"
	"repro/internal/keys"
)

func init() {
	register(Experiment{
		Name:  "keys",
		Title: "Normalized keys: string and composite joins vs a comparator-based row fallback, exact-prefix control, collision-rate sweep",
		Run:   runKeysExperiment,
		JSON:  keysJSON,
	})
}

// keysRepetitions is the best-of repetition count per measured join;
// keysControlRepetitions is higher because the exact-prefix control asserts a
// ~2% bound, close to the noise floor even of an idle machine.
const (
	keysRepetitions        = 5
	keysControlRepetitions = 9
)

// keysSize floors the per-side cardinality at 2^17 for measurement-grade runs
// (scale >= 0.25, the CI bench scale): the acceptance ratio compares an
// engine join against a single-threaded comparator sort-merge whose relative
// cost only stabilizes once both run for several milliseconds. Tiny scales
// run at their natural size so the experiment stays fast under the race
// detector.
func keysSize(cfg Config) int {
	n := cfg.RSize()
	if cfg.Scale >= 0.25 && n < 1<<17 {
		n = 1 << 17
	}
	return n
}

// KeysCollisionCell is one point of the collision-rate sweep: the same
// string join measured with progressively longer shared key prefixes, which
// push the prefix-collision rate (and with it the tie-break verifier's
// workload) from ~0% towards 100%.
type KeysCollisionCell struct {
	SharedPrefixBytes int     `json:"shared_prefix_bytes"`
	CollisionRate     float64 `json:"collision_rate"`
	Millis            float64 `json:"millis"`
	Matches           uint64  `json:"matches"`
}

// KeysReport is the machine-readable report (BENCH_keys.json).
type KeysReport struct {
	GeneratedAt string  `json:"generated_at"`
	Scale       float64 `json:"scale"`
	Tuples      int     `json:"tuples"`
	Workers     int     `json:"workers"`

	// String join: variable-length keys with shared prefixes through the
	// normalized-key engine path (encode once at ingest, join on the 8-byte
	// prefix, verify candidates against full keys) vs a comparator-based
	// row fallback (sort.Slice with the multi-column comparator on both
	// sides, then a comparator merge join). EncodeMillis is the one-time
	// normalization cost, reported separately because a system stores
	// normalized keys at ingest, not per join.
	StringNormalizedMillis float64 `json:"string_normalized_millis"`
	StringComparatorMillis float64 `json:"string_comparator_millis"`
	StringEncodeMillis     float64 `json:"string_encode_millis"`
	// StringSpeedup is comparator/normalized (acceptance: >= 2 under
	// MPSM_PERF_ASSERT).
	StringSpeedup float64 `json:"string_speedup"`

	// Composite join: (bytes, int64) keys, same comparison.
	CompositeNormalizedMillis float64 `json:"composite_normalized_millis"`
	CompositeComparatorMillis float64 `json:"composite_comparator_millis"`
	CompositeEncodeMillis     float64 `json:"composite_encode_millis"`
	CompositeSpeedup          float64 `json:"composite_speedup"`

	// Exact-prefix control: the same uniform uint64 join once with raw keys
	// and once encoded under a single-column uint64 schema. The schema
	// relation is bit-identical in keys and payloads (the normalization of a
	// lone uint64 column is the identity) and carries only an exactness
	// marker, so ExactOverhead — schema millis over raw millis — measures
	// the fast path's overhead: nothing but noise around 1.0 (acceptance:
	// <= 1.02 under MPSM_PERF_ASSERT).
	RawUint64Millis   float64 `json:"raw_uint64_millis"`
	ExactSchemaMillis float64 `json:"exact_schema_millis"`
	ExactOverhead     float64 `json:"exact_overhead"`

	// Collision contains the collision-rate sweep.
	Collision []KeysCollisionCell `json:"collision"`
}

// keysStringData builds n string keys "x…x<8 digits>" with sharedPrefix
// leading bytes in common, drawn with duplicates so the join has real
// multi-match groups. The join value is spread over the full 8-digit space
// (multiplication by a unit mod 10^8, injective on the value domain) so the
// digits that survive in the 8-byte prefix discriminate uniformly: longer
// shared prefixes raise the prefix-collision rate smoothly instead of
// collapsing the relation onto a handful of prefixes and blowing the
// candidate stream up quadratically.
func keysStringData(n, sharedPrefix int, seed int64) ([][]keys.Value, []uint64) {
	rng := rand.New(rand.NewSource(seed))
	prefix := make([]byte, sharedPrefix)
	for i := range prefix {
		prefix[i] = 'x'
	}
	rows := make([][]keys.Value, n)
	pays := make([]uint64, n)
	for i := range rows {
		v := (uint64(rng.Intn(n)) * 9973) % 100000000
		k := fmt.Sprintf("%s%08d", prefix, v)
		rows[i] = []keys.Value{keys.StringValue(k)}
		pays[i] = uint64(rng.Intn(1 << 27))
	}
	return rows, pays
}

// keysCompositeData builds n (id, region) composite keys: an int64 id drawn
// with ~4x duplication and a low-cardinality region string. The selective
// column leads — normalized-key schema design follows the same rule as
// composite index design — so the 8-byte prefix is the full id and only
// same-id rows with different regions collide into the tie-break path.
func keysCompositeData(n int, seed int64) ([][]keys.Value, []uint64) {
	regions := []string{"region-east", "region-west", "region-north", "region-south"}
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]keys.Value, n)
	pays := make([]uint64, n)
	for i := range rows {
		rows[i] = []keys.Value{
			keys.Int64Value(int64(rng.Intn(n/4)) - int64(n/8)),
			keys.StringValue(regions[rng.Intn(len(regions))]),
		}
		pays[i] = uint64(rng.Intn(1 << 27))
	}
	return rows, pays
}

// comparatorJoin is the row fallback a system without normalized keys runs:
// sort both inputs with the multi-column comparator, then merge with the
// same comparator, counting matches and the max payload sum. Single-threaded
// on purpose — the fallback has no radix representation to parallelize over,
// which is exactly the cost the normalized-key path removes.
func comparatorJoin(sc *keys.Schema, rRows, sRows [][]keys.Value, rPays, sPays []uint64) (matches, maxSum uint64) {
	ri := make([]int, len(rRows))
	si := make([]int, len(sRows))
	for i := range ri {
		ri[i] = i
	}
	for i := range si {
		si[i] = i
	}
	sort.Slice(ri, func(a, b int) bool { return sc.CompareRows(rRows[ri[a]], rRows[ri[b]]) < 0 })
	sort.Slice(si, func(a, b int) bool { return sc.CompareRows(sRows[si[a]], sRows[si[b]]) < 0 })

	r, s := 0, 0
	for r < len(ri) && s < len(si) {
		c := sc.CompareRows(rRows[ri[r]], sRows[si[s]])
		switch {
		case c < 0:
			r++
		case c > 0:
			s++
		default:
			// Equal groups on both sides: cross product.
			rEnd := r + 1
			for rEnd < len(ri) && sc.CompareRows(rRows[ri[rEnd]], rRows[ri[r]]) == 0 {
				rEnd++
			}
			sEnd := s + 1
			for sEnd < len(si) && sc.CompareRows(sRows[si[sEnd]], sRows[si[s]]) == 0 {
				sEnd++
			}
			for a := r; a < rEnd; a++ {
				for b := s; b < sEnd; b++ {
					matches++
					if sum := rPays[ri[a]] + sPays[si[b]]; sum > maxSum {
						maxSum = sum
					}
				}
			}
			r, s = rEnd, sEnd
		}
	}
	return matches, maxSum
}

// collisionRate reports the fraction of distinct full keys that share their
// 8-byte prefix with another distinct key, measured over the encoded
// relation (mirrors the planner's sampled estimate, but exact).
func collisionRate(rel *mpsm.Relation) float64 {
	meta := rel.Meta
	if meta == nil || meta.Exact() {
		return 0
	}
	prefixes := make(map[uint64]struct{})
	full := make(map[string]struct{})
	for i := range rel.Tuples {
		prefixes[rel.Tuples[i].Key] = struct{}{}
		full[string(meta.FullKey(i))] = struct{}{}
	}
	if len(full) == 0 {
		return 0
	}
	return float64(len(full)-len(prefixes)) / float64(len(full))
}

// keysJoinMillis measures the engine join best-of-reps, returning the
// minimum wall clock and the (consistency-checked) result.
func keysJoinMillis(e *mpsm.Engine, r, s *mpsm.Relation, reps int) (float64, *mpsm.Result, error) {
	var best time.Duration
	var res *mpsm.Result
	for i := 0; i < reps; i++ {
		start := time.Now()
		out, err := e.Join(context.Background(), r, s)
		d := time.Since(start)
		if err != nil {
			return 0, nil, err
		}
		if res == nil || d < best {
			best, res = d, out
		}
	}
	return millis(best), res, nil
}

// buildKeysReport measures the normalized-key comparisons.
func buildKeysReport(cfg Config) (*KeysReport, error) {
	n := keysSize(cfg)
	rep := &KeysReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Scale:       cfg.Scale,
		Tuples:      n,
		Workers:     cfg.workers(),
	}
	e := mpsm.New(mpsm.WithWorkers(cfg.workers()))

	// --- String join: shared 4-byte prefix, so the prefix carries real
	// discriminating power but the tie-break path still sees collisions.
	strSchema := mpsm.MustSchema(mpsm.SchemaColumn{Name: "name", Type: mpsm.ColumnBytes})
	rRows, rPays := keysStringData(n, 4, 1)
	sRows, sPays := keysStringData(n, 4, 2)
	encStart := time.Now()
	rRel, err := strSchema.Encode("R", rRows, rPays)
	if err != nil {
		return nil, err
	}
	sRel, err := strSchema.Encode("S", sRows, sPays)
	if err != nil {
		return nil, err
	}
	rep.StringEncodeMillis = millis(time.Since(encStart))
	normMillis, normRes, err := keysJoinMillis(e, rRel, sRel, keysRepetitions)
	if err != nil {
		return nil, err
	}
	comp := bestOfKernelN(keysRepetitions, func() {
		m, _ := comparatorJoin(strSchema, rRows, sRows, rPays, sPays)
		columnarSink += m
	})
	wantM, wantMax := comparatorJoin(strSchema, rRows, sRows, rPays, sPays)
	if normRes.Matches != wantM || normRes.MaxSum != wantMax {
		return nil, fmt.Errorf("string join disagrees with comparator fallback: (%d, %d) vs (%d, %d)",
			normRes.Matches, normRes.MaxSum, wantM, wantMax)
	}
	rep.StringNormalizedMillis, rep.StringComparatorMillis = normMillis, millis(comp)
	if normMillis > 0 {
		rep.StringSpeedup = rep.StringComparatorMillis / normMillis
	}

	// --- Composite join: (bytes, int64).
	compSchema := mpsm.MustSchema(
		mpsm.SchemaColumn{Name: "id", Type: mpsm.ColumnInt64},
		mpsm.SchemaColumn{Name: "region", Type: mpsm.ColumnBytes},
	)
	crRows, crPays := keysCompositeData(n, 3)
	csRows, csPays := keysCompositeData(n, 4)
	encStart = time.Now()
	crRel, err := compSchema.Encode("R", crRows, crPays)
	if err != nil {
		return nil, err
	}
	csRel, err := compSchema.Encode("S", csRows, csPays)
	if err != nil {
		return nil, err
	}
	rep.CompositeEncodeMillis = millis(time.Since(encStart))
	normMillis, normRes, err = keysJoinMillis(e, crRel, csRel, keysRepetitions)
	if err != nil {
		return nil, err
	}
	comp = bestOfKernelN(keysRepetitions, func() {
		m, _ := comparatorJoin(compSchema, crRows, csRows, crPays, csPays)
		columnarSink += m
	})
	wantM, wantMax = comparatorJoin(compSchema, crRows, csRows, crPays, csPays)
	if normRes.Matches != wantM || normRes.MaxSum != wantMax {
		return nil, fmt.Errorf("composite join disagrees with comparator fallback: (%d, %d) vs (%d, %d)",
			normRes.Matches, normRes.MaxSum, wantM, wantMax)
	}
	rep.CompositeNormalizedMillis, rep.CompositeComparatorMillis = normMillis, millis(comp)
	if normMillis > 0 {
		rep.CompositeSpeedup = rep.CompositeComparatorMillis / normMillis
	}

	// --- Exact-prefix control: identical uint64 join, raw vs schema-keyed.
	rng := rand.New(rand.NewSource(5))
	uRows := make([][]keys.Value, n)
	uPays := make([]uint64, n)
	rawTuples := make([]mpsm.Tuple, n)
	for i := 0; i < n; i++ {
		k := rng.Uint64() % uint64(n)
		uRows[i] = []keys.Value{keys.Uint64Value(k)}
		uPays[i] = uint64(i)
		rawTuples[i] = mpsm.Tuple{Key: k, Payload: uint64(i)}
	}
	uintSchema := mpsm.MustSchema(mpsm.SchemaColumn{Name: "id", Type: mpsm.ColumnUint64})
	exactRel, err := uintSchema.Encode("E", uRows, uPays)
	if err != nil {
		return nil, err
	}
	rawRel := mpsm.NewRelation("E", rawTuples)
	rawMillis, rawRes, err := keysJoinMillis(e, rawRel, rawRel.Clone(), keysControlRepetitions)
	if err != nil {
		return nil, err
	}
	exactMillis, exactRes, err := keysJoinMillis(e, exactRel, exactRel.Clone(), keysControlRepetitions)
	if err != nil {
		return nil, err
	}
	if exactRes.Matches != rawRes.Matches || exactRes.MaxSum != rawRes.MaxSum {
		return nil, fmt.Errorf("exact-schema join disagrees with raw join: (%d, %d) vs (%d, %d)",
			exactRes.Matches, exactRes.MaxSum, rawRes.Matches, rawRes.MaxSum)
	}
	rep.RawUint64Millis, rep.ExactSchemaMillis = rawMillis, exactMillis
	if rawMillis > 0 {
		rep.ExactOverhead = exactMillis / rawMillis
	}

	// --- Collision-rate sweep: longer shared prefixes starve the 8-byte
	// prefix of discriminating digits; the join result is invariant, only
	// the tie-break verifier works harder. The sweep stops at 5 shared
	// bytes (3 discriminating digits): beyond that the equal-prefix groups
	// grow large enough that the candidate cross product, not the verifier,
	// dominates — the degenerate regime a leading selective column avoids.
	for _, shared := range []int{0, 2, 4, 5} {
		swR, swRPays := keysStringData(n, shared, 6)
		swS, swSPays := keysStringData(n, shared, 7)
		swRRel, err := strSchema.Encode("R", swR, swRPays)
		if err != nil {
			return nil, err
		}
		swSRel, err := strSchema.Encode("S", swS, swSPays)
		if err != nil {
			return nil, err
		}
		ms, res, err := keysJoinMillis(e, swRRel, swSRel, 3)
		if err != nil {
			return nil, err
		}
		rep.Collision = append(rep.Collision, KeysCollisionCell{
			SharedPrefixBytes: shared,
			CollisionRate:     collisionRate(swRRel),
			Millis:            ms,
			Matches:           res.Matches,
		})
	}
	return rep, nil
}

// runKeysExperiment renders the comparisons as tables.
func runKeysExperiment(cfg Config, w io.Writer) error {
	rep, err := buildKeysReport(cfg)
	if err != nil {
		return err
	}
	tbl := newTable(w)
	tbl.row("join", "path", "time [ms]", "speedup")
	tbl.row("string", "comparator fallback", fmt.Sprintf("%.2f", rep.StringComparatorMillis), "")
	tbl.row("string", "normalized keys", fmt.Sprintf("%.2f", rep.StringNormalizedMillis), fmt.Sprintf("%.2fx", rep.StringSpeedup))
	tbl.row("composite", "comparator fallback", fmt.Sprintf("%.2f", rep.CompositeComparatorMillis), "")
	tbl.row("composite", "normalized keys", fmt.Sprintf("%.2f", rep.CompositeNormalizedMillis), fmt.Sprintf("%.2fx", rep.CompositeSpeedup))
	tbl.row("uint64", "raw keys", fmt.Sprintf("%.2f", rep.RawUint64Millis), "")
	tbl.row("uint64", "exact schema", fmt.Sprintf("%.2f", rep.ExactSchemaMillis), fmt.Sprintf("%.3fx", rep.ExactOverhead))
	tbl.flush()
	fmt.Fprintf(w, "\ncollision sweep (string join, %d tuples/side):\n", rep.Tuples)
	tbl = newTable(w)
	tbl.row("shared prefix [B]", "collision rate", "time [ms]", "matches")
	for _, c := range rep.Collision {
		tbl.row(fmt.Sprintf("%d", c.SharedPrefixBytes), fmt.Sprintf("%.1f%%", 100*c.CollisionRate),
			fmt.Sprintf("%.2f", c.Millis), fmt.Sprintf("%d", c.Matches))
	}
	tbl.flush()
	fmt.Fprintf(w, "\nstring %.2fx, composite %.2fx over the comparator fallback (target ≥ 2); exact-prefix overhead %.3fx (target ≤ 1.02)\n",
		rep.StringSpeedup, rep.CompositeSpeedup, rep.ExactOverhead)
	if cfg.Verbose {
		fmt.Fprintln(w, "expected shape: normalized keys keep the radix sort and cache-blocked merge; the fallback pays a comparator call per sort/merge step. Encode cost (paid once at ingest): string "+
			fmt.Sprintf("%.2f ms, composite %.2f ms", rep.StringEncodeMillis, rep.CompositeEncodeMillis))
	}
	return nil
}

// keysJSON produces the machine-readable keys report.
func keysJSON(cfg Config) (any, error) {
	return buildKeysReport(cfg)
}
