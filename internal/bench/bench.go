// Package bench is the experiment harness that regenerates the tables and
// figures of the MPSM paper's evaluation (Section 5). Every figure has a
// registered experiment that generates the corresponding workload, runs the
// relevant algorithms, and prints the same rows/series the paper reports
// (execution time per phase, per multiplicity, per parallelism level, per
// worker, ...).
//
// Absolute numbers differ from the paper — the substrate is a Go program on
// whatever machine runs the benchmark rather than a 32-core, 1 TB NUMA server
// — but the shapes (who wins, by roughly what factor, where the crossovers
// are) are the reproduction target.
package bench

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"text/tabwriter"
	"time"
)

// Config controls the scale and parallelism of the experiments.
type Config struct {
	// Scale multiplies the base dataset sizes. 1.0 corresponds to
	// |R| = 262144 tuples (2^18); the paper uses 1600M, which would be a
	// scale of ~6400 and is impractical for unit benchmarks.
	Scale float64
	// Workers is the maximum degree of parallelism experiments use; 0
	// selects GOMAXPROCS.
	Workers int
	// Verbose adds explanatory notes to the output.
	Verbose bool
}

// DefaultConfig returns the configuration used by `go test -bench` and the
// CLI when no flags are given. The scale can be overridden with the
// MPSM_SCALE environment variable, the worker count with MPSM_WORKERS.
func DefaultConfig() Config {
	cfg := Config{Scale: 1.0, Workers: runtime.GOMAXPROCS(0)}
	if v := os.Getenv("MPSM_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			cfg.Scale = f
		}
	}
	if v := os.Getenv("MPSM_WORKERS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			cfg.Workers = n
		}
	}
	return cfg
}

// baseRSize is the |R| cardinality at scale 1.0.
const baseRSize = 1 << 18

// RSize returns the scaled |R| cardinality (at least 1024 tuples so that
// every experiment remains meaningful at tiny scales).
func (c Config) RSize() int {
	n := int(float64(baseRSize) * c.Scale)
	if n < 1024 {
		n = 1024
	}
	return n
}

// workers returns the normalized worker count.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Experiment is one registered, runnable experiment.
type Experiment struct {
	// Name is the identifier used on the command line, e.g. "figure12".
	Name string
	// Title is the human-readable description shown in listings.
	Title string
	// Run executes the experiment and writes its report to w.
	Run func(cfg Config, w io.Writer) error
	// JSON, when non-nil, produces the experiment's machine-readable report
	// (mpsmbench -experiment NAME -json FILE); experiments without one only
	// support the human-readable table.
	JSON func(cfg Config) (any, error)
}

// registry holds all experiments keyed by name.
var registry = map[string]Experiment{}

// register adds an experiment to the registry; duplicate names panic because
// they indicate a programming error in this package.
func register(e Experiment) {
	if _, dup := registry[e.Name]; dup {
		panic(fmt.Sprintf("bench: duplicate experiment %q", e.Name))
	}
	registry[e.Name] = e
}

// Experiments returns all registered experiments sorted by name.
func Experiments() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, bool) {
	e, ok := registry[name]
	return e, ok
}

// RunAll executes every registered experiment in name order.
func RunAll(cfg Config, w io.Writer) error {
	for _, e := range Experiments() {
		fmt.Fprintf(w, "=== %s: %s ===\n", e.Name, e.Title)
		if err := e.Run(cfg, w); err != nil {
			return fmt.Errorf("bench: experiment %s: %w", e.Name, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// table is a small helper for aligned experiment output.
type table struct {
	tw *tabwriter.Writer
}

// newTable creates a table writer over w.
func newTable(w io.Writer) *table {
	return &table{tw: tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)}
}

// row writes one tab-separated row.
func (t *table) row(cells ...interface{}) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.tw, "\t")
		}
		fmt.Fprint(t.tw, c)
	}
	fmt.Fprintln(t.tw)
}

// flush renders the table.
func (t *table) flush() { t.tw.Flush() }

// ms renders a duration in milliseconds with two decimals, the unit the
// paper's figures use.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000.0)
}
