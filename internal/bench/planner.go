package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	mpsm "repro"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		Name:  "planner",
		Title: "Cost-based planner: auto-planned joins vs every manual (algorithm, scheduler) choice over a size × skew matrix",
		Run:   runPlannerExperiment,
		JSON:  plannerJSON,
	})
}

// plannerRepetitions is how often each cell runs; the report keeps the best
// time, following the paper's warm-repetition methodology. The acceptance
// ratios compare cells within ~10% of each other, so this experiment uses
// more repetitions than the others and permutes the execution order per
// repetition (see below) to decorrelate the noise sources.
const plannerRepetitions = 7

// plannerRSize floors the matrix's |R| at 2^17 for measurement-grade runs
// (scale >= 0.25, the CI bench scale): the acceptance ratios compare wall
// clocks within ~10%, and cells below roughly 10ms are dominated by
// scheduling noise rather than algorithm choice. Tiny smoke-test scales run
// at their natural size so the experiment stays fast under the race
// detector.
func plannerRSize(cfg Config) int {
	n := cfg.RSize()
	if cfg.Scale >= 0.25 && n < 1<<17 {
		n = 1 << 17
	}
	return n
}

// PlannerCell is one manual (algorithm, scheduler) measurement.
type PlannerCell struct {
	Algorithm string  `json:"algorithm"`
	Scheduler string  `json:"scheduler"`
	Millis    float64 `json:"millis"`
}

// PlannerConfig is the report of one dataset configuration: the auto-planned
// execution against the full manual matrix.
type PlannerConfig struct {
	Name  string `json:"name"`
	RSize int    `json:"r_size"`
	SSize int    `json:"s_size"`
	// Skewed marks the configurations with a skewed key distribution or
	// arrangement (where the ≥2x-over-worst acceptance bites).
	Skewed bool `json:"skewed"`

	// AutoMillis is the auto-planned join's warm wall clock: the first
	// repetition pays statistics sampling and planning, later ones hit the
	// engine's plan cache, and best-of-reps keeps a cached one — matching
	// how a long-lived engine serves a recurring join.
	// AutoAlgorithm/AutoScheduler are the planner's choices.
	AutoMillis    float64 `json:"auto_millis"`
	AutoAlgorithm string  `json:"auto_algorithm"`
	AutoScheduler string  `json:"auto_scheduler"`

	// EstMatches vs ActualMatches exposes the cardinality estimator;
	// EstimateRatio = EstMatches / ActualMatches.
	EstMatches    float64 `json:"est_matches"`
	ActualMatches uint64  `json:"actual_matches"`
	EstimateRatio float64 `json:"estimate_ratio"`

	// Manual holds every (algorithm, scheduler) cell; Best/Worst are its
	// extremes.
	Manual []PlannerCell `json:"manual"`
	Best   PlannerCell   `json:"best_manual"`
	Worst  PlannerCell   `json:"worst_manual"`

	// AutoVsBest is AutoMillis / Best.Millis (the ≤1.1 acceptance ratio);
	// WorstVsAuto is Worst.Millis / AutoMillis (≥2 on a skewed config).
	AutoVsBest  float64 `json:"auto_vs_best"`
	WorstVsAuto float64 `json:"worst_vs_auto"`
}

// PlannerReport is the machine-readable report (BENCH_planner.json).
type PlannerReport struct {
	GeneratedAt string          `json:"generated_at"`
	Scale       float64         `json:"scale"`
	Workers     int             `json:"workers"`
	Configs     []PlannerConfig `json:"configs"`
	// MaxAutoVsBest aggregates the worst auto_vs_best over all configs
	// (acceptance: ≤ 1.10) and BestWorstVsAutoSkewed the best worst_vs_auto
	// over the skewed configs (acceptance: ≥ 2).
	MaxAutoVsBest         float64 `json:"max_auto_vs_best"`
	BestWorstVsAutoSkewed float64 `json:"best_worst_vs_auto_skewed"`
}

// plannerDataset describes one matrix row.
type plannerDataset struct {
	name   string
	skewed bool
	make   func(cfg Config) (*mpsm.Relation, *mpsm.Relation, error)
}

// sortByKey returns a key-sorted copy.
func sortByKey(rel *mpsm.Relation) *mpsm.Relation {
	c := rel.Clone()
	sort.Slice(c.Tuples, func(i, j int) bool { return c.Tuples[i].Key < c.Tuples[j].Key })
	return c
}

// plannerMatrix is the size × skew matrix: uniform at three sizes and a high
// multiplicity, the negatively correlated skew of Section 5.6, the clustered
// arrangement of Section 5.5, and presorted inputs (the data property the
// presortedness probe exists for).
func plannerMatrix(cfg Config) []plannerDataset {
	uniform := func(scaleDiv, mult int) func(Config) (*mpsm.Relation, *mpsm.Relation, error) {
		return func(cfg Config) (*mpsm.Relation, *mpsm.Relation, error) {
			r, s, err := workload.Generate(workload.Spec{
				RSize: plannerRSize(cfg) / scaleDiv, Multiplicity: mult, ForeignKey: true, Seed: 3100,
			})
			if err != nil {
				return nil, nil, err
			}
			return r, s, nil
		}
	}
	return []plannerDataset{
		{name: "small-uniform", make: uniform(4, 4)},
		{name: "mid-uniform", make: uniform(1, 4)},
		{name: "high-multiplicity", make: uniform(4, 16)},
		{name: "negcorr-skew", skewed: true, make: func(cfg Config) (*mpsm.Relation, *mpsm.Relation, error) {
			return workloadPair(workload.Spec{
				RSize: plannerRSize(cfg), Multiplicity: 4,
				RSkew: workload.SkewHigh80, SSkew: workload.SkewLow80,
				KeyDomain: uint64(plannerRSize(cfg)) * 4, Seed: 3200,
			})
		}},
		{name: "location-clustered", skewed: true, make: func(cfg Config) (*mpsm.Relation, *mpsm.Relation, error) {
			return workloadPair(workload.Spec{
				RSize: plannerRSize(cfg), Multiplicity: 4, ForeignKey: true,
				SLocationSkew: workload.LocationClustered, LocationSkewWorkers: cfg.workers(), Seed: 3300,
			})
		}},
		{name: "presorted-both", make: func(cfg Config) (*mpsm.Relation, *mpsm.Relation, error) {
			r, s, err := workloadPair(workload.Spec{
				RSize: plannerRSize(cfg), Multiplicity: 4, ForeignKey: true, Seed: 3400,
			})
			if err != nil {
				return nil, nil, err
			}
			return sortByKey(r), sortByKey(s), nil
		}},
	}
}

// workloadPair generates one (R, S) dataset.
func workloadPair(spec workload.Spec) (*mpsm.Relation, *mpsm.Relation, error) {
	return workload.Generate(spec)
}

// bestDuration returns the fastest of the measured repetitions.
func bestDuration(times []time.Duration) time.Duration {
	best := times[0]
	for _, t := range times[1:] {
		if t < best {
			best = t
		}
	}
	return best
}

// measurePlannerConfig runs one matrix row: the auto-planned join (warm, as
// a long-lived engine would serve it — the first repetition pays sampling
// and planning, the kept best hits the plan cache) against every manual
// (algorithm, scheduler) cell through the same engine API. All cells —
// including the auto-planned one — are interleaved round-robin across the
// repetitions, so slow drift of the machine (GC state, thermal throttling)
// hits every cell alike instead of biasing whichever ran last.
func measurePlannerConfig(cfg Config, ds plannerDataset) (PlannerConfig, error) {
	ctx := context.Background()
	out := PlannerConfig{Name: ds.name, Skewed: ds.skewed}
	r, s, err := ds.make(cfg)
	if err != nil {
		return out, err
	}
	out.RSize, out.SSize = r.Len(), s.Len()
	workers := cfg.workers()

	// One engine serves every cell — the auto cell through the per-call
	// WithAutoPlan option — so all cells share one scratch pool and stats
	// cache and no cross-engine state difference leaks into the comparison.
	engine := mpsm.New(mpsm.WithWorkers(workers), mpsm.WithScratchPool(true))

	type cell struct {
		run   func() (*mpsm.Result, error)
		times []time.Duration
		last  *mpsm.Result
	}
	var cells []*cell
	algorithms := []mpsm.Algorithm{mpsm.PMPSM, mpsm.BMPSM, mpsm.DMPSM, mpsm.Wisconsin, mpsm.RadixHash}
	schedulers := []mpsm.Scheduler{mpsm.Static, mpsm.Morsel}
	for _, alg := range algorithms {
		for _, sm := range schedulers {
			cells = append(cells, &cell{run: func() (*mpsm.Result, error) {
				return engine.Join(ctx, r, s, mpsm.WithAlgorithm(alg), mpsm.WithScheduler(sm))
			}})
		}
	}
	auto := &cell{run: func() (*mpsm.Result, error) {
		return engine.Join(ctx, r, s, mpsm.WithAutoPlan(true))
	}}
	cells = append(cells, auto)

	// Each repetition permutes the cells with a different multiplicative
	// stride, so a cell's predecessor — which determines the cache and
	// scratch-pool state it inherits (a join following its own algorithm
	// reuses identically-sized warm buffers) — changes every round, and the
	// best-of selection compares cells under comparable luckiest conditions.
	// Any stride works: the cell count is kept prime, so every multiplier
	// generates a full permutation.
	if len(cells) != 11 {
		return out, fmt.Errorf("planner: cell count %d is not prime, fix the stride scheme", len(cells))
	}
	for rep := 0; rep < plannerRepetitions; rep++ {
		for k := range cells {
			c := cells[((rep+1)*k+rep)%len(cells)]
			// A forced collection between cells stops GC debt from one
			// cell's allocations being paid inside the next cell's timing.
			runtime.GC()
			start := time.Now()
			res, err := c.run()
			elapsed := time.Since(start)
			if err != nil {
				return out, fmt.Errorf("%s: %w", ds.name, err)
			}
			c.last = res
			c.times = append(c.times, elapsed)
		}
	}

	i := 0
	for _, alg := range algorithms {
		for _, sm := range schedulers {
			out.Manual = append(out.Manual, PlannerCell{Algorithm: alg.String(), Scheduler: sm.String(), Millis: millis(bestDuration(cells[i].times))})
			i++
		}
	}
	out.Best, out.Worst = out.Manual[0], out.Manual[0]
	for _, c := range out.Manual[1:] {
		if c.Millis < out.Best.Millis {
			out.Best = c
		}
		if c.Millis > out.Worst.Millis {
			out.Worst = c
		}
	}
	out.AutoMillis = millis(bestDuration(auto.times))
	out.ActualMatches = auto.last.Matches

	// The planner's view of the join, for the estimate-accuracy column and
	// the chosen algorithm/scheduler.
	plan := mpsm.NewPlan()
	plan.Sink(plan.Join(plan.Scan(r), plan.Scan(s)), nil)
	ex, err := engine.Explain(plan, mpsm.WithAutoPlan(true))
	if err != nil {
		return out, err
	}
	for _, n := range ex.Nodes {
		if n.Kind == "Join" {
			out.AutoAlgorithm = n.Algorithm
			out.AutoScheduler = n.Scheduler
			out.EstMatches = n.EstRows
		}
	}
	if out.ActualMatches > 0 {
		out.EstimateRatio = out.EstMatches / float64(out.ActualMatches)
	}

	if out.Best.Millis > 0 {
		out.AutoVsBest = out.AutoMillis / out.Best.Millis
	}
	if out.AutoMillis > 0 {
		out.WorstVsAuto = out.Worst.Millis / out.AutoMillis
	}
	return out, nil
}

// buildPlannerReport measures the full matrix.
func buildPlannerReport(cfg Config) (*PlannerReport, error) {
	if err := warmUp(cfg); err != nil {
		return nil, err
	}
	rep := &PlannerReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Scale:       cfg.Scale,
		Workers:     cfg.workers(),
	}
	for _, ds := range plannerMatrix(cfg) {
		c, err := measurePlannerConfig(cfg, ds)
		if err != nil {
			return nil, err
		}
		rep.Configs = append(rep.Configs, c)
		if c.AutoVsBest > rep.MaxAutoVsBest {
			rep.MaxAutoVsBest = c.AutoVsBest
		}
		if c.Skewed && c.WorstVsAuto > rep.BestWorstVsAutoSkewed {
			rep.BestWorstVsAutoSkewed = c.WorstVsAuto
		}
	}
	return rep, nil
}

// runPlannerExperiment renders the matrix as a table.
func runPlannerExperiment(cfg Config, w io.Writer) error {
	rep, err := buildPlannerReport(cfg)
	if err != nil {
		return err
	}
	tbl := newTable(w)
	tbl.row("configuration", "|R|", "|S|", "auto pick", "auto [ms]", "best manual", "best [ms]", "worst [ms]", "auto/best", "worst/auto", "est/actual")
	for _, c := range rep.Configs {
		tbl.row(c.Name, c.RSize, c.SSize,
			fmt.Sprintf("%s/%s", c.AutoAlgorithm, c.AutoScheduler),
			fmt.Sprintf("%.2f", c.AutoMillis),
			fmt.Sprintf("%s/%s", c.Best.Algorithm, c.Best.Scheduler),
			fmt.Sprintf("%.2f", c.Best.Millis),
			fmt.Sprintf("%.2f", c.Worst.Millis),
			fmt.Sprintf("%.2f", c.AutoVsBest),
			fmt.Sprintf("%.2f", c.WorstVsAuto),
			fmt.Sprintf("%.2f", c.EstimateRatio))
	}
	tbl.flush()
	fmt.Fprintf(w, "\nworst auto/best ratio %.2f (target ≤ 1.10); best worst/auto on a skewed config %.2fx (target ≥ 2)\n",
		rep.MaxAutoVsBest, rep.BestWorstVsAutoSkewed)
	if cfg.Verbose {
		fmt.Fprintln(w, "expected shape: auto tracks the per-config best cell (hash joins on shuffled data, B-MPSM with presorted declarations on sorted data) and never falls for the worst cell")
	}
	return nil
}

// plannerJSON produces the machine-readable planner report.
func plannerJSON(cfg Config) (any, error) {
	return buildPlannerReport(cfg)
}
