package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	mpsm "repro"
)

func init() {
	register(Experiment{
		Name:  "query",
		Title: "Query front-end: parse+compile overhead and compiled-vs-hand-built plan parity",
		Run:   runQueryExperiment,
		JSON:  queryJSON,
	})
}

// queryRepetitions is how often each plan executes; the report keeps the
// best time, following the paper's warm-repetition methodology.
const queryRepetitions = 3

// queryCompileIterations is how often the text is parsed and compiled for
// the front-end cost measurement; compilation is microseconds, so a batch
// amortizes the timer resolution.
const queryCompileIterations = 200

// queryBenchSrc is the acceptance query: a three-way join with a scan
// filter and a streaming aggregation.
const queryBenchSrc = "ans(K, Sum) :- r(K, X), s(K, Y), t(K, Z), X > 10, agg sum(Z)"

// QueryReport is the machine-readable report of the query experiment
// (BENCH_query.json): the parse+compile cost of the acceptance query, the
// end-to-end execution times of the compiled plan and of the equivalent
// hand-built plan, and the two derived ratios the CI gate asserts —
// CompileOverhead (front-end cost as a fraction of end-to-end join time)
// and PlanRatio (compiled / hand-built execution time; 1.0 is parity).
type QueryReport struct {
	GeneratedAt     string  `json:"generated_at"`
	Query           string  `json:"query"`
	RSize           int     `json:"r_size"`
	SSize           int     `json:"s_size"`
	TSize           int     `json:"t_size"`
	Workers         int     `json:"workers"`
	Groups          int     `json:"groups"`
	CompileMicros   float64 `json:"compile_micros"`
	CompiledMillis  float64 `json:"compiled_millis"`
	HandMillis      float64 `json:"hand_millis"`
	CompileOverhead float64 `json:"compile_overhead"`
	PlanRatio       float64 `json:"plan_ratio"`
}

// queryBenchCatalog builds the three-relation catalog the query references:
// r is the dimension, s and t foreign-key fact tables of twice its size.
func queryBenchCatalog(cfg Config) mpsm.MapCatalog {
	r := mpsm.GenerateUniform("r", cfg.RSize(), 2600)
	return mpsm.MapCatalog{
		"r": r,
		"s": mpsm.GenerateForeignKey("s", r, 2*cfg.RSize(), 2601),
		"t": mpsm.GenerateForeignKey("t", r, 2*cfg.RSize(), 2602),
	}
}

// queryHandPlan is the plan a careful caller would build by hand for
// queryBenchSrc: the filter folded into the r scan, a left-deep join chain,
// the probe payload projected, and a streaming sum above it.
func queryHandPlan(cat mpsm.MapCatalog) *mpsm.Plan {
	p := mpsm.NewPlan()
	r := p.Scan(cat["r"], func(t mpsm.Tuple) bool { return t.Payload > 10 })
	j := p.Join(p.Join(r, p.Scan(cat["s"])), p.Scan(cat["t"]))
	p.GroupAggregate(p.Project(j, func(r, s mpsm.Tuple) mpsm.Tuple {
		return mpsm.Tuple{Key: r.Key, Payload: s.Payload}
	}), mpsm.AggSum)
	return p
}

// measureQueryPlan runs one plan to a warm best-of-N time.
func measureQueryPlan(engine *mpsm.Engine, p *mpsm.Plan) (time.Duration, int, error) {
	ctx := context.Background()
	res, err := engine.RunPlan(ctx, p)
	if err != nil {
		return 0, 0, err
	}
	groups := res.Output.Len()
	best := time.Duration(0)
	for i := 0; i < queryRepetitions; i++ {
		res, err := engine.RunPlan(ctx, p)
		if err != nil {
			return 0, 0, err
		}
		if res.Output.Len() != groups {
			return 0, 0, fmt.Errorf("query: group count changed between runs: %d vs %d", res.Output.Len(), groups)
		}
		if best == 0 || res.Total < best {
			best = res.Total
		}
	}
	return best, groups, nil
}

// buildQueryReport measures the front-end and both plans on one pooled
// engine.
func buildQueryReport(cfg Config) (*QueryReport, error) {
	cat := queryBenchCatalog(cfg)
	engine := mpsm.New(mpsm.WithWorkers(cfg.workers()), mpsm.WithScratchPool(true))
	rep := &QueryReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Query:       queryBenchSrc,
		RSize:       cat["r"].Len(),
		SSize:       cat["s"].Len(),
		TSize:       cat["t"].Len(),
		Workers:     cfg.workers(),
	}

	// Front-end cost: parse + compile the text repeatedly. The first call
	// warms the allocator; the measured batch reports the mean per query.
	compiled, err := mpsm.Compile(queryBenchSrc, cat)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	for i := 0; i < queryCompileIterations; i++ {
		if compiled, err = mpsm.Compile(queryBenchSrc, cat); err != nil {
			return nil, err
		}
	}
	rep.CompileMicros = float64(time.Since(start).Microseconds()) / queryCompileIterations

	best, groups, err := measureQueryPlan(engine, compiled)
	if err != nil {
		return nil, err
	}
	rep.CompiledMillis = millis(best)
	rep.Groups = groups

	best, handGroups, err := measureQueryPlan(engine, queryHandPlan(cat))
	if err != nil {
		return nil, err
	}
	rep.HandMillis = millis(best)
	if handGroups != groups {
		return nil, fmt.Errorf("query: compiled and hand-built plans disagree on the group count: %d vs %d", groups, handGroups)
	}

	if rep.CompiledMillis > 0 {
		rep.CompileOverhead = (rep.CompileMicros / 1000) / rep.CompiledMillis
	}
	if rep.HandMillis > 0 {
		rep.PlanRatio = rep.CompiledMillis / rep.HandMillis
	}
	return rep, nil
}

// runQueryExperiment renders the front-end measurements as a table.
func runQueryExperiment(cfg Config, w io.Writer) error {
	rep, err := buildQueryReport(cfg)
	if err != nil {
		return err
	}
	tbl := newTable(w)
	tbl.row("stage", "time")
	tbl.row("parse+compile", fmt.Sprintf("%.1f µs", rep.CompileMicros))
	tbl.row("compiled plan", fmt.Sprintf("%.2f ms", rep.CompiledMillis))
	tbl.row("hand-built plan", fmt.Sprintf("%.2f ms", rep.HandMillis))
	tbl.flush()
	fmt.Fprintf(w, "\nfront-end overhead is %.2f%% of end-to-end time; the compiled plan runs at %.2fx the hand-built plan (%d groups, |R|=%d, |S|=|T|=%d)\n",
		rep.CompileOverhead*100, rep.PlanRatio, rep.Groups, rep.RSize, rep.SSize)
	if cfg.Verbose {
		fmt.Fprintln(w, "expected shape: compilation is microseconds against milliseconds of join work, and the lowered plan is the hand-built plan, so the ratio hovers around 1.0")
	}
	return nil
}

// queryJSON produces the machine-readable query report.
func queryJSON(cfg Config) (any, error) {
	return buildQueryReport(cfg)
}
