package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/hashjoin"
	"repro/internal/relation"
	"repro/internal/result"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		Name:  "figure12",
		Title: "MPSM vs radix hash join (Vectorwise stand-in) vs Wisconsin hash join on uniform data",
		Run:   runFigure12,
	})
	register(Experiment{
		Name:  "figure13",
		Title: "Scalability in the number of cores (MPSM vs radix hash join)",
		Run:   runFigure13,
	})
	register(Experiment{
		Name:  "figure14",
		Title: "Role reversal: private input R vs private input S",
		Run:   runFigure14,
	})
}

// makeUniformDataset builds the standard Section 5 dataset: |R| tuples with a
// foreign-key S of multiplicity·|R| tuples so that the join produces matches
// at laptop scale.
func makeUniformDataset(cfg Config, multiplicity int, seed uint64) (*relation.Relation, *relation.Relation, error) {
	return workload.Generate(workload.Spec{
		RSize:        cfg.RSize(),
		Multiplicity: multiplicity,
		ForeignKey:   true,
		Seed:         seed,
	})
}

// warmUp runs every algorithm once on a small dataset before an experiment's
// measured runs, so that the first measured row does not absorb one-time costs
// (page faults of freshly allocated heap, scheduler ramp-up). The paper avoids
// the same effect by reporting warm repetitions only.
func warmUp(cfg Config) error {
	r, s, err := makeUniformDataset(Config{Scale: 0.02, Workers: cfg.Workers}, 2, 999)
	if err != nil {
		return err
	}
	workers := cfg.workers()
	if _, err := pmpsm(r, s, core.Options{Workers: workers}); err != nil {
		return err
	}
	if _, err := bmpsm(r, s, core.Options{Workers: workers}); err != nil {
		return err
	}
	if _, err := radix(r, s, hashjoin.RadixOptions{Options: hashjoin.Options{Workers: workers}}); err != nil {
		return err
	}
	if _, err := wisconsin(r, s, hashjoin.Options{Workers: workers}); err != nil {
		return err
	}
	return nil
}

// measureRuns is the number of repetitions of every measured join; the
// fastest repetition is reported, following the paper's practice of repeating
// each query and reporting warm executions only. It also suppresses the
// scheduling noise of small shared machines.
const measureRuns = 3

// bestOf runs the measurement fn several times and returns the result with
// the smallest total time; a failed repetition aborts the measurement.
func bestOf(fn func() (*result.Result, error)) (*result.Result, error) {
	best, err := fn()
	if err != nil {
		return nil, err
	}
	for i := 1; i < measureRuns; i++ {
		r, err := fn()
		if err != nil {
			return nil, err
		}
		if r.Total < best.Total {
			best = r
		}
	}
	return best, nil
}

// phaseCell renders a phase duration or "-" when the algorithm has no such
// phase.
func phaseCell(res *result.Result, name string) string {
	for _, p := range res.Phases {
		if p.Name == name {
			return ms(p.Duration)
		}
	}
	return "-"
}

// runFigure12 reproduces Figure 12: total execution time with per-phase
// breakdown for P-MPSM, the radix hash join, and the Wisconsin hash join at
// multiplicities 1, 4, 8 and 16 on uniform data.
func runFigure12(cfg Config, w io.Writer) error {
	if err := warmUp(cfg); err != nil {
		return err
	}
	workers := cfg.workers()
	tbl := newTable(w)
	tbl.row("algorithm", "multiplicity", "total [ms]", "phase 1", "phase 2", "phase 3", "phase 4", "build/partition", "probe/join", "NUMA model [ms]", "sync ops", "matches")

	for _, mult := range []int{1, 4, 8, 16} {
		r, s, err := makeUniformDataset(cfg, mult, uint64(1200+mult))
		if err != nil {
			return err
		}

		p, err := bestOf(func() (*result.Result, error) { return pmpsm(r, s, core.Options{Workers: workers, TrackNUMA: true}) })
		if err != nil {
			return err
		}
		tbl.row("P-MPSM", mult, ms(p.Total), phaseCell(p, "phase 1"), phaseCell(p, "phase 2"),
			phaseCell(p, "phase 3"), phaseCell(p, "phase 4"), "-", "-",
			ms(p.SimulatedNUMACost), p.NUMA.SyncOps, p.Matches)

		v, err := bestOf(func() (*result.Result, error) {
			return radix(r, s, hashjoin.RadixOptions{Options: hashjoin.Options{Workers: workers, TrackNUMA: true}})
		})
		if err != nil {
			return err
		}
		tbl.row("Radix HJ (VW)", mult, ms(v.Total), "-", "-", "-", "-",
			phaseCell(v, "partition"), phaseCell(v, "build+probe"),
			ms(v.SimulatedNUMACost), v.NUMA.SyncOps, v.Matches)

		wi, err := bestOf(func() (*result.Result, error) {
			return wisconsin(r, s, hashjoin.Options{Workers: workers, TrackNUMA: true})
		})
		if err != nil {
			return err
		}
		tbl.row("Wisconsin", mult, ms(wi.Total), "-", "-", "-", "-",
			phaseCell(wi, "build"), phaseCell(wi, "probe"),
			ms(wi.SimulatedNUMACost), wi.NUMA.SyncOps, wi.Matches)
	}
	tbl.flush()
	if cfg.Verbose {
		fmt.Fprintf(w, "\nworkers=%d |R|=%d\n", workers, cfg.RSize())
		fmt.Fprintln(w, "expected shape: under the NUMA cost model (the paper's machine), P-MPSM is cheapest and Wisconsin most expensive;")
		fmt.Fprintln(w, "wall-clock totals on a small-scale, NUMA-oblivious Go runtime favour the cache-sized radix hash join")
	}
	return nil
}

// runFigure13 reproduces Figure 13: execution time of P-MPSM and the radix
// hash join at parallelism 2, 4, 8, 16, 32 and 64 on uniform data with
// multiplicity 4.
func runFigure13(cfg Config, w io.Writer) error {
	if err := warmUp(cfg); err != nil {
		return err
	}
	r, s, err := makeUniformDataset(cfg, 4, 1300)
	if err != nil {
		return err
	}
	tbl := newTable(w)
	tbl.row("parallelism", "P-MPSM total [ms]", "Radix HJ total [ms]", "P-MPSM speedup vs T=2", "P-MPSM NUMA model [ms]")

	var basePMPSM float64
	for _, workers := range []int{2, 4, 8, 16, 32, 64} {
		p, err := bestOf(func() (*result.Result, error) { return pmpsm(r, s, core.Options{Workers: workers, TrackNUMA: true}) })
		if err != nil {
			return err
		}
		v, err := radix(r, s, hashjoin.RadixOptions{Options: hashjoin.Options{Workers: workers}})
		if err != nil {
			return err
		}
		if workers == 2 {
			basePMPSM = float64(p.Total)
		}
		speedup := basePMPSM / float64(p.Total)
		tbl.row(workers, ms(p.Total), ms(v.Total), fmt.Sprintf("%.2fx", speedup), ms(p.SimulatedNUMACost))
	}
	tbl.flush()
	if cfg.Verbose {
		fmt.Fprintln(w, "\nexpected shape: near-linear speedup until the physical core count is reached, flat beyond it")
	}
	return nil
}

// runFigure14 reproduces Figure 14: the effect of role reversal. The same
// R ⋈ S join is executed once with the smaller relation R as private input
// and once with the larger relation S as private input, at multiplicities
// 1, 4, 8 and 16.
func runFigure14(cfg Config, w io.Writer) error {
	if err := warmUp(cfg); err != nil {
		return err
	}
	workers := cfg.workers()
	tbl := newTable(w)
	tbl.row("private input", "multiplicity", "total [ms]", "phase 1", "phase 2", "phase 3", "phase 4")

	for _, mult := range []int{1, 4, 8, 16} {
		r, s, err := makeUniformDataset(cfg, mult, uint64(1400+mult))
		if err != nil {
			return err
		}

		a, err := bestOf(func() (*result.Result, error) { return pmpsm(r, s, core.Options{Workers: workers}) }) // R private (recommended)
		if err != nil {
			return err
		}
		tbl.row("R (smaller)", mult, ms(a.Total), phaseCell(a, "phase 1"), phaseCell(a, "phase 2"),
			phaseCell(a, "phase 3"), phaseCell(a, "phase 4"))

		b, err := bestOf(func() (*result.Result, error) { return pmpsm(s, r, core.Options{Workers: workers}) }) // S private (reversed)
		if err != nil {
			return err
		}
		tbl.row("S (larger)", mult, ms(b.Total), phaseCell(b, "phase 1"), phaseCell(b, "phase 2"),
			phaseCell(b, "phase 3"), phaseCell(b, "phase 4"))
	}
	tbl.flush()
	if cfg.Verbose {
		fmt.Fprintln(w, "\nexpected shape: identical at multiplicity 1; the gap grows with |S| in favour of keeping the smaller relation private")
	}
	return nil
}
