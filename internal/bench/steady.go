package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	mpsm "repro"
)

func init() {
	register(Experiment{
		Name:  "steadystate",
		Title: "Allocation-free steady state: repeated joins on one Engine, scratch pool off vs on",
		Run:   runSteadyState,
		JSON:  steadyStateJSON,
	})
}

// steadyStateJoins is how many measured joins each configuration runs (after
// warm-up); enough to average out GC timing noise without making the
// experiment slow at default scale.
const steadyStateJoins = 10

// SteadyStateRun is one pool configuration's measurement in the steady-state
// report.
type SteadyStateRun struct {
	Pool            bool    `json:"pool"`
	NsPerOp         float64 `json:"ns_per_op"`
	AllocBytesPerOp float64 `json:"alloc_bytes_per_op"`
	AllocsPerOp     float64 `json:"allocs_per_op"`
	GCPauseTotalMs  float64 `json:"gc_pause_total_ms"`
	NumGC           uint32  `json:"num_gc"`
	// ScratchReused and ScratchBuffers report the last join's lease traffic
	// (zero with the pool off).
	ScratchBuffers int `json:"scratch_buffers"`
	ScratchReused  int `json:"scratch_reused"`
}

// SteadyStateReport is the machine-readable report of the steadystate
// experiment (BENCH_steadystate.json): N repeated joins on one long-lived
// Engine, with and without the scratch pool. AllocBytesReduction is the
// fraction of per-join allocated bytes the pool eliminates — the headline
// "allocation-free steady state" number (the allocation count is dominated by
// fixed per-join scheduling overhead either way and is reported alongside).
type SteadyStateReport struct {
	GeneratedAt         string           `json:"generated_at"`
	Algorithm           string           `json:"algorithm"`
	Joins               int              `json:"joins"`
	RSize               int              `json:"r_size"`
	SSize               int              `json:"s_size"`
	Workers             int              `json:"workers"`
	Runs                []SteadyStateRun `json:"runs"`
	AllocBytesReduction float64          `json:"alloc_bytes_reduction"`
	AllocsReduction     float64          `json:"allocs_reduction"`
}

// measureSteadyState runs the repeated-join loop for one pool setting on a
// fresh Engine and reports per-op cost and GC behaviour.
func measureSteadyState(cfg Config, r, s *mpsm.Relation, pool bool) (SteadyStateRun, error) {
	engine := mpsm.New(
		mpsm.WithWorkers(cfg.workers()),
		mpsm.WithScratchPool(pool),
	)
	ctx := context.Background()

	// Warm-up: lets the pooled engine populate its free lists and both
	// engines reach a steady heap.
	var last *mpsm.Result
	var err error
	for i := 0; i < 2; i++ {
		if last, err = engine.Join(ctx, r, s); err != nil {
			return SteadyStateRun{}, err
		}
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < steadyStateJoins; i++ {
		if last, err = engine.Join(ctx, r, s); err != nil {
			return SteadyStateRun{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	return SteadyStateRun{
		Pool:            pool,
		NsPerOp:         float64(elapsed.Nanoseconds()) / steadyStateJoins,
		AllocBytesPerOp: float64(after.TotalAlloc-before.TotalAlloc) / steadyStateJoins,
		AllocsPerOp:     float64(after.Mallocs-before.Mallocs) / steadyStateJoins,
		GCPauseTotalMs:  float64(after.PauseTotalNs-before.PauseTotalNs) / 1e6,
		NumGC:           after.NumGC - before.NumGC,
		ScratchBuffers:  last.Scratch.Buffers,
		ScratchReused:   last.Scratch.Reused,
	}, nil
}

// buildSteadyStateReport measures both pool settings.
func buildSteadyStateReport(cfg Config) (*SteadyStateReport, error) {
	r, s, err := makeUniformDataset(cfg, 4, 2600)
	if err != nil {
		return nil, err
	}
	rep := &SteadyStateReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Algorithm:   mpsm.PMPSM.String(),
		Joins:       steadyStateJoins,
		RSize:       r.Len(),
		SSize:       s.Len(),
		Workers:     cfg.workers(),
	}
	for _, pool := range []bool{false, true} {
		run, err := measureSteadyState(cfg, r, s, pool)
		if err != nil {
			return nil, err
		}
		rep.Runs = append(rep.Runs, run)
	}
	off, on := rep.Runs[0], rep.Runs[1]
	if off.AllocBytesPerOp > 0 {
		rep.AllocBytesReduction = 1 - on.AllocBytesPerOp/off.AllocBytesPerOp
	}
	if off.AllocsPerOp > 0 {
		rep.AllocsReduction = 1 - on.AllocsPerOp/off.AllocsPerOp
	}
	return rep, nil
}

// runSteadyState renders the steady-state comparison as a table.
func runSteadyState(cfg Config, w io.Writer) error {
	rep, err := buildSteadyStateReport(cfg)
	if err != nil {
		return err
	}
	tbl := newTable(w)
	tbl.row("scratch pool", "join [ms]", "alloc [KiB/op]", "allocs/op", "GC pauses [ms]", "GCs", "lease reuse")
	for _, run := range rep.Runs {
		label := "off"
		reuse := "-"
		if run.Pool {
			label = "on"
			reuse = fmt.Sprintf("%d/%d", run.ScratchReused, run.ScratchBuffers)
		}
		tbl.row(label,
			fmt.Sprintf("%.2f", run.NsPerOp/1e6),
			fmt.Sprintf("%.1f", run.AllocBytesPerOp/1024),
			fmt.Sprintf("%.0f", run.AllocsPerOp),
			fmt.Sprintf("%.2f", run.GCPauseTotalMs),
			run.NumGC,
			reuse)
	}
	tbl.flush()
	fmt.Fprintf(w, "\nallocated bytes per warm join reduced by %.1f%% with the pool on (%d joins of %s, |R|=%d, |S|=%d)\n",
		100*rep.AllocBytesReduction, rep.Joins, rep.Algorithm, rep.RSize, rep.SSize)
	if cfg.Verbose {
		fmt.Fprintln(w, "expected shape: ≥90% byte reduction; allocs/op dominated by fixed scheduling overhead in both modes; fewer or equal GCs with the pool on")
	}
	return nil
}

// steadyStateJSON produces the machine-readable steady-state report.
func steadyStateJSON(cfg Config) (any, error) {
	return buildSteadyStateReport(cfg)
}
