package bench

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/hashjoin"
	"repro/internal/result"
	"repro/internal/sched"
)

// PhaseJSON is one timed phase in the machine-readable report.
type PhaseJSON struct {
	Name   string  `json:"name"`
	Millis float64 `json:"millis"`
}

// AlgorithmTiming is the machine-readable timing record of one join
// execution: what the human-readable experiment tables print, as JSON, so
// that successive benchmark runs (BENCH_*.json) can accumulate a performance
// trajectory.
type AlgorithmTiming struct {
	Algorithm     string      `json:"algorithm"`
	Scheduler     string      `json:"scheduler"`
	Workers       int         `json:"workers"`
	TotalMillis   float64     `json:"total_millis"`
	Phases        []PhaseJSON `json:"phases"`
	Matches       uint64      `json:"matches"`
	MaxSum        uint64      `json:"max_sum"`
	PublicScanned int         `json:"public_scanned,omitempty"`
	NUMAModelMs   float64     `json:"numa_model_millis,omitempty"`
	SyncOps       uint64      `json:"sync_ops,omitempty"`
}

// ResultJSON converts a join result into its machine-readable record.
func ResultJSON(res *result.Result, scheduler string) AlgorithmTiming {
	t := AlgorithmTiming{
		Algorithm:     res.Algorithm,
		Scheduler:     scheduler,
		Workers:       res.Workers,
		TotalMillis:   millis(res.Total),
		Matches:       res.Matches,
		MaxSum:        res.MaxSum,
		PublicScanned: res.PublicScanned,
		NUMAModelMs:   millis(res.SimulatedNUMACost),
		SyncOps:       res.NUMA.SyncOps,
	}
	for _, p := range res.Phases {
		t.Phases = append(t.Phases, PhaseJSON{Name: p.Name, Millis: millis(p.Duration)})
	}
	return t
}

// Report is the machine-readable benchmark report: every algorithm under
// both scheduling modes on the standard Section 5 dataset.
type Report struct {
	GeneratedAt  string            `json:"generated_at"`
	GoMaxProcs   int               `json:"gomaxprocs"`
	Scale        float64           `json:"scale"`
	Workers      int               `json:"workers"`
	RSize        int               `json:"r_size"`
	SSize        int               `json:"s_size"`
	Multiplicity int               `json:"multiplicity"`
	Results      []AlgorithmTiming `json:"results"`
}

// RunReport executes every algorithm once per scheduling mode (best of the
// usual repetitions) on the standard uniform foreign-key dataset and returns
// the machine-readable report.
func RunReport(cfg Config) (*Report, error) {
	if err := warmUp(cfg); err != nil {
		return nil, err
	}
	const multiplicity = 4
	workers := cfg.workers()
	r, s, err := makeUniformDataset(cfg, multiplicity, 2200)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		Scale:        cfg.Scale,
		Workers:      workers,
		RSize:        r.Len(),
		SSize:        s.Len(),
		Multiplicity: multiplicity,
	}

	for _, mode := range []sched.Mode{sched.Static, sched.Morsel} {
		coreOpts := core.Options{Workers: workers, TrackNUMA: true, Scheduler: mode}
		hashOpts := hashjoin.Options{Workers: workers, TrackNUMA: true, Scheduler: mode}

		runs := []func() (*result.Result, error){
			func() (*result.Result, error) { return pmpsm(r, s, coreOpts) },
			func() (*result.Result, error) { return bmpsm(r, s, coreOpts) },
			func() (*result.Result, error) {
				res, _, err := dmpsm(r, s, coreOpts, core.DiskOptions{})
				return res, err
			},
			func() (*result.Result, error) { return wisconsin(r, s, hashOpts) },
			func() (*result.Result, error) { return radix(r, s, hashjoin.RadixOptions{Options: hashOpts}) },
		}
		for _, run := range runs {
			res, err := bestOf(run)
			if err != nil {
				return nil, err
			}
			rep.Results = append(rep.Results, ResultJSON(res, mode.String()))
		}
	}
	return rep, nil
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	return WriteAnyJSON(w, r)
}

// WriteAnyJSON renders any machine-readable report (the per-algorithm Report,
// SortReport, SteadyStateReport, ...) as indented JSON.
func WriteAnyJSON(w io.Writer, report any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// millis converts a duration to fractional milliseconds.
func millis(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000.0
}
