package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/batch"
	"repro/internal/mergejoin"
	"repro/internal/relation"
	"repro/internal/result"
	"repro/internal/sorting"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		Name:  "columnar",
		Title: "Columnar kernels: AoS vs SoA run generation, scalar vs branch-free selection, merge with and without prefetch",
		Run:   runColumnarExperiment,
		JSON:  columnarJSON,
	})
}

// columnarRepetitions is the best-of repetition count per kernel;
// columnarSortRepetitions is higher because the sort acceptance ratio has the
// smallest margin and its ~40ms kernels need more samples for the minimum to
// converge on a shared machine.
const (
	columnarRepetitions     = 5
	columnarSortRepetitions = 9
)

// columnarSize floors the kernel input at 2^20 tuples for measurement-grade
// runs (scale >= 0.25, the CI bench scale): the acceptance ratios compare
// tight-loop kernels whose sub-millisecond times at smoke-test sizes are
// dominated by timer granularity. Tiny scales run at their natural size so
// the experiment stays fast under the race detector.
func columnarSize(cfg Config) int {
	n := cfg.RSize()
	if cfg.Scale >= 0.25 && n < 1<<20 {
		n = 1 << 20
	}
	return n
}

// ColumnarFilterCell is one selectivity point of the selection comparison:
// a branchy scalar scan against the branch-free selection-vector kernel over
// the same key column.
type ColumnarFilterCell struct {
	SelectivityPct int     `json:"selectivity_pct"`
	ScalarMillis   float64 `json:"scalar_millis"`
	VectorMillis   float64 `json:"vector_millis"`
	// Speedup is ScalarMillis / VectorMillis.
	Speedup float64 `json:"speedup"`
}

// ColumnarReport is the machine-readable report (BENCH_columnar.json).
type ColumnarReport struct {
	GeneratedAt string  `json:"generated_at"`
	Scale       float64 `json:"scale"`
	Tuples      int     `json:"tuples"`

	// Run generation: sorting tuples into an AoS run (SortInto) vs into a
	// SoA key/payload column pair (SortTuplesIntoColumns). Both are charged
	// out-of-place from the same unsorted source.
	AoSSortMillis float64 `json:"aos_sort_millis"`
	SoASortMillis float64 `json:"soa_sort_millis"`
	// SortSpeedup is AoSSortMillis / SoASortMillis (acceptance: >= 1.2 at
	// 2^20 tuples under MPSM_PERF_ASSERT).
	SortSpeedup float64 `json:"sort_speedup"`

	// Selection at several selectivities; FilterSpeedupAt50 repeats the 50%
	// cell's ratio (acceptance: >= 2 under MPSM_PERF_ASSERT — the point of
	// maximum branch misprediction for the scalar loop).
	Filter            []ColumnarFilterCell `json:"filter"`
	FilterSpeedupAt50 float64              `json:"filter_speedup_at_50"`

	// Merge kernel scanning the public run with software prefetch
	// (PrefetchDistance ahead) vs without. No strict acceptance: the win
	// depends on whether the public column misses cache on the host.
	MergeNoPrefetchMillis float64 `json:"merge_no_prefetch_millis"`
	MergePrefetchMillis   float64 `json:"merge_prefetch_millis"`
	PrefetchSpeedup       float64 `json:"prefetch_speedup"`
}

// columnarSink defeats dead-code elimination of the measured kernels.
var columnarSink uint64

// bestOfKernel times fn columnarRepetitions times and keeps the minimum.
func bestOfKernel(fn func()) time.Duration {
	return bestOfKernelN(columnarRepetitions, fn)
}

// bestOfKernelN times fn reps times and keeps the minimum.
func bestOfKernelN(reps int, fn func()) time.Duration {
	var best time.Duration
	for i := 0; i < reps; i++ {
		d := result.StopwatchPhase(fn)
		if best == 0 || d < best {
			best = d
		}
	}
	return best
}

// scalarSelectRange is the branchy baseline the vectorized kernel replaces:
// one predicate test and one conditional append per element.
func scalarSelectRange(keys []uint64, lo, hi uint64, sel []int32) int {
	n := 0
	for i, k := range keys {
		if k >= lo && k < hi {
			sel[n] = int32(i)
			n++
		}
	}
	return n
}

// buildColumnarReport measures the three kernel comparisons.
func buildColumnarReport(cfg Config) (*ColumnarReport, error) {
	n := columnarSize(cfg)
	rep := &ColumnarReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Scale:       cfg.Scale,
		Tuples:      n,
	}

	// --- Run generation: AoS vs SoA, both out-of-place from the same source.
	src := workload.UniformRelation("R", n, workload.DefaultKeyDomain, 4100).Tuples
	aosDst := make([]relation.Tuple, n)
	keys := make([]uint64, n)
	pays := make([]uint64, n)
	perm := make([]int32, n)
	aos := bestOfKernelN(columnarSortRepetitions, func() { sorting.SortInto(src, aosDst) })
	soa := bestOfKernelN(columnarSortRepetitions, func() { sorting.SortTuplesIntoColumns(src, keys, pays, perm) })
	rep.AoSSortMillis, rep.SoASortMillis = millis(aos), millis(soa)
	if soa > 0 {
		rep.SortSpeedup = float64(aos) / float64(soa)
	}

	// --- Selection: scalar branchy scan vs branch-free selection vector.
	// The key column is UNSORTED (selections run on scan input, not on
	// sorted runs) and uniform over the full domain, so a range of p% of the
	// domain selects ~p% of the keys in unpredictable positions; at 50% the
	// scalar loop's branch is a coin flip and mispredicts maximally. On a
	// sorted column the branch would be perfectly predictable and the
	// comparison meaningless.
	unsorted := make([]uint64, n)
	batch.Deinterleave(src, unsorted, pays)
	sel := make([]int32, n)
	for _, pct := range []int{1, 10, 50, 90, 99} {
		hi := uint64(float64(workload.DefaultKeyDomain) * float64(pct) / 100)
		scalar := bestOfKernel(func() { columnarSink += uint64(scalarSelectRange(unsorted, 0, hi, sel)) })
		vector := bestOfKernel(func() { columnarSink += uint64(batch.SelectRange(unsorted, 0, hi, sel)) })
		cell := ColumnarFilterCell{
			SelectivityPct: pct,
			ScalarMillis:   millis(scalar),
			VectorMillis:   millis(vector),
		}
		if vector > 0 {
			cell.Speedup = float64(scalar) / float64(vector)
		}
		rep.Filter = append(rep.Filter, cell)
		if pct == 50 {
			rep.FilterSpeedupAt50 = cell.Speedup
		}
	}

	// Re-derive the sorted columns (the filter section reused pays as
	// Deinterleave scratch).
	sorting.SortTuplesIntoColumns(src, keys, pays, perm)

	// --- Merge kernel with and without software prefetch on the public run.
	// The private run is a narrow sorted slice, the public run the full
	// sorted column; the kernel's public cursor streams sequentially, so the
	// prefetch hides the next-line latency of the big column.
	privLen := n / 8
	privKeys, privPays := keys[:privLen], pays[:privLen]
	var cnt mergejoin.Counter
	sc := batch.NewScratch(0, nil)
	noPf := bestOfKernel(func() { mergejoin.JoinColumnsPrefetch(privKeys, privPays, keys, pays, &cnt, sc, 0) })
	pf := bestOfKernel(func() {
		mergejoin.JoinColumnsPrefetch(privKeys, privPays, keys, pays, &cnt, sc, mergejoin.PrefetchDistance)
	})
	sc.Close()
	columnarSink += cnt.Count
	rep.MergeNoPrefetchMillis, rep.MergePrefetchMillis = millis(noPf), millis(pf)
	if pf > 0 {
		rep.PrefetchSpeedup = float64(noPf) / float64(pf)
	}
	return rep, nil
}

// runColumnarExperiment renders the comparisons as tables.
func runColumnarExperiment(cfg Config, w io.Writer) error {
	rep, err := buildColumnarReport(cfg)
	if err != nil {
		return err
	}
	tbl := newTable(w)
	tbl.row("kernel", "variant", "time [ms]", "speedup")
	tbl.row("sort run", "AoS (SortInto)", fmt.Sprintf("%.2f", rep.AoSSortMillis), "")
	tbl.row("sort run", "SoA (SortTuplesIntoColumns)", fmt.Sprintf("%.2f", rep.SoASortMillis), fmt.Sprintf("%.2fx", rep.SortSpeedup))
	for _, c := range rep.Filter {
		tbl.row(fmt.Sprintf("select %d%%", c.SelectivityPct), "scalar branchy", fmt.Sprintf("%.2f", c.ScalarMillis), "")
		tbl.row(fmt.Sprintf("select %d%%", c.SelectivityPct), "branch-free vector", fmt.Sprintf("%.2f", c.VectorMillis), fmt.Sprintf("%.2fx", c.Speedup))
	}
	tbl.row("merge scan", "no prefetch", fmt.Sprintf("%.2f", rep.MergeNoPrefetchMillis), "")
	tbl.row("merge scan", fmt.Sprintf("prefetch +%d", mergejoin.PrefetchDistance), fmt.Sprintf("%.2f", rep.MergePrefetchMillis), fmt.Sprintf("%.2fx", rep.PrefetchSpeedup))
	tbl.flush()
	fmt.Fprintf(w, "\n%d tuples; sort speedup %.2fx (target ≥ 1.2), filter speedup at 50%% selectivity %.2fx (target ≥ 2)\n",
		rep.Tuples, rep.SortSpeedup, rep.FilterSpeedupAt50)
	if cfg.Verbose {
		fmt.Fprintln(w, "expected shape: the SoA sort moves 12 bytes per element instead of 16 and gathers payloads once; the scalar filter pays a misprediction per selectivity-boundary crossing, worst at 50%")
	}
	return nil
}

// columnarJSON produces the machine-readable columnar report.
func columnarJSON(cfg Config) (any, error) {
	return buildColumnarReport(cfg)
}
