package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/result"
	"repro/internal/sorting"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		Name:  "sort",
		Title: "Multi-level Radix/IntroSort vs single-level vs standard library (Section 2.3)",
		Run:   runSortComparison,
		JSON:  sortJSON,
	})
	register(Experiment{
		Name:  "ablation-partitioning",
		Title: "B-MPSM vs P-MPSM: the value of range partitioning (Sections 2.2 / 3.2)",
		Run:   runAblationPartitioning,
	})
	register(Experiment{
		Name:  "dmpsm",
		Title: "D-MPSM under RAM budgets (Section 3.1)",
		Run:   runDMPSMBudgets,
	})
}

// sortRoutines are the contenders of the sort micro-benchmark: the current
// multi-level MSD Radix/IntroSort, its out-of-place SortInto variant (charged
// including the scatter into the destination buffer), the previous
// single-level implementation, and the standard library baseline.
var sortRoutines = []struct {
	name string
	run  func(src, dst []relation.Tuple)
}{
	{"multi-level", func(src, dst []relation.Tuple) { copy(dst, src); sorting.Sort(dst) }},
	{"sort-into", func(src, dst []relation.Tuple) { sorting.SortInto(src, dst) }},
	{"one-level", func(src, dst []relation.Tuple) { copy(dst, src); sorting.SortOneLevel(dst) }},
	{"stdlib", func(src, dst []relation.Tuple) { copy(dst, src); sorting.SortStdlib(dst) }},
}

// measureSortRoutine times reps runs of one routine over the input and
// returns the best (minimum) duration, the convention of Go benchmarks.
func measureSortRoutine(run func(src, dst []relation.Tuple), src []relation.Tuple, reps int) time.Duration {
	dst := make([]relation.Tuple, len(src))
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		d := result.StopwatchPhase(func() { run(src, dst) })
		if best == 0 || d < best {
			best = d
		}
	}
	return best
}

// runSortComparison reproduces the Section 2.3 claim (the paper's routine
// beats the standard library by ~30%) and quantifies what the multi-level
// recursion and the SortInto scatter add over the previous single-level
// implementation, also when many workers sort their local runs concurrently.
func runSortComparison(cfg Config, w io.Writer) error {
	n := cfg.RSize()
	tbl := newTable(w)
	tbl.row("workers", "multi-level [ms]", "sort-into [ms]", "one-level [ms]", "stdlib [ms]", "vs one-level", "vs stdlib")

	for _, workers := range []int{1, 2, 4, cfg.workers()} {
		base := workload.UniformRelation("R", n*workers, workload.DefaultKeyDomain, uint64(1700+workers))

		timeOf := func(fn func(src, dst []relation.Tuple)) time.Duration {
			input := base.Clone().Split(workers)
			// Destination buffers are allocated outside the timed region so
			// the measurement covers only the sort (and its fused copy).
			dsts := make([][]relation.Tuple, len(input))
			for i, c := range input {
				dsts[i] = make([]relation.Tuple, len(c.Tuples))
			}
			return result.StopwatchPhase(func() {
				var wg sync.WaitGroup
				for i, c := range input {
					wg.Add(1)
					go func(c relation.Chunk, dst []relation.Tuple) {
						defer wg.Done()
						fn(c.Tuples, dst)
					}(c, dsts[i])
				}
				wg.Wait()
			})
		}
		multi := timeOf(sortRoutines[0].run)
		into := timeOf(sortRoutines[1].run)
		one := timeOf(sortRoutines[2].run)
		std := timeOf(sortRoutines[3].run)
		tbl.row(workers, ms(multi), ms(into), ms(one), ms(std),
			fmt.Sprintf("%.2fx", float64(one)/float64(multi)),
			fmt.Sprintf("%.2fx", float64(std)/float64(multi)))
	}
	tbl.flush()
	if cfg.Verbose {
		fmt.Fprintln(w, "\nexpected shape: multi-level ≥1.3x over one-level and well over stdlib at every worker count; sort-into fastest (the copy is fused into the first radix pass)")
	}
	return nil
}

// SortTiming is one routine's result in the machine-readable sort report.
type SortTiming struct {
	Routine          string  `json:"routine"`
	NsPerOp          float64 `json:"ns_per_op"`
	SpeedupVsOneLev  float64 `json:"speedup_vs_one_level"`
	SpeedupVsStdlib  float64 `json:"speedup_vs_stdlib"`
	TuplesPerSecondM float64 `json:"tuples_per_second_millions"`
}

// SortReport is the machine-readable report of the sort micro-experiment
// (BENCH_sort.json): every routine on 1M uniform 32-bit keys, the acceptance
// workload of the multi-level rewrite.
type SortReport struct {
	GeneratedAt string       `json:"generated_at"`
	Tuples      int          `json:"tuples"`
	KeyDomain   uint64       `json:"key_domain"`
	Reps        int          `json:"reps"`
	Results     []SortTiming `json:"results"`
}

// sortJSON measures all sort routines on 1M uniform 32-bit keys (independent
// of the scale flag, so the trajectory stays comparable across runs).
func sortJSON(cfg Config) (any, error) {
	const n = 1 << 20
	const reps = 5
	base := workload.UniformRelation("R", n, workload.DefaultKeyDomain, 1700)

	times := make([]time.Duration, len(sortRoutines))
	for i, r := range sortRoutines {
		times[i] = measureSortRoutine(r.run, base.Tuples, reps)
	}
	oneLevel := times[2]
	stdlib := times[3]
	rep := &SortReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Tuples:      n,
		KeyDomain:   workload.DefaultKeyDomain,
		Reps:        reps,
	}
	for i, r := range sortRoutines {
		rep.Results = append(rep.Results, SortTiming{
			Routine:          r.name,
			NsPerOp:          float64(times[i].Nanoseconds()),
			SpeedupVsOneLev:  float64(oneLevel) / float64(times[i]),
			SpeedupVsStdlib:  float64(stdlib) / float64(times[i]),
			TuplesPerSecondM: float64(n) / times[i].Seconds() / 1e6,
		})
	}
	return rep, nil
}

// runAblationPartitioning quantifies the pay-off condition of Section 3.2:
// range partitioning the private input costs an extra pass over R but reduces
// the public data each worker scans from |S| to roughly |S|/T. The experiment
// reports totals, join-phase times and public tuples scanned for B-MPSM and
// P-MPSM across multiplicities.
func runAblationPartitioning(cfg Config, w io.Writer) error {
	if err := warmUp(cfg); err != nil {
		return err
	}
	workers := cfg.workers()
	tbl := newTable(w)
	tbl.row("multiplicity", "algorithm", "total [ms]", "join phase [ms]", "S tuples scanned")
	for _, mult := range []int{1, 4, 8} {
		r, s, err := makeUniformDataset(cfg, mult, uint64(1800+mult))
		if err != nil {
			return err
		}

		b, err := bestOf(func() (*result.Result, error) { return bmpsm(r, s, core.Options{Workers: workers}) })
		if err != nil {
			return err
		}
		tbl.row(mult, "B-MPSM", ms(b.Total), ms(b.PhaseDuration("phase 3")), b.PublicScanned)

		p, err := bestOf(func() (*result.Result, error) { return pmpsm(r, s, core.Options{Workers: workers}) })
		if err != nil {
			return err
		}
		tbl.row(mult, "P-MPSM", ms(p.Total), ms(p.PhaseDuration("phase 4")), p.PublicScanned)
	}
	tbl.flush()
	if cfg.Verbose {
		fmt.Fprintf(w, "\nexpected shape: P-MPSM scans ~1/%d of the S tuples B-MPSM scans and wins whenever |R|/T ≤ |S|·(1-1/T)\n", cfg.workers())
	}
	return nil
}

// runDMPSMBudgets exercises the disk-enabled variant under different page
// budgets and I/O latencies, reporting the buffer-pool behaviour (Figure 4's
// "only the active parts of the runs are in RAM").
func runDMPSMBudgets(cfg Config, w io.Writer) error {
	workers := cfg.workers()
	r, s, err := makeUniformDataset(cfg, 4, 1900)
	if err != nil {
		return err
	}
	pageSize := 1024
	tbl := newTable(w)
	tbl.row("page budget", "read latency", "total [ms]", "max resident pages", "pool loads", "pool hits", "evictions", "matches")

	for _, budget := range []int{0, 16, 64} {
		for _, latency := range []time.Duration{0, 20 * time.Microsecond} {
			res, stats, err := dmpsm(r, s, core.Options{Workers: workers}, core.DiskOptions{
				PageSize:    pageSize,
				PageBudget:  budget,
				ReadLatency: latency,
			})
			if err != nil {
				return err
			}
			budgetLabel := fmt.Sprintf("%d", budget)
			if budget == 0 {
				budgetLabel = "unlimited"
			}
			tbl.row(budgetLabel, latency, ms(res.Total), stats.Pool.MaxResident,
				stats.Pool.Loads, stats.Pool.Hits, stats.Pool.Evictions, res.Matches)
		}
	}
	tbl.flush()
	if cfg.Verbose {
		fmt.Fprintln(w, "\nexpected shape: the join result never changes; resident pages stay within the budget; tighter budgets trade hits for evictions")
	}
	return nil
}
