package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/result"
	"repro/internal/sorting"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		Name:  "sort",
		Title: "Radix/IntroSort vs standard library sort (Section 2.3)",
		Run:   runSortComparison,
	})
	register(Experiment{
		Name:  "ablation-partitioning",
		Title: "B-MPSM vs P-MPSM: the value of range partitioning (Sections 2.2 / 3.2)",
		Run:   runAblationPartitioning,
	})
	register(Experiment{
		Name:  "dmpsm",
		Title: "D-MPSM under RAM budgets (Section 3.1)",
		Run:   runDMPSMBudgets,
	})
}

// runSortComparison reproduces the Section 2.3 claim that the three-phase
// Radix/IntroSort is roughly 30% faster than the standard library sort, also
// when many workers sort their local runs concurrently.
func runSortComparison(cfg Config, w io.Writer) error {
	n := cfg.RSize()
	tbl := newTable(w)
	tbl.row("workers", "Radix/IntroSort [ms]", "stdlib sort [ms]", "speedup")

	for _, workers := range []int{1, 2, 4, cfg.workers()} {
		base := workload.UniformRelation("R", n*workers, workload.DefaultKeyDomain, uint64(1700+workers))

		radixInput := base.Clone().Split(workers)
		radixTime := result.StopwatchPhase(func() {
			var wg sync.WaitGroup
			for _, c := range radixInput {
				wg.Add(1)
				go func(c relation.Chunk) {
					defer wg.Done()
					sorting.Sort(c.Tuples)
				}(c)
			}
			wg.Wait()
		})

		stdInput := base.Clone().Split(workers)
		stdTime := result.StopwatchPhase(func() {
			var wg sync.WaitGroup
			for _, c := range stdInput {
				wg.Add(1)
				go func(c relation.Chunk) {
					defer wg.Done()
					sorting.SortStdlib(c.Tuples)
				}(c)
			}
			wg.Wait()
		})
		tbl.row(workers, ms(radixTime), ms(stdTime), fmt.Sprintf("%.2fx", float64(stdTime)/float64(radixTime)))
	}
	tbl.flush()
	if cfg.Verbose {
		fmt.Fprintln(w, "\nexpected shape: Radix/IntroSort consistently faster (the paper reports ~30%), at every worker count")
	}
	return nil
}

// runAblationPartitioning quantifies the pay-off condition of Section 3.2:
// range partitioning the private input costs an extra pass over R but reduces
// the public data each worker scans from |S| to roughly |S|/T. The experiment
// reports totals, join-phase times and public tuples scanned for B-MPSM and
// P-MPSM across multiplicities.
func runAblationPartitioning(cfg Config, w io.Writer) error {
	if err := warmUp(cfg); err != nil {
		return err
	}
	workers := cfg.workers()
	tbl := newTable(w)
	tbl.row("multiplicity", "algorithm", "total [ms]", "join phase [ms]", "S tuples scanned")
	for _, mult := range []int{1, 4, 8} {
		r, s, err := makeUniformDataset(cfg, mult, uint64(1800+mult))
		if err != nil {
			return err
		}

		b, err := bestOf(func() (*result.Result, error) { return bmpsm(r, s, core.Options{Workers: workers}) })
		if err != nil {
			return err
		}
		tbl.row(mult, "B-MPSM", ms(b.Total), ms(b.PhaseDuration("phase 3")), b.PublicScanned)

		p, err := bestOf(func() (*result.Result, error) { return pmpsm(r, s, core.Options{Workers: workers}) })
		if err != nil {
			return err
		}
		tbl.row(mult, "P-MPSM", ms(p.Total), ms(p.PhaseDuration("phase 4")), p.PublicScanned)
	}
	tbl.flush()
	if cfg.Verbose {
		fmt.Fprintf(w, "\nexpected shape: P-MPSM scans ~1/%d of the S tuples B-MPSM scans and wins whenever |R|/T ≤ |S|·(1-1/T)\n", cfg.workers())
	}
	return nil
}

// runDMPSMBudgets exercises the disk-enabled variant under different page
// budgets and I/O latencies, reporting the buffer-pool behaviour (Figure 4's
// "only the active parts of the runs are in RAM").
func runDMPSMBudgets(cfg Config, w io.Writer) error {
	workers := cfg.workers()
	r, s, err := makeUniformDataset(cfg, 4, 1900)
	if err != nil {
		return err
	}
	pageSize := 1024
	tbl := newTable(w)
	tbl.row("page budget", "read latency", "total [ms]", "max resident pages", "pool loads", "pool hits", "evictions", "matches")

	for _, budget := range []int{0, 16, 64} {
		for _, latency := range []time.Duration{0, 20 * time.Microsecond} {
			res, stats, err := dmpsm(r, s, core.Options{Workers: workers}, core.DiskOptions{
				PageSize:    pageSize,
				PageBudget:  budget,
				ReadLatency: latency,
			})
			if err != nil {
				return err
			}
			budgetLabel := fmt.Sprintf("%d", budget)
			if budget == 0 {
				budgetLabel = "unlimited"
			}
			tbl.row(budgetLabel, latency, ms(res.Total), stats.Pool.MaxResident,
				stats.Pool.Loads, stats.Pool.Hits, stats.Pool.Evictions, res.Matches)
		}
	}
	tbl.flush()
	if cfg.Verbose {
		fmt.Fprintln(w, "\nexpected shape: the join result never changes; resident pages stay within the budget; tighter budgets trade hits for evictions")
	}
	return nil
}
