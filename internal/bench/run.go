package bench

import (
	"context"

	"repro/internal/core"
	"repro/internal/hashjoin"
	"repro/internal/relation"
	"repro/internal/result"
)

// The experiment harness always runs joins to completion on a background
// context, so the context-cancellation error paths of the algorithms cannot
// trigger here; these wrappers keep the measurement code free of error
// plumbing.

func pmpsm(r, s *relation.Relation, opts core.Options) *result.Result {
	res, err := core.PMPSM(context.Background(), r, s, opts)
	if err != nil {
		panic(err)
	}
	return res
}

func bmpsm(r, s *relation.Relation, opts core.Options) *result.Result {
	res, err := core.BMPSM(context.Background(), r, s, opts)
	if err != nil {
		panic(err)
	}
	return res
}

func dmpsm(r, s *relation.Relation, opts core.Options, diskOpts core.DiskOptions) (*result.Result, core.DiskStats) {
	res, stats, err := core.DMPSM(context.Background(), r, s, opts, diskOpts)
	if err != nil {
		panic(err)
	}
	return res, stats
}

func wisconsin(r, s *relation.Relation, opts hashjoin.Options) *result.Result {
	res, err := hashjoin.Wisconsin(context.Background(), r, s, opts)
	if err != nil {
		panic(err)
	}
	return res
}

func radix(r, s *relation.Relation, opts hashjoin.RadixOptions) *result.Result {
	res, err := hashjoin.Radix(context.Background(), r, s, opts)
	if err != nil {
		panic(err)
	}
	return res
}
