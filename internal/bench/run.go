package bench

import (
	"context"

	"repro/internal/core"
	"repro/internal/hashjoin"
	"repro/internal/relation"
	"repro/internal/result"
)

// The experiment harness always runs joins to completion on a background
// context; these wrappers keep the measurement code free of context
// plumbing while still propagating failures, so a broken configuration
// reports as an experiment error instead of crashing the harness.

func pmpsm(r, s *relation.Relation, opts core.Options) (*result.Result, error) {
	return core.PMPSM(context.Background(), r, s, opts)
}

func bmpsm(r, s *relation.Relation, opts core.Options) (*result.Result, error) {
	return core.BMPSM(context.Background(), r, s, opts)
}

func dmpsm(r, s *relation.Relation, opts core.Options, diskOpts core.DiskOptions) (*result.Result, core.DiskStats, error) {
	return core.DMPSM(context.Background(), r, s, opts, diskOpts)
}

func wisconsin(r, s *relation.Relation, opts hashjoin.Options) (*result.Result, error) {
	return hashjoin.Wisconsin(context.Background(), r, s, opts)
}

func radix(r, s *relation.Relation, opts hashjoin.RadixOptions) (*result.Result, error) {
	return hashjoin.Radix(context.Background(), r, s, opts)
}
