package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	mpsm "repro"
)

func init() {
	register(Experiment{
		Name:  "plan",
		Title: "Operator plans: streaming merge aggregation vs materialize + hash aggregation over the MPSM join",
		Run:   runPlanExperiment,
		JSON:  planJSON,
	})
}

// planRepetitions is how often each aggregation strategy runs; the report
// keeps the best time, following the paper's warm-repetition methodology.
const planRepetitions = 3

// PlanAggRun is one aggregation strategy's measurement.
type PlanAggRun struct {
	Strategy        string  `json:"strategy"`
	Millis          float64 `json:"millis"`
	Groups          int     `json:"groups"`
	AllocBytesPerOp float64 `json:"alloc_bytes_per_op"`
}

// PlanReport is the machine-readable report of the plan experiment
// (BENCH_plan.json): a GroupAggregate above a P-MPSM join executed once as
// the fused streaming merge aggregation over the join's key-ordered output,
// and once as materialize-the-projection-then-hash-aggregate. Speedup > 1
// means streaming wins.
type PlanReport struct {
	GeneratedAt string       `json:"generated_at"`
	RSize       int          `json:"r_size"`
	SSize       int          `json:"s_size"`
	Workers     int          `json:"workers"`
	Runs        []PlanAggRun `json:"runs"`
	Speedup     float64      `json:"speedup"`
}

// planAggPlan builds the measured plan: GroupAggregate(SUM) directly above
// the join for the streaming strategy, or above an explicit projection (which
// materializes the join output first, forcing the hash path) otherwise.
func planAggPlan(r, s *mpsm.Relation, streaming bool) *mpsm.Plan {
	p := mpsm.NewPlan()
	j := p.Join(p.Scan(r), p.Scan(s))
	in := j
	if !streaming {
		in = p.Project(j, func(rt, st mpsm.Tuple) mpsm.Tuple {
			return mpsm.Tuple{Key: rt.Key, Payload: rt.Payload + st.Payload}
		})
	}
	p.GroupAggregate(in, mpsm.AggSum)
	return p
}

// measurePlanAgg runs one strategy and reports its best time and per-op
// allocation.
func measurePlanAgg(engine *mpsm.Engine, r, s *mpsm.Relation, streaming bool) (PlanAggRun, error) {
	plan := planAggPlan(r, s, streaming)
	strategy := "materialize+hash"
	if streaming {
		strategy = "streaming merge"
	}
	run := PlanAggRun{Strategy: strategy}
	ctx := context.Background()

	// One warm-up execution populates the scratch pool.
	res, err := engine.RunPlan(ctx, plan)
	if err != nil {
		return run, err
	}
	run.Groups = res.Output.Len()

	best := time.Duration(0)
	var bytes uint64
	for i := 0; i < planRepetitions; i++ {
		before := heapAllocBytes()
		res, err := engine.RunPlan(ctx, plan)
		if err != nil {
			return run, err
		}
		bytes = heapAllocBytes() - before
		if res.Output.Len() != run.Groups {
			return run, fmt.Errorf("plan: group count changed between runs: %d vs %d", res.Output.Len(), run.Groups)
		}
		if best == 0 || res.Total < best {
			best = res.Total
		}
	}
	run.Millis = millis(best)
	run.AllocBytesPerOp = float64(bytes)
	return run, nil
}

// buildPlanReport measures both strategies on one pooled engine.
func buildPlanReport(cfg Config) (*PlanReport, error) {
	r, s, err := makeUniformDataset(cfg, 4, 2900)
	if err != nil {
		return nil, err
	}
	engine := mpsm.New(mpsm.WithWorkers(cfg.workers()), mpsm.WithScratchPool(true))
	rep := &PlanReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		RSize:       r.Len(),
		SSize:       s.Len(),
		Workers:     cfg.workers(),
	}
	for _, streaming := range []bool{false, true} {
		run, err := measurePlanAgg(engine, r, s, streaming)
		if err != nil {
			return nil, err
		}
		rep.Runs = append(rep.Runs, run)
	}
	materialized, streamed := rep.Runs[0], rep.Runs[1]
	if materialized.Groups != streamed.Groups {
		return nil, fmt.Errorf("plan: strategies disagree on the group count: %d vs %d",
			materialized.Groups, streamed.Groups)
	}
	if streamed.Millis > 0 {
		rep.Speedup = materialized.Millis / streamed.Millis
	}
	return rep, nil
}

// runPlanExperiment renders the strategy comparison as a table.
func runPlanExperiment(cfg Config, w io.Writer) error {
	rep, err := buildPlanReport(cfg)
	if err != nil {
		return err
	}
	tbl := newTable(w)
	tbl.row("aggregation", "total [ms]", "groups", "alloc [KiB/op]")
	for _, run := range rep.Runs {
		tbl.row(run.Strategy,
			fmt.Sprintf("%.2f", run.Millis),
			run.Groups,
			fmt.Sprintf("%.1f", run.AllocBytesPerOp/1024))
	}
	tbl.flush()
	fmt.Fprintf(w, "\nstreaming merge aggregation is %.2fx the speed of materialize+hash (GROUP BY over %d keys, |R|=%d, |S|=%d)\n",
		rep.Speedup, rep.Runs[0].Groups, rep.RSize, rep.SSize)
	if cfg.Verbose {
		fmt.Fprintln(w, "expected shape: streaming wins by skipping the intermediate materialization and the hash table; its allocations stay flat in the group count")
	}
	return nil
}

// planJSON produces the machine-readable plan report.
func planJSON(cfg Config) (any, error) {
	return buildPlanReport(cfg)
}

// heapAllocBytes reads the cumulative heap allocation counter.
func heapAllocBytes() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc
}
