package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	mpsm "repro"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		Name:  "service",
		Title: "Concurrent query service: closed-loop clients under admission control, fair-share scheduling and the plan cache",
		Run:   runServiceExperiment,
		JSON:  serviceJSON,
	})
}

// serviceClients is the closed-loop client count of the concurrent phase; the
// acceptance criteria are defined at this fan-in.
const serviceClients = 32

// serviceSoloRuns is how many sequential joins establish the uncontended
// latency baseline; the baseline is their p50, so one-off hiccups (a GC pause,
// a scheduling stall) don't distort the contention ratio.
const serviceSoloRuns = 15

// serviceDuration is the wall-clock length of the concurrent phase. Long
// enough that every client completes several queries (the fairness ratio is
// meaningless on one-completion counts), short enough for a CI step.
func serviceDuration(cfg Config) time.Duration {
	if cfg.Scale >= 0.25 {
		return 3 * time.Second
	}
	return 500 * time.Millisecond
}

// serviceRSize shrinks the standard dataset: the serving experiment measures
// scheduling and admission behaviour across many short point-ish queries, not
// single large-join throughput, so each query should take low single-digit
// milliseconds.
func serviceRSize(cfg Config) int {
	n := cfg.RSize() / 32
	if n < 1024 {
		n = 1024
	}
	return n
}

// ServiceClient is one closed-loop client's outcome.
type ServiceClient struct {
	Label     string  `json:"label"`
	Completed int     `json:"completed"`
	P50Millis float64 `json:"p50_millis"`
	P99Millis float64 `json:"p99_millis"`
}

// ServiceReport is the machine-readable serving report (BENCH_service.json).
type ServiceReport struct {
	GeneratedAt string  `json:"generated_at"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	Scale       float64 `json:"scale"`
	Workers     int     `json:"workers"`
	Clients     int     `json:"clients"`
	RSize       int     `json:"r_size"`
	SSize       int     `json:"s_size"`
	// DurationMillis is the concurrent phase's wall clock.
	DurationMillis float64 `json:"duration_millis"`

	// SoloP50Millis is the uncontended single-client latency baseline.
	SoloP50Millis float64 `json:"solo_p50_millis"`

	// Completed / ThroughputQPS summarize the concurrent phase; P50/P95/P99
	// aggregate the per-query latencies across all clients.
	Completed     int     `json:"completed"`
	ThroughputQPS float64 `json:"throughput_qps"`
	P50Millis     float64 `json:"p50_millis"`
	P95Millis     float64 `json:"p95_millis"`
	P99Millis     float64 `json:"p99_millis"`

	// P99VsSoloP50 is the contention acceptance ratio: the p99 latency at
	// full fan-in over the solo p50 (target ≤ 5 with a uniform query mix —
	// admission and fair-share scheduling bound the latency blow-up even
	// though 32 clients contend for a handful of slots).
	P99VsSoloP50 float64 `json:"p99_vs_solo_p50"`

	// Fairness is the max/min ratio of per-client completion counts across
	// the equal-weight clients (target ≤ 1.5: no client is starved).
	Fairness float64 `json:"fairness_max_min"`

	// PlanCacheHitRate is hits/(hits+misses) over the whole run (target
	// ≥ 0.90: every client runs the same plan shape, so after the first miss
	// the cache serves everyone).
	PlanCacheHitRate float64 `json:"plan_cache_hit_rate"`

	// Admitted/Queued report the admission controller's counters; Queued > 0
	// shows the memory limit actually throttled the fan-in (queries waited
	// instead of over-committing).
	Admitted uint64 `json:"admitted"`
	Queued   uint64 `json:"queued"`

	PerClient []ServiceClient `json:"per_client"`
}

// quantileMillis returns the q-quantile (0..1) of the sorted latency slice.
func quantileMillis(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return millis(sorted[i])
}

// sortedLatencies flattens and sorts per-client latency slices.
func sortedLatencies(per [][]time.Duration) []time.Duration {
	var all []time.Duration
	for _, l := range per {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all
}

// buildServiceReport measures the serving layer: a solo baseline, then the
// closed-loop concurrent phase.
func buildServiceReport(cfg Config) (*ServiceReport, error) {
	if err := warmUp(cfg); err != nil {
		return nil, err
	}
	workers := cfg.workers()
	r, s, err := workload.Generate(workload.Spec{
		RSize: serviceRSize(cfg), Multiplicity: 4, ForeignKey: true, Seed: 4100,
	})
	if err != nil {
		return nil, err
	}

	rep := &ServiceReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Scale:       cfg.Scale,
		Workers:     workers,
		Clients:     serviceClients,
		RSize:       r.Len(),
		SSize:       s.Len(),
	}

	// The engine and service mirror the production shape: scratch pool,
	// auto-planning (which the plan cache memoizes), fair slots at the
	// machine's parallelism, and a memory limit sized to admit ~2 queries
	// per slot — the excess queues FIFO at admission, which keeps the
	// executing set small (tight tail) and the wait uniform (tight
	// fairness) while proving the limit actually throttles (Queued > 0).
	engine := mpsm.New(mpsm.WithWorkers(workers), mpsm.WithScratchPool(true), mpsm.WithAutoPlan(true))
	svc := mpsm.NewService(engine,
		mpsm.WithFairSlots(workers),
		mpsm.WithDefaultBudget(1<<20),
		mpsm.WithMaxMemory(int64(2*workers)<<20))
	defer svc.Close()
	ctx := context.Background()

	// Solo baseline: sequential queries through the same service, so the
	// baseline includes admission and plan-cache overhead — the concurrent
	// ratio then isolates pure contention.
	solo := make([]time.Duration, 0, serviceSoloRuns)
	for i := 0; i < serviceSoloRuns; i++ {
		start := time.Now()
		if _, err := svc.Join(ctx, r, s); err != nil {
			return nil, fmt.Errorf("solo join: %w", err)
		}
		solo = append(solo, time.Since(start))
	}
	sort.Slice(solo, func(i, j int) bool { return solo[i] < solo[j] })
	rep.SoloP50Millis = quantileMillis(solo, 0.5)

	// Concurrent phase: closed-loop clients issue the same join back to back
	// until the deadline. The first fifth of the window is a ramp — the
	// admission queue is still filling, so early arrivals see an empty
	// system — and is excluded from the recorded latencies and counts;
	// the report covers the steady state.
	duration := serviceDuration(cfg)
	latencies := make([][]time.Duration, serviceClients)
	errs := make([]error, serviceClients)
	start := time.Now()
	rampEnd := start.Add(duration / 5)
	deadline := start.Add(duration)
	var wg sync.WaitGroup
	for c := 0; c < serviceClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			label := fmt.Sprintf("client%02d", c)
			for time.Now().Before(deadline) {
				qStart := time.Now()
				if _, err := svc.Join(ctx, r, s, mpsm.WithQueryLabel(label)); err != nil {
					errs[c] = err
					return
				}
				if qStart.After(rampEnd) {
					latencies[c] = append(latencies[c], time.Since(qStart))
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start) - duration/5
	for c, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("client %d: %w", c, err)
		}
	}
	rep.DurationMillis = millis(elapsed)

	minC, maxC := -1, 0
	for c, l := range latencies {
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
		rep.Completed += len(l)
		rep.PerClient = append(rep.PerClient, ServiceClient{
			Label:     fmt.Sprintf("client%02d", c),
			Completed: len(l),
			P50Millis: quantileMillis(l, 0.5),
			P99Millis: quantileMillis(l, 0.99),
		})
		if minC < 0 || len(l) < minC {
			minC = len(l)
		}
		if len(l) > maxC {
			maxC = len(l)
		}
	}
	all := sortedLatencies(latencies)
	rep.P50Millis = quantileMillis(all, 0.5)
	rep.P95Millis = quantileMillis(all, 0.95)
	rep.P99Millis = quantileMillis(all, 0.99)
	rep.ThroughputQPS = float64(rep.Completed) / elapsed.Seconds()
	if rep.SoloP50Millis > 0 {
		rep.P99VsSoloP50 = rep.P99Millis / rep.SoloP50Millis
	}
	if minC > 0 {
		rep.Fairness = float64(maxC) / float64(minC)
	}

	st := svc.Stats()
	if total := st.PlanCache.Hits + st.PlanCache.Misses; total > 0 {
		rep.PlanCacheHitRate = float64(st.PlanCache.Hits) / float64(total)
	}
	rep.Admitted = st.Admission.Admitted
	rep.Queued = st.Admission.Queued
	return rep, nil
}

// runServiceExperiment renders the serving report as a table.
func runServiceExperiment(cfg Config, w io.Writer) error {
	rep, err := buildServiceReport(cfg)
	if err != nil {
		return err
	}
	tbl := newTable(w)
	tbl.row("clients", "completed", "qps", "solo p50 [ms]", "p50 [ms]", "p95 [ms]", "p99 [ms]", "p99/solo-p50", "fairness", "cache hit rate")
	tbl.row(rep.Clients, rep.Completed,
		fmt.Sprintf("%.0f", rep.ThroughputQPS),
		fmt.Sprintf("%.2f", rep.SoloP50Millis),
		fmt.Sprintf("%.2f", rep.P50Millis),
		fmt.Sprintf("%.2f", rep.P95Millis),
		fmt.Sprintf("%.2f", rep.P99Millis),
		fmt.Sprintf("%.2f", rep.P99VsSoloP50),
		fmt.Sprintf("%.2f", rep.Fairness),
		fmt.Sprintf("%.2f", rep.PlanCacheHitRate))
	tbl.flush()
	fmt.Fprintf(w, "\np99 at %d clients is %.2fx the solo p50 (target ≤ 5); completion fairness max/min %.2f (target ≤ 1.5); plan-cache hit rate %.2f (target ≥ 0.90)\n",
		rep.Clients, rep.P99VsSoloP50, rep.Fairness, rep.PlanCacheHitRate)
	if cfg.Verbose {
		fmt.Fprintln(w, "expected shape: fair-share scheduling keeps every client's completion count close while admission control bounds concurrent memory; the plan cache amortizes planning to one miss")
	}
	return nil
}

// serviceJSON produces the machine-readable serving report.
func serviceJSON(cfg Config) (any, error) {
	return buildServiceReport(cfg)
}
