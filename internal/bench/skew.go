package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/numa"
	"repro/internal/partition"
	"repro/internal/relation"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		Name:  "figure15",
		Title: "Location skew in S (none vs clustered arrangements)",
		Run:   runFigure15,
	})
	register(Experiment{
		Name:  "figure16",
		Title: "Negatively correlated skew: equi-height vs equi-cost splitter partitioning",
		Run:   runFigure16,
	})
}

// runFigure15 reproduces Figure 15: the impact of location skew in S on
// P-MPSM at multiplicity 4. Three arrangements of the same data are compared:
// no location skew, clustered so that a private partition's join partners are
// concentrated in one (usually local) run, and clustered with the chunk
// assignment rotated so the matching run is remote.
//
// Without real NUMA hardware the wall-clock effect is small; the join-phase
// time, the number of public tuples actually scanned and the simulated NUMA
// cost expose the effect the paper measures.
func runFigure15(cfg Config, w io.Writer) error {
	if err := warmUp(cfg); err != nil {
		return err
	}
	// Load balance and locality effects only become visible with a worker
	// per simulated core, so the experiment uses at least 8 workers and a
	// topology in which the workers actually spread over the NUMA nodes
	// (oversubscription is fine: this experiment is about data placement,
	// not wall-clock scaling).
	workers := maxIntPair(cfg.workers(), 8)
	topo := numa.Topology{Nodes: 4, CoresPerNode: maxIntPair(1, workers/4)}
	spec := workload.Spec{
		RSize:        cfg.RSize(),
		Multiplicity: 4,
		ForeignKey:   true,
		Seed:         1500,
	}
	r, s, err := workload.Generate(spec)
	if err != nil {
		return err
	}

	arrangements := []struct {
		name   string
		mutate func(rel *relation.Relation) *relation.Relation
	}{
		{"no location skew (T join partitions)", func(rel *relation.Relation) *relation.Relation { return rel }},
		{"clustered: partners in 1 local run", func(rel *relation.Relation) *relation.Relation {
			c := rel.Clone()
			workload.ApplyLocationSkew(c, workers, workload.LocationClustered, workload.DefaultKeyDomain)
			return c
		}},
		{"clustered + rotated: partners in 1 remote run", func(rel *relation.Relation) *relation.Relation {
			c := rel.Clone()
			workload.ApplyLocationSkew(c, workers, workload.LocationClustered, workload.DefaultKeyDomain)
			rotateChunks(c, workers, 1)
			return c
		}},
	}

	tbl := newTable(w)
	tbl.row("arrangement of S", "total [ms]", "join phase [ms]", "S tuples scanned", "simulated NUMA cost [ms]", "remote access fraction")
	for _, arr := range arrangements {
		sArranged := arr.mutate(s)
		res, err := pmpsm(r, sArranged, core.Options{Workers: workers, TrackNUMA: true, Topology: topo})
		if err != nil {
			return err
		}
		tbl.row(arr.name, ms(res.Total), ms(res.PhaseDuration("phase 4")), res.PublicScanned,
			ms(res.SimulatedNUMACost), fmt.Sprintf("%.2f", res.NUMA.RemoteFraction()))
	}
	tbl.flush()
	if cfg.Verbose {
		fmt.Fprintln(w, "\nexpected shape: location skew never hurts — clustered arrangements scan fewer S tuples per worker")
	}
	return nil
}

// rotateChunks moves each worker-sized block of the relation to the position
// `shift` workers later, so that the key range a worker would sort locally is
// held by a different (remote) worker.
func rotateChunks(rel *relation.Relation, workers, shift int) {
	chunks := rel.Split(workers)
	rotated := make([]relation.Tuple, 0, rel.Len())
	for i := 0; i < workers; i++ {
		src := (i + shift) % workers
		rotated = append(rotated, chunks[src].Tuples...)
	}
	copy(rel.Tuples, rotated)
}

// runFigure16 reproduces Figure 16: the negatively correlated skew experiment.
// R has 80% of its keys in the top 20% of the domain, S has 80% of its keys in
// the bottom 20%, multiplicity 4. P-MPSM runs once with equi-height R
// partitioning and once with the equi-cost splitter computation; the report
// shows the per-worker completion times whose spread the splitters are
// supposed to flatten.
func runFigure16(cfg Config, w io.Writer) error {
	if err := warmUp(cfg); err != nil {
		return err
	}
	// Per-worker imbalance needs enough workers to be visible; the paper
	// uses 32. A key domain of 4·|R| keeps the join selective but non-empty
	// at laptop scale (the paper's 1600M tuples over a 2^32 domain have a
	// comparable key density).
	workers := maxIntPair(cfg.workers(), 8)
	r, s, err := workload.Generate(workload.Spec{
		RSize:        cfg.RSize(),
		Multiplicity: 4,
		RSkew:        workload.SkewHigh80,
		SSkew:        workload.SkewLow80,
		KeyDomain:    uint64(cfg.RSize()) * 4,
		Seed:         1600,
	})
	if err != nil {
		return err
	}

	strategies := []struct {
		name     string
		strategy core.SplitterStrategy
	}{
		{"equi-height R partitioning", core.SplitterEquiHeight},
		{"equi-cost R-and-S splitters", core.SplitterEquiCost},
	}

	for _, st := range strategies {
		res, err := pmpsm(r, s, core.Options{
			Workers:          workers,
			Splitters:        st.strategy,
			CollectPerWorker: true,
			HistogramBits:    10, // B = 10 as in the paper's experiment
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "-- %s (total %s ms, matches %d)\n", st.name, ms(res.Total), res.Matches)
		tbl := newTable(w)
		tbl.row("worker", "|Ri|", "S scanned", "matches", "split cost", "phase 3 [ms]", "phase 4 [ms]", "worker total [ms]")
		minTotal, maxTotal := time.Duration(1<<62), time.Duration(0)
		minCost, maxCost := 0.0, 0.0
		costModel := partition.DefaultSplitterCost(workers)
		for i, wb := range res.PerWorker {
			var total time.Duration
			cells := make(map[string]time.Duration)
			for _, p := range wb.Phases {
				cells[p.Name] = p.Duration
				total += p.Duration
			}
			// The realized split-relevant cost is the quantity the splitter
			// computation balances: cost(sort Ri) + T·|Ri| + |S data scanned|.
			// Unlike per-worker wall clock, it is deterministic and not
			// distorted by goroutine scheduling on oversubscribed machines.
			cost := costModel.PartitionCost(wb.PrivateTuples, float64(wb.PublicScanned))
			if total < minTotal {
				minTotal = total
			}
			if total > maxTotal {
				maxTotal = total
			}
			if i == 0 || cost < minCost {
				minCost = cost
			}
			if cost > maxCost {
				maxCost = cost
			}
			tbl.row(wb.Worker, wb.PrivateTuples, wb.PublicScanned, wb.Matches, fmt.Sprintf("%.0f", cost),
				ms(cells["phase 3"]), ms(cells["phase 4"]), ms(total))
		}
		tbl.flush()
		fmt.Fprintf(w, "   imbalance (max/min): split-relevant cost %.2fx, wall clock %.2fx\n\n",
			maxCost/maxFloat(1, minCost),
			float64(maxTotal)/float64(maxInt64(1, int64(minTotal))))
	}
	if cfg.Verbose {
		fmt.Fprintln(w, "expected shape: equi-cost splitters flatten the per-worker times; equi-height leaves the low-key workers overloaded")
	}
	return nil
}

// maxInt64 returns the larger of two int64 values.
func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// maxIntPair returns the larger of two ints.
func maxIntPair(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// maxFloat returns the larger of two float64 values.
func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
