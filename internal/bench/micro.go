package bench

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mergejoin"
	"repro/internal/numa"
	"repro/internal/partition"
	"repro/internal/relation"
	"repro/internal/result"
	"repro/internal/sorting"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		Name:  "figure1",
		Title: "NUMA-affine vs NUMA-agnostic micro-benchmarks (sort, partition, merge join)",
		Run:   runFigure1,
	})
	register(Experiment{
		Name:  "figure9",
		Title: "Fine-grained radix histograms vs comparison-based partitioning",
		Run:   runFigure9,
	})
}

// runFigure1 reproduces the three micro-benchmarks of Figure 1.
//
// The synchronization comparison (2) is measured for real: contended atomic
// write cursors versus precomputed prefix-sum cursors are both expressible in
// Go. The NUMA placement comparisons (1) and (3) cannot be measured on
// hardware Go does not control, so they are priced with the calibrated NUMA
// cost model; the measured local wall-clock time is reported alongside for
// reference.
func runFigure1(cfg Config, w io.Writer) error {
	workers := cfg.workers()
	n := cfg.RSize() * 2
	rel := workload.UniformRelation("R", n, workload.DefaultKeyDomain, 1001)
	topo := numa.DefaultTopology()
	model := numa.DefaultCostModel()
	perChunk := uint64(n / workers)

	tbl := newTable(w)
	tbl.row("step", "variant", "kind", "time [ms]")

	// (1) Chunked run sorting: local NUMA RAM vs globally allocated array.
	chunks := rel.Clone().Split(workers)
	sortWall := result.StopwatchPhase(func() {
		var wg sync.WaitGroup
		for _, c := range chunks {
			wg.Add(1)
			go func(c relation.Chunk) {
				defer wg.Done()
				sorting.Sort(c.Tuples)
			}(c)
		}
		wg.Wait()
	})
	sortAccesses := 4 * perChunk // ~2 read + 2 write passes of random accesses per tuple
	localSort := numa.AccessStats{LocalRandRead: sortAccesses / 2, LocalRandWrite: sortAccesses / 2}
	remoteSort := numa.AccessStats{RemoteRandRead: sortAccesses / 2, RemoteRandWrite: sortAccesses / 2}
	tbl.row("(1) sort runs", "local (parallel, per chunk)", "measured", ms(sortWall))
	tbl.row("(1) sort runs", "local NUMA partition", "simulated", ms(model.Estimate(localSort)))
	tbl.row("(1) sort runs", "global / remote array", "simulated", ms(model.Estimate(remoteSort)))

	// (2) Partitioning: synchronized write cursors vs precomputed prefix sums.
	syncTime, preTime := measurePartitionSynchronization(rel, workers)
	scatterSync := numa.AccessStats{RemoteRandWrite: uint64(n) / 2, LocalRandWrite: uint64(n) / 2, SyncOps: uint64(n)}
	scatterPre := numa.AccessStats{RemoteSeqWrite: uint64(n) / 2, LocalSeqWrite: uint64(n) / 2}
	tbl.row("(2) partition", "synchronized (atomic cursor)", "measured", ms(syncTime))
	tbl.row("(2) partition", "precomputed sub-partitions", "measured", ms(preTime))
	tbl.row("(2) partition", "synchronized (atomic cursor)", "simulated", ms(model.Estimate(scatterSync)))
	tbl.row("(2) partition", "precomputed sub-partitions", "simulated", ms(model.Estimate(scatterPre)))

	// (3) Merge join with the second run local vs remote.
	a := workload.UniformRelation("A", n/workers, workload.DefaultKeyDomain, 1002)
	b := workload.UniformRelation("B", n/workers, workload.DefaultKeyDomain, 1003)
	sorting.Sort(a.Tuples)
	sorting.Sort(b.Tuples)
	var agg mergejoin.MaxAggregate
	joinWall := result.StopwatchPhase(func() {
		mergejoin.Join(a.Tuples, b.Tuples, &agg)
	})
	localJoin := numa.AccessStats{LocalSeqRead: 2 * perChunk}
	remoteJoin := numa.AccessStats{LocalSeqRead: perChunk, RemoteSeqRead: perChunk}
	tbl.row("(3) merge join", "both runs local", "measured", ms(joinWall))
	tbl.row("(3) merge join", "both runs local", "simulated", ms(model.Estimate(localJoin)))
	tbl.row("(3) merge join", "second run remote (sequential)", "simulated", ms(model.Estimate(remoteJoin)))
	tbl.flush()

	if cfg.Verbose {
		fmt.Fprintf(w, "\nworkers=%d tuples=%d topology=%d nodes × %d cores\n", workers, n, topo.Nodes, topo.CoresPerNode)
		fmt.Fprintln(w, "expected shape: remote/global sorting ≈3x local; synchronized scatter ≫ precomputed; remote sequential scan ≈1.2x local")
	}
	return nil
}

// measurePartitionSynchronization times the two scatter strategies of the
// Figure 1(2) micro-benchmark on real hardware: every worker distributes its
// chunk of the relation into `workers` partition arrays, once taking the next
// write position from a shared atomic counter per partition (the "red"
// test-and-set variant) and once writing sequentially into precomputed
// sub-partitions derived from histograms and prefix sums (the "green"
// variant). Histograms and prefix sums are computed outside both timers so
// that the comparison isolates the scatter itself, exactly as in the paper.
func measurePartitionSynchronization(rel *relation.Relation, workers int) (synchronized, precomputed time.Duration) {
	cfg := partition.NewRadixConfig(maxInt(1, log2(workers)), workload.DefaultKeyDomain-1)
	sp := partition.UniformSplitters(cfg.Clusters(), workers)
	chunks := rel.Split(workers)

	histograms := make([]partition.Histogram, workers)
	for wi, c := range chunks {
		histograms[wi] = partition.BuildHistogram(c.Tuples, cfg)
	}
	ps := partition.ComputePrefixSums(histograms, sp, workers)

	// Variant A: synchronized. One shared atomic cursor per partition.
	targetsA := make([][]relation.Tuple, workers)
	for p := 0; p < workers; p++ {
		targetsA[p] = make([]relation.Tuple, ps.Sizes[p])
	}
	cursorsShared := make([]int64, workers)
	synchronized = result.StopwatchPhase(func() {
		var wg sync.WaitGroup
		for wi := range chunks {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				for _, t := range chunks[wi].Tuples {
					p := sp[cfg.Cluster(t.Key)]
					pos := atomic.AddInt64(&cursorsShared[p], 1) - 1
					targetsA[p][pos] = t
				}
			}(wi)
		}
		wg.Wait()
	})

	// Variant B: sequential writes into precomputed sub-partitions.
	targetsB := make([][]relation.Tuple, workers)
	for p := 0; p < workers; p++ {
		targetsB[p] = make([]relation.Tuple, ps.Sizes[p])
	}
	precomputed = result.StopwatchPhase(func() {
		var wg sync.WaitGroup
		for wi := range chunks {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				cursors := append([]int(nil), ps.Offsets[wi]...)
				partition.Scatter(chunks[wi].Tuples, cfg, sp, targetsB, cursors)
			}(wi)
		}
		wg.Wait()
	})
	return synchronized, precomputed
}

// runFigure9 reproduces Figure 9: the cost of building R histograms, prefix
// sums, and the partitioning pass at radix granularities from 32 to 2048
// clusters, compared against comparison-based partitioning with explicit
// bounds (binary search per tuple) at 32 partitions.
func runFigure9(cfg Config, w io.Writer) error {
	workers := cfg.workers()
	n := cfg.RSize() * 2
	rel := workload.UniformRelation("R", n, workload.DefaultKeyDomain, 1009)
	chunks := rel.Split(workers)

	tbl := newTable(w)
	tbl.row("granularity", "method", "histogram [ms]", "prefix sum [ms]", "partitioning [ms]", "total [ms]")

	for _, clusters := range []int{32, 64, 128, 256, 512, 1024, 2048} {
		bits := log2(clusters)
		rcfg := partition.NewRadixConfig(bits, workload.DefaultKeyDomain-1)
		sp := partition.UniformSplitters(rcfg.Clusters(), workers)

		histograms := make([]partition.Histogram, workers)
		histTime := result.StopwatchPhase(func() {
			var wg sync.WaitGroup
			for wi := range chunks {
				wg.Add(1)
				go func(wi int) {
					defer wg.Done()
					histograms[wi] = partition.BuildHistogram(chunks[wi].Tuples, rcfg)
				}(wi)
			}
			wg.Wait()
		})

		var ps partition.PrefixSums
		prefixTime := result.StopwatchPhase(func() {
			ps = partition.ComputePrefixSums(histograms, sp, workers)
		})

		targets := make([][]relation.Tuple, workers)
		for p := 0; p < workers; p++ {
			targets[p] = make([]relation.Tuple, ps.Sizes[p])
		}
		scatterTime := result.StopwatchPhase(func() {
			var wg sync.WaitGroup
			for wi := range chunks {
				wg.Add(1)
				go func(wi int) {
					defer wg.Done()
					cursors := append([]int(nil), ps.Offsets[wi]...)
					partition.Scatter(chunks[wi].Tuples, rcfg, sp, targets, cursors)
				}(wi)
			}
			wg.Wait()
		})
		total := histTime + prefixTime + scatterTime
		tbl.row(clusters, "radix", ms(histTime), ms(prefixTime), ms(scatterTime), ms(total))
	}

	// Comparison-based baseline: explicit bounds, 32 partitions.
	explicitTime := measureExplicitBoundsPartitioning(rel, chunks, workers)
	tbl.row(32, "explicit bounds", "-", "-", "-", ms(explicitTime))
	tbl.flush()

	if cfg.Verbose {
		fmt.Fprintln(w, "\nexpected shape: radix cost is nearly flat in granularity; explicit-bounds partitioning is clearly slower")
	}
	return nil
}

// measureExplicitBoundsPartitioning times the comparison-based alternative:
// per tuple, the target partition is found by binary searching a vector of 32
// explicit key bounds.
func measureExplicitBoundsPartitioning(rel *relation.Relation, chunks []relation.Chunk, workers int) time.Duration {
	const parts = 32
	bounds := make([]uint64, parts)
	for i := 0; i < parts; i++ {
		bounds[i] = workload.DefaultKeyDomain / parts * uint64(i+1)
	}
	return result.StopwatchPhase(func() {
		histograms := make([]partition.Histogram, workers)
		var wg sync.WaitGroup
		for wi := range chunks {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				histograms[wi] = partition.BuildHistogramExplicitBounds(chunks[wi].Tuples, bounds)
			}(wi)
		}
		wg.Wait()

		// Prefix sums over the explicit-bounds histograms.
		offsets := make([][]int, workers)
		sizes := make([]int, parts)
		for p := 0; p < parts; p++ {
			running := 0
			for wi := 0; wi < workers; wi++ {
				if offsets[wi] == nil {
					offsets[wi] = make([]int, parts)
				}
				offsets[wi][p] = running
				running += histograms[wi][p]
			}
			sizes[p] = running
		}
		targets := make([][]relation.Tuple, parts)
		for p := 0; p < parts; p++ {
			targets[p] = make([]relation.Tuple, sizes[p])
		}
		for wi := range chunks {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				cursors := append([]int(nil), offsets[wi]...)
				partition.ScatterExplicitBounds(chunks[wi].Tuples, bounds, targets, cursors)
			}(wi)
		}
		wg.Wait()
	})
}

// log2 returns floor(log2(n)) for n >= 1.
func log2(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// maxInt returns the larger of two ints.
func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
