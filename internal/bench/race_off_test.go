//go:build !race

package bench

// raceEnabled reports whether the race detector instruments this build;
// perf-assertion tests skip themselves under it because instrumentation
// distorts the relative cost of the contenders.
const raceEnabled = false
