package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig keeps experiment runtime in unit tests small.
func tinyConfig() Config {
	return Config{Scale: 0.02, Workers: 4}
}

func TestRegistryContainsAllPaperFigures(t *testing.T) {
	want := []string{"figure1", "figure9", "figure12", "figure13", "figure14", "figure15", "figure16",
		"sort", "ablation-partitioning", "dmpsm"}
	for _, name := range want {
		if _, ok := Lookup(name); !ok {
			t.Errorf("experiment %q not registered", name)
		}
	}
	if len(Experiments()) < len(want) {
		t.Fatalf("registry has %d experiments, want at least %d", len(Experiments()), len(want))
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup("does-not-exist"); ok {
		t.Fatal("Lookup of unknown experiment succeeded")
	}
}

func TestExperimentsSortedByName(t *testing.T) {
	exps := Experiments()
	for i := 1; i < len(exps); i++ {
		if exps[i].Name < exps[i-1].Name {
			t.Fatalf("experiments not sorted: %q after %q", exps[i].Name, exps[i-1].Name)
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	t.Setenv("MPSM_SCALE", "0.5")
	t.Setenv("MPSM_WORKERS", "3")
	cfg := DefaultConfig()
	if cfg.Scale != 0.5 || cfg.Workers != 3 {
		t.Fatalf("DefaultConfig = %+v", cfg)
	}
	t.Setenv("MPSM_SCALE", "not-a-number")
	t.Setenv("MPSM_WORKERS", "-2")
	cfg = DefaultConfig()
	if cfg.Scale != 1.0 || cfg.Workers <= 0 {
		t.Fatalf("DefaultConfig with bad env = %+v", cfg)
	}
}

func TestConfigRSize(t *testing.T) {
	if got := (Config{Scale: 1.0}).RSize(); got != baseRSize {
		t.Fatalf("RSize at scale 1 = %d", got)
	}
	if got := (Config{Scale: 0.000001}).RSize(); got != 1024 {
		t.Fatalf("RSize floor = %d, want 1024", got)
	}
}

// TestEveryExperimentRuns executes every registered experiment at a tiny scale
// and checks that it produces non-empty tabular output without errors.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are too slow for -short")
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(tinyConfig(), &buf); err != nil {
				t.Fatalf("experiment failed: %v", err)
			}
			out := buf.String()
			if len(strings.TrimSpace(out)) == 0 {
				t.Fatal("experiment produced no output")
			}
			if !strings.Contains(out, "ms") && !strings.Contains(out, "[ms]") {
				t.Fatalf("experiment output does not look like a timing table:\n%s", out)
			}
		})
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are too slow for -short")
	}
	var buf bytes.Buffer
	if err := RunAll(Config{Scale: 0.01, Workers: 2}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, e := range Experiments() {
		if !strings.Contains(buf.String(), e.Name) {
			t.Fatalf("RunAll output missing experiment %q", e.Name)
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	register(Experiment{Name: "figure12", Title: "dup", Run: nil})
}

func TestMsFormatting(t *testing.T) {
	if got := ms(1500 * 1000); got != "1.50" { // 1.5ms in nanoseconds
		t.Fatalf("ms(1.5ms) = %q", got)
	}
}

func TestLog2Helper(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 1, 4: 2, 2048: 11}
	for n, want := range cases {
		if got := log2(n); got != want {
			t.Errorf("log2(%d) = %d, want %d", n, got, want)
		}
	}
}
