package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// tinyConfig keeps experiment runtime in unit tests small.
func tinyConfig() Config {
	return Config{Scale: 0.02, Workers: 4}
}

func TestRegistryContainsAllPaperFigures(t *testing.T) {
	want := []string{"figure1", "figure9", "figure12", "figure13", "figure14", "figure15", "figure16",
		"sort", "ablation-partitioning", "dmpsm", "morsel", "steadystate", "plan", "planner"}
	for _, name := range want {
		if _, ok := Lookup(name); !ok {
			t.Errorf("experiment %q not registered", name)
		}
	}
	if len(Experiments()) < len(want) {
		t.Fatalf("registry has %d experiments, want at least %d", len(Experiments()), len(want))
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup("does-not-exist"); ok {
		t.Fatal("Lookup of unknown experiment succeeded")
	}
}

func TestExperimentsSortedByName(t *testing.T) {
	exps := Experiments()
	for i := 1; i < len(exps); i++ {
		if exps[i].Name < exps[i-1].Name {
			t.Fatalf("experiments not sorted: %q after %q", exps[i].Name, exps[i-1].Name)
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	t.Setenv("MPSM_SCALE", "0.5")
	t.Setenv("MPSM_WORKERS", "3")
	cfg := DefaultConfig()
	if cfg.Scale != 0.5 || cfg.Workers != 3 {
		t.Fatalf("DefaultConfig = %+v", cfg)
	}
	t.Setenv("MPSM_SCALE", "not-a-number")
	t.Setenv("MPSM_WORKERS", "-2")
	cfg = DefaultConfig()
	if cfg.Scale != 1.0 || cfg.Workers <= 0 {
		t.Fatalf("DefaultConfig with bad env = %+v", cfg)
	}
}

func TestConfigRSize(t *testing.T) {
	if got := (Config{Scale: 1.0}).RSize(); got != baseRSize {
		t.Fatalf("RSize at scale 1 = %d", got)
	}
	if got := (Config{Scale: 0.000001}).RSize(); got != 1024 {
		t.Fatalf("RSize floor = %d, want 1024", got)
	}
}

// TestEveryExperimentRuns executes every registered experiment at a tiny scale
// and checks that it produces non-empty tabular output without errors.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are too slow for -short")
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(tinyConfig(), &buf); err != nil {
				t.Fatalf("experiment failed: %v", err)
			}
			out := buf.String()
			if len(strings.TrimSpace(out)) == 0 {
				t.Fatal("experiment produced no output")
			}
			if !strings.Contains(out, "ms") && !strings.Contains(out, "[ms]") {
				t.Fatalf("experiment output does not look like a timing table:\n%s", out)
			}
		})
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are too slow for -short")
	}
	var buf bytes.Buffer
	if err := RunAll(Config{Scale: 0.01, Workers: 2}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, e := range Experiments() {
		if !strings.Contains(buf.String(), e.Name) {
			t.Fatalf("RunAll output missing experiment %q", e.Name)
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	register(Experiment{Name: "figure12", Title: "dup", Run: nil})
}

// TestRunReportJSON locks in the machine-readable report: every algorithm
// appears once per scheduling mode, the JSON round-trips, and the scheduler
// modes agree on every algorithm's match count.
func TestRunReportJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("the report runs every algorithm twice")
	}
	rep, err := RunReport(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 10 {
		t.Fatalf("report has %d results, want 10 (5 algorithms x 2 schedulers)", len(rep.Results))
	}
	matchesByAlg := map[string]map[string]uint64{}
	for _, r := range rep.Results {
		if r.TotalMillis <= 0 || len(r.Phases) == 0 {
			t.Fatalf("result %s/%s missing timings: %+v", r.Algorithm, r.Scheduler, r)
		}
		if matchesByAlg[r.Algorithm] == nil {
			matchesByAlg[r.Algorithm] = map[string]uint64{}
		}
		matchesByAlg[r.Algorithm][r.Scheduler] = r.Matches
	}
	for alg, bySched := range matchesByAlg {
		if len(bySched) != 2 {
			t.Fatalf("algorithm %s ran under %d schedulers, want 2", alg, len(bySched))
		}
		if bySched["static"] != bySched["morsel"] {
			t.Fatalf("algorithm %s: static %d matches, morsel %d", alg, bySched["static"], bySched["morsel"])
		}
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Report
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if len(decoded.Results) != len(rep.Results) {
		t.Fatalf("decoded %d results, want %d", len(decoded.Results), len(rep.Results))
	}
}

func TestMsFormatting(t *testing.T) {
	if got := ms(1500 * 1000); got != "1.50" { // 1.5ms in nanoseconds
		t.Fatalf("ms(1.5ms) = %q", got)
	}
}

func TestLog2Helper(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 1, 4: 2, 2048: 11}
	for n, want := range cases {
		if got := log2(n); got != want {
			t.Errorf("log2(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestSteadyStateJSONReport locks in the machine-readable steady-state
// report: both pool settings appear, the pooled run reuses buffers, the byte
// reduction is substantial even at tiny scale, and the JSON round-trips.
func TestSteadyStateJSONReport(t *testing.T) {
	if testing.Short() {
		t.Skip("the steady-state report runs dozens of joins")
	}
	rep, err := buildSteadyStateReport(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 2 || rep.Runs[0].Pool || !rep.Runs[1].Pool {
		t.Fatalf("runs = %+v, want pool off then on", rep.Runs)
	}
	if rep.Runs[1].ScratchReused == 0 {
		t.Fatal("warm pooled run reused no scratch buffers")
	}
	if rep.AllocBytesReduction < 0.5 {
		t.Fatalf("alloc byte reduction %.2f, want >= 0.5 even at tiny scale", rep.AllocBytesReduction)
	}
	var buf bytes.Buffer
	if err := WriteAnyJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var decoded SteadyStateReport
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("steady-state JSON does not round-trip: %v", err)
	}
	if decoded.Joins != rep.Joins || len(decoded.Runs) != 2 {
		t.Fatalf("decoded report = %+v", decoded)
	}
}

// TestSortJSONReport locks in the machine-readable sort report: all four
// routines appear and the multi-level rewrite beats the retained one-level
// baseline on the 1M-tuple acceptance workload. The default run only sanity
// checks the ordering (shared unit-test runners are noisy); set
// MPSM_PERF_ASSERT=1 — as the CI bench job does on an otherwise idle step —
// to enforce the strict ≥1.3x acceptance ratio.
func TestSortJSONReport(t *testing.T) {
	if testing.Short() {
		t.Skip("the sort report sorts 1M tuples repeatedly")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts the speedup ratios the test asserts")
	}
	rep, err := sortJSON(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	sr := rep.(*SortReport)
	if len(sr.Results) != 4 {
		t.Fatalf("sort report has %d routines, want 4", len(sr.Results))
	}
	byName := map[string]SortTiming{}
	for _, r := range sr.Results {
		byName[r.Routine] = r
	}
	strict := os.Getenv("MPSM_PERF_ASSERT") != ""
	minSpeedup, minIntoRatio := 1.05, 0.9
	if strict {
		minSpeedup, minIntoRatio = 1.3, 1.0
	}
	if s := byName["multi-level"].SpeedupVsOneLev; s < minSpeedup {
		t.Fatalf("multi-level speedup over one-level = %.2fx, want >= %.2fx (strict=%v)", s, minSpeedup, strict)
	}
	if s, m := byName["sort-into"].SpeedupVsOneLev, byName["multi-level"].SpeedupVsOneLev; s < m*minIntoRatio {
		t.Fatalf("sort-into (%.2fx) should not be slower than multi-level (%.2fx, strict=%v)", s, m, strict)
	}
}
