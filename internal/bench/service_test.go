package bench

import (
	"os"
	"testing"
)

// checkServiceReportShape validates the structural invariants of a serving
// report: full client roster, plausible latencies, and the plan-cache hit
// rate (which is deterministic — one shape, one miss — and asserted
// unconditionally).
func checkServiceReportShape(t *testing.T, rep *ServiceReport) {
	t.Helper()
	if rep.Clients != serviceClients || len(rep.PerClient) != serviceClients {
		t.Fatalf("report covers %d/%d clients, want %d", rep.Clients, len(rep.PerClient), serviceClients)
	}
	if rep.Completed <= 0 || rep.ThroughputQPS <= 0 {
		t.Fatalf("no queries completed: %+v", rep)
	}
	for _, c := range rep.PerClient {
		if c.Completed <= 0 {
			t.Errorf("client %s completed no queries (starved)", c.Label)
		}
	}
	if rep.SoloP50Millis <= 0 || rep.P99Millis < rep.P50Millis {
		t.Errorf("implausible latencies: solo p50 %.2f, p50 %.2f, p99 %.2f",
			rep.SoloP50Millis, rep.P50Millis, rep.P99Millis)
	}
	if rep.PlanCacheHitRate < 0.90 {
		t.Errorf("plan cache hit rate %.2f, want >= 0.90 (single plan shape should miss once)", rep.PlanCacheHitRate)
	}
	if rep.Admitted == 0 {
		t.Errorf("admission controller admitted nothing: %+v", rep)
	}
}

// TestServiceJSONReport locks in the machine-readable serving report and its
// acceptance criteria: p99 latency at 32 closed-loop clients stays within 5x
// the uncontended p50 and no client falls behind by more than 1.5x. The
// default run uses loose bounds (shared unit-test runners are noisy and may
// have a single core); set MPSM_PERF_ASSERT=1 — as the CI bench job does on an
// otherwise idle step — to enforce the strict acceptance ratios (with one
// re-measurement, since both bounds sit close to a busy machine's noise
// floor).
func TestServiceJSONReport(t *testing.T) {
	if testing.Short() {
		t.Skip("the serving report runs a multi-second closed-loop workload")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts the latency ratios the test asserts")
	}
	strict := os.Getenv("MPSM_PERF_ASSERT") != ""
	// The loose p99 bound accommodates a single-core runner, where a
	// closed-loop pool of N clients has an inherent ~N× queueing floor over
	// the solo latency (elastic parallelism only beats that floor when
	// queries can actually run side by side).
	maxP99VsSolo, maxFairness := 4.0*serviceClients, 4.0
	if strict {
		maxP99VsSolo, maxFairness = 5.0, 1.5
	}

	cfg := Config{Scale: 0.25, Workers: DefaultConfig().Workers}
	rep, err := buildServiceReport(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkServiceReportShape(t, rep)
	if strict && (rep.P99VsSoloP50 > maxP99VsSolo || rep.Fairness > maxFairness) {
		// One re-measurement: the strict bounds are latency ratios within a
		// shared runner's noise envelope.
		t.Logf("p99/solo-p50 %.2f (max %.2f), fairness %.2f (max %.2f); re-measuring once",
			rep.P99VsSoloP50, maxP99VsSolo, rep.Fairness, maxFairness)
		rep, err = buildServiceReport(cfg)
		if err != nil {
			t.Fatal(err)
		}
		checkServiceReportShape(t, rep)
	}
	if rep.P99VsSoloP50 > maxP99VsSolo {
		t.Errorf("p99 at %d clients is %.2fx the solo p50, want <= %.2f (strict=%v)",
			rep.Clients, rep.P99VsSoloP50, maxP99VsSolo, strict)
	}
	if rep.Fairness > maxFairness {
		t.Errorf("completion fairness max/min = %.2f, want <= %.2f (strict=%v)",
			rep.Fairness, maxFairness, strict)
	}
}
