package bench

import (
	"os"
	"testing"
)

// keysAcceptConfig is the measurement-grade configuration the normalized-key
// acceptance ratios are asserted at (the CI bench job's scale; keysSize
// floors the per-side cardinality at 2^17 tuples there).
func keysAcceptConfig() Config {
	return Config{Scale: 0.25, Workers: DefaultConfig().Workers}
}

// checkKeysReportShape validates the structural invariants of a keys report
// independent of timing: every measured join produced a positive time, the
// collision sweep is present in order with a non-decreasing collision rate,
// and — since only the prefix regime varies — an invariant match count.
func checkKeysReportShape(t *testing.T, rep *KeysReport) {
	t.Helper()
	if rep.Tuples <= 0 {
		t.Fatalf("report has %d tuples", rep.Tuples)
	}
	for name, ms := range map[string]float64{
		"string normalized":    rep.StringNormalizedMillis,
		"string comparator":    rep.StringComparatorMillis,
		"composite normalized": rep.CompositeNormalizedMillis,
		"composite comparator": rep.CompositeComparatorMillis,
		"raw uint64":           rep.RawUint64Millis,
		"exact schema":         rep.ExactSchemaMillis,
	} {
		if ms <= 0 {
			t.Errorf("implausible %s timing %v", name, ms)
		}
	}
	wantShared := []int{0, 2, 4, 5}
	if len(rep.Collision) != len(wantShared) {
		t.Fatalf("report has %d collision cells, want %d", len(rep.Collision), len(wantShared))
	}
	for i, cell := range rep.Collision {
		if cell.SharedPrefixBytes != wantShared[i] {
			t.Errorf("collision cell %d shares %d bytes, want %d", i, cell.SharedPrefixBytes, wantShared[i])
		}
		if cell.Millis <= 0 {
			t.Errorf("collision cell %d: implausible timing %v", i, cell.Millis)
		}
		if cell.CollisionRate < 0 || cell.CollisionRate > 1 {
			t.Errorf("collision cell %d: rate %v out of [0,1]", i, cell.CollisionRate)
		}
		if i > 0 {
			if cell.CollisionRate < rep.Collision[i-1].CollisionRate {
				t.Errorf("collision rate not monotone: cell %d has %v after %v",
					i, cell.CollisionRate, rep.Collision[i-1].CollisionRate)
			}
			if cell.Matches != rep.Collision[0].Matches {
				t.Errorf("sweep cell %d found %d matches, cell 0 found %d — the prefix regime must not change the result",
					i, cell.Matches, rep.Collision[0].Matches)
			}
		}
	}
}

// TestKeysJSONReport locks in the machine-readable normalized-key report and
// its acceptance criteria: string and composite schema joins beat the
// comparator-based row fallback by at least 2x, and the exact-prefix control
// — a single-column uint64 schema whose normalization is the identity — runs
// within 2% of the same join on raw keys. The default run uses loose bounds
// (shared unit-test runners are noisy); set MPSM_PERF_ASSERT=1 — as the CI
// bench job does on an otherwise idle step — to enforce the strict ratios
// (with one re-measurement, since the 2% control bound sits close to an idle
// machine's noise floor).
func TestKeysJSONReport(t *testing.T) {
	if testing.Short() {
		t.Skip("the keys report measures 2^17-tuple joins repeatedly")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts the wall-clock ratios the test asserts")
	}
	strict := os.Getenv("MPSM_PERF_ASSERT") != ""
	minSpeedup, maxOverhead := 1.0, 1.25
	if strict {
		minSpeedup, maxOverhead = 2.0, 1.02
	}

	rep, err := buildKeysReport(keysAcceptConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkKeysReportShape(t, rep)
	if strict && (rep.StringSpeedup < minSpeedup || rep.CompositeSpeedup < minSpeedup || rep.ExactOverhead > maxOverhead) {
		// One re-measurement: the speedups clear 2x comfortably on an idle
		// machine, but the control's 2% bound can lose a single run to a
		// noisy neighbour.
		t.Logf("string %.2fx composite %.2fx (want >= %.2f) control %.3fx (want <= %.3f), re-measuring once",
			rep.StringSpeedup, rep.CompositeSpeedup, minSpeedup, rep.ExactOverhead, maxOverhead)
		rep, err = buildKeysReport(keysAcceptConfig())
		if err != nil {
			t.Fatal(err)
		}
		checkKeysReportShape(t, rep)
	}
	if rep.StringSpeedup < minSpeedup {
		t.Errorf("normalized string join is %.2fx the comparator fallback, want >= %.2f (strict=%v)",
			rep.StringSpeedup, minSpeedup, strict)
	}
	if rep.CompositeSpeedup < minSpeedup {
		t.Errorf("normalized composite join is %.2fx the comparator fallback, want >= %.2f (strict=%v)",
			rep.CompositeSpeedup, minSpeedup, strict)
	}
	if rep.ExactOverhead > maxOverhead {
		t.Errorf("exact-prefix schema join is %.3fx the raw-key join, want <= %.3f (strict=%v)",
			rep.ExactOverhead, maxOverhead, strict)
	}
}
