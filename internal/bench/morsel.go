package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		Name:  "morsel",
		Title: "Morsel-driven phase 4 under value skew: static vs morsel straggler gap",
		Run:   runMorselSkew,
	})
}

// runMorselSkew demonstrates the morsel scheduler closing the phase-4
// straggler gap. The workload concentrates 80% of both R and S keys in the
// top 20% of a narrow domain, and P-MPSM runs with deliberately data-oblivious
// uniform splitters — the situation the paper's equi-cost splitters normally
// repair, standing in for any estimation error that leaves one worker with a
// far larger private run than the others.
//
// Under static scheduling that worker is the phase-4 straggler: its busy
// time and match count dwarf everyone else's while the rest idle at the
// barrier. Under morsel scheduling the same run is cut into segments that
// idle workers steal, so per-worker phase-4 busy times flatten. The report
// shows per-worker phase-4 time and matches for both modes plus the max/min
// and max/mean busy-time ratios.
func runMorselSkew(cfg Config, w io.Writer) error {
	if err := warmUp(cfg); err != nil {
		return err
	}
	workers := maxIntPair(cfg.workers(), 8)
	r, s, err := workload.Generate(workload.Spec{
		RSize:        cfg.RSize(),
		Multiplicity: 4,
		RSkew:        workload.SkewHigh80,
		SSkew:        workload.SkewHigh80,
		KeyDomain:    uint64(cfg.RSize()) * 4,
		Seed:         2100,
	})
	if err != nil {
		return err
	}
	// Morsels sized so that even the small default test scale produces
	// enough of them per heavy run to balance.
	morselSize := maxIntPair(256, cfg.RSize()/(16*workers))

	for _, mode := range []sched.Mode{sched.Static, sched.Morsel} {
		res, err := pmpsm(r, s, core.Options{
			Workers:          workers,
			Splitters:        core.SplitterUniform,
			Scheduler:        mode,
			MorselSize:       morselSize,
			CollectPerWorker: true,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "-- %s scheduling (total %s ms, phase 4 %s ms, matches %d)\n",
			mode, ms(res.Total), ms(res.PhaseDuration("phase 4")), res.Matches)
		tbl := newTable(w)
		tbl.row("worker", "|Ri|", "matches", "phase 4 busy [ms]")
		minBusy, maxBusy := time.Duration(1<<62), time.Duration(0)
		var sumBusy time.Duration
		for _, wb := range res.PerWorker {
			var busy time.Duration
			for _, p := range wb.Phases {
				if p.Name == "phase 4" {
					busy = p.Duration
				}
			}
			if busy < minBusy {
				minBusy = busy
			}
			if busy > maxBusy {
				maxBusy = busy
			}
			sumBusy += busy
			tbl.row(wb.Worker, wb.PrivateTuples, wb.Matches, ms(busy))
		}
		tbl.flush()
		mean := sumBusy / time.Duration(workers)
		fmt.Fprintf(w, "   phase-4 straggler gap: max/min %.2fx, max/mean %.2fx\n\n",
			float64(maxBusy)/float64(maxInt64(1, int64(minBusy))),
			float64(maxBusy)/float64(maxInt64(1, int64(mean))))
	}
	if cfg.Verbose {
		fmt.Fprintln(w, "expected shape: identical matches; the static max/min busy-time ratio collapses under morsel scheduling")
		fmt.Fprintln(w, "(uniform splitters are chosen deliberately — they stand in for splitter estimation error)")
	}
	return nil
}
