package bench

import (
	"os"
	"testing"
)

// queryAcceptConfig is the measurement-grade configuration the query
// front-end acceptance ratios are asserted at (the CI bench job's scale:
// |R| = 2^16, |S| = |T| = 2^17).
func queryAcceptConfig() Config {
	return Config{Scale: 0.25, Workers: DefaultConfig().Workers}
}

// checkQueryReportShape validates the structural invariants of a query
// report independent of timing: every stage produced a positive time, the
// canonical query is recorded, and both plans agreed on the group count
// (buildQueryReport fails otherwise, so a report implies agreement).
func checkQueryReportShape(t *testing.T, rep *QueryReport) {
	t.Helper()
	if rep.Query == "" {
		t.Fatal("report is missing the query text")
	}
	if rep.Groups <= 0 {
		t.Fatalf("degenerate measurement: the query produced %d groups", rep.Groups)
	}
	if rep.CompileMicros <= 0 || rep.CompiledMillis <= 0 || rep.HandMillis <= 0 {
		t.Fatalf("non-positive stage time: compile %.3fµs, compiled %.3fms, hand %.3fms",
			rep.CompileMicros, rep.CompiledMillis, rep.HandMillis)
	}
}

// TestQueryJSONReport locks in the machine-readable query-front-end report
// and its acceptance criteria: parsing plus compilation costs at most 5% of
// the end-to-end join time, and the compiled plan runs within 10% of the
// hand-built equivalent. The default run uses loose bounds (shared unit-test
// runners are noisy); set MPSM_PERF_ASSERT=1 — as the CI bench job does on
// an otherwise idle step — to enforce the strict ratios (with one
// re-measurement, since the plan-parity bound sits close to an idle
// machine's noise floor).
func TestQueryJSONReport(t *testing.T) {
	if testing.Short() {
		t.Skip("the query report measures 2^17-tuple joins repeatedly")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts the wall-clock ratios the test asserts")
	}
	strict := os.Getenv("MPSM_PERF_ASSERT") != ""
	maxOverhead, maxRatio := 0.50, 2.0
	if strict {
		maxOverhead, maxRatio = 0.05, 1.10
	}

	rep, err := buildQueryReport(queryAcceptConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkQueryReportShape(t, rep)
	if strict && (rep.CompileOverhead > maxOverhead || rep.PlanRatio > maxRatio) {
		// One re-measurement: compilation sits three orders of magnitude
		// under the join, but a noisy neighbour can steal a single run.
		t.Logf("overhead %.4f (want <= %.4f), plan ratio %.3f (want <= %.3f), re-measuring once",
			rep.CompileOverhead, maxOverhead, rep.PlanRatio, maxRatio)
		rep, err = buildQueryReport(queryAcceptConfig())
		if err != nil {
			t.Fatal(err)
		}
		checkQueryReportShape(t, rep)
	}
	if rep.CompileOverhead > maxOverhead {
		t.Errorf("parse+compile is %.2f%% of end-to-end time, want <= %.2f%% (strict=%v)",
			rep.CompileOverhead*100, maxOverhead*100, strict)
	}
	if rep.PlanRatio > maxRatio {
		t.Errorf("compiled plan runs at %.3fx the hand-built plan, want <= %.3f (strict=%v)",
			rep.PlanRatio, maxRatio, strict)
	}
}
