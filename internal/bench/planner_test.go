package bench

import (
	"os"
	"testing"
)

// plannerAcceptConfig is the measurement-grade configuration the acceptance
// ratios are asserted at (the CI bench job's scale).
func plannerAcceptConfig() Config {
	return Config{Scale: 0.25, Workers: DefaultConfig().Workers}
}

// checkPlannerReportShape validates the structural invariants of a planner
// report: all six matrix configurations, full manual matrices, planner
// decisions present, and estimates within the stats package's documented
// error bounds (factor 1.5 for the foreign-key configurations, where the
// cross-sample probe estimator applies; factor 3 for the independent
// negatively correlated one).
func checkPlannerReportShape(t *testing.T, rep *PlannerReport) {
	t.Helper()
	wantConfigs := []string{"small-uniform", "mid-uniform", "high-multiplicity",
		"negcorr-skew", "location-clustered", "presorted-both"}
	if len(rep.Configs) != len(wantConfigs) {
		t.Fatalf("planner report has %d configs, want %d", len(rep.Configs), len(wantConfigs))
	}
	byName := map[string]PlannerConfig{}
	for _, c := range rep.Configs {
		byName[c.Name] = c
	}
	for _, name := range wantConfigs {
		c, ok := byName[name]
		if !ok {
			t.Fatalf("planner report missing config %q", name)
		}
		if len(c.Manual) != 10 {
			t.Errorf("%s: %d manual cells, want 10 (5 algorithms × 2 schedulers)", name, len(c.Manual))
		}
		if c.AutoAlgorithm == "" || c.AutoScheduler == "" {
			t.Errorf("%s: missing auto decision (%q/%q)", name, c.AutoAlgorithm, c.AutoScheduler)
		}
		if c.AutoMillis <= 0 || c.Best.Millis <= 0 || c.Worst.Millis < c.Best.Millis {
			t.Errorf("%s: implausible timings auto=%v best=%v worst=%v", name, c.AutoMillis, c.Best.Millis, c.Worst.Millis)
		}
		bound := 1.5
		if name == "negcorr-skew" {
			bound = 3
		}
		if c.EstimateRatio < 1/bound || c.EstimateRatio > bound {
			t.Errorf("%s: estimate/actual ratio %.2f outside the documented %vx bound", name, c.EstimateRatio, bound)
		}
	}
	// The decision the whole experiment exists to demonstrate: sorted inputs
	// flip the winner to an MPSM variant with its sort phases skipped.
	if alg := byName["presorted-both"].AutoAlgorithm; alg != "B-MPSM" {
		t.Errorf("presorted-both picked %q, want B-MPSM with presorted declarations", alg)
	}
}

// TestPlannerJSONReport locks in the machine-readable planner report and its
// acceptance criteria: the auto-planned join is never far behind the best
// manual (algorithm, scheduler) cell and beats the worst manual cell by at
// least 2x on a skewed configuration. The default run uses a loose ratio
// bound (shared unit-test runners are noisy); set MPSM_PERF_ASSERT=1 — as
// the CI bench job does on an otherwise idle step — to enforce the strict
// ≤1.10 acceptance ratio (with one re-measurement, since the bound sits
// close to an idle machine's noise floor).
func TestPlannerJSONReport(t *testing.T) {
	if testing.Short() {
		t.Skip("the planner report runs the full manual matrix repeatedly")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts the wall-clock ratios the test asserts")
	}
	strict := os.Getenv("MPSM_PERF_ASSERT") != ""
	maxAutoVsBest := 1.6
	if strict {
		maxAutoVsBest = 1.10
	}

	rep, err := buildPlannerReport(plannerAcceptConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkPlannerReportShape(t, rep)
	if strict && rep.MaxAutoVsBest > maxAutoVsBest {
		// One re-measurement: the strict bound is within a shared runner's
		// noise envelope, and the acceptance is about choice quality, which
		// does not vary between runs.
		t.Logf("auto/best ratio %.2f above %.2f, re-measuring once", rep.MaxAutoVsBest, maxAutoVsBest)
		rep, err = buildPlannerReport(plannerAcceptConfig())
		if err != nil {
			t.Fatal(err)
		}
		checkPlannerReportShape(t, rep)
	}
	if rep.MaxAutoVsBest > maxAutoVsBest {
		t.Errorf("auto-planned join is %.2fx the best manual choice somewhere, want <= %.2f (strict=%v)",
			rep.MaxAutoVsBest, maxAutoVsBest, strict)
	}
	if rep.BestWorstVsAutoSkewed < 2 {
		t.Errorf("auto beats the worst manual choice by only %.2fx on skewed configs, want >= 2x",
			rep.BestWorstVsAutoSkewed)
	}
}
