package bench

import (
	"os"
	"testing"
)

// columnarAcceptConfig is the measurement-grade configuration the kernel
// acceptance ratios are asserted at (the CI bench job's scale; columnarSize
// floors the input at 2^20 tuples there).
func columnarAcceptConfig() Config {
	return Config{Scale: 0.25, Workers: DefaultConfig().Workers}
}

// checkColumnarReportShape validates the structural invariants of a columnar
// report independent of timing: all five selectivity cells present in order,
// every measured kernel produced a positive time, and the headline ratios
// match their cells.
func checkColumnarReportShape(t *testing.T, rep *ColumnarReport) {
	t.Helper()
	if rep.Tuples <= 0 {
		t.Fatalf("report has %d tuples", rep.Tuples)
	}
	if rep.AoSSortMillis <= 0 || rep.SoASortMillis <= 0 {
		t.Errorf("implausible sort timings AoS=%v SoA=%v", rep.AoSSortMillis, rep.SoASortMillis)
	}
	wantPct := []int{1, 10, 50, 90, 99}
	if len(rep.Filter) != len(wantPct) {
		t.Fatalf("report has %d filter cells, want %d", len(rep.Filter), len(wantPct))
	}
	for i, cell := range rep.Filter {
		if cell.SelectivityPct != wantPct[i] {
			t.Errorf("filter cell %d is %d%%, want %d%%", i, cell.SelectivityPct, wantPct[i])
		}
		if cell.ScalarMillis <= 0 || cell.VectorMillis <= 0 {
			t.Errorf("filter cell %d%%: implausible timings scalar=%v vector=%v",
				cell.SelectivityPct, cell.ScalarMillis, cell.VectorMillis)
		}
		if cell.SelectivityPct == 50 && cell.Speedup != rep.FilterSpeedupAt50 {
			t.Errorf("FilterSpeedupAt50 = %v, 50%% cell says %v", rep.FilterSpeedupAt50, cell.Speedup)
		}
	}
	if rep.MergeNoPrefetchMillis <= 0 || rep.MergePrefetchMillis <= 0 {
		t.Errorf("implausible merge timings noPrefetch=%v prefetch=%v",
			rep.MergeNoPrefetchMillis, rep.MergePrefetchMillis)
	}
}

// TestColumnarJSONReport locks in the machine-readable columnar kernel report
// and its acceptance criteria: the branch-free selection kernel beats the
// branchy scalar scan by at least 2x at 50% selectivity (the point of maximum
// misprediction), and the SoA run-generation sort beats the AoS sort by at
// least 1.2x at 2^20 tuples. The default run uses loose bounds (shared
// unit-test runners are noisy and may pin the branchy loop's predictor);
// set MPSM_PERF_ASSERT=1 — as the CI bench job does on an otherwise idle
// step — to enforce the strict ratios (with one re-measurement, since the
// sort bound sits close to an idle machine's noise floor).
func TestColumnarJSONReport(t *testing.T) {
	if testing.Short() {
		t.Skip("the columnar report measures 2^20-tuple kernels repeatedly")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts the wall-clock ratios the test asserts")
	}
	strict := os.Getenv("MPSM_PERF_ASSERT") != ""
	minFilterSpeedup, minSortSpeedup := 1.0, 0.6
	if strict {
		minFilterSpeedup, minSortSpeedup = 2.0, 1.2
	}

	rep, err := buildColumnarReport(columnarAcceptConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkColumnarReportShape(t, rep)
	if strict && (rep.FilterSpeedupAt50 < minFilterSpeedup || rep.SortSpeedup < minSortSpeedup) {
		// One re-measurement: both kernels comfortably clear their bounds on
		// an idle machine, but the sort ratio's margin is small enough that a
		// noisy neighbour can push a single run under it.
		t.Logf("filter %.2fx (want >= %.2f) sort %.2fx (want >= %.2f), re-measuring once",
			rep.FilterSpeedupAt50, minFilterSpeedup, rep.SortSpeedup, minSortSpeedup)
		rep, err = buildColumnarReport(columnarAcceptConfig())
		if err != nil {
			t.Fatal(err)
		}
		checkColumnarReportShape(t, rep)
	}
	if rep.FilterSpeedupAt50 < minFilterSpeedup {
		t.Errorf("branch-free filter is %.2fx the scalar scan at 50%% selectivity, want >= %.2f (strict=%v)",
			rep.FilterSpeedupAt50, minFilterSpeedup, strict)
	}
	if rep.SortSpeedup < minSortSpeedup {
		t.Errorf("SoA run generation is %.2fx the AoS sort, want >= %.2f (strict=%v)",
			rep.SortSpeedup, minSortSpeedup, strict)
	}
}
