package hashjoin

import (
	"repro/internal/batch"
	"repro/internal/memory"
	"repro/internal/mergejoin"
	"repro/internal/relation"
)

// probeBatch buffers the matches a probe loop finds into columnar form and
// flushes them through mergejoin.EmitColumns, so the sink boundary is crossed
// once per batch instead of once per match (and batch-capable sinks receive
// whole columns). It implements mergejoin.Consumer, letting the chain-walking
// probe kernels stay unchanged; emission order is match-for-match identical
// to the unbatched path.
type probeBatch struct {
	out   mergejoin.Consumer
	lease *memory.Lease
	keys  []uint64
	rp    []uint64
	sp    []uint64
	n     int
}

// newProbeBatch leases one batch of output columns. close returns them.
func newProbeBatch(out mergejoin.Consumer, lease *memory.Lease) *probeBatch {
	return &probeBatch{
		out:   out,
		lease: lease,
		keys:  lease.Uint64s(batch.DefaultSize),
		rp:    lease.Uint64s(batch.DefaultSize),
		sp:    lease.Uint64s(batch.DefaultSize),
	}
}

// Consume implements mergejoin.Consumer by appending the match to the batch.
func (b *probeBatch) Consume(r, s relation.Tuple) {
	b.keys[b.n] = r.Key
	b.rp[b.n] = r.Payload
	b.sp[b.n] = s.Payload
	b.n++
	if b.n == len(b.keys) {
		b.flush()
	}
}

// flush hands the buffered matches to the consumer as one column batch.
func (b *probeBatch) flush() {
	if b.n == 0 {
		return
	}
	mergejoin.EmitColumns(b.out, b.keys[:b.n], b.rp[:b.n], b.sp[:b.n])
	b.n = 0
}

// close flushes the final partial batch and returns the columns to the lease.
func (b *probeBatch) close() {
	b.flush()
	b.lease.PutUint64s(b.keys)
	b.lease.PutUint64s(b.rp)
	b.lease.PutUint64s(b.sp)
}
