package hashjoin

import (
	"testing"

	"repro/internal/sched"
)

// TestHashJoinsUnderMorselScheduling checks both baselines against the
// oracle with the morsel scheduler and a tiny morsel size, so that build and
// probe blocks (Wisconsin) and partition-pair tasks (radix) genuinely get
// split and stolen.
func TestHashJoinsUnderMorselScheduling(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		r, s := testDataset(3000, 4, uint64(workers*13))
		wantCount, wantMax := reference(r, s)

		wi := wisconsin(r, s, Options{Workers: workers, Scheduler: sched.Morsel, MorselSize: 128})
		if wi.Matches != wantCount || wi.MaxSum != wantMax {
			t.Fatalf("Wisconsin morsel T=%d: got (%d, %d), want (%d, %d)",
				workers, wi.Matches, wi.MaxSum, wantCount, wantMax)
		}

		ra := radix(r, s, RadixOptions{Options: Options{Workers: workers, Scheduler: sched.Morsel, MorselSize: 128}})
		if ra.Matches != wantCount || ra.MaxSum != wantMax {
			t.Fatalf("Radix morsel T=%d: got (%d, %d), want (%d, %d)",
				workers, ra.Matches, ra.MaxSum, wantCount, wantMax)
		}
	}
}

// TestWisconsinMorselNUMAAccountingStillSynchronizes makes sure the
// accounting that distinguishes the baselines from MPSM (sync ops on the
// shared table) survives the scheduler rewrite in both modes.
func TestWisconsinMorselNUMAAccountingStillSynchronizes(t *testing.T) {
	r, s := testDataset(2000, 2, 91)
	for _, mode := range []sched.Mode{sched.Static, sched.Morsel} {
		res := wisconsin(r, s, Options{Workers: 4, TrackNUMA: true, Scheduler: mode, MorselSize: 256})
		if res.NUMA.SyncOps == 0 {
			t.Fatalf("%v: Wisconsin recorded no sync ops — the C3-violation accounting is gone", mode)
		}
		if res.NUMA.TotalAccesses() == 0 || res.SimulatedNUMACost == 0 {
			t.Fatalf("%v: NUMA accounting missing: %+v", mode, res.NUMA)
		}
	}
}
