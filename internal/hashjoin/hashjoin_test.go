package hashjoin

import (
	"context"
	"testing"

	"repro/internal/mergejoin"
	"repro/internal/relation"
	"repro/internal/result"
	"repro/internal/workload"
)

// The correctness tests drive the joins on a background context, so the
// cancellation error path cannot trigger; these wrappers keep them concise.

func wisconsin(r, s *relation.Relation, opts Options) *result.Result {
	res, err := Wisconsin(context.Background(), r, s, opts)
	if err != nil {
		panic(err)
	}
	return res
}

func radix(r, s *relation.Relation, opts RadixOptions) *result.Result {
	res, err := Radix(context.Background(), r, s, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// reference computes the expected join cardinality and max-sum with the
// trusted oracle.
func reference(r, s *relation.Relation) (count, maxSum uint64) {
	var agg mergejoin.MaxAggregate
	mergejoin.ReferenceJoin(r.Tuples, s.Tuples, &agg)
	return agg.Count, agg.Max
}

func testDataset(rSize, mult int, seed uint64) (*relation.Relation, *relation.Relation) {
	r, s, err := workload.Generate(workload.Spec{
		RSize:        rSize,
		Multiplicity: mult,
		ForeignKey:   true,
		Seed:         seed,
	})
	if err != nil {
		panic(err)
	}
	return r, s
}

func TestWisconsinCorrectness(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		for _, mult := range []int{1, 4} {
			r, s := testDataset(2000, mult, uint64(workers*10+mult))
			wantCount, wantMax := reference(r, s)
			res := wisconsin(r, s, Options{Workers: workers})
			if res.Matches != wantCount || res.MaxSum != wantMax {
				t.Fatalf("workers=%d mult=%d: got (%d, %d), want (%d, %d)",
					workers, mult, res.Matches, res.MaxSum, wantCount, wantMax)
			}
			if res.Algorithm != "Wisconsin" || res.Workers != workers {
				t.Fatalf("result metadata wrong: %+v", res)
			}
			if res.PhaseDuration("build") == 0 && r.Len() > 0 {
				t.Fatal("build phase duration missing")
			}
			if res.PhaseDuration("probe") == 0 && s.Len() > 0 {
				t.Fatal("probe phase duration missing")
			}
		}
	}
}

func TestWisconsinEmptyInputs(t *testing.T) {
	empty := relation.New("E", nil)
	r, _ := testDataset(100, 1, 1)
	if res := wisconsin(empty, r, Options{Workers: 2}); res.Matches != 0 {
		t.Fatalf("empty build side produced %d matches", res.Matches)
	}
	if res := wisconsin(r, empty, Options{Workers: 2}); res.Matches != 0 {
		t.Fatalf("empty probe side produced %d matches", res.Matches)
	}
}

func TestWisconsinDuplicateKeys(t *testing.T) {
	// All keys equal: the join is a full cross product.
	n := 200
	tuples := make([]relation.Tuple, n)
	for i := range tuples {
		tuples[i] = relation.Tuple{Key: 7, Payload: uint64(i)}
	}
	r := relation.New("R", tuples)
	s := r.Clone()
	res := wisconsin(r, s, Options{Workers: 4})
	if res.Matches != uint64(n*n) {
		t.Fatalf("matches = %d, want %d", res.Matches, n*n)
	}
	if res.MaxSum != uint64(2*(n-1)) {
		t.Fatalf("max sum = %d, want %d", res.MaxSum, 2*(n-1))
	}
}

func TestWisconsinNUMAAccounting(t *testing.T) {
	r, s := testDataset(5000, 4, 3)
	res := wisconsin(r, s, Options{Workers: 8, TrackNUMA: true})
	if res.NUMA.TotalAccesses() == 0 {
		t.Fatal("NUMA accounting enabled but no accesses recorded")
	}
	if res.NUMA.SyncOps == 0 {
		t.Fatal("shared-table build must record synchronization operations")
	}
	if res.NUMA.RemoteRandRead+res.NUMA.RemoteRandWrite == 0 {
		t.Fatal("shared-table join must record remote random accesses")
	}
	if res.SimulatedNUMACost == 0 {
		t.Fatal("simulated NUMA cost missing")
	}
}

func TestRadixCorrectness(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		for _, mult := range []int{1, 4} {
			r, s := testDataset(2000, mult, uint64(workers*100+mult))
			wantCount, wantMax := reference(r, s)
			res := radix(r, s, RadixOptions{Options: Options{Workers: workers}})
			if res.Matches != wantCount || res.MaxSum != wantMax {
				t.Fatalf("workers=%d mult=%d: got (%d, %d), want (%d, %d)",
					workers, mult, res.Matches, res.MaxSum, wantCount, wantMax)
			}
		}
	}
}

func TestRadixExplicitBits(t *testing.T) {
	r, s := testDataset(3000, 2, 5)
	wantCount, wantMax := reference(r, s)
	for _, bitsUsed := range []int{1, 4, 8} {
		res := radix(r, s, RadixOptions{Options: Options{Workers: 4}, PartitionBits: bitsUsed})
		if res.Matches != wantCount || res.MaxSum != wantMax {
			t.Fatalf("bits=%d: got (%d, %d), want (%d, %d)", bitsUsed, res.Matches, res.MaxSum, wantCount, wantMax)
		}
	}
}

func TestRadixPassCounts(t *testing.T) {
	r, s := testDataset(4000, 4, 21)
	wantCount, wantMax := reference(r, s)
	for _, passes := range []int{1, 2} {
		res := radix(r, s, RadixOptions{Options: Options{Workers: 4}, PartitionBits: 8, Passes: passes})
		if res.Matches != wantCount || res.MaxSum != wantMax {
			t.Fatalf("passes=%d: got (%d, %d), want (%d, %d)", passes, res.Matches, res.MaxSum, wantCount, wantMax)
		}
	}
}

func TestRefinePartitionPreservesTuplesAndRanges(t *testing.T) {
	tuples := make([]relation.Tuple, 0, 1000)
	rng := workload.NewRNG(5)
	for i := 0; i < 1000; i++ {
		tuples = append(tuples, relation.Tuple{Key: rng.Uint64n(1 << 16), Payload: uint64(i)})
	}
	refined := refinePartition(tuples, 8, 4, nil) // 16 sub-partitions on bits 8..11
	var back []relation.Tuple
	for b, part := range refined {
		for _, tup := range part {
			if int((tup.Key>>8)&0xF) != b {
				t.Fatalf("tuple with key %d landed in sub-partition %d", tup.Key, b)
			}
			back = append(back, tup)
		}
	}
	if !relation.SameMultiset(tuples, back) {
		t.Fatal("refinement lost or duplicated tuples")
	}
}

func TestRadixEmptyInputs(t *testing.T) {
	empty := relation.New("E", nil)
	r, _ := testDataset(100, 1, 7)
	if res := radix(empty, r, RadixOptions{Options: Options{Workers: 2}}); res.Matches != 0 {
		t.Fatalf("empty build side produced %d matches", res.Matches)
	}
	if res := radix(r, empty, RadixOptions{Options: Options{Workers: 2}}); res.Matches != 0 {
		t.Fatalf("empty probe side produced %d matches", res.Matches)
	}
}

func TestRadixSkewedData(t *testing.T) {
	r, s, err := workload.Generate(workload.Spec{
		RSize:        3000,
		Multiplicity: 4,
		RSkew:        workload.SkewHigh80,
		SSkew:        workload.SkewLow80,
		KeyDomain:    1 << 20,
		Seed:         9,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantCount, wantMax := reference(r, s)
	res := radix(r, s, RadixOptions{Options: Options{Workers: 4}})
	if res.Matches != wantCount {
		t.Fatalf("matches = %d, want %d", res.Matches, wantCount)
	}
	if wantCount > 0 && res.MaxSum != wantMax {
		t.Fatalf("max = %d, want %d", res.MaxSum, wantMax)
	}
}

func TestRadixNUMAAccounting(t *testing.T) {
	r, s := testDataset(5000, 4, 11)
	res := radix(r, s, RadixOptions{Options: Options{Workers: 8, TrackNUMA: true}})
	if res.NUMA.TotalAccesses() == 0 {
		t.Fatal("NUMA accounting enabled but no accesses recorded")
	}
	// Radix join never synchronizes per tuple (histogram-based scatter).
	if res.NUMA.SyncOps != 0 {
		t.Fatalf("radix join recorded %d sync ops, want 0", res.NUMA.SyncOps)
	}
	// Partitioning both inputs must cause remote writes.
	if res.NUMA.RemoteRandWrite == 0 {
		t.Fatal("partitioning phase should record remote writes")
	}
}

func TestChoosePartitionBits(t *testing.T) {
	if b := choosePartitionBits(1000); b != 1 {
		t.Fatalf("choosePartitionBits(1000) = %d, want 1", b)
	}
	if b := choosePartitionBits(1 << 20); b <= 4 {
		t.Fatalf("choosePartitionBits(1M) = %d, want > 4", b)
	}
	if b := choosePartitionBits(1 << 30); b != 14 {
		t.Fatalf("choosePartitionBits(1G) = %d, want capped at 14", b)
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 5: 8, 1024: 1024, 1025: 2048}
	for n, want := range cases {
		if got := nextPow2(n); got != want {
			t.Errorf("nextPow2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestSharedTableDirect(t *testing.T) {
	table := newSharedTable(4, nil)
	tuples := []relation.Tuple{{Key: 1, Payload: 10}, {Key: 2, Payload: 20}, {Key: 1, Payload: 30}, {Key: 99, Payload: 40}}
	for i, tup := range tuples {
		table.insert(int32(i), tup)
	}
	var m mergejoin.Materializer
	table.probe(relation.Tuple{Key: 1, Payload: 100}, &m)
	if len(m.Out) != 2 {
		t.Fatalf("probe(1) found %d matches, want 2", len(m.Out))
	}
	var c mergejoin.Counter
	table.probe(relation.Tuple{Key: 5}, &c)
	if c.Count != 0 {
		t.Fatalf("probe(5) found %d matches, want 0", c.Count)
	}
}
