// Package hashjoin implements the two hash-join baselines the MPSM paper
// compares against:
//
//   - the "Wisconsin" no-partitioning hash join (Blanas et al., SIGMOD 2011):
//     a single shared hash table built concurrently by all workers and probed
//     concurrently; build-side inserts synchronize on the shared bucket heads
//     and probes read the table randomly across NUMA partitions, violating
//     commandments C2 and C3;
//   - a radix-partitioned hash join in the MonetDB/Vectorwise lineage: both
//     inputs are radix partitioned in parallel (writing across NUMA
//     partitions once), after which each partition pair is joined with a
//     private, cache-sized hash table.
//
// Both implementations report the same result and phase-timing structure as
// the MPSM variants so that the experiment harness can reproduce Figures 12
// and 13, and both run on the shared parallel runtime of internal/sched, so
// the Static and Morsel scheduling modes apply to them too.
package hashjoin

import (
	"context"
	"math/bits"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/memory"
	"repro/internal/mergejoin"
	"repro/internal/numa"
	"repro/internal/relation"
	"repro/internal/result"
	"repro/internal/sched"
	"repro/internal/sink"
)

// Options configures the hash-join baselines.
type Options struct {
	// Workers is the degree of parallelism; 0 selects GOMAXPROCS.
	Workers int
	// Topology is the simulated NUMA topology used for access accounting.
	Topology numa.Topology
	// TrackNUMA enables NUMA access accounting.
	TrackNUMA bool
	// CostModel converts access statistics into a simulated duration; only
	// used when TrackNUMA is set. The zero value selects the default model.
	CostModel numa.CostModel
	// Sink receives the joined tuple stream. A nil Sink selects the built-in
	// max-sum aggregate of the paper's evaluation query.
	Sink sink.Sink
	// KeyCheck, when non-nil, verifies every candidate pair before it is
	// counted or handed to the sink — the tie-break path of normalized-key
	// execution (see internal/keys). Nil delivers pairs unverified.
	KeyCheck sink.PairCheck
	// Scheduler selects static per-worker loops (the default) or
	// morsel-driven scheduling, where build/probe blocks and partition
	// pairs are stolen by idle workers.
	Scheduler sched.Mode
	// MorselSize is the number of tuples per build/probe morsel; 0 selects
	// the shared default.
	MorselSize int
	// Scratch, when non-nil, is the engine-wide scratch pool the join draws
	// its hash-table and partition buffers from; see internal/memory.
	Scratch *memory.Pool
	// Owner attributes the join's scratch lease to a query's admission
	// reservation for per-query accounting in memory.PoolStats.
	Owner *memory.Reservation
	// Gate subjects the join's workers to the serving layer's weighted
	// fair-share arbiter; nil disables gating.
	Gate *sched.Ticket
	// Faults arms deterministic fault injection inside the join's workers
	// and scratch lease; nil (the default) injects nothing.
	Faults *faultinject.Set
}

// cancelBlock is how many tuples a hash-join worker processes between two
// cancellation checks; the build and probe loops have no natural chunk
// boundary, so this is their chunk size.
const cancelBlock = 8192

// canceled reports whether the context has been canceled without blocking.
func canceled(ctx context.Context) bool { return mergejoin.Canceled(ctx) }

// normalize fills in defaults.
func (o Options) normalize() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Topology.Nodes == 0 {
		o.Topology = numa.DefaultTopology()
	}
	if o.CostModel == (numa.CostModel{}) {
		o.CostModel = numa.DefaultCostModel()
	}
	if o.MorselSize <= 0 {
		o.MorselSize = sched.DefaultMorselSize
	}
	return o
}

// runtimeFor creates the shared parallel runtime for one hash join.
func runtimeFor(o Options) *sched.Runtime {
	return sched.New(sched.Config{
		Workers:   o.Workers,
		Topology:  o.Topology,
		TrackNUMA: o.TrackNUMA,
		Gate:      o.Gate,
		Label:     o.Owner.Label(),
		Faults:    o.Faults,
	})
}

// leaseFor checks out the join's scratch lease with fault injection armed.
func leaseFor(o Options) *memory.Lease {
	return o.Scratch.AcquireFor(o.Owner).InjectFaults(o.Faults)
}

// checkpoint is the phase-boundary error check: a recovered worker panic
// poisons the runtime and wins over plain cancellation; either way the lease
// is poisoned on panic so its buffers are quarantined rather than reused.
func checkpoint(ctx context.Context, rt *sched.Runtime, lease *memory.Lease) error {
	if err := rt.Err(); err != nil {
		lease.Poison()
		return err
	}
	return ctx.Err()
}

// sharedTable is the global hash table of the no-partitioning join. Bucket
// heads are updated with compare-and-swap, modelling the latched/atomic
// inserts of the original implementation. Entries are stored as two parallel
// arrays — the (key, payload) tuples and the chain links — so that both can
// be drawn from the scratch pool's standard buffer classes.
type sharedTable struct {
	mask    uint64
	heads   []int32          // index into entries, -1 if empty
	entries []relation.Tuple // entry slot i holds the build tuple
	next    []int32          // next[i] chains entry i, -1 terminates
}

// newSharedTable sizes the table to the next power of two of at least
// 2·capacity buckets, drawing the arrays from the lease when one is given.
func newSharedTable(capacity int, lease *memory.Lease) *sharedTable {
	size := 1
	for size < 2*capacity {
		size <<= 1
	}
	heads := lease.Int32s(size)
	for i := range heads {
		heads[i] = -1
	}
	return &sharedTable{
		mask:    uint64(size - 1),
		heads:   heads,
		entries: lease.Tuples(capacity),
		next:    lease.Int32s(capacity),
	}
}

// hashKey is a Fibonacci (multiplicative) hash spreading keys over buckets.
func hashKey(key uint64) uint64 {
	return key * 0x9e3779b97f4a7c15
}

// bucketOf returns the bucket index for a key.
func (t *sharedTable) bucketOf(key uint64) uint64 {
	return (hashKey(key) >> 16) & t.mask
}

// insert adds the tuple stored at entry slot slot to the table. The entry
// slot itself is owned exclusively by the inserting worker (slots are
// pre-assigned by chunk offsets), but the bucket head is shared and updated
// with CAS, which is the synchronization the paper's commandment C3 warns
// about.
func (t *sharedTable) insert(slot int32, tup relation.Tuple) (casRetries uint64) {
	t.entries[slot] = tup
	b := t.bucketOf(tup.Key)
	for {
		old := atomic.LoadInt32(&t.heads[b])
		t.next[slot] = old
		if atomic.CompareAndSwapInt32(&t.heads[b], old, slot) {
			return casRetries
		}
		casRetries++
	}
}

// probe walks the chain of the probe key's bucket and feeds every match to
// the consumer. It returns the number of entries inspected.
func (t *sharedTable) probe(tup relation.Tuple, out mergejoin.Consumer) (inspected uint64) {
	b := t.bucketOf(tup.Key)
	for idx := atomic.LoadInt32(&t.heads[b]); idx >= 0; idx = t.next[idx] {
		inspected++
		if t.entries[idx].Key == tup.Key {
			out.Consume(t.entries[idx], tup)
		}
	}
	return inspected
}

// insertBlock inserts one block of a build chunk into the shared table,
// charging the executing worker's tracker. Entry slots are pre-assigned by
// the tuple's global offset, so any worker may insert any block.
func insertBlock(table *sharedTable, tuples []relation.Tuple, baseSlot int, ctx context.Context, w *sched.Worker, topo numa.Topology) {
	var retries uint64
	for i, tup := range tuples {
		if i%cancelBlock == 0 && canceled(ctx) {
			return
		}
		retries += table.insert(int32(baseSlot+i), tup)
	}
	if tracker := w.Tracker(); tracker != nil {
		// The hash table is interleaved across all nodes; on average
		// (nodes-1)/nodes of the random writes are remote. We charge them
		// round-robin.
		n := uint64(len(tuples))
		chargeInterleaved(tracker, topo, n, false)
		tracker.Sync(n + retries)
	}
}

// probeBlock probes the shared table with one block of a probe chunk,
// streaming matches into the executing worker's sink writer. Matches are
// buffered into columnar batches and flushed through the sink's batch fast
// path once per batch.
func probeBlock(table *sharedTable, tuples []relation.Tuple, ctx context.Context, w *sched.Worker, topo numa.Topology, cons mergejoin.Consumer, lease *memory.Lease) {
	pb := newProbeBatch(cons, lease)
	defer pb.close()
	var inspected uint64
	for i, tup := range tuples {
		if i%cancelBlock == 0 && canceled(ctx) {
			return
		}
		inspected += table.probe(tup, pb)
	}
	if tracker := w.Tracker(); tracker != nil {
		// Probing reads the local S chunk sequentially and the shared
		// table randomly across all nodes.
		tracker.SeqRead(tracker.Node(), uint64(len(tuples)))
		chargeInterleaved(tracker, topo, inspected+uint64(len(tuples)), true)
	}
}

// blockTasks cuts the chunks of a relation into morsel tasks of at most
// morselSize tuples each, applying fn to every block. The tasks carry no
// NUMA placement: the shared table is interleaved over all nodes, so no
// worker is closer to a block's hash buckets than any other.
func blockTasks(chunks []relation.Chunk, morselSize int, fn func(block relation.Chunk, w *sched.Worker)) []sched.Task {
	var tasks []sched.Task
	for _, chunk := range chunks {
		chunk := chunk
		sched.ForEachSegment(len(chunk.Tuples), morselSize, func(lo, hi int) {
			block := relation.Chunk{Worker: chunk.Worker, Offset: chunk.Offset + lo, Tuples: chunk.Tuples[lo:hi]}
			tasks = append(tasks, sched.Task{Node: -1, Run: func(w *sched.Worker) { fn(block, w) }})
		})
	}
	return tasks
}

// Wisconsin executes the no-partitioning shared hash join: build a global
// hash table over R in parallel, then probe it with S in parallel. R is the
// build side; callers wanting role reversal swap the arguments.
//
// Matching pairs stream into the configured sink. Cancellation is checked at
// the phase boundary and every cancelBlock tuples inside the build and probe
// loops; a canceled context aborts the join and returns ctx.Err().
func Wisconsin(ctx context.Context, r, s *relation.Relation, opts Options) (*result.Result, error) {
	opts = opts.normalize()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	workers := opts.Workers
	res := &result.Result{Algorithm: "Wisconsin", Workers: workers}
	rt := runtimeFor(opts)
	lease := leaseFor(opts)
	defer lease.Release()
	start := time.Now()

	table := newSharedTable(r.Len(), lease)
	rChunks := r.Split(workers)
	sChunks := s.Split(workers)

	// Build phase: every worker inserts its chunk into the shared table
	// (static), or idle workers steal insert blocks (morsel).
	var buildTime time.Duration
	if opts.Scheduler == sched.Morsel {
		buildTime = rt.RunTasks(ctx, "build", blockTasks(rChunks, opts.MorselSize, func(block relation.Chunk, w *sched.Worker) {
			insertBlock(table, block.Tuples, block.Offset, ctx, w, opts.Topology)
		}))
	} else {
		buildTime = rt.Phase(ctx, "build", func(ctx context.Context, w *sched.Worker) {
			chunk := rChunks[w.ID()]
			insertBlock(table, chunk.Tuples, chunk.Offset, ctx, w, opts.Topology)
		})
	}
	res.AddPhase("build", buildTime)
	if err := checkpoint(ctx, rt, lease); err != nil {
		return nil, err
	}

	// Probe phase: every worker probes with its chunk of S, streaming
	// matches into its private sink writer.
	out := sink.BindChecked(opts.Sink, workers, lease, opts.KeyCheck)
	var probeTime time.Duration
	if opts.Scheduler == sched.Morsel {
		probeTime = rt.RunTasks(ctx, "probe", blockTasks(sChunks, opts.MorselSize, func(block relation.Chunk, w *sched.Worker) {
			probeBlock(table, block.Tuples, ctx, w, opts.Topology, out.Writer(w.ID()), lease)
		}))
	} else {
		probeTime = rt.Phase(ctx, "probe", func(ctx context.Context, w *sched.Worker) {
			probeBlock(table, sChunks[w.ID()].Tuples, ctx, w, opts.Topology, out.Writer(w.ID()), lease)
		})
	}
	res.AddPhase("probe", probeTime)
	// Close runs even on cancellation (the sink lifecycle promises it); the
	// context error still wins as the join's outcome.
	closeErr := out.Close()
	if err := checkpoint(ctx, rt, lease); err != nil {
		return nil, err
	}
	if closeErr != nil {
		return nil, closeErr
	}

	res.Matches = out.Matches()
	res.MaxSum = out.MaxSum()
	res.Batch.Batches, res.Batch.Tuples = out.Batches()
	res.Total = time.Since(start)
	if opts.TrackNUMA {
		res.NUMA = rt.NUMAStats()
		res.SimulatedNUMACost = opts.CostModel.Estimate(res.NUMA)
	}
	res.Scratch = lease.Stats()
	return res, nil
}

// chargeInterleaved charges n random accesses against a hash table whose
// memory is interleaved over all NUMA nodes: 1/nodes of them are local, the
// rest remote. read selects reads vs writes.
func chargeInterleaved(tracker *numa.Tracker, topo numa.Topology, n uint64, read bool) {
	if tracker == nil || n == 0 {
		return
	}
	local := n / uint64(topo.Nodes)
	remote := n - local
	if read {
		tracker.RandRead(tracker.Node(), local)
		tracker.RandRead((tracker.Node()+1)%topo.Nodes, remote)
	} else {
		tracker.RandWrite(tracker.Node(), local)
		tracker.RandWrite((tracker.Node()+1)%topo.Nodes, remote)
	}
}

// nextPow2 returns the smallest power of two >= n (and at least 1).
func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}
