// Package hashjoin implements the two hash-join baselines the MPSM paper
// compares against:
//
//   - the "Wisconsin" no-partitioning hash join (Blanas et al., SIGMOD 2011):
//     a single shared hash table built concurrently by all workers and probed
//     concurrently; build-side inserts synchronize on the shared bucket heads
//     and probes read the table randomly across NUMA partitions, violating
//     commandments C2 and C3;
//   - a radix-partitioned hash join in the MonetDB/Vectorwise lineage: both
//     inputs are radix partitioned in parallel (writing across NUMA
//     partitions once), after which each partition pair is joined with a
//     private, cache-sized hash table.
//
// Both implementations report the same result and phase-timing structure as
// the MPSM variants so that the experiment harness can reproduce Figures 12
// and 13.
package hashjoin

import (
	"context"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mergejoin"
	"repro/internal/numa"
	"repro/internal/relation"
	"repro/internal/result"
	"repro/internal/sink"
)

// Options configures the hash-join baselines.
type Options struct {
	// Workers is the degree of parallelism; 0 selects GOMAXPROCS.
	Workers int
	// Topology is the simulated NUMA topology used for access accounting.
	Topology numa.Topology
	// TrackNUMA enables NUMA access accounting.
	TrackNUMA bool
	// CostModel converts access statistics into a simulated duration; only
	// used when TrackNUMA is set. The zero value selects the default model.
	CostModel numa.CostModel
	// Sink receives the joined tuple stream. A nil Sink selects the built-in
	// max-sum aggregate of the paper's evaluation query.
	Sink sink.Sink
}

// cancelBlock is how many tuples a hash-join worker processes between two
// cancellation checks; the build and probe loops have no natural chunk
// boundary, so this is their chunk size.
const cancelBlock = 8192

// canceled reports whether the context has been canceled without blocking.
func canceled(ctx context.Context) bool { return mergejoin.Canceled(ctx) }

// normalize fills in defaults.
func (o Options) normalize() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Topology.Nodes == 0 {
		o.Topology = numa.DefaultTopology()
	}
	if o.CostModel == (numa.CostModel{}) {
		o.CostModel = numa.DefaultCostModel()
	}
	return o
}

// entry is one node of the shared chaining hash table. Next is the index of
// the next entry in the chain, or -1.
type entry struct {
	key     uint64
	payload uint64
	next    int32
}

// sharedTable is the global hash table of the no-partitioning join. Bucket
// heads are updated with compare-and-swap, modelling the latched/atomic
// inserts of the original implementation.
type sharedTable struct {
	mask    uint64
	heads   []int32 // index into entries, -1 if empty
	entries []entry
}

// newSharedTable sizes the table to the next power of two of at least
// 2·capacity buckets.
func newSharedTable(capacity int) *sharedTable {
	size := 1
	for size < 2*capacity {
		size <<= 1
	}
	heads := make([]int32, size)
	for i := range heads {
		heads[i] = -1
	}
	return &sharedTable{
		mask:    uint64(size - 1),
		heads:   heads,
		entries: make([]entry, capacity),
	}
}

// hashKey is a Fibonacci (multiplicative) hash spreading keys over buckets.
func hashKey(key uint64) uint64 {
	return key * 0x9e3779b97f4a7c15
}

// bucketOf returns the bucket index for a key.
func (t *sharedTable) bucketOf(key uint64) uint64 {
	return (hashKey(key) >> 16) & t.mask
}

// insert adds the tuple stored at entry slot slot to the table. The entry
// slot itself is owned exclusively by the inserting worker (slots are
// pre-assigned by chunk offsets), but the bucket head is shared and updated
// with CAS, which is the synchronization the paper's commandment C3 warns
// about.
func (t *sharedTable) insert(slot int32, tup relation.Tuple) (casRetries uint64) {
	t.entries[slot].key = tup.Key
	t.entries[slot].payload = tup.Payload
	b := t.bucketOf(tup.Key)
	for {
		old := atomic.LoadInt32(&t.heads[b])
		t.entries[slot].next = old
		if atomic.CompareAndSwapInt32(&t.heads[b], old, slot) {
			return casRetries
		}
		casRetries++
	}
}

// probe walks the chain of the probe key's bucket and feeds every match to
// the consumer. It returns the number of entries inspected.
func (t *sharedTable) probe(tup relation.Tuple, out mergejoin.Consumer) (inspected uint64) {
	b := t.bucketOf(tup.Key)
	for idx := atomic.LoadInt32(&t.heads[b]); idx >= 0; idx = t.entries[idx].next {
		inspected++
		if t.entries[idx].key == tup.Key {
			out.Consume(relation.Tuple{Key: t.entries[idx].key, Payload: t.entries[idx].payload}, tup)
		}
	}
	return inspected
}

// Wisconsin executes the no-partitioning shared hash join: build a global
// hash table over R in parallel, then probe it with S in parallel. R is the
// build side; callers wanting role reversal swap the arguments.
//
// Matching pairs stream into the configured sink. Cancellation is checked at
// the phase boundary and every cancelBlock tuples inside the build and probe
// loops; a canceled context aborts the join and returns ctx.Err().
func Wisconsin(ctx context.Context, r, s *relation.Relation, opts Options) (*result.Result, error) {
	opts = opts.normalize()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	workers := opts.Workers
	res := &result.Result{Algorithm: "Wisconsin", Workers: workers}
	start := time.Now()

	table := newSharedTable(r.Len())
	rChunks := r.Split(workers)
	sChunks := s.Split(workers)

	trackers := make([]*numa.Tracker, workers)
	if opts.TrackNUMA {
		for w := 0; w < workers; w++ {
			trackers[w] = numa.NewTracker(opts.Topology, w)
		}
	}

	// Build phase: every worker inserts its chunk into the shared table.
	buildTime := result.StopwatchPhase(func() {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				chunk := rChunks[w]
				tracker := trackers[w]
				var retries uint64
				for i, tup := range chunk.Tuples {
					if i%cancelBlock == 0 && canceled(ctx) {
						return
					}
					retries += table.insert(int32(chunk.Offset+i), tup)
				}
				if tracker != nil {
					// The hash table is interleaved across all nodes;
					// on average (nodes-1)/nodes of the random writes
					// are remote. We charge them round-robin.
					n := uint64(len(chunk.Tuples))
					chargeInterleaved(tracker, opts.Topology, n, false)
					tracker.Sync(n + retries)
				}
			}(w)
		}
		wg.Wait()
	})
	res.AddPhase("build", buildTime)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Probe phase: every worker probes with its chunk of S, streaming
	// matches into its private sink writer.
	out := sink.Bind(opts.Sink, workers)
	probeTime := result.StopwatchPhase(func() {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				chunk := sChunks[w]
				tracker := trackers[w]
				cons := out.Writer(w)
				var inspected uint64
				for i, tup := range chunk.Tuples {
					if i%cancelBlock == 0 && canceled(ctx) {
						return
					}
					inspected += table.probe(tup, cons)
				}
				if tracker != nil {
					// Probing reads the local S chunk sequentially and
					// the shared table randomly across all nodes.
					tracker.SeqRead(tracker.Node(), uint64(len(chunk.Tuples)))
					chargeInterleaved(tracker, opts.Topology, inspected+uint64(len(chunk.Tuples)), true)
				}
			}(w)
		}
		wg.Wait()
	})
	res.AddPhase("probe", probeTime)
	// Close runs even on cancellation (the sink lifecycle promises it); the
	// context error still wins as the join's outcome.
	closeErr := out.Close()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if closeErr != nil {
		return nil, closeErr
	}

	res.Matches = out.Matches()
	res.MaxSum = out.MaxSum()
	res.Total = time.Since(start)
	if opts.TrackNUMA {
		res.NUMA = numa.MergeStats(trackers)
		res.SimulatedNUMACost = opts.CostModel.Estimate(res.NUMA)
	}
	return res, nil
}

// chargeInterleaved charges n random accesses against a hash table whose
// memory is interleaved over all NUMA nodes: 1/nodes of them are local, the
// rest remote. read selects reads vs writes.
func chargeInterleaved(tracker *numa.Tracker, topo numa.Topology, n uint64, read bool) {
	if tracker == nil || n == 0 {
		return
	}
	local := n / uint64(topo.Nodes)
	remote := n - local
	if read {
		tracker.RandRead(tracker.Node(), local)
		tracker.RandRead((tracker.Node()+1)%topo.Nodes, remote)
	} else {
		tracker.RandWrite(tracker.Node(), local)
		tracker.RandWrite((tracker.Node()+1)%topo.Nodes, remote)
	}
}

// nextPow2 returns the smallest power of two >= n (and at least 1).
func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}
