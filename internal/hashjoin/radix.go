package hashjoin

import (
	"context"
	"time"

	"repro/internal/memory"
	"repro/internal/mergejoin"
	"repro/internal/numa"
	"repro/internal/partition"
	"repro/internal/relation"
	"repro/internal/result"
	"repro/internal/sched"
	"repro/internal/sink"
)

// RadixOptions configures the radix-partitioned hash join baseline.
type RadixOptions struct {
	Options
	// PartitionBits is the number of radix bits used for partitioning both
	// inputs (2^bits partitions in total). 0 selects a value that targets
	// build-side partitions of roughly 2048 tuples, mimicking cache-sized
	// fragments.
	PartitionBits int
	// Passes is the number of radix partitioning passes. The MonetDB /
	// Vectorwise lineage partitions repeatedly (rather than in one step) to
	// preserve TLB locality; the first pass writes across NUMA partitions,
	// later passes refine locally. 0 selects two passes when the partition
	// count is large enough to split, one otherwise.
	Passes int
}

// choosePartitionBits picks a partition count so that each build-side
// partition holds around targetPartitionSize tuples.
func choosePartitionBits(buildSize int) int {
	const targetPartitionSize = 2048
	bits := 1
	for (buildSize>>bits) > targetPartitionSize && bits < 14 {
		bits++
	}
	return bits
}

// Radix executes a radix-partitioned parallel hash join in the
// MonetDB/Vectorwise lineage, the paper's second contender. Both inputs are
// radix partitioned on their join keys in parallel using per-worker
// histograms and prefix sums (one pass, writing across NUMA partitions), and
// every partition pair is then joined with a private hash table, streaming
// matches into the configured sink.
//
// The join phase claims partition pairs dynamically from the shared task
// queue under both scheduler modes — dynamic claiming is how this contender
// has always balanced its cache-sized partitions (it is not bound by the
// MPSM commandment C3), so the Scheduler option does not change its
// behaviour.
//
// Cancellation is checked at phase boundaries and per partition inside the
// join loop; a canceled context aborts the join and returns ctx.Err().
func Radix(ctx context.Context, r, s *relation.Relation, opts RadixOptions) (*result.Result, error) {
	o := opts.Options.normalize()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	workers := o.Workers
	res := &result.Result{Algorithm: "Radix HJ", Workers: workers}
	rt := runtimeFor(o)
	lease := leaseFor(o)
	defer lease.Release()
	start := time.Now()

	bitsUsed := opts.PartitionBits
	if bitsUsed <= 0 {
		bitsUsed = choosePartitionBits(r.Len())
	}
	passes := opts.Passes
	if passes <= 0 {
		passes = 1
		if bitsUsed >= 4 {
			passes = 2
		}
	}
	maxKey := maxKeyOf(r, s)

	var rParts, sParts [][]relation.Tuple
	partitionTime := result.StopwatchPhase(func() {
		rParts = partitionMultiPass(ctx, rt, r, bitsUsed, passes, maxKey, o.Topology, lease)
		sParts = partitionMultiPass(ctx, rt, s, bitsUsed, passes, maxKey, o.Topology, lease)
	})
	res.AddPhase("partition", partitionTime)
	if err := checkpoint(ctx, rt, lease); err != nil {
		return nil, err
	}
	parts := len(rParts)

	// Join phase: each partition pair is joined with a private hash table
	// over its R partition, probed with the matching S partition, streaming
	// matches into the executing worker's sink writer. Cancellation is
	// checked per partition — the chunk unit of this loop.
	out := sink.BindChecked(o.Sink, workers, lease, o.KeyCheck)
	joinPair := func(p int, w *sched.Worker) {
		joinPartition(rParts[p], sParts[p], out.Writer(w.ID()), lease)
		if tracker := w.Tracker(); tracker != nil {
			// Reading the partitions is sequential, but they live wherever
			// the partitioning phase placed them (interleaved across
			// nodes). Building the private hash table and probing it are
			// random accesses, albeit node-local thanks to the cache-sized
			// fragments.
			chargeInterleavedSeq(tracker, o.Topology, uint64(len(rParts[p])+len(sParts[p])))
			tracker.RandWrite(tracker.Node(), uint64(len(rParts[p])))
			tracker.RandRead(tracker.Node(), uint64(len(sParts[p])))
		}
	}
	tasks := make([]sched.Task, parts)
	for p := 0; p < parts; p++ {
		p := p
		tasks[p] = sched.Task{Node: -1, Run: func(w *sched.Worker) { joinPair(p, w) }}
	}
	joinTime := rt.RunTasks(ctx, "build+probe", tasks)
	res.AddPhase("build+probe", joinTime)
	// Close runs even on cancellation (the sink lifecycle promises it); the
	// context error still wins as the join's outcome.
	closeErr := out.Close()
	if err := checkpoint(ctx, rt, lease); err != nil {
		return nil, err
	}
	if closeErr != nil {
		return nil, closeErr
	}

	res.Matches = out.Matches()
	res.MaxSum = out.MaxSum()
	res.Batch.Batches, res.Batch.Tuples = out.Batches()
	res.Total = time.Since(start)
	if o.TrackNUMA {
		res.NUMA = rt.NUMAStats()
		res.SimulatedNUMACost = o.CostModel.Estimate(res.NUMA)
	}
	res.Scratch = lease.Stats()
	return res, nil
}

// partitionMultiPass radix partitions a relation into 2^bits partitions using
// one or two passes. The first pass distributes the data over 2^b1 coarse
// partitions with the synchronization-free histogram/prefix-sum/scatter scheme
// — this is the pass that writes across NUMA partitions and that the paper
// criticizes. The optional second pass refines every coarse partition locally
// on the next b2 = bits - b1 key bits, preserving TLB/cache locality exactly
// like the MonetDB/Vectorwise radix join.
func partitionMultiPass(ctx context.Context, rt *sched.Runtime, rel *relation.Relation, bits, passes int,
	maxKey uint64, topo numa.Topology, lease *memory.Lease) [][]relation.Tuple {

	if passes <= 1 || bits < 2 {
		cfg := partition.NewRadixConfig(bits, maxKey)
		sp := identitySplitters(cfg.Clusters())
		return partitionParallel(ctx, rt, rel, cfg, sp, cfg.Clusters(), topo, lease)
	}

	b1 := (bits + 1) / 2
	b2 := bits - b1
	cfg1 := partition.NewRadixConfig(b1, maxKey)
	coarse := partitionParallel(ctx, rt, rel, cfg1, identitySplitters(cfg1.Clusters()), cfg1.Clusters(), topo, lease)

	// Second pass: refine every coarse partition on the next b2 bits. The
	// refinements are independent, so workers claim coarse partitions
	// dynamically from the task queue; all reads and writes are node-local.
	refineShift := uint(0)
	if cfg1.Shift > uint(b2) {
		refineShift = cfg1.Shift - uint(b2)
	}
	subCount := 1 << b2
	out := make([][]relation.Tuple, len(coarse)*subCount)
	tasks := make([]sched.Task, len(coarse))
	for p := range coarse {
		p := p
		tasks[p] = sched.Task{Node: -1, Run: func(w *sched.Worker) {
			refined := refinePartition(coarse[p], refineShift, b2, lease)
			copy(out[p*subCount:(p+1)*subCount], refined)
			if tracker := w.Tracker(); tracker != nil {
				n := uint64(len(coarse[p]))
				tracker.SeqRead(tracker.Node(), n)
				tracker.SeqWrite(tracker.Node(), n)
			}
		}}
	}
	rt.RunTasks(ctx, "partition", tasks)
	return out
}

// identitySplitters returns the splitter vector that maps every radix cluster
// to its own partition.
func identitySplitters(clusters int) partition.SplitterVector {
	sp := make(partition.SplitterVector, clusters)
	for i := range sp {
		sp[i] = i
	}
	return sp
}

// refinePartition splits one coarse partition into 2^b2 sub-partitions on the
// key bits selected by shift, preserving the coarse partition's key range.
// The histogram/cursor scratch and the sub-partition buffers come from the
// lease; the histogram is handed back immediately, the sub-partitions live
// until the join releases its lease.
func refinePartition(tuples []relation.Tuple, shift uint, b2 int, lease *memory.Lease) [][]relation.Tuple {
	buckets := 1 << b2
	mask := uint64(buckets - 1)
	hist := lease.Ints(buckets)
	for _, t := range tuples {
		hist[int((t.Key>>shift)&mask)]++
	}
	out := make([][]relation.Tuple, buckets)
	for b := 0; b < buckets; b++ {
		out[b] = lease.Tuples(hist[b])
	}
	cursors := hist
	clear(cursors)
	for _, t := range tuples {
		b := int((t.Key >> shift) & mask)
		out[b][cursors[b]] = t
		cursors[b]++
	}
	lease.PutInts(hist)
	return out
}

// partitionParallel radix partitions a relation into parts target partitions
// using the synchronization-free histogram/prefix-sum/scatter scheme. Unlike
// P-MPSM's private-input partitioning, the radix join partitions both inputs,
// which is the cross-NUMA traffic the paper criticizes.
func partitionParallel(ctx context.Context, rt *sched.Runtime, rel *relation.Relation, cfg partition.RadixConfig,
	sp partition.SplitterVector, parts int, topo numa.Topology, lease *memory.Lease) [][]relation.Tuple {

	workers := rt.Workers()
	chunks := rel.Split(workers)
	histograms := make([]partition.Histogram, workers)

	rt.Phase(ctx, "partition", func(ctx context.Context, w *sched.Worker) {
		histograms[w.ID()] = partition.BuildHistogramInto(lease.Ints(cfg.Clusters()), chunks[w.ID()].Tuples, cfg)
		if tracker := w.Tracker(); tracker != nil {
			tracker.SeqRead(tracker.Node(), uint64(len(chunks[w.ID()].Tuples)))
		}
	})
	for w := 0; w < workers; w++ {
		// A worker skipped by cancellation leaves a nil histogram; the
		// prefix sums still need a well-formed (empty) one.
		if histograms[w] == nil {
			histograms[w] = partition.BuildHistogram(nil, cfg)
		}
	}

	ps := partition.ComputePrefixSums(histograms, sp, parts)
	targets := make([][]relation.Tuple, parts)
	for p := 0; p < parts; p++ {
		targets[p] = lease.Tuples(ps.Sizes[p])
	}

	rt.Phase(ctx, "partition", func(ctx context.Context, w *sched.Worker) {
		cursors := lease.Ints(parts)
		copy(cursors, ps.Offsets[w.ID()])
		partition.Scatter(chunks[w.ID()].Tuples, cfg, sp, targets, cursors)
		if tracker := w.Tracker(); tracker != nil {
			// Scattering writes across all target partitions, which are
			// spread over the NUMA nodes: random-ish writes, mostly remote.
			chargeInterleaved(tracker, topo, uint64(len(chunks[w.ID()].Tuples)), false)
		}
		lease.PutInts(cursors)
	})
	return targets
}

// chargeInterleavedSeq charges n sequential reads against interleaved memory.
func chargeInterleavedSeq(tracker *numa.Tracker, topo numa.Topology, n uint64) {
	if tracker == nil || n == 0 {
		return
	}
	local := n / uint64(topo.Nodes)
	remote := n - local
	tracker.SeqRead(tracker.Node(), local)
	tracker.SeqRead((tracker.Node()+1)%topo.Nodes, remote)
}

// joinPartition joins one partition pair with a private chaining hash table
// sized to the build side. The slot and chain arrays are leased and handed
// back as soon as the pair is joined, so concurrent partition tasks recycle a
// handful of cache-sized buffers instead of allocating one table per
// partition.
func joinPartition(build, probe []relation.Tuple, out mergejoin.Consumer, lease *memory.Lease) {
	if len(build) == 0 || len(probe) == 0 {
		return
	}
	size := nextPow2(2 * len(build))
	mask := uint64(size - 1)
	slots := lease.Int32s(size)
	for i := range slots {
		slots[i] = -1
	}
	next := lease.Int32s(len(build))
	for i, tup := range build {
		b := (hashKey(tup.Key) >> 16) & mask
		next[i] = slots[b]
		slots[b] = int32(i)
	}
	// Matches are buffered into columnar batches and flushed through the
	// sink's batch fast path once per batch instead of once per match.
	pb := newProbeBatch(out, lease)
	for _, tup := range probe {
		b := (hashKey(tup.Key) >> 16) & mask
		for idx := slots[b]; idx >= 0; idx = next[idx] {
			if build[idx].Key == tup.Key {
				pb.Consume(build[idx], tup)
			}
		}
	}
	pb.close()
	lease.PutInt32s(slots)
	lease.PutInt32s(next)
}

// maxKeyOf returns the maximum join key across both relations (0 for empty
// inputs).
func maxKeyOf(r, s *relation.Relation) uint64 {
	var maxKey uint64
	if _, m, err := r.MinMaxKey(); err == nil {
		maxKey = m
	}
	if _, m, err := s.MinMaxKey(); err == nil && m > maxKey {
		maxKey = m
	}
	return maxKey
}
