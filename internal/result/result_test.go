package result

import (
	"strings"
	"testing"
	"time"
)

func TestAddPhaseAndPhaseDuration(t *testing.T) {
	var r Result
	r.AddPhase("phase 1", 10*time.Millisecond)
	r.AddPhase("phase 2", 20*time.Millisecond)
	if got := r.PhaseDuration("phase 1"); got != 10*time.Millisecond {
		t.Fatalf("PhaseDuration(phase 1) = %v", got)
	}
	if got := r.PhaseDuration("phase 2"); got != 20*time.Millisecond {
		t.Fatalf("PhaseDuration(phase 2) = %v", got)
	}
	if got := r.PhaseDuration("missing"); got != 0 {
		t.Fatalf("PhaseDuration(missing) = %v, want 0", got)
	}
	if len(r.Phases) != 2 {
		t.Fatalf("Phases = %v", r.Phases)
	}
}

func TestResultString(t *testing.T) {
	r := Result{Algorithm: "P-MPSM", Workers: 8, Matches: 42, MaxSum: 99, Total: 3 * time.Millisecond}
	r.AddPhase("phase 1", time.Millisecond)
	s := r.String()
	for _, want := range []string{"P-MPSM", "T=8", "matches=42", "max=99", "phase 1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
}

func TestStopwatchPhase(t *testing.T) {
	ran := false
	d := StopwatchPhase(func() {
		ran = true
		time.Sleep(2 * time.Millisecond)
	})
	if !ran {
		t.Fatal("StopwatchPhase did not invoke the function")
	}
	if d < 2*time.Millisecond {
		t.Fatalf("StopwatchPhase duration %v shorter than the work", d)
	}
}
