// Package result defines the common result and phase-timing representation
// shared by every join algorithm in this repository. Benchmarks and the
// experiment harness rely on it to print the per-phase breakdowns the paper's
// figures are built from (run generation, partitioning, sorting, joining for
// MPSM; build and probe for the hash joins).
package result

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/memory"
	"repro/internal/numa"
)

// Phase is a single timed phase of a join algorithm.
type Phase struct {
	// Name identifies the phase, e.g. "phase 1 (sort S)" or "build".
	Name string
	// Duration is the wall-clock time of the phase across all workers
	// (workers run concurrently, so this is the elapsed time of the
	// slowest worker, not the sum).
	Duration time.Duration
}

// WorkerBreakdown records the per-phase durations and work counters of a
// single worker. The Figure 16 experiments use it to show how skew unbalances
// individual workers and how the splitter computation restores balance.
type WorkerBreakdown struct {
	// Worker is the worker index.
	Worker int
	// Phases holds this worker's own durations, in algorithm phase order.
	Phases []Phase
	// PrivateTuples is the number of private-input (R) tuples assigned to
	// this worker after partitioning.
	PrivateTuples int
	// PublicScanned is the number of public-input (S) tuples this worker
	// scanned during the join phase.
	PublicScanned int
	// Matches is the number of join results this worker produced.
	Matches uint64
}

// BatchStats reports how much of the join output flowed through the columnar
// batch fast path: Batches is the number of match batches delivered to a
// BatchConsumer sink, Tuples the number of result pairs they carried. Both are
// zero when the engine ran on the row-at-a-time path (or the sink had no batch
// fast path), so the counters double as a cheap assertion that the columnar
// plumbing was actually exercised.
type BatchStats struct {
	// Batches is the number of columnar match batches emitted.
	Batches uint64
	// Tuples is the number of result pairs delivered inside those batches.
	Tuples uint64
}

// Result describes the outcome of one join execution.
type Result struct {
	// Algorithm names the join implementation, e.g. "P-MPSM" or
	// "Wisconsin hash join".
	Algorithm string
	// Workers is the degree of parallelism used.
	Workers int

	// Matches is the join cardinality (number of matching tuple pairs).
	Matches uint64
	// MaxSum is the result of the paper's evaluation query
	// max(R.payload + S.payload); only meaningful if Matches > 0.
	MaxSum uint64

	// Phases is the elapsed-time breakdown by algorithm phase.
	Phases []Phase
	// Total is the end-to-end elapsed time of the join.
	Total time.Duration

	// PerWorker optionally holds per-worker phase breakdowns (used by the
	// skew experiments); nil when not collected.
	PerWorker []WorkerBreakdown

	// PublicScanned is the total number of public-input (S) tuples scanned
	// during the join phase, summed over workers. It exposes the |S| vs
	// |S|/T complexity difference between B-MPSM and P-MPSM.
	PublicScanned int

	// Batch reports the traffic of the columnar batch fast path; all zeros
	// when the join ran row at a time.
	Batch BatchStats

	// Scratch reports the join's scratch-pool traffic (buffers requested,
	// buffers served from the pool, bytes handed out); all zeros when the
	// engine ran without a scratch pool.
	Scratch memory.LeaseStats

	// NUMA aggregates the simulated NUMA access statistics of all workers.
	NUMA numa.AccessStats
	// SimulatedNUMACost is the duration the NUMA cost model assigns to the
	// recorded accesses; zero when NUMA tracking was disabled.
	SimulatedNUMACost time.Duration
}

// PhaseDuration returns the duration of the named phase, or zero if absent.
func (r *Result) PhaseDuration(name string) time.Duration {
	for _, p := range r.Phases {
		if p.Name == name {
			return p.Duration
		}
	}
	return 0
}

// AddPhase appends a phase to the breakdown.
func (r *Result) AddPhase(name string, d time.Duration) {
	r.Phases = append(r.Phases, Phase{Name: name, Duration: d})
}

// String renders a compact single-line summary.
func (r *Result) String() string {
	var phases []string
	for _, p := range r.Phases {
		phases = append(phases, fmt.Sprintf("%s=%s", p.Name, p.Duration.Round(time.Microsecond)))
	}
	return fmt.Sprintf("%s[T=%d] total=%s matches=%d max=%d (%s)",
		r.Algorithm, r.Workers, r.Total.Round(time.Microsecond), r.Matches, r.MaxSum, strings.Join(phases, " "))
}

// StopwatchPhase measures one phase: it invokes fn and returns its duration.
func StopwatchPhase(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}
