// Package relation defines the fundamental data representation shared by all
// join algorithms in this repository: fixed-width tuples of a 64-bit join key
// and a 64-bit payload, relations as flat tuple slices, and sorted runs.
//
// The layout mirrors the evaluation setup of the MPSM paper (Albutiu et al.,
// VLDB 2012): every tuple is {joinkey: 64-bit, payload: 64-bit} with keys drawn
// from [0, 2^32). Keeping tuples as a flat slice of fixed-size structs gives
// the same sequential-scan friendliness the paper relies on.
package relation

import (
	"errors"
	"fmt"
)

// Tuple is a single row: a 64-bit join key and a 64-bit payload.
//
// The payload typically carries a record identifier or an aggregation input;
// the evaluation query of the paper computes max(R.payload + S.payload).
type Tuple struct {
	Key     uint64
	Payload uint64
}

// Relation is an in-memory table held as a flat slice of tuples.
type Relation struct {
	// Tuples is the backing storage. Algorithms may reorder it in place
	// (for example, local run sorting), but never change its multiset of
	// values unless documented otherwise.
	Tuples []Tuple

	// Name is an optional human-readable identifier used in diagnostics.
	Name string

	// Meta, when non-nil, records that the tuple keys are normalized-key
	// prefixes derived from a richer schema (see internal/keys). Exact
	// metadata means prefix order and equality are exact and tuples carry
	// caller payloads; inexact metadata means tuples carry row indices as
	// payloads and joins must verify prefix-equal pairs against FullKey.
	Meta KeyMeta
}

// KeyMeta describes how a relation's uint64 keys were derived from a key
// schema. It is declared here (and implemented by internal/keys) so that
// relation stays dependency-free while every layer that moves relations
// around can propagate the metadata.
type KeyMeta interface {
	// Exact reports whether prefix order and equality equal full-key order
	// and equality, i.e. whether the raw uint64 fast path is semantically
	// complete for this relation.
	Exact() bool
	// Signature is the canonical schema description; tie-break joins
	// require both sides to have equal signatures.
	Signature() string
	// FullKey returns row i's full normalized key. Valid only for inexact
	// metadata, where tuple payloads are row indices.
	FullKey(i int) []byte
	// UserPayload returns row i's caller-supplied payload. Valid only for
	// inexact metadata.
	UserPayload(i int) uint64
	// Describe renders a short human-readable summary for diagnostics and
	// EXPLAIN output.
	Describe() string
}

// ErrEmptyRelation is returned by operations that need at least one tuple.
var ErrEmptyRelation = errors.New("relation: empty relation")

// New returns a relation wrapping the given tuples without copying.
func New(name string, tuples []Tuple) *Relation {
	return &Relation{Name: name, Tuples: tuples}
}

// NewWithCapacity returns an empty relation with preallocated capacity.
func NewWithCapacity(name string, capacity int) *Relation {
	return &Relation{Name: name, Tuples: make([]Tuple, 0, capacity)}
}

// Len reports the number of tuples in the relation.
func (r *Relation) Len() int { return len(r.Tuples) }

// Append adds a tuple to the relation.
func (r *Relation) Append(t Tuple) { r.Tuples = append(r.Tuples, t) }

// Clone returns a deep copy of the relation. Algorithms that must not disturb
// caller-owned data (for example, benchmark harnesses reusing inputs) clone
// before running in-place phases.
func (r *Relation) Clone() *Relation {
	cp := make([]Tuple, len(r.Tuples))
	copy(cp, r.Tuples)
	return &Relation{Name: r.Name, Tuples: cp, Meta: r.Meta}
}

// MinMaxKey returns the minimum and maximum join key present in the relation.
// It returns ErrEmptyRelation for an empty relation.
func (r *Relation) MinMaxKey() (minKey, maxKey uint64, err error) {
	if len(r.Tuples) == 0 {
		return 0, 0, ErrEmptyRelation
	}
	minKey, maxKey = r.Tuples[0].Key, r.Tuples[0].Key
	for _, t := range r.Tuples[1:] {
		if t.Key < minKey {
			minKey = t.Key
		}
		if t.Key > maxKey {
			maxKey = t.Key
		}
	}
	return minKey, maxKey, nil
}

// String implements fmt.Stringer with a short diagnostic form.
func (r *Relation) String() string {
	return fmt.Sprintf("Relation{%s, %d tuples}", r.Name, len(r.Tuples))
}

// Chunk describes a contiguous region of a relation assigned to one worker.
type Chunk struct {
	// Worker is the index of the worker that owns this chunk.
	Worker int
	// Offset is the index of the first tuple of the chunk within the
	// relation's tuple slice.
	Offset int
	// Tuples aliases the relation storage for the chunk range.
	Tuples []Tuple
}

// Len reports the number of tuples in the chunk.
func (c Chunk) Len() int { return len(c.Tuples) }

// Split partitions the relation into n contiguous, almost equally sized
// chunks, one per worker. The first len(r) mod n chunks receive one extra
// tuple, so chunk sizes differ by at most one. Chunks alias the relation's
// storage; they do not copy.
//
// Split panics if n <= 0 to surface programming errors early, matching the
// behaviour of make with a negative size.
func (r *Relation) Split(n int) []Chunk {
	if n <= 0 {
		panic(fmt.Sprintf("relation: Split into %d chunks", n))
	}
	chunks := make([]Chunk, n)
	total := len(r.Tuples)
	base := total / n
	extra := total % n
	offset := 0
	for i := 0; i < n; i++ {
		size := base
		if i < extra {
			size++
		}
		chunks[i] = Chunk{
			Worker: i,
			Offset: offset,
			Tuples: r.Tuples[offset : offset+size],
		}
		offset += size
	}
	return chunks
}

// Run is a sorted sequence of tuples produced by a worker's local sort phase.
// Runs are the unit the MPSM join phase operates on: each worker merge joins
// its private run against all public runs.
type Run struct {
	// Worker is the index of the worker that produced the run.
	Worker int
	// Node is the simulated NUMA node the run's memory belongs to.
	Node int
	// Tuples are sorted by ascending key.
	Tuples []Tuple
}

// Len reports the number of tuples in the run.
func (r *Run) Len() int { return len(r.Tuples) }

// MinKey returns the smallest key of the run, or ok=false if the run is empty.
func (r *Run) MinKey() (key uint64, ok bool) {
	if len(r.Tuples) == 0 {
		return 0, false
	}
	return r.Tuples[0].Key, true
}

// MaxKey returns the largest key of the run, or ok=false if the run is empty.
func (r *Run) MaxKey() (key uint64, ok bool) {
	if len(r.Tuples) == 0 {
		return 0, false
	}
	return r.Tuples[len(r.Tuples)-1].Key, true
}

// IsSorted reports whether the run's tuples are in non-decreasing key order.
func (r *Run) IsSorted() bool { return IsSortedByKey(r.Tuples) }

// IsSortedByKey reports whether tuples are in non-decreasing key order.
func IsSortedByKey(tuples []Tuple) bool {
	for i := 1; i < len(tuples); i++ {
		if tuples[i].Key < tuples[i-1].Key {
			return false
		}
	}
	return true
}

// TotalLen sums the lengths of the given runs.
func TotalLen(runs []*Run) int {
	total := 0
	for _, r := range runs {
		total += r.Len()
	}
	return total
}

// KeyHistogram counts the number of tuples per key. It is intended for test
// helpers validating that an algorithm preserved the multiset of tuples.
func KeyHistogram(tuples []Tuple) map[uint64]int {
	h := make(map[uint64]int, len(tuples))
	for _, t := range tuples {
		h[t.Key]++
	}
	return h
}

// SameMultiset reports whether two tuple slices contain the same multiset of
// (key, payload) pairs. It is O(n) space and intended for tests.
func SameMultiset(a, b []Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	counts := make(map[Tuple]int, len(a))
	for _, t := range a {
		counts[t]++
	}
	for _, t := range b {
		counts[t]--
		if counts[t] < 0 {
			return false
		}
	}
	return true
}
