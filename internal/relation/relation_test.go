package relation

import (
	"testing"
	"testing/quick"
)

func TestNewAndLen(t *testing.T) {
	r := New("r", []Tuple{{1, 10}, {2, 20}})
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if r.Name != "r" {
		t.Fatalf("Name = %q, want r", r.Name)
	}
}

func TestNewWithCapacity(t *testing.T) {
	r := NewWithCapacity("r", 16)
	if r.Len() != 0 {
		t.Fatalf("Len = %d, want 0", r.Len())
	}
	if cap(r.Tuples) != 16 {
		t.Fatalf("cap = %d, want 16", cap(r.Tuples))
	}
	r.Append(Tuple{5, 50})
	if r.Len() != 1 || r.Tuples[0].Key != 5 {
		t.Fatalf("after Append: %+v", r.Tuples)
	}
}

func TestClone(t *testing.T) {
	r := New("orig", []Tuple{{1, 10}, {2, 20}})
	c := r.Clone()
	c.Tuples[0].Key = 99
	if r.Tuples[0].Key != 1 {
		t.Fatal("Clone did not deep copy tuples")
	}
	if c.Name != "orig" {
		t.Fatalf("Clone name = %q", c.Name)
	}
}

func TestMinMaxKey(t *testing.T) {
	tests := []struct {
		name     string
		tuples   []Tuple
		min, max uint64
		wantErr  bool
	}{
		{"empty", nil, 0, 0, true},
		{"single", []Tuple{{7, 0}}, 7, 7, false},
		{"ascending", []Tuple{{1, 0}, {2, 0}, {9, 0}}, 1, 9, false},
		{"descending", []Tuple{{9, 0}, {2, 0}, {1, 0}}, 1, 9, false},
		{"duplicates", []Tuple{{4, 0}, {4, 0}, {4, 0}}, 4, 4, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			r := New(tc.name, tc.tuples)
			minKey, maxKey, err := r.MinMaxKey()
			if tc.wantErr {
				if err == nil {
					t.Fatal("want error, got nil")
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if minKey != tc.min || maxKey != tc.max {
				t.Fatalf("MinMaxKey = (%d, %d), want (%d, %d)", minKey, maxKey, tc.min, tc.max)
			}
		})
	}
}

func TestSplitSizes(t *testing.T) {
	for _, total := range []int{0, 1, 2, 3, 7, 8, 100, 101} {
		for _, n := range []int{1, 2, 3, 4, 7, 32} {
			tuples := make([]Tuple, total)
			for i := range tuples {
				tuples[i].Key = uint64(i)
			}
			r := New("r", tuples)
			chunks := r.Split(n)
			if len(chunks) != n {
				t.Fatalf("Split(%d) over %d tuples: got %d chunks", n, total, len(chunks))
			}
			sum := 0
			prevEnd := 0
			minSize, maxSize := total, 0
			for i, c := range chunks {
				if c.Worker != i {
					t.Fatalf("chunk %d worker = %d", i, c.Worker)
				}
				if c.Offset != prevEnd {
					t.Fatalf("chunk %d offset = %d, want %d", i, c.Offset, prevEnd)
				}
				prevEnd = c.Offset + c.Len()
				sum += c.Len()
				if c.Len() < minSize {
					minSize = c.Len()
				}
				if c.Len() > maxSize {
					maxSize = c.Len()
				}
			}
			if sum != total {
				t.Fatalf("chunks cover %d tuples, want %d", sum, total)
			}
			if maxSize-minSize > 1 {
				t.Fatalf("chunk sizes unbalanced: min %d max %d", minSize, maxSize)
			}
		}
	}
}

func TestSplitAliasesStorage(t *testing.T) {
	r := New("r", []Tuple{{1, 0}, {2, 0}, {3, 0}, {4, 0}})
	chunks := r.Split(2)
	chunks[1].Tuples[0].Payload = 42
	if r.Tuples[2].Payload != 42 {
		t.Fatal("Split chunks should alias relation storage")
	}
}

func TestSplitPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Split(0) should panic")
		}
	}()
	New("r", nil).Split(0)
}

func TestRunMinMaxKey(t *testing.T) {
	empty := &Run{}
	if _, ok := empty.MinKey(); ok {
		t.Fatal("empty run MinKey ok = true")
	}
	if _, ok := empty.MaxKey(); ok {
		t.Fatal("empty run MaxKey ok = true")
	}
	run := &Run{Tuples: []Tuple{{3, 0}, {5, 0}, {9, 0}}}
	if k, ok := run.MinKey(); !ok || k != 3 {
		t.Fatalf("MinKey = %d, %v", k, ok)
	}
	if k, ok := run.MaxKey(); !ok || k != 9 {
		t.Fatalf("MaxKey = %d, %v", k, ok)
	}
	if !run.IsSorted() {
		t.Fatal("run should be sorted")
	}
}

func TestIsSortedByKey(t *testing.T) {
	if !IsSortedByKey(nil) {
		t.Fatal("nil slice should be sorted")
	}
	if !IsSortedByKey([]Tuple{{1, 0}}) {
		t.Fatal("single tuple should be sorted")
	}
	if !IsSortedByKey([]Tuple{{1, 0}, {1, 5}, {2, 0}}) {
		t.Fatal("non-decreasing keys should be sorted")
	}
	if IsSortedByKey([]Tuple{{2, 0}, {1, 0}}) {
		t.Fatal("decreasing keys should not be sorted")
	}
}

func TestTotalLen(t *testing.T) {
	runs := []*Run{
		{Tuples: make([]Tuple, 3)},
		{Tuples: make([]Tuple, 0)},
		{Tuples: make([]Tuple, 5)},
	}
	if got := TotalLen(runs); got != 8 {
		t.Fatalf("TotalLen = %d, want 8", got)
	}
}

func TestKeyHistogram(t *testing.T) {
	h := KeyHistogram([]Tuple{{1, 0}, {1, 1}, {2, 0}})
	if h[1] != 2 || h[2] != 1 || len(h) != 2 {
		t.Fatalf("KeyHistogram = %v", h)
	}
}

func TestSameMultiset(t *testing.T) {
	a := []Tuple{{1, 10}, {2, 20}, {1, 10}}
	b := []Tuple{{2, 20}, {1, 10}, {1, 10}}
	if !SameMultiset(a, b) {
		t.Fatal("permutations should be the same multiset")
	}
	c := []Tuple{{1, 10}, {2, 20}, {1, 11}}
	if SameMultiset(a, c) {
		t.Fatal("different payloads should not be the same multiset")
	}
	if SameMultiset(a, a[:2]) {
		t.Fatal("different lengths should not be the same multiset")
	}
}

func TestSameMultisetProperty(t *testing.T) {
	// Property: any permutation of a tuple slice is the same multiset.
	f := func(keys []uint64) bool {
		tuples := make([]Tuple, len(keys))
		for i, k := range keys {
			tuples[i] = Tuple{Key: k, Payload: uint64(i)}
		}
		reversed := make([]Tuple, len(tuples))
		for i, t := range tuples {
			reversed[len(tuples)-1-i] = t
		}
		return SameMultiset(tuples, reversed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringForm(t *testing.T) {
	r := New("orders", make([]Tuple, 3))
	want := "Relation{orders, 3 tuples}"
	if got := r.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}
