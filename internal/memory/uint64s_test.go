package memory

import "testing"

func TestUint64sLeaseAndPoolReuse(t *testing.T) {
	var nilLease *Lease
	if got := nilLease.Uint64s(5); len(got) != 5 {
		t.Fatalf("nil lease Uint64s(5) len = %d", len(got))
	}
	nilLease.PutUint64s(nil)

	p := NewPool(1 << 20)
	l := p.Acquire()
	if got := l.Uint64s(0); got != nil {
		t.Fatalf("Uint64s(0) = %v, want nil", got)
	}
	l.PutUint64s(nil) // no-op

	// Intra-lease: a returned column must come back from the free list.
	a := l.Uint64s(1000)
	if len(a) != 1000 {
		t.Fatalf("len = %d, want 1000", len(a))
	}
	a[0] = 7
	l.PutUint64s(a)
	b := l.Uint64s(900) // same size class
	if &a[0] != &b[0] {
		t.Fatal("PutUint64s buffer was not reused by the same lease")
	}
	l.Release()

	// Cross-lease: the released buffer must flow through the pool.
	l2 := p.Acquire()
	c := l2.Uint64s(1000)
	if &c[0] != &a[0] {
		t.Fatal("released Uint64s buffer was not reused by the next lease")
	}
	l2.Release()
}
