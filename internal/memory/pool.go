// Package memory provides the engine-wide scratch pool that makes the join
// hot path allocation-free in steady state.
//
// Every join execution allocates the same family of buffers: run and
// partition tuple arrays sized by the input, histogram and cursor integer
// arrays sized by the radix granularity, and hash-table slot arrays sized by
// the build side. Under sustained load ("heavy traffic from millions of
// users", per the ROADMAP) those allocations dominate GC work — the engine is
// GC-bound rather than hardware-bound, exactly the drift away from
// hardware-conscious main-memory design the paper argues against.
//
// A Pool is a size-classed arena of reusable buffers owned by an Engine. Each
// join checks out a Lease, draws all its scratch buffers from it (concurrently
// from all workers), and releases the lease when the join finishes; released
// buffers are reset, not freed, so the next join reuses the same memory. The
// pool is safe for concurrent joins: the shared free lists are mutex-guarded,
// and every lease additionally keeps its own free lists so that intra-join
// reuse (for example, per-partition hash tables in the radix join) bypasses
// the shared lock.
//
// All methods are nil-safe on both *Pool and *Lease: a nil receiver degrades
// to plain make(), so call sites thread a lease unconditionally and the pool
// remains strictly opt-in.
package memory

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/relation"
)

// ErrOverCommitted is returned by Reserve when granting the reservation would
// push the outstanding admission reservations past the pool's reserve limit.
// Callers distinguish "queue and retry later" from "can never fit" by
// comparing the requested bytes against ReserveLimit themselves.
var ErrOverCommitted = errors.New("memory: reservation exceeds the pool's admission limit")

// DefaultLimitBytes is the default cap on bytes parked in a pool's free
// lists: 512 MiB, enough to keep the working set of repeated joins over
// multi-hundred-MB inputs fully pooled while bounding the memory a bursty
// workload can strand.
const DefaultLimitBytes = 512 << 20

const (
	tupleSize  = 16 // unsafe.Sizeof(relation.Tuple{})
	intSize    = 8
	int32Size  = 4
	uint64Size = 8
)

// Pool is a size-classed scratch-buffer pool shared by all joins of one
// Engine. The zero value is not usable; create pools with NewPool. A nil
// *Pool is valid and disables pooling.
type Pool struct {
	mu      sync.Mutex
	limit   int64
	held    int64 // bytes currently parked in free lists
	tuples  [classCount][][]relation.Tuple
	ints    [classCount][][]int
	int32s  [classCount][][]int32
	uint64s [classCount][][]uint64
	stats   PoolStats

	// Admission-control state: outstanding per-query reservations against
	// reserveLimit, and the set of checked-out leases for per-query
	// attribution in Stats.
	reserveLimit int64
	reserved     int64
	resv         map[*Reservation]struct{}
	leases       map[*Lease]struct{}
}

// classCount covers size classes up to 2^62 elements; class c holds buffers
// with capacity exactly 2^c.
const classCount = 63

// PoolStats are cumulative counters of a pool's behaviour.
type PoolStats struct {
	// Gets is the number of buffer requests served (across all leases).
	Gets uint64
	// Hits is how many requests were served from a free list.
	Hits uint64
	// Misses is how many requests had to allocate fresh memory.
	Misses uint64
	// Discards is how many released buffers were dropped because the pool
	// limit was reached.
	Discards uint64
	// HeldBytes is the number of bytes currently parked in free lists.
	HeldBytes int64
	// PeakHeldBytes is the high-water mark of HeldBytes.
	PeakHeldBytes int64
	// PoisonedLeases counts leases released after being poisoned (their
	// query panicked); their buffers were quarantined rather than parked.
	PoisonedLeases uint64
	// QuarantinedBytes is the total capacity of quarantined buffers — memory
	// handed back to the garbage collector instead of the free lists because
	// a panicking query may have left it in an undefined state.
	QuarantinedBytes int64

	// ReservedBytes is the total of outstanding admission reservations
	// (Reserve minus Release), the number the serving layer's admission
	// decisions are made against.
	ReservedBytes int64
	// ReserveLimit is the cap ReservedBytes may not exceed.
	ReserveLimit int64
	// ActiveLeases is the number of leases currently checked out.
	ActiveLeases int
	// Queries attributes reserved and in-use bytes to each active query
	// (reservation label), so admission decisions and pool observation agree
	// under concurrency. Only labeled reservations/leases appear here.
	Queries []QueryMemory
}

// QueryMemory is the per-query memory attribution of one active reservation
// label: what the query reserved at admission and what its leases actually
// have checked out right now.
type QueryMemory struct {
	// Label identifies the query (the admission controller's query ID).
	Label string
	// ReservedBytes is the sum of the label's outstanding reservations.
	ReservedBytes int64
	// InUseBytes is the total capacity currently checked out by the label's
	// active leases (buffers drawn from the pool or freshly allocated, not
	// yet returned by Release).
	InUseBytes int64
	// Leases is the number of the label's active leases.
	Leases int
}

// NewPool creates a scratch pool whose free lists hold at most limitBytes
// bytes; limitBytes <= 0 selects DefaultLimitBytes.
func NewPool(limitBytes int64) *Pool {
	if limitBytes <= 0 {
		limitBytes = DefaultLimitBytes
	}
	return &Pool{limit: limitBytes, reserveLimit: limitBytes}
}

// SetReserveLimit caps the bytes admission reservations may hold outstanding;
// bytes <= 0 resets the cap to the pool's parked-byte limit. It is intended
// to be called once, before the pool serves queries.
func (p *Pool) SetReserveLimit(bytes int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if bytes <= 0 {
		bytes = p.limit
	}
	p.reserveLimit = bytes
}

// ReserveLimit returns the admission reservation cap.
func (p *Pool) ReserveLimit() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reserveLimit
}

// Reservation is one query's admission budget, carved out of the pool at
// admission time and released when the query completes. Leases acquired with
// AcquireFor are attributed to the reservation's label in Stats.
type Reservation struct {
	pool     *Pool
	label    string
	bytes    int64
	released bool // guarded by pool.mu
}

// Label returns the reservation's query label.
func (r *Reservation) Label() string {
	if r == nil {
		return ""
	}
	return r.label
}

// Bytes returns the reserved byte count.
func (r *Reservation) Bytes() int64 {
	if r == nil {
		return 0
	}
	return r.bytes
}

// Reserve carves bytes out of the pool's admission budget for the query
// identified by label. It never blocks: when the reservation does not fit
// under the reserve limit it returns ErrOverCommitted and the caller decides
// whether to queue (the admission controller's job) or reject. A nil pool
// grants a detached reservation that tracks nothing.
func (p *Pool) Reserve(label string, bytes int64) (*Reservation, error) {
	if bytes < 0 {
		bytes = 0
	}
	if p == nil {
		return &Reservation{label: label, bytes: bytes}, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.reserved+bytes > p.reserveLimit {
		return nil, ErrOverCommitted
	}
	r := &Reservation{pool: p, label: label, bytes: bytes}
	p.reserved += bytes
	if p.resv == nil {
		p.resv = make(map[*Reservation]struct{})
	}
	p.resv[r] = struct{}{}
	return r, nil
}

// Release returns the reservation's bytes to the admission budget. It is
// idempotent and safe on a nil reservation.
func (r *Reservation) Release() {
	if r == nil || r.pool == nil {
		return
	}
	p := r.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	if r.released {
		return
	}
	r.released = true
	p.reserved -= r.bytes
	delete(p.resv, r)
}

// Acquire checks out a lease for one join execution. A nil pool returns a nil
// lease, whose methods degrade to plain allocation.
func (p *Pool) Acquire() *Lease { return p.AcquireFor(nil) }

// AcquireFor is Acquire with the lease attributed to a query's admission
// reservation: the lease's checked-out bytes appear under the reservation's
// label in Stats. A nil reservation yields an unattributed lease.
func (p *Pool) AcquireFor(res *Reservation) *Lease {
	if p == nil {
		return nil
	}
	l := &Lease{pool: p, owner: res}
	p.mu.Lock()
	if p.leases == nil {
		p.leases = make(map[*Lease]struct{})
	}
	p.leases[l] = struct{}{}
	p.mu.Unlock()
	return l
}

// Stats returns a snapshot of the pool's counters, including the per-query
// attribution of active reservations and leases. The lease footprints are
// gathered outside the pool lock (leases lock pool inside their own locks on
// the hot path, so the reverse order here would deadlock); a snapshot is
// therefore consistent per lease, not across leases.
func (p *Pool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	p.mu.Lock()
	s := p.stats
	s.HeldBytes = p.held
	s.ReservedBytes = p.reserved
	s.ReserveLimit = p.reserveLimit
	s.ActiveLeases = len(p.leases)
	queries := make(map[string]*QueryMemory)
	for r := range p.resv {
		q := queries[r.label]
		if q == nil {
			q = &QueryMemory{Label: r.label}
			queries[r.label] = q
		}
		q.ReservedBytes += r.bytes
	}
	leases := make([]*Lease, 0, len(p.leases))
	for l := range p.leases {
		leases = append(leases, l)
	}
	p.mu.Unlock()

	for _, l := range leases {
		label, footprint, ok := l.attribution()
		if !ok {
			continue
		}
		q := queries[label]
		if q == nil {
			q = &QueryMemory{Label: label}
			queries[label] = q
		}
		q.InUseBytes += footprint
		q.Leases++
	}
	for _, q := range queries {
		s.Queries = append(s.Queries, *q)
	}
	sort.Slice(s.Queries, func(i, j int) bool { return s.Queries[i].Label < s.Queries[j].Label })
	return s
}

// sizeClass returns the class index for a requested element count: the
// smallest power of two >= n. n must be > 0.
func sizeClass(n int) int {
	return bits.Len(uint(n - 1))
}

// LeaseStats summarize the scratch traffic of one join execution; the join's
// Result reports them.
type LeaseStats struct {
	// Buffers is the number of scratch buffers the join requested.
	Buffers int
	// Reused is how many of those were served from pool or lease free lists
	// rather than freshly allocated.
	Reused int
	// Bytes is the total capacity handed out, in bytes.
	Bytes int64
}

// Lease is one join execution's checkout of scratch buffers. All Get methods
// may be called concurrently from the join's workers; Release must be called
// exactly once, after the join's final barrier, and returns every buffer to
// the pool at once. A nil *Lease is valid and allocates plainly.
type Lease struct {
	pool   *Pool
	owner  *Reservation // admission reservation this lease is attributed to, or nil
	faults *faultinject.Set
	mu     sync.Mutex
	// poisoned marks the lease's buffers as possibly mid-write garbage from a
	// panicked query; Release quarantines them instead of parking them.
	poisoned bool
	// all tracks every buffer checked out from the pool or freshly
	// allocated, for bulk return on Release.
	allTuples  [][]relation.Tuple
	allInts    [][]int
	allInt32s  [][]int32
	allUint64s [][]uint64
	// free lists hold buffers handed back early via Put* for intra-join
	// reuse; the buffers remain tracked in the all lists.
	freeTuples  [classCount][][]relation.Tuple
	freeInts    [classCount][][]int
	freeInt32s  [classCount][][]int32
	freeUint64s [classCount][][]uint64
	stats       LeaseStats
}

// InjectFaults arms the lease's allocation fault-injection point and returns
// the lease for chaining. Safe on a nil lease or nil set.
func (l *Lease) InjectFaults(f *faultinject.Set) *Lease {
	if l != nil {
		l.faults = f
	}
	return l
}

// Poison marks the lease as belonging to a failed (panicked) query: its
// buffers may hold partially-written garbage or still be referenced from a
// dying goroutine's stack, so Release will quarantine them — hand them to the
// garbage collector and retire the lease — rather than park them for reuse.
// Idempotent, safe on a nil lease.
func (l *Lease) Poison() {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.poisoned = true
	l.mu.Unlock()
}

// Stats returns the lease's traffic counters. Safe on a nil lease (all
// zeros).
func (l *Lease) Stats() LeaseStats {
	if l == nil {
		return LeaseStats{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Tuples returns a tuple buffer of length n. The contents are unspecified —
// callers must fully overwrite the buffer (run copies, scatters and hash
// inserts all do).
func (l *Lease) Tuples(n int) []relation.Tuple {
	if l == nil {
		return make([]relation.Tuple, n)
	}
	if n == 0 {
		return nil
	}
	// The injection must fire before taking l.mu: a panic while holding the
	// lease lock would deadlock the deferred Release. Poison first, so the
	// unwinding Release quarantines this lease no matter which goroutine
	// the allocation ran on (a worker's panic also poisons via sched, but a
	// coordinator-side allocation between phases unwinds straight through
	// the lease's own deferred Release).
	if l.faults.Should(faultinject.LeaseAlloc) {
		l.Poison()
		panic(&faultinject.Injected{Point: faultinject.LeaseAlloc})
	}
	c := sizeClass(n)
	l.mu.Lock()
	if list := l.freeTuples[c]; len(list) > 0 {
		buf := list[len(list)-1]
		l.freeTuples[c] = list[:len(list)-1]
		l.note(c, tupleSize, true)
		l.mu.Unlock()
		return buf[:n]
	}
	buf, hit := l.pool.getTuples(c)
	if !hit {
		buf = make([]relation.Tuple, 1<<c)
	}
	l.allTuples = append(l.allTuples, buf)
	l.note(c, tupleSize, hit)
	l.mu.Unlock()
	return buf[:n]
}

// Ints returns a zeroed int buffer of length n, ready for use as a histogram
// or cursor array.
func (l *Lease) Ints(n int) []int {
	if l == nil {
		return make([]int, n)
	}
	if n == 0 {
		return nil
	}
	c := sizeClass(n)
	l.mu.Lock()
	var buf []int
	hit := true
	if list := l.freeInts[c]; len(list) > 0 {
		buf = list[len(list)-1]
		l.freeInts[c] = list[:len(list)-1]
	} else {
		buf, hit = l.pool.getInts(c)
		if !hit {
			buf = make([]int, 1<<c)
		}
		l.allInts = append(l.allInts, buf)
	}
	l.note(c, intSize, hit)
	l.mu.Unlock()
	buf = buf[:n]
	if hit {
		clear(buf)
	}
	return buf
}

// Int32s returns an int32 buffer of length n. The contents are unspecified —
// callers initialize hash-slot arrays to their empty marker anyway.
func (l *Lease) Int32s(n int) []int32 {
	if l == nil {
		return make([]int32, n)
	}
	if n == 0 {
		return nil
	}
	c := sizeClass(n)
	l.mu.Lock()
	defer l.mu.Unlock()
	if list := l.freeInt32s[c]; len(list) > 0 {
		buf := list[len(list)-1]
		l.freeInt32s[c] = list[:len(list)-1]
		l.note(c, int32Size, true)
		return buf[:n]
	}
	buf, hit := l.pool.getInt32s(c)
	if !hit {
		buf = make([]int32, 1<<c)
	}
	l.allInt32s = append(l.allInt32s, buf)
	l.note(c, int32Size, hit)
	return buf[:n]
}

// Uint64s returns a uint64 buffer of length n, the element type of the
// columnar batch layer's key and payload columns. The contents are
// unspecified — callers fully overwrite the buffer (column scatters, sorts
// and gathers all do).
func (l *Lease) Uint64s(n int) []uint64 {
	if l == nil {
		return make([]uint64, n)
	}
	if n == 0 {
		return nil
	}
	c := sizeClass(n)
	l.mu.Lock()
	defer l.mu.Unlock()
	if list := l.freeUint64s[c]; len(list) > 0 {
		buf := list[len(list)-1]
		l.freeUint64s[c] = list[:len(list)-1]
		l.note(c, uint64Size, true)
		return buf[:n]
	}
	buf, hit := l.pool.getUint64s(c)
	if !hit {
		buf = make([]uint64, 1<<c)
	}
	l.allUint64s = append(l.allUint64s, buf)
	l.note(c, uint64Size, hit)
	return buf[:n]
}

// note updates the lease counters; the caller holds l.mu.
func (l *Lease) note(class int, elemSize int64, reused bool) {
	l.stats.Buffers++
	if reused {
		l.stats.Reused++
	}
	l.stats.Bytes += (int64(1) << class) * elemSize
}

// attribution reports the lease's owning query label and its in-use bytes —
// the total capacity of every buffer currently checked out, whether drawn from
// the pool or freshly allocated. ok is false for unattributed leases.
func (l *Lease) attribution() (label string, footprint int64, ok bool) {
	if l.owner == nil {
		return "", 0, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, buf := range l.allTuples {
		footprint += int64(cap(buf)) * tupleSize
	}
	for _, buf := range l.allInts {
		footprint += int64(cap(buf)) * intSize
	}
	for _, buf := range l.allInt32s {
		footprint += int64(cap(buf)) * int32Size
	}
	for _, buf := range l.allUint64s {
		footprint += int64(cap(buf)) * uint64Size
	}
	return l.owner.label, footprint, true
}

// PutTuples hands a buffer obtained from Tuples back to the lease for reuse
// within the same join (the buffer is still returned to the pool on Release).
// No-op on a nil lease or nil buffer.
func (l *Lease) PutTuples(buf []relation.Tuple) {
	if l == nil || cap(buf) == 0 {
		return
	}
	c := exactClass(cap(buf))
	if c < 0 {
		return
	}
	l.mu.Lock()
	l.freeTuples[c] = append(l.freeTuples[c], buf[:cap(buf)])
	l.mu.Unlock()
}

// PutInts is PutTuples for int buffers.
func (l *Lease) PutInts(buf []int) {
	if l == nil || cap(buf) == 0 {
		return
	}
	c := exactClass(cap(buf))
	if c < 0 {
		return
	}
	l.mu.Lock()
	l.freeInts[c] = append(l.freeInts[c], buf[:cap(buf)])
	l.mu.Unlock()
}

// PutInt32s is PutTuples for int32 buffers.
func (l *Lease) PutInt32s(buf []int32) {
	if l == nil || cap(buf) == 0 {
		return
	}
	c := exactClass(cap(buf))
	if c < 0 {
		return
	}
	l.mu.Lock()
	l.freeInt32s[c] = append(l.freeInt32s[c], buf[:cap(buf)])
	l.mu.Unlock()
}

// PutUint64s is PutTuples for uint64 buffers.
func (l *Lease) PutUint64s(buf []uint64) {
	if l == nil || cap(buf) == 0 {
		return
	}
	c := exactClass(cap(buf))
	if c < 0 {
		return
	}
	l.mu.Lock()
	l.freeUint64s[c] = append(l.freeUint64s[c], buf[:cap(buf)])
	l.mu.Unlock()
}

// exactClass returns the size class of a capacity that must be a power of two
// (as all pool buffers are), or -1 for foreign buffers, which are silently
// dropped rather than poisoning a class with an undersized buffer.
func exactClass(capacity int) int {
	if capacity&(capacity-1) != 0 {
		return -1
	}
	return bits.Len(uint(capacity)) - 1
}

// Release returns every buffer of the lease to the pool, subject to the
// pool's byte limit. It must only be called after all workers of the join
// have passed their final barrier; the buffers' contents become invalid. Safe
// on a nil lease.
func (l *Lease) Release() {
	if l == nil {
		return
	}
	l.mu.Lock()
	poisoned := l.poisoned
	tuples, ints, int32s, uint64s := l.allTuples, l.allInts, l.allInt32s, l.allUint64s
	l.allTuples, l.allInts, l.allInt32s, l.allUint64s = nil, nil, nil, nil
	for c := range l.freeTuples {
		l.freeTuples[c], l.freeInts[c], l.freeInt32s[c], l.freeUint64s[c] = nil, nil, nil, nil
	}
	l.mu.Unlock()
	if poisoned {
		l.pool.quarantine(l, tuples, ints, int32s, uint64s)
		return
	}
	l.pool.put(l, tuples, ints, int32s, uint64s)
}

// quarantine retires a poisoned lease without parking any of its buffers:
// the lease leaves the active set (so reservations and lease counts do not
// leak), the buffers go to the garbage collector, and the quarantine counters
// record the event for the pool-integrity audit.
func (p *Pool) quarantine(l *Lease, tuples [][]relation.Tuple, ints [][]int, int32s [][]int32, uint64s [][]uint64) {
	var bytes int64
	for _, buf := range tuples {
		bytes += int64(cap(buf)) * tupleSize
	}
	for _, buf := range ints {
		bytes += int64(cap(buf)) * intSize
	}
	for _, buf := range int32s {
		bytes += int64(cap(buf)) * int32Size
	}
	for _, buf := range uint64s {
		bytes += int64(cap(buf)) * uint64Size
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.leases, l)
	p.stats.PoisonedLeases++
	p.stats.QuarantinedBytes += bytes
}

// CheckIntegrity audits the pool's internal accounting: every parked buffer
// sits in its exact size class, the parked-byte counter matches the free
// lists, the byte limit holds, and the outstanding-reservation counter
// matches the live reservations. It returns nil when the pool is consistent;
// the chaos suite runs it after absorbing injected faults. Safe on a nil
// pool.
func (p *Pool) CheckIntegrity() error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var held int64
	for c := 0; c < classCount; c++ {
		for _, buf := range p.tuples[c] {
			if cap(buf) != 1<<c {
				return fmt.Errorf("memory: tuple buffer of capacity %d parked in class %d", cap(buf), c)
			}
			held += int64(cap(buf)) * tupleSize
		}
		for _, buf := range p.ints[c] {
			if cap(buf) != 1<<c {
				return fmt.Errorf("memory: int buffer of capacity %d parked in class %d", cap(buf), c)
			}
			held += int64(cap(buf)) * intSize
		}
		for _, buf := range p.int32s[c] {
			if cap(buf) != 1<<c {
				return fmt.Errorf("memory: int32 buffer of capacity %d parked in class %d", cap(buf), c)
			}
			held += int64(cap(buf)) * int32Size
		}
		for _, buf := range p.uint64s[c] {
			if cap(buf) != 1<<c {
				return fmt.Errorf("memory: uint64 buffer of capacity %d parked in class %d", cap(buf), c)
			}
			held += int64(cap(buf)) * uint64Size
		}
	}
	if held != p.held {
		return fmt.Errorf("memory: parked-byte accounting drifted: tracked %d bytes, free lists hold %d", p.held, held)
	}
	if p.held > p.limit {
		return fmt.Errorf("memory: parked bytes %d exceed the pool limit %d", p.held, p.limit)
	}
	var reserved int64
	for r := range p.resv {
		reserved += r.bytes
	}
	if reserved != p.reserved {
		return fmt.Errorf("memory: reservation accounting drifted: tracked %d bytes, live reservations hold %d", p.reserved, reserved)
	}
	if p.reserved > p.reserveLimit {
		return fmt.Errorf("memory: reserved bytes %d exceed the admission limit %d", p.reserved, p.reserveLimit)
	}
	return nil
}

// getTuples pops a tuple buffer of the class from the shared free list.
func (p *Pool) getTuples(c int) ([]relation.Tuple, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Gets++
	if list := p.tuples[c]; len(list) > 0 {
		buf := list[len(list)-1]
		p.tuples[c] = list[:len(list)-1]
		p.held -= int64(cap(buf)) * tupleSize
		p.stats.Hits++
		return buf, true
	}
	p.stats.Misses++
	return nil, false
}

// getInts pops an int buffer of the class from the shared free list.
func (p *Pool) getInts(c int) ([]int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Gets++
	if list := p.ints[c]; len(list) > 0 {
		buf := list[len(list)-1]
		p.ints[c] = list[:len(list)-1]
		p.held -= int64(cap(buf)) * intSize
		p.stats.Hits++
		return buf, true
	}
	p.stats.Misses++
	return nil, false
}

// getInt32s pops an int32 buffer of the class from the shared free list.
func (p *Pool) getInt32s(c int) ([]int32, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Gets++
	if list := p.int32s[c]; len(list) > 0 {
		buf := list[len(list)-1]
		p.int32s[c] = list[:len(list)-1]
		p.held -= int64(cap(buf)) * int32Size
		p.stats.Hits++
		return buf, true
	}
	p.stats.Misses++
	return nil, false
}

// getUint64s pops a uint64 buffer of the class from the shared free list.
func (p *Pool) getUint64s(c int) ([]uint64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Gets++
	if list := p.uint64s[c]; len(list) > 0 {
		buf := list[len(list)-1]
		p.uint64s[c] = list[:len(list)-1]
		p.held -= int64(cap(buf)) * uint64Size
		p.stats.Hits++
		return buf, true
	}
	p.stats.Misses++
	return nil, false
}

// put returns a lease's batch of buffers to the free lists, dropping buffers
// beyond the byte limit so the garbage collector reclaims them, and retires
// the lease from the active set.
func (p *Pool) put(l *Lease, tuples [][]relation.Tuple, ints [][]int, int32s [][]int32, uint64s [][]uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.leases, l)
	for _, buf := range tuples {
		size := int64(cap(buf)) * tupleSize
		if p.held+size > p.limit {
			p.stats.Discards++
			continue
		}
		c := exactClass(cap(buf))
		p.tuples[c] = append(p.tuples[c], buf[:cap(buf)])
		p.held += size
	}
	for _, buf := range ints {
		size := int64(cap(buf)) * intSize
		if p.held+size > p.limit {
			p.stats.Discards++
			continue
		}
		c := exactClass(cap(buf))
		p.ints[c] = append(p.ints[c], buf[:cap(buf)])
		p.held += size
	}
	for _, buf := range int32s {
		size := int64(cap(buf)) * int32Size
		if p.held+size > p.limit {
			p.stats.Discards++
			continue
		}
		c := exactClass(cap(buf))
		p.int32s[c] = append(p.int32s[c], buf[:cap(buf)])
		p.held += size
	}
	for _, buf := range uint64s {
		size := int64(cap(buf)) * uint64Size
		if p.held+size > p.limit {
			p.stats.Discards++
			continue
		}
		c := exactClass(cap(buf))
		p.uint64s[c] = append(p.uint64s[c], buf[:cap(buf)])
		p.held += size
	}
	if p.held > p.stats.PeakHeldBytes {
		p.stats.PeakHeldBytes = p.held
	}
}
