package memory

import (
	"errors"
	"testing"

	"repro/internal/faultinject"
)

func TestPoisonedLeaseQuarantinesBuffers(t *testing.T) {
	p := NewPool(1 << 24)
	l := p.Acquire()
	l.Tuples(1000)
	l.Ints(500)
	l.Poison()
	l.Release()

	st := p.Stats()
	if st.PoisonedLeases != 1 {
		t.Fatalf("PoisonedLeases = %d, want 1", st.PoisonedLeases)
	}
	if st.QuarantinedBytes == 0 {
		t.Fatal("quarantined lease reported zero quarantined bytes")
	}
	if st.ActiveLeases != 0 {
		t.Fatalf("ActiveLeases = %d after release", st.ActiveLeases)
	}
	if err := p.CheckIntegrity(); err != nil {
		t.Fatalf("pool integrity after quarantine: %v", err)
	}

	// A fresh lease must not see the poisoned lease's buffers: everything
	// it draws comes from clean free lists or fresh allocation.
	l2 := p.Acquire()
	buf := l2.Tuples(1000)
	if len(buf) != 1000 {
		t.Fatalf("fresh draw returned %d tuples", len(buf))
	}
	if l2.Stats().Reused != 0 {
		t.Fatal("fresh lease reused a buffer that should be quarantined")
	}
	l2.Release()
	if err := p.CheckIntegrity(); err != nil {
		t.Fatalf("pool integrity after clean reuse: %v", err)
	}
}

func TestHealthyLeaseStillRecycles(t *testing.T) {
	p := NewPool(1 << 24)
	l := p.Acquire()
	l.Tuples(1000)
	l.Release()
	l2 := p.Acquire()
	l2.Tuples(1000)
	if l2.Stats().Reused != 1 {
		t.Fatalf("healthy release did not recycle: reused = %d", l2.Stats().Reused)
	}
	l2.Release()
}

func TestPoisonNilSafe(t *testing.T) {
	var l *Lease
	l.Poison() // must not panic
	l.Release()
}

func TestInjectedLeaseAllocPanics(t *testing.T) {
	p := NewPool(1 << 24)
	f := faultinject.New(5).Enable(faultinject.LeaseAlloc, 1)
	l := p.Acquire().InjectFaults(f)
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("injected lease allocation did not panic")
			}
			var inj *faultinject.Injected
			if err, ok := r.(error); !ok || !errors.As(err, &inj) || inj.Point != faultinject.LeaseAlloc {
				t.Fatalf("panic value %v is not Injected{LeaseAlloc}", r)
			}
		}()
		l.Tuples(100)
	}()
	// The recovery path poisons and releases; the pool must stay coherent.
	l.Poison()
	l.Release()
	if err := p.CheckIntegrity(); err != nil {
		t.Fatalf("pool integrity after injected alloc failure: %v", err)
	}
	if p.Stats().PoisonedLeases != 1 {
		t.Fatalf("PoisonedLeases = %d", p.Stats().PoisonedLeases)
	}
}

func TestCheckIntegrityDetectsCorruptedFreeList(t *testing.T) {
	p := NewPool(1 << 24)
	l := p.Acquire()
	l.Tuples(100)
	l.Release()
	// Corrupt a parked buffer's capacity by replacing it with a wrong-class
	// slice; the audit must notice.
	p.mu.Lock()
	for c := range p.tuples {
		if len(p.tuples[c]) > 0 {
			p.tuples[c][0] = p.tuples[c][0][:0:1]
			break
		}
	}
	p.mu.Unlock()
	if err := p.CheckIntegrity(); err == nil {
		t.Fatal("CheckIntegrity missed a corrupted free-list buffer")
	}
}

func TestCheckIntegrityNilPool(t *testing.T) {
	var p *Pool
	if err := p.CheckIntegrity(); err != nil {
		t.Fatalf("nil pool integrity: %v", err)
	}
}
