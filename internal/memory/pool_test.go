package memory

import (
	"sync"
	"testing"

	"repro/internal/relation"
)

func TestNilPoolAndLeaseDegradeToMake(t *testing.T) {
	var p *Pool
	l := p.Acquire()
	if l != nil {
		t.Fatalf("nil pool must yield nil lease, got %v", l)
	}
	if got := l.Tuples(5); len(got) != 5 {
		t.Fatalf("nil lease Tuples(5) len = %d", len(got))
	}
	ints := l.Ints(7)
	if len(ints) != 7 {
		t.Fatalf("nil lease Ints(7) len = %d", len(ints))
	}
	for i, v := range ints {
		if v != 0 {
			t.Fatalf("Ints not zeroed at %d: %d", i, v)
		}
	}
	if got := l.Int32s(3); len(got) != 3 {
		t.Fatalf("nil lease Int32s(3) len = %d", len(got))
	}
	l.PutTuples(nil)
	l.Release() // must not panic
	if s := l.Stats(); s != (LeaseStats{}) {
		t.Fatalf("nil lease stats = %+v", s)
	}
	if s := p.Stats(); s.Gets != 0 || s.HeldBytes != 0 || s.ReservedBytes != 0 || len(s.Queries) != 0 {
		t.Fatalf("nil pool stats = %+v", s)
	}
	r, err := p.Reserve("q", 1<<20)
	if err != nil || r == nil {
		t.Fatalf("nil pool Reserve = %v, %v", r, err)
	}
	r.Release()
	if l := p.AcquireFor(r); l != nil {
		t.Fatalf("nil pool AcquireFor must yield nil lease, got %v", l)
	}
}

func TestPoolReuseAcrossLeases(t *testing.T) {
	p := NewPool(1 << 20)

	l1 := p.Acquire()
	buf := l1.Tuples(1000)
	if len(buf) != 1000 || cap(buf) != 1024 {
		t.Fatalf("len=%d cap=%d, want 1000/1024", len(buf), cap(buf))
	}
	buf[0] = relation.Tuple{Key: 9, Payload: 9}
	ints := l1.Ints(100)
	ints[0] = 42
	l1.Release()

	s := p.Stats()
	if s.HeldBytes == 0 {
		t.Fatalf("pool held nothing after release: %+v", s)
	}

	l2 := p.Acquire()
	buf2 := l2.Tuples(900) // same class (1024)
	if cap(buf2) != 1024 {
		t.Fatalf("reused cap = %d", cap(buf2))
	}
	ints2 := l2.Ints(100)
	for i, v := range ints2 {
		if v != 0 {
			t.Fatalf("reused Ints not zeroed at %d: %d", i, v)
		}
	}
	ls := l2.Stats()
	if ls.Buffers != 2 || ls.Reused != 2 {
		t.Fatalf("lease stats = %+v, want 2 buffers, 2 reused", ls)
	}
	l2.Release()

	s = p.Stats()
	if s.Hits != 2 || s.Misses != 2 {
		t.Fatalf("pool stats = %+v, want 2 hits / 2 misses", s)
	}
}

func TestLeaseIntraJoinReuse(t *testing.T) {
	p := NewPool(0)
	l := p.Acquire()
	a := l.Int32s(64)
	l.PutInt32s(a)
	b := l.Int32s(60) // same class: must come back from the lease free list
	if &a[0] != &b[0] {
		t.Fatal("PutInt32s buffer was not reused by the same lease")
	}
	tb := l.Tuples(32)
	l.PutTuples(tb)
	tb2 := l.Tuples(32)
	if &tb[0] != &tb2[0] {
		t.Fatal("PutTuples buffer was not reused by the same lease")
	}
	ib := l.Ints(16)
	ib[3] = 5
	l.PutInts(ib)
	ib2 := l.Ints(16)
	if &ib[0] != &ib2[0] {
		t.Fatal("PutInts buffer was not reused by the same lease")
	}
	if ib2[3] != 0 {
		t.Fatal("reused Ints buffer not re-zeroed")
	}
	l.Release()
	if s := p.Stats(); s.Gets != 3 {
		t.Fatalf("pool Gets = %d, want 3 (intra-lease reuse must bypass the pool)", s.Gets)
	}
}

func TestPoolLimitDiscards(t *testing.T) {
	p := NewPool(1024) // 1 KiB: fits one 64-tuple buffer, not two
	l := p.Acquire()
	a := l.Tuples(64) // 1024 bytes
	b := l.Tuples(64)
	_, _ = a, b
	l.Release()
	s := p.Stats()
	if s.Discards != 1 {
		t.Fatalf("discards = %d, want 1 (limit 1024, two 1024-byte buffers)", s.Discards)
	}
	if s.HeldBytes > 1024 {
		t.Fatalf("held %d bytes exceeds the 1024 limit", s.HeldBytes)
	}
}

func TestConcurrentLeases(t *testing.T) {
	p := NewPool(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l := p.Acquire()
				var inner sync.WaitGroup
				for w := 0; w < 4; w++ {
					inner.Add(1)
					go func(w int) {
						defer inner.Done()
						buf := l.Tuples(256 + w)
						for j := range buf {
							buf[j] = relation.Tuple{Key: uint64(g), Payload: uint64(w)}
						}
						ints := l.Ints(100)
						ints[0] = g
						l.PutInts(ints)
					}(w)
				}
				inner.Wait()
				l.Release()
			}
		}(g)
	}
	wg.Wait()
	s := p.Stats()
	if s.Gets == 0 || s.Hits == 0 {
		t.Fatalf("expected pooled traffic, got %+v", s)
	}
}

func TestSizeClassEdges(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := sizeClass(n); got != want {
			t.Errorf("sizeClass(%d) = %d, want %d", n, got, want)
		}
	}
	if got := exactClass(1024); got != 10 {
		t.Errorf("exactClass(1024) = %d", got)
	}
	if got := exactClass(1000); got != -1 {
		t.Errorf("exactClass(1000) = %d, want -1 for non-power-of-two", got)
	}
}

func TestZeroLengthRequests(t *testing.T) {
	p := NewPool(0)
	l := p.Acquire()
	if got := l.Tuples(0); got != nil {
		t.Fatalf("Tuples(0) = %v, want nil", got)
	}
	if got := l.Ints(0); got != nil {
		t.Fatalf("Ints(0) = %v, want nil", got)
	}
	if got := l.Int32s(0); got != nil {
		t.Fatalf("Int32s(0) = %v, want nil", got)
	}
	l.Release()
}
