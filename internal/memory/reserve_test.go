package memory

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/relation"
)

func TestReserveAccounting(t *testing.T) {
	p := NewPool(1 << 20)
	p.SetReserveLimit(1000)
	if got := p.ReserveLimit(); got != 1000 {
		t.Fatalf("ReserveLimit = %d, want 1000", got)
	}

	a, err := p.Reserve("a", 600)
	if err != nil {
		t.Fatalf("Reserve a: %v", err)
	}
	if _, err := p.Reserve("b", 600); !errors.Is(err, ErrOverCommitted) {
		t.Fatalf("over-limit Reserve error = %v, want ErrOverCommitted", err)
	}
	b, err := p.Reserve("b", 400)
	if err != nil {
		t.Fatalf("Reserve b: %v", err)
	}
	s := p.Stats()
	if s.ReservedBytes != 1000 || s.ReserveLimit != 1000 {
		t.Fatalf("stats = %+v, want 1000 reserved / 1000 limit", s)
	}
	if len(s.Queries) != 2 || s.Queries[0].Label != "a" || s.Queries[0].ReservedBytes != 600 ||
		s.Queries[1].Label != "b" || s.Queries[1].ReservedBytes != 400 {
		t.Fatalf("queries = %+v", s.Queries)
	}

	a.Release()
	a.Release() // idempotent
	b.Release()
	if s := p.Stats(); s.ReservedBytes != 0 || len(s.Queries) != 0 {
		t.Fatalf("after release: %+v", s)
	}
}

func TestReserveLimitDefaultsToPoolLimit(t *testing.T) {
	p := NewPool(4096)
	if got := p.ReserveLimit(); got != 4096 {
		t.Fatalf("default ReserveLimit = %d, want pool limit 4096", got)
	}
	p.SetReserveLimit(128)
	p.SetReserveLimit(0) // resets to the pool limit
	if got := p.ReserveLimit(); got != 4096 {
		t.Fatalf("reset ReserveLimit = %d, want 4096", got)
	}
}

func TestPerQueryAttribution(t *testing.T) {
	p := NewPool(1 << 20)
	r, err := p.Reserve("q1", 4096)
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	l := p.AcquireFor(r)
	l.Tuples(64)  // 1024 bytes
	l.Ints(128)   // 1024 bytes
	l.Int32s(256) // 1024 bytes
	anon := p.Acquire()
	anon.Tuples(64) // unattributed: must not appear in Queries

	s := p.Stats()
	if s.ActiveLeases != 2 {
		t.Fatalf("ActiveLeases = %d, want 2", s.ActiveLeases)
	}
	if len(s.Queries) != 1 {
		t.Fatalf("queries = %+v, want exactly the labeled one", s.Queries)
	}
	q := s.Queries[0]
	if q.Label != "q1" || q.ReservedBytes != 4096 || q.InUseBytes != 3072 || q.Leases != 1 {
		t.Fatalf("attribution = %+v, want q1 / 4096 reserved / 3072 in use / 1 lease", q)
	}

	l.Release()
	anon.Release()
	s = p.Stats()
	if s.ActiveLeases != 0 {
		t.Fatalf("ActiveLeases after release = %d", s.ActiveLeases)
	}
	// The reservation is still held, so the label remains with zero in-use.
	if len(s.Queries) != 1 || s.Queries[0].InUseBytes != 0 || s.Queries[0].Leases != 0 {
		t.Fatalf("post-release queries = %+v", s.Queries)
	}
	r.Release()
}

// TestConcurrentAcquireAndStats hammers reservations, attributed leases and
// Stats from many goroutines; the race detector validates the locking, and the
// lock ordering (Stats snapshots leases outside the pool lock) keeps it
// deadlock-free.
func TestConcurrentAcquireAndStats(t *testing.T) {
	p := NewPool(1 << 20)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := p.Stats()
			if s.ReservedBytes < 0 {
				panic("negative reservation total")
			}
			for _, q := range s.Queries {
				if q.InUseBytes < 0 || q.Leases < 0 {
					panic("negative attribution")
				}
			}
		}
	}()
	var workers sync.WaitGroup
	for g := 0; g < 8; g++ {
		workers.Add(1)
		go func(g int) {
			defer workers.Done()
			label := string(rune('a' + g))
			for i := 0; i < 100; i++ {
				r, err := p.Reserve(label, 512)
				if err != nil {
					continue
				}
				l := p.AcquireFor(r)
				buf := l.Tuples(256)
				buf[0] = relation.Tuple{Key: uint64(g), Payload: uint64(i)}
				ints := l.Ints(64)
				ints[0] = i
				l.PutInts(ints)
				l.Release()
				r.Release()
			}
		}(g)
	}
	workers.Wait()
	close(stop)
	wg.Wait()
	if s := p.Stats(); s.ReservedBytes != 0 || s.ActiveLeases != 0 {
		t.Fatalf("final stats = %+v, want all reservations and leases retired", s)
	}
}
