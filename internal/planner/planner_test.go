package planner

import (
	"context"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/mergejoin"
	"repro/internal/relation"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

// profileOf collects a fresh profile.
func profileOf(rel *relation.Relation) *stats.Profile { return stats.Collect(rel) }

// sortedClone returns a key-sorted copy of the relation.
func sortedClone(rel *relation.Relation) *relation.Relation {
	c := rel.Clone()
	sort.Slice(c.Tuples, func(i, j int) bool { return c.Tuples[i].Key < c.Tuples[j].Key })
	return c
}

// TestChooseJoinPicksHashForUnsortedInputs: with shuffled inputs at a size
// where the hash table exceeds the cache, the radix hash join must win.
func TestChooseJoinPicksHashForUnsortedInputs(t *testing.T) {
	r := workload.UniformRelation("R", 1<<18, workload.DefaultKeyDomain, 1)
	s := workload.ForeignKeyRelation("S", r, 1<<20, 2)
	ch := ChooseJoin(profileOf(r), profileOf(s), Constraints{Workers: 1}, DefaultCostModel())
	if ch.Algorithm != exec.AlgorithmRadix {
		t.Errorf("unsorted mid-size join chose %v, want Radix (costs %+v)", ch.Algorithm, ch.Costs)
	}
	if ch.Scheduler != sched.Static {
		t.Errorf("single worker chose %v scheduling, want static", ch.Scheduler)
	}
}

// TestChooseJoinPicksWisconsinForSmallBuild: a cache-resident build table
// favours the no-partitioning hash join.
func TestChooseJoinPicksWisconsinForSmallBuild(t *testing.T) {
	r := workload.UniformRelation("R", 1<<14, workload.DefaultKeyDomain, 3)
	s := workload.ForeignKeyRelation("S", r, 1<<19, 4)
	ch := ChooseJoin(profileOf(r), profileOf(s), Constraints{Workers: 1}, DefaultCostModel())
	if ch.Algorithm != exec.AlgorithmWisconsin {
		t.Errorf("small-build join chose %v, want Wisconsin (costs %+v)", ch.Algorithm, ch.Costs)
	}
}

// TestChooseJoinExploitsPresortedInputs: fully sorted inputs must pick an
// MPSM variant with the presorted declarations set.
func TestChooseJoinExploitsPresortedInputs(t *testing.T) {
	r := sortedClone(workload.UniformRelation("R", 1<<18, workload.DefaultKeyDomain, 5))
	s := sortedClone(workload.ForeignKeyRelation("S", r, 1<<20, 6))
	ch := ChooseJoin(profileOf(r), profileOf(s), Constraints{Workers: 1}, DefaultCostModel())
	if ch.Algorithm != exec.AlgorithmBMPSM {
		t.Errorf("presorted join chose %v, want B-MPSM (costs %+v)", ch.Algorithm, ch.Costs)
	}
	if !ch.PresortedPrivate || !ch.PresortedPublic {
		t.Errorf("presorted inputs not declared: private=%v public=%v", ch.PresortedPrivate, ch.PresortedPublic)
	}
}

// TestChooseJoinRespectsKindAndBandConstraints: non-inner kinds and band
// joins may only use B-MPSM or P-MPSM.
func TestChooseJoinRespectsKindAndBandConstraints(t *testing.T) {
	r := workload.UniformRelation("R", 1<<16, workload.DefaultKeyDomain, 7)
	s := workload.ForeignKeyRelation("S", r, 1<<18, 8)
	rp, sp := profileOf(r), profileOf(s)
	for _, c := range []Constraints{
		{Kind: mergejoin.LeftOuter, Workers: 1},
		{Kind: mergejoin.Semi, Workers: 1},
		{Kind: mergejoin.Anti, Workers: 1},
		{Band: 100, Workers: 1},
	} {
		ch := ChooseJoin(rp, sp, c, DefaultCostModel())
		if ch.Algorithm != exec.AlgorithmBMPSM && ch.Algorithm != exec.AlgorithmPMPSM {
			t.Errorf("constraints %+v chose %v, want an MPSM variant", c, ch.Algorithm)
		}
		if ch.Swap {
			t.Errorf("constraints %+v must pin the build/probe roles (non-inner kinds are asymmetric, band pairs carry R.Key != S.Key)", c)
		}
	}
}

// TestChooseJoinNeverSwapsBandJoins: band pairs carry R.Key != S.Key, so the
// default projection's output keys depend on the orientation — even with a
// commutative consumer and a lopsided size ratio the roles must stay pinned.
func TestChooseJoinNeverSwapsBandJoins(t *testing.T) {
	small := workload.UniformRelation("small", 1<<13, workload.DefaultKeyDomain, 43)
	big := workload.ForeignKeyRelation("big", small, 1<<19, 44)
	ch := ChooseJoin(profileOf(big), profileOf(small),
		Constraints{Band: 100, Workers: 1, SymmetricConsumer: true}, DefaultCostModel())
	if ch.Swap {
		t.Errorf("band join swapped build/probe: %+v", ch)
	}
}

// TestChooseJoinSwapsRoles: with a commutative consumer and a huge build
// against a tiny probe, role reversal must flip the hash build onto the
// small side; without the symmetric-consumer guarantee it must not.
func TestChooseJoinSwapsRoles(t *testing.T) {
	small := workload.UniformRelation("small", 1<<14, workload.DefaultKeyDomain, 41)
	big := workload.ForeignKeyRelation("big", small, 1<<20, 42)
	bp, sp := profileOf(big), profileOf(small)

	ch := ChooseJoin(bp, sp, Constraints{Workers: 1, SymmetricConsumer: true}, DefaultCostModel())
	if !ch.Swap {
		t.Errorf("huge-build join did not reverse roles: %+v", ch)
	}
	if ch.Algorithm != exec.AlgorithmWisconsin {
		t.Errorf("after reversal the cache-resident build should pick Wisconsin, got %v (costs %+v)",
			ch.Algorithm, ch.Costs)
	}

	pinned := ChooseJoin(bp, sp, Constraints{Workers: 1}, DefaultCostModel())
	if pinned.Swap {
		t.Errorf("asymmetric consumer must pin the roles, got swap")
	}
}

// TestChooseJoinKeepsDMPSM: a configured D-MPSM join expresses a memory
// constraint and is never switched away from.
func TestChooseJoinKeepsDMPSM(t *testing.T) {
	r := workload.UniformRelation("R", 1<<16, workload.DefaultKeyDomain, 9)
	s := workload.ForeignKeyRelation("S", r, 1<<18, 10)
	ch := ChooseJoin(profileOf(r), profileOf(s),
		Constraints{Configured: exec.AlgorithmDMPSM, Workers: 1}, DefaultCostModel())
	if ch.Algorithm != exec.AlgorithmDMPSM {
		t.Errorf("pinned D-MPSM was switched to %v", ch.Algorithm)
	}
}

// TestChooseJoinMorselUnderSkew: with several workers and a skewed input the
// match phase switches to morsel scheduling.
func TestChooseJoinMorselUnderSkew(t *testing.T) {
	r := workload.SkewedRelation("R", 1<<16, workload.DefaultKeyDomain, workload.SkewLow80, 11)
	s := workload.ForeignKeyRelation("S", r, 1<<18, 12)
	ch := ChooseJoin(profileOf(r), profileOf(s), Constraints{Workers: 8}, DefaultCostModel())
	if ch.Scheduler != sched.Morsel {
		t.Errorf("skewed 8-worker join chose %v scheduling, want morsel", ch.Scheduler)
	}

	uni := workload.UniformRelation("U", 1<<16, workload.DefaultKeyDomain, 13)
	us := workload.ForeignKeyRelation("US", uni, 1<<18, 14)
	ch = ChooseJoin(profileOf(uni), profileOf(us), Constraints{Workers: 8}, DefaultCostModel())
	if ch.Scheduler != sched.Static {
		t.Errorf("uniform 8-worker join chose %v scheduling, want static", ch.Scheduler)
	}
}

// TestCostModelWorkerScaling: B-MPSM's public-scan term must not shrink with
// workers, while P-MPSM's join phase must.
func TestCostModelWorkerScaling(t *testing.T) {
	cm := DefaultCostModel()
	in1 := joinInputs{build: 1 << 18, probe: 1 << 22, workers: 1}
	in16 := in1
	in16.workers = 16
	b1 := cm.Estimate(exec.AlgorithmBMPSM, in1)
	b16 := cm.Estimate(exec.AlgorithmBMPSM, in16)
	p1 := cm.Estimate(exec.AlgorithmPMPSM, in1)
	p16 := cm.Estimate(exec.AlgorithmPMPSM, in16)
	if p16 >= p1/4 {
		t.Errorf("P-MPSM cost barely scales with workers: %v -> %v", p1, p16)
	}
	if b16 < cm.MergePerTuple*float64(in1.probe) {
		t.Errorf("B-MPSM cost %v lost its per-worker public scan term (merge floor %v)",
			b16, cm.MergePerTuple*float64(in1.probe))
	}
	// With many workers and a large public input, P-MPSM must beat B-MPSM.
	if p16 >= b16 {
		t.Errorf("16 workers: P-MPSM (%v) should beat B-MPSM (%v)", p16, b16)
	}
	// On a single worker, B-MPSM (no partition pass) must beat P-MPSM.
	if b1 >= p1 {
		t.Errorf("1 worker: B-MPSM (%v) should beat P-MPSM (%v)", b1, p1)
	}
}

// buildThreeWayPlan constructs scan(R), scan(S), scan(T) joined as
// (big ⋈ big) ⋈ small — a deliberately bad order the optimizer must fix.
func buildThreeWayPlan(r, s, tRel *relation.Relation) *exec.Plan {
	p := &exec.Plan{}
	rID := p.AddScan(r, nil)
	sID := p.AddScan(s, nil)
	tID := p.AddScan(tRel, nil)
	j1 := p.AddJoin(rID, sID, exec.AlgorithmPMPSM, core.Options{Workers: 1}, core.DiskOptions{})
	j2 := p.AddJoin(j1, tID, exec.AlgorithmPMPSM, core.Options{Workers: 1}, core.DiskOptions{})
	p.AddGroupAggregate(j2, 0)
	return p
}

// TestOptimizeReordersJoinCluster: the greedy order must join the selective
// small relation first, shrinking the intermediate.
func TestOptimizeReordersJoinCluster(t *testing.T) {
	r := workload.UniformRelation("R", 1<<16, workload.DefaultKeyDomain, 15)
	s := workload.ForeignKeyRelation("S", r, 1<<18, 16)
	// T keeps only a sliver of R's keys: joining T first is far cheaper.
	small := workload.ForeignKeyRelation("T", r, 1<<10, 17)

	p := buildThreeWayPlan(r, s, small)
	opt := &Optimizer{Rewrite: true}
	op, decisions, err := opt.Optimize(p)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if err := op.Validate(); err != nil {
		t.Fatalf("optimized plan invalid: %v", err)
	}

	// The first-executed join (node 3) must now touch the small scan (node
	// 2) instead of pairing the two big relations.
	j1 := op.Nodes[3]
	touchesSmall := j1.Inputs[0] == 2 || j1.Inputs[1] == 2
	if !touchesSmall {
		t.Errorf("first join still pairs the big relations: inputs %v (decisions %+v)", j1.Inputs, decisions[3])
	}
	reordered := decisions[3].Reordered || decisions[4].Reordered
	if !reordered {
		t.Errorf("no join marked as reordered")
	}
}

// TestOptimizeAnnotatesWithoutRewrite: with Rewrite unset the plan is
// unchanged but estimates appear.
func TestOptimizeAnnotatesWithoutRewrite(t *testing.T) {
	r := workload.UniformRelation("R", 1<<14, workload.DefaultKeyDomain, 19)
	s := workload.ForeignKeyRelation("S", r, 1<<16, 20)
	p := &exec.Plan{}
	rID := p.AddScan(r, nil)
	sID := p.AddScan(s, nil)
	j := p.AddJoin(rID, sID, exec.AlgorithmBMPSM, core.Options{Workers: 1, Scheduler: sched.Morsel}, core.DiskOptions{})
	p.AddSink(j, nil)

	op, decisions, err := (&Optimizer{}).Optimize(p)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if op.Nodes[j].Algorithm != exec.AlgorithmBMPSM || op.Nodes[j].JoinOptions.Scheduler != sched.Morsel {
		t.Errorf("annotate-only optimization changed the plan: %+v", op.Nodes[j])
	}
	if decisions[j].Algorithm != exec.AlgorithmBMPSM {
		t.Errorf("decision reports %v, want the configured B-MPSM", decisions[j].Algorithm)
	}
	if decisions[j].EstRows <= 0 {
		t.Errorf("join estimate missing: %+v", decisions[j])
	}
}

// TestOptimizePinsAggregateMode: the aggregation strategy must follow the
// chosen join algorithm.
func TestOptimizePinsAggregateMode(t *testing.T) {
	r := workload.UniformRelation("R", 1<<16, workload.DefaultKeyDomain, 21)
	s := workload.ForeignKeyRelation("S", r, 1<<18, 22)
	p := &exec.Plan{}
	j := p.AddJoin(p.AddScan(r, nil), p.AddScan(s, nil), exec.AlgorithmPMPSM, core.Options{Workers: 1}, core.DiskOptions{})
	agg := p.AddGroupAggregate(j, 0)

	op, decisions, err := (&Optimizer{Rewrite: true}).Optimize(p)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	wantMerge := exec.KeyOrderedOutput(op.Nodes[j].Algorithm)
	got := op.Nodes[agg].AggMode
	if wantMerge && got != exec.AggMerge {
		t.Errorf("aggregate above %v pinned to %v, want merge", op.Nodes[j].Algorithm, got)
	}
	if !wantMerge && got != exec.AggHash {
		t.Errorf("aggregate above %v pinned to %v, want hash", op.Nodes[j].Algorithm, got)
	}
	if decisions[agg].AggMode != got {
		t.Errorf("decision (%v) and plan (%v) disagree on the aggregate mode", decisions[agg].AggMode, got)
	}
}

// TestOptimizedPlanExecutes: an optimized plan must run and produce the same
// aggregate as the unoptimized plan.
func TestOptimizedPlanExecutes(t *testing.T) {
	r := workload.UniformRelation("R", 1<<13, workload.DefaultKeyDomain, 23)
	s := workload.ForeignKeyRelation("S", r, 1<<15, 24)
	small := workload.ForeignKeyRelation("T", r, 1<<9, 25)

	base := buildThreeWayPlan(r, s, small)
	baseRes, err := exec.RunPlan(context.Background(), base, nil)
	if err != nil {
		t.Fatalf("base plan: %v", err)
	}

	op, _, err := (&Optimizer{Rewrite: true}).Optimize(buildThreeWayPlan(r, s, small))
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	optRes, err := exec.RunPlan(context.Background(), op, nil)
	if err != nil {
		t.Fatalf("optimized plan: %v", err)
	}
	if !relation.SameMultiset(baseRes.Output.Tuples, optRes.Output.Tuples) {
		t.Errorf("optimized plan output differs: %d vs %d groups", baseRes.Output.Len(), optRes.Output.Len())
	}
}
