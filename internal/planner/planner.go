// Package planner is the cost-based query planner: it turns the sampled
// relation statistics of internal/stats into physical execution choices for
// operator plans — which join algorithm runs each Join node, in which order a
// chain of joins consumes its inputs, whether the match phase is scheduled
// statically or morsel-driven, whether presorted inputs skip their sort
// phase, and whether a GroupAggregate merges or hashes.
//
// The pipeline is
//
//	stats.Profile (per base relation, cached on the Engine)
//	   → cost model (calibrated ns/tuple constants, CostModel)
//	   → rewrite (join order, build/probe roles, per-node physical choices)
//
// and every decision is recorded as a NodeDecision so that Explain can show
// the chosen plan with its estimates and the per-algorithm cost comparison.
//
// The optimizer never changes what a plan computes: rewrites are restricted
// to inner, non-band join clusters joined on the shared key attribute (where
// commutativity and associativity hold, including the default payload-sum
// projection), build/probe swaps to symmetric join kinds, and presorted
// declarations that the join verifies per chunk anyway. The optimizer-safety
// property test exercises exactly this guarantee.
package planner

import (
	"fmt"
	"math"
	"runtime"
	"sort"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/mergejoin"
	"repro/internal/relation"
	"repro/internal/sched"
	"repro/internal/stats"
)

// MorselSkewThreshold is the skew coefficient (max histogram bucket share
// relative to uniform) above which the match phase switches to morsel
// scheduling when more than one worker is available.
const MorselSkewThreshold = 3.0

// Constraints are the parts of a join's configuration the planner must
// respect when choosing an algorithm.
type Constraints struct {
	// Configured is the algorithm the engine/plan configuration selects.
	// AlgorithmDMPSM is kept as configured: it expresses an external memory
	// constraint (bounded buffer pool) the cost model cannot see.
	Configured exec.Algorithm
	// Kind restricts non-inner joins to the B-MPSM and P-MPSM algorithms.
	Kind mergejoin.Kind
	// Band restricts band joins to the B-MPSM and P-MPSM algorithms and
	// pins the build/probe roles: band pairs carry R.Key != S.Key, so the
	// default projection's output keys depend on which side is the build.
	Band uint64
	// Workers is the degree of parallelism the join will run with.
	Workers int
	// LatencyNs is the configured simulated disk latency per tuple (D-MPSM).
	LatencyNs float64
	// SymmetricConsumer reports that whatever consumes the join's (r, s)
	// pair stream is commutative in the pair — the default payload-sum
	// projection, a group aggregate over it, or the built-in max-sum sink.
	// Only then may the planner exchange build and probe roles; a user sink
	// or explicit projection observes the pair order.
	SymmetricConsumer bool
}

// Choice is the physical decision for one join.
type Choice struct {
	// Algorithm is the selected join implementation.
	Algorithm exec.Algorithm
	// Scheduler and MorselSize select the match-phase scheduling; a zero
	// MorselSize keeps the runtime default, heavy skew halves it so the
	// queue has enough morsels to balance the hot key range.
	Scheduler  sched.Mode
	MorselSize int
	// PresortedPrivate/Public declare verified-per-chunk pre-existing sort
	// orders (after any swap, i.e. for the final build/probe roles).
	PresortedPrivate, PresortedPublic bool
	// Swap exchanges the build and probe inputs.
	Swap bool
	// EstRows is the estimated join cardinality.
	EstRows float64
	// Costs holds the per-algorithm modelled costs (for the final
	// orientation), most attractive first.
	Costs []AlgorithmCost
	// Keys describes the key-schema regime of the join (empty for raw
	// uint64 keys): prefix width, fast-path vs tie-break, and the sampled
	// collision-rate estimate that priced the tie-break path.
	Keys string
	// Reason summarizes the decision for Explain output.
	Reason string
}

// normWorkers resolves the effective degree of parallelism.
func normWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// candidates returns the algorithms the constraints allow.
func candidates(c Constraints) []exec.Algorithm {
	if c.Configured == exec.AlgorithmDMPSM {
		return []exec.Algorithm{exec.AlgorithmDMPSM}
	}
	if c.Kind != mergejoin.Inner || c.Band > 0 {
		return []exec.Algorithm{exec.AlgorithmPMPSM, exec.AlgorithmBMPSM}
	}
	return []exec.Algorithm{
		exec.AlgorithmPMPSM, exec.AlgorithmBMPSM,
		exec.AlgorithmWisconsin, exec.AlgorithmRadix,
	}
}

// swappable reports whether exchanging build and probe preserves semantics:
// inner equi-joins (outer/semi/anti are asymmetric, and a band join's pairs
// carry R.Key != S.Key, so swapping changes which key the default projection
// emits) whose pair consumer is commutative in (r, s).
func swappable(c Constraints) bool {
	return c.Kind == mergejoin.Inner && c.Band == 0 && c.SymmetricConsumer
}

// ChooseJoin picks the cheapest (algorithm, orientation) pair the
// constraints allow and derives the scheduling mode from the skew profile.
// build/probe are the profiles of the join's current private/public inputs.
func ChooseJoin(build, probe *stats.Profile, c Constraints, cm CostModel) Choice {
	workers := normWorkers(c.Workers)
	algs := candidates(c)

	type option struct {
		alg  exec.Algorithm
		swap bool
		cost float64
	}
	matches := stats.EstimateJoin(build, probe)
	bestPer := make(map[exec.Algorithm]option, len(algs))
	var best option
	first := true
	for _, alg := range algs {
		orientations := []bool{false}
		if swappable(c) {
			orientations = append(orientations, true)
		}
		for _, swap := range orientations {
			b, p := build, probe
			if swap {
				b, p = p, b
			}
			cost := cm.Estimate(alg, inputsFor(b, p, matches, workers, c.LatencyNs))
			if prev, ok := bestPer[alg]; !ok || cost < prev.cost {
				bestPer[alg] = option{alg: alg, swap: swap, cost: cost}
			}
			if first || cost < best.cost {
				best = option{alg: alg, swap: swap, cost: cost}
				first = false
			}
		}
	}

	choice := Choice{
		Algorithm: best.alg,
		Swap:      best.swap,
		EstRows:   matches,
	}
	finalBuild, finalProbe := build, probe
	if best.swap {
		finalBuild, finalProbe = probe, build
	}
	choice.PresortedPrivate = finalBuild.LikelySorted()
	choice.PresortedPublic = finalProbe.LikelySorted()

	// The cost list reports every allowed algorithm at its own best
	// orientation, cheapest first, so Explain shows the actual contest.
	for _, opt := range bestPer {
		choice.Costs = append(choice.Costs, AlgorithmCost{
			Algorithm: opt.alg, Millis: opt.cost / 1e6, Eligible: true,
		})
	}
	sort.Slice(choice.Costs, func(i, j int) bool {
		if choice.Costs[i].Millis != choice.Costs[j].Millis {
			return choice.Costs[i].Millis < choice.Costs[j].Millis
		}
		return choice.Costs[i].Algorithm < choice.Costs[j].Algorithm
	})

	// Skewed or clustered inputs get the morsel-driven match phase: with
	// several workers it fixes the straggler imbalance static splitters
	// leave open, and even on one worker the blocked (morsel-sized)
	// iteration is no slower than the static loop on such inputs. Balanced
	// uniform inputs keep the paper-faithful static barriers.
	skew := math.Max(build.Skew, probe.Skew)
	clustered := finalBuild.Clustered() || finalProbe.Clustered()
	if skew >= MorselSkewThreshold || clustered {
		choice.Scheduler = sched.Morsel
		if skew >= 2*MorselSkewThreshold {
			// Twice the skew threshold means one bucket dominates; finer
			// morsels keep enough stealable units in the hot range.
			choice.MorselSize = sched.DefaultMorselSize / 2
		}
	} else {
		choice.Scheduler = sched.Static
	}

	choice.Keys = keysClause(build, probe)
	choice.Reason = reasonFor(choice, c, skew, clustered)
	if choice.Keys != "" {
		choice.Reason += "; " + choice.Keys
	}
	return choice
}

// keysClause renders the key-regime description of a join's inputs: empty
// for raw uint64 keys, the fast-path note for exact normalized schemas,
// and the tie-break note — with the sampled prefix-collision rate that
// priced the verification — for inexact ones.
func keysClause(build, probe *stats.Profile) string {
	if !build.KeyNormalized && !probe.KeyNormalized {
		return ""
	}
	if !build.KeyTieBreak && !probe.KeyTieBreak {
		return "normalized keys: exact 8-byte prefix (fast path)"
	}
	collision := math.Max(build.PrefixCollisionRate, probe.PrefixCollisionRate)
	return fmt.Sprintf("normalized keys: 8-byte prefix + tie-break verify (est collision %.1f%%)",
		100*collision)
}

// reasonFor renders the one-line rationale of a join choice.
func reasonFor(ch Choice, c Constraints, skew float64, clustered bool) string {
	var why string
	switch {
	case c.Configured == exec.AlgorithmDMPSM:
		why = "kept D-MPSM (memory-constrained configuration)"
	case len(ch.Costs) > 1:
		why = fmt.Sprintf("%v cheapest (%.1fms vs %v %.1fms)",
			ch.Algorithm, ch.Costs[0].Millis, ch.Costs[1].Algorithm, ch.Costs[1].Millis)
	default:
		why = fmt.Sprintf("%v is the only eligible algorithm", ch.Algorithm)
	}
	if ch.PresortedPrivate || ch.PresortedPublic {
		why += ", exploiting presorted input"
	}
	if ch.Swap {
		why += ", roles reversed"
	}
	switch {
	case ch.Scheduler == sched.Morsel && clustered:
		why += "; morsel scheduling (clustered arrangement)"
	case ch.Scheduler == sched.Morsel:
		why += fmt.Sprintf("; morsel scheduling (skew %.1f)", skew)
	default:
		why += "; static scheduling (balanced inputs)"
	}
	return why
}

// NodeDecision records the planner's verdict for one plan node; Explain
// renders these.
type NodeDecision struct {
	// ID and Kind identify the node; Inputs are its (possibly rewired)
	// input node IDs.
	ID     exec.NodeID
	Kind   exec.NodeKind
	Inputs []exec.NodeID
	// EstRows is the estimated output cardinality (0 for sinks).
	EstRows float64
	// EstDistinct and Skew describe the estimated output distribution.
	EstDistinct float64
	Skew        float64

	// Join-node decisions.
	Algorithm                         exec.Algorithm
	Scheduler                         sched.Mode
	MorselSize                        int
	PresortedPrivate, PresortedPublic bool
	Swapped                           bool
	Reordered                         bool
	Costs                             []AlgorithmCost

	// AggMode is the chosen aggregation strategy for GroupAggregate nodes.
	AggMode exec.AggMode

	// Keys describes the key-schema regime (join and scan nodes over
	// normalized-key relations); empty for raw uint64 keys. Unlike Reason
	// it survives the non-rewrite annotate mode: the key path is a fact of
	// the schema, not a planner choice.
	Keys string

	// Reason summarizes why, empty for nodes without decisions.
	Reason string
}

// Optimizer rewrites plans using a stats provider and a cost model.
type Optimizer struct {
	// Cost is the cost model; the zero value selects DefaultCostModel.
	Cost CostModel
	// Profile returns the (possibly cached) statistics of a base relation.
	// Nil falls back to uncached stats.Collect.
	Profile func(*relation.Relation) *stats.Profile
	// Rewrite enables plan mutation. When false, Optimize only annotates
	// the configured plan with estimates (the EXPLAIN-without-auto path).
	Rewrite bool
}

// profileOf resolves the stats provider.
func (o *Optimizer) profileOf(rel *relation.Relation) *stats.Profile {
	if o.Profile != nil {
		return o.Profile(rel)
	}
	return stats.Collect(rel)
}

// costModel resolves the cost model.
func (o *Optimizer) costModel() CostModel {
	if o.Cost == (CostModel{}) {
		return DefaultCostModel()
	}
	return o.Cost
}

// Optimize validates p and returns the physical plan to execute together
// with the per-node decisions. The input plan is never mutated; with
// Rewrite unset the returned plan is an annotated copy with identical
// choices. Node IDs are stable across optimization: node i of the returned
// plan computes the output of node i of the input plan (with possibly
// different inputs inside reordered join clusters).
func (o *Optimizer) Optimize(p *exec.Plan) (*exec.Plan, []NodeDecision, error) {
	cp := &exec.Plan{Nodes: append([]exec.PlanNode(nil), p.Nodes...)}
	if o.Rewrite {
		// The planner overrides the configured algorithm anyway, so a
		// non-inner or band join configured onto a hash algorithm is not an
		// error under auto-planning: reroute it to an MPSM variant before
		// validation, exactly as the single-join path does (a configured
		// D-MPSM is never unpinned — it expresses a memory constraint, and
		// an unsupported kind on it stays an error like in manual mode).
		for i := range cp.Nodes {
			n := &cp.Nodes[i]
			if n.Kind != exec.NodeJoin {
				continue
			}
			constrained := n.JoinOptions.Kind != mergejoin.Inner || n.JoinOptions.Band > 0
			hashAlg := n.Algorithm == exec.AlgorithmWisconsin || n.Algorithm == exec.AlgorithmRadix
			if constrained && hashAlg {
				n.Algorithm = exec.AlgorithmPMPSM
			}
		}
	}
	if err := cp.Validate(); err != nil {
		return nil, nil, err
	}
	st := &planState{
		opt:      o,
		plan:     cp,
		cm:       o.costModel(),
		profiles: make([]*stats.Profile, len(cp.Nodes)),
		decide:   make([]NodeDecision, len(cp.Nodes)),
	}

	if o.Rewrite {
		st.profileAll()
		st.reorderClusters()
		// Rewiring invalidates downstream estimates; recompute from scratch.
		st.profiles = make([]*stats.Profile, len(cp.Nodes))
	}
	st.profileAll()
	st.decideNodes()

	if err := cp.Validate(); err != nil {
		// A rewrite must never produce an invalid plan; surface loudly.
		return nil, nil, fmt.Errorf("planner: optimized plan failed validation: %w", err)
	}
	return cp, st.decide, nil
}

// planState is the working state of one optimization.
type planState struct {
	opt       *Optimizer
	plan      *exec.Plan
	cm        CostModel
	profiles  []*stats.Profile
	decide    []NodeDecision
	symmetric []bool
}

// profileAll memoizes the output profile of every node.
func (s *planState) profileAll() {
	for id := range s.plan.Nodes {
		s.profile(exec.NodeID(id))
	}
}

// profile computes (and memoizes) the estimated output profile of a node.
func (s *planState) profile(id exec.NodeID) *stats.Profile {
	if p := s.profiles[id]; p != nil {
		return p
	}
	n := s.plan.Nodes[id]
	var p *stats.Profile
	switch n.Kind {
	case exec.NodeScan:
		p = s.opt.profileOf(n.Rel)
		if n.Pred != nil {
			p = p.Filtered(n.Pred)
		}
	case exec.NodeJoin:
		b := s.profile(n.Inputs[0])
		pr := s.profile(n.Inputs[1])
		p = stats.JoinOutput(b, pr, stats.EstimateJoin(b, pr))
	case exec.NodeMap:
		p = s.profile(n.Inputs[0]).Mapped(n.MapFn)
	case exec.NodeProject:
		// The projection function is opaque over pairs; cardinality carries
		// over, the key distribution of the join output is kept as the best
		// available guess.
		p = s.profile(n.Inputs[0])
	case exec.NodeGroupAggregate:
		in := s.profile(n.Inputs[0])
		groups := math.Max(1, math.Min(float64(in.Tuples), in.DistinctKeys))
		if in.Tuples == 0 {
			groups = 0
		}
		p = &stats.Profile{
			Tuples:         int(math.Round(groups)),
			DistinctKeys:   groups,
			Duplication:    1,
			MinKey:         in.MinKey,
			MaxKey:         in.MaxKey,
			SortedFraction: 1, // aggregate output is emitted in key order
			Histogram:      in.Histogram,
			Skew:           in.Skew,
			Correlated:     in.Correlated,
		}
	case exec.NodeSink:
		p = &stats.Profile{SortedFraction: 1}
	default:
		p = &stats.Profile{SortedFraction: 1}
	}
	s.profiles[id] = p
	return p
}

// symmetricConsumers marks every join whose pair stream is consumed
// commutatively: a further join or a group aggregate (both fold the pair
// through the commutative default payload-sum projection), the built-in
// max-sum sink, or direct materialization at the plan root (the default
// projection again). A user sink or an explicit Project observes the pair
// order and pins the roles.
func (s *planState) symmetricConsumers() []bool {
	sym := make([]bool, len(s.plan.Nodes))
	for id, n := range s.plan.Nodes {
		if n.Kind == exec.NodeJoin {
			sym[id] = true // root default projection, until a consumer says otherwise
		}
	}
	for _, n := range s.plan.Nodes {
		for _, in := range n.Inputs {
			if s.plan.Nodes[in].Kind != exec.NodeJoin {
				continue
			}
			switch n.Kind {
			case exec.NodeJoin, exec.NodeGroupAggregate:
				// commutative
			case exec.NodeSink:
				sym[in] = n.Sink == nil
			default:
				sym[in] = false
			}
		}
	}
	return sym
}

// decideNodes applies (or, without Rewrite, merely records) the per-node
// physical decisions.
func (s *planState) decideNodes() {
	s.symmetric = s.symmetricConsumers()
	for id := range s.plan.Nodes {
		n := &s.plan.Nodes[id]
		d := &s.decide[id]
		d.ID = exec.NodeID(id)
		d.Kind = n.Kind
		d.Inputs = append([]exec.NodeID(nil), n.Inputs...)
		p := s.profiles[id]
		d.EstRows = float64(p.Tuples)
		d.EstDistinct = p.DistinctKeys
		d.Skew = p.Skew
		if n.Kind == exec.NodeSink {
			d.EstRows = float64(s.profiles[n.Inputs[0]].Tuples)
		}

		switch n.Kind {
		case exec.NodeScan:
			if n.Rel.Meta != nil {
				d.Keys = n.Rel.Meta.Describe()
			}
		case exec.NodeJoin:
			s.decideJoin(exec.NodeID(id), n, d)
		case exec.NodeGroupAggregate:
			s.decideAggregate(n, d)
		}
	}
}

// decideJoin chooses and (when rewriting) applies one join's physical
// execution.
func (s *planState) decideJoin(id exec.NodeID, n *exec.PlanNode, d *NodeDecision) {
	build := s.profiles[n.Inputs[0]]
	probe := s.profiles[n.Inputs[1]]
	c := Constraints{
		Configured:        n.Algorithm,
		Kind:              n.JoinOptions.Kind,
		Band:              n.JoinOptions.Band,
		Workers:           n.JoinOptions.Workers,
		LatencyNs:         diskLatencyNs(n.DiskOptions),
		SymmetricConsumer: s.symmetric[id],
	}
	ch := ChooseJoin(build, probe, c, s.cm)
	d.EstRows = ch.EstRows
	d.Costs = ch.Costs
	d.Keys = ch.Keys
	d.Reason = ch.Reason

	if !s.opt.Rewrite {
		// Annotate what the configured plan will do.
		d.Algorithm = n.Algorithm
		d.Scheduler = n.JoinOptions.Scheduler
		d.MorselSize = n.JoinOptions.MorselSize
		d.PresortedPrivate = n.JoinOptions.PresortedPrivate
		d.PresortedPublic = n.JoinOptions.PresortedPublic
		d.Reason = ""
		return
	}

	n.Algorithm = ch.Algorithm
	n.JoinOptions.Scheduler = ch.Scheduler
	if ch.MorselSize > 0 {
		n.JoinOptions.MorselSize = ch.MorselSize
	}
	n.JoinOptions.PresortedPrivate = ch.PresortedPrivate
	n.JoinOptions.PresortedPublic = ch.PresortedPublic
	if ch.Swap {
		n.Inputs = []exec.NodeID{n.Inputs[1], n.Inputs[0]}
		d.Inputs = append([]exec.NodeID(nil), n.Inputs...)
		d.Swapped = true
	}
	d.Algorithm = ch.Algorithm
	d.Scheduler = ch.Scheduler
	d.MorselSize = n.JoinOptions.MorselSize
	d.PresortedPrivate = ch.PresortedPrivate
	d.PresortedPublic = ch.PresortedPublic
}

// decideAggregate pins the aggregation strategy to the input join's output
// order: streaming merge aggregation over key-ordered MPSM output, hash
// aggregation otherwise.
func (s *planState) decideAggregate(n *exec.PlanNode, d *NodeDecision) {
	in := s.plan.Nodes[n.Inputs[0]]
	if in.Kind != exec.NodeJoin {
		d.AggMode = exec.AggAuto
		return
	}
	mode := exec.AggHash
	why := "hash aggregation (unordered hash-join output)"
	if exec.KeyOrderedOutput(in.Algorithm) {
		mode = exec.AggMerge
		why = "streaming merge aggregation (key-ordered join output)"
	}
	d.AggMode = mode
	d.Reason = why
	if s.opt.Rewrite {
		n.AggMode = mode
	} else {
		d.AggMode = n.AggMode
		d.Reason = ""
	}
}

// diskLatencyNs converts the configured per-page disk latencies into a
// per-tuple nanosecond cost for the D-MPSM cost estimate.
func diskLatencyNs(d core.DiskOptions) float64 {
	pageSize := d.PageSize
	if pageSize <= 0 {
		pageSize = 1024
	}
	return float64(d.ReadLatency+d.WriteLatency) / float64(pageSize)
}
