package planner

import (
	"sort"

	"repro/internal/exec"
	"repro/internal/mergejoin"
	"repro/internal/stats"
)

// reorderClusters rewires multi-join clusters into the greedy minimum-
// intermediate-cardinality order.
//
// A cluster is a maximal set of join nodes connected through direct
// join→join input edges in which every join is an inner equi-join (no band,
// no outer/semi/anti semantics). Every join in this system equates the one
// shared key attribute and internal cluster edges carry the default
// commutative payload-sum projection, so any join order over the cluster's
// leaves computes the same multiset — the planner is free to pick the order
// with the smallest estimated intermediates. An interposed Project/Map node
// breaks the direct edge and therefore fences off reordering, as does any
// non-inner or band join and any configured D-MPSM node (whose memory
// constraint is tied to the inputs the caller gave it).
//
// The cluster root's own consumer must additionally be commutative in the
// root's pair stream (another join, a group aggregate, the built-in max-sum
// sink, or plain materialization): reordering repartitions the leaves
// between the root's build and probe sides, so a consumer that observes the
// pair — a user sink, or a Project/Map whose function is not linear in the
// summed payloads — would see different values for the same joined triples.
func (s *planState) reorderClusters() {
	p := s.plan
	s.symmetric = s.symmetricConsumers()
	inCluster := make([]bool, len(p.Nodes))
	for id := range p.Nodes {
		if inCluster[id] || !s.reorderable(exec.NodeID(id)) {
			continue
		}
		cluster := s.collectCluster(exec.NodeID(id))
		for _, j := range cluster {
			inCluster[j] = true
		}
		if len(cluster) < 2 {
			continue
		}
		if root := s.clusterRoot(cluster, memberSet(cluster)); !s.symmetric[root] {
			continue
		}
		s.reorderCluster(cluster)
	}
}

// memberSet builds the membership lookup of a cluster.
func memberSet(cluster []exec.NodeID) map[exec.NodeID]bool {
	m := make(map[exec.NodeID]bool, len(cluster))
	for _, id := range cluster {
		m[id] = true
	}
	return m
}

// reorderable reports whether a node is a join eligible for cluster
// membership.
func (s *planState) reorderable(id exec.NodeID) bool {
	n := s.plan.Nodes[id]
	return n.Kind == exec.NodeJoin &&
		n.JoinOptions.Kind == mergejoin.Inner &&
		n.JoinOptions.Band == 0 &&
		n.Algorithm != exec.AlgorithmDMPSM
}

// collectCluster gathers the maximal reorderable join cluster containing
// seed, in ascending node-ID order.
func (s *planState) collectCluster(seed exec.NodeID) []exec.NodeID {
	// Consumers of each node (validation guarantees non-scan nodes have at
	// most one).
	consumer := make([]exec.NodeID, len(s.plan.Nodes))
	for i := range consumer {
		consumer[i] = -1
	}
	for id, n := range s.plan.Nodes {
		for _, in := range n.Inputs {
			if s.plan.Nodes[in].Kind != exec.NodeScan {
				consumer[in] = exec.NodeID(id)
			}
		}
	}

	seen := map[exec.NodeID]bool{seed: true}
	frontier := []exec.NodeID{seed}
	for len(frontier) > 0 {
		id := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		neighbors := make([]exec.NodeID, 0, 3)
		neighbors = append(neighbors, s.plan.Nodes[id].Inputs...)
		if c := consumer[id]; c >= 0 {
			neighbors = append(neighbors, c)
		}
		for _, nb := range neighbors {
			if !seen[nb] && s.reorderable(nb) {
				seen[nb] = true
				frontier = append(frontier, nb)
			}
		}
	}
	cluster := make([]exec.NodeID, 0, len(seen))
	for id := range seen {
		cluster = append(cluster, id)
	}
	sort.Slice(cluster, func(i, j int) bool { return cluster[i] < cluster[j] })
	return cluster
}

// reorderCluster rebuilds one cluster as a left-deep chain over its leaves in
// greedy order: start with the leaf pair whose join is estimated smallest,
// then repeatedly join the leaf that keeps the intermediate smallest. The
// cluster's join node IDs are reused in topological (child-first) order, so
// the cluster root keeps its ID and outside consumers stay valid.
func (s *planState) reorderCluster(cluster []exec.NodeID) {
	isMember := memberSet(cluster)

	// Leaves: inputs of cluster joins that are not cluster joins themselves,
	// in deterministic first-encounter order. A shared scan feeding two
	// cluster joins contributes one leaf occurrence per edge (a self-join
	// stays a self-join).
	var leaves []exec.NodeID
	for _, id := range cluster {
		for _, in := range s.plan.Nodes[id].Inputs {
			if !isMember[in] {
				leaves = append(leaves, in)
			}
		}
	}
	if len(leaves) != len(cluster)+1 {
		// Not a tree shape we understand; leave the cluster untouched.
		return
	}

	// Topological (child-first) order of the cluster joins.
	topo := make([]exec.NodeID, 0, len(cluster))
	var visit func(id exec.NodeID)
	visited := make(map[exec.NodeID]bool, len(cluster))
	visit = func(id exec.NodeID) {
		if visited[id] || !isMember[id] {
			return
		}
		visited[id] = true
		for _, in := range s.plan.Nodes[id].Inputs {
			visit(in)
		}
		topo = append(topo, id)
	}
	root := s.clusterRoot(cluster, isMember)
	visit(root)
	if len(topo) != len(cluster) {
		return
	}

	// Greedy order over the leaves.
	type cand struct {
		id   exec.NodeID
		prof *stats.Profile
	}
	remaining := make([]cand, len(leaves))
	for i, id := range leaves {
		remaining[i] = cand{id: id, prof: s.profiles[id]}
	}
	pickPair := func() (int, int) {
		bi, bj, bestEst := 0, 1, 0.0
		first := true
		for i := 0; i < len(remaining); i++ {
			for j := i + 1; j < len(remaining); j++ {
				est := stats.EstimateJoin(remaining[i].prof, remaining[j].prof)
				if first || est < bestEst {
					bi, bj, bestEst, first = i, j, est, false
				}
			}
		}
		return bi, bj
	}
	removeAt := func(idx int) cand {
		c := remaining[idx]
		remaining = append(remaining[:idx], remaining[idx+1:]...)
		return c
	}

	i, j := pickPair()
	second := removeAt(j)
	firstLeaf := removeAt(i)
	est := stats.EstimateJoin(firstLeaf.prof, second.prof)
	current := stats.JoinOutput(firstLeaf.prof, second.prof, est)

	// Chain position 0 joins the two picked leaves; every further position
	// joins the running intermediate with the next greedy leaf.
	order := [][2]exec.NodeID{{firstLeaf.id, second.id}}
	prev := topo[0]
	for pos := 1; pos < len(topo); pos++ {
		bestIdx, bestEst := 0, 0.0
		firstPick := true
		for k := range remaining {
			e := stats.EstimateJoin(current, remaining[k].prof)
			if firstPick || e < bestEst {
				bestIdx, bestEst, firstPick = k, e, false
			}
		}
		leaf := removeAt(bestIdx)
		order = append(order, [2]exec.NodeID{prev, leaf.id})
		current = stats.JoinOutput(current, leaf.prof, bestEst)
		prev = topo[pos]
	}

	// Apply: rewire if anything changed.
	for pos, id := range topo {
		n := &s.plan.Nodes[id]
		want := []exec.NodeID{order[pos][0], order[pos][1]}
		if n.Inputs[0] != want[0] || n.Inputs[1] != want[1] {
			n.Inputs = want
			s.decide[id].Reordered = true
		}
	}
}

// clusterRoot returns the cluster join no other cluster join consumes.
func (s *planState) clusterRoot(cluster []exec.NodeID, isMember map[exec.NodeID]bool) exec.NodeID {
	consumedByMember := make(map[exec.NodeID]bool, len(cluster))
	for _, id := range cluster {
		for _, in := range s.plan.Nodes[id].Inputs {
			if isMember[in] {
				consumedByMember[in] = true
			}
		}
	}
	for _, id := range cluster {
		if !consumedByMember[id] {
			return id
		}
	}
	return cluster[len(cluster)-1] // unreachable on valid (acyclic) plans
}
