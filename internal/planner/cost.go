package planner

import (
	"math"

	"repro/internal/exec"
	"repro/internal/stats"
)

// CostModel prices one join execution per algorithm from the input profiles.
// All constants are nanoseconds per tuple, calibrated against this
// repository's own benchmark experiments (the sort micro-benchmark behind
// BENCH_sort.json, the steady-state experiment behind BENCH_steadystate.json,
// and best-of-run wall clocks of all five algorithms over the size × skew
// matrix of the planner experiment). Absolute predictions are within ~25% on
// the calibration machine; what the planner actually relies on is that the
// model ranks the algorithms correctly, which the planner bench experiment
// asserts end to end.
type CostModel struct {
	// SortPerTuple prices the multi-level radix sort of the run-generation
	// phases (SortInto fuses the copy with the widest pass).
	SortPerTuple float64
	// CopyPerTuple prices run generation when the chunk is verified
	// presorted: a linear check plus a copy into the run buffer.
	CopyPerTuple float64
	// MergePerTuple prices one tuple scanned by the merge-join phase,
	// including the sink hand-off.
	MergePerTuple float64
	// PartitionPerTuple prices P-MPSM's extra phases on the private input:
	// histogram build, CDF/splitter computation, and the range-partition
	// scatter into remote buffers.
	PartitionPerTuple float64
	// MergeHitPerMatch prices emitting one match from the merge-join phase
	// into the sink.
	MergeHitPerMatch float64
	// HashOpBase prices one hash build or probe operation (a miss: lookup
	// without a matching chain) while the table is cache-resident.
	HashOpBase float64
	// HashOpMiss is the additional cost of a hash operation once the table
	// far exceeds the cache; between CacheTuples and
	// CacheTuples<<CacheGrowthLog2 it phases in linearly in log2(table).
	HashOpMiss float64
	// HashHitBase and HashHitMiss price walking a matching chain and
	// emitting the match, with the same cache dependence as the lookup.
	// Splitting hits from lookups is what lets the model see that a
	// low-selectivity workload (negatively correlated skew) favours the
	// shared hash table while a foreign-key workload of the same size does
	// not.
	HashHitBase float64
	HashHitMiss float64
	// CacheTuples is the hash-table size (in build tuples — the shared table
	// stores every build tuple) that still fits the fast cache levels.
	CacheTuples float64
	// CacheGrowthLog2 is the number of table-size doublings over which
	// HashOpMiss/HashHitMiss phase in.
	CacheGrowthLog2 float64
	// RadixPerTuple prices one tuple through the radix hash join: the
	// partitioning pass plus the cache-resident build/probe of its cluster.
	RadixPerTuple float64
	// RadixHitPerMatch prices one radix-join match emission (cache-resident
	// by construction, so cheaper than a shared-table hit).
	RadixHitPerMatch float64
	// DiskPerTuple is D-MPSM's extra per-tuple cost for page management on
	// top of the B-MPSM data flow (excluding configured simulated
	// latencies).
	DiskPerTuple float64
	// TieBreakPerMatch prices verifying one candidate pair of a
	// normalized-key tie-break join: two metadata loads plus a full-key
	// bytes.Equal and the payload rewrite. It applies to every emitted
	// candidate, scaled up by the sampled prefix-collision rate (collisions
	// produce candidates that verify and then vanish).
	TieBreakPerMatch float64
}

// DefaultCostModel returns the calibrated model.
func DefaultCostModel() CostModel {
	return CostModel{
		SortPerTuple:      42,
		CopyPerTuple:      3,
		MergePerTuple:     10,
		MergeHitPerMatch:  4,
		PartitionPerTuple: 63,
		HashOpBase:        10,
		HashOpMiss:        30,
		HashHitBase:       10,
		HashHitMiss:       36,
		CacheTuples:       1 << 16,
		CacheGrowthLog2:   3,
		RadixPerTuple:     26,
		RadixHitPerMatch:  6,
		DiskPerTuple:      6,
		TieBreakPerMatch:  18,
	}
}

// runGen prices sorting n tuples into runs, or verifying+copying them when
// they are declared (and actually) presorted.
func (c CostModel) runGen(n float64, presorted bool) float64 {
	if presorted {
		return c.CopyPerTuple * n
	}
	return c.SortPerTuple * n
}

// missFraction is the cache-miss ramp for a table of the given size.
func (c CostModel) missFraction(tableEntries float64) float64 {
	if tableEntries <= c.CacheTuples {
		return 0
	}
	miss := (math.Log2(tableEntries) - math.Log2(c.CacheTuples)) / c.CacheGrowthLog2
	if miss > 1 {
		miss = 1
	}
	return miss
}

// hashOp prices one build/probe lookup against a table of the given number
// of entries.
func (c CostModel) hashOp(tableEntries float64) float64 {
	return c.HashOpBase + c.HashOpMiss*c.missFraction(tableEntries)
}

// hashHit prices one chain walk + match emission against the same table.
func (c CostModel) hashHit(tableEntries float64) float64 {
	return c.HashHitBase + c.HashHitMiss*c.missFraction(tableEntries)
}

// joinInputs captures the cost-relevant features of one join's inputs.
type joinInputs struct {
	build, probe     float64 // cardinalities (build = private, probe = public)
	matches          float64 // estimated join cardinality
	presortedBuild   bool    // build side passes the presortedness probe
	presortedProbe   bool
	workers          int
	simulatedLatency float64 // configured D-MPSM per-tuple latency, ns
	tieBreak         bool    // inputs carry inexact normalized keys
	collision        float64 // sampled prefix-collision rate of the inputs
}

// Estimate returns the modelled wall-clock cost (in nanoseconds) of one join
// under the given algorithm. Estimates divide by the worker count wherever
// the phase parallelizes; B-MPSM's join phase deliberately does not divide
// the public scan, which is the O(|S|)-per-worker complexity the paper
// trades for skew immunity.
func (c CostModel) Estimate(alg exec.Algorithm, in joinInputs) float64 {
	cost := c.estimateBase(alg, in)
	if in.tieBreak {
		t := math.Max(1, float64(in.workers))
		// Every emitted candidate passes the full-key verifier, and prefix
		// collisions inflate the candidate stream beyond the true matches.
		// The surcharge is algorithm-independent (the verifier sits at the
		// sink boundary), so it shifts absolute costs without distorting the
		// ranking — exactly the behaviour the fast-path/tie-break split
		// needs.
		cost += c.TieBreakPerMatch * in.matches * (1 + in.collision) / t
	}
	return cost
}

// estimateBase is the per-algorithm cost before key-regime surcharges.
func (c CostModel) estimateBase(alg exec.Algorithm, in joinInputs) float64 {
	t := float64(in.workers)
	if t < 1 {
		t = 1
	}
	n, m := in.build, in.probe
	emit := c.MergeHitPerMatch * in.matches / t
	switch alg {
	case exec.AlgorithmBMPSM:
		sort := (c.runGen(m, in.presortedProbe) + c.runGen(n, in.presortedBuild)) / t
		// Per worker: its n/T private run is re-scanned once per public run
		// (T of them) and the whole public input is scanned.
		merge := c.MergePerTuple * (n + m)
		return sort + merge + emit
	case exec.AlgorithmPMPSM:
		// The private input is re-partitioned and re-sorted regardless of
		// pre-existing order; only the public side can skip its sort.
		sort := (c.runGen(m, in.presortedProbe) + c.SortPerTuple*n + c.PartitionPerTuple*n) / t
		merge := c.MergePerTuple * (n + m) / t
		return sort + merge + emit
	case exec.AlgorithmDMPSM:
		base := c.estimateBase(exec.AlgorithmBMPSM, in)
		return base + (c.DiskPerTuple+in.simulatedLatency)*(n+m)/t
	case exec.AlgorithmWisconsin:
		return (c.hashOp(n)*(n+m) + c.hashHit(n)*in.matches) / t
	case exec.AlgorithmRadix:
		return (c.RadixPerTuple*(n+m) + c.RadixHitPerMatch*in.matches) / t
	default:
		return math.Inf(1)
	}
}

// AlgorithmCost is one algorithm's modelled cost, for Explain output.
type AlgorithmCost struct {
	Algorithm exec.Algorithm
	// Millis is the modelled wall-clock cost in milliseconds.
	Millis float64
	// Eligible is false when constraints (join kind, band, disk budget)
	// exclude the algorithm regardless of cost.
	Eligible bool
}

// inputsFor assembles the cost-model features from the two input profiles.
func inputsFor(build, probe *stats.Profile, matches float64, workers int, latencyNs float64) joinInputs {
	return joinInputs{
		build:            float64(build.Tuples),
		probe:            float64(probe.Tuples),
		matches:          matches,
		presortedBuild:   build.LikelySorted(),
		presortedProbe:   probe.LikelySorted(),
		workers:          workers,
		simulatedLatency: latencyNs,
		tieBreak:         build.KeyTieBreak || probe.KeyTieBreak,
		collision:        math.Max(build.PrefixCollisionRate, probe.PrefixCollisionRate),
	}
}
