package sorting

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"repro/internal/relation"
)

// adversarialDistributions generates the key distributions the ISSUE names as
// radix-sort stress cases: degenerate digit histograms (all-equal, 2-value),
// presorted directions, keys with only high bits set (≥ 2^56, exercising the
// deepest digit levels), and a zipf-skewed distribution whose buckets are
// maximally unbalanced.
func adversarialDistributions(n int, seed int64) map[string][]relation.Tuple {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.3, 1.0, 1<<30)
	out := map[string][]relation.Tuple{
		"all-equal":       make([]relation.Tuple, n),
		"reverse-sorted":  make([]relation.Tuple, n),
		"two-value":       make([]relation.Tuple, n),
		"high-bits":       make([]relation.Tuple, n),
		"zipf":            make([]relation.Tuple, n),
		"uniform-64":      make([]relation.Tuple, n),
		"uniform-32":      make([]relation.Tuple, n),
		"tiny-domain":     make([]relation.Tuple, n),
		"sorted-plateaus": make([]relation.Tuple, n),
		"bucket-skew":     make([]relation.Tuple, n),
	}
	for i := 0; i < n; i++ {
		p := uint64(i)
		out["all-equal"][i] = relation.Tuple{Key: 42, Payload: p}
		out["reverse-sorted"][i] = relation.Tuple{Key: uint64(n - i), Payload: p}
		out["two-value"][i] = relation.Tuple{Key: uint64(i & 1), Payload: p}
		out["high-bits"][i] = relation.Tuple{Key: uint64(1)<<56 | rng.Uint64()>>8<<8 | uint64(i&0xFF), Payload: p}
		out["zipf"][i] = relation.Tuple{Key: zipf.Uint64(), Payload: p}
		out["uniform-64"][i] = relation.Tuple{Key: rng.Uint64(), Payload: p}
		out["uniform-32"][i] = relation.Tuple{Key: rng.Uint64() >> 32, Payload: p}
		out["tiny-domain"][i] = relation.Tuple{Key: rng.Uint64() % 7, Payload: p}
		out["sorted-plateaus"][i] = relation.Tuple{Key: uint64(i / 64), Payload: p}
		// High byte spreads the top radix digit into mid-size buckets whose
		// middle key bits are all zero — every value in the bucket shares the
		// next wide digit, forcing the packed sort's counting-scatter refusal.
		out["bucket-skew"][i] = relation.Tuple{Key: uint64(rng.Intn(256))<<36 | uint64(rng.Intn(3)), Payload: p}
	}
	// Push a few keys to the extremes of the domain.
	for _, name := range []string{"high-bits", "uniform-64"} {
		out[name][0].Key = math.MaxUint64
		out[name][n-1].Key = 0
	}
	return out
}

// checkAgainstStdlib sorts a copy with the stdlib baseline and requires the
// candidate output to carry identical keys in identical positions and to be a
// permutation of the input.
func checkAgainstStdlib(t *testing.T, name string, input, got []relation.Tuple) {
	t.Helper()
	want := append([]relation.Tuple(nil), input...)
	SortStdlib(want)
	if len(got) != len(want) {
		t.Fatalf("%s: length changed: %d -> %d", name, len(want), len(got))
	}
	for i := range got {
		if got[i].Key != want[i].Key {
			t.Fatalf("%s: key mismatch at %d: got %d, stdlib %d", name, i, got[i].Key, want[i].Key)
		}
	}
	if !relation.SameMultiset(input, got) {
		t.Fatalf("%s: output is not a permutation of input", name)
	}
}

// TestSortDifferential runs Sort, SortWithMax, SortInto and SortOneLevel
// against the stdlib baseline over the adversarial distributions at sizes
// spanning the insertion cutoff, the cache-leaf threshold and multi-level
// recursion.
func TestSortDifferential(t *testing.T) {
	sizes := []int{3, insertionCutoff, cacheLeafTuples - 1, cacheLeafTuples + 1, 3 * cacheLeafTuples, 20000}
	for _, n := range sizes {
		for name, input := range adversarialDistributions(n, int64(n)) {
			maxKey := maxKeyOf(input)

			work := append([]relation.Tuple(nil), input...)
			Sort(work)
			checkAgainstStdlib(t, name+"/Sort", input, work)

			work = append(work[:0], input...)
			SortWithMax(work, maxKey)
			checkAgainstStdlib(t, name+"/SortWithMax", input, work)

			// SortWithMax must also tolerate a loose upper bound.
			if maxKey < math.MaxUint64/2 {
				work = append(work[:0], input...)
				SortWithMax(work, 2*maxKey+1)
				checkAgainstStdlib(t, name+"/SortWithMax(loose)", input, work)
			}

			src := append([]relation.Tuple(nil), input...)
			dst := make([]relation.Tuple, n+3) // tolerate oversized destinations
			SortInto(src, dst)
			checkAgainstStdlib(t, name+"/SortInto", input, dst[:n])
			if !relation.SameMultiset(src, input) {
				t.Fatalf("%s: SortInto modified its source", name)
			}

			work = append(work[:0], input...)
			SortOneLevel(work)
			checkAgainstStdlib(t, name+"/SortOneLevel", input, work)
		}
	}
}

// FuzzSortDifferential is the fuzz form of the differential test: arbitrary
// byte strings decode into tuple slices (8-byte keys), which every sorting
// routine must order identically to the stdlib baseline.
func FuzzSortDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(binary.LittleEndian.AppendUint64(nil, math.MaxUint64))
	seed := make([]byte, 0, 64)
	for i := 0; i < 8; i++ {
		seed = binary.LittleEndian.AppendUint64(seed, uint64(1)<<(8*uint(i)))
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 8
		input := make([]relation.Tuple, n)
		for i := 0; i < n; i++ {
			input[i] = relation.Tuple{Key: binary.LittleEndian.Uint64(data[i*8:]), Payload: uint64(i)}
		}

		work := append([]relation.Tuple(nil), input...)
		Sort(work)
		checkAgainstStdlib(t, "Sort", input, work)

		dst := make([]relation.Tuple, n)
		SortInto(input, dst)
		checkAgainstStdlib(t, "SortInto", input, dst)

		work = append(work[:0], input...)
		SortWithMax(work, maxKeyOf(input))
		checkAgainstStdlib(t, "SortWithMax", input, work)
	})
}

// TestSortIntoExactSize pins the contract that only dst[:len(src)] is
// touched.
func TestSortIntoExactSize(t *testing.T) {
	src := makeTuples(5000, 9, 1<<32)
	dst := make([]relation.Tuple, len(src)+10)
	sentinel := relation.Tuple{Key: math.MaxUint64, Payload: 0xDEAD}
	for i := len(src); i < len(dst); i++ {
		dst[i] = sentinel
	}
	SortInto(src, dst)
	checkAgainstStdlib(t, "SortInto", src, dst[:len(src)])
	for i := len(src); i < len(dst); i++ {
		if dst[i] != sentinel {
			t.Fatalf("SortInto wrote past len(src) at %d", i)
		}
	}
}
