package sorting

import "repro/internal/relation"

// Columnar (structure-of-arrays) variants of the multi-level Radix/IntroSort
// for the batch execution path: the key column is sorted directly — in tandem
// with a permutation index column recording where each key came from — and
// the payload column is permuted afterwards in one separate contiguous gather
// pass. Per element the radix swap cycle then moves 12 bytes (8-byte key +
// 4-byte index) instead of the 16-byte tuple, every histogram pass streams
// over a pure uint64 column at full cache-line utilization, and the payload
// bytes are touched exactly once, at the end, sequentially.
//
// All routines reuse the machinery of sort.go unchanged in structure — the
// same digits, cutoffs, American-flag swap and IntroSort leaves — so the AoS
// and SoA paths stay behaviourally identical (same ordering guarantees, same
// instability) and differential tests can compare them directly.

// SortColumns sorts keys in place by ascending value and permutes pays
// alongside, so (keys[i], pays[i]) remain the same tuples before and after.
// perm and payScratch are optional scratch buffers of at least len(keys)
// elements (typically drawn from a memory.Lease); nil scratches allocate.
// Like Sort it is not stable.
func SortColumns(keys, pays []uint64, perm []int32, payScratch []uint64) {
	n := len(keys)
	if n < 2 {
		return
	}
	if perm == nil {
		perm = make([]int32, n)
	}
	perm = perm[:n]
	if payScratch == nil {
		payScratch = make([]uint64, n)
	}
	payScratch = payScratch[:n]

	maxKey := maxKeyOfColumn(keys)
	if idxBits, ok := packedIndexBits(n, maxKey); ok {
		sortColumnsPacked(keys, pays, perm, payScratch, maxKey, idxBits)
		return
	}

	for i := range perm {
		perm[i] = int32(i)
	}
	if n <= minRadixSize {
		leafSortCols(keys, perm)
	} else {
		msdRadixSortCols(keys, perm, topShift(maxKey))
	}
	gatherPayloads(payScratch, pays, perm)
	copy(pays[:n], payScratch)
}

// SortColumnsInto sorts the (srcKeys, srcPays) columns by ascending key into
// (dstKeys, dstPays), leaving the source untouched. Like SortInto, the first
// radix digit runs as an out-of-place scatter of the key column; the payload
// column is written exactly once by the final gather pass. perm is optional
// scratch of at least len(srcKeys) int32s; nil allocates. Not stable.
func SortColumnsInto(srcKeys, srcPays, dstKeys, dstPays []uint64, perm []int32) {
	n := len(srcKeys)
	dstKeys = dstKeys[:n]
	dstPays = dstPays[:n]
	if perm == nil {
		perm = make([]int32, n)
	}
	perm = perm[:n]

	maxKey := maxKeyOfColumn(srcKeys)
	if idxBits, ok := packedIndexBits(n, maxKey); ok {
		sortColumnsIntoPacked(srcKeys, srcPays, dstKeys, dstPays, maxKey, idxBits)
		return
	}

	if n <= minRadixSize {
		copy(dstKeys, srcKeys)
		for i := range perm {
			perm[i] = int32(i)
		}
		leafSortCols(dstKeys, perm)
		gatherPayloads(dstPays, srcPays, perm)
		return
	}

	shift := topShift(maxKey)

	var histogram [radixBuckets]int
	for _, k := range srcKeys {
		histogram[int(k>>shift)&radixMask]++
	}
	var cursors [radixBuckets]int
	sum := 0
	for b := 0; b < radixBuckets; b++ {
		cursors[b] = sum
		sum += histogram[b]
	}
	bounds := cursors // start offsets survive as partition bounds
	for i, k := range srcKeys {
		b := int(k>>shift) & radixMask
		dstKeys[cursors[b]] = k
		perm[cursors[b]] = int32(i)
		cursors[b]++
	}
	sortBucketsCols(dstKeys, perm, bounds[:], cursors[:], shift)
	gatherPayloads(dstPays, srcPays, perm)
}

// SortTuplesIntoColumns sorts an array-of-structs chunk into columnar form:
// dstKeys receives the keys in ascending order and dstPays the payloads in
// the same permutation. The AoS→SoA deinterleave is fused with the first
// radix digit — one sequential read of the 16-byte tuples feeding 256
// streaming key-column write cursors — so the representation change costs no
// separate pass over the data. perm is optional scratch; nil allocates.
func SortTuplesIntoColumns(src []relation.Tuple, dstKeys, dstPays []uint64, perm []int32) {
	n := len(src)
	dstKeys = dstKeys[:n]
	dstPays = dstPays[:n]
	if perm == nil {
		perm = make([]int32, n)
	}
	perm = perm[:n]

	maxKey := maxKeyOf(src)
	if idxBits, ok := packedIndexBits(n, maxKey); ok {
		sortTuplesPacked(src, dstKeys, dstPays, maxKey, idxBits)
		return
	}

	if n <= minRadixSize {
		for i, t := range src {
			dstKeys[i] = t.Key
			perm[i] = int32(i)
		}
		leafSortCols(dstKeys, perm)
		for i, p := range perm {
			dstPays[i] = src[p].Payload
		}
		return
	}

	shift := topShift(maxKey)

	var histogram [radixBuckets]int
	for _, t := range src {
		histogram[int(t.Key>>shift)&radixMask]++
	}
	var cursors [radixBuckets]int
	sum := 0
	for b := 0; b < radixBuckets; b++ {
		cursors[b] = sum
		sum += histogram[b]
	}
	bounds := cursors
	for i, t := range src {
		b := int(t.Key>>shift) & radixMask
		dstKeys[cursors[b]] = t.Key
		perm[cursors[b]] = int32(i)
		cursors[b]++
	}
	sortBucketsCols(dstKeys, perm, bounds[:], cursors[:], shift)
	for i, p := range perm {
		dstPays[i] = src[p].Payload
	}
}

// gatherPayloads applies the sorted permutation to the payload column in one
// contiguous pass: dst[i] = src[perm[i]]. The writes are sequential; the
// reads are the only random accesses the payload column ever sees.
func gatherPayloads(dst, src []uint64, perm []int32) {
	_ = dst[:len(perm)]
	for i, p := range perm {
		dst[i] = src[p]
	}
}

// maxKeyOfColumn scans a key column for its maximum (0 for empty input).
func maxKeyOfColumn(keys []uint64) uint64 {
	var maxKey uint64
	for _, k := range keys {
		maxKey = max(maxKey, k)
	}
	return maxKey
}

// msdRadixSortCols is msdRadixSort on a key column with a permutation column
// carried through every swap.
func msdRadixSortCols(keys []uint64, perm []int32, shift int) {
	var histogram [radixBuckets]int
	for _, k := range keys {
		histogram[int(k>>shift)&radixMask]++
	}

	var bounds, next [radixBuckets]int
	sum := 0
	for b := 0; b < radixBuckets; b++ {
		bounds[b] = sum
		next[b] = sum
		sum += histogram[b]
	}

	for b := 0; b < radixBuckets; b++ {
		end := bounds[b] + histogram[b]
		for i := next[b]; i < end; {
			dst := int(keys[i]>>shift) & radixMask
			if dst == b {
				i++
				next[b] = i
				continue
			}
			j := next[dst]
			keys[i], keys[j] = keys[j], keys[i]
			perm[i], perm[j] = perm[j], perm[i]
			next[dst]++
		}
	}

	ends := next
	sortBucketsCols(keys, perm, bounds[:], ends[:], shift)
}

// sortBucketsCols is sortBuckets for the columnar representation.
func sortBucketsCols(keys []uint64, perm []int32, bounds, ends []int, shift int) {
	for b := 0; b < radixBuckets; b++ {
		pk := keys[bounds[b]:ends[b]]
		pp := perm[bounds[b]:ends[b]]
		if len(pk) < 2 {
			continue
		}
		if len(pk) > cacheLeafTuples && shift >= radixBits {
			msdRadixSortCols(pk, pp, shift-radixBits)
			continue
		}
		if shift == 0 && len(pk) > cacheLeafTuples {
			// All digits consumed: every key in the bucket is equal.
			continue
		}
		leafSortCols(pk, pp)
	}
}

// leafSortCols is leafSort for one sub-cache key/perm partition.
func leafSortCols(keys []uint64, perm []int32) {
	if len(keys) > insertionCutoff {
		introSortLoopCols(keys, perm, 2*log2ceil(len(keys)))
	}
	insertionSortCols(keys, perm)
}

// introSortLoopCols is introSortLoop over key/perm columns.
func introSortLoopCols(keys []uint64, perm []int32, depthLimit int) {
	for len(keys) > insertionCutoff {
		if depthLimit == 0 {
			heapSortCols(keys, perm)
			return
		}
		depthLimit--
		p := partitionHoareCols(keys, perm)
		if p < len(keys)-p {
			introSortLoopCols(keys[:p], perm[:p], depthLimit)
			keys, perm = keys[p:], perm[p:]
		} else {
			introSortLoopCols(keys[p:], perm[p:], depthLimit)
			keys, perm = keys[:p], perm[:p]
		}
	}
}

// partitionHoareCols is partitionHoare over key/perm columns.
func partitionHoareCols(keys []uint64, perm []int32) int {
	pivot := medianOfThreeKeys(keys)
	i, j := -1, len(keys)
	for {
		for {
			i++
			if keys[i] >= pivot {
				break
			}
		}
		for {
			j--
			if keys[j] <= pivot {
				break
			}
		}
		if i >= j {
			if j+1 <= 0 || j+1 >= len(keys) {
				return len(keys) / 2
			}
			return j + 1
		}
		keys[i], keys[j] = keys[j], keys[i]
		perm[i], perm[j] = perm[j], perm[i]
	}
}

// medianOfThreeKeys returns the median of the first, middle and last keys.
func medianOfThreeKeys(keys []uint64) uint64 {
	a := keys[0]
	b := keys[len(keys)/2]
	c := keys[len(keys)-1]
	switch {
	case (a <= b) == (b <= c):
		return b
	case (b <= a) == (a <= c):
		return a
	default:
		return c
	}
}

// heapSortCols is heapSort over key/perm columns.
func heapSortCols(keys []uint64, perm []int32) {
	n := len(keys)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownCols(keys, perm, i, n)
	}
	for end := n - 1; end > 0; end-- {
		keys[0], keys[end] = keys[end], keys[0]
		perm[0], perm[end] = perm[end], perm[0]
		siftDownCols(keys, perm, 0, end)
	}
}

// siftDownCols restores the max-heap property within keys[:n].
func siftDownCols(keys []uint64, perm []int32, i, n int) {
	for {
		child := 2*i + 1
		if child >= n {
			return
		}
		if child+1 < n && keys[child+1] > keys[child] {
			child++
		}
		if keys[i] >= keys[child] {
			return
		}
		keys[i], keys[child] = keys[child], keys[i]
		perm[i], perm[child] = perm[child], perm[i]
		i = child
	}
}

// insertionSortCols sorts key/perm columns in place for short partitions.
func insertionSortCols(keys []uint64, perm []int32) {
	for i := 1; i < len(keys); i++ {
		k := keys[i]
		p := perm[i]
		j := i - 1
		for j >= 0 && keys[j] > k {
			keys[j+1] = keys[j]
			perm[j+1] = perm[j]
			j--
		}
		keys[j+1] = k
		perm[j+1] = p
	}
}

// IsSortedKeys reports whether a key column is in non-decreasing order.
func IsSortedKeys(keys []uint64) bool {
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return false
		}
	}
	return true
}
