// Package sorting implements the three-phase sorting routine the MPSM paper
// (Section 2.3) uses for run generation:
//
//  1. An in-place MSD radix partitioning step that splits the input into 256
//     partitions according to the 8 most significant bits of the (normalized)
//     join key. The step computes a 256-bucket histogram, derives partition
//     boundaries, and swaps elements into place (American-flag style), so no
//     auxiliary tuple buffer is needed.
//  2. IntroSort (Musser) on every partition: quicksort bounded to 2·log2(N)
//     recursion levels with a heapsort fallback, stopping at small partitions.
//  3. A final insertion-sort pass over partitions smaller than the cutoff
//     (16 elements), which obtains the total order.
//
// The paper reports this routine to be roughly 30% faster than the C++ STL
// sort even with 32 workers sorting local runs concurrently; the package also
// exposes a standard-library baseline (SortStdlib) so the benchmark harness
// can reproduce that comparison in Go.
package sorting

import (
	"math/bits"
	"sort"

	"repro/internal/relation"
)

// radixBits is the number of most significant key bits used by the first
// radix partitioning phase (2^8 = 256 partitions), as specified in the paper.
const radixBits = 8

// radixBuckets is the number of partitions produced by the radix phase.
const radixBuckets = 1 << radixBits

// insertionCutoff is the partition size below which IntroSort leaves the data
// to the final insertion-sort pass. The paper uses 16.
const insertionCutoff = 16

// Sort orders tuples in place by ascending join key using the paper's
// three-phase Radix/IntroSort. It is not stable; tuples with equal keys may
// appear in any relative order.
func Sort(tuples []relation.Tuple) {
	if len(tuples) < 2 {
		return
	}
	if len(tuples) <= insertionCutoff {
		insertionSort(tuples)
		return
	}

	shift := radixShift(tuples)
	bounds := radixPartition(tuples, shift)

	// Phase 2: IntroSort each radix partition independently; the radix
	// phase already guarantees inter-partition order.
	for b := 0; b < radixBuckets; b++ {
		part := tuples[bounds[b]:bounds[b+1]]
		if len(part) > insertionCutoff {
			depthLimit := 2 * log2ceil(len(part))
			introSortLoop(part, depthLimit)
		}
	}

	// Phase 3: one final insertion-sort pass. Thanks to the radix bounds
	// and the quicksort cutoff every element is within a small distance of
	// its final position, so this pass is cheap. The pass runs per
	// partition so that elements never cross radix boundaries.
	for b := 0; b < radixBuckets; b++ {
		part := tuples[bounds[b]:bounds[b+1]]
		if len(part) > 1 {
			insertionSort(part)
		}
	}
}

// SortStdlib orders tuples in place by ascending key using the Go standard
// library (sort.Slice). It exists as the comparison baseline for the paper's
// Section 2.3 claim and for differential testing of Sort.
func SortStdlib(tuples []relation.Tuple) {
	sort.Slice(tuples, func(i, j int) bool { return tuples[i].Key < tuples[j].Key })
}

// IsSorted reports whether tuples are in non-decreasing key order.
func IsSorted(tuples []relation.Tuple) bool { return relation.IsSortedByKey(tuples) }

// radixShift determines how far keys must be shifted right so that the top
// radixBits bits of the observed key range select the radix bucket. The paper
// notes that, depending on the actual minimum and maximum join key values, the
// keys may need preprocessing with bitwise shifts before radix clustering; we
// derive the shift from the highest set bit of the maximum key so that key
// domains much smaller than 2^64 (for example [0, 2^32) in the evaluation)
// still spread over all 256 buckets.
func radixShift(tuples []relation.Tuple) uint {
	var maxKey uint64
	for _, t := range tuples {
		if t.Key > maxKey {
			maxKey = t.Key
		}
	}
	width := bits.Len64(maxKey)
	if width <= radixBits {
		return 0
	}
	return uint(width - radixBits)
}

// radixPartition performs the in-place MSD radix partitioning phase. It
// returns the 257 partition boundaries: partition b occupies
// tuples[bounds[b]:bounds[b+1]] and contains exactly the tuples whose bucket
// (key >> shift) equals b. After the call, buckets appear in ascending order.
func radixPartition(tuples []relation.Tuple, shift uint) [radixBuckets + 1]int {
	var histogram [radixBuckets]int
	for _, t := range tuples {
		histogram[bucketOf(t.Key, shift)]++
	}

	// Prefix sums: start offset of each bucket.
	var bounds [radixBuckets + 1]int
	for b := 0; b < radixBuckets; b++ {
		bounds[b+1] = bounds[b] + histogram[b]
	}

	// American-flag swap: walk each bucket's region and swap misplaced
	// tuples into the next free slot of their home bucket.
	var next [radixBuckets]int
	copy(next[:], bounds[:radixBuckets])
	for b := 0; b < radixBuckets; b++ {
		for i := next[b]; i < bounds[b+1]; {
			dst := bucketOf(tuples[i].Key, shift)
			if dst == b {
				i++
				next[b] = i
				continue
			}
			tuples[i], tuples[next[dst]] = tuples[next[dst]], tuples[i]
			next[dst]++
		}
	}
	return bounds
}

// bucketOf maps a key to its radix bucket for the given shift.
func bucketOf(key uint64, shift uint) int {
	b := key >> shift
	if b >= radixBuckets {
		// Keys above the sampled maximum (possible only if callers pass
		// a stale shift) clamp into the last bucket so the partition
		// bounds stay valid; the later sort phases restore total order.
		return radixBuckets - 1
	}
	return int(b)
}

// introSortLoop is the quicksort part of IntroSort: it recurses on the
// smaller side, loops on the larger side, leaves partitions below the
// insertion cutoff untouched, and degrades to heapsort when the depth limit
// reaches zero (guarding against quadratic behaviour on adversarial inputs).
func introSortLoop(tuples []relation.Tuple, depthLimit int) {
	for len(tuples) > insertionCutoff {
		if depthLimit == 0 {
			heapSort(tuples)
			return
		}
		depthLimit--
		p := partitionHoare(tuples)
		// Recurse on the smaller side to bound stack depth at O(log n).
		if p < len(tuples)-p {
			introSortLoop(tuples[:p], depthLimit)
			tuples = tuples[p:]
		} else {
			introSortLoop(tuples[p:], depthLimit)
			tuples = tuples[:p]
		}
	}
}

// partitionHoare partitions tuples around a median-of-three pivot and returns
// the split index p such that every element of tuples[:p] is <= every element
// of tuples[p:] and both sides are non-empty.
func partitionHoare(tuples []relation.Tuple) int {
	pivot := medianOfThree(tuples)
	i, j := -1, len(tuples)
	for {
		for {
			i++
			if tuples[i].Key >= pivot {
				break
			}
		}
		for {
			j--
			if tuples[j].Key <= pivot {
				break
			}
		}
		if i >= j {
			if j+1 <= 0 || j+1 >= len(tuples) {
				// Degenerate split (all keys equal to an extreme
				// pivot); fall back to a midpoint split to
				// guarantee progress.
				return len(tuples) / 2
			}
			return j + 1
		}
		tuples[i], tuples[j] = tuples[j], tuples[i]
	}
}

// medianOfThree returns the median key of the first, middle and last elements.
func medianOfThree(tuples []relation.Tuple) uint64 {
	a := tuples[0].Key
	b := tuples[len(tuples)/2].Key
	c := tuples[len(tuples)-1].Key
	switch {
	case (a <= b) == (b <= c):
		return b
	case (b <= a) == (a <= c):
		return a
	default:
		return c
	}
}

// heapSort sorts tuples in place using a binary max-heap. It is the fallback
// of IntroSort when the quicksort recursion depth is exhausted.
func heapSort(tuples []relation.Tuple) {
	n := len(tuples)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(tuples, i, n)
	}
	for end := n - 1; end > 0; end-- {
		tuples[0], tuples[end] = tuples[end], tuples[0]
		siftDown(tuples, 0, end)
	}
}

// siftDown restores the max-heap property for the subtree rooted at i within
// tuples[:n].
func siftDown(tuples []relation.Tuple, i, n int) {
	for {
		child := 2*i + 1
		if child >= n {
			return
		}
		if child+1 < n && tuples[child+1].Key > tuples[child].Key {
			child++
		}
		if tuples[i].Key >= tuples[child].Key {
			return
		}
		tuples[i], tuples[child] = tuples[child], tuples[i]
		i = child
	}
}

// insertionSort sorts tuples in place; it is efficient for the short, almost
// sorted partitions the earlier phases leave behind.
func insertionSort(tuples []relation.Tuple) {
	for i := 1; i < len(tuples); i++ {
		t := tuples[i]
		j := i - 1
		for j >= 0 && tuples[j].Key > t.Key {
			tuples[j+1] = tuples[j]
			j--
		}
		tuples[j+1] = t
	}
}

// log2ceil returns ceil(log2(n)) for n >= 1.
func log2ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}
