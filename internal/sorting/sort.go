// Package sorting implements the hardware-conscious sorting routine the MPSM
// paper (Section 2.3) uses for run generation, generalized from the paper's
// single radix level to a cache-conscious multi-level MSD radix sort:
//
//  1. In-place MSD radix partitioning on successive 8-bit digits of the
//     (normalized) join key, American-flag style: a 256-bucket histogram per
//     recursion level, prefix sums for the partition boundaries, and a swap
//     cycle that moves every misplaced tuple to its home bucket. The digit
//     shift is derived once from the maximum key — per level it just drops by
//     8 bits — so the per-tuple hot loop is a shift and a mask with no
//     comparisons, no key-max rescans and no clamp branch. The per-level
//     histograms live on the call stack (a software-managed histogram stack);
//     the recursion depth is bounded by the key width (at most 8 levels).
//  2. Radix recursion stops as soon as a partition fits comfortably in the
//     CPU cache (cacheLeafTuples); such leaves are finished with IntroSort
//     (Musser): quicksort bounded to 2·log2(N) recursion levels with a
//     heapsort fallback, stopping at small partitions.
//  3. A final insertion-sort pass over the sub-cutoff partitions (16
//     elements, as in the paper) obtains the total order.
//
// SortInto additionally performs the first radix digit as an out-of-place
// scatter into a caller-provided destination buffer: where run generation
// would otherwise copy a chunk and then swap tuples through the whole run,
// the scatter does the copy and the first partitioning pass in one sweep of
// sequential reads and 256 streaming write cursors, roughly halving the swap
// traffic of the widest level.
//
// The paper reports its single-level routine to be roughly 30% faster than
// the C++ STL sort; the package keeps both a standard-library baseline
// (SortStdlib) and the previous single-level implementation (SortOneLevel) so
// the benchmark harness can reproduce that comparison and quantify the
// multi-level speedup.
package sorting

import (
	"math/bits"
	"sort"

	"repro/internal/relation"
)

// radixBits is the number of key bits consumed per MSD radix level (2^8 = 256
// buckets), as in the paper's radix phase.
const radixBits = 8

// radixBuckets is the number of buckets per radix level.
const radixBuckets = 1 << radixBits

// radixMask extracts one digit after the shift.
const radixMask = radixBuckets - 1

// cacheLeafTuples is the partition size below which the radix recursion stops
// and comparison sorting takes over: 2048 16-byte tuples = 32 KiB, sized to
// the close-to-core cache (L1d on current x86/ARM parts, comfortably inside
// L2 everywhere) so that the leaf sort runs entirely in cache. Larger leaves
// would push IntroSort's O(n log n) compare-and-swap passes out of cache;
// smaller leaves pay radix histogram overhead on partitions insertion sort
// handles faster.
const cacheLeafTuples = 2048

// insertionCutoff is the partition size below which IntroSort leaves the data
// to the final insertion-sort pass. The paper uses 16.
const insertionCutoff = 16

// minRadixSize is the input size below which Sort skips radix partitioning
// entirely; it equals cacheLeafTuples because such inputs are a single leaf.
const minRadixSize = cacheLeafTuples

// Sort orders tuples in place by ascending join key using the multi-level
// Radix/IntroSort. It is not stable; tuples with equal keys may appear in any
// relative order. Sort determines the key domain itself with one scan; use
// SortWithMax when the maximum key is already known.
func Sort(tuples []relation.Tuple) {
	SortWithMax(tuples, maxKeyOf(tuples))
}

// SortWithMax is Sort for callers that already know (an upper bound on) the
// maximum key in tuples, e.g. from histogram or splitter work on the same
// data; it skips the key-max scan. maxKey must be >= every key in tuples —
// the radix digits are derived from it, and a too-small bound would misplace
// larger keys.
func SortWithMax(tuples []relation.Tuple, maxKey uint64) {
	if len(tuples) < 2 {
		return
	}
	if len(tuples) <= minRadixSize {
		leafSort(tuples)
		return
	}
	msdRadixSort(tuples, topShift(maxKey))
}

// SortInto sorts the tuples of src by ascending join key into dst, leaving
// src untouched. len(dst) must be >= len(src); only dst[:len(src)] is
// written. The first radix digit runs as an out-of-place scatter — one
// sequential read of src feeding 256 sequential write cursors in dst — which
// fuses the copy run generation needs anyway with the widest partitioning
// pass; the remaining levels run in place within dst. Like Sort it is not
// stable.
func SortInto(src, dst []relation.Tuple) {
	dst = dst[:len(src)]
	if len(src) <= minRadixSize {
		copy(dst, src)
		leafSort(dst)
		return
	}

	maxKey := maxKeyOf(src)
	shift := topShift(maxKey)

	var histogram [radixBuckets]int
	for _, t := range src {
		histogram[int(t.Key>>shift)&radixMask]++
	}
	var cursors [radixBuckets]int
	sum := 0
	for b := 0; b < radixBuckets; b++ {
		cursors[b] = sum
		sum += histogram[b]
	}
	bounds := cursors // start offsets survive as partition bounds
	for _, t := range src {
		b := int(t.Key>>shift) & radixMask
		dst[cursors[b]] = t
		cursors[b]++
	}
	sortBuckets(dst, bounds[:], cursors[:], shift)
}

// SortStdlib orders tuples in place by ascending key using the Go standard
// library (sort.Slice). It exists as the comparison baseline for the paper's
// Section 2.3 claim and for differential testing of Sort.
func SortStdlib(tuples []relation.Tuple) {
	sort.Slice(tuples, func(i, j int) bool { return tuples[i].Key < tuples[j].Key })
}

// IsSorted reports whether tuples are in non-decreasing key order.
func IsSorted(tuples []relation.Tuple) bool { return relation.IsSortedByKey(tuples) }

// maxKeyOf scans for the maximum key (0 for empty input).
func maxKeyOf(tuples []relation.Tuple) uint64 {
	var maxKey uint64
	for _, t := range tuples {
		if t.Key > maxKey {
			maxKey = t.Key
		}
	}
	return maxKey
}

// topShift returns the byte-aligned right shift that selects the most
// significant occupied 8-bit digit of keys bounded by maxKey: keys in
// [0, 2^32) yield 24, keys below 256 yield 0. Byte alignment keeps every
// subsequent level at exactly shift-8, so no per-level key inspection is
// needed.
func topShift(maxKey uint64) int {
	width := bits.Len64(maxKey)
	if width <= radixBits {
		return 0
	}
	return (width - 1) / radixBits * radixBits
}

// msdRadixSort partitions tuples in place on the 8-bit digit at shift and
// recurses on oversized buckets with the next-lower digit. The histogram is a
// stack variable, so the recursion (bounded by the 8 digits of a 64-bit key)
// maintains a software-managed histogram stack without heap allocation.
func msdRadixSort(tuples []relation.Tuple, shift int) {
	// Histogram of the current digit.
	var histogram [radixBuckets]int
	for _, t := range tuples {
		histogram[int(t.Key>>shift)&radixMask]++
	}

	// Prefix sums: bounds[b] is the start offset of bucket b, next[b] the
	// bucket's write cursor during the American-flag swap cycle.
	var bounds, next [radixBuckets]int
	sum := 0
	for b := 0; b < radixBuckets; b++ {
		bounds[b] = sum
		next[b] = sum
		sum += histogram[b]
	}

	// American-flag swap: walk each bucket's region and swap misplaced
	// tuples into the next free slot of their home bucket.
	for b := 0; b < radixBuckets; b++ {
		end := bounds[b] + histogram[b]
		for i := next[b]; i < end; {
			dst := int(tuples[i].Key>>shift) & radixMask
			if dst == b {
				i++
				next[b] = i
				continue
			}
			tuples[i], tuples[next[dst]] = tuples[next[dst]], tuples[i]
			next[dst]++
		}
	}

	ends := next // after the swap cycle, next[b] == exclusive end of bucket b
	sortBuckets(tuples, bounds[:], ends[:], shift)
}

// sortBuckets finishes every bucket of one radix level: buckets above the
// cache threshold recurse on the next digit (unless the key bits are
// exhausted, which means all keys in the bucket are equal), the rest are
// leaf-sorted in cache.
func sortBuckets(tuples []relation.Tuple, bounds, ends []int, shift int) {
	for b := 0; b < radixBuckets; b++ {
		part := tuples[bounds[b]:ends[b]]
		if len(part) < 2 {
			continue
		}
		if len(part) > cacheLeafTuples && shift >= radixBits {
			msdRadixSort(part, shift-radixBits)
			continue
		}
		if shift == 0 && len(part) > cacheLeafTuples {
			// All digits consumed: every key in the bucket is equal,
			// the partition is trivially sorted.
			continue
		}
		leafSort(part)
	}
}

// leafSort totally orders one sub-cache partition: IntroSort down to the
// insertion cutoff, then one insertion-sort pass (phases 2 and 3 of the
// paper's routine).
func leafSort(tuples []relation.Tuple) {
	if len(tuples) > insertionCutoff {
		introSortLoop(tuples, 2*log2ceil(len(tuples)))
	}
	insertionSort(tuples)
}

// SortOneLevel is the package's previous implementation — a single 8-bit
// radix level followed by IntroSort on every partition, the literal routine
// of the paper's Section 2.3. It is retained as the benchmark baseline that
// quantifies what the multi-level recursion buys; new code should use Sort.
//
// Faithful to the original, its shift is NOT byte aligned: the top 8 bits of
// the observed key width select the bucket (width-8), so all 256 buckets are
// occupied for any key domain. The multi-level sort trades that for byte
// alignment because its recursion makes up the difference; a single level
// never recurses, so aligning here would just degrade the baseline.
func SortOneLevel(tuples []relation.Tuple) {
	if len(tuples) < 2 {
		return
	}
	if len(tuples) <= insertionCutoff {
		insertionSort(tuples)
		return
	}

	shift := 0
	if width := bits.Len64(maxKeyOf(tuples)); width > radixBits {
		shift = width - radixBits
	}
	var histogram [radixBuckets]int
	for _, t := range tuples {
		histogram[int(t.Key>>shift)&radixMask]++
	}
	var bounds [radixBuckets + 1]int
	for b := 0; b < radixBuckets; b++ {
		bounds[b+1] = bounds[b] + histogram[b]
	}
	var next [radixBuckets]int
	copy(next[:], bounds[:radixBuckets])
	for b := 0; b < radixBuckets; b++ {
		for i := next[b]; i < bounds[b+1]; {
			dst := int(tuples[i].Key>>shift) & radixMask
			if dst == b {
				i++
				next[b] = i
				continue
			}
			tuples[i], tuples[next[dst]] = tuples[next[dst]], tuples[i]
			next[dst]++
		}
	}
	for b := 0; b < radixBuckets; b++ {
		part := tuples[bounds[b]:bounds[b+1]]
		if len(part) > insertionCutoff {
			introSortLoop(part, 2*log2ceil(len(part)))
		}
	}
	for b := 0; b < radixBuckets; b++ {
		part := tuples[bounds[b]:bounds[b+1]]
		if len(part) > 1 {
			insertionSort(part)
		}
	}
}

// introSortLoop is the quicksort part of IntroSort: it recurses on the
// smaller side, loops on the larger side, leaves partitions below the
// insertion cutoff untouched, and degrades to heapsort when the depth limit
// reaches zero (guarding against quadratic behaviour on adversarial inputs).
func introSortLoop(tuples []relation.Tuple, depthLimit int) {
	for len(tuples) > insertionCutoff {
		if depthLimit == 0 {
			heapSort(tuples)
			return
		}
		depthLimit--
		p := partitionHoare(tuples)
		// Recurse on the smaller side to bound stack depth at O(log n).
		if p < len(tuples)-p {
			introSortLoop(tuples[:p], depthLimit)
			tuples = tuples[p:]
		} else {
			introSortLoop(tuples[p:], depthLimit)
			tuples = tuples[:p]
		}
	}
}

// partitionHoare partitions tuples around a median-of-three pivot and returns
// the split index p such that every element of tuples[:p] is <= every element
// of tuples[p:] and both sides are non-empty.
func partitionHoare(tuples []relation.Tuple) int {
	pivot := medianOfThree(tuples)
	i, j := -1, len(tuples)
	for {
		for {
			i++
			if tuples[i].Key >= pivot {
				break
			}
		}
		for {
			j--
			if tuples[j].Key <= pivot {
				break
			}
		}
		if i >= j {
			if j+1 <= 0 || j+1 >= len(tuples) {
				// Degenerate split (all keys equal to an extreme
				// pivot); fall back to a midpoint split to
				// guarantee progress.
				return len(tuples) / 2
			}
			return j + 1
		}
		tuples[i], tuples[j] = tuples[j], tuples[i]
	}
}

// medianOfThree returns the median key of the first, middle and last elements.
func medianOfThree(tuples []relation.Tuple) uint64 {
	a := tuples[0].Key
	b := tuples[len(tuples)/2].Key
	c := tuples[len(tuples)-1].Key
	switch {
	case (a <= b) == (b <= c):
		return b
	case (b <= a) == (a <= c):
		return a
	default:
		return c
	}
}

// heapSort sorts tuples in place using a binary max-heap. It is the fallback
// of IntroSort when the quicksort recursion depth is exhausted.
func heapSort(tuples []relation.Tuple) {
	n := len(tuples)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(tuples, i, n)
	}
	for end := n - 1; end > 0; end-- {
		tuples[0], tuples[end] = tuples[end], tuples[0]
		siftDown(tuples, 0, end)
	}
}

// siftDown restores the max-heap property for the subtree rooted at i within
// tuples[:n].
func siftDown(tuples []relation.Tuple, i, n int) {
	for {
		child := 2*i + 1
		if child >= n {
			return
		}
		if child+1 < n && tuples[child+1].Key > tuples[child].Key {
			child++
		}
		if tuples[i].Key >= tuples[child].Key {
			return
		}
		tuples[i], tuples[child] = tuples[child], tuples[i]
		i = child
	}
}

// insertionSort sorts tuples in place; it is efficient for the short, almost
// sorted partitions the earlier phases leave behind.
func insertionSort(tuples []relation.Tuple) {
	for i := 1; i < len(tuples); i++ {
		t := tuples[i]
		j := i - 1
		for j >= 0 && tuples[j].Key > t.Key {
			tuples[j+1] = tuples[j]
			j--
		}
		tuples[j+1] = t
	}
}

// log2ceil returns ceil(log2(n)) for n >= 1.
func log2ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}
