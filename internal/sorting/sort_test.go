package sorting

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

// makeTuples builds a deterministic pseudo-random tuple slice.
func makeTuples(n int, seed int64, keyRange uint64) []relation.Tuple {
	rng := rand.New(rand.NewSource(seed))
	tuples := make([]relation.Tuple, n)
	for i := range tuples {
		if keyRange == 0 {
			tuples[i] = relation.Tuple{Key: rng.Uint64(), Payload: uint64(i)}
		} else {
			tuples[i] = relation.Tuple{Key: rng.Uint64() % keyRange, Payload: uint64(i)}
		}
	}
	return tuples
}

func checkSorted(t *testing.T, name string, original, sorted []relation.Tuple) {
	t.Helper()
	if !IsSorted(sorted) {
		t.Fatalf("%s: output not sorted", name)
	}
	if !relation.SameMultiset(original, sorted) {
		t.Fatalf("%s: output is not a permutation of input", name)
	}
}

func TestSortBasicCases(t *testing.T) {
	cases := []struct {
		name   string
		tuples []relation.Tuple
	}{
		{"empty", nil},
		{"single", []relation.Tuple{{Key: 5, Payload: 1}}},
		{"two sorted", []relation.Tuple{{Key: 1}, {Key: 2}}},
		{"two reversed", []relation.Tuple{{Key: 2}, {Key: 1}}},
		{"all equal", []relation.Tuple{{Key: 7, Payload: 1}, {Key: 7, Payload: 2}, {Key: 7, Payload: 3}}},
		{"already sorted", []relation.Tuple{{Key: 1}, {Key: 2}, {Key: 3}, {Key: 4}, {Key: 5}}},
		{"reverse sorted", []relation.Tuple{{Key: 5}, {Key: 4}, {Key: 3}, {Key: 2}, {Key: 1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			original := append([]relation.Tuple(nil), tc.tuples...)
			work := append([]relation.Tuple(nil), tc.tuples...)
			Sort(work)
			checkSorted(t, tc.name, original, work)
		})
	}
}

func TestSortSizesAndDistributions(t *testing.T) {
	sizes := []int{15, 16, 17, 100, 255, 256, 257, 1000, 4096, 10000}
	ranges := []uint64{0, 1, 2, 16, 256, 1 << 20, 1 << 32}
	for _, n := range sizes {
		for _, kr := range ranges {
			work := makeTuples(n, int64(n)*31+int64(kr%97), kr)
			original := append([]relation.Tuple(nil), work...)
			Sort(work)
			checkSorted(t, "random", original, work)
		}
	}
}

func TestSortAdversarial(t *testing.T) {
	// Sawtooth, organ-pipe and constant-block patterns are classic
	// quicksort killers; IntroSort's heapsort fallback must handle them.
	n := 5000
	patterns := map[string]func(i int) uint64{
		"sawtooth":   func(i int) uint64 { return uint64(i % 17) },
		"organpipe":  func(i int) uint64 { return uint64(min(i, n-i)) },
		"constant":   func(i int) uint64 { return 42 },
		"descending": func(i int) uint64 { return uint64(n - i) },
		"two values": func(i int) uint64 { return uint64(i & 1) },
	}
	for name, gen := range patterns {
		t.Run(name, func(t *testing.T) {
			work := make([]relation.Tuple, n)
			for i := range work {
				work[i] = relation.Tuple{Key: gen(i), Payload: uint64(i)}
			}
			original := append([]relation.Tuple(nil), work...)
			Sort(work)
			checkSorted(t, name, original, work)
		})
	}
}

func TestSortMatchesStdlib(t *testing.T) {
	for _, n := range []int{0, 1, 33, 1024, 9999} {
		a := makeTuples(n, int64(n), 1<<32)
		b := append([]relation.Tuple(nil), a...)
		Sort(a)
		SortStdlib(b)
		for i := range a {
			if a[i].Key != b[i].Key {
				t.Fatalf("n=%d: key mismatch at %d: %d vs %d", n, i, a[i].Key, b[i].Key)
			}
		}
	}
}

func TestSortProperty(t *testing.T) {
	f := func(keys []uint64) bool {
		tuples := make([]relation.Tuple, len(keys))
		for i, k := range keys {
			tuples[i] = relation.Tuple{Key: k, Payload: uint64(i)}
		}
		original := append([]relation.Tuple(nil), tuples...)
		Sort(tuples)
		return IsSorted(tuples) && relation.SameMultiset(original, tuples)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSortPreservesPayloadAssociation(t *testing.T) {
	// Payload must travel with its key: after sorting, each (key, payload)
	// pair must still exist.
	work := makeTuples(2000, 7, 100) // many duplicate keys
	original := append([]relation.Tuple(nil), work...)
	Sort(work)
	if !relation.SameMultiset(original, work) {
		t.Fatal("sorting broke key/payload association")
	}
}

func TestMSDRadixLevelPartitions(t *testing.T) {
	// After one msdRadixSort level the whole slice must be totally sorted
	// (the recursion finishes the buckets), and the top-digit buckets must
	// appear in ascending digit order.
	work := makeTuples(16384, 3, 1<<32)
	original := append([]relation.Tuple(nil), work...)
	shift := topShift(maxKeyOf(work))
	msdRadixSort(work, shift)
	checkSorted(t, "msdRadixSort", original, work)
	prev := -1
	for _, tup := range work {
		digit := int(tup.Key>>shift) & radixMask
		if digit < prev {
			t.Fatalf("top digit %d after %d: buckets out of order", digit, prev)
		}
		prev = digit
	}
}

func TestTopShift(t *testing.T) {
	// The shift is byte aligned: the most significant occupied 8-bit digit
	// selects the first radix level, and every lower level is shift-8.
	cases := []struct {
		maxKey uint64
		want   int
	}{
		{0, 0},
		{255, 0},
		{256, 8},
		{1<<16 - 1, 8},
		{1 << 16, 16},
		{1<<32 - 1, 24},
		{1 << 32, 32},
		{1<<63 - 1, 56},
		{^uint64(0), 56},
	}
	for _, tc := range cases {
		if got := topShift(tc.maxKey); got != tc.want {
			t.Errorf("topShift(%d) = %d, want %d", tc.maxKey, got, tc.want)
		}
	}
}

func TestHeapSortDirect(t *testing.T) {
	work := makeTuples(333, 11, 1000)
	original := append([]relation.Tuple(nil), work...)
	heapSort(work)
	checkSorted(t, "heapSort", original, work)
}

func TestInsertionSortDirect(t *testing.T) {
	work := makeTuples(40, 13, 50)
	original := append([]relation.Tuple(nil), work...)
	insertionSort(work)
	checkSorted(t, "insertionSort", original, work)
}

func TestIntroSortDepthFallback(t *testing.T) {
	// With a zero depth limit introSortLoop must immediately heapsort.
	work := makeTuples(500, 17, 1<<16)
	original := append([]relation.Tuple(nil), work...)
	introSortLoop(work, 0)
	checkSorted(t, "introSortLoop depth 0", original, work)
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := log2ceil(n); got != want {
			t.Errorf("log2ceil(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestMedianOfThree(t *testing.T) {
	cases := []struct {
		keys []uint64
		want uint64
	}{
		{[]uint64{1, 2, 3}, 2},
		{[]uint64{3, 2, 1}, 2},
		{[]uint64{2, 1, 3}, 2},
		{[]uint64{1, 3, 2}, 2},
		{[]uint64{5, 5, 5}, 5},
		{[]uint64{1, 1, 2}, 1},
	}
	for _, tc := range cases {
		tuples := make([]relation.Tuple, len(tc.keys))
		for i, k := range tc.keys {
			tuples[i].Key = k
		}
		if got := medianOfThree(tuples); got != tc.want {
			t.Errorf("medianOfThree(%v) = %d, want %d", tc.keys, got, tc.want)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
