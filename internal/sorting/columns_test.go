package sorting

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/batch"
	"repro/internal/relation"
)

// checkColumnsAgainstStdlib verifies a columnar sort output against the
// stdlib baseline: identical keys in identical positions, and the
// (key, payload) pairs a multiset-permutation of the input. The columnar
// sorts are unstable, so payload positions within equal-key groups may
// differ from the stdlib order — SameMultiset is the right comparison.
func checkColumnsAgainstStdlib(t *testing.T, name string, input []relation.Tuple, keys, pays []uint64) {
	t.Helper()
	want := append([]relation.Tuple(nil), input...)
	SortStdlib(want)
	if len(keys) != len(want) || len(pays) != len(want) {
		t.Fatalf("%s: length changed: %d -> keys %d, pays %d", name, len(want), len(keys), len(pays))
	}
	for i := range keys {
		if keys[i] != want[i].Key {
			t.Fatalf("%s: key mismatch at %d: got %d, stdlib %d", name, i, keys[i], want[i].Key)
		}
	}
	got := make([]relation.Tuple, len(keys))
	batch.Interleave(keys, pays, got)
	if !relation.SameMultiset(input, got) {
		t.Fatalf("%s: output is not a permutation of input", name)
	}
}

// TestSortColumnsDifferential runs the columnar sorts against the stdlib
// baseline over the adversarial distributions at sizes spanning the insertion
// cutoff, the cache-leaf threshold and multi-level recursion.
func TestSortColumnsDifferential(t *testing.T) {
	sizes := []int{0, 1, 3, insertionCutoff, cacheLeafTuples - 1, cacheLeafTuples + 1, 3 * cacheLeafTuples, 20000}
	for _, n := range sizes {
		for name, input := range adversarialDistributions(max(n, 1), int64(n)) {
			input = input[:n]

			// SortColumns: in-place over deinterleaved columns.
			keys := make([]uint64, n)
			pays := make([]uint64, n)
			batch.Deinterleave(input, keys, pays)
			SortColumns(keys, pays, nil, nil)
			checkColumnsAgainstStdlib(t, name+"/SortColumns", input, keys, pays)

			// SortColumns with caller-provided scratch.
			batch.Deinterleave(input, keys, pays)
			SortColumns(keys, pays, make([]int32, n+5), make([]uint64, n+5))
			checkColumnsAgainstStdlib(t, name+"/SortColumns(scratch)", input, keys, pays)

			// SortColumnsInto: out-of-place, source untouched.
			srcKeys := make([]uint64, n)
			srcPays := make([]uint64, n)
			batch.Deinterleave(input, srcKeys, srcPays)
			dstKeys := make([]uint64, n)
			dstPays := make([]uint64, n)
			SortColumnsInto(srcKeys, srcPays, dstKeys, dstPays, nil)
			checkColumnsAgainstStdlib(t, name+"/SortColumnsInto", input, dstKeys, dstPays)
			for i := range srcKeys {
				if srcKeys[i] != input[i].Key || srcPays[i] != input[i].Payload {
					t.Fatalf("%s: SortColumnsInto modified its source at %d", name, i)
				}
			}

			// SortTuplesIntoColumns: fused AoS→SoA conversion and sort.
			clear(dstKeys)
			clear(dstPays)
			SortTuplesIntoColumns(input, dstKeys, dstPays, nil)
			checkColumnsAgainstStdlib(t, name+"/SortTuplesIntoColumns", input, dstKeys, dstPays)
			if !IsSortedKeys(dstKeys) {
				t.Fatalf("%s: SortTuplesIntoColumns left keys unsorted", name)
			}
		}
	}
}

// TestSortColumnsPayloadPairing pins that the payload column really is
// permuted in tandem with the keys (not merely a multiset of payloads): with
// unique keys the pairing is fully determined.
func TestSortColumnsPayloadPairing(t *testing.T) {
	const n = 10000
	input := make([]relation.Tuple, n)
	for i := range input {
		k := uint64(i)*2654435761 + 12345 // unique keys, scrambled order
		input[i] = relation.Tuple{Key: k, Payload: k ^ 0xABCDEF}
	}
	keys := make([]uint64, n)
	pays := make([]uint64, n)
	SortTuplesIntoColumns(input, keys, pays, nil)
	for i := range keys {
		if pays[i] != keys[i]^0xABCDEF {
			t.Fatalf("payload decoupled from key at %d: key %d, payload %d", i, keys[i], pays[i])
		}
	}
}

// FuzzSortColumnsDifferential fuzzes the columnar sorts against the stdlib
// baseline, mirroring FuzzSortDifferential.
func FuzzSortColumnsDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(binary.LittleEndian.AppendUint64(nil, math.MaxUint64))
	seed := make([]byte, 0, 64)
	for i := 0; i < 8; i++ {
		seed = binary.LittleEndian.AppendUint64(seed, uint64(1)<<(8*uint(i)))
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 8
		input := make([]relation.Tuple, n)
		for i := 0; i < n; i++ {
			input[i] = relation.Tuple{Key: binary.LittleEndian.Uint64(data[i*8:]), Payload: uint64(i)}
		}

		keys := make([]uint64, n)
		pays := make([]uint64, n)
		batch.Deinterleave(input, keys, pays)
		SortColumns(keys, pays, nil, nil)
		checkColumnsAgainstStdlib(t, "SortColumns", input, keys, pays)

		clear(keys)
		clear(pays)
		SortTuplesIntoColumns(input, keys, pays, nil)
		checkColumnsAgainstStdlib(t, "SortTuplesIntoColumns", input, keys, pays)
	})
}
