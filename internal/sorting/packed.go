package sorting

import (
	"math/bits"
	"slices"

	"repro/internal/relation"
)

// Packed fast path of the columnar sorts. The tandem key/perm sort pays for
// its narrow elements with a second array in every swap cycle and insertion
// shift — two cache lines touched and two bounds checks where the AoS sort
// touches one. When the key domain leaves enough low bits free (the paper's
// datasets use 32-bit keys in 64-bit slots), the source index can be packed
// into those bits instead:
//
//	packed[i] = key << idxBits | sourceIndex
//
// and the sort runs over ONE uint64 array — 8 bytes moved per element
// against the AoS sort's 16 and the tandem path's 12-in-two-arrays — with
// the index recovered by a mask when the payload column is gathered. Equal
// keys tie-break on the packed index, which makes this path stable as a side
// effect (the contract stays "not stable"; the tandem fallback is not).
//
// The fallback condition is exact: packing applies iff the maximum key and
// the index width together fit in 64 bits, so full-width keys silently take
// the tandem path and nothing is lost.

// packedIndexBits returns the low-bit width needed to address n source
// indices and whether key<<idxBits|index packing fits in 64 bits for maxKey.
func packedIndexBits(n int, maxKey uint64) (idxBits int, ok bool) {
	if n > 1 {
		idxBits = bits.Len(uint(n - 1))
	}
	return idxBits, idxBits == 0 || maxKey>>(64-idxBits) == 0
}

// packedLeafCutoff is the bucket size below which the packed radix recursion
// hands off to insertion sort. Packed values are single uint64s, so the sweet
// spot sits far below cacheLeafTuples: measured on 2^20 uniform keys, 64 beats
// both pdqsort leaves at 2048 (1.7x slower) and deeper recursion.
const packedLeafCutoff = 64

// packedTopShift picks the first radix digit for packed values. Unlike the
// byte-aligned topShift, it aligns the digit to the TOP of the value: packing
// shifts the key up by idxBits, so a byte-aligned digit would often catch only
// a few significant key bits (a 2^52 bound byte-aligns to shift 48, leaving a
// 16-way first pass) and waste the widest, most cache-hostile level. Aligning
// to bits.Len puts a full 256-way fanout on the first pass; recursion below
// steps by whole digits, which needs no alignment.
func packedTopShift(maxPacked uint64) int {
	s := bits.Len64(maxPacked) - radixBits
	if s < 0 {
		s = 0
	}
	return s
}

// sortPackedU64 sorts packed values with the multi-level radix scheme;
// maxPacked bounds the values (it seeds the top digit shift).
func sortPackedU64(packed []uint64, maxPacked uint64) {
	if len(packed) <= minRadixSize {
		slices.Sort(packed)
		return
	}
	msdRadixSortU64(packed, packedTopShift(maxPacked))
}

// msdRadixSortU64 is msdRadixSortCols for a single packed column: one
// histogram, prefix-sum bounds and an American-flag swap cycle per level.
func msdRadixSortU64(packed []uint64, shift int) {
	var histogram [radixBuckets]int
	for _, p := range packed {
		histogram[int(p>>shift)&radixMask]++
	}

	var bounds, next [radixBuckets]int
	sum := 0
	for b := 0; b < radixBuckets; b++ {
		bounds[b] = sum
		next[b] = sum
		sum += histogram[b]
	}

	for b := 0; b < radixBuckets; b++ {
		end := bounds[b] + histogram[b]
		for i := next[b]; i < end; {
			dst := int(packed[i]>>shift) & radixMask
			if dst == b {
				i++
				next[b] = i
				continue
			}
			j := next[dst]
			packed[i], packed[j] = packed[j], packed[i]
			next[dst]++
		}
	}

	sortBucketsU64(packed, bounds[:], next[:], shift)
}

// sortBucketsU64 finishes the buckets of one radix level: recurse while a
// bucket exceeds the leaf cutoff and digits remain, insertion-sort small
// leaves, and fall back to the standard library for the rare large bucket
// whose digits ran out (possible only when more than packedLeafCutoff values
// agree on every bit from shift+radixBits up — the distinct index bits keep
// such buckets small).
func sortBucketsU64(packed []uint64, bounds, ends []int, shift int) {
	for b := 0; b < radixBuckets; b++ {
		sortPackedBucket(packed[bounds[b]:ends[b]], shift)
	}
}

// insertionSortU64 sorts a short packed leaf in place.
func insertionSortU64(packed []uint64) {
	for i := 1; i < len(packed); i++ {
		p := packed[i]
		j := i - 1
		for j >= 0 && packed[j] > p {
			packed[j+1] = packed[j]
			j--
		}
		packed[j+1] = p
	}
}

// sortTuplesPacked is the packed path of SortTuplesIntoColumns: the AoS→SoA
// deinterleave, the first radix digit and the index packing fuse into one
// scatter pass; dstPays doubles as the packed scratch until the final unpack
// writes it (reading each slot just before overwriting it, so no extra
// buffer is needed).
func sortTuplesPacked(src []relation.Tuple, dstKeys, dstPays []uint64, maxKey uint64, idxBits int) {
	n := len(src)
	packed := dstPays
	maxPacked := maxKey<<idxBits | uint64(n-1)
	var mask uint64
	if idxBits > 0 {
		mask = uint64(1)<<idxBits - 1
	}

	if n <= minRadixSize {
		for i, t := range src {
			packed[i] = t.Key<<idxBits | uint64(i)
		}
		slices.Sort(packed)
		for i, p := range packed {
			dstKeys[i] = p >> idxBits
			dstPays[i] = src[p&mask].Payload
		}
		return
	}

	shift := packedTopShift(maxPacked)
	var histogram [radixBuckets]int
	for i, t := range src {
		histogram[int((t.Key<<idxBits|uint64(i))>>shift)&radixMask]++
	}
	var cursors [radixBuckets]int
	sum := 0
	for b := 0; b < radixBuckets; b++ {
		cursors[b] = sum
		sum += histogram[b]
	}
	bounds := cursors
	for i, t := range src {
		p := t.Key<<idxBits | uint64(i)
		b := int(p>>shift) & radixMask
		packed[cursors[b]] = p
		cursors[b]++
	}
	sortBucketsU64(packed, bounds[:], cursors[:], shift)
	for i, p := range packed {
		dstKeys[i] = p >> idxBits
		dstPays[i] = src[p&mask].Payload
	}
}

// sortPackedBucket finishes one bucket left over from a radix level at shift,
// applying the same recursion policy as sortBucketsU64.
func sortPackedBucket(part []uint64, shift int) {
	if len(part) < 2 {
		return
	}
	if len(part) > packedLeafCutoff {
		if len(part) <= wideBuckets && shift >= wideBits && sortWideU64(part, shift) {
			return
		}
		if shift >= radixBits {
			msdRadixSortU64(part, shift-radixBits)
		} else {
			slices.Sort(part)
		}
		return
	}
	sortLeafU64(part, shift)
}

// wideBits is the digit width of the one-shot counting scatter that finishes
// mid-size buckets: a bucket of up to 4096 values takes a single out-of-place
// 4096-way scatter (counter array and scratch both cache-resident) instead of
// another American-flag level plus per-leaf sorting — three sequential passes
// with L1-local random writes in place of the flag's dependent swap chains.
const (
	wideBits    = 12
	wideBuckets = 1 << wideBits
)

// sortWideU64 finishes one mid-size bucket with the wide counting scatter and
// a near-linear insertion fix-up. It refuses (returns false, having done
// nothing) when the digit is too skewed for the fix-up to stay near-linear —
// more than packedLeafCutoff values sharing one digit — which sends the
// caller down the recursive path instead.
func sortWideU64(part []uint64, shift int) bool {
	ws := shift - wideBits
	var cnt [wideBuckets]int32
	for _, p := range part {
		cnt[int(p>>ws)&(wideBuckets-1)]++
	}
	var sum, maxCnt int32
	for b := range cnt {
		c := cnt[b]
		if c > maxCnt {
			maxCnt = c
		}
		cnt[b] = sum
		sum += c
	}
	if maxCnt > packedLeafCutoff {
		return false
	}
	var tmp [wideBuckets]uint64
	for _, p := range part {
		b := int(p>>ws) & (wideBuckets - 1)
		tmp[cnt[b]] = p
		cnt[b]++
	}
	copy(part, tmp[:len(part)])
	insertionSortU64(part)
	return true
}

// sortLeafU64 sorts a small leaf. Pure insertion sort pays a hard-to-predict
// branch per shifted element — ~n²/4 mispredict opportunities on a random
// leaf — and dominated the packed sort's profile. One branch-free 16-way
// counting scatter on the top remaining nibble first spreads the leaf nearly
// into place, after which the insertion pass runs in near-linear time with a
// well-predicted inner branch.
func sortLeafU64(part []uint64, shift int) {
	if len(part) > 8 && shift >= 4 {
		ns := shift - 4
		var cnt [16]int
		var tmp [packedLeafCutoff]uint64
		for _, p := range part {
			cnt[int(p>>ns)&15]++
		}
		sum := 0
		for b := 0; b < 16; b++ {
			c := cnt[b]
			cnt[b] = sum
			sum += c
		}
		for _, p := range part {
			b := int(p>>ns) & 15
			tmp[cnt[b]] = p
			cnt[b]++
		}
		copy(part, tmp[:len(part)])
	}
	insertionSortU64(part)
}

// sortColumnsIntoPacked is the packed path of SortColumnsInto; like
// sortTuplesPacked it fuses packing with the first radix scatter and uses
// dstPays as the packed scratch.
func sortColumnsIntoPacked(srcKeys, srcPays, dstKeys, dstPays []uint64, maxKey uint64, idxBits int) {
	n := len(srcKeys)
	packed := dstPays
	maxPacked := maxKey<<idxBits | uint64(n-1)
	var mask uint64
	if idxBits > 0 {
		mask = uint64(1)<<idxBits - 1
	}

	if n <= minRadixSize {
		for i, k := range srcKeys {
			packed[i] = k<<idxBits | uint64(i)
		}
		slices.Sort(packed)
		for i, p := range packed {
			dstKeys[i] = p >> idxBits
			dstPays[i] = srcPays[p&mask]
		}
		return
	}

	shift := packedTopShift(maxPacked)
	var histogram [radixBuckets]int
	for i, k := range srcKeys {
		histogram[int((k<<idxBits|uint64(i))>>shift)&radixMask]++
	}
	var cursors [radixBuckets]int
	sum := 0
	for b := 0; b < radixBuckets; b++ {
		cursors[b] = sum
		sum += histogram[b]
	}
	bounds := cursors
	for i, k := range srcKeys {
		p := k<<idxBits | uint64(i)
		b := int(p>>shift) & radixMask
		packed[cursors[b]] = p
		cursors[b]++
	}
	sortBucketsU64(packed, bounds[:], cursors[:], shift)
	for i, p := range packed {
		dstKeys[i] = p >> idxBits
		dstPays[i] = srcPays[p&mask]
	}
}

// sortColumnsPacked is the packed path of the in-place SortColumns: keys and
// indices pack into payScratch, the sorted packed values unpack into keys and
// perm, and the payload gather then reuses payScratch as its destination
// before copying back.
func sortColumnsPacked(keys, pays []uint64, perm []int32, payScratch []uint64, maxKey uint64, idxBits int) {
	n := len(keys)
	packed := payScratch[:n]
	for i, k := range keys {
		packed[i] = k<<idxBits | uint64(i)
	}
	sortPackedU64(packed, maxKey<<idxBits|uint64(n-1))

	var mask uint64
	if idxBits > 0 {
		mask = uint64(1)<<idxBits - 1
	}
	for i, p := range packed {
		keys[i] = p >> idxBits
		perm[i] = int32(p & mask)
	}
	gatherPayloads(payScratch, pays, perm)
	copy(pays[:n], payScratch)
}
