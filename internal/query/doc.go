// Package query is the Datalog-style front-end of the engine: a lexer, a
// recursive-descent parser and a logical planner that compile one
// non-recursive rule over named relations into the operator DAG the executor
// runs.
//
// A query is a single rule:
//
//	ans(K, Sum) :- r(K, X), s(K, Y), X > 10, agg sum(Y).
//
// The head names the output relation and its two columns. The body is a
// comma-separated list of clauses:
//
//   - Pattern atoms rel(Key, Payload) bind variables to a relation's key and
//     payload columns. The key position must be a variable; the payload may
//     be a variable, a wildcard _ or an integer constant (an equality
//     filter). A variable in the key position of a schema-encoded relation
//     (internal/keys) stands for the whole multi-column key and routes
//     through the schema: join compatibility is checked by schema signature.
//   - Patterns sharing their key variable join on it (the MPSM equi-join);
//     the join chain is left-deep in pattern order, except that the pattern
//     supplying the projected or aggregated payload is joined last so its
//     payload is still addressable above the top join.
//   - Comparisons Var op Const (op one of = == != < <= > >=) filter during
//     the scans. Fully bounded key ranges (and equalities) compile to the
//     branch-free KeyRange scan path; everything else becomes an opaque
//     predicate.
//   - Band predicates |X - Y| <= c join two patterns with distinct key
//     variables within absolute key distance c (the paper's band join).
//   - At most one aggregate clause `agg f(V)` (f one of sum, min, max,
//     count; count takes * or any bound variable) groups the result by key;
//     the head's second argument then names the aggregate and must be a
//     fresh variable.
//
// Queries have bag (multiset) semantics, matching the engine: duplicates
// join pairwise and are not eliminated.
//
// Errors carry the 1-based line and column of the offending token (type
// *Error); Annotate renders them with the source line and a caret. The
// compiled form is a neutral operator list (Compiled.Ops) that the public
// repro package lowers onto its Plan builder, plus the canonical
// pretty-printed text that keys the service plan cache.
package query
