package query

// parser is a recursive-descent parser over the lexer's token stream with
// one token of lookahead.
type parser struct {
	lex *lexer
	src string
	tok token // current token
	err *Error
}

// Parse parses one rule. The returned error, if any, is a *Error carrying the
// 1-based line/column of the offending token.
func Parse(src string) (*Query, error) {
	p := &parser{lex: newLexer(src), src: src}
	p.next()
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	q.Src = src
	return q, nil
}

// next advances to the following token; lexical errors latch into p.err and
// surface at the next expectation check.
func (p *parser) next() {
	if p.err != nil {
		return
	}
	tok, err := p.lex.next()
	if err != nil {
		p.err = err
		p.tok = token{kind: tokEOF, pos: err.Pos}
		return
	}
	p.tok = tok
}

// errf builds a positioned error unless a lexical error already latched.
func (p *parser) errf(pos Pos, format string, args ...any) *Error {
	if p.err != nil {
		return p.err
	}
	return errf(p.src, pos, format, args...)
}

// expect consumes a token of the given kind or fails.
func (p *parser) expect(kind tokKind, what string) (token, *Error) {
	if p.err != nil {
		return token{}, p.err
	}
	if p.tok.kind != kind {
		return token{}, p.errf(p.tok.pos, "unexpected %s, expected %s", p.tok.describe(), what)
	}
	tok := p.tok
	p.next()
	return tok, nil
}

// parseQuery parses `head :- clause {, clause} [.]` to end of input.
func (p *parser) parseQuery() (*Query, *Error) {
	head, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokImplies, "':-'"); err != nil {
		return nil, err
	}
	q := &Query{Head: *head}
	for {
		clause, err := p.parseClause()
		if err != nil {
			return nil, err
		}
		q.Body = append(q.Body, clause)
		if p.tok.kind != tokComma {
			break
		}
		p.next()
	}
	if p.tok.kind == tokDot {
		p.next()
	}
	if p.err != nil {
		return nil, p.err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf(p.tok.pos, "unexpected %s after the rule", p.tok.describe())
	}
	return q, nil
}

// parseClause dispatches on the leading token: `|` starts a band predicate,
// `agg` an aggregate, an identifier a pattern atom, and a variable or number
// a comparison.
func (p *parser) parseClause() (Clause, *Error) {
	if p.err != nil {
		return nil, p.err
	}
	switch p.tok.kind {
	case tokPipe:
		return p.parseBand()
	case tokIdent:
		if p.tok.text == "agg" {
			return p.parseAgg()
		}
		return p.parseAtom()
	case tokVar, tokNumber:
		return p.parseCompare()
	default:
		return nil, p.errf(p.tok.pos,
			"unexpected %s, expected a pattern, comparison, band predicate or aggregate", p.tok.describe())
	}
}

// parseAtom parses `ident(term {, term})`.
func (p *parser) parseAtom() (*Atom, *Error) {
	name, err := p.expect(tokIdent, "a relation name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	a := &Atom{Name: name.text, Pos: name.pos}
	for {
		t, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		a.Args = append(a.Args, t)
		if p.tok.kind != tokComma {
			break
		}
		p.next()
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	return a, nil
}

// parseTerm parses a variable, wildcard or number.
func (p *parser) parseTerm() (Term, *Error) {
	if p.err != nil {
		return Term{}, p.err
	}
	tok := p.tok
	switch tok.kind {
	case tokVar:
		p.next()
		return Term{Kind: TermVar, Name: tok.text, Pos: tok.pos}, nil
	case tokWildcard:
		p.next()
		return Term{Kind: TermWildcard, Pos: tok.pos}, nil
	case tokNumber:
		p.next()
		return Term{Kind: TermNumber, Num: tok.num, Pos: tok.pos}, nil
	default:
		return Term{}, p.errf(tok.pos, "unexpected %s, expected a variable, '_' or a number", tok.describe())
	}
}

// parseOperand parses a comparison operand: a variable or number.
func (p *parser) parseOperand() (Term, *Error) {
	if p.err != nil {
		return Term{}, p.err
	}
	tok := p.tok
	switch tok.kind {
	case tokVar:
		p.next()
		return Term{Kind: TermVar, Name: tok.text, Pos: tok.pos}, nil
	case tokNumber:
		p.next()
		return Term{Kind: TermNumber, Num: tok.num, Pos: tok.pos}, nil
	default:
		return Term{}, p.errf(tok.pos, "unexpected %s, expected a variable or a number", tok.describe())
	}
}

// cmpOpOf maps a token to its comparison operator.
func cmpOpOf(kind tokKind) (CmpOp, bool) {
	switch kind {
	case tokEQ:
		return OpEQ, true
	case tokNE:
		return OpNE, true
	case tokLT:
		return OpLT, true
	case tokLE:
		return OpLE, true
	case tokGT:
		return OpGT, true
	case tokGE:
		return OpGE, true
	default:
		return 0, false
	}
}

// parseCompare parses `operand op operand`.
func (p *parser) parseCompare() (*Compare, *Error) {
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	op, ok := cmpOpOf(p.tok.kind)
	if !ok {
		return nil, p.errf(p.tok.pos, "unexpected %s, expected a comparison operator", p.tok.describe())
	}
	pos := p.tok.pos
	p.next()
	right, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return &Compare{Left: left, Op: op, Right: right, Pos: pos}, nil
}

// parseBand parses `|Var - Var| <= number`.
func (p *parser) parseBand() (*Band, *Error) {
	open, err := p.expect(tokPipe, "'|'")
	if err != nil {
		return nil, err
	}
	x, err := p.expect(tokVar, "a variable")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokMinus, "'-'"); err != nil {
		return nil, err
	}
	y, err := p.expect(tokVar, "a variable")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPipe, "'|'"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLE, "'<='"); err != nil {
		return nil, err
	}
	w, err := p.expect(tokNumber, "a number")
	if err != nil {
		return nil, err
	}
	return &Band{
		X:     Term{Kind: TermVar, Name: x.text, Pos: x.pos},
		Y:     Term{Kind: TermVar, Name: y.text, Pos: y.pos},
		Width: Term{Kind: TermNumber, Num: w.num, Pos: w.pos},
		Pos:   open.pos,
	}, nil
}

// parseAgg parses `agg fn(Var | *)`.
func (p *parser) parseAgg() (*Agg, *Error) {
	kw, err := p.expect(tokIdent, "'agg'")
	if err != nil {
		return nil, err
	}
	fn, err := p.expect(tokIdent, "an aggregate function (sum, min, max, count)")
	if err != nil {
		return nil, err
	}
	var f AggFunc
	switch fn.text {
	case "sum":
		f = AggSum
	case "min":
		f = AggMin
	case "max":
		f = AggMax
	case "count":
		f = AggCount
	default:
		return nil, p.errf(fn.pos, "unknown aggregate %q (sum, min, max, count)", fn.text)
	}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	var arg Term
	switch p.tok.kind {
	case tokStar, tokWildcard:
		arg = Term{Kind: TermWildcard, Pos: p.tok.pos}
		p.next()
	case tokVar:
		arg = Term{Kind: TermVar, Name: p.tok.text, Pos: p.tok.pos}
		p.next()
	default:
		return nil, p.errf(p.tok.pos, "unexpected %s, expected a variable or '*'", p.tok.describe())
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	return &Agg{Func: f, Arg: arg, Pos: kw.pos}, nil
}
