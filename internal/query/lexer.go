package query

import "strconv"

// lexer turns query source into tokens, tracking 1-based line/column
// positions. `%` starts a comment running to the end of the line.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

// pos is the position of the next unread byte.
func (l *lexer) pos() Pos { return Pos{Offset: l.off, Line: l.line, Col: l.col} }

// advance consumes one byte, updating the line/column bookkeeping.
func (l *lexer) advance() {
	if l.src[l.off] == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	l.off++
}

// peek returns the next unread byte, or 0 at end of input.
func (l *lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func isSpace(c byte) bool  { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }
func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isLetter(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' }
func isIdent(c byte) bool  { return isLetter(c) || isDigit(c) }

// next lexes one token.
func (l *lexer) next() (token, *Error) {
	for l.off < len(l.src) {
		c := l.peek()
		if isSpace(c) {
			l.advance()
			continue
		}
		if c == '%' { // comment to end of line
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
			continue
		}
		break
	}
	start := l.pos()
	if l.off >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.peek()
	switch {
	case isDigit(c):
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		text := l.src[start.Offset:l.off]
		n, err := strconv.ParseUint(text, 10, 64)
		if err != nil {
			return token{}, errf(l.src, start, "number %s overflows uint64", text)
		}
		return token{kind: tokNumber, text: text, num: n, pos: start}, nil
	case isLetter(c):
		for l.off < len(l.src) && isIdent(l.peek()) {
			l.advance()
		}
		text := l.src[start.Offset:l.off]
		kind := tokVar
		if text == "_" {
			kind = tokWildcard
		} else if text[0] >= 'a' && text[0] <= 'z' {
			kind = tokIdent
		}
		return token{kind: kind, text: text, pos: start}, nil
	}
	l.advance()
	switch c {
	case '(':
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case ')':
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case ',':
		return token{kind: tokComma, text: ",", pos: start}, nil
	case '.':
		return token{kind: tokDot, text: ".", pos: start}, nil
	case '|':
		return token{kind: tokPipe, text: "|", pos: start}, nil
	case '-':
		return token{kind: tokMinus, text: "-", pos: start}, nil
	case '*':
		return token{kind: tokStar, text: "*", pos: start}, nil
	case ':':
		if l.peek() == '-' {
			l.advance()
			return token{kind: tokImplies, text: ":-", pos: start}, nil
		}
		return token{}, errf(l.src, start, "unexpected ':' (expected ':-')")
	case '<':
		if l.peek() == '=' {
			l.advance()
			return token{kind: tokLE, text: "<=", pos: start}, nil
		}
		return token{kind: tokLT, text: "<", pos: start}, nil
	case '>':
		if l.peek() == '=' {
			l.advance()
			return token{kind: tokGE, text: ">=", pos: start}, nil
		}
		return token{kind: tokGT, text: ">", pos: start}, nil
	case '=':
		if l.peek() == '=' {
			l.advance()
			return token{kind: tokEQ, text: "==", pos: start}, nil
		}
		return token{kind: tokEQ, text: "=", pos: start}, nil
	case '!':
		if l.peek() == '=' {
			l.advance()
			return token{kind: tokNE, text: "!=", pos: start}, nil
		}
		return token{}, errf(l.src, start, "unexpected '!' (expected '!=')")
	}
	return token{}, errf(l.src, start, "unexpected character %q", string(rune(c)))
}
