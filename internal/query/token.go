package query

import "fmt"

// Pos locates a token in the query source: byte offset plus 1-based line and
// column.
type Pos struct {
	Offset int `json:"offset"`
	Line   int `json:"line"`
	Col    int `json:"col"`
}

// tokKind enumerates the token types of the language.
type tokKind int

const (
	tokEOF      tokKind = iota
	tokIdent            // lowercase-led identifier: relation and aggregate names
	tokVar              // uppercase- or underscore-led identifier: a variable
	tokWildcard         // bare underscore
	tokNumber           // unsigned decimal integer
	tokStar             // * (count(*))
	tokLParen           // (
	tokRParen           // )
	tokComma            // ,
	tokDot              // .
	tokImplies          // :-
	tokPipe             // |
	tokMinus            // -
	tokLT               // <
	tokLE               // <=
	tokGT               // >
	tokGE               // >=
	tokEQ               // = or ==
	tokNE               // !=
)

// String renders the kind for error messages.
func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of query"
	case tokIdent:
		return "identifier"
	case tokVar:
		return "variable"
	case tokWildcard:
		return "'_'"
	case tokNumber:
		return "number"
	case tokStar:
		return "'*'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokImplies:
		return "':-'"
	case tokPipe:
		return "'|'"
	case tokMinus:
		return "'-'"
	case tokLT:
		return "'<'"
	case tokLE:
		return "'<='"
	case tokGT:
		return "'>'"
	case tokGE:
		return "'>='"
	case tokEQ:
		return "'='"
	case tokNE:
		return "'!='"
	default:
		return fmt.Sprintf("tokKind(%d)", int(k))
	}
}

// token is one lexed token; num is set for tokNumber.
type token struct {
	kind tokKind
	text string
	num  uint64
	pos  Pos
}

// describe renders a concrete token for "unexpected ..." messages.
func (t token) describe() string {
	switch t.kind {
	case tokEOF:
		return "end of query"
	case tokIdent, tokVar, tokNumber:
		return fmt.Sprintf("%q", t.text)
	default:
		return t.kind.String()
	}
}
