package query

import (
	"math"

	"repro/internal/relation"
)

// Resolver maps a relation name to the relation it denotes.
type Resolver func(name string) (*relation.Relation, bool)

// Range is a half-open key interval [Low, High), matching the executor's
// branch-free KeyRange scan filter.
type Range struct {
	Low, High uint64
}

// Cmp is one residual comparison a scan evaluates as an opaque predicate:
// key or payload against a constant.
type Cmp struct {
	Op    CmpOp
	Const uint64
	OnKey bool
}

// OpKind enumerates the compiled logical operators.
type OpKind int

const (
	// OpScan reads one relation, optionally through a key range and residual
	// comparisons.
	OpScan OpKind = iota
	// OpJoin equi-joins (or, with Band > 0, band-joins) two earlier ops.
	OpJoin
	// OpProject projects one side's payload (or the key) out of a join's
	// pair stream.
	OpProject
	// OpMap reshapes a tuple stream (key-as-payload).
	OpMap
	// OpAggregate groups its input by key and aggregates.
	OpAggregate
)

// Op is one operator of the compiled logical plan. Ops reference earlier ops
// by index; the last op is the root.
type Op struct {
	Kind OpKind

	// OpScan.
	RelName string
	Rel     *relation.Relation
	Range   *Range
	Cmps    []Cmp

	// OpJoin: Left and Right are op indices (build, probe); Band > 0 selects
	// a band join of that width.
	Left, Right int
	Band        uint64

	// OpProject / OpMap / OpAggregate: Input is the op index consumed.
	Input int
	// OpProject: ProbeSide projects the probe payload, otherwise the build
	// payload; KeyValue (Project or Map) emits the key as the payload
	// instead.
	ProbeSide bool
	KeyValue  bool

	// OpAggregate.
	Agg AggFunc
}

// Compiled is a query lowered to its logical operator list.
type Compiled struct {
	// Query is the parsed rule.
	Query *Query
	// Text is the canonical pretty-printed form of the rule: the normalized
	// query text that keys the service plan cache.
	Text string
	// HeadName and Columns name the output relation and its two columns.
	HeadName string
	Columns  [2]string
	// Ops is the operator list; the last op is the root.
	Ops []Op
}

// Compile parses and compiles one rule against the resolver.
func Compile(src string, resolve Resolver) (*Compiled, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileQuery(q, resolve)
}

// atomInfo is one resolved pattern.
type atomInfo struct {
	atom    *Atom
	rel     *relation.Relation
	keyVar  string
	payload Term
	// meta facts, derived from rel.Meta: schema-encoded at all, and if so
	// whether the uint64 prefix is exact or a tie-break prefix.
	schema bool
	exact  bool
	sig    string
}

// varBinding records where a variable is bound.
type varBinding struct {
	// key lists the indices of atoms binding the variable in key position.
	key []int
	// payload is the index of the atom binding it in payload position (-1).
	payload int
	pos     Pos
}

// compiler carries the state of one compilation.
type compiler struct {
	q       *Query
	resolve Resolver
	atoms   []*atomInfo
	cmps    []*Compare
	band    *Band
	agg     *Agg
	vars    map[string]*varBinding
}

// errf builds a positioned semantic error against the query source.
func (c *compiler) errf(pos Pos, format string, args ...any) error {
	return errf(c.q.Src, pos, format, args...)
}

// CompileQuery compiles a parsed rule against the resolver. Semantic errors
// are *Error values positioned at the offending clause or term.
func CompileQuery(q *Query, resolve Resolver) (*Compiled, error) {
	c := &compiler{q: q, resolve: resolve, vars: map[string]*varBinding{}}
	if err := c.collect(); err != nil {
		return nil, err
	}
	if err := c.checkJoinKeys(); err != nil {
		return nil, err
	}
	if err := c.checkMeta(); err != nil {
		return nil, err
	}
	if err := c.placeProjected(); err != nil {
		return nil, err
	}
	ranges, residual, err := c.compileComparisons()
	if err != nil {
		return nil, err
	}
	ops, err := c.emit(ranges, residual)
	if err != nil {
		return nil, err
	}
	out := &Compiled{
		Query:    q,
		Text:     q.String(),
		HeadName: q.Head.Name,
		Ops:      ops,
	}
	for i, t := range q.Head.Args {
		out.Columns[i] = t.Name
	}
	return out, nil
}

// collect splits the body into atoms/comparisons/band/aggregate, resolves
// every pattern against the resolver and builds the variable binding table.
func (c *compiler) collect() error {
	for _, cl := range c.q.Body {
		switch cl := cl.(type) {
		case *Atom:
			if err := c.addAtom(cl); err != nil {
				return err
			}
		case *Compare:
			c.cmps = append(c.cmps, cl)
		case *Band:
			if c.band != nil {
				return c.errf(cl.Pos, "at most one band predicate is supported")
			}
			c.band = cl
		case *Agg:
			if c.agg != nil {
				return c.errf(cl.Pos, "at most one aggregate clause is supported")
			}
			c.agg = cl
		}
	}
	if len(c.atoms) == 0 {
		return c.errf(c.q.Head.Pos, "a query needs at least one pattern in its body")
	}
	if len(c.q.Head.Args) != 2 {
		return c.errf(c.q.Head.Pos, "the head takes exactly two arguments (key, value), got %d", len(c.q.Head.Args))
	}
	for _, t := range c.q.Head.Args {
		if t.Kind != TermVar {
			return c.errf(t.Pos, "head arguments must be variables")
		}
	}
	return nil
}

// addAtom resolves one pattern and registers its variable bindings.
func (c *compiler) addAtom(a *Atom) error {
	rel, ok := c.resolve(a.Name)
	if !ok || rel == nil {
		return c.errf(a.Pos, "unknown relation %q", a.Name)
	}
	if len(a.Args) != 2 {
		return c.errf(a.Pos, "pattern %s takes (key, payload), got %d arguments", a.Name, len(a.Args))
	}
	key, payload := a.Args[0], a.Args[1]
	switch key.Kind {
	case TermVar:
	case TermNumber:
		return c.errf(key.Pos, "the key position of %s must be a variable; constrain it with a comparison (e.g. K = %d)", a.Name, key.Num)
	default:
		return c.errf(key.Pos, "the key position of %s must be a variable, not a wildcard", a.Name)
	}
	info := &atomInfo{atom: a, rel: rel, keyVar: key.Name, payload: payload}
	if rel.Meta != nil {
		info.schema = true
		info.exact = rel.Meta.Exact()
		info.sig = rel.Meta.Signature()
	}
	idx := len(c.atoms)
	c.atoms = append(c.atoms, info)

	kb := c.binding(key.Name, key.Pos)
	if kb.payload >= 0 {
		return c.errf(key.Pos, "variable %s is already a payload of %s; a variable cannot name both a key and a payload",
			key.Name, c.atoms[kb.payload].atom.Name)
	}
	kb.key = append(kb.key, idx)

	if payload.Kind == TermVar {
		pb := c.binding(payload.Name, payload.Pos)
		if len(pb.key) > 0 {
			return c.errf(payload.Pos, "variable %s is already a key of %s; a variable cannot name both a key and a payload",
				payload.Name, c.atoms[pb.key[0]].atom.Name)
		}
		if pb.payload >= 0 {
			return c.errf(payload.Pos, "variable %s is already the payload of %s; joins match keys, not payloads",
				payload.Name, c.atoms[pb.payload].atom.Name)
		}
		pb.payload = idx
	}
	return nil
}

// binding returns (creating if needed) the binding record of a variable.
func (c *compiler) binding(name string, pos Pos) *varBinding {
	b, ok := c.vars[name]
	if !ok {
		b = &varBinding{payload: -1, pos: pos}
		c.vars[name] = b
	}
	return b
}

// checkJoinKeys enforces the join structure: without a band predicate, every
// pattern shares one key variable (the equi-join key); with one, exactly two
// patterns with distinct key variables linked by the band's endpoints.
func (c *compiler) checkJoinKeys() error {
	if c.band == nil {
		want := c.atoms[0].keyVar
		for _, a := range c.atoms[1:] {
			if a.keyVar != want {
				return c.errf(a.atom.Args[0].Pos,
					"pattern %s has key variable %s but %s joins on %s; MPSM joins are equi-joins, so all patterns must share one key variable (or use a band predicate |%s - %s| <= c)",
					a.atom.Name, a.keyVar, c.atoms[0].atom.Name, want, want, a.keyVar)
			}
		}
		return nil
	}
	if len(c.atoms) != 2 {
		return c.errf(c.band.Pos, "a band predicate joins exactly two patterns, got %d", len(c.atoms))
	}
	x, y := c.band.X.Name, c.band.Y.Name
	if x == y {
		return c.errf(c.band.Y.Pos, "band endpoints must be distinct variables")
	}
	k0, k1 := c.atoms[0].keyVar, c.atoms[1].keyVar
	if k0 == k1 {
		return c.errf(c.band.Pos, "the two patterns already share key variable %s; a band predicate needs distinct key variables", k0)
	}
	if !(x == k0 && y == k1) && !(x == k1 && y == k0) {
		return c.errf(c.band.Pos, "band endpoints must be the key variables of the two patterns (%s and %s)", k0, k1)
	}
	// The head key names the output key, which is the build (left) pattern's
	// key; put that pattern first.
	headKey := c.q.Head.Args[0].Name
	switch headKey {
	case k0:
	case k1:
		c.atoms[0], c.atoms[1] = c.atoms[1], c.atoms[0]
		c.rebind()
	default:
		return c.errf(c.q.Head.Args[0].Pos,
			"the head key of a band query must be one of the patterns' key variables (%s or %s), got %s", k0, k1, headKey)
	}
	return nil
}

// rebind recomputes the variable bindings' atom indices after the atom order
// changed (band orientation, projected-pattern placement).
func (c *compiler) rebind() {
	for _, b := range c.vars {
		b.key = b.key[:0]
		b.payload = -1
	}
	for i, a := range c.atoms {
		kb := c.vars[a.keyVar]
		kb.key = append(kb.key, i)
		if a.payload.Kind == TermVar {
			c.vars[a.payload.Name].payload = i
		}
	}
}

// checkMeta enforces the schema-key composition rules at compile time, with
// positions, instead of letting the executor reject the lowered plan.
func (c *compiler) checkMeta() error {
	var sig string
	var sigAtom *atomInfo
	for _, a := range c.atoms {
		if !a.schema {
			continue
		}
		if c.band != nil {
			return c.errf(a.atom.Pos,
				"band predicates require raw integer keys; %s is schema-encoded (%s) and its normalized key bytes do not measure distance", a.atom.Name, a.sig)
		}
		if sig == "" {
			sig, sigAtom = a.sig, a
		} else if a.sig != sig {
			return c.errf(a.atom.Pos, "patterns %s and %s join on different key schemas ([%s] vs [%s])",
				sigAtom.atom.Name, a.atom.Name, sig, a.sig)
		}
		if a.exact {
			continue
		}
		// Tie-break (inexact) relations: their uint64 keys are prefixes and
		// their payloads are internal row indices, so they are only readable
		// through a single verifying join.
		if len(c.atoms) == 1 {
			return c.errf(a.atom.Pos,
				"pattern %s reads a tie-break (inexact-key) relation outside a join; its payloads are internal row indices — join it against another pattern", a.atom.Name)
		}
		if len(c.atoms) > 2 {
			return c.errf(a.atom.Pos,
				"tie-break relation %s supports a single two-way join; a third pattern would join over unverifiable prefix keys", a.atom.Name)
		}
		if c.agg != nil {
			return c.errf(c.agg.Pos,
				"aggregates over tie-break relation %s are not supported (grouping by the key prefix would merge distinct groups)", a.atom.Name)
		}
		if a.payload.Kind == TermNumber {
			return c.errf(a.payload.Pos,
				"the payloads of tie-break relation %s are internal row indices; payload constants are not supported", a.atom.Name)
		}
	}
	return nil
}

// projectedVar is the payload variable whose value the query emits: the agg
// argument for sum/min/max, otherwise the head's value variable when it is a
// payload. Empty when the query emits the default pair projection, the key,
// or a count.
func (c *compiler) projectedVar() string {
	if c.agg != nil {
		if c.agg.Func != AggCount && c.agg.Arg.Kind == TermVar {
			return c.agg.Arg.Name
		}
		return ""
	}
	name := c.q.Head.Args[1].Name
	if b, ok := c.vars[name]; ok && b.payload >= 0 {
		return name
	}
	return ""
}

// placeProjected moves the pattern supplying the projected payload to the
// end of the join chain, where its payload is still addressable above the
// top join. Inner equi-joins are commutative and associative over the shared
// key, so the move never changes the result multiset (and the cost-based
// optimizer reorders the chain again anyway).
func (c *compiler) placeProjected() error {
	if c.band != nil || len(c.atoms) < 3 {
		return nil
	}
	name := c.projectedVar()
	if name == "" {
		return nil
	}
	owner := c.vars[name].payload
	if owner < 0 || owner == len(c.atoms)-1 {
		return nil
	}
	moved := c.atoms[owner]
	c.atoms = append(c.atoms[:owner], c.atoms[owner+1:]...)
	c.atoms = append(c.atoms, moved)
	c.rebind()
	return nil
}

// scanFilter accumulates the filters of one scan.
type scanFilter struct {
	rng  *Range
	cmps []Cmp
}

// keyBounds folds a key variable's comparisons into one half-open range.
type keyBounds struct {
	lo, hi       uint64
	loSet, hiSet bool
	empty        bool
	residual     []Cmp
}

// add folds one comparison into the bounds; unfoldable ones stay residual.
func (b *keyBounds) add(op CmpOp, k uint64) {
	switch op {
	case OpGE:
		if !b.loSet || k > b.lo {
			b.lo, b.loSet = k, true
		}
	case OpGT:
		if k == math.MaxUint64 {
			b.empty = true
			return
		}
		if !b.loSet || k+1 > b.lo {
			b.lo, b.loSet = k+1, true
		}
	case OpLT:
		if !b.hiSet || k < b.hi {
			b.hi, b.hiSet = k, true
		}
	case OpLE:
		if k == math.MaxUint64 {
			return // always true for uint64 keys
		}
		if !b.hiSet || k+1 < b.hi {
			b.hi, b.hiSet = k+1, true
		}
	case OpEQ:
		if k == math.MaxUint64 {
			// [k, k+1) is unrepresentable in a half-open uint64 range.
			b.residual = append(b.residual, Cmp{Op: OpEQ, Const: k, OnKey: true})
			return
		}
		b.add(OpGE, k)
		b.add(OpLT, k+1)
	case OpNE:
		b.residual = append(b.residual, Cmp{Op: OpNE, Const: k, OnKey: true})
	}
}

// filters converts the folded bounds into a scan's range + residual form.
// A fully bounded interval becomes a branch-free Range; a half-bounded one
// stays an opaque predicate (the executor's Range is half-open over uint64
// and cannot express "everything above k" including MaxUint64).
func (b *keyBounds) filters() scanFilter {
	if b.empty {
		return scanFilter{rng: &Range{Low: 0, High: 0}}
	}
	f := scanFilter{cmps: b.residual}
	switch {
	case b.loSet && b.hiSet:
		hi := b.hi
		if hi < b.lo {
			hi = b.lo // empty range, normalized
		}
		f.rng = &Range{Low: b.lo, High: hi}
	case b.loSet:
		f.cmps = append(f.cmps, Cmp{Op: OpGE, Const: b.lo, OnKey: true})
	case b.hiSet:
		f.cmps = append(f.cmps, Cmp{Op: OpLT, Const: b.hi, OnKey: true})
	}
	return f
}

// compileComparisons resolves every comparison clause onto the scans it
// filters: key-variable comparisons fold into per-variable ranges applied to
// every pattern binding that variable, payload comparisons (and payload
// constants) become per-scan residual predicates.
func (c *compiler) compileComparisons() (map[int]*Range, map[int][]Cmp, error) {
	bounds := map[string]*keyBounds{}
	residual := map[int][]Cmp{}

	for _, cmp := range c.cmps {
		v, op, k, err := c.normalizeCompare(cmp)
		if err != nil {
			return nil, nil, err
		}
		b := c.vars[v.Name]
		switch {
		case len(b.key) > 0:
			for _, i := range b.key {
				if c.atoms[i].schema {
					return nil, nil, c.errf(cmp.Pos,
						"comparisons on %s are not supported: it is the schema-encoded key of %s, and normalized key bytes do not compare as integers",
						v.Name, c.atoms[i].atom.Name)
				}
			}
			kb, ok := bounds[v.Name]
			if !ok {
				kb = &keyBounds{}
				bounds[v.Name] = kb
			}
			kb.add(op, k)
		default:
			i := b.payload
			a := c.atoms[i]
			if a.schema && !a.exact {
				return nil, nil, c.errf(cmp.Pos,
					"comparisons on %s are not supported: the payloads of tie-break relation %s are internal row indices",
					v.Name, a.atom.Name)
			}
			residual[i] = append(residual[i], Cmp{Op: op, Const: k})
		}
	}

	// Payload constants in patterns are equality filters.
	for i, a := range c.atoms {
		if a.payload.Kind == TermNumber {
			residual[i] = append(residual[i], Cmp{Op: OpEQ, Const: a.payload.Num})
		}
	}

	ranges := map[int]*Range{}
	for name, kb := range bounds {
		f := kb.filters()
		for _, i := range c.vars[name].key {
			if f.rng != nil {
				ranges[i] = f.rng
			}
			residual[i] = append(residual[i], f.cmps...)
		}
	}
	return ranges, residual, nil
}

// normalizeCompare orients a comparison as (variable, op, constant) and
// checks that the variable is bound by a pattern.
func (c *compiler) normalizeCompare(cmp *Compare) (Term, CmpOp, uint64, error) {
	l, r := cmp.Left, cmp.Right
	op := cmp.Op
	if l.Kind == TermNumber && r.Kind == TermVar {
		l, r = r, l
		op = op.flip()
	}
	if l.Kind != TermVar || r.Kind != TermNumber {
		if l.Kind == TermVar && r.Kind == TermVar {
			return Term{}, 0, 0, c.errf(cmp.Pos,
				"comparisons between two variables are not supported; join on a shared key variable or use a band predicate")
		}
		return Term{}, 0, 0, c.errf(cmp.Pos, "a comparison needs one variable and one constant")
	}
	if _, ok := c.vars[l.Name]; !ok {
		if c.agg != nil && l.Name == c.q.Head.Args[1].Name {
			return Term{}, 0, 0, c.errf(l.Pos,
				"comparisons on the aggregate result %s are not supported (there is no HAVING); filter the inputs instead", l.Name)
		}
		return Term{}, 0, 0, c.errf(l.Pos, "comparison references unbound variable %s", l.Name)
	}
	return l, op, r.Num, nil
}

// emit lowers the validated rule into the operator list.
func (c *compiler) emit(ranges map[int]*Range, residual map[int][]Cmp) ([]Op, error) {
	var ops []Op
	for i, a := range c.atoms {
		ops = append(ops, Op{
			Kind:    OpScan,
			RelName: a.atom.Name,
			Rel:     a.rel,
			Range:   ranges[i],
			Cmps:    residual[i],
		})
	}
	root := 0
	if len(c.atoms) > 1 {
		var band uint64
		if c.band != nil {
			band = c.band.Width.Num
		}
		root = len(ops)
		ops = append(ops, Op{Kind: OpJoin, Left: 0, Right: 1, Band: band})
		for i := 2; i < len(c.atoms); i++ {
			next := len(ops)
			ops = append(ops, Op{Kind: OpJoin, Left: root, Right: i})
			root = next
		}
	}
	shaped, err := c.emitHead(ops, root)
	if err != nil {
		return nil, err
	}
	return shaped, nil
}

// emitHead appends the head shaping — projection, key-as-value map,
// aggregation — above the top join (or the single scan).
func (c *compiler) emitHead(ops []Op, root int) ([]Op, error) {
	headKey, headVal := c.q.Head.Args[0], c.q.Head.Args[1]
	single := len(c.atoms) == 1
	keyVar := c.atoms[0].keyVar // equi: the shared key; band: the build key

	if headKey.Name != keyVar {
		if c.band != nil {
			return nil, c.errf(headKey.Pos,
				"the head key of a band query must be a pattern key variable, got %s", headKey.Name)
		}
		return nil, c.errf(headKey.Pos,
			"the head key must be the join key variable %s, got %s", keyVar, headKey.Name)
	}

	if c.agg != nil {
		return c.emitAggregate(ops, root, headVal)
	}

	vb, bound := c.vars[headVal.Name]
	if !bound || (len(vb.key) == 0 && vb.payload < 0) {
		return nil, c.errf(headVal.Pos, "head variable %s is not bound by any pattern", headVal.Name)
	}

	if len(vb.key) > 0 {
		// Key as the value column; in a band query the probe pattern's key
		// differs from the build key and is projected from the probe side.
		if single {
			ops = append(ops, Op{Kind: OpMap, Input: root, KeyValue: true})
		} else {
			probe := c.band != nil && headVal.Name == c.atoms[1].keyVar
			ops = append(ops, Op{Kind: OpProject, Input: root, KeyValue: true, ProbeSide: probe})
		}
		return ops, nil
	}

	owner := vb.payload
	if single {
		// The scan already produces (key, payload) — the head is the
		// identity over the single pattern.
		return ops, nil
	}
	last := len(c.atoms) - 1
	switch owner {
	case last:
		ops = append(ops, Op{Kind: OpProject, Input: root, ProbeSide: true})
	case 0:
		if len(c.atoms) > 2 {
			// placeProjected moves the owner to the end for chains of three
			// or more patterns, so this is unreachable; keep the error for
			// safety against future reordering changes.
			return nil, c.errf(headVal.Pos,
				"variable %s is the payload of an inner pattern and is not addressable above the top join", headVal.Name)
		}
		ops = append(ops, Op{Kind: OpProject, Input: root})
	default:
		return nil, c.errf(headVal.Pos,
			"variable %s is the payload of an inner pattern and is not addressable above the top join", headVal.Name)
	}
	return ops, nil
}

// emitAggregate appends the aggregate shaping: count aggregates the join's
// pair stream (or the scan) directly; sum/min/max first project the
// aggregated payload out of the top join.
func (c *compiler) emitAggregate(ops []Op, root int, headVal Term) ([]Op, error) {
	if b, ok := c.vars[headVal.Name]; ok && (len(b.key) > 0 || b.payload >= 0) {
		return nil, c.errf(headVal.Pos,
			"head variable %s is already bound in the body; with an aggregate the head's second argument is a fresh variable naming the aggregate result", headVal.Name)
	}
	agg := c.agg
	if agg.Func == AggCount {
		if agg.Arg.Kind == TermVar {
			if b, ok := c.vars[agg.Arg.Name]; !ok || (len(b.key) == 0 && b.payload < 0) {
				return nil, c.errf(agg.Arg.Pos, "count references unbound variable %s", agg.Arg.Name)
			}
		}
		ops = append(ops, Op{Kind: OpAggregate, Input: root, Agg: AggCount})
		return ops, nil
	}
	if agg.Arg.Kind != TermVar {
		return nil, c.errf(agg.Arg.Pos, "%s takes a payload variable (only count takes *)", agg.Func)
	}
	b, ok := c.vars[agg.Arg.Name]
	if !ok || (len(b.key) == 0 && b.payload < 0) {
		return nil, c.errf(agg.Arg.Pos, "%s references unbound variable %s", agg.Func, agg.Arg.Name)
	}
	single := len(c.atoms) == 1
	if len(b.key) > 0 {
		// Aggregating the key per key group is well-defined but degenerate
		// (every group aggregates copies of its own key); supported via the
		// key-as-value projection.
		if single {
			ops = append(ops, Op{Kind: OpMap, Input: root, KeyValue: true})
		} else {
			probe := c.band != nil && agg.Arg.Name == c.atoms[1].keyVar
			ops = append(ops, Op{Kind: OpProject, Input: root, KeyValue: true, ProbeSide: probe})
		}
		ops = append(ops, Op{Kind: OpAggregate, Input: len(ops) - 1, Agg: agg.Func})
		return ops, nil
	}
	owner := b.payload
	if single {
		ops = append(ops, Op{Kind: OpAggregate, Input: root, Agg: agg.Func})
		return ops, nil
	}
	last := len(c.atoms) - 1
	switch owner {
	case last:
		ops = append(ops, Op{Kind: OpProject, Input: root, ProbeSide: true})
	case 0:
		if len(c.atoms) > 2 {
			return nil, c.errf(agg.Arg.Pos,
				"variable %s is the payload of an inner pattern and is not addressable above the top join", agg.Arg.Name)
		}
		ops = append(ops, Op{Kind: OpProject, Input: root})
	default:
		return nil, c.errf(agg.Arg.Pos,
			"variable %s is the payload of an inner pattern and is not addressable above the top join", agg.Arg.Name)
	}
	ops = append(ops, Op{Kind: OpAggregate, Input: len(ops) - 1, Agg: agg.Func})
	return ops, nil
}
