package query

import (
	"strings"
	"testing"
)

// TestParseCanonical: parsing normalizes spacing, `==`, and optional trailing
// periods into one canonical form.
func TestParseCanonical(t *testing.T) {
	cases := []struct{ in, want string }{
		{
			"ans(K,V):-r(K,V)",
			"ans(K, V) :- r(K, V).",
		},
		{
			"ans(K, Sum) :- r(K, X), s(K, Y), X > 10, agg sum(Y).",
			"ans(K, Sum) :- r(K, X), s(K, Y), X > 10, agg sum(Y).",
		},
		{
			"ans(K,V) :- r(K,_), s(K,V), K==5",
			"ans(K, V) :- r(K, _), s(K, V), K = 5.",
		},
		{
			"ans(X,V) :- r(X,V), s(Y,_), |X-Y|<=7",
			"ans(X, V) :- r(X, V), s(Y, _), |X - Y| <= 7.",
		},
		{
			"ans(K,N) :- r(K,_), agg count(*)",
			"ans(K, N) :- r(K, _), agg count(*).",
		},
		{
			"ans(K,N) :- r(K,_), agg count(_)",
			"ans(K, N) :- r(K, _), agg count(*).",
		},
		{
			// Comments vanish and constant-first comparisons flip to the
			// variable-first canonical orientation.
			"% comment\nans(K,V) :- % inline\n  r(K,V), 10 <= K.",
			"ans(K, V) :- r(K, V), K >= 10.",
		},
		{
			"ans(K,V) :- r(K, 18446744073709551615)",
			"ans(K, V) :- r(K, 18446744073709551615).",
		},
	}
	for _, tc := range cases {
		q, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if got := q.String(); got != tc.want {
			t.Errorf("Parse(%q).String() = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestParseFixpoint: the canonical form re-parses to itself.
func TestParseFixpoint(t *testing.T) {
	inputs := []string{
		"ans(K, Sum) :- r(K, X), s(K, Y), X > 10, agg sum(Y).",
		"a(X, V) :- b(X, V), c(Y, _), |X - Y| <= 3, V != 0.",
		"q(K, K) :- r(K, 5).",
	}
	for _, in := range inputs {
		q1, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		q2, err := Parse(q1.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", q1.String(), err)
		}
		if q1.String() != q2.String() {
			t.Errorf("canonical form not a fixpoint: %q -> %q", q1.String(), q2.String())
		}
	}
}

// TestParseErrors: syntax errors carry the position of the offending token.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		in       string
		wantMsg  string
		wantLine int
		wantCol  int
	}{
		{"", "unexpected end of query", 1, 1},
		{"ans(K, V)", "expected ':-'", 1, 10},
		{"ans(K V) :- r(K, V)", "expected ')'", 1, 7},
		{"ans(K, V) :- r(K, )", "expected a variable, '_' or a number", 1, 19},
		{"ans(K, V) :- r(K, V), ", "expected a pattern, comparison, band predicate or aggregate", 1, 23},
		{"ans(K, V) :- r(K, V) extra", "after the rule", 1, 22},
		{"ans(K, V) :- r(K, V), K <", "expected a variable or a number", 1, 26},
		{"ans(K, V) :- r(K, V), |K - | <= 5", "expected a variable", 1, 28},
		{"ans(K, V) :- r(K, V), agg avg(V)", `unknown aggregate "avg"`, 1, 27},
		{"ans(K, V) :- r(K, V), K ! 5", "expected '!='", 1, 25},
		{"ans(K, V) :-\n  r(K, V),\n  K @ 5", "unexpected character", 3, 5},
		{"ans(K, V) : r(K, V)", "expected ':-'", 1, 11},
		{"ans(K, 99999999999999999999)", "overflows uint64", 1, 8},
	}
	for _, tc := range cases {
		_, err := Parse(tc.in)
		if err == nil {
			t.Errorf("Parse(%q): expected error", tc.in)
			continue
		}
		qe, ok := err.(*Error)
		if !ok {
			t.Errorf("Parse(%q): error is %T, want *Error", tc.in, err)
			continue
		}
		if !strings.Contains(qe.Msg, tc.wantMsg) {
			t.Errorf("Parse(%q) error %q, want substring %q", tc.in, qe.Msg, tc.wantMsg)
		}
		if qe.Pos.Line != tc.wantLine || qe.Pos.Col != tc.wantCol {
			t.Errorf("Parse(%q) error at %d:%d, want %d:%d (%s)",
				tc.in, qe.Pos.Line, qe.Pos.Col, tc.wantLine, tc.wantCol, qe.Msg)
		}
	}
}

// TestErrorAnnotate: the annotated rendering shows the source line with a
// caret under the offending column.
func TestErrorAnnotate(t *testing.T) {
	_, err := Parse("ans(K, V) :- r(K, )")
	if err == nil {
		t.Fatal("expected error")
	}
	qe := err.(*Error)
	got := qe.Annotate()
	lines := strings.Split(got, "\n")
	if len(lines) != 3 {
		t.Fatalf("Annotate() = %q, want 3 lines", got)
	}
	if !strings.Contains(lines[1], "ans(K, V) :- r(K, )") {
		t.Errorf("annotation missing source line: %q", got)
	}
	caret := strings.IndexByte(lines[2], '^')
	if caret < 0 {
		t.Fatalf("annotation missing caret: %q", got)
	}
	// The caret's column (minus the 2-space indent) is the error column.
	if caret-2 != qe.Pos.Col-1 {
		t.Errorf("caret at rendered column %d, error at source column %d:\n%s", caret-2+1, qe.Pos.Col, got)
	}
}

// TestErrorAnnotateMultiline: the caret lands on the right line of a
// multi-line query.
func TestErrorAnnotateMultiline(t *testing.T) {
	src := "ans(K, V) :-\n\tr(K, V),\n\ts(K, )"
	_, err := Parse(src)
	if err == nil {
		t.Fatal("expected error")
	}
	qe := err.(*Error)
	if qe.Pos.Line != 3 {
		t.Fatalf("error at line %d, want 3: %v", qe.Pos.Line, err)
	}
	got := qe.Annotate()
	if !strings.Contains(got, "s(K, )") {
		t.Errorf("annotation should show line 3: %q", got)
	}
	if strings.Contains(got, "r(K, V)") {
		t.Errorf("annotation shows the wrong line: %q", got)
	}
}
