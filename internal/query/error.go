package query

import (
	"fmt"
	"strings"
)

// Error is a query-language error — lexical, syntactic or semantic — located
// at a position in the source. Error renders as "line:col: message"; Annotate
// additionally shows the source line with a caret under the offending column.
type Error struct {
	// Msg describes the problem.
	Msg string
	// Pos locates the offending token (1-based Line and Col).
	Pos Pos
	// Src is the query source the position refers to, kept so the error can
	// render its own annotation.
	Src string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Pos.Line, e.Pos.Col, e.Msg)
}

// Annotate renders the error with its source line and a caret marking the
// column:
//
//	1:7: unexpected ')', expected a term
//	  ans(K, ) :- r(K, V)
//	         ^
func (e *Error) Annotate() string {
	line, ok := lineAt(e.Src, e.Pos.Line)
	if !ok {
		return e.Error()
	}
	var b strings.Builder
	b.WriteString(e.Error())
	b.WriteString("\n  ")
	b.WriteString(line)
	b.WriteString("\n  ")
	for i := 0; i < e.Pos.Col-1 && i < len(line); i++ {
		// Keep tabs so the caret lines up under tab-indented sources.
		if line[i] == '\t' {
			b.WriteByte('\t')
		} else {
			b.WriteByte(' ')
		}
	}
	b.WriteByte('^')
	return b.String()
}

// lineAt extracts the n-th (1-based) line of src.
func lineAt(src string, n int) (string, bool) {
	if n < 1 {
		return "", false
	}
	for i := 1; ; i++ {
		next := strings.IndexByte(src, '\n')
		line := src
		if next >= 0 {
			line = src[:next]
			src = src[next+1:]
		}
		if i == n {
			return strings.TrimSuffix(line, "\r"), true
		}
		if next < 0 {
			return "", false
		}
	}
}

// errf builds a positioned error against the given source.
func errf(src string, pos Pos, format string, args ...any) *Error {
	return &Error{Msg: fmt.Sprintf(format, args...), Pos: pos, Src: src}
}
