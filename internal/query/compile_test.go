package query

import (
	"strings"
	"testing"

	"repro/internal/keys"
	"repro/internal/relation"
)

// testResolver builds a resolver over raw relations r, s, t plus one
// exact-schema relation (single int64 column) and one tie-break relation
// (bytes column, whose prefixes need full-key verification).
func testResolver(t *testing.T) Resolver {
	t.Helper()
	mk := func(name string, n int) *relation.Relation {
		rel := relation.NewWithCapacity(name, n)
		for i := 0; i < n; i++ {
			rel.Tuples = append(rel.Tuples, relation.Tuple{Key: uint64(i % 16), Payload: uint64(i)})
		}
		return rel
	}
	exactSchema := keys.MustNew(keys.Column{Name: "id", Type: keys.Int64})
	exact := exactSchema.MustEncode("exact", [][]keys.Value{
		{keys.Int64Value(1)}, {keys.Int64Value(2)},
	}, []uint64{10, 20})
	tieSchema := keys.MustNew(keys.Column{Name: "name", Type: keys.Bytes})
	tie := tieSchema.MustEncode("tie", [][]keys.Value{
		{keys.StringValue("abcdefghijkl")}, {keys.StringValue("abcdefghijzz")},
	}, []uint64{1, 2})
	rels := map[string]*relation.Relation{
		"r": mk("r", 64), "s": mk("s", 64), "t": mk("t", 64),
		"exact": exact, "tie": tie,
	}
	return func(name string) (*relation.Relation, bool) {
		rel, ok := rels[name]
		return rel, ok
	}
}

// opKinds summarizes a compiled op list for shape assertions.
func opKinds(c *Compiled) []OpKind {
	kinds := make([]OpKind, len(c.Ops))
	for i, op := range c.Ops {
		kinds[i] = op.Kind
	}
	return kinds
}

func kindsEqual(a, b []OpKind) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCompileShapes: representative queries lower to the expected operator
// shapes.
func TestCompileShapes(t *testing.T) {
	resolve := testResolver(t)
	cases := []struct {
		src  string
		want []OpKind
	}{
		// Single pattern: identity over the scan.
		{"ans(K, V) :- r(K, V)", []OpKind{OpScan}},
		// Key as the value: Map above the scan.
		{"ans(K, K) :- r(K, _)", []OpKind{OpScan, OpMap}},
		// Two-way join, probe payload projected.
		{"ans(K, V) :- r(K, _), s(K, V)", []OpKind{OpScan, OpScan, OpJoin, OpProject}},
		// Three-way join with aggregation: project then aggregate.
		{"ans(K, Sum) :- r(K, _), s(K, _), t(K, Z), agg sum(Z)",
			[]OpKind{OpScan, OpScan, OpScan, OpJoin, OpJoin, OpProject, OpAggregate}},
		// Count aggregates the pair stream directly, no projection.
		{"ans(K, N) :- r(K, _), s(K, _), agg count(*)",
			[]OpKind{OpScan, OpScan, OpJoin, OpAggregate}},
		// Band join.
		{"ans(X, V) :- r(X, _), s(Y, V), |X - Y| <= 5",
			[]OpKind{OpScan, OpScan, OpJoin, OpProject}},
		// Single pattern with aggregate.
		{"ans(K, M) :- r(K, V), agg max(V)", []OpKind{OpScan, OpAggregate}},
	}
	for _, tc := range cases {
		c, err := Compile(tc.src, resolve)
		if err != nil {
			t.Errorf("Compile(%q): %v", tc.src, err)
			continue
		}
		if got := opKinds(c); !kindsEqual(got, tc.want) {
			t.Errorf("Compile(%q) ops = %v, want %v", tc.src, got, tc.want)
		}
	}
}

// TestCompileReordersProjectedPattern: in a 3-way chain the pattern that
// supplies the projected payload is joined last so it stays addressable.
func TestCompileReordersProjectedPattern(t *testing.T) {
	c, err := Compile("ans(K, X) :- r(K, X), s(K, _), t(K, _)", testResolver(t))
	if err != nil {
		t.Fatal(err)
	}
	if c.Ops[2].RelName != "r" {
		t.Errorf("pattern r (projected payload) should be scanned last, got scan order %s, %s, %s",
			c.Ops[0].RelName, c.Ops[1].RelName, c.Ops[2].RelName)
	}
	last := c.Ops[len(c.Ops)-1]
	if last.Kind != OpProject || !last.ProbeSide {
		t.Errorf("root should project the probe side, got %+v", last)
	}
}

// TestCompileBandOrientation: the head key picks the build side of a band
// join.
func TestCompileBandOrientation(t *testing.T) {
	c, err := Compile("ans(Y, V) :- r(X, V), s(Y, _), |X - Y| <= 5", testResolver(t))
	if err != nil {
		t.Fatal(err)
	}
	if c.Ops[0].RelName != "s" {
		t.Errorf("head key Y should make s the build side, got scans %s, %s", c.Ops[0].RelName, c.Ops[1].RelName)
	}
	if c.Ops[2].Band != 5 {
		t.Errorf("band width = %d, want 5", c.Ops[2].Band)
	}
	// V is r's payload; r is now the probe side.
	if last := c.Ops[len(c.Ops)-1]; last.Kind != OpProject || !last.ProbeSide {
		t.Errorf("projection should address the probe side, got %+v", last)
	}
}

// TestCompileKeyRanges: fully bounded key comparisons fold into one
// branch-free range per variable, applied to every pattern binding it;
// leftovers stay residual predicates.
func TestCompileKeyRanges(t *testing.T) {
	resolve := testResolver(t)

	c, err := Compile("ans(K, V) :- r(K, _), s(K, V), K >= 10, K < 20, K != 15", resolve)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		op := c.Ops[i]
		if op.Range == nil || op.Range.Low != 10 || op.Range.High != 20 {
			t.Errorf("scan %s range = %+v, want [10,20)", op.RelName, op.Range)
		}
		if len(op.Cmps) != 1 || op.Cmps[0].Op != OpNE || op.Cmps[0].Const != 15 || !op.Cmps[0].OnKey {
			t.Errorf("scan %s residuals = %+v, want key != 15", op.RelName, op.Cmps)
		}
	}

	// Equality is the one-key range.
	c, err = Compile("ans(K, V) :- r(K, V), K = 7", resolve)
	if err != nil {
		t.Fatal(err)
	}
	if op := c.Ops[0]; op.Range == nil || op.Range.Low != 7 || op.Range.High != 8 {
		t.Errorf("K = 7 range = %+v, want [7,8)", c.Ops[0].Range)
	}

	// Half-bounded comparisons stay opaque (no range).
	c, err = Compile("ans(K, V) :- r(K, V), K > 5", resolve)
	if err != nil {
		t.Fatal(err)
	}
	if op := c.Ops[0]; op.Range != nil || len(op.Cmps) != 1 || !op.Cmps[0].OnKey {
		t.Errorf("K > 5 should be residual, got range=%+v cmps=%+v", op.Range, op.Cmps)
	}

	// MaxUint64 equality is unrepresentable as a half-open range.
	c, err = Compile("ans(K, V) :- r(K, V), K = 18446744073709551615", resolve)
	if err != nil {
		t.Fatal(err)
	}
	if op := c.Ops[0]; op.Range != nil || len(op.Cmps) != 1 || op.Cmps[0].Op != OpEQ {
		t.Errorf("K = MaxUint64 should be residual, got range=%+v cmps=%+v", op.Range, op.Cmps)
	}

	// Contradictory bounds produce an empty range, not an error.
	c, err = Compile("ans(K, V) :- r(K, V), K >= 20, K < 10", resolve)
	if err != nil {
		t.Fatal(err)
	}
	if op := c.Ops[0]; op.Range == nil || op.Range.Low != op.Range.High {
		t.Errorf("contradictory bounds should yield an empty range, got %+v", op.Range)
	}

	// Payload comparisons and payload constants are per-scan residuals.
	c, err = Compile("ans(K, V) :- r(K, V), s(K, 3), V <= 9", resolve)
	if err != nil {
		t.Fatal(err)
	}
	if op := c.Ops[0]; len(op.Cmps) != 1 || op.Cmps[0].OnKey || op.Cmps[0].Op != OpLE || op.Cmps[0].Const != 9 {
		t.Errorf("r residuals = %+v, want payload <= 9", op.Cmps)
	}
	if op := c.Ops[1]; len(op.Cmps) != 1 || op.Cmps[0].OnKey || op.Cmps[0].Op != OpEQ || op.Cmps[0].Const != 3 {
		t.Errorf("s residuals = %+v, want payload = 3", op.Cmps)
	}
}

// TestCompileText: the compiled Text is the canonical form, shared by
// differently spelled but identical queries.
func TestCompileText(t *testing.T) {
	resolve := testResolver(t)
	a, err := Compile("ans(K,V):-r(K,_),s(K,V),K==5", resolve)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile("ans(K, V) :- r(K, _), s(K, V), K = 5.", resolve)
	if err != nil {
		t.Fatal(err)
	}
	if a.Text != b.Text {
		t.Errorf("equivalent spellings compile to different texts: %q vs %q", a.Text, b.Text)
	}
	if a.HeadName != "ans" || a.Columns != [2]string{"K", "V"} {
		t.Errorf("head = %q %v", a.HeadName, a.Columns)
	}
}

// TestCompileErrors: semantic errors are positioned *Error values.
func TestCompileErrors(t *testing.T) {
	resolve := testResolver(t)
	cases := []struct {
		src     string
		wantMsg string
	}{
		{"ans(K, V) :- nope(K, V)", `unknown relation "nope"`},
		{"ans(K, V) :- r(K, V, W)", "takes (key, payload)"},
		{"ans(K, V) :- r(5, V)", "must be a variable"},
		{"ans(K, V) :- r(_, V)", "not a wildcard"},
		{"ans(K, V) :- K > 3", "at least one pattern"},
		{"ans(K, V, W) :- r(K, V)", "exactly two arguments"},
		{"ans(K, 5) :- r(K, V)", "head arguments must be variables"},
		{"ans(K, V) :- r(K, V), s(J, V2)", "must share one key variable"},
		{"ans(K, V) :- r(K, V), s(K, V)", "joins match keys, not payloads"},
		{"ans(K, K2) :- r(K, K2), s(K2, _)", "cannot name both a key and a payload"},
		{"ans(K, V) :- r(K, V), X > 3", "unbound variable X"},
		{"ans(K, V) :- r(K, V), X > Y", "between two variables"},
		{"ans(K, V) :- r(K, V), 3 > 4", "one variable and one constant"},
		{"ans(K, W) :- r(K, V)", "head variable W is not bound"},
		{"ans(J, V) :- r(K, V)", "head key must be the join key variable"},
		{"ans(K, S) :- r(K, V), agg sum(V), agg sum(V)", "at most one aggregate"},
		{"ans(K, V) :- r(K, V), agg sum(V)", "head variable V is already bound"},
		{"ans(K, S) :- r(K, V), agg sum(W)", "unbound variable W"},
		{"ans(K, S) :- r(K, V), agg sum(*)", "only count takes *"},
		{"ans(K, S) :- r(K, V), agg sum(S), S > 10", "aggregate result"},
		{"ans(X, V) :- r(X, V), s(Y, _), t(Z, _), |X - Y| <= 5", "exactly two patterns"},
		{"ans(X, V) :- r(X, V), s(Y, _), |X - Y| <= 5, |X - Y| <= 9", "at most one band"},
		{"ans(X, V) :- r(X, V), s(Y, _), |X - X| <= 5", "distinct variables"},
		{"ans(X, V) :- r(X, V), s(Y, _), |X - Z| <= 5", "band endpoints must be the key variables"},
		{"ans(Z, V) :- r(X, V), s(Y, _), |X - Y| <= 5", "head key of a band query"},
		{"ans(K, V) :- r(K, V), s(K2, _), |K - K2| <= 5, exact(K, _)", "exactly two patterns"},
		{"ans(X, V) :- exact(X, V), s(Y, _), |X - Y| <= 5", "band predicates require raw integer keys"},
		{"ans(K, V) :- tie(K, V)", "outside a join"},
		{"ans(K, V) :- tie(K, _), r(K, _), s(K, V)", "single two-way join"},
		{"ans(K, S) :- tie(K, _), r(K, V), agg sum(V)", "aggregates over tie-break relation"},
		{"ans(K, V) :- tie(K, 5), r(K, V)", "internal row indices"},
		{"ans(K, V) :- tie(K, W), r(K, V), W > 3", "internal row indices"},
		{"ans(K, V) :- exact(K, V), K > 3", "schema-encoded key"},
		{"ans(K, V) :- exact(K, _), tie(K, V)", "different key schemas"},
	}
	for _, tc := range cases {
		_, err := Compile(tc.src, resolve)
		if err == nil {
			t.Errorf("Compile(%q): expected error containing %q", tc.src, tc.wantMsg)
			continue
		}
		qe, ok := err.(*Error)
		if !ok {
			t.Errorf("Compile(%q): error is %T, want *Error: %v", tc.src, err, err)
			continue
		}
		if !strings.Contains(qe.Msg, tc.wantMsg) {
			t.Errorf("Compile(%q) error %q, want substring %q", tc.src, qe.Msg, tc.wantMsg)
		}
		if qe.Pos.Line < 1 || qe.Pos.Col < 1 {
			t.Errorf("Compile(%q) error lacks a position: %+v", tc.src, qe.Pos)
		}
	}
}
