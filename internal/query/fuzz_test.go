package query

import (
	"strings"
	"testing"
)

// FuzzParse asserts the parser never panics, always reports positioned
// errors, and that accepted inputs have a canonical form that re-parses to
// itself.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"ans(K, V) :- r(K, V).",
		"ans(K, Sum) :- r(K, X), s(K, Y), X > 10, agg sum(Y).",
		"ans(X, V) :- r(X, V), s(Y, _), |X - Y| <= 5.",
		"ans(K, N) :- r(K, _), agg count(*)",
		"ans(K, V) :- r(K, V), K >= 10, K < 20, K != 15",
		"% comment\nans(K,V) :- r(K,V)",
		"ans(K, V) :- r(K, 18446744073709551615)",
		"ans(K V) :- r(K, V)",
		"ans(K, V) :- r(K, V), K @ 5",
		"ans(K, V) :- r(K, V), |K - | <= 5",
		"ans(K, 99999999999999999999)",
		"ans(K, V) :-\n\tr(K, V),\n\ts(K, )",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			qe, ok := err.(*Error)
			if !ok {
				t.Fatalf("Parse(%q): error is %T, want *Error: %v", src, err, err)
			}
			if qe.Pos.Line < 1 || qe.Pos.Col < 1 {
				t.Fatalf("Parse(%q): error position not 1-based: %+v", src, qe.Pos)
			}
			if qe.Pos.Offset < 0 || qe.Pos.Offset > len(src) {
				t.Fatalf("Parse(%q): error offset %d out of range [0,%d]", src, qe.Pos.Offset, len(src))
			}
			// Annotate must not panic either, whatever the position.
			_ = qe.Annotate()
			return
		}
		// Accepted input: the canonical form must re-parse to itself.
		text := q.String()
		if !strings.HasSuffix(text, ".") {
			t.Fatalf("Parse(%q): canonical form %q lacks trailing period", src, text)
		}
		q2, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): canonical form %q fails to re-parse: %v", src, text, err)
		}
		if got := q2.String(); got != text {
			t.Fatalf("Parse(%q): canonical form unstable: %q -> %q", src, text, got)
		}
	})
}
