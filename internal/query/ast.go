package query

import (
	"fmt"
	"strconv"
	"strings"
)

// TermKind is the kind of one atom argument or comparison operand.
type TermKind int

const (
	// TermVar is a variable (uppercase- or underscore-led identifier).
	TermVar TermKind = iota
	// TermNumber is an unsigned integer constant.
	TermNumber
	// TermWildcard is the anonymous variable `_` (or `*` in count(*)).
	TermWildcard
)

// Term is one argument of an atom, comparison or aggregate.
type Term struct {
	Kind TermKind
	Name string // TermVar: the variable name
	Num  uint64 // TermNumber: the constant
	Pos  Pos
}

// String renders the term canonically.
func (t Term) String() string {
	switch t.Kind {
	case TermVar:
		return t.Name
	case TermNumber:
		return strconv.FormatUint(t.Num, 10)
	default:
		return "_"
	}
}

// Clause is one body element of a rule: *Atom, *Compare, *Band or *Agg.
type Clause interface {
	fmt.Stringer
	clausePos() Pos
}

// Atom is a pattern rel(Key, Payload) — or the rule head.
type Atom struct {
	Name string
	Args []Term
	Pos  Pos
}

func (a *Atom) clausePos() Pos { return a.Pos }

// String renders the atom canonically.
func (a *Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Name + "(" + strings.Join(parts, ", ") + ")"
}

// CmpOp is a comparison operator.
type CmpOp int

const (
	OpEQ CmpOp = iota
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE
)

// String renders the operator canonically (`=` for equality).
func (op CmpOp) String() string {
	switch op {
	case OpEQ:
		return "="
	case OpNE:
		return "!="
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// flip mirrors the operator so that `c op X` becomes `X (flip op) c`.
func (op CmpOp) flip() CmpOp {
	switch op {
	case OpLT:
		return OpGT
	case OpLE:
		return OpGE
	case OpGT:
		return OpLT
	case OpGE:
		return OpLE
	default: // = and != are symmetric
		return op
	}
}

// Eval applies the operator to (v, c).
func (op CmpOp) Eval(v, c uint64) bool {
	switch op {
	case OpEQ:
		return v == c
	case OpNE:
		return v != c
	case OpLT:
		return v < c
	case OpLE:
		return v <= c
	case OpGT:
		return v > c
	default:
		return v >= c
	}
}

// Compare is a comparison clause between a variable and a constant.
type Compare struct {
	Left  Term
	Op    CmpOp
	Right Term
	Pos   Pos
}

func (c *Compare) clausePos() Pos { return c.Pos }

// String renders the comparison canonically.
func (c *Compare) String() string {
	// Canonical form puts the variable first: "10 <= K" renders as
	// "K >= 10", so equivalent spellings share one canonical text (and one
	// plan-cache entry).
	if c.Left.Kind == TermNumber && c.Right.Kind == TermVar {
		return fmt.Sprintf("%s %s %s", c.Right, c.Op.flip(), c.Left)
	}
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
}

// Band is a band predicate |X - Y| <= Width over two key variables.
type Band struct {
	X, Y  Term
	Width Term
	Pos   Pos
}

func (b *Band) clausePos() Pos { return b.Pos }

// String renders the band predicate canonically.
func (b *Band) String() string {
	return fmt.Sprintf("|%s - %s| <= %s", b.X, b.Y, b.Width)
}

// AggFunc is an aggregate function.
type AggFunc int

const (
	AggSum AggFunc = iota
	AggMin
	AggMax
	AggCount
)

// String renders the function name.
func (f AggFunc) String() string {
	switch f {
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggCount:
		return "count"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(f))
	}
}

// Agg is an aggregate clause `agg f(V)`; a TermWildcard argument is count(*).
type Agg struct {
	Func AggFunc
	Arg  Term
	Pos  Pos
}

func (a *Agg) clausePos() Pos { return a.Pos }

// String renders the aggregate canonically (wildcard arguments as `*`).
func (a *Agg) String() string {
	arg := a.Arg.String()
	if a.Arg.Kind == TermWildcard {
		arg = "*"
	}
	return fmt.Sprintf("agg %s(%s)", a.Func, arg)
}

// Query is one parsed rule.
type Query struct {
	Head Atom
	Body []Clause
	// Src is the original source, kept so semantic errors can annotate it.
	Src string
}

// String renders the rule in canonical form — normalized spacing, `=` for
// equality, a trailing period — which re-parses to an identical AST. The
// canonical form is the normalized text that keys the service plan cache.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString(q.Head.String())
	b.WriteString(" :- ")
	for i, c := range q.Body {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.String())
	}
	b.WriteByte('.')
	return b.String()
}
