// Package stats computes cheap, sampling-based statistics over relations:
// cardinality, distinct-key and duplication estimates, a key-range histogram
// with a skew coefficient, a presortedness probe, and a key/position
// correlation that exposes location clustering. The planner turns these
// profiles into cost estimates and physical plan choices; nothing in this
// package looks at more than a fixed-size sample of the relation, so
// profiling a relation costs microseconds regardless of its size.
//
// # Estimators and their error bounds
//
// All bounds below are empirical, verified by the accuracy tests in this
// package over every combination of workload.Skew and workload.LocationSkew
// the generator produces (uniform, 80:20 low/high, foreign-key, clustered),
// at the default sample size of 2048:
//
//   - Distinct keys (bias-corrected Chao1 over the sample, capped at the
//     cardinality): within a factor of 2 of the exact count. When the sample
//     contains no duplicate at all the estimator returns the cardinality,
//     which is exact for unique-key relations and an upper bound otherwise.
//   - Skew coefficient (max histogram-bucket share relative to a uniform
//     spread): classifies every uniform input below 2.5 and every 80:20
//     input above 3.0.
//   - Sorted fraction: exactly 1.0 for sorted inputs; uniform shuffles land
//     near 0.5. The planner only declares an input presorted at 1.0, and the
//     join verifies the declaration per chunk, so a false positive costs one
//     linear check.
//   - Join cardinality (EstimateJoin): within a factor of 1.5 for key-probe
//     estimates (cross-sample hit count >= ProbeMinHits, the foreign-key
//     workloads), within a factor of 3 for the histogram fallback
//     (independent skewed workloads) and for self-joins (where the probe
//     saturates and the containment estimate takes over), and never
//     predicts a large result for an empty or near-empty join.
//
// Profiles are deterministic: the same relation always yields the same
// profile, so plans are reproducible.
package stats

import (
	"math"

	"repro/internal/relation"
	"repro/internal/workload"
)

const (
	// DefaultSampleSize is the number of tuples sampled per profile. 2048
	// keys are enough for the Chao1 collision counts and the cross-sample
	// join probes to resolve the decisions the planner takes, while keeping
	// profiling cost trivial next to any join.
	DefaultSampleSize = 2048

	// HistogramBuckets is the resolution of the equal-width key histogram.
	HistogramBuckets = 64

	// ProbeMinHits is the minimum cross-sample hit count at which
	// EstimateJoin trusts the unbiased key-probe estimate; below it the
	// Poisson noise exceeds the histogram fallback's error.
	ProbeMinHits = 10
)

// Profile is the sampled statistical summary of one relation.
type Profile struct {
	// Tuples is the exact cardinality.
	Tuples int
	// SampleSize is the number of tuples actually sampled (min(Tuples,
	// requested size)).
	SampleSize int

	// MinKey and MaxKey bound the keys observed in the sample. They are
	// approximate bounds of the true key range (tight for the tested
	// distributions: the sample spans the whole relation).
	MinKey, MaxKey uint64

	// DistinctKeys estimates the number of distinct join keys (Chao1).
	DistinctKeys float64
	// Duplication is Tuples / DistinctKeys, clamped to >= 1: the average
	// number of tuples per distinct key.
	Duplication float64

	// SortedFraction is the fraction of position-consecutive sample pairs in
	// non-decreasing key order: 1.0 for sorted data, ~0.5 for shuffles.
	SortedFraction float64

	// KeyPositionCorrelation is the Pearson correlation between a tuple's
	// position and its key over the sample. Near 1 for sorted or
	// range-clustered arrangements (location skew), near 0 for shuffles.
	KeyPositionCorrelation float64

	// Histogram holds the share of sampled tuples per equal-width bucket of
	// [MinKey, MaxKey]; it sums to 1 for non-empty profiles.
	Histogram [HistogramBuckets]float64

	// Skew is the maximum bucket share divided by the uniform share
	// (1/HistogramBuckets): 1 means perfectly uniform, HistogramBuckets
	// means everything in one bucket.
	Skew float64

	// Sample holds the sampled tuples in position order; EstimateJoin and
	// Selectivity probe it. Derived profiles (join outputs) have no sample.
	Sample []relation.Tuple

	// Correlated marks a derived profile whose keys are known to be
	// contained in its ancestors' key sets (a join output); EstimateJoin
	// then prefers the containment estimate over the independence estimate.
	Correlated bool

	// KeyNormalized marks a relation whose uint64 keys are normalized-key
	// prefixes derived from a schema (relation.Meta != nil).
	KeyNormalized bool
	// KeyTieBreak marks a normalized relation whose prefixes are inexact:
	// joins verify prefix-equal pairs against the full keys.
	KeyTieBreak bool
	// PrefixCollisionRate estimates, for tie-break relations, the fraction
	// of distinct full keys that share their 8-byte prefix with another key
	// — the fraction of candidate pairs the tie-break comparator must
	// reject. Sampled as (distinct full keys − distinct prefixes) /
	// distinct full keys.
	PrefixCollisionRate float64

	// keySet is the sample's distinct keys, for join probes. It is built
	// eagerly with the profile so that profiles can be shared between
	// concurrent planning sessions without synchronization.
	keySet map[uint64]struct{}
}

// Collect profiles a relation with the default sample size.
func Collect(rel *relation.Relation) *Profile {
	return CollectSample(rel, DefaultSampleSize)
}

// CollectSample profiles a relation from a deterministic sample of at most
// sampleSize tuples. Relations no larger than the sample are profiled
// exactly.
func CollectSample(rel *relation.Relation, sampleSize int) *Profile {
	if sampleSize <= 0 {
		sampleSize = DefaultSampleSize
	}
	p := &Profile{}
	if rel != nil {
		p.Tuples = rel.Len()
	}
	if p.Tuples == 0 {
		p.SortedFraction = 1
		return p
	}
	tuples := rel.Tuples

	// Deterministic stride sample in position order: one tuple per stride
	// window, jittered (workload's stable splitmix64 RNG, seeded by the
	// cardinality) within the window so periodic arrangements do not alias
	// with the stride.
	n := len(tuples)
	if sampleSize > n {
		sampleSize = n
	}
	sample := make([]relation.Tuple, 0, sampleSize)
	rng := workload.NewRNG(uint64(n)*0x9e3779b97f4a7c15 + 0x1234)
	for i := 0; i < sampleSize; i++ {
		lo := i * n / sampleSize
		hi := (i + 1) * n / sampleSize
		pos := lo
		if span := hi - lo; span > 1 {
			pos = lo + int(rng.Uint64n(uint64(span)))
		}
		sample = append(sample, tuples[pos])
	}
	p.Sample = sample
	p.SampleSize = len(sample)

	p.fillFromSample()

	if rel.Meta != nil {
		p.KeyNormalized = true
		if !rel.Meta.Exact() {
			p.KeyTieBreak = true
			p.PrefixCollisionRate = prefixCollisionRate(sample, rel.Meta)
		}
	}
	return p
}

// prefixCollisionRate samples how often distinct full normalized keys
// collapse onto one 8-byte prefix. Tuple payloads of tie-break relations
// are row indices, so the sample reaches the full keys through the
// metadata.
func prefixCollisionRate(sample []relation.Tuple, meta relation.KeyMeta) float64 {
	prefixes := make(map[uint64]struct{}, len(sample))
	full := make(map[string]struct{}, len(sample))
	for _, t := range sample {
		prefixes[t.Key] = struct{}{}
		full[string(meta.FullKey(int(t.Payload)))] = struct{}{}
	}
	if len(full) == 0 {
		return 0
	}
	return float64(len(full)-len(prefixes)) / float64(len(full))
}

// fillFromSample computes every derived statistic from the stored sample.
func (p *Profile) fillFromSample() {
	sample := p.Sample
	s := len(sample)
	if s == 0 {
		return
	}

	p.MinKey, p.MaxKey = sample[0].Key, sample[0].Key
	sortedPairs := 0
	for i, t := range sample {
		if t.Key < p.MinKey {
			p.MinKey = t.Key
		}
		if t.Key > p.MaxKey {
			p.MaxKey = t.Key
		}
		if i > 0 && sample[i-1].Key <= t.Key {
			sortedPairs++
		}
	}
	if s > 1 {
		p.SortedFraction = float64(sortedPairs) / float64(s-1)
	} else {
		p.SortedFraction = 1
	}

	p.DistinctKeys = chao1(sample, p.Tuples, s)
	p.Duplication = math.Max(1, float64(p.Tuples)/math.Max(1, p.DistinctKeys))

	// Histogram over [MinKey, MaxKey].
	width := float64(p.MaxKey-p.MinKey) + 1
	for _, t := range sample {
		b := int(float64(t.Key-p.MinKey) / width * HistogramBuckets)
		if b >= HistogramBuckets {
			b = HistogramBuckets - 1
		}
		p.Histogram[b] += 1 / float64(s)
	}
	maxShare := 0.0
	for _, share := range p.Histogram {
		if share > maxShare {
			maxShare = share
		}
	}
	p.Skew = maxShare * HistogramBuckets

	p.KeyPositionCorrelation = positionCorrelation(sample)

	p.keySet = make(map[uint64]struct{}, len(sample))
	for _, t := range sample {
		p.keySet[t.Key] = struct{}{}
	}
}

// chao1 is the bias-corrected Chao1 distinct estimator over the sample:
// d + f1·(f1−1) / (2·(f2+1)), where f1/f2 count the keys seen exactly
// once/twice. A sample without any duplicate carries no duplication evidence,
// so the estimate is the cardinality itself (exact for unique keys, an upper
// bound otherwise). The result is clamped to [d, n].
func chao1(sample []relation.Tuple, n, s int) float64 {
	counts := make(map[uint64]int, s)
	for _, t := range sample {
		counts[t.Key]++
	}
	d := len(counts)
	f1, f2 := 0, 0
	for _, c := range counts {
		switch c {
		case 1:
			f1++
		case 2:
			f2++
		}
	}
	if d == f1 {
		// No key repeats in the sample: by the birthday bound a population
		// with fewer than ~s²/2 distinct keys would almost surely have
		// collided, so every key of the relation is treated as distinct.
		return float64(n)
	}
	est := float64(d) + float64(f1)*float64(f1-1)/(2*float64(f2+1))
	return math.Min(float64(n), math.Max(float64(d), est))
}

// positionCorrelation is the Pearson correlation between sample index and
// key value. The sample is in position order, so this measures how strongly
// a tuple's physical position predicts its key — the signature of sorted and
// location-clustered arrangements.
func positionCorrelation(sample []relation.Tuple) float64 {
	s := len(sample)
	if s < 2 {
		return 0
	}
	var sumX, sumY, sumXX, sumYY, sumXY float64
	for i, t := range sample {
		x := float64(i)
		y := float64(t.Key)
		sumX += x
		sumY += y
		sumXX += x * x
		sumYY += y * y
		sumXY += x * y
	}
	nf := float64(s)
	cov := sumXY - sumX*sumY/nf
	varX := sumXX - sumX*sumX/nf
	varY := sumYY - sumY*sumY/nf
	if varX <= 0 || varY <= 0 {
		return 0
	}
	return cov / math.Sqrt(varX*varY)
}

// Clustered reports whether the relation's physical arrangement correlates
// strongly with its keys (sorted or range-clustered data).
func (p *Profile) Clustered() bool { return p.KeyPositionCorrelation >= 0.5 }

// LikelySorted reports whether every sampled position-consecutive pair was
// in key order. The join verifies a presorted declaration per chunk, so
// acting on this is safe even for the (rare) unsorted relation that passes
// the probe.
func (p *Profile) LikelySorted() bool { return p.Tuples == 0 || p.SortedFraction >= 1 }

// Selectivity estimates the fraction of tuples a predicate keeps by
// evaluating it on the sample; a nil predicate keeps everything.
func (p *Profile) Selectivity(pred func(relation.Tuple) bool) float64 {
	if pred == nil || len(p.Sample) == 0 {
		return 1
	}
	kept := 0
	for _, t := range p.Sample {
		if pred(t) {
			kept++
		}
	}
	return float64(kept) / float64(len(p.Sample))
}

// keys returns the sample's distinct-key set (nil for derived profiles
// without a sample).
func (p *Profile) keys() map[uint64]struct{} { return p.keySet }

// massIn returns the estimated fraction of the relation's tuples whose keys
// fall in [lo, hi], interpolating the histogram (buckets are assumed
// internally uniform).
func (p *Profile) massIn(lo, hi float64) float64 {
	if p.Tuples == 0 || hi < lo {
		return 0
	}
	minK, maxK := float64(p.MinKey), float64(p.MaxKey)
	width := (maxK - minK + 1) / HistogramBuckets
	mass := 0.0
	for b := 0; b < HistogramBuckets; b++ {
		bLo := minK + float64(b)*width
		bHi := bLo + width
		overlap := math.Min(hi+1, bHi) - math.Max(lo, bLo)
		if overlap <= 0 {
			continue
		}
		mass += p.Histogram[b] * overlap / width
	}
	return math.Min(1, mass)
}

// EstimateJoin estimates the equi-join cardinality |a ⋈ b|.
//
// Three estimators combine:
//
//   - Key probe: each profile's sampled keys are looked up in the other
//     sample's key set. The hit count H is an unbiased estimate of
//     2·sA·sB·|J|/(|A|·|B|); with H >= ProbeMinHits its relative error is
//     ~1/sqrt(H) and it is used directly. This is the estimator that
//     recognizes foreign-key (contained) workloads.
//   - Histogram independence: per key-range bucket, |A_b|·|B_b| / width_b —
//     exact in expectation for keys drawn independently within the bucket.
//   - Histogram containment: per bucket, |A_b|·|B_b| / max(d_Ab, d_Bb) —
//     the System-R bound, an over-estimate for independent keys but tight
//     under containment. It caps the result, and replaces the independence
//     estimate when a profile is a derived (Correlated) join output whose
//     keys are contained in its ancestors' by construction.
func EstimateJoin(a, b *Profile) float64 {
	if a == nil || b == nil || a.Tuples == 0 || b.Tuples == 0 {
		return 0
	}
	lo := math.Max(float64(a.MinKey), float64(b.MinKey))
	hi := math.Min(float64(a.MaxKey), float64(b.MaxKey))
	if hi < lo {
		return 0
	}

	independence, containment := histogramEstimates(a, b, lo, hi)

	if h, na, nb := crossProbeHits(a, b); na > 0 && nb > 0 {
		if h >= (na+nb)/2 {
			// The samples largely coincide — a self-join, or two relations
			// over one key set. The probe's linearization (each hit is a
			// rare event) breaks down here; the containment estimate is the
			// right model and exact in expectation for a self-join
			// (sum over keys of multiplicity² = |A|·duplication).
			return math.Max(1, containment)
		}
		probe := float64(h) * float64(a.Tuples) * float64(b.Tuples) / (2 * float64(na) * float64(nb))
		if h >= ProbeMinHits {
			return math.Max(1, probe)
		}
		// Too few hits for the probe alone; it still vouches that the join
		// is not containment-dense, so fall back to independence, capped by
		// containment.
		return math.Min(containment, math.Max(independence, probe))
	}

	// No samples (derived profiles): trust the containment estimate when the
	// keys are known to be correlated, the independence estimate otherwise.
	if a.Correlated || b.Correlated {
		return containment
	}
	return math.Min(containment, independence)
}

// histogramEstimates computes the independence and containment estimates
// over a common bucket grid spanning the key-range overlap [lo, hi].
func histogramEstimates(a, b *Profile, lo, hi float64) (independence, containment float64) {
	width := (hi - lo + 1) / HistogramBuckets
	for g := 0; g < HistogramBuckets; g++ {
		gLo := lo + float64(g)*width
		gHi := gLo + width - 1
		fa := a.massIn(gLo, gHi)
		fb := b.massIn(gLo, gHi)
		if fa <= 0 || fb <= 0 {
			continue
		}
		na := fa * float64(a.Tuples)
		nb := fb * float64(b.Tuples)
		da := math.Max(1, fa*a.DistinctKeys)
		db := math.Max(1, fb*b.DistinctKeys)
		// Distinct keys in a bucket can never exceed its key width.
		da = math.Min(da, width)
		db = math.Min(db, width)
		independence += na * nb / width
		containment += na * nb / math.Max(da, db)
	}
	return independence, containment
}

// crossProbeHits counts sampled keys of each profile found in the other
// profile's sampled key set; na/nb are the participating sample sizes (0
// when a profile has no sample).
func crossProbeHits(a, b *Profile) (hits, na, nb int) {
	ka, kb := a.keys(), b.keys()
	if ka == nil || kb == nil {
		return 0, 0, 0
	}
	for _, t := range a.Sample {
		if _, ok := kb[t.Key]; ok {
			hits++
		}
	}
	for _, t := range b.Sample {
		if _, ok := ka[t.Key]; ok {
			hits++
		}
	}
	return hits, len(a.Sample), len(b.Sample)
}

// JoinOutput derives the profile of a join's (materialized) output from its
// input profiles and the estimated cardinality: key range restricted to the
// overlap, histogram proportional to the per-bucket match estimate, distinct
// keys bounded by the smaller overlapping side, no sample, and Correlated
// set — the output's keys are contained in both inputs' key sets.
func JoinOutput(a, b *Profile, estRows float64) *Profile {
	out := &Profile{
		Tuples:         int(math.Ceil(estRows)),
		SortedFraction: 0.5, // concatenated per-worker segments: unknown order
		Correlated:     true,
	}
	if a == nil || b == nil || estRows <= 0 {
		out.Tuples = 0
		out.SortedFraction = 1
		return out
	}
	lo := math.Max(float64(a.MinKey), float64(b.MinKey))
	hi := math.Min(float64(a.MaxKey), float64(b.MaxKey))
	if hi < lo {
		out.Tuples = 0
		return out
	}
	out.MinKey, out.MaxKey = uint64(lo), uint64(hi)

	width := (hi - lo + 1) / HistogramBuckets
	total := 0.0
	var perBucket [HistogramBuckets]float64
	for g := 0; g < HistogramBuckets; g++ {
		gLo := lo + float64(g)*width
		gHi := gLo + width - 1
		perBucket[g] = a.massIn(gLo, gHi) * b.massIn(gLo, gHi)
		total += perBucket[g]
	}
	if total > 0 {
		for g := range perBucket {
			out.Histogram[g] = perBucket[g] / total
		}
	}
	maxShare := 0.0
	for _, share := range out.Histogram {
		if share > maxShare {
			maxShare = share
		}
	}
	out.Skew = maxShare * HistogramBuckets

	overlapA := a.massIn(lo, hi) * a.DistinctKeys
	overlapB := b.massIn(lo, hi) * b.DistinctKeys
	out.DistinctKeys = math.Max(1, math.Min(overlapA, overlapB))
	out.DistinctKeys = math.Min(out.DistinctKeys, estRows)
	out.Duplication = math.Max(1, estRows/out.DistinctKeys)
	return out
}

// Filtered returns the profile of the relation after applying a selection
// predicate: the sample is filtered through the predicate and every derived
// statistic (key range, histogram, skew, sortedness, distinct keys) is
// recomputed from the survivors, so a key-range predicate narrows the
// profile's range rather than merely scaling its counts. A nil predicate
// returns the profile unchanged.
func (p *Profile) Filtered(pred func(relation.Tuple) bool) *Profile {
	if pred == nil || len(p.Sample) == 0 {
		return p
	}
	kept := make([]relation.Tuple, 0, len(p.Sample))
	for _, t := range p.Sample {
		if pred(t) {
			kept = append(kept, t)
		}
	}
	sel := float64(len(kept)) / float64(len(p.Sample))
	cp := &Profile{
		Tuples:         int(math.Round(float64(p.Tuples) * sel)),
		SampleSize:     len(kept),
		Sample:         kept,
		SortedFraction: 1,
		// Selection copies tuples whole, so the key regime carries over.
		KeyNormalized:       p.KeyNormalized,
		KeyTieBreak:         p.KeyTieBreak,
		PrefixCollisionRate: p.PrefixCollisionRate,
	}
	cp.fillFromSample()
	return cp
}

// Mapped returns the profile of the relation after a pure tuple-to-tuple
// transformation: the sample is pushed through the function and the shape
// statistics are recomputed, while the cardinality carries over. A profile
// without a sample (a derived join output) is returned unchanged — the
// cardinality is still right, the distribution becomes a guess.
func (p *Profile) Mapped(fn func(relation.Tuple) relation.Tuple) *Profile {
	if fn == nil || len(p.Sample) == 0 {
		return p
	}
	mapped := make([]relation.Tuple, len(p.Sample))
	for i, t := range p.Sample {
		mapped[i] = fn(t)
	}
	cp := &Profile{
		Tuples:     p.Tuples,
		SampleSize: len(mapped),
		Sample:     mapped,
		Correlated: false, // arbitrary key rewrites break containment
	}
	cp.fillFromSample()
	return cp
}
