package stats

import (
	"math"
	"sort"
	"testing"

	"repro/internal/relation"
	"repro/internal/workload"
)

// exactDistinct counts the distinct keys of a relation.
func exactDistinct(rel *relation.Relation) int {
	seen := make(map[uint64]struct{}, rel.Len())
	for _, t := range rel.Tuples {
		seen[t.Key] = struct{}{}
	}
	return len(seen)
}

// exactJoin counts the exact equi-join cardinality.
func exactJoin(a, b *relation.Relation) float64 {
	counts := make(map[uint64]int, a.Len())
	for _, t := range a.Tuples {
		counts[t.Key]++
	}
	total := 0.0
	for _, t := range b.Tuples {
		total += float64(counts[t.Key])
	}
	return total
}

// withinFactor asserts |estimate| and |exact| agree within the given factor.
func withinFactor(t *testing.T, what string, estimate, exact, factor float64) {
	t.Helper()
	if exact == 0 {
		if estimate > factor {
			t.Errorf("%s: estimate %.1f for exact 0", what, estimate)
		}
		return
	}
	ratio := estimate / exact
	if ratio < 1/factor || ratio > factor {
		t.Errorf("%s: estimate %.1f vs exact %.1f (ratio %.2f, want within %.1fx)",
			what, estimate, exact, ratio, factor)
	}
}

// skewCases enumerates every key distribution the workload generator offers.
var skewCases = []struct {
	name string
	skew workload.Skew
}{
	{"uniform", workload.SkewNone},
	{"low80", workload.SkewLow80},
	{"high80", workload.SkewHigh80},
}

// locationCases enumerates every physical arrangement.
var locationCases = []struct {
	name string
	loc  workload.LocationSkew
}{
	{"shuffled", workload.LocationNone},
	{"clustered", workload.LocationClustered},
}

// TestDistinctAccuracy checks the documented factor-2 bound of the Chao1
// distinct estimator across every skew × arrangement × duplication level.
func TestDistinctAccuracy(t *testing.T) {
	const n = 1 << 17
	for _, sk := range skewCases {
		for _, loc := range locationCases {
			for _, domain := range []uint64{0 /* 2^32: near-unique */, n / 2 /* heavy duplication */} {
				rel := workload.SkewedRelation("X", n, pickDomain(domain), sk.skew, 7)
				workload.ApplyLocationSkew(rel, 8, loc.loc, pickDomain(domain))
				p := Collect(rel)
				name := sk.name + "/" + loc.name
				if domain != 0 {
					name += "/dense"
				}
				withinFactor(t, "distinct "+name, p.DistinctKeys, float64(exactDistinct(rel)), 2)
			}
		}
	}
}

// pickDomain maps 0 to the default 2^32 domain.
func pickDomain(domain uint64) uint64 {
	if domain == 0 {
		return workload.DefaultKeyDomain
	}
	return domain
}

// TestSkewClassification checks that the skew coefficient separates uniform
// from 80:20 inputs with the documented thresholds, under both arrangements.
func TestSkewClassification(t *testing.T) {
	const n = 1 << 16
	for _, loc := range locationCases {
		for _, sk := range skewCases {
			rel := workload.SkewedRelation("X", n, workload.DefaultKeyDomain, sk.skew, 11)
			workload.ApplyLocationSkew(rel, 8, loc.loc, workload.DefaultKeyDomain)
			p := Collect(rel)
			if sk.skew == workload.SkewNone {
				if p.Skew > 2.5 {
					t.Errorf("%s/%s: uniform input classified as skewed (coefficient %.2f)", sk.name, loc.name, p.Skew)
				}
			} else if p.Skew < 3.0 {
				t.Errorf("%s/%s: 80:20 input classified as uniform (coefficient %.2f)", sk.name, loc.name, p.Skew)
			}
		}
	}
}

// TestSortednessProbe checks the presortedness probe: exactly 1.0 on sorted
// data, well below 1.0 on shuffles, and that clustered arrangements are
// recognized through the key/position correlation.
func TestSortednessProbe(t *testing.T) {
	const n = 1 << 16
	rel := workload.UniformRelation("X", n, workload.DefaultKeyDomain, 13)

	shuffled := Collect(rel)
	if shuffled.LikelySorted() {
		t.Errorf("shuffled input probed as sorted (fraction %.3f)", shuffled.SortedFraction)
	}
	if shuffled.Clustered() {
		t.Errorf("shuffled input probed as clustered (correlation %.3f)", shuffled.KeyPositionCorrelation)
	}

	sorted := rel.Clone()
	sort.Slice(sorted.Tuples, func(i, j int) bool { return sorted.Tuples[i].Key < sorted.Tuples[j].Key })
	sp := Collect(sorted)
	if !sp.LikelySorted() {
		t.Errorf("sorted input not probed as sorted (fraction %.3f)", sp.SortedFraction)
	}
	if !sp.Clustered() {
		t.Errorf("sorted input not probed as clustered (correlation %.3f)", sp.KeyPositionCorrelation)
	}

	clustered := rel.Clone()
	workload.ApplyLocationSkew(clustered, 8, workload.LocationClustered, workload.DefaultKeyDomain)
	cp := Collect(clustered)
	if cp.LikelySorted() {
		t.Errorf("clustered-but-unsorted input probed as fully sorted")
	}
	if !cp.Clustered() {
		t.Errorf("clustered input not recognized (correlation %.3f)", cp.KeyPositionCorrelation)
	}
}

// TestJoinEstimateAccuracy checks EstimateJoin against exact join counts for
// the documented workload families and bounds: foreign-key (probe estimator,
// factor 1.5) across every skew and arrangement, independent skewed inputs
// over a dense domain (histogram fallback, factor 3), and a disjoint join
// (no large prediction).
func TestJoinEstimateAccuracy(t *testing.T) {
	const n = 1 << 16

	for _, sk := range skewCases {
		for _, loc := range locationCases {
			r := workload.SkewedRelation("R", n, workload.DefaultKeyDomain, sk.skew, 17)
			s := workload.ForeignKeyRelation("S", r, 4*n, 18)
			workload.ApplyLocationSkew(s, 8, loc.loc, workload.DefaultKeyDomain)
			est := EstimateJoin(Collect(r), Collect(s))
			withinFactor(t, "fk join "+sk.name+"/"+loc.name, est, exactJoin(r, s), 1.5)
		}
	}

	// Independent inputs over a dense domain (the negatively correlated
	// Section 5.6 shape): histogram fallback, factor 3.
	domain := uint64(4 * n)
	r := workload.SkewedRelation("R", n, domain, workload.SkewHigh80, 19)
	s := workload.SkewedRelation("S", 4*n, domain, workload.SkewLow80, 20)
	est := EstimateJoin(Collect(r), Collect(s))
	withinFactor(t, "independent negcorr join", est, exactJoin(r, s), 3)

	// Same-skew independent dense inputs.
	r2 := workload.SkewedRelation("R", n, domain, workload.SkewLow80, 21)
	s2 := workload.SkewedRelation("S", 4*n, domain, workload.SkewLow80, 22)
	est2 := EstimateJoin(Collect(r2), Collect(s2))
	withinFactor(t, "independent same-skew join", est2, exactJoin(r2, s2), 3)

	// Self-joins saturate the cross-sample probe; the containment fallback
	// must keep the estimate within the documented factor 3, for unique
	// keys (|J| ≈ n) and for duplicate-heavy keys (|J| ≈ n·duplication).
	selfUnique := workload.UniformRelation("SU", n, workload.DefaultKeyDomain, 27)
	pu := Collect(selfUnique)
	withinFactor(t, "self-join unique", EstimateJoin(pu, pu), exactJoin(selfUnique, selfUnique), 3)
	parent := workload.UniformRelation("P", n/16, workload.DefaultKeyDomain, 28)
	selfDup := workload.ForeignKeyRelation("SD", parent, n, 29)
	pd := Collect(selfDup)
	withinFactor(t, "self-join duplicated", EstimateJoin(pd, pd), exactJoin(selfDup, selfDup), 3)

	// Disjoint key ranges must not predict a large join.
	lo := workload.UniformRelation("L", n, 1<<20, 23)
	hiTuples := make([]relation.Tuple, n)
	for i := range hiTuples {
		hiTuples[i] = relation.Tuple{Key: uint64(1<<30) + uint64(i), Payload: 1}
	}
	hi := relation.New("H", hiTuples)
	if est := EstimateJoin(Collect(lo), Collect(hi)); est > 1 {
		t.Errorf("disjoint join estimated at %.1f, want ~0", est)
	}
}

// TestSelectivity checks predicate selectivity estimation on the sample.
func TestSelectivity(t *testing.T) {
	rel := workload.UniformRelation("X", 1<<16, workload.DefaultKeyDomain, 29)
	p := Collect(rel)
	half := p.Selectivity(func(t relation.Tuple) bool { return t.Key < 1<<31 })
	if math.Abs(half-0.5) > 0.08 {
		t.Errorf("half-domain predicate selectivity %.3f, want ~0.5", half)
	}
	if got := p.Selectivity(nil); got != 1 {
		t.Errorf("nil predicate selectivity %v, want 1", got)
	}
	none := p.Selectivity(func(relation.Tuple) bool { return false })
	if none != 0 {
		t.Errorf("false predicate selectivity %v, want 0", none)
	}
}

// TestFilteredProfile checks that Filtered narrows the key range and scales
// the cardinality.
func TestFilteredProfile(t *testing.T) {
	rel := workload.UniformRelation("X", 1<<16, workload.DefaultKeyDomain, 31)
	p := Collect(rel)
	f := p.Filtered(func(t relation.Tuple) bool { return t.Key < 1<<30 })
	wantTuples := float64(rel.Len()) / 4
	withinFactor(t, "filtered cardinality", float64(f.Tuples), wantTuples, 1.4)
	if f.MaxKey >= 1<<30 {
		t.Errorf("filtered profile kept MaxKey %d outside the predicate range", f.MaxKey)
	}
}

// TestDeterminism checks that profiling is reproducible.
func TestDeterminism(t *testing.T) {
	rel := workload.UniformRelation("X", 1<<15, workload.DefaultKeyDomain, 37)
	a, b := Collect(rel), Collect(rel)
	if a.DistinctKeys != b.DistinctKeys || a.SortedFraction != b.SortedFraction || a.Skew != b.Skew {
		t.Errorf("profiles differ across runs: %+v vs %+v", a, b)
	}
}

// TestEmptyAndTiny covers degenerate relations.
func TestEmptyAndTiny(t *testing.T) {
	if p := Collect(relation.New("empty", nil)); p.Tuples != 0 || !p.LikelySorted() {
		t.Errorf("empty profile: %+v", p)
	}
	one := relation.New("one", []relation.Tuple{{Key: 5, Payload: 1}})
	p := Collect(one)
	if p.Tuples != 1 || p.DistinctKeys != 1 || !p.LikelySorted() {
		t.Errorf("singleton profile: %+v", p)
	}
	if est := EstimateJoin(p, Collect(relation.New("empty", nil))); est != 0 {
		t.Errorf("join with empty relation estimated at %v", est)
	}
}
