package mpsm_test

import (
	"fmt"

	mpsm "repro"
)

// ExampleJoin demonstrates the basic public API: generate a dimension table R
// and a fact table S whose keys reference R, then run the range-partitioned
// MPSM join and report the join cardinality.
func ExampleJoin() {
	r := mpsm.GenerateUniform("R", 10_000, 1)
	s := mpsm.GenerateForeignKey("S", r, 40_000, 2)

	res, err := mpsm.Join(r, s, mpsm.Config{Algorithm: mpsm.PMPSM, Workers: 4})
	if err != nil {
		panic(err)
	}
	// Every S tuple references an existing R key, so the join produces at
	// least |S| results (more when R contains duplicate keys).
	fmt.Println(res.Matches >= 40_000)
	fmt.Println(res.NUMA.SyncOps) // MPSM never synchronizes per tuple
	// Output:
	// true
	// 0
}

// ExampleJoin_kinds demonstrates the non-inner join kinds. The semi and anti
// join cardinalities always partition the private input.
func ExampleJoin_kinds() {
	r := mpsm.GenerateSkewedWithDomain("R", 5_000, 10_000, mpsm.SkewNone, 3)
	s := mpsm.GenerateSkewedWithDomain("S", 20_000, 10_000, mpsm.SkewNone, 4)

	semi, _ := mpsm.Join(r, s, mpsm.Config{Kind: mpsm.SemiJoin, Workers: 4})
	anti, _ := mpsm.Join(r, s, mpsm.Config{Kind: mpsm.AntiJoin, Workers: 4})
	fmt.Println(semi.Matches+anti.Matches == uint64(r.Len()))
	// Output:
	// true
}

// ExampleJoinWithDiskStats demonstrates the disk-enabled D-MPSM variant under
// a strict RAM budget: the join result is unaffected, only the paging
// behaviour changes.
func ExampleJoinWithDiskStats() {
	r := mpsm.GenerateUniform("R", 20_000, 5)
	s := mpsm.GenerateForeignKey("S", r, 80_000, 6)

	res, stats, err := mpsm.JoinWithDiskStats(r, s, mpsm.Config{
		Workers: 2,
		Disk:    mpsm.DiskConfig{PageSize: 1024, PageBudget: 8},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Matches >= 80_000)
	fmt.Println(stats.Pool.MaxResident <= 8)
	// Output:
	// true
	// true
}
